package repro

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"repro/internal/arrivals"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/sim"
)

// E10 — the steady-state fleet hot path. One op is one Stream.Step — a
// full 1,189-action frame of the paper's encoder under the relaxed
// manager feeding a StatsSink. The acceptance bar of the zero-retention
// sink layer is 0 allocs/op: quality management, content drawing and
// statistics aggregation all run without touching the heap, so fleet
// memory is O(streams) however long the streams run.
func BenchmarkFleetStep(b *testing.B) {
	s := experiment.Paper(1)
	content, ok := s.Exec.(sim.Content)
	if !ok {
		b.Fatalf("paper setup exec is %T", s.Exec)
	}
	r := &sim.Runner{
		Sys: s.Sys,
		Mgr: s.Relaxed(),
		// The memoized per-stream model, exactly what FleetStreams runs.
		Exec:     sim.NewFastContent(content, s.Sys.NumActions()),
		Overhead: s.Overhead,
		Cycles:   1 << 30, // steady state: never exhausts within a benchmark
		Period:   s.Period,
		Sink:     sim.NewStatsSink(s.Sys.NumLevels()),
	}
	st, err := r.Stream()
	if err != nil {
		b.Fatal(err)
	}
	if !st.Step() { // steady state: lazy decision-plan build happens here, untimed
		b.Fatal("stream exhausted during warm-up")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !st.Step() {
			b.Fatal("stream exhausted")
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*s.Sys.NumActions()), "ns/action")
}

// fleetBenchRow is one configuration of the throughput harness; the set
// is serialised to BENCH_fleet.json so CI can track the perf trajectory.
// NumCPU and Gomaxprocs pin the row to the host shape that produced it:
// a flat worker-sweep curve on a 1-CPU CI runner is expected, the same
// curve with num_cpu 8 is a scaling regression.
type fleetBenchRow struct {
	Name            string  `json:"name"`
	Streams         int     `json:"streams"`
	Workers         int     `json:"workers"` // 0 = serial loop, no pool
	BatchCycles     int     `json:"batch_cycles"`
	Cycles          int     `json:"cycles"`
	NumCPU          int     `json:"num_cpu"`
	Gomaxprocs      int     `json:"gomaxprocs"`
	ActionsPerOp    int     `json:"actions_per_op"`
	NsPerAction     float64 `json:"ns_per_action"`
	AllocsPerAction float64 `json:"allocs_per_action"`
	// Open-system rows additionally record the arrival process and
	// admission policy that shaped the run; closed rows omit them.
	Arrivals string `json:"arrivals,omitempty"`
	Admit    string `json:"admit,omitempty"`
	// Cluster rows additionally record the scale-out width and routing
	// policy; single-engine rows omit them. Workers is per-instance for
	// these rows.
	Instances int    `json:"instances,omitempty"`
	Route     string `json:"route,omitempty"`
}

// fleetBenchBatch reads the batch size under test from
// FLEET_BENCH_BATCH (CI sweeps {1, 32}); unset selects the scheduler
// default.
func fleetBenchBatch(b *testing.B) int {
	env := os.Getenv("FLEET_BENCH_BATCH")
	if env == "" {
		return fleet.DefaultBatchCycles
	}
	batch, err := strconv.Atoi(env)
	if err != nil || batch <= 0 {
		b.Fatalf("FLEET_BENCH_BATCH=%q: want a positive integer", env)
	}
	return batch
}

// fleetBenchFile keeps the default-batch results in the canonical
// tracked file; swept batches land in their own artifacts.
func fleetBenchFile(batch int) string {
	if batch == fleet.DefaultBatchCycles {
		return "BENCH_fleet.json"
	}
	return fmt.Sprintf("BENCH_fleet_batch%d.json", batch)
}

// E11 — fleet throughput: the paper-encoder fleet through the
// zero-retention stats path, serially and on the shard-affine scheduler
// at 1/2/4/8/16 workers. Each sub-benchmark reports ns/action and
// allocs/action (stream setup included, so the steady-state figure is
// bounded by BenchmarkFleetStep) and the harness writes the set — host
// shape and batch size included — to BENCH_fleet.json. The
// serial-uncached row runs the table-probing manager with the
// regions.DecisionPlan bypassed, so the plan cache's contribution is
// the serial-uncached → serial delta, separate from the scheduler's.
// NB: single-core hosts only show scheduling overhead across worker
// counts.
func BenchmarkFleetThroughput(b *testing.B) {
	s := experiment.Paper(1)
	s.Cycles = 2
	// 32 streams: enough population that a 16-worker sweep measures
	// scaling, not the EffectiveWorkers cap (8 streams made every row
	// beyond workers=8 a duplicate).
	const streams = 32
	batch := fleetBenchBatch(b)
	s.Relaxed().Decide(0, 0) // build the shared decision plan outside the timed regions
	actionsPerOp := streams * s.Cycles * s.Sys.NumActions()
	var order []string
	byName := map[string]fleetBenchRow{}

	// batchUsed is 0 for the serial rows: they never enter the
	// scheduler, so labelling them with the swept batch size would make
	// identical configurations look different across artifacts.
	measure := func(name string, workers, batchUsed int, run func() error) {
		b.Run(name, func(b *testing.B) {
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			start := time.Now()
			for i := 0; i < b.N; i++ {
				if err := run(); err != nil {
					b.Fatal(err)
				}
			}
			elapsed := time.Since(start)
			runtime.ReadMemStats(&after)
			total := float64(b.N) * float64(actionsPerOp)
			row := fleetBenchRow{
				Name:            name,
				Streams:         streams,
				Workers:         workers,
				BatchCycles:     batchUsed,
				Cycles:          s.Cycles,
				NumCPU:          runtime.NumCPU(),
				Gomaxprocs:      runtime.GOMAXPROCS(0),
				ActionsPerOp:    actionsPerOp,
				NsPerAction:     float64(elapsed.Nanoseconds()) / total,
				AllocsPerAction: float64(after.Mallocs-before.Mallocs) / total,
			}
			b.ReportMetric(row.NsPerAction, "ns/action")
			b.ReportMetric(row.AllocsPerAction, "allocs/action")
			// The harness re-invokes sub-benchmarks while calibrating
			// b.N; keep only the final (largest-N) run per config.
			if _, seen := byName[name]; !seen {
				order = append(order, name)
			}
			byName[name] = row
		})
	}

	serialLoop := func(mk func() ([]fleet.Stream, error)) func() error {
		return func() error {
			strs, err := mk()
			if err != nil {
				return err
			}
			for k := range strs {
				st := strs[k]
				st.Runner.Sink = sim.NewStatsSink(st.Runner.Sys.NumLevels())
				if _, err := st.Runner.Run(); err != nil {
					return err
				}
			}
			return nil
		}
	}
	measure("serial", 0, 0, serialLoop(func() ([]fleet.Stream, error) { return s.FleetStreams(1, streams) }))
	measure("serial-uncached", 0, 0, serialLoop(func() ([]fleet.Stream, error) { return s.FleetStreamsUncached(1, streams) }))
	for _, w := range []int{1, 2, 4, 8, 16} {
		w := w
		measure(fmt.Sprintf("fleet-workers=%d", w), w, batch, func() error {
			strs, err := s.FleetStreams(1, streams)
			if err != nil {
				return err
			}
			res, err := fleet.RunStats(fleet.Config{Streams: strs, Workers: w, BatchCycles: batch})
			if err != nil {
				return err
			}
			return res.Err()
		})
	}

	if len(order) == 0 {
		return // sub-benchmark filter excluded everything
	}
	rows := make([]fleetBenchRow, 0, len(order))
	for _, name := range order {
		rows = append(rows, byName[name])
	}
	mergeFleetBenchRows(b, fleetBenchFile(batch), rows)
}

// E13 — routed scale-out throughput: the large open workload (64
// streams, dense Poisson arrivals, admit-all — the same configuration
// as the open-large rows) spread across M engine instances by the
// round-robin router, each instance running its own worker. The total
// arrival rate is fixed, so the sweep measures how throughput scales
// with cluster width at constant offered load: flat on a single-core
// host (the router plus M instances time-slice one CPU), dropping
// ns/action with cores on a real runner — benchguard's speedup gate in
// the multi-core CI job asserts instances=4 beats instances=1 there.
// Round-robin is the stateless policy, so the instance pipelines never
// synchronize and the rows isolate scale-out cost from routing-state
// barriers. Each width reuses a cluster.Scratch across iterations, so
// the rows report the router's steady state, not first-run slab growth.
func BenchmarkFleetCluster(b *testing.B) {
	batch := fleetBenchBatch(b)
	large := experiment.Paper(1)
	large.Cycles = 4
	large.Relaxed().Decide(0, 0) // build the shared decision plan outside the timed region
	const streams = 64
	proc := arrivals.Poisson{MeanGap: large.Period / 8, Seed: 11}
	times, err := proc.Times(streams)
	if err != nil {
		b.Fatal(err)
	}
	adm := fleet.AdmitAll{}
	actionsPerOp := streams * large.Cycles * large.Sys.NumActions()

	var order []string
	byName := map[string]fleetBenchRow{}
	for _, m := range []int{1, 2, 4, 8} {
		m := m
		name := fmt.Sprintf("cluster-instances=%d", m)
		b.Run(name, func(b *testing.B) {
			scratch := cluster.NewScratch()
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			start := time.Now()
			for i := 0; i < b.N; i++ {
				strs, err := large.FleetStreams(1, streams)
				if err != nil {
					b.Fatal(err)
				}
				cres, err := cluster.Run(cluster.Config{
					Streams:     strs,
					Arrivals:    times,
					Instances:   m,
					Route:       cluster.RoundRobin{},
					Admit:       adm,
					Workers:     1,
					BatchCycles: batch,
					Seed:        1,
					Scratch:     scratch,
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := cres.Err(); err != nil {
					b.Fatal(err)
				}
				admitted := 0
				for _, inst := range cres.Instances {
					admitted += inst.Admitted
				}
				if admitted != streams {
					b.Fatalf("admitted %d of %d streams", admitted, streams)
				}
			}
			elapsed := time.Since(start)
			runtime.ReadMemStats(&after)
			total := float64(b.N) * float64(actionsPerOp)
			row := fleetBenchRow{
				Name:            name,
				Streams:         streams,
				Workers:         1,
				BatchCycles:     batch,
				Cycles:          large.Cycles,
				NumCPU:          runtime.NumCPU(),
				Gomaxprocs:      runtime.GOMAXPROCS(0),
				ActionsPerOp:    actionsPerOp,
				NsPerAction:     float64(elapsed.Nanoseconds()) / total,
				AllocsPerAction: float64(after.Mallocs-before.Mallocs) / total,
				Arrivals:        proc.Name(),
				Admit:           adm.Name(),
				Instances:       m,
				Route:           cluster.RoundRobin{}.Name(),
			}
			b.ReportMetric(row.NsPerAction, "ns/action")
			b.ReportMetric(row.AllocsPerAction, "allocs/action")
			if _, seen := byName[name]; !seen {
				order = append(order, name)
			}
			byName[name] = row
		})
	}

	if len(order) == 0 {
		return // sub-benchmark filter excluded everything
	}
	rows := make([]fleetBenchRow, 0, len(order))
	for _, name := range order {
		rows = append(rows, byName[name])
	}
	mergeFleetBenchRows(b, fleetBenchFile(batch), rows)
}

// mergeFleetBenchRows folds rows into the artifact file without
// clobbering rows other benchmarks wrote: existing rows with the same
// names are replaced, everything else is preserved in order. This is
// how the closed and open row families coexist in BENCH_fleet.json
// whichever benchmark runs first (or alone, as in the CI smoke steps).
func mergeFleetBenchRows(b *testing.B, file string, rows []fleetBenchRow) {
	b.Helper()
	replaced := map[string]bool{}
	for _, r := range rows {
		replaced[r.Name] = true
	}
	var all []fleetBenchRow
	if raw, err := os.ReadFile(file); err == nil {
		var prev []fleetBenchRow
		if err := json.Unmarshal(raw, &prev); err != nil {
			b.Fatalf("%s exists but does not parse: %v", file, err)
		}
		for _, r := range prev {
			if !replaced[r.Name] {
				all = append(all, r)
			}
		}
	}
	all = append(all, rows...)
	out, err := json.MarshalIndent(all, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(file, append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Logf("merged %d rows into %s (%d total)", len(rows), file, len(all))
}

// E12 — open-system throughput: the paper-encoder fleet arriving as a
// Poisson process under cap-K admission, through the zero-retention
// continuous engine. One op is the whole open run (arrival ordering,
// admission decisions, continuous injection on the worker pool,
// lifecycle bookkeeping included), normalised to ns/action and
// allocs/action over the actions the admitted streams execute —
// directly comparable with the closed rows, so the artifact tracks the
// open engine's overhead as its own row family in BENCH_fleet.json.
//
// Two row families share the harness. The small family (8 streams,
// sparse Poisson arrivals, cap-4) is the engine-overhead row set the
// baseline has tracked since PR 5: the serial wave spec as the
// before-state plus the wave-free engine at workers 1, 2 and 4. The
// large family (64 streams, dense arrivals, admit-all, workers swept
// 1/2/4/8/16) is the multi-core scaling matrix: enough concurrent
// in-flight streams that per-shard completion rings and lookahead
// admission have parallelism to expose — flat on a single-core host,
// dropping ns/action with cores on a real runner, which is exactly
// what benchguard's speedup assertion checks in CI. Each configuration
// reuses an OpenScratch, so the rows report the engine's steady state,
// not first-run slab growth.
func BenchmarkFleetOpen(b *testing.B) {
	batch := fleetBenchBatch(b)
	var order []string
	byName := map[string]fleetBenchRow{}

	measure := func(name string, s *experiment.Setup, streams, workers int,
		times []core.Time, procName string, adm fleet.Admitter,
		run func(cfg fleet.OpenConfig) (*fleet.OpenResult, error)) {
		b.Run(name, func(b *testing.B) {
			actionsPerOp := streams * s.Cycles * s.Sys.NumActions()
			scratch := fleet.NewOpenScratch()
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			start := time.Now()
			for i := 0; i < b.N; i++ {
				strs, err := s.FleetStreams(1, streams)
				if err != nil {
					b.Fatal(err)
				}
				res, err := run(fleet.OpenConfig{
					Streams:     strs,
					Arrivals:    times,
					Admit:       adm,
					Workers:     workers,
					BatchCycles: batch,
					Scratch:     scratch,
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := res.Err(); err != nil {
					b.Fatal(err)
				}
				if res.Admitted != streams {
					b.Fatalf("admitted %d of %d streams", res.Admitted, streams)
				}
			}
			elapsed := time.Since(start)
			runtime.ReadMemStats(&after)
			total := float64(b.N) * float64(actionsPerOp)
			row := fleetBenchRow{
				Name:            name,
				Streams:         streams,
				Workers:         workers,
				BatchCycles:     batch,
				Cycles:          s.Cycles,
				NumCPU:          runtime.NumCPU(),
				Gomaxprocs:      runtime.GOMAXPROCS(0),
				ActionsPerOp:    actionsPerOp,
				NsPerAction:     float64(elapsed.Nanoseconds()) / total,
				AllocsPerAction: float64(after.Mallocs-before.Mallocs) / total,
				Arrivals:        procName,
				Admit:           adm.Name(),
			}
			b.ReportMetric(row.NsPerAction, "ns/action")
			b.ReportMetric(row.AllocsPerAction, "allocs/action")
			if _, seen := byName[name]; !seen {
				order = append(order, name)
			}
			byName[name] = row
		})
	}

	// Small family: sparse arrivals, 8 streams — the engine-overhead rows.
	small := experiment.Paper(1)
	small.Cycles = 2
	small.Relaxed().Decide(0, 0) // build the shared decision plan outside the timed region
	const smallStreams = 8
	smallProc := arrivals.Poisson{MeanGap: small.Period, Seed: 7}
	smallTimes, err := smallProc.Times(smallStreams)
	if err != nil {
		b.Fatal(err)
	}
	smallAdm := fleet.CapK{K: 4, Queue: -1} // unbounded queue: every stream runs
	measure("open-serial-spec", small, smallStreams, 2, smallTimes, smallProc.Name(), smallAdm, fleet.OpenRunStatsSerial)
	for _, w := range []int{1, 2, 4} {
		measure(fmt.Sprintf("open-poisson-cap4-workers=%d", w), small, smallStreams, w,
			smallTimes, smallProc.Name(), smallAdm, fleet.OpenRunStats)
	}

	// Obs twins: the same configurations with the metric hooks enabled —
	// the rows benchguard's -overhead gate compares against their
	// disabled twins above, keeping the allocation-free instrument layer
	// effectively free on the hot path. One instrument bundle serves
	// every iteration, exactly as a long-running daemon would hold it.
	obsMet := obs.NewFleetMetrics(obs.NewRegistry("bench"))
	for _, w := range []int{1, 4} {
		measure(fmt.Sprintf("open-poisson-cap4-obs-workers=%d", w), small, smallStreams, w,
			smallTimes, smallProc.Name(), smallAdm,
			func(cfg fleet.OpenConfig) (*fleet.OpenResult, error) {
				cfg.Obs = obsMet
				return fleet.OpenRunStats(cfg)
			})
	}

	// Large family: dense arrivals, 64 streams, admit-all — the
	// multi-core scaling matrix. MeanGap of period/8 keeps tens of
	// streams in flight at once (the departure bound admitted +
	// (Cycles−1)·period clears dense arrivals easily), so worker
	// parallelism is the dominant term, not admission serialization.
	large := experiment.Paper(1)
	large.Cycles = 4
	large.Relaxed().Decide(0, 0)
	const largeStreams = 64
	largeProc := arrivals.Poisson{MeanGap: large.Period / 8, Seed: 11}
	largeTimes, err := largeProc.Times(largeStreams)
	if err != nil {
		b.Fatal(err)
	}
	largeAdm := fleet.AdmitAll{}
	for _, w := range []int{1, 2, 4, 8, 16} {
		measure(fmt.Sprintf("open-large-workers=%d", w), large, largeStreams, w,
			largeTimes, largeProc.Name(), largeAdm, fleet.OpenRunStats)
	}

	if len(order) == 0 {
		return // sub-benchmark filter excluded everything
	}
	rows := make([]fleetBenchRow, 0, len(order))
	for _, name := range order {
		rows = append(rows, byName[name])
	}
	mergeFleetBenchRows(b, fleetBenchFile(batch), rows)
}
