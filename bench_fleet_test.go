package repro

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"repro/internal/arrivals"
	"repro/internal/experiment"
	"repro/internal/fleet"
	"repro/internal/sim"
)

// E10 — the steady-state fleet hot path. One op is one Stream.Step — a
// full 1,189-action frame of the paper's encoder under the relaxed
// manager feeding a StatsSink. The acceptance bar of the zero-retention
// sink layer is 0 allocs/op: quality management, content drawing and
// statistics aggregation all run without touching the heap, so fleet
// memory is O(streams) however long the streams run.
func BenchmarkFleetStep(b *testing.B) {
	s := experiment.Paper(1)
	content, ok := s.Exec.(sim.Content)
	if !ok {
		b.Fatalf("paper setup exec is %T", s.Exec)
	}
	r := &sim.Runner{
		Sys: s.Sys,
		Mgr: s.Relaxed(),
		// The memoized per-stream model, exactly what FleetStreams runs.
		Exec:     sim.NewFastContent(content, s.Sys.NumActions()),
		Overhead: s.Overhead,
		Cycles:   1 << 30, // steady state: never exhausts within a benchmark
		Period:   s.Period,
		Sink:     sim.NewStatsSink(s.Sys.NumLevels()),
	}
	st, err := r.Stream()
	if err != nil {
		b.Fatal(err)
	}
	if !st.Step() { // steady state: lazy decision-plan build happens here, untimed
		b.Fatal("stream exhausted during warm-up")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !st.Step() {
			b.Fatal("stream exhausted")
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*s.Sys.NumActions()), "ns/action")
}

// fleetBenchRow is one configuration of the throughput harness; the set
// is serialised to BENCH_fleet.json so CI can track the perf trajectory.
// NumCPU and Gomaxprocs pin the row to the host shape that produced it:
// a flat worker-sweep curve on a 1-CPU CI runner is expected, the same
// curve with num_cpu 8 is a scaling regression.
type fleetBenchRow struct {
	Name            string  `json:"name"`
	Streams         int     `json:"streams"`
	Workers         int     `json:"workers"` // 0 = serial loop, no pool
	BatchCycles     int     `json:"batch_cycles"`
	Cycles          int     `json:"cycles"`
	NumCPU          int     `json:"num_cpu"`
	Gomaxprocs      int     `json:"gomaxprocs"`
	ActionsPerOp    int     `json:"actions_per_op"`
	NsPerAction     float64 `json:"ns_per_action"`
	AllocsPerAction float64 `json:"allocs_per_action"`
	// Open-system rows additionally record the arrival process and
	// admission policy that shaped the run; closed rows omit them.
	Arrivals string `json:"arrivals,omitempty"`
	Admit    string `json:"admit,omitempty"`
}

// fleetBenchBatch reads the batch size under test from
// FLEET_BENCH_BATCH (CI sweeps {1, 32}); unset selects the scheduler
// default.
func fleetBenchBatch(b *testing.B) int {
	env := os.Getenv("FLEET_BENCH_BATCH")
	if env == "" {
		return fleet.DefaultBatchCycles
	}
	batch, err := strconv.Atoi(env)
	if err != nil || batch <= 0 {
		b.Fatalf("FLEET_BENCH_BATCH=%q: want a positive integer", env)
	}
	return batch
}

// fleetBenchFile keeps the default-batch results in the canonical
// tracked file; swept batches land in their own artifacts.
func fleetBenchFile(batch int) string {
	if batch == fleet.DefaultBatchCycles {
		return "BENCH_fleet.json"
	}
	return fmt.Sprintf("BENCH_fleet_batch%d.json", batch)
}

// E11 — fleet throughput: the paper-encoder fleet through the
// zero-retention stats path, serially and on the shard-affine scheduler
// at 1/2/4/8 workers. Each sub-benchmark reports ns/action and
// allocs/action (stream setup included, so the steady-state figure is
// bounded by BenchmarkFleetStep) and the harness writes the set — host
// shape and batch size included — to BENCH_fleet.json. The
// serial-uncached row runs the table-probing manager with the
// regions.DecisionPlan bypassed, so the plan cache's contribution is
// the serial-uncached → serial delta, separate from the scheduler's.
// NB: single-core hosts only show scheduling overhead across worker
// counts.
func BenchmarkFleetThroughput(b *testing.B) {
	s := experiment.Paper(1)
	s.Cycles = 2
	const streams = 8
	batch := fleetBenchBatch(b)
	s.Relaxed().Decide(0, 0) // build the shared decision plan outside the timed regions
	actionsPerOp := streams * s.Cycles * s.Sys.NumActions()
	var order []string
	byName := map[string]fleetBenchRow{}

	// batchUsed is 0 for the serial rows: they never enter the
	// scheduler, so labelling them with the swept batch size would make
	// identical configurations look different across artifacts.
	measure := func(name string, workers, batchUsed int, run func() error) {
		b.Run(name, func(b *testing.B) {
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			start := time.Now()
			for i := 0; i < b.N; i++ {
				if err := run(); err != nil {
					b.Fatal(err)
				}
			}
			elapsed := time.Since(start)
			runtime.ReadMemStats(&after)
			total := float64(b.N) * float64(actionsPerOp)
			row := fleetBenchRow{
				Name:            name,
				Streams:         streams,
				Workers:         workers,
				BatchCycles:     batchUsed,
				Cycles:          s.Cycles,
				NumCPU:          runtime.NumCPU(),
				Gomaxprocs:      runtime.GOMAXPROCS(0),
				ActionsPerOp:    actionsPerOp,
				NsPerAction:     float64(elapsed.Nanoseconds()) / total,
				AllocsPerAction: float64(after.Mallocs-before.Mallocs) / total,
			}
			b.ReportMetric(row.NsPerAction, "ns/action")
			b.ReportMetric(row.AllocsPerAction, "allocs/action")
			// The harness re-invokes sub-benchmarks while calibrating
			// b.N; keep only the final (largest-N) run per config.
			if _, seen := byName[name]; !seen {
				order = append(order, name)
			}
			byName[name] = row
		})
	}

	serialLoop := func(mk func() ([]fleet.Stream, error)) func() error {
		return func() error {
			strs, err := mk()
			if err != nil {
				return err
			}
			for k := range strs {
				st := strs[k]
				st.Runner.Sink = sim.NewStatsSink(st.Runner.Sys.NumLevels())
				if _, err := st.Runner.Run(); err != nil {
					return err
				}
			}
			return nil
		}
	}
	measure("serial", 0, 0, serialLoop(func() ([]fleet.Stream, error) { return s.FleetStreams(1, streams) }))
	measure("serial-uncached", 0, 0, serialLoop(func() ([]fleet.Stream, error) { return s.FleetStreamsUncached(1, streams) }))
	for _, w := range []int{1, 2, 4, 8} {
		w := w
		measure(fmt.Sprintf("fleet-workers=%d", w), w, batch, func() error {
			strs, err := s.FleetStreams(1, streams)
			if err != nil {
				return err
			}
			res, err := fleet.RunStats(fleet.Config{Streams: strs, Workers: w, BatchCycles: batch})
			if err != nil {
				return err
			}
			return res.Err()
		})
	}

	if len(order) == 0 {
		return // sub-benchmark filter excluded everything
	}
	rows := make([]fleetBenchRow, 0, len(order))
	for _, name := range order {
		rows = append(rows, byName[name])
	}
	mergeFleetBenchRows(b, fleetBenchFile(batch), rows)
}

// mergeFleetBenchRows folds rows into the artifact file without
// clobbering rows other benchmarks wrote: existing rows with the same
// names are replaced, everything else is preserved in order. This is
// how the closed and open row families coexist in BENCH_fleet.json
// whichever benchmark runs first (or alone, as in the CI smoke steps).
func mergeFleetBenchRows(b *testing.B, file string, rows []fleetBenchRow) {
	b.Helper()
	replaced := map[string]bool{}
	for _, r := range rows {
		replaced[r.Name] = true
	}
	var all []fleetBenchRow
	if raw, err := os.ReadFile(file); err == nil {
		var prev []fleetBenchRow
		if err := json.Unmarshal(raw, &prev); err != nil {
			b.Fatalf("%s exists but does not parse: %v", file, err)
		}
		for _, r := range prev {
			if !replaced[r.Name] {
				all = append(all, r)
			}
		}
	}
	all = append(all, rows...)
	out, err := json.MarshalIndent(all, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(file, append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Logf("merged %d rows into %s (%d total)", len(rows), file, len(all))
}

// E12 — open-system throughput: the paper-encoder fleet arriving as a
// Poisson process under cap-K admission, through the zero-retention
// continuous engine. One op is the whole open run (arrival ordering,
// admission decisions, continuous injection on the worker pool,
// lifecycle bookkeeping included), normalised to ns/action and
// allocs/action over the actions the admitted streams execute —
// directly comparable with the closed rows, so the artifact tracks the
// open engine's overhead as its own row family in BENCH_fleet.json.
//
// The sweep runs the wave-free engine at workers 1, 2 and 4 — the
// scaling acceptance rows (flat on a single-core host, rising speedup
// with num_cpu > 1) — plus the serial wave spec as the before-state
// baseline the engine is measured against. Each configuration reuses an
// OpenScratch, so the rows report the engine's steady state, not
// first-run slab growth.
func BenchmarkFleetOpen(b *testing.B) {
	s := experiment.Paper(1)
	s.Cycles = 2
	const streams = 8
	batch := fleetBenchBatch(b)
	s.Relaxed().Decide(0, 0) // build the shared decision plan outside the timed region
	proc := arrivals.Poisson{MeanGap: s.Period, Seed: 7}
	times, err := proc.Times(streams)
	if err != nil {
		b.Fatal(err)
	}
	adm := fleet.CapK{K: 4, Queue: -1} // unbounded queue: every stream runs
	actionsPerOp := streams * s.Cycles * s.Sys.NumActions()
	var order []string
	byName := map[string]fleetBenchRow{}

	measure := func(name string, workers int, run func(cfg fleet.OpenConfig) (*fleet.OpenResult, error)) {
		b.Run(name, func(b *testing.B) {
			scratch := fleet.NewOpenScratch()
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			start := time.Now()
			for i := 0; i < b.N; i++ {
				strs, err := s.FleetStreams(1, streams)
				if err != nil {
					b.Fatal(err)
				}
				res, err := run(fleet.OpenConfig{
					Streams:     strs,
					Arrivals:    times,
					Admit:       adm,
					Workers:     workers,
					BatchCycles: batch,
					Scratch:     scratch,
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := res.Err(); err != nil {
					b.Fatal(err)
				}
				if res.Admitted != streams {
					b.Fatalf("admitted %d of %d streams", res.Admitted, streams)
				}
			}
			elapsed := time.Since(start)
			runtime.ReadMemStats(&after)
			total := float64(b.N) * float64(actionsPerOp)
			row := fleetBenchRow{
				Name:            name,
				Streams:         streams,
				Workers:         workers,
				BatchCycles:     batch,
				Cycles:          s.Cycles,
				NumCPU:          runtime.NumCPU(),
				Gomaxprocs:      runtime.GOMAXPROCS(0),
				ActionsPerOp:    actionsPerOp,
				NsPerAction:     float64(elapsed.Nanoseconds()) / total,
				AllocsPerAction: float64(after.Mallocs-before.Mallocs) / total,
				Arrivals:        proc.Name(),
				Admit:           adm.Name(),
			}
			b.ReportMetric(row.NsPerAction, "ns/action")
			b.ReportMetric(row.AllocsPerAction, "allocs/action")
			if _, seen := byName[name]; !seen {
				order = append(order, name)
			}
			byName[name] = row
		})
	}

	measure("open-serial-spec", 2, fleet.OpenRunStatsSerial)
	for _, w := range []int{1, 2, 4} {
		measure(fmt.Sprintf("open-poisson-cap4-workers=%d", w), w, fleet.OpenRunStats)
	}

	if len(order) == 0 {
		return // sub-benchmark filter excluded everything
	}
	rows := make([]fleetBenchRow, 0, len(order))
	for _, name := range order {
		rows = append(rows, byName[name])
	}
	mergeFleetBenchRows(b, fleetBenchFile(batch), rows)
}
