package repro

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/experiment"
	"repro/internal/sim"
)

// E10 — the steady-state fleet hot path. One op is one Stream.Step — a
// full 1,189-action frame of the paper's encoder under the relaxed
// manager feeding a StatsSink. The acceptance bar of the zero-retention
// sink layer is 0 allocs/op: quality management, content drawing and
// statistics aggregation all run without touching the heap, so fleet
// memory is O(streams) however long the streams run.
func BenchmarkFleetStep(b *testing.B) {
	s := experiment.Paper(1)
	r := &sim.Runner{
		Sys:      s.Sys,
		Mgr:      s.Relaxed(),
		Exec:     s.Exec,
		Overhead: s.Overhead,
		Cycles:   1 << 30, // steady state: never exhausts within a benchmark
		Period:   s.Period,
		Sink:     sim.NewStatsSink(s.Sys.NumLevels()),
	}
	st, err := r.Stream()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !st.Step() {
			b.Fatal("stream exhausted")
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*s.Sys.NumActions()), "ns/action")
}

// fleetBenchRow is one configuration of the throughput harness; the set
// is serialised to BENCH_fleet.json so CI can track the perf trajectory.
type fleetBenchRow struct {
	Name            string  `json:"name"`
	Streams         int     `json:"streams"`
	Workers         int     `json:"workers"` // 0 = serial loop, no pool
	Cycles          int     `json:"cycles"`
	ActionsPerOp    int     `json:"actions_per_op"`
	NsPerAction     float64 `json:"ns_per_action"`
	AllocsPerAction float64 `json:"allocs_per_action"`
}

// E11 — fleet throughput: the paper-encoder fleet through the
// zero-retention stats path, serially and on 1/2/4/8 workers. Each
// sub-benchmark reports ns/action and allocs/action (stream setup
// included, so the steady-state figure is bounded by BenchmarkFleetStep)
// and the harness writes the set to BENCH_fleet.json. NB: single-core
// hosts only show scheduling overhead across worker counts.
func BenchmarkFleetThroughput(b *testing.B) {
	s := experiment.Paper(1)
	s.Cycles = 2
	const streams = 8
	actionsPerOp := streams * s.Cycles * s.Sys.NumActions()
	var order []string
	byName := map[string]fleetBenchRow{}

	measure := func(name string, workers int, run func() error) {
		b.Run(name, func(b *testing.B) {
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			start := time.Now()
			for i := 0; i < b.N; i++ {
				if err := run(); err != nil {
					b.Fatal(err)
				}
			}
			elapsed := time.Since(start)
			runtime.ReadMemStats(&after)
			total := float64(b.N) * float64(actionsPerOp)
			row := fleetBenchRow{
				Name:            name,
				Streams:         streams,
				Workers:         workers,
				Cycles:          s.Cycles,
				ActionsPerOp:    actionsPerOp,
				NsPerAction:     float64(elapsed.Nanoseconds()) / total,
				AllocsPerAction: float64(after.Mallocs-before.Mallocs) / total,
			}
			b.ReportMetric(row.NsPerAction, "ns/action")
			b.ReportMetric(row.AllocsPerAction, "allocs/action")
			// The harness re-invokes sub-benchmarks while calibrating
			// b.N; keep only the final (largest-N) run per config.
			if _, seen := byName[name]; !seen {
				order = append(order, name)
			}
			byName[name] = row
		})
	}

	measure("serial", 0, func() error {
		strs, err := s.FleetStreams(1, streams)
		if err != nil {
			return err
		}
		for k := range strs {
			st := strs[k]
			st.Runner.Sink = sim.NewStatsSink(st.Runner.Sys.NumLevels())
			if _, err := st.Runner.Run(); err != nil {
				return err
			}
		}
		return nil
	})
	for _, w := range []int{1, 2, 4, 8} {
		w := w
		measure(fmt.Sprintf("fleet-workers=%d", w), w, func() error {
			res, err := s.RunFleetStats(1, streams, w)
			if err != nil {
				return err
			}
			return res.Err()
		})
	}

	if len(order) == 0 {
		return // sub-benchmark filter excluded everything
	}
	rows := make([]fleetBenchRow, 0, len(order))
	for _, name := range order {
		rows = append(rows, byName[name])
	}
	out, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_fleet.json", append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Logf("wrote BENCH_fleet.json (%d configurations)", len(rows))
}
