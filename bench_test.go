// Package repro's root benchmarks regenerate every table and figure of
// the paper's evaluation (§4) plus the ablations listed in DESIGN.md §4.
// Each benchmark both measures the Go implementation (ns/op of the
// mechanism under test) and attaches the reproduced experimental
// quantities as custom metrics (overhead percentages, average qualities,
// table sizes), so `go test -bench=. -benchmem` prints the full
// reproduction alongside the machine numbers. EXPERIMENTS.md records a
// reference run against the paper's values.
package repro

import (
	"fmt"
	"slices"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/fleet"
	"repro/internal/linconstr"
	"repro/internal/metrics"
	"repro/internal/power"
	"repro/internal/profiler"
	"repro/internal/regions"
	"repro/internal/sim"
	"repro/internal/speed"
	"repro/internal/workloads"
)

// E8 — per-decision cost of the three §4.1 Quality Managers on the
// paper-sized system (1,189 actions, 7 levels). The paper's overhead
// ranking (numeric ≫ symbolic > relaxed-per-action) comes straight from
// these costs.
func BenchmarkNumericDecision(b *testing.B) {
	s := experiment.Paper(1)
	m := s.Numeric()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Decide(i%s.Sys.NumActions(), 500*core.Millisecond)
	}
}

func BenchmarkSymbolicDecision(b *testing.B) {
	s := experiment.Paper(1)
	m := s.Symbolic()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Decide(i%s.Sys.NumActions(), 500*core.Millisecond)
	}
}

func BenchmarkRelaxedDecision(b *testing.B) {
	s := experiment.Paper(1)
	m := s.Relaxed()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Decide(i%s.Sys.NumActions(), 500*core.Millisecond)
	}
}

// E2/Fig 4 — quality-region table construction (the Matlab prototype's
// job, done natively). Compares the O(n·|Q|) builder per op.
func BenchmarkFig4QualityRegions(b *testing.B) {
	sys := profiler.IPodSystem()
	b.ResetTimer()
	var tab *regions.TDTable
	for i := 0; i < b.N; i++ {
		tab = regions.BuildTDTable(sys)
	}
	b.ReportMetric(float64(tab.NumEntries()), "integers")
	b.ReportMetric(float64(tab.MemoryBytes()), "bytes")
}

// E3/Figs 5–6 — control-relaxation table construction for the paper's
// ρ = {1,10,20,30,40,50}.
func BenchmarkFig6RelaxRegions(b *testing.B) {
	sys := profiler.IPodSystem()
	tab := regions.BuildTDTable(sys)
	b.ResetTimer()
	var rt *regions.RelaxTables
	for i := 0; i < b.N; i++ {
		rt = regions.MustBuildRelaxTables(tab, experiment.PaperRho)
	}
	b.ReportMetric(float64(rt.NumEntries()), "integers")
	b.ReportMetric(float64(rt.MemoryBytes()), "bytes")
}

// E4 — §4.1 memory accounting: 8,323 and 99,876 integers.
func BenchmarkTableMemory(b *testing.B) {
	sys := profiler.IPodSystem()
	b.ReportAllocs()
	var q, r int
	for i := 0; i < b.N; i++ {
		tab := regions.BuildTDTable(sys)
		rt := regions.MustBuildRelaxTables(tab, experiment.PaperRho)
		q, r = tab.NumEntries(), rt.NumEntries()
	}
	b.ReportMetric(float64(q), "Rq_integers")
	b.ReportMetric(float64(r), "Rrq_integers")
}

// E5 — §4.2 overhead table: one sub-benchmark per manager runs the full
// 29-frame experiment and reports the management overhead percentage
// (paper: 5.7 / 1.9 / <1.1).
func BenchmarkOverheadTable(b *testing.B) {
	s := experiment.Paper(1)
	for _, m := range s.Managers() {
		m := m
		b.Run(m.Name(), func(b *testing.B) {
			var tr *sim.Trace
			for i := 0; i < b.N; i++ {
				tr = s.Run(m)
			}
			b.ReportMetric(100*tr.OverheadFraction(), "overhead_pct")
			b.ReportMetric(float64(tr.Misses), "misses")
		})
	}
}

// E6/Fig 7 — average quality per frame across the three managers.
func BenchmarkFig7AverageQuality(b *testing.B) {
	s := experiment.Paper(1)
	for _, m := range s.Managers() {
		m := m
		b.Run(m.Name(), func(b *testing.B) {
			var tr *sim.Trace
			for i := 0; i < b.N; i++ {
				tr = s.Run(m)
			}
			sum := metrics.Summarize(tr)
			avg := metrics.AvgQualityPerCycle(tr)
			b.ReportMetric(sum.AvgQuality, "avg_quality")
			b.ReportMetric(avg[0], "frame0_quality")
			b.ReportMetric(avg[14], "frame14_quality")
		})
	}
}

// E7/Fig 8 — per-action overhead of the symbolic manager with and
// without control relaxation over one frame, plus the adaptive-band
// statistics (paper: r = 40 / 1 / 10 bands).
func BenchmarkFig8OverheadSeries(b *testing.B) {
	s := experiment.Paper(1)
	for _, v := range []struct {
		name string
		mgr  core.Manager
	}{
		{"no-relaxation", s.Symbolic()},
		{"control-relaxation", s.Relaxed()},
	} {
		v := v
		b.Run(v.name, func(b *testing.B) {
			var tr *sim.Trace
			for i := 0; i < b.N; i++ {
				tr = s.RunCycles(v.mgr, 1)
			}
			pts := metrics.OverheadSeries(tr, 0, experiment.Fig8From, experiment.Fig8To)
			var total core.Time
			for _, p := range pts {
				total += p.Overhead
			}
			b.ReportMetric(total.Millis()/float64(len(pts)), "mean_overhead_ms")
			bands := metrics.Bands(tr, 0)
			maxR := 0
			for _, bd := range bands {
				if bd.Steps > maxR {
					maxR = bd.Steps
				}
			}
			b.ReportMetric(float64(len(bands)), "bands")
			b.ReportMetric(float64(maxR), "max_r")
		})
	}
}

// E9 — fleet scaling: 16 independent paper-encoder streams on the
// concurrent multi-stream engine, swept over worker-pool sizes. The
// per-stream traces are byte-identical across the sweep (the engine's
// determinism guarantee), so ns/op isolates pure scheduling speedup;
// near-linear scaling to the core count is the expected shape, and the
// fleet-wide miss rate rides along as a metric.
func BenchmarkFleet16Streams(b *testing.B) {
	s := experiment.Paper(1)
	s.Cycles = 4
	const streams = 16
	for _, w := range []int{1, 2, 4, 8} {
		w := w
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			var res *fleet.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = s.RunFleet(1, streams, w)
				if err != nil {
					b.Fatal(err)
				}
			}
			if err := res.Err(); err != nil {
				b.Fatal(err)
			}
			fs := metrics.AggregateTraces(res.Traces())
			b.ReportMetric(100*fs.MissRate, "missrate_pct")
			b.ReportMetric(fs.AvgQuality, "avg_quality")
		})
	}
}

// E1/Fig 3 — speed-diagram evaluation cost and the ideal-speed spread of
// the encoder system.
func BenchmarkFig3SpeedDiagram(b *testing.B) {
	sys := profiler.IPodSystem()
	d, err := speed.NewFinalDiagram(sys)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := i % sys.NumActions()
		d.OptimalSpeed(st, 400*core.Millisecond, core.Level(i%7))
	}
	b.ReportMetric(d.IdealSpeed(0), "v_idl_qmin")
	b.ReportMetric(d.IdealSpeed(6), "v_idl_qmax")
}

// A1 — ρ-set ablation: relaxation-step sets trade table memory against
// decision count.
func BenchmarkAblationRhoSweep(b *testing.B) {
	s := experiment.Paper(1)
	sets := []struct {
		name string
		rho  []int
	}{
		{"rho=1", []int{1}},
		{"rho=1,5", []int{1, 5}},
		{"rho=paper", experiment.PaperRho},
		{"rho=dense", []int{1, 2, 5, 10, 20, 40, 80, 160}},
	}
	for _, set := range sets {
		set := set
		b.Run(set.name, func(b *testing.B) {
			rt := regions.MustBuildRelaxTables(s.Tab, set.rho)
			m := regions.NewRelaxedManager(rt)
			var tr *sim.Trace
			for i := 0; i < b.N; i++ {
				tr = s.Run(m)
			}
			b.ReportMetric(float64(tr.Decisions), "decisions")
			b.ReportMetric(100*tr.OverheadFraction(), "overhead_pct")
			b.ReportMetric(float64(rt.MemoryBytes()), "table_bytes")
		})
	}
}

// A2 — policy ablation: the safe policy (Csf) against the mixed policy
// (CD); the mixed policy buys smoothness (§2.2.2).
func BenchmarkAblationPolicies(b *testing.B) {
	s := experiment.Paper(1)
	for _, v := range []struct {
		name string
		mgr  core.Manager
	}{
		{"safe", core.NewSafeManager(s.Sys)},
		{"mixed", s.Numeric()},
	} {
		v := v
		b.Run(v.name, func(b *testing.B) {
			var tr *sim.Trace
			for i := 0; i < b.N; i++ {
				tr = s.Run(v.mgr)
			}
			sum := metrics.Summarize(tr)
			b.ReportMetric(sum.Smooth.MeanAbsDelta, "mean_abs_dq")
			b.ReportMetric(float64(sum.Smooth.Switches), "switches")
			b.ReportMetric(sum.AvgQuality, "avg_quality")
			b.ReportMetric(float64(sum.Misses), "misses")
		})
	}
}

// A3 — related-work baselines (§1): misses and quality against the
// managed run under identical content.
func BenchmarkAblationBaselines(b *testing.B) {
	s := experiment.Paper(1)
	mk := []struct {
		name string
		mgr  func() core.Manager
	}{
		{"relaxed-qm", func() core.Manager { return s.Relaxed() }},
		{"fixed-qmax", func() core.Manager { return core.FixedManager{Level: s.Sys.QMax()} }},
		{"skip-over", func() core.Manager { return baseline.NewSkipManager(s.Sys, s.Sys.QMax()) }},
		{"pid", func() core.Manager { return baseline.NewPIDManager(s.Sys, 4, 0.5, 0.05, 0.1) }},
	}
	for _, v := range mk {
		v := v
		b.Run(v.name, func(b *testing.B) {
			var tr *sim.Trace
			for i := 0; i < b.N; i++ {
				tr = s.Run(v.mgr()) // fresh instance: PID carries state
			}
			sum := metrics.Summarize(tr)
			b.ReportMetric(float64(sum.Misses), "misses")
			b.ReportMetric(sum.AvgQuality, "avg_quality")
			b.ReportMetric(sum.Smooth.MeanAbsDelta, "mean_abs_dq")
		})
	}
}

// A6 — generality: the full manager stack on the non-encoder workloads
// (audio encoder, SDR pipeline, video decoder), reporting overhead and
// decision counts per workload under the relaxed manager.
func BenchmarkAblationWorkloads(b *testing.B) {
	cat, err := workloads.Catalog()
	if err != nil {
		b.Fatal(err)
	}
	names := make([]string, 0, len(cat))
	for name := range cat {
		names = append(names, name)
	}
	slices.Sort(names)
	for _, name := range names {
		sys := cat[name]
		b.Run(name, func(b *testing.B) {
			tab := regions.BuildTDTable(sys)
			rt := regions.MustBuildRelaxTables(tab, []int{1, 5, 10, 25})
			mgr := regions.NewRelaxedManager(rt)
			var tr *sim.Trace
			for i := 0; i < b.N; i++ {
				tr = (&sim.Runner{Sys: sys, Mgr: mgr,
					Exec:     sim.Content{Sys: sys, NoiseAmp: 0.3, Seed: 5},
					Overhead: sim.IPodOverhead, Cycles: 10}).MustRun()
			}
			b.ReportMetric(float64(tr.Misses), "misses")
			b.ReportMetric(100*tr.OverheadFraction(), "overhead_pct")
			b.ReportMetric(float64(len(tr.Records))/float64(tr.Decisions), "mean_relax")
		})
	}
}

// A4 — conclusion extension: deadline-safe energy minimisation.
func BenchmarkExtensionPower(b *testing.B) {
	const n = 80
	work := make([]power.Workload, n)
	var avTotal core.Time
	for i := range work {
		av := core.Time(150+50*(i%4)) * core.Microsecond
		work[i] = power.Workload{Av: av, WC: av * 7 / 5, Deadline: core.TimeInf}
		avTotal += av
	}
	work[n-1].Deadline = avTotal * 11 / 5
	sys, fs, err := power.System(work, []float64{1.0, 0.85, 0.7, 0.6, 0.5, 0.4})
	if err != nil {
		b.Fatal(err)
	}
	tab := regions.BuildTDTable(sys)
	mgr := regions.NewRelaxedManager(regions.MustBuildRelaxTables(tab, []int{1, 5, 10, 20}))
	run := func(m core.Manager) *sim.Trace {
		return (&sim.Runner{Sys: sys, Mgr: m, Exec: sim.Content{Sys: sys, NoiseAmp: 0.25, Seed: 11},
			Overhead: sim.FreeOverhead, Cycles: 25}).MustRun()
	}
	var ctrl, fmax *sim.Trace
	for i := 0; i < b.N; i++ {
		ctrl = run(mgr)
		fmax = run(core.FixedManager{Level: 0})
	}
	b.ReportMetric(100*power.Savings(ctrl, fmax, fs), "energy_savings_pct")
	b.ReportMetric(float64(ctrl.Misses), "misses")
}

// A5 — conclusion extension: piecewise-linear region approximation,
// memory saved vs quality lost on the encoder system.
func BenchmarkExtensionLinConstr(b *testing.B) {
	s := experiment.Paper(1)
	for _, eps := range []core.Time{100 * core.Microsecond, core.Millisecond, 10 * core.Millisecond} {
		eps := eps
		b.Run(fmt.Sprintf("eps=%v", eps), func(b *testing.B) {
			var approx *linconstr.Table
			for i := 0; i < b.N; i++ {
				var err error
				approx, err = linconstr.Approximate(s.Tab, eps)
				if err != nil {
					b.Fatal(err)
				}
			}
			tr := (&sim.Runner{Sys: s.Sys, Mgr: linconstr.NewManager(approx), Exec: s.Exec,
				Overhead: s.Overhead, Cycles: 5, Period: s.Period}).MustRun()
			exact := (&sim.Runner{Sys: s.Sys, Mgr: s.Symbolic(), Exec: s.Exec,
				Overhead: s.Overhead, Cycles: 5, Period: s.Period}).MustRun()
			b.ReportMetric(float64(approx.MemoryBytes()), "bytes")
			b.ReportMetric(100*float64(approx.MemoryBytes())/float64(s.Tab.MemoryBytes()), "memory_pct")
			b.ReportMetric(metrics.Summarize(exact).AvgQuality-metrics.Summarize(tr).AvgQuality, "quality_loss")
			b.ReportMetric(float64(tr.Misses), "misses")
		})
	}
}
