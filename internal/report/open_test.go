package report

import (
	"strings"
	"testing"

	"repro/internal/arrivals"
	"repro/internal/experiment"
	"repro/internal/fleet"
	"repro/internal/metrics"
)

func openFixture(t *testing.T) *fleet.OpenResult {
	t.Helper()
	streams, err := experiment.WorkloadFleet(7, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	period := streams[0].Runner.Sys.LastDeadline()
	times, err := arrivals.Poisson{MeanGap: period, Seed: 3}.Times(len(streams))
	if err != nil {
		t.Fatal(err)
	}
	res, err := fleet.OpenRunStats(fleet.OpenConfig{
		Streams:  streams,
		Arrivals: times,
		Admit:    fleet.CapK{K: 2, Queue: 1},
		Workers:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestOpenTable(t *testing.T) {
	res := openFixture(t)
	flat := res.FleetResult()
	out := OpenTable(res, metrics.SummarizeOpen(res.OpenObservations), flat, Aggregate(flat))
	for _, want := range []string{
		"open fleet — stream lifecycle",
		"open fleet — aggregate",
		"admission wait",
		"time in system",
		"backlog",
		"fleet — aggregate", // the closed aggregation over executed streams
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("OpenTable output missing %q:\n%s", want, out)
		}
	}
	// Every stream appears by name.
	for _, lc := range res.Lifecycles {
		if !strings.Contains(out, lc.Name) {
			t.Fatalf("OpenTable output missing stream %q", lc.Name)
		}
	}
}

func TestAggregateMatchesFleetTable(t *testing.T) {
	res := openFixture(t)
	fs := Aggregate(res.FleetResult())
	if fs.Streams == 0 || fs.Records == 0 {
		t.Fatalf("empty aggregate: %+v", fs)
	}
	if fs.Streams != res.Admitted {
		t.Fatalf("aggregate has %d streams, run admitted %d", fs.Streams, res.Admitted)
	}
}

func TestFleetDocTextAndChart(t *testing.T) {
	res := openFixture(t)
	open := metrics.SummarizeOpen(res.OpenObservations)
	doc := &metrics.FleetDoc{
		Label:   "workloads",
		Mode:    "open",
		Streams: len(res.Streams),
		Cycles:  2,
		Summary: Aggregate(res.FleetResult()),
		Open:    &open,
	}
	out := FleetDocText(doc)
	for _, want := range []string{"persisted run", "quality histogram", "population", "admission wait"} {
		if !strings.Contains(out, want) {
			t.Fatalf("FleetDocText missing %q:\n%s", want, out)
		}
	}
	chart := FleetQualityChart(doc)
	if len(chart.Series) != 1 || len(chart.Series[0].X) != len(doc.Summary.QualityHist) {
		t.Fatalf("chart shape wrong: %+v", chart)
	}
	if !strings.Contains(chart.CSV(), "fleet") {
		t.Fatal("chart CSV missing the series")
	}
}
