package report

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/plot"
)

// Aggregate computes the cross-stream FleetSummary of a fleet result,
// whichever path produced it (retained traces or streamed stats) — the
// exported form of the aggregation FleetTable renders, for callers that
// persist the summary instead of printing it.
func Aggregate(res *fleet.Result) metrics.FleetSummary {
	traces, stats := streamAggregates(res)
	return metrics.AggregateStats(traces, stats)
}

// OpenTable formats an open-system fleet run: the per-stream lifecycle
// (arrival, admission wait, service, sojourn, outcome), the open-system
// aggregate — admission and shed rates, backlog depth, wait and sojourn
// percentiles — and then the usual cross-stream quality aggregation over
// the streams that actually ran. sum, flat and fs must be the run's
// open summary (metrics.SummarizeOpen over res.OpenObservations),
// executed-stream projection (res.FleetResult()) and fleet aggregate
// (Aggregate(flat)) — callers that also persist them compute each once
// and the printed and persisted aggregates cannot diverge.
func OpenTable(res *fleet.OpenResult, sum metrics.OpenSummary, flat *fleet.Result, fs metrics.FleetSummary) string {
	var b strings.Builder
	fmt.Fprintln(&b, "== open fleet — stream lifecycle ==")
	fmt.Fprintf(&b, "%-4s %-18s %14s %14s %14s %14s  %s\n",
		"#", "stream", "arrival", "wait", "service", "sojourn", "outcome")
	for k, lc := range res.Lifecycles {
		outcome := "admitted"
		if lc.Queued {
			outcome = "queued, admitted"
		}
		if lc.Shed {
			outcome = "shed"
			if lc.Queued {
				outcome = "queued, shed"
			}
			fmt.Fprintf(&b, "%-4d %-18s %14v %14s %14s %14s  %s\n",
				k, lc.Name, lc.Arrival, "-", "-", "-", outcome)
			continue
		}
		if err := res.Streams[k].Err; err != nil {
			fmt.Fprintf(&b, "%-4d %-18s %14v error: %v\n", k, lc.Name, lc.Arrival, err)
			continue
		}
		fmt.Fprintf(&b, "%-4d %-18s %14v %14v %14v %14v  %s\n",
			k, lc.Name, lc.Arrival, lc.Wait(), lc.Departed-lc.Admitted, lc.Sojourn(), outcome)
	}
	fmt.Fprintln(&b, "\n== open fleet — aggregate ==")
	writeOpenSummary(&b, sum)
	fmt.Fprintf(&b, "span                %v (last departure at %v)\n\n", sum.Span, sum.Final)
	b.WriteString(FleetTable(flat, fs))
	return b.String()
}

// FleetDocText renders a persisted fleet document as the report section
// cmd/figures prints: the run headline, the cross-stream aggregate, and
// the open-system aggregate when the run was open.
func FleetDocText(doc *metrics.FleetDoc) string {
	var b strings.Builder
	fmt.Fprintln(&b, "== fleet — persisted run ==")
	fmt.Fprintf(&b, "run                 %s, %d streams × %d cycles, %d workers, batch %d, seed %d (%s)\n",
		doc.Label, doc.Streams, doc.Cycles, doc.Workers, doc.BatchCycles, doc.Seed, doc.Mode)
	if doc.Arrivals != "" {
		fmt.Fprintf(&b, "arrivals            %s\n", doc.Arrivals)
	}
	if doc.Admission != "" {
		fmt.Fprintf(&b, "admission           %s\n", doc.Admission)
	}
	fs := doc.Summary
	fmt.Fprintf(&b, "actions executed    %d (%d manager decisions)\n", fs.Records, fs.Decisions)
	fmt.Fprintf(&b, "deadline misses     %d / %d (%.4f%% miss rate, worst stream %.4f%%)\n",
		fs.Misses, fs.DeadlineRecords, 100*fs.MissRate, 100*fs.WorstStreamMissRate)
	fmt.Fprintf(&b, "avg quality         %.3f\n", fs.AvgQuality)
	fmt.Fprintf(&b, "quality histogram   %s\n", histogram(fs.QualityHist, fs.Records))
	fmt.Fprintf(&b, "mgmt overhead       %.2f%% of busy time\n", 100*fs.OverheadFraction)
	fmt.Fprintf(&b, "utilization         p50 %.3f  p90 %.3f  max %.3f\n",
		fs.UtilizationP50, fs.UtilizationP90, fs.UtilizationMax)
	if doc.Open != nil {
		writeOpenSummary(&b, *doc.Open)
	}
	if doc.Cluster != nil {
		writeClusterSummary(&b, doc.Cluster)
	}
	return b.String()
}

// ClusterTable formats a routed scale-out run: the routing headline
// (instances, policy, fairness), one row per engine instance, the
// merged global aggregate, and then the usual cross-stream quality
// aggregation over the streams that ran. cs, flat and fs must be the
// run's cluster summary, executed-stream projection and fleet
// aggregate, computed once by the caller exactly as with OpenTable.
func ClusterTable(cs *metrics.ClusterSummary, flat *fleet.Result, fs metrics.FleetSummary) string {
	var b strings.Builder
	writeClusterSummary(&b, cs)
	fmt.Fprintln(&b, "\n== cluster — global aggregate ==")
	writeOpenSummary(&b, cs.Global)
	fmt.Fprintf(&b, "span                %v (last departure at %v)\n\n", cs.Global.Span, cs.Global.Final)
	b.WriteString(FleetTable(flat, fs))
	return b.String()
}

// writeClusterSummary renders the routed scale-out section shared by
// the live report (ClusterTable) and the persisted-doc view
// (FleetDocText).
func writeClusterSummary(w io.Writer, cs *metrics.ClusterSummary) {
	fmt.Fprintln(w, "== cluster — routed scale-out ==")
	fmt.Fprintf(w, "routing             %d instances, policy %s, fairness %.3f\n",
		cs.Instances, cs.Route, cs.Fairness)
	fmt.Fprintf(w, "%-4s %7s %9s %6s %12s %12s %12s\n",
		"inst", "routed", "admitted", "shed", "backlog max", "wait p90", "sojourn p90")
	for _, is := range cs.PerInstance {
		fmt.Fprintf(w, "%-4d %7d %9d %6d %12d %12v %12v\n",
			is.Instance, is.Routed, is.Open.Admitted, is.Open.Shed,
			is.Open.MaxBacklog, is.Open.WaitP90, is.Open.SojournP90)
	}
}

// writeOpenSummary renders the open-system aggregate lines shared by the
// live report (OpenTable) and the persisted-doc view (FleetDocText).
func writeOpenSummary(w io.Writer, o metrics.OpenSummary) {
	fmt.Fprintf(w, "population          %d streams: %d admitted (%.1f%%), %d delayed, %d shed (%.1f%%)\n",
		o.Streams, o.Admitted, 100*o.AdmitRate, o.Delayed, o.Shed, 100*o.ShedRate)
	if o.Failed > 0 {
		fmt.Fprintf(w, "failed              %d admitted streams failed validation and never ran\n", o.Failed)
	}
	fmt.Fprintf(w, "backlog             max %d, time-weighted mean %.3f\n", o.MaxBacklog, o.MeanBacklog)
	fmt.Fprintf(w, "admission wait      p50 %v  p90 %v  max %v\n", o.WaitP50, o.WaitP90, o.WaitMax)
	fmt.Fprintf(w, "time in system      p50 %v  p90 %v  max %v\n", o.SojournP50, o.SojournP90, o.SojournMax)
}

// FleetQualityChart turns a persisted fleet summary's quality histogram
// into a chart (fraction of executed actions per level), the fleet
// artefact cmd/figures emits next to the paper's figures.
func FleetQualityChart(doc *metrics.FleetDoc) *plot.Chart {
	chart := &plot.Chart{
		Title:  fmt.Sprintf("fleet quality histogram — %s (%s)", doc.Label, doc.Mode),
		XLabel: "quality level",
		YLabel: "fraction of executed actions",
	}
	fs := doc.Summary
	ser := plot.Series{Name: "fleet"}
	for q, c := range fs.QualityHist {
		frac := 0.0
		if fs.Records > 0 {
			frac = float64(c) / float64(fs.Records)
		}
		ser.X = append(ser.X, float64(q))
		ser.Y = append(ser.Y, frac)
	}
	chart.Series = append(chart.Series, ser)
	return chart
}
