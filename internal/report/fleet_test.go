package report

import (
	"strings"
	"testing"
)

func TestFleetTableContents(t *testing.T) {
	s := *shared
	s.Cycles = 2 // keep the table run short; shared has 29-frame streams
	res, err := s.RunFleet(11, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Inject one failed stream to exercise the error row.
	res.Streams[2].Err = errTest{}
	res.Streams[2].Trace = nil
	out := FleetTable(res, Aggregate(res))
	for _, want := range []string{
		"per-stream results", "encoder-000", "encoder-003",
		"error: boom", "fleet — aggregate",
		"streams             3 (1 failed)", "quality histogram", "utilization",
		"miss rate", "p50", "p90",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("fleet table missing %q:\n%s", want, out)
		}
	}
}

type errTest struct{}

func (errTest) Error() string { return "boom" }
