package report

import (
	"strings"
	"testing"

	"repro/internal/experiment"
)

// setup is shared across tests (building it once keeps the suite fast).
var shared = experiment.Paper(1)
var sharedTraces = Traces(shared)

func TestOverheadTableContents(t *testing.T) {
	out := OverheadTable(sharedTraces)
	for _, want := range []string{"numeric", "symbolic", "relaxed", "overhead %", "paper:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("overhead table missing %q:\n%s", want, out)
		}
	}
	// The three data rows must appear in paper order.
	iN := strings.Index(out, "numeric")
	iS := strings.Index(out, "symbolic")
	iR := strings.Index(out, "relaxed")
	if !(iN < iS && iS < iR) {
		t.Fatal("manager rows out of order")
	}
}

func TestMemoryTableContents(t *testing.T) {
	out := MemoryTable(shared)
	if !strings.Contains(out, "8323 integers") || !strings.Contains(out, "99876 integers") {
		t.Fatalf("memory table missing paper counts:\n%s", out)
	}
}

func TestFig7Shape(t *testing.T) {
	chart := Fig7(sharedTraces)
	if len(chart.Series) != 3 {
		t.Fatalf("fig7 series count %d", len(chart.Series))
	}
	for _, s := range chart.Series {
		if len(s.X) != shared.Cycles {
			t.Fatalf("series %q has %d points, want %d", s.Name, len(s.X), shared.Cycles)
		}
		for _, y := range s.Y {
			if y < 0 || y > 6 {
				t.Fatalf("series %q quality %v out of range", s.Name, y)
			}
		}
	}
}

func TestFig8ShapeAndBands(t *testing.T) {
	chart, bands := Fig8(shared)
	if len(chart.Series) != 2 {
		t.Fatalf("fig8 series count %d", len(chart.Series))
	}
	want := experiment.Fig8To - experiment.Fig8From + 1
	for _, s := range chart.Series {
		if len(s.X) != want {
			t.Fatalf("series %q has %d points, want %d", s.Name, len(s.X), want)
		}
	}
	if len(bands) < 4 {
		t.Fatalf("only %d bands", len(bands))
	}
	txt := BandsText(bands)
	if !strings.Contains(txt, "r = ") || !strings.Contains(txt, "paper:") {
		t.Fatalf("bands text malformed:\n%s", txt)
	}
}

func TestFig3Builds(t *testing.T) {
	chart, err := Fig3(shared, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(chart.Series) != 2 {
		t.Fatalf("fig3 series count %d", len(chart.Series))
	}
	// The ideal line runs corner to corner.
	ideal := chart.Series[1]
	if ideal.Y[0] != 0 || ideal.X[0] != 0 {
		t.Fatal("ideal line must start at the origin")
	}
}

func TestFig4MonotoneBorders(t *testing.T) {
	chart := Fig4(shared)
	if len(chart.Series) != 7 {
		t.Fatalf("fig4 series count %d", len(chart.Series))
	}
	for _, s := range chart.Series {
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] < s.Y[i-1] {
				t.Fatalf("series %q not non-decreasing at %d", s.Name, i)
			}
		}
	}
}

func TestFig6NestedBorders(t *testing.T) {
	chart := Fig6(shared, 4)
	if len(chart.Series) != len(experiment.PaperRho) {
		t.Fatalf("fig6 series count %d", len(chart.Series))
	}
	// r = 1 border (first series) dominates every larger-r border at
	// shared x positions.
	base := chart.Series[0]
	for _, s := range chart.Series[1:] {
		for j := range s.X {
			if j < len(base.Y) && s.X[j] == base.X[j] && s.Y[j] > base.Y[j]+1e-9 {
				t.Fatalf("series %q exceeds the r=1 border at x=%v", s.Name, s.X[j])
			}
		}
	}
}
