// Package report builds the reproduction's tables and figures as data
// (plot.Chart values and formatted text), so that the artefact generation
// is unit-testable and cmd/figures stays a thin I/O shell.
package report

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/metrics"
	"repro/internal/plot"
	"repro/internal/sim"
	"repro/internal/speed"
)

// Traces runs the three §4.1 managers over the setup and returns their
// traces keyed by manager name.
func Traces(s *experiment.Setup) map[string]*sim.Trace {
	out := make(map[string]*sim.Trace, 3)
	for _, m := range s.Managers() {
		out[m.Name()] = s.Run(m)
	}
	return out
}

// ManagerOrder is the paper's presentation order.
var ManagerOrder = []string{"numeric", "symbolic", "relaxed"}

// OverheadTable formats the §4.2 overhead comparison.
func OverheadTable(traces map[string]*sim.Trace) string {
	var b strings.Builder
	fmt.Fprintln(&b, "== §4.2 execution-time overhead of quality management ==")
	fmt.Fprintf(&b, "%-10s %12s %12s %10s %10s %8s\n",
		"manager", "overhead %", "avg quality", "decisions", "mean r", "misses")
	for _, name := range ManagerOrder {
		sum := metrics.Summarize(traces[name])
		fmt.Fprintf(&b, "%-10s %11.2f%% %12.3f %10d %10.1f %8d\n",
			name, 100*sum.OverheadFraction, sum.AvgQuality, sum.Decisions, sum.MeanRelaxSteps, sum.Misses)
	}
	fmt.Fprintf(&b, "paper:     numeric 5.7%%, symbolic 1.9%%, relaxed <1.1%%\n")
	return b.String()
}

// MemoryTable formats the §4.1 table-size accounting.
func MemoryTable(s *experiment.Setup) string {
	var b strings.Builder
	fmt.Fprintln(&b, "== §4.1 symbolic table sizes ==")
	fmt.Fprintf(&b, "quality regions:    %6d integers (paper: 8,323), %7d bytes resident\n",
		s.Tab.NumEntries(), s.Tab.MemoryBytes())
	fmt.Fprintf(&b, "relaxation regions: %6d integers (paper: 99,876), %7d bytes resident\n",
		s.Relax.NumEntries(), s.Relax.MemoryBytes())
	return b.String()
}

// Fig7 builds the average-quality-per-frame chart.
func Fig7(traces map[string]*sim.Trace) *plot.Chart {
	chart := &plot.Chart{
		Title:  "Fig. 7 — average quality level per frame",
		XLabel: "frame number",
		YLabel: "average quality level",
	}
	for _, name := range []string{"relaxed", "symbolic", "numeric"} {
		avg := metrics.AvgQualityPerCycle(traces[name])
		ser := plot.Series{Name: name}
		for c, v := range avg {
			ser.X = append(ser.X, float64(c))
			ser.Y = append(ser.Y, v)
		}
		chart.Series = append(chart.Series, ser)
	}
	return chart
}

// Fig8 builds the per-action overhead chart over the paper's a200–a700
// window, for the symbolic manager with and without relaxation, plus the
// band listing.
func Fig8(s *experiment.Setup) (*plot.Chart, []metrics.Band) {
	symTr := s.RunCycles(s.Symbolic(), 1)
	relTr := s.RunCycles(s.Relaxed(), 1)
	chart := &plot.Chart{
		Title:  "Fig. 8 — overhead in execution time (one frame)",
		XLabel: "action number",
		YLabel: "overhead (ms)",
	}
	for _, v := range []struct {
		name string
		tr   *sim.Trace
	}{
		// No-relaxation first so sparse relaxation spikes stay visible
		// on the ASCII grid.
		{"symbolic -- no control relaxation", symTr},
		{"symbolic -- control relaxation", relTr},
	} {
		pts := metrics.OverheadSeries(v.tr, 0, experiment.Fig8From, experiment.Fig8To)
		ser := plot.Series{Name: v.name}
		for _, p := range pts {
			ser.X = append(ser.X, float64(p.Index))
			ser.Y = append(ser.Y, p.Overhead.Millis())
		}
		chart.Series = append(chart.Series, ser)
	}
	return chart, metrics.Bands(relTr, 0)
}

// BandsText formats the Fig. 8 relaxation bands.
func BandsText(bands []metrics.Band) string {
	var b strings.Builder
	fmt.Fprintln(&b, "== Fig. 8 adaptive relaxation bands (full frame) ==")
	for _, bd := range bands {
		fmt.Fprintf(&b, "  r = %-3d from a%d to a%d\n", bd.Steps, bd.From, bd.To)
	}
	fmt.Fprintf(&b, "paper: r = 40 (a200–a421), r = 1 (a422–a564), r = 10 (a565–a700)\n")
	return b.String()
}

// Fig3 builds the speed-diagram trajectory chart of one controlled frame.
func Fig3(s *experiment.Setup, refQ core.Level) (*plot.Chart, error) {
	d, err := speed.NewFinalDiagram(s.Sys)
	if err != nil {
		return nil, err
	}
	tr := s.RunCycles(s.Relaxed(), 1)
	traj := plot.Series{Name: "controlled trajectory"}
	for _, r := range tr.Records {
		if r.Index%25 != 0 {
			continue
		}
		traj.X = append(traj.X, r.RelStart(s.Period).Millis())
		traj.Y = append(traj.Y, d.VirtualTime(r.Index, refQ)/float64(core.Millisecond))
	}
	ideal := plot.Series{Name: "ideal (45°)"}
	D := d.Deadline().Millis()
	for f := 0.0; f <= 1.0; f += 0.05 {
		ideal.X = append(ideal.X, f*D)
		ideal.Y = append(ideal.Y, f*D)
	}
	return &plot.Chart{
		Title:  "Fig. 3 — speed diagram (one controlled frame)",
		XLabel: "actual time (ms)",
		YLabel: "virtual time (ms)",
		Series: []plot.Series{traj, ideal},
	}, nil
}

// Fig4 builds the quality-region border chart: tD(s_i, q) over the state
// index for every level.
func Fig4(s *experiment.Setup) *plot.Chart {
	chart := &plot.Chart{
		Title:  "Fig. 4 — quality region borders tD(s_i, q)",
		XLabel: "state index i",
		YLabel: "tD (ms)",
	}
	for q := core.Level(0); q <= s.Sys.QMax(); q++ {
		ser := plot.Series{Name: q.String()}
		for i := 0; i < s.Sys.NumActions(); i += 10 {
			td := s.Tab.TD(i, q)
			if td.IsInf() {
				continue
			}
			ser.X = append(ser.X, float64(i))
			ser.Y = append(ser.Y, td.Millis())
		}
		chart.Series = append(chart.Series, ser)
	}
	return chart
}

// Fig6 builds the relaxation-border chart for one level: tD,r(s_i, q)
// for each r ∈ ρ.
func Fig6(s *experiment.Setup, q core.Level) *plot.Chart {
	chart := &plot.Chart{
		Title:  fmt.Sprintf("Fig. 6 — relaxation region borders tD,r(s_i, %v)", q),
		XLabel: "state index i",
		YLabel: "upper border (ms)",
	}
	for ri, r := range s.Relax.Rho() {
		ser := plot.Series{Name: fmt.Sprintf("r=%d", r)}
		for i := 0; i+r <= s.Sys.NumActions(); i += 10 {
			_, hi := s.Relax.Interval(i, q, ri)
			if hi.IsInf() || hi <= core.TimeNegInf {
				continue
			}
			ser.X = append(ser.X, float64(i))
			ser.Y = append(ser.Y, hi.Millis())
		}
		chart.Series = append(chart.Series, ser)
	}
	return chart
}
