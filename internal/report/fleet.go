package report

import (
	"fmt"
	"strings"

	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// FleetTable formats the cross-stream view of a fleet run: one line per
// stream (including failed ones), then the fleet-wide aggregation —
// miss rates, the quality histogram and the utilisation distribution.
// fs must be the run's aggregate (Aggregate(res), which accepts both
// retained and zero-retention results) — callers that also persist it
// compute it once and the printed and persisted summaries cannot
// diverge.
func FleetTable(res *fleet.Result, fs metrics.FleetSummary) string {
	var b strings.Builder
	fmt.Fprintln(&b, "== fleet — per-stream results ==")
	fmt.Fprintf(&b, "%-4s %-18s %8s %9s %12s %11s %6s\n",
		"#", "stream", "misses", "missrate", "avg quality", "overhead %", "util")
	si := 0
	for k, s := range res.Streams {
		if s.Err != nil {
			fmt.Fprintf(&b, "%-4d %-18s error: %v\n", k, s.Name, s.Err)
			continue
		}
		sum := fs.PerStream[si]
		fmt.Fprintf(&b, "%-4d %-18s %8d %8.3f%% %12.3f %10.2f%% %6.3f\n",
			k, s.Name, sum.Misses, 100*fs.PerStreamMissRate[si], sum.AvgQuality,
			100*sum.OverheadFraction, fs.PerStreamUtilization[si])
		si++
	}
	fmt.Fprintln(&b, "\n== fleet — aggregate ==")
	fmt.Fprintf(&b, "streams             %d (%d failed)\n", fs.Streams, len(res.Streams)-fs.Streams)
	fmt.Fprintf(&b, "actions executed    %d (%d manager decisions)\n", fs.Records, fs.Decisions)
	fmt.Fprintf(&b, "deadline misses     %d / %d (%.4f%% miss rate, worst stream %.4f%%)\n",
		fs.Misses, fs.DeadlineRecords, 100*fs.MissRate, 100*fs.WorstStreamMissRate)
	fmt.Fprintf(&b, "avg quality         %.3f\n", fs.AvgQuality)
	fmt.Fprintf(&b, "quality histogram   %s\n", histogram(fs.QualityHist, fs.Records))
	fmt.Fprintf(&b, "mgmt overhead       %.2f%% of busy time\n", 100*fs.OverheadFraction)
	fmt.Fprintf(&b, "utilization         p50 %.3f  p90 %.3f  max %.3f\n",
		fs.UtilizationP50, fs.UtilizationP90, fs.UtilizationMax)
	return b.String()
}

// streamAggregates keeps stream order but passes nil for failed streams
// (which AggregateStats skips), pairing each healthy stream's scalar
// trace with its streamed stats — replayed from the retained records
// when the stream ran without a sink.
func streamAggregates(res *fleet.Result) ([]*sim.Trace, []*sim.StatsSink) {
	traces := make([]*sim.Trace, len(res.Streams))
	stats := make([]*sim.StatsSink, len(res.Streams))
	for k, s := range res.Streams {
		if s.Err != nil {
			continue
		}
		traces[k] = s.Trace
		if s.Stats != nil {
			stats[k] = s.Stats
		} else {
			stats[k] = metrics.StatsOfTrace(s.Trace)
		}
	}
	return traces, stats
}

func histogram(hist []int, total int) string {
	if total == 0 {
		return "(empty)"
	}
	parts := make([]string, len(hist))
	for q, c := range hist {
		parts[q] = fmt.Sprintf("q%d:%.1f%%", q, 100*float64(c)/float64(total))
	}
	return strings.Join(parts, " ")
}
