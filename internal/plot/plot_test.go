package plot

import (
	"strings"
	"testing"
)

func sample() *Chart {
	return &Chart{
		Title:  "test chart",
		XLabel: "frame",
		YLabel: "quality",
		Series: []Series{
			{Name: "a", X: []float64{0, 1, 2, 3}, Y: []float64{1, 2, 3, 2}},
			{Name: "b", X: []float64{0, 1, 2, 3}, Y: []float64{3, 3, 1, 1}},
		},
	}
}

func TestASCIIContainsStructure(t *testing.T) {
	out := sample().ASCII(40, 10)
	if !strings.Contains(out, "test chart") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatal("missing series markers")
	}
	if !strings.Contains(out, "frame") || !strings.Contains(out, "quality") {
		t.Fatal("missing axis labels")
	}
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Fatal("missing legend")
	}
}

func TestASCIIMinimumDimensions(t *testing.T) {
	// Tiny requested sizes are clamped, not crashed.
	out := sample().ASCII(1, 1)
	if len(out) == 0 {
		t.Fatal("empty output")
	}
}

func TestASCIIEmptyChart(t *testing.T) {
	c := &Chart{Title: "empty"}
	if out := c.ASCII(30, 8); !strings.Contains(out, "empty") {
		t.Fatal("empty chart should still render")
	}
}

func TestCSV(t *testing.T) {
	out := sample().CSV()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "x,a,b" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 5 {
		t.Fatalf("row count %d", len(lines))
	}
	if lines[1] != "0,1,3" {
		t.Fatalf("first row = %q", lines[1])
	}
}

func TestCSVMissingPoints(t *testing.T) {
	c := &Chart{Series: []Series{
		{Name: "p", X: []float64{0, 2}, Y: []float64{5, 7}},
		{Name: "q", X: []float64{1}, Y: []float64{9}},
	}}
	lines := strings.Split(strings.TrimSpace(c.CSV()), "\n")
	if lines[2] != "1,,9" {
		t.Fatalf("sparse row = %q", lines[2])
	}
}

func TestCSVEscapesCommas(t *testing.T) {
	c := &Chart{Series: []Series{{Name: "a,b", X: []float64{0}, Y: []float64{1}}}}
	if !strings.Contains(c.CSV(), "a;b") {
		t.Fatal("comma in series name not escaped")
	}
}

func TestSVGWellFormedEnough(t *testing.T) {
	out := sample().SVG(400, 300)
	for _, want := range []string{"<svg", "</svg>", "<polyline", "test chart"} {
		if !strings.Contains(out, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	if strings.Count(out, "<polyline") != 2 {
		t.Fatal("series count mismatch")
	}
}

func TestSVGEscapesMarkup(t *testing.T) {
	c := &Chart{Title: `a<b & "c"`, Series: []Series{{Name: "s", X: []float64{0, 1}, Y: []float64{0, 1}}}}
	out := c.SVG(200, 100)
	if strings.Contains(out, "a<b") {
		t.Fatal("title not escaped")
	}
	if !strings.Contains(out, "a&lt;b &amp; &quot;c&quot;") {
		t.Fatal("escape sequence wrong")
	}
}

func TestScale(t *testing.T) {
	if scale(5, 0, 10, 100) != 50 {
		t.Fatal("midpoint scaling")
	}
	if scale(0, 0, 10, 100) != 0 || scale(10, 0, 10, 100) != 100 {
		t.Fatal("endpoint scaling")
	}
	if scale(5, 5, 5, 100) != 0 {
		t.Fatal("degenerate range")
	}
}
