// Package plot renders the reproduction's figures as ASCII charts for
// terminals, CSV for spreadsheets, and minimal SVG for documents — all
// stdlib-only.
package plot

import (
	"fmt"
	"math"
	"slices"
	"strings"
)

// Series is one named line of a chart.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Chart is a collection of series with axis labels.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// markers cycles through per-series point glyphs.
var markers = []byte{'*', '+', 'o', 'x', '#', '@'}

// ASCII renders the chart as a width×height character grid with axes,
// min/max annotations and a legend.
func (c *Chart) ASCII(width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 8 {
		height = 8
	}
	xmin, xmax, ymin, ymax := c.bounds()
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range c.Series {
		mk := markers[si%len(markers)]
		for i := range s.X {
			col := scale(s.X[i], xmin, xmax, width-1)
			row := height - 1 - scale(s.Y[i], ymin, ymax, height-1)
			if col >= 0 && col < width && row >= 0 && row < height {
				grid[row][col] = mk
			}
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	fmt.Fprintf(&b, "%10.3g ┤", ymax)
	b.WriteString(string(grid[0]))
	b.WriteByte('\n')
	for r := 1; r < height-1; r++ {
		b.WriteString("           │")
		b.Write(grid[r])
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%10.3g ┤%s\n", ymin, string(grid[height-1]))
	fmt.Fprintf(&b, "           └%s\n", strings.Repeat("─", width))
	fmt.Fprintf(&b, "            %-10.4g%s%10.4g\n", xmin, strings.Repeat(" ", max(width-20, 1)), xmax)
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "            x: %s, y: %s\n", c.XLabel, c.YLabel)
	}
	for si, s := range c.Series {
		fmt.Fprintf(&b, "            %c %s\n", markers[si%len(markers)], s.Name)
	}
	return b.String()
}

// CSV renders the chart as "x,<series...>" rows on the union of the
// series' x values; missing points are left empty.
func (c *Chart) CSV() string {
	xs := map[float64]bool{}
	for _, s := range c.Series {
		for _, x := range s.X {
			xs[x] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	slices.Sort(sorted)
	var b strings.Builder
	b.WriteString("x")
	for _, s := range c.Series {
		b.WriteString(",")
		b.WriteString(strings.ReplaceAll(s.Name, ",", ";"))
	}
	b.WriteByte('\n')
	for _, x := range sorted {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range c.Series {
			b.WriteString(",")
			if y, ok := lookup(s, x); ok {
				fmt.Fprintf(&b, "%g", y)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SVG renders the chart as a simple polyline SVG document.
func (c *Chart) SVG(width, height int) string {
	if width < 100 {
		width = 100
	}
	if height < 80 {
		height = 80
	}
	const margin = 40
	xmin, xmax, ymin, ymax := c.bounds()
	colors := []string{"#d62728", "#1f77b4", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d">`+"\n", width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		margin, height-margin, width-margin/2, height-margin)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		margin, height-margin, margin, margin/2)
	if c.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="16" font-size="13">%s</text>`+"\n", margin, xmlEscape(c.Title))
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="10">%.4g</text>`+"\n", margin, height-margin+14, xmin)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="10">%.4g</text>`+"\n", width-margin, height-margin+14, xmax)
	fmt.Fprintf(&b, `<text x="2" y="%d" font-size="10">%.4g</text>`+"\n", height-margin, ymin)
	fmt.Fprintf(&b, `<text x="2" y="%d" font-size="10">%.4g</text>`+"\n", margin/2+10, ymax)
	plotW := width - margin - margin/2
	plotH := height - margin - margin/2
	for si, s := range c.Series {
		color := colors[si%len(colors)]
		var pts []string
		for i := range s.X {
			px := margin + scale(s.X[i], xmin, xmax, plotW)
			py := height - margin - scale(s.Y[i], ymin, ymax, plotH)
			pts = append(pts, fmt.Sprintf("%d,%d", px, py))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n",
			strings.Join(pts, " "), color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11" fill="%s">%s</text>`+"\n",
			width-margin-120, margin/2+16*si+12, color, xmlEscape(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func (c *Chart) bounds() (xmin, xmax, ymin, ymax float64) {
	xmin, ymin = math.Inf(1), math.Inf(1)
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			xmin = min(xmin, s.X[i])
			xmax = max(xmax, s.X[i])
			ymin = min(ymin, s.Y[i])
			ymax = max(ymax, s.Y[i])
		}
	}
	if math.IsInf(xmin, 1) { // empty chart
		return 0, 1, 0, 1
	}
	if xmin == xmax {
		xmax = xmin + 1
	}
	if ymin == ymax {
		ymax = ymin + 1
	}
	return xmin, xmax, ymin, ymax
}

func lookup(s Series, x float64) (float64, bool) {
	for i := range s.X {
		if s.X[i] == x {
			return s.Y[i], true
		}
	}
	return 0, false
}

func scale(v, lo, hi float64, span int) int {
	if hi <= lo {
		return 0
	}
	p := (v - lo) / (hi - lo)
	return int(math.Round(p * float64(span)))
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
