package profiler

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/encoder"
	"repro/internal/frame"
)

func TestIPodModelShape(t *testing.T) {
	m := IPodModel()
	if m.Levels != 7 {
		t.Fatalf("levels = %d", m.Levels)
	}
	for _, cls := range []string{encoder.ClassSetup, encoder.ClassMotion, encoder.ClassTransform, encoder.ClassCode} {
		ct, ok := m.Classes[cls]
		if !ok {
			t.Fatalf("missing class %s", cls)
		}
		for q := 0; q < 7; q++ {
			if ct.Av[q] <= 0 || ct.WC[q] < ct.Av[q] {
				t.Fatalf("class %s level %d: av %v wc %v", cls, q, ct.Av[q], ct.WC[q])
			}
			if q > 0 && (ct.Av[q] < ct.Av[q-1] || ct.WC[q] < ct.WC[q-1]) {
				t.Fatalf("class %s not monotone at %d", cls, q)
			}
		}
	}
	// Per-macroblock average at level q must be 1.2 ms + 0.3q ms.
	me := m.Classes[encoder.ClassMotion]
	tq := m.Classes[encoder.ClassTransform]
	vl := m.Classes[encoder.ClassCode]
	for q := 0; q < 7; q++ {
		total := me.Av[q] + tq.Av[q] + vl.Av[q]
		want := 1200*core.Microsecond + core.Time(q)*300*core.Microsecond
		if total != want {
			t.Fatalf("per-MB average at q%d = %v, want %v", q, total, want)
		}
	}
}

func TestIPodSystemMatchesPaperDimensions(t *testing.T) {
	sys := IPodSystem()
	if sys.NumActions() != 1189 {
		t.Fatalf("actions = %d, want 1189", sys.NumActions())
	}
	if sys.NumLevels() != 7 {
		t.Fatalf("levels = %d, want 7", sys.NumLevels())
	}
	if err := sys.Feasible(); err != nil {
		t.Fatal(err)
	}
	if sys.LastDeadline() != FramePeriod {
		t.Fatalf("deadline = %v, want %v", sys.LastDeadline(), FramePeriod)
	}
	// The paper's operating regime: qmax must NOT fit the budget on
	// average (otherwise management is trivial), but some middle level
	// must.
	if sys.AvPrefix(sys.NumActions(), sys.QMax()) <= FramePeriod {
		t.Fatal("qmax average workload fits the frame budget; regime too easy")
	}
	if sys.AvPrefix(sys.NumActions(), 4) >= FramePeriod {
		t.Fatal("level 4 average workload exceeds the frame budget; regime too hard")
	}
}

func TestTablesSystemValidation(t *testing.T) {
	m := IPodModel()
	if _, err := m.System(4, core.Second); err != nil {
		t.Fatalf("small system rejected: %v", err)
	}
	// Remove a class → must fail.
	delete(m.Classes, encoder.ClassCode)
	if _, err := m.System(4, core.Second); err == nil {
		t.Fatal("missing class accepted")
	}
	// Infeasible deadline → must fail.
	m2 := IPodModel()
	if _, err := m2.System(396, core.Millisecond); err == nil {
		t.Fatal("infeasible deadline accepted")
	}
}

func TestProfileRealEncoder(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling the real encoder is slow")
	}
	src := &frame.Source{W: 64, H: 48, Seed: 3}
	e := encoder.MustNew(src, 4)
	tabs, err := Profile(e, 3, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	for cls, ct := range tabs.Classes {
		for q := 0; q < tabs.Levels; q++ {
			if ct.WC[q] < ct.Av[q] {
				t.Fatalf("class %s level %d: wc < av", cls, q)
			}
			if q > 0 && ct.Av[q] < ct.Av[q-1] {
				t.Fatalf("class %s av not monotone", cls)
			}
		}
	}
	// Motion estimation must get more expensive with quality on any
	// real machine (radius grows 16×).
	me := tabs.Classes[encoder.ClassMotion]
	if me.Av[tabs.Levels-1] <= me.Av[0] {
		t.Fatalf("profiled ME time flat: %v vs %v", me.Av[0], me.Av[tabs.Levels-1])
	}
	// And the tables must assemble into a feasible system with a
	// generous deadline.
	total := core.Time(0)
	for i := 0; i < 1+3*12; i++ {
		ct := tabs.Classes[encoder.ActionClass(i)]
		total += ct.WC[0]
	}
	if _, err := tabs.System(12, total*2); err != nil {
		t.Fatalf("profiled system rejected: %v", err)
	}
}

func TestProfileValidation(t *testing.T) {
	e := encoder.MustNew(&frame.Source{W: 32, H: 32, Seed: 1}, 3)
	if _, err := Profile(e, 1, 1.3); err == nil {
		t.Error("single frame accepted")
	}
	if _, err := Profile(e, 2, 0.5); err == nil {
		t.Error("margin < 1 accepted")
	}
}

func TestNewCIFEncoder(t *testing.T) {
	e := NewCIFEncoder(1)
	if e.NumActions() != 1189 || e.Levels() != 7 {
		t.Fatalf("CIF encoder: %d actions %d levels", e.NumActions(), e.Levels())
	}
}

func TestDeterministicProfileReproducible(t *testing.T) {
	run := func(seed uint64) *Tables {
		e := encoder.MustNew(&frame.Source{W: 64, H: 48, Seed: 3}, 4)
		tabs, err := ProfileWith(e, 3, 1.3, Deterministic(seed))
		if err != nil {
			t.Fatal(err)
		}
		return tabs
	}
	a, b := run(9), run(9)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed must emit identical Cav/Cwc tables")
	}
	c := run(10)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds should emit different tables")
	}
	// The synthetic tables must still satisfy Definition 1 and assemble
	// into a feasible system, like wall-clock ones.
	for cls, ct := range a.Classes {
		for q := 0; q < a.Levels; q++ {
			if ct.WC[q] < ct.Av[q] {
				t.Fatalf("class %s level %d: wc < av", cls, q)
			}
			if q > 0 && (ct.Av[q] < ct.Av[q-1] || ct.WC[q] < ct.WC[q-1]) {
				t.Fatalf("class %s tables not monotone", cls)
			}
		}
	}
	total := core.Time(0)
	for i := 0; i < 1+3*12; i++ {
		total += a.Classes[encoder.ActionClass(i)].WC[0]
	}
	if _, err := a.System(12, total*2); err != nil {
		t.Fatalf("synthetic system rejected: %v", err)
	}
}

func TestProfileWithNilMeasurer(t *testing.T) {
	e := encoder.MustNew(&frame.Source{W: 32, H: 32, Seed: 1}, 3)
	if _, err := ProfileWith(e, 2, 1.3, nil); err == nil {
		t.Error("nil measurer accepted")
	}
}
