// Package profiler estimates the execution-time functions Cav and Cwc of
// the encoder substrate, mirroring the paper's methodology ("for the
// iPod, we estimated worst-case and average execution times by
// profiling"). It offers two paths:
//
//   - Profile runs the real Go encoder and measures per-class times on
//     the host (used by cmd/qmprofile and the live example);
//   - IPodModel is a deterministic synthetic timing model with the same
//     structure, calibrated to the paper's platform scale (≈1 s per CIF
//     frame, 30 s for 29 frames), so the reproduction figures are
//     machine-independent and bit-reproducible.
package profiler

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/encoder"
	"repro/internal/frame"
	"repro/internal/sim"
)

// ClassTiming holds per-quality timing estimates for one action class.
type ClassTiming struct {
	Av []core.Time `json:"av"`
	WC []core.Time `json:"wc"`
}

// Tables maps action classes to their timing estimates.
type Tables struct {
	Levels  int                    `json:"levels"`
	Classes map[string]ClassTiming `json:"classes"`
}

// Measurer executes one encoder action and reports its execution time.
// Profiling threads an explicit Measurer through the whole run, so the
// timing source is a parameter rather than an ambient reach for the
// wall clock: WallClock profiles the real host, Deterministic(seed)
// replaces it with a seeded synthetic model whose Cav/Cwc tables are
// bit-reproducible across runs and machines.
type Measurer func(e *encoder.Encoder, frame, action int, q core.Level) time.Duration

// WallClock returns the host-clock measurer: it runs the action and
// times it with the real-time clock (the paper's "estimated ... by
// profiling" step, inherently machine-dependent).
func WallClock() Measurer {
	return func(e *encoder.Encoder, _, action int, q core.Level) time.Duration {
		start := time.Now()
		e.Exec(action, q)
		return time.Since(start)
	}
}

// Deterministic returns a seeded synthetic measurer: it still executes
// the action (so the encoder's internal state advances exactly as under
// wall-clock profiling) but reports a duration drawn from a pure hash
// of (seed, class, frame, action, quality) over an iPod-shaped cost
// model. Two profiling runs with the same seed emit identical tables.
func Deterministic(seed uint64) Measurer {
	base := map[string]time.Duration{
		encoder.ClassSetup:     400 * time.Microsecond,
		encoder.ClassMotion:    25 * time.Microsecond,
		encoder.ClassTransform: 30 * time.Microsecond,
		encoder.ClassCode:      18 * time.Microsecond,
	}
	return func(e *encoder.Encoder, frame, action int, q core.Level) time.Duration {
		e.Exec(action, q)
		cls := encoder.ActionClass(action)
		b := base[cls]
		// Quality scales cost linearly; jitter stays within ±20 % so the
		// max-over-frames worst case remains close to the average, like a
		// quiet host. The explicit float64 conversions on the products
		// force their rounding before the add: the spec otherwise lets a
		// compiler contract x*y+z into FMA (arm64 does, amd64 does not),
		// which would break byte-reproducibility between architectures.
		scale := 1 + float64(0.35*float64(q))
		jitter := 1 + float64(0.2*(2*sim.HashUnit(seed, uint64(frame)<<32|uint64(action), uint64(q))-1))
		return time.Duration(float64(b) * scale * jitter)
	}
}

// Profile measures the encoder's per-class execution times over the given
// number of frames at every quality level, on the host clock. The
// worst-case estimate is the observed maximum inflated by the safety
// margin (paper: conservative estimates; margin 1.3 is the default used
// by cmd/qmprofile). For reproducible tables, use ProfileWith and a
// Deterministic measurer.
func Profile(e *encoder.Encoder, frames int, margin float64) (*Tables, error) {
	return ProfileWith(e, frames, margin, WallClock())
}

// ProfileWith is Profile with an explicit timing source.
func ProfileWith(e *encoder.Encoder, frames int, margin float64, measure Measurer) (*Tables, error) {
	if frames < 2 {
		return nil, fmt.Errorf("profiler: need ≥2 frames (first is intra), got %d", frames)
	}
	if margin < 1 {
		return nil, fmt.Errorf("profiler: margin %v < 1", margin)
	}
	if measure == nil {
		return nil, fmt.Errorf("profiler: nil measurer")
	}
	levels := e.Levels()
	sums := map[string][]time.Duration{}
	maxs := map[string][]time.Duration{}
	counts := map[string][]int{}
	for _, cls := range []string{encoder.ClassSetup, encoder.ClassMotion, encoder.ClassTransform, encoder.ClassCode} {
		sums[cls] = make([]time.Duration, levels)
		maxs[cls] = make([]time.Duration, levels)
		counts[cls] = make([]int, levels)
	}
	for q := 0; q < levels; q++ {
		for f := 0; f < frames; f++ {
			for i := 0; i < e.NumActions(); i++ {
				cls := encoder.ActionClass(i)
				d := measure(e, f, i, core.Level(q))
				if f == 0 {
					continue // intra frame skews inter-frame classes
				}
				sums[cls][q] += d
				counts[cls][q]++
				if d > maxs[cls][q] {
					maxs[cls][q] = d
				}
			}
		}
	}
	t := &Tables{Levels: levels, Classes: map[string]ClassTiming{}}
	for cls, s := range sums {
		ct := ClassTiming{Av: make([]core.Time, levels), WC: make([]core.Time, levels)}
		for q := 0; q < levels; q++ {
			if counts[cls][q] > 0 {
				ct.Av[q] = core.FromDuration(s[q] / time.Duration(counts[cls][q]))
			}
			ct.WC[q] = core.Time(float64(core.FromDuration(maxs[cls][q])) * margin)
			if ct.WC[q] < ct.Av[q] {
				ct.WC[q] = ct.Av[q]
			}
		}
		t.Classes[cls] = ct
	}
	t.enforceMonotone()
	return t, nil
}

// enforceMonotone repairs small profiling noise so the tables satisfy
// Definition 1 (non-decreasing in quality, Cav ≤ Cwc).
func (t *Tables) enforceMonotone() {
	for cls, ct := range t.Classes {
		for q := 1; q < t.Levels; q++ {
			if ct.Av[q] < ct.Av[q-1] {
				ct.Av[q] = ct.Av[q-1]
			}
			if ct.WC[q] < ct.WC[q-1] {
				ct.WC[q] = ct.WC[q-1]
			}
		}
		for q := 0; q < t.Levels; q++ {
			if ct.WC[q] < ct.Av[q] {
				ct.WC[q] = ct.Av[q]
			}
		}
		t.Classes[cls] = ct
	}
}

// System assembles a parameterized system for an encoder cycle from the
// class tables: action i gets its class's timing row, the final action
// carries the global deadline.
func (t *Tables) System(numMB int, deadline core.Time) (*core.System, error) {
	n := 1 + encoder.ActionsPerMB*numMB
	tt := core.NewTimingTable(n, t.Levels)
	for i := 0; i < n; i++ {
		ct, ok := t.Classes[encoder.ActionClass(i)]
		if !ok {
			return nil, fmt.Errorf("profiler: missing class %q", encoder.ActionClass(i))
		}
		for q := 0; q < t.Levels; q++ {
			tt.Set(i, core.Level(q), ct.Av[q], ct.WC[q])
		}
	}
	actions := make([]core.Action, n)
	for i := range actions {
		actions[i] = core.Action{
			Name:     fmt.Sprintf("%s[%d]", encoder.ActionClass(i), encoder.ActionMB(i)),
			Deadline: core.TimeInf,
		}
	}
	actions[n-1].Deadline = deadline
	sys, err := core.NewSystem(actions, tt)
	if err != nil {
		return nil, err
	}
	if err := sys.Feasible(); err != nil {
		return nil, err
	}
	return sys, nil
}

// CIFMBCount is the macroblock count of the paper's CIF input.
const CIFMBCount = 396

// PaperFrames is the length of the paper's input sequence.
const PaperFrames = 29

// PaperDeadline is the paper's single global deadline for the sequence.
const PaperDeadline = 30 * core.Second

// FramePeriod is the per-frame budget: the global 30 s deadline spread
// over the 29-frame input, ≈1.0345 s (the iPod is "too slow for video
// applications").
const FramePeriod = PaperDeadline / PaperFrames

// IPodModel returns the synthetic timing tables of the reproduction's
// iPod stand-in. Per-macroblock work is 1.2 ms + 0.3 ms per quality
// level, split over the three pipeline classes; frame setup is a flat
// 30 ms; worst case is 1.6× average throughout. At the ≈1.0345 s frame
// budget this sustains quality ≈4.5 of 0..6 — the operating point of
// Fig. 7 — and leaves qmax infeasible at frame start, matching the
// paper's need for continuous management.
func IPodModel() *Tables {
	const levels = 7
	t := &Tables{Levels: levels, Classes: map[string]ClassTiming{}}
	mk := func(base, slope core.Time) ClassTiming {
		ct := ClassTiming{Av: make([]core.Time, levels), WC: make([]core.Time, levels)}
		for q := 0; q < levels; q++ {
			av := base + slope*core.Time(q)
			ct.Av[q] = av
			ct.WC[q] = av * 8 / 5
		}
		return ct
	}
	t.Classes[encoder.ClassSetup] = mk(30*core.Millisecond, 0)
	t.Classes[encoder.ClassMotion] = mk(400*core.Microsecond, 150*core.Microsecond)
	t.Classes[encoder.ClassTransform] = mk(500*core.Microsecond, 80*core.Microsecond)
	t.Classes[encoder.ClassCode] = mk(300*core.Microsecond, 70*core.Microsecond)
	return t
}

// IPodSystem builds the paper's 1,189-action, 7-level parameterized
// system on the synthetic iPod model with the per-frame deadline.
func IPodSystem() *core.System {
	sys, err := IPodModel().System(CIFMBCount, FramePeriod)
	if err != nil {
		panic("profiler: iPod model must be feasible: " + err.Error())
	}
	return sys
}

// NewCIFEncoder builds the CIF encoder over the default synthetic source,
// ready for profiling or live control.
func NewCIFEncoder(seed uint64) *encoder.Encoder {
	return encoder.MustNew(frame.NewCIFSource(seed), 7)
}
