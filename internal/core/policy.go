package core

// This file implements the quality-management policies of §2.2.
//
// The mixed policy evaluates, at state i (just before action i) and for a
// candidate level q,
//
//	tD(s_i, q) = min_{k ≥ i, a_k has a deadline} D(a_k) − CD(a_i..a_k, q)
//
// with CD = Cav + δmax, where
//
//	Csf(a_j..a_k, q)  = Cwc(a_j, q) + Σ_{m=j+1..k} Cwc(a_m, qmin)
//	δ(a_j..a_k, q)    = Csf(a_j..a_k, q) − Cav(a_j..a_k, q)
//	δmax(a_i..a_k, q) = max_{i ≤ j ≤ k} δ(a_j..a_k, q).
//
// Substituting prefix sums A_q[·] (average) and W[·] (worst case at qmin),
//
//	Cav(a_i..a_k, q) + δ(a_j..a_k, q)
//	  = Cav(a_i..a_{j-1}, q) + Cwc(a_j, q) + Σ_{m=j+1..k} Cwc(a_m, qmin)
//	  = h_q(j) + W[k+1] − A_q[i],   h_q(j) = Cwc(a_j,q) + A_q[j] − W[j+1],
//
// so that
//
//	CD(a_i..a_k, q) = max_{i ≤ j ≤ k} h_q(j) + W[k+1] − A_q[i]
//	tD(s_i, q)      = A_q[i] + min_{k ≥ i, dl} ( D(a_k) − W[k+1] − max_{i≤j≤k} h_q(j) ).
//
// Each term of the max is a sum of functions non-decreasing in q, which
// proves the paper's claim that tD is non-increasing in q; and enlarging
// the window [i, k] as i decreases only grows the inner max, which proves
// that tD is non-decreasing in i. Both facts are property-tested.
//
// The single-pass form lets the numeric Quality Manager evaluate tD(s_i, q)
// in O(n − i) and is also the seed of the symbolic table builders in the
// regions package.

// Csf returns the safe execution-time estimate Csf(a_i..a_k, q) of §2.2.2:
// worst case for the first action at level q, worst case at qmin for the
// rest (the manager may lower quality after the first action).
func (s *System) Csf(i, k int, q Level) Time {
	if i > k {
		return 0
	}
	return s.timing.WC(i, q) + (s.wminPrefix[k+1] - s.wminPrefix[i+1])
}

// Delta returns δ(a_j..a_k, q) = Csf(a_j..a_k, q) − Cav(a_j..a_k, q), the
// gap between the safe and the average estimate of the suffix j..k.
func (s *System) Delta(j, k int, q Level) Time {
	return s.Csf(j, k, q) - s.AvRange(j, k, q)
}

// DeltaMax returns δmax(a_i..a_k, q) = max_{i≤j≤k} δ(a_j..a_k, q), the
// safety margin of the mixed policy over the window i..k. O(k−i+1).
func (s *System) DeltaMax(i, k int, q Level) Time {
	m := TimeNegInf
	for j := i; j <= k; j++ {
		if d := s.Delta(j, k, q); d > m {
			m = d
		}
	}
	return m
}

// CD returns the mixed execution-time estimate CD(a_i..a_k, q)
// = Cav(a_i..a_k, q) + δmax(a_i..a_k, q). O(k−i+1).
func (s *System) CD(i, k int, q Level) Time {
	return s.AvRange(i, k, q) + s.DeltaMax(i, k, q)
}

// TD evaluates tD(s_i, q) in a single O(n−i) pass using the prefix-sum
// form above. It returns TimeInf when no deadline remains at or after
// action i (the policy constraint is then vacuous and the manager is free
// to choose qmax). i may equal NumActions(), denoting the final state.
func (s *System) TD(i int, q Level) Time {
	n := len(s.actions)
	hq := s.h[int(q)*n : (int(q)+1)*n]
	best := TimeInf
	maxh := TimeNegInf
	for k := i; k < n; k++ {
		if hq[k] > maxh {
			maxh = hq[k]
		}
		if d := s.actions[k].Deadline; d < TimeInf {
			if term := d - s.wminPrefix[k+1] - maxh; term < best {
				best = term
			}
		}
	}
	if best >= TimeInf {
		return TimeInf
	}
	return best + s.avPrefix[i*s.nq+int(q)]
}

// TDNaive evaluates tD(s_i, q) directly from Definition-level formulas
// (min over deadlines of D − CD with the quadratic δmax scan). It exists
// as an executable specification for tests; use TD in production code.
func (s *System) TDNaive(i int, q Level) Time {
	n := len(s.actions)
	best := TimeInf
	for k := i; k < n; k++ {
		if !s.actions[k].HasDeadline() {
			continue
		}
		if v := s.actions[k].Deadline - s.CD(i, k, q); v < best {
			best = v
		}
	}
	return best
}

// PolicyConstraint reports whether quality q satisfies the mixed-policy
// constraint tD(s_i, q) ≥ t at state (i, t).
func (s *System) PolicyConstraint(i int, t Time, q Level) bool {
	return s.TD(i, q) >= t
}

// SafeTD evaluates the *safe* policy's horizon (CD replaced by Csf):
// tDsf(s_i, q) = min_{k≥i, dl} D(a_k) − Csf(a_i..a_k, q). The safe policy
// guarantees deadlines but ignores average behaviour, which makes quality
// fluctuate (start high, end low) — the motivation for the mixed policy.
func (s *System) SafeTD(i int, q Level) Time {
	n := len(s.actions)
	best := TimeInf
	for k := i; k < n; k++ {
		if !s.actions[k].HasDeadline() {
			continue
		}
		if v := s.actions[k].Deadline - s.Csf(i, k, q); v < best {
			best = v
		}
	}
	return best
}
