package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// qcfg derives a RandomSystemConfig from fuzzed bytes, keeping sizes
// small enough for exhaustive inner loops.
func qcfg(a, b, c byte) RandomSystemConfig {
	return RandomSystemConfig{
		Actions:       int(a%28) + 2,
		Levels:        int(b%6) + 2,
		DeadlineEvery: int(c % 7), // 0 = final only
	}
}

// TestQuickTDEquivalence: the prefix-sum single-pass evaluator agrees
// with the definition-level evaluator on arbitrary systems and states.
func TestQuickTDEquivalence(t *testing.T) {
	f := func(seed int64, a, b, c byte, stateRaw, levelRaw uint8) bool {
		sys := RandomSystem(rand.New(rand.NewSource(seed)), qcfg(a, b, c))
		i := int(stateRaw) % (sys.NumActions() + 1)
		q := Level(int(levelRaw) % sys.NumLevels())
		return sys.TD(i, q) == sys.TDNaive(i, q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTDMonotone: tD non-increasing in q and non-decreasing in i,
// at fuzzed positions.
func TestQuickTDMonotone(t *testing.T) {
	f := func(seed int64, a, b, c byte, stateRaw, levelRaw uint8) bool {
		sys := RandomSystem(rand.New(rand.NewSource(seed)), qcfg(a, b, c))
		i := int(stateRaw) % sys.NumActions()
		q := Level(int(levelRaw) % sys.NumLevels())
		if q > 0 && sys.TD(i, q) > sys.TD(i, q-1) {
			return false
		}
		return sys.TD(i+1, q) >= sys.TD(i, q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSafetyInductionStep is the inductive lemma behind the safety
// theorem (Definition 3): if the state (i, t) satisfies the policy
// constraint for the chosen level q, then after executing action i at q
// with ANY actual time ≤ Cwc(a_i, q), the successor state satisfies the
// constraint at qmin. Together with qmin-feasibility at t = 0 this gives
// deadline safety by induction; the simulator tests check the composed
// statement, this checks the step itself.
func TestQuickSafetyInductionStep(t *testing.T) {
	f := func(seed int64, a, b, c byte, stateRaw, levelRaw uint8, frac float64) bool {
		sys := RandomSystem(rand.New(rand.NewSource(seed)), qcfg(a, b, c))
		i := int(stateRaw) % sys.NumActions()
		q := Level(int(levelRaw) % sys.NumLevels())
		td := sys.TD(i, q)
		if td.IsInf() {
			return true // no remaining deadline: nothing to show
		}
		if td < 0 {
			return true // constraint unsatisfiable at this level
		}
		// Any admissible arrival time for level q...
		frac = unitFrac(frac) // [0,1)
		tm := Time(frac * float64(td))
		// ...and any admissible execution time.
		actual := Time(frac * float64(sys.WC(i, q)))
		next := tm + actual
		return sys.TD(i+1, 0) >= next
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickManagerMaximality: the numeric manager's choice satisfies its
// constraint and the next level up violates it.
func TestQuickManagerMaximality(t *testing.T) {
	f := func(seed int64, a, b, c byte, stateRaw uint8, tRaw uint32) bool {
		sys := RandomSystem(rand.New(rand.NewSource(seed)), qcfg(a, b, c))
		m := NewNumericManager(sys)
		i := int(stateRaw) % sys.NumActions()
		tm := Time(tRaw) * Microsecond / 4
		d := m.Decide(i, tm)
		if d.Q < 0 || d.Q > sys.QMax() {
			return false
		}
		// Chosen level satisfies the constraint unless even qmin fails.
		if sys.TD(i, d.Q) < tm && d.Q != 0 {
			return false
		}
		// Maximality: the next level up must violate it.
		if d.Q < sys.QMax() && sys.TD(i, d.Q+1) >= tm {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCsfDecomposition: Csf over a window equals Cwc of the head
// plus the qmin worst case of the tail — the §2.2.2 definition restated
// as an algebraic identity over the prefix sums.
func TestQuickCsfDecomposition(t *testing.T) {
	f := func(seed int64, a, b, c byte, loRaw, hiRaw, levelRaw uint8) bool {
		sys := RandomSystem(rand.New(rand.NewSource(seed)), qcfg(a, b, c))
		i := int(loRaw) % sys.NumActions()
		k := i + int(hiRaw)%(sys.NumActions()-i)
		q := Level(int(levelRaw) % sys.NumLevels())
		want := sys.WC(i, q)
		for j := i + 1; j <= k; j++ {
			want += sys.WC(j, 0)
		}
		return sys.Csf(i, k, q) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// unitFrac maps an arbitrary fuzzed float into [0, 1), treating
// non-finite values as 0.5 (float→int conversion of huge values is
// platform-defined in Go, so plain truncation is unsafe here).
func unitFrac(f float64) float64 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0.5
	}
	f = math.Abs(f)
	return f - math.Floor(f)
}
