package core

import (
	"errors"
	"fmt"
)

// Action is one atomic block of the scheduled application software.
// Deadline is the completion deadline of the action relative to the start
// of the cycle, or TimeInf when the action carries no deadline.
type Action struct {
	Name     string
	Deadline Time
}

// HasDeadline reports whether the action carries a finite deadline.
func (a Action) HasDeadline() bool { return a.Deadline < TimeInf }

// TimingTable stores the platform-dependent worst-case (Cwc) and average
// (Cav) execution-time functions of Definition 1, as dense per-action,
// per-level tables. Both functions must be non-decreasing in the quality
// level, and Cav must never exceed Cwc.
type TimingTable struct {
	wc [][]Time // wc[i][q]: worst-case execution time of action i at level q
	av [][]Time // av[i][q]: average execution time of action i at level q
}

// NewTimingTable builds a timing table for n actions and nq quality
// levels, all entries zero. Fill it with SetWC/SetAv or Set.
func NewTimingTable(n, nq int) *TimingTable {
	if n <= 0 || nq <= 0 {
		panic("core: timing table dimensions must be positive")
	}
	wc := make([][]Time, n)
	av := make([][]Time, n)
	for i := range wc {
		wc[i] = make([]Time, nq)
		av[i] = make([]Time, nq)
	}
	return &TimingTable{wc: wc, av: av}
}

// NumActions returns the number of actions covered by the table.
func (tt *TimingTable) NumActions() int { return len(tt.wc) }

// NumLevels returns the number of quality levels covered by the table.
func (tt *TimingTable) NumLevels() int { return len(tt.wc[0]) }

// WC returns the worst-case execution time Cwc(a_i, q).
func (tt *TimingTable) WC(i int, q Level) Time { return tt.wc[i][q] }

// Av returns the average execution time Cav(a_i, q).
func (tt *TimingTable) Av(i int, q Level) Time { return tt.av[i][q] }

// Set assigns both the average and worst-case execution time of action i
// at level q.
func (tt *TimingTable) Set(i int, q Level, av, wc Time) {
	tt.av[i][q] = av
	tt.wc[i][q] = wc
}

// SetWC assigns the worst-case execution time of action i at level q.
func (tt *TimingTable) SetWC(i int, q Level, wc Time) { tt.wc[i][q] = wc }

// SetAv assigns the average execution time of action i at level q.
func (tt *TimingTable) SetAv(i int, q Level, av Time) { tt.av[i][q] = av }

// Validate checks the structural requirements of Definition 1:
// non-negative entries, monotonicity in the quality level, and Cav ≤ Cwc.
func (tt *TimingTable) Validate() error {
	for i := range tt.wc {
		for q := 0; q < len(tt.wc[i]); q++ {
			if tt.wc[i][q] < 0 || tt.av[i][q] < 0 {
				return fmt.Errorf("core: action %d level %d: negative execution time", i, q)
			}
			if tt.av[i][q] > tt.wc[i][q] {
				return fmt.Errorf("core: action %d level %d: Cav %v exceeds Cwc %v", i, q, tt.av[i][q], tt.wc[i][q])
			}
			if q > 0 {
				if tt.wc[i][q] < tt.wc[i][q-1] {
					return fmt.Errorf("core: action %d: Cwc not non-decreasing at level %d", i, q)
				}
				if tt.av[i][q] < tt.av[i][q-1] {
					return fmt.Errorf("core: action %d: Cav not non-decreasing at level %d", i, q)
				}
			}
		}
	}
	return nil
}

// System is a parameterized system PS (Definition 1): a finite, already
// scheduled sequence of actions together with its timing functions and
// deadline function. A System describes one cycle of the application;
// cyclic execution is handled by the sim package.
//
// A System pre-computes the prefix sums that both the on-line (numeric)
// policy evaluation and the symbolic table construction rely on.
type System struct {
	actions []Action
	timing  *TimingTable
	nq      int

	// The prefix tables are contiguous slabs indexed i·nq+q (the same
	// state-major layout as the symbolic tD table), so the per-state
	// probes of a decision touch one cache line instead of nq slices.
	//
	// avPrefix[i*nq+q] = sum of Cav(a_j, q) for j < i; i in [0, n].
	avPrefix []Time
	// wcPrefix[i*nq+q] = sum of Cwc(a_j, q) for j < i; i in [0, n].
	wcPrefix []Time
	// wminPrefix[i] = sum of Cwc(a_j, qmin) for j < i, kept as its own
	// dense row because the policy scans it sequentially.
	wminPrefix []Time
	// h[q*n+j] = Cwc(a_j, q) + avPrefix at (j, q) - wminPrefix[j+1];
	// the per-position summand of the δmax maximisation (DESIGN.md,
	// derivation in policy.go). Unlike the per-state probes above, h is
	// only ever scanned sequentially at a fixed level (System.TD), so
	// its flat slab is level-major to keep that scan contiguous.
	h []Time

	// deadlineIdx lists the indices of actions with finite deadlines,
	// in increasing order.
	deadlineIdx []int
}

// NewSystem assembles a parameterized system from its action sequence and
// timing table. It fails if the table dimensions do not match the action
// count or violate Definition 1, or if no action carries a deadline.
func NewSystem(actions []Action, timing *TimingTable) (*System, error) {
	if len(actions) == 0 {
		return nil, errors.New("core: system has no actions")
	}
	if timing.NumActions() != len(actions) {
		return nil, fmt.Errorf("core: timing table covers %d actions, system has %d", timing.NumActions(), len(actions))
	}
	if err := timing.Validate(); err != nil {
		return nil, err
	}
	s := &System{
		actions: actions,
		timing:  timing,
		nq:      timing.NumLevels(),
	}
	for i, a := range actions {
		if a.HasDeadline() {
			if a.Deadline < 0 {
				return nil, fmt.Errorf("core: action %d has negative deadline", i)
			}
			s.deadlineIdx = append(s.deadlineIdx, i)
		}
	}
	if len(s.deadlineIdx) == 0 {
		return nil, errors.New("core: system has no deadlines; quality management is vacuous")
	}
	s.buildPrefixes()
	return s, nil
}

// MustNewSystem is NewSystem that panics on error; intended for tests,
// examples and generators with statically valid inputs.
func MustNewSystem(actions []Action, timing *TimingTable) *System {
	s, err := NewSystem(actions, timing)
	if err != nil {
		panic(err)
	}
	return s
}

func (s *System) buildPrefixes() {
	n := len(s.actions)
	nq := s.nq
	s.avPrefix = make([]Time, (n+1)*nq)
	s.wcPrefix = make([]Time, (n+1)*nq)
	for q := 0; q < nq; q++ {
		for i := 0; i < n; i++ {
			s.avPrefix[(i+1)*nq+q] = s.avPrefix[i*nq+q] + s.timing.Av(i, Level(q))
			s.wcPrefix[(i+1)*nq+q] = s.wcPrefix[i*nq+q] + s.timing.WC(i, Level(q))
		}
	}
	s.wminPrefix = make([]Time, n+1)
	for i := 0; i <= n; i++ {
		s.wminPrefix[i] = s.wcPrefix[i*nq]
	}
	s.h = make([]Time, n*nq)
	for q := 0; q < nq; q++ {
		for j := 0; j < n; j++ {
			s.h[q*n+j] = s.timing.WC(j, Level(q)) + s.avPrefix[j*nq+q] - s.wminPrefix[j+1]
		}
	}
}

// NumActions returns n, the length of the scheduled action sequence.
func (s *System) NumActions() int { return len(s.actions) }

// NumLevels returns |Q|, the number of quality levels.
func (s *System) NumLevels() int { return s.nq }

// QMin returns the minimal quality level (always 0).
func (s *System) QMin() Level { return 0 }

// QMax returns the maximal quality level.
func (s *System) QMax() Level { return Level(s.nq - 1) }

// Action returns the i-th action.
func (s *System) Action(i int) Action { return s.actions[i] }

// Timing returns the system's timing table.
func (s *System) Timing() *TimingTable { return s.timing }

// WC returns Cwc(a_i, q).
func (s *System) WC(i int, q Level) Time { return s.timing.WC(i, q) }

// Av returns Cav(a_i, q).
func (s *System) Av(i int, q Level) Time { return s.timing.Av(i, q) }

// AvPrefix returns the sum of Cav(a_j, q) over j < i (0 ≤ i ≤ n).
func (s *System) AvPrefix(i int, q Level) Time { return s.avPrefix[i*s.nq+int(q)] }

// WCPrefix returns the sum of Cwc(a_j, q) over j < i (0 ≤ i ≤ n).
func (s *System) WCPrefix(i int, q Level) Time { return s.wcPrefix[i*s.nq+int(q)] }

// AvRange returns Cav(a_i..a_k, q), the total average execution time of
// actions i..k inclusive.
func (s *System) AvRange(i, k int, q Level) Time {
	if i > k {
		return 0
	}
	return s.avPrefix[(k+1)*s.nq+int(q)] - s.avPrefix[i*s.nq+int(q)]
}

// WCRange returns Cwc(a_i..a_k, q), the total worst-case execution time of
// actions i..k inclusive.
func (s *System) WCRange(i, k int, q Level) Time {
	if i > k {
		return 0
	}
	return s.wcPrefix[(k+1)*s.nq+int(q)] - s.wcPrefix[i*s.nq+int(q)]
}

// DeadlineIndices returns the indices of actions with finite deadlines in
// increasing order. The returned slice must not be modified.
func (s *System) DeadlineIndices() []int { return s.deadlineIdx }

// LastDeadline returns the largest finite deadline of the cycle. This is
// the cycle's natural period when the system is executed cyclically.
func (s *System) LastDeadline() Time {
	d := Time(0)
	for _, k := range s.deadlineIdx {
		if s.actions[k].Deadline > d {
			d = s.actions[k].Deadline
		}
	}
	return d
}

// Feasible checks qmin-feasibility: running every action at the minimal
// quality level must meet every deadline even under worst-case execution
// times. This is the precondition of the safety theorem (Definition 3);
// the mixed policy preserves it inductively at every reached state.
func (s *System) Feasible() error {
	for _, k := range s.deadlineIdx {
		need := s.wminPrefix[k+1]
		if need > s.actions[k].Deadline {
			return fmt.Errorf("core: infeasible: worst-case qmin completion of a_%d is %v, deadline %v",
				k, need, s.actions[k].Deadline)
		}
	}
	return nil
}
