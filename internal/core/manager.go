package core

// Decision is the output of one Quality Manager invocation.
type Decision struct {
	// Q is the quality level chosen for the next action(s).
	Q Level
	// Steps is the number of consecutive actions that may run at Q
	// without consulting the manager again (control relaxation,
	// Definition 5). Always ≥ 1; plain managers return 1.
	Steps int
	// Work counts the abstract operations the decision performed
	// (policy evaluations, table probes). Platform models translate
	// Work into management overhead time; see the sim package. The unit is
	// "one table access or arithmetic comparison".
	Work int
}

// Manager is a Quality Manager Γ (Definition 2): a function from the
// observed state (action index i, elapsed cycle-relative time t) to the
// quality level of the next action. Managers must be deterministic and
// must not retain cross-call mutable state: control relaxation is
// expressed through Decision.Steps and enforced by the executor, so that
// the same Manager value can be shared across runs.
type Manager interface {
	// Name identifies the manager in traces and benchmark output.
	Name() string
	// Decide picks the quality for action i at elapsed time t.
	// 0 ≤ i < system.NumActions().
	Decide(i int, t Time) Decision
}

// NumericManager evaluates the mixed quality-management policy on line at
// every call, exactly as the "numeric Quality Manager" of §4.1: for each
// candidate level from qmax downward it computes tD(s_i, q) over the
// remaining actions until the constraint tD ≥ t holds. Per-call cost is
// O(|Q|·(n−i)); the Work field accounts for it.
type NumericManager struct {
	sys *System
}

// NewNumericManager returns the on-line mixed-policy manager for sys.
func NewNumericManager(sys *System) *NumericManager {
	return &NumericManager{sys: sys}
}

// Name implements Manager.
func (m *NumericManager) Name() string { return "numeric" }

// Decide implements Manager. If even qmin violates the constraint (which
// cannot happen on states actually reached by a feasible controlled
// system; see System.Feasible), it conservatively returns qmin.
func (m *NumericManager) Decide(i int, t Time) Decision {
	n := m.sys.NumActions()
	work := 0
	for q := m.sys.QMax(); q > 0; q-- {
		work += n - i // one O(n−i) pass of TD
		if m.sys.TD(i, q) >= t {
			return Decision{Q: q, Steps: 1, Work: work}
		}
	}
	work += n - i
	return Decision{Q: 0, Steps: 1, Work: work}
}

// SafeManager applies the pure safe policy (Csf instead of CD). It is the
// §2.2.2 strawman: deadline-safe but with poor smoothness. Used by the
// policy-ablation benchmarks.
type SafeManager struct {
	sys *System
}

// NewSafeManager returns the on-line safe-policy manager for sys.
func NewSafeManager(sys *System) *SafeManager { return &SafeManager{sys: sys} }

// Name implements Manager.
func (m *SafeManager) Name() string { return "safe" }

// Decide implements Manager.
func (m *SafeManager) Decide(i int, t Time) Decision {
	n := m.sys.NumActions()
	work := 0
	for q := m.sys.QMax(); q > 0; q-- {
		work += n - i
		if m.sys.SafeTD(i, q) >= t {
			return Decision{Q: q, Steps: 1, Work: work}
		}
	}
	work += n - i
	return Decision{Q: 0, Steps: 1, Work: work}
}

// FixedManager always returns the same level; the open-loop baseline.
type FixedManager struct {
	Level Level
}

// Name implements Manager.
func (m FixedManager) Name() string { return "fixed-" + m.Level.String() }

// Decide implements Manager.
func (m FixedManager) Decide(int, Time) Decision {
	return Decision{Q: m.Level, Steps: 1, Work: 1}
}
