package core

import "math/rand"

// RandomSystemConfig parameterises RandomSystem. Zero values are replaced
// by the documented defaults.
type RandomSystemConfig struct {
	// Actions is the number of actions n (default 24).
	Actions int
	// Levels is the number of quality levels |Q| (default 5).
	Levels int
	// MaxAv bounds the per-action average execution time increment per
	// level, in nanoseconds (default 1000).
	MaxAv int64
	// WCFactorNum/WCFactorDen give Cwc = Cav * Num/Den (+jitter)
	// (default 8/5, i.e. 1.6×).
	WCFactorNum, WCFactorDen int64
	// DeadlineEvery places a deadline on every k-th action in addition
	// to the mandatory final one (default 0: final action only).
	DeadlineEvery int
	// SlackNum/SlackDen scale deadlines relative to the qmin worst-case
	// workload: D(a_k) = Wmin(0..k) * Num/Den (default 2/1), which
	// guarantees qmin-feasibility.
	SlackNum, SlackDen int64
}

func (c *RandomSystemConfig) fill() {
	if c.Actions == 0 {
		c.Actions = 24
	}
	if c.Levels == 0 {
		c.Levels = 5
	}
	if c.MaxAv == 0 {
		c.MaxAv = 1000
	}
	if c.WCFactorNum == 0 {
		c.WCFactorNum, c.WCFactorDen = 8, 5
	}
	if c.SlackNum == 0 {
		c.SlackNum, c.SlackDen = 2, 1
	}
}

// RandomSystem builds a structurally valid, qmin-feasible parameterized
// system from a seeded PRNG. It is shared by the property-based tests of
// every package (core invariants, region equivalence, simulator safety),
// so its distribution deliberately exercises corner cases: zero-cost
// actions, flat quality curves, and clustered deadlines.
func RandomSystem(rng *rand.Rand, cfg RandomSystemConfig) *System {
	cfg.fill()
	n, nq := cfg.Actions, cfg.Levels
	tt := NewTimingTable(n, nq)
	for i := 0; i < n; i++ {
		av := Time(rng.Int63n(cfg.MaxAv))
		flat := rng.Intn(4) == 0 // some actions ignore quality entirely
		for q := 0; q < nq; q++ {
			if q > 0 {
				if !flat {
					av += Time(rng.Int63n(cfg.MaxAv))
				}
			}
			wc := av * Time(cfg.WCFactorNum) / Time(cfg.WCFactorDen)
			// Extra jitter on the worst case, kept monotone by
			// construction since av is monotone and jitter ≥ 0.
			wc += Time(rng.Int63n(cfg.MaxAv / 2))
			if q > 0 && wc < tt.WC(i, Level(q-1)) {
				wc = tt.WC(i, Level(q-1))
			}
			if wc < av {
				wc = av
			}
			tt.Set(i, Level(q), av, wc)
		}
	}
	actions := make([]Action, n)
	wmin := Time(0)
	for i := 0; i < n; i++ {
		wmin += tt.WC(i, 0)
		actions[i] = Action{Name: "a" + itoa(i), Deadline: TimeInf}
		isLast := i == n-1
		periodic := cfg.DeadlineEvery > 0 && (i+1)%cfg.DeadlineEvery == 0
		if isLast || periodic {
			d := wmin * Time(cfg.SlackNum) / Time(cfg.SlackDen)
			if d < wmin {
				d = wmin
			}
			actions[i].Deadline = d
		}
	}
	return MustNewSystem(actions, tt)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	neg := v < 0
	if neg {
		v = -v
	}
	for v > 0 {
		pos--
		buf[pos] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		pos--
		buf[pos] = '-'
	}
	return string(buf[pos:])
}
