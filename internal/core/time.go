// Package core implements the formal model of Combaz et al., "Using Speed
// Diagrams for Symbolic Quality Management" (IPPS 2007): parameterized
// systems (sequences of atomic actions with quality-dependent execution
// times), deadline functions, the safe and mixed quality-management
// policies, and the numeric Quality Manager that evaluates the policy
// on line before every action.
//
// Conventions (see DESIGN.md §6): actions are indexed 0..n-1 and decision
// states 0..n-1, where state i is the instant just before action i runs.
// The paper writes "at state (s_i, t_i) the Quality Manager picks q_{i+1}
// for action a_{i+1}"; after re-indexing, the manager observed at state i
// picks the quality for action i.
package core

import (
	"fmt"
	"math"
	"time"
)

// Time is a point or span on the platform clock, in integer nanoseconds.
// All policy tables are integer-valued, matching the paper's symbolic
// tables ("a set of ... integers", §4.1).
type Time int64

// TimeInf represents an absent deadline or an unconstrained table entry.
// It is far below the int64 overflow boundary so that bounded sums of
// ordinary times never collide with it.
const TimeInf Time = math.MaxInt64 / 4

// TimeNegInf is the lower sentinel used for open-ended region bounds
// (the quality-qmax regions of Propositions 2 and 3 extend to -infinity).
const TimeNegInf Time = -TimeInf

// Common spans.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// FromDuration converts a time.Duration to a core.Time.
func FromDuration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Duration converts t to a time.Duration. TimeInf saturates to the
// maximum duration.
func (t Time) Duration() time.Duration {
	if t >= TimeInf {
		return time.Duration(math.MaxInt64)
	}
	if t <= TimeNegInf {
		return time.Duration(math.MinInt64)
	}
	return time.Duration(t)
}

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis reports t as floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Micros reports t as floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// IsInf reports whether t is one of the two infinity sentinels.
func (t Time) IsInf() bool { return t >= TimeInf || t <= TimeNegInf }

// String renders t in a human unit, or "inf"/"-inf" for the sentinels.
func (t Time) String() string {
	switch {
	case t >= TimeInf:
		return "inf"
	case t <= TimeNegInf:
		return "-inf"
	default:
		return time.Duration(t).String()
	}
}

// AddSat adds two times, saturating at the infinity sentinels so that
// table arithmetic with TimeInf behaves like extended-real arithmetic.
func AddSat(a, b Time) Time {
	if a >= TimeInf || b >= TimeInf {
		if a <= TimeNegInf || b <= TimeNegInf {
			panic("core: inf + -inf is undefined")
		}
		return TimeInf
	}
	if a <= TimeNegInf || b <= TimeNegInf {
		return TimeNegInf
	}
	s := a + b
	if s >= TimeInf {
		return TimeInf
	}
	if s <= TimeNegInf {
		return TimeNegInf
	}
	return s
}

// SubSat subtracts b from a with the same saturation rules as AddSat.
func SubSat(a, b Time) Time { return AddSat(a, -b) }

// MinTime returns the smaller of a and b.
func MinTime(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// MaxTime returns the larger of a and b.
func MaxTime(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Level is an integer quality level. The set of levels of a system is
// always the contiguous range 0..NumLevels()-1; level 0 is qmin and the
// highest level is qmax. Execution-time functions are non-decreasing in
// the level (Definition 1 of the paper).
type Level int

// Clamp restricts l to the range [0, nq-1].
func (l Level) Clamp(nq int) Level {
	if l < 0 {
		return 0
	}
	if int(l) >= nq {
		return Level(nq - 1)
	}
	return l
}

func (l Level) String() string { return fmt.Sprintf("q%d", int(l)) }
