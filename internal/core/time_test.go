package core

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestTimeUnits(t *testing.T) {
	if Second != 1e9 {
		t.Fatalf("Second = %d, want 1e9", Second)
	}
	if Millisecond != 1e6 || Microsecond != 1e3 || Nanosecond != 1 {
		t.Fatal("unit constants inconsistent")
	}
}

func TestTimeConversions(t *testing.T) {
	d := 1500 * time.Millisecond
	ct := FromDuration(d)
	if ct != 1500*Millisecond {
		t.Fatalf("FromDuration = %v", ct)
	}
	if ct.Duration() != d {
		t.Fatalf("Duration roundtrip = %v", ct.Duration())
	}
	if got := ct.Seconds(); got != 1.5 {
		t.Fatalf("Seconds = %v", got)
	}
	if got := ct.Millis(); got != 1500 {
		t.Fatalf("Millis = %v", got)
	}
	if got := ct.Micros(); got != 1.5e6 {
		t.Fatalf("Micros = %v", got)
	}
}

func TestTimeInfSentinels(t *testing.T) {
	if !TimeInf.IsInf() || !TimeNegInf.IsInf() {
		t.Fatal("sentinels must report IsInf")
	}
	if Time(0).IsInf() || (12 * Second).IsInf() {
		t.Fatal("finite values must not report IsInf")
	}
	if TimeInf.String() != "inf" || TimeNegInf.String() != "-inf" {
		t.Fatalf("sentinel strings: %q %q", TimeInf.String(), TimeNegInf.String())
	}
	if TimeInf.Duration() != time.Duration(math.MaxInt64) {
		t.Fatal("TimeInf must saturate Duration")
	}
	if TimeNegInf.Duration() != time.Duration(math.MinInt64) {
		t.Fatal("TimeNegInf must saturate Duration")
	}
}

func TestAddSat(t *testing.T) {
	cases := []struct{ a, b, want Time }{
		{1, 2, 3},
		{TimeInf, -5, TimeInf},
		{TimeNegInf, 5, TimeNegInf},
		{TimeInf, TimeInf, TimeInf},
		{TimeNegInf, TimeNegInf, TimeNegInf},
		{TimeInf - 1, TimeInf - 1, TimeInf},
		{TimeNegInf + 1, TimeNegInf + 1, TimeNegInf},
	}
	for _, c := range cases {
		if got := AddSat(c.a, c.b); got != c.want {
			t.Errorf("AddSat(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestAddSatUndefined(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("inf + -inf must panic")
		}
	}()
	AddSat(TimeInf, TimeNegInf)
}

func TestSubSat(t *testing.T) {
	if got := SubSat(5, 3); got != 2 {
		t.Fatalf("SubSat = %v", got)
	}
	if got := SubSat(TimeNegInf, 100); got != TimeNegInf {
		t.Fatalf("SubSat(-inf, x) = %v", got)
	}
	if got := SubSat(7, TimeNegInf); got != TimeInf {
		t.Fatalf("SubSat(x, -inf) = %v", got)
	}
}

func TestAddSatCommutesAndBounded(t *testing.T) {
	f := func(a, b int32) bool {
		x, y := Time(a)*Microsecond, Time(b)*Microsecond
		s := AddSat(x, y)
		return s == AddSat(y, x) && s <= TimeInf && s >= TimeNegInf
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMinMaxTime(t *testing.T) {
	if MinTime(3, 5) != 3 || MinTime(5, 3) != 3 {
		t.Fatal("MinTime broken")
	}
	if MaxTime(3, 5) != 5 || MaxTime(5, 3) != 5 {
		t.Fatal("MaxTime broken")
	}
}

func TestLevelClamp(t *testing.T) {
	if Level(-3).Clamp(7) != 0 {
		t.Fatal("negative clamp")
	}
	if Level(99).Clamp(7) != 6 {
		t.Fatal("upper clamp")
	}
	if Level(4).Clamp(7) != 4 {
		t.Fatal("identity clamp")
	}
	if Level(4).String() != "q4" {
		t.Fatalf("Level string: %s", Level(4))
	}
}

func TestTimeString(t *testing.T) {
	if (1500 * Millisecond).String() != "1.5s" {
		t.Fatalf("String = %q", (1500 * Millisecond).String())
	}
}
