package core

import (
	"math/rand"
	"strings"
	"testing"
)

// tinySystem builds the 4-action, 3-level system used by the hand-checked
// unit tests. Deadlines on a1 (10µs) and a3 (20µs).
func tinySystem(t *testing.T) *System {
	t.Helper()
	tt := NewTimingTable(4, 3)
	// action 0: av 1,2,3 / wc 2,3,4 (µs)
	// action 1: av 1,1,2 / wc 1,2,3
	// action 2: av 2,2,2 / wc 2,2,2 (quality-insensitive)
	// action 3: av 1,3,5 / wc 2,4,6
	av := [4][3]int64{{1, 2, 3}, {1, 1, 2}, {2, 2, 2}, {1, 3, 5}}
	wc := [4][3]int64{{2, 3, 4}, {1, 2, 3}, {2, 2, 2}, {2, 4, 6}}
	for i := 0; i < 4; i++ {
		for q := 0; q < 3; q++ {
			tt.Set(i, Level(q), Time(av[i][q])*Microsecond, Time(wc[i][q])*Microsecond)
		}
	}
	actions := []Action{
		{Name: "a0", Deadline: TimeInf},
		{Name: "a1", Deadline: 10 * Microsecond},
		{Name: "a2", Deadline: TimeInf},
		{Name: "a3", Deadline: 20 * Microsecond},
	}
	return MustNewSystem(actions, tt)
}

func TestNewSystemValidation(t *testing.T) {
	tt := NewTimingTable(2, 2)
	for i := 0; i < 2; i++ {
		for q := 0; q < 2; q++ {
			tt.Set(i, Level(q), Microsecond, 2*Microsecond)
		}
	}
	if _, err := NewSystem(nil, tt); err == nil {
		t.Error("empty action list must fail")
	}
	acts := []Action{{Deadline: TimeInf}, {Deadline: TimeInf}}
	if _, err := NewSystem(acts, tt); err == nil {
		t.Error("no deadline must fail")
	}
	acts[1].Deadline = 10 * Microsecond
	if _, err := NewSystem(acts, tt); err != nil {
		t.Errorf("valid system rejected: %v", err)
	}
	if _, err := NewSystem(acts[:1], tt); err == nil {
		t.Error("dimension mismatch must fail")
	}
	acts[1].Deadline = -Microsecond
	if _, err := NewSystem(acts, tt); err == nil {
		t.Error("negative deadline must fail")
	}
}

func TestTimingTableValidate(t *testing.T) {
	tt := NewTimingTable(1, 3)
	tt.Set(0, 0, 5, 10)
	tt.Set(0, 1, 6, 12)
	tt.Set(0, 2, 7, 14)
	if err := tt.Validate(); err != nil {
		t.Fatalf("valid table rejected: %v", err)
	}
	tt.SetAv(0, 2, 20) // Cav > Cwc
	if err := tt.Validate(); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Errorf("Cav > Cwc not caught: %v", err)
	}
	tt.SetAv(0, 2, 3) // breaks monotonicity
	if err := tt.Validate(); err == nil {
		t.Error("Cav monotonicity violation not caught")
	}
	tt.SetAv(0, 2, 7)
	tt.SetWC(0, 2, 11) // breaks WC monotonicity
	if err := tt.Validate(); err == nil {
		t.Error("Cwc monotonicity violation not caught")
	}
	tt.SetWC(0, 2, 14)
	tt.SetAv(0, 0, -1)
	if err := tt.Validate(); err == nil {
		t.Error("negative entry not caught")
	}
}

func TestPrefixSums(t *testing.T) {
	s := tinySystem(t)
	for q := Level(0); q <= s.QMax(); q++ {
		var av, wc Time
		for i := 0; i < s.NumActions(); i++ {
			if s.AvPrefix(i, q) != av || s.WCPrefix(i, q) != wc {
				t.Fatalf("prefix mismatch at i=%d q=%v", i, q)
			}
			av += s.Av(i, q)
			wc += s.WC(i, q)
		}
		if s.AvPrefix(s.NumActions(), q) != av {
			t.Fatalf("final prefix mismatch q=%v", q)
		}
	}
}

func TestRangeSums(t *testing.T) {
	s := tinySystem(t)
	if got := s.AvRange(1, 3, 1); got != (1+2+3)*Microsecond {
		t.Fatalf("AvRange(1,3,1) = %v", got)
	}
	if got := s.WCRange(0, 2, 0); got != (2+1+2)*Microsecond {
		t.Fatalf("WCRange(0,2,0) = %v", got)
	}
	if got := s.AvRange(2, 1, 0); got != 0 {
		t.Fatalf("empty range = %v", got)
	}
}

func TestDeadlineIndices(t *testing.T) {
	s := tinySystem(t)
	idx := s.DeadlineIndices()
	if len(idx) != 2 || idx[0] != 1 || idx[1] != 3 {
		t.Fatalf("deadline indices = %v", idx)
	}
	if s.LastDeadline() != 20*Microsecond {
		t.Fatalf("LastDeadline = %v", s.LastDeadline())
	}
}

func TestFeasible(t *testing.T) {
	s := tinySystem(t)
	if err := s.Feasible(); err != nil {
		t.Fatalf("tiny system should be feasible: %v", err)
	}
	// Shrink the first deadline below the qmin worst case (2+1 = 3µs).
	tt := s.Timing()
	acts := []Action{
		{Name: "a0", Deadline: TimeInf},
		{Name: "a1", Deadline: 2 * Microsecond},
		{Name: "a2", Deadline: TimeInf},
		{Name: "a3", Deadline: 20 * Microsecond},
	}
	s2 := MustNewSystem(acts, tt)
	if err := s2.Feasible(); err == nil {
		t.Fatal("infeasible system not detected")
	}
}

func TestRandomSystemAlwaysValid(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := RandomSystem(rng, RandomSystemConfig{DeadlineEvery: 5})
		if err := s.Timing().Validate(); err != nil {
			t.Fatalf("seed %d: invalid timing: %v", seed, err)
		}
		if err := s.Feasible(); err != nil {
			t.Fatalf("seed %d: infeasible: %v", seed, err)
		}
	}
}

func TestRandomSystemShape(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := RandomSystem(rng, RandomSystemConfig{Actions: 40, Levels: 3, DeadlineEvery: 8})
	if s.NumActions() != 40 || s.NumLevels() != 3 {
		t.Fatalf("shape = %d actions, %d levels", s.NumActions(), s.NumLevels())
	}
	if !s.Action(39).HasDeadline() {
		t.Fatal("final action must carry a deadline")
	}
	if s.QMin() != 0 || s.QMax() != 2 {
		t.Fatalf("level range = [%v, %v]", s.QMin(), s.QMax())
	}
}

func TestItoa(t *testing.T) {
	cases := map[int]string{0: "0", 7: "7", 42: "42", 1189: "1189", -5: "-5"}
	for v, want := range cases {
		if got := itoa(v); got != want {
			t.Errorf("itoa(%d) = %q, want %q", v, got, want)
		}
	}
}
