package core
