package core

import (
	"math/rand"
	"testing"
)

func TestCsfHandComputed(t *testing.T) {
	s := tinySystem(t)
	// Csf(a0..a3, q=2) = Cwc(a0,2) + Cwc(a1..a3, qmin) = 4 + (1+2+2) = 9µs.
	if got := s.Csf(0, 3, 2); got != 9*Microsecond {
		t.Fatalf("Csf(0,3,2) = %v, want 9µs", got)
	}
	// Single action window: Csf(a2..a2, q) = Cwc(a2, q) = 2µs.
	if got := s.Csf(2, 2, 1); got != 2*Microsecond {
		t.Fatalf("Csf(2,2,1) = %v", got)
	}
	if got := s.Csf(3, 2, 0); got != 0 {
		t.Fatalf("empty Csf = %v", got)
	}
}

func TestDeltaNonNegativeOnSingletons(t *testing.T) {
	// δ(a_k..a_k, q) = Cwc(a_k,q) − Cav(a_k,q) ≥ 0 because Cav ≤ Cwc.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		s := RandomSystem(rng, RandomSystemConfig{})
		for k := 0; k < s.NumActions(); k++ {
			for q := Level(0); q <= s.QMax(); q++ {
				if s.Delta(k, k, q) < 0 {
					t.Fatalf("negative singleton delta at k=%d q=%v", k, q)
				}
			}
		}
	}
}

func TestDeltaMaxDominatesDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := RandomSystem(rng, RandomSystemConfig{Actions: 16})
	for i := 0; i < s.NumActions(); i++ {
		for k := i; k < s.NumActions(); k++ {
			for q := Level(0); q <= s.QMax(); q++ {
				dm := s.DeltaMax(i, k, q)
				for j := i; j <= k; j++ {
					if s.Delta(j, k, q) > dm {
						t.Fatalf("δmax(%d,%d,%v) < δ(%d..%d)", i, k, q, j, k)
					}
				}
			}
		}
	}
}

func TestCDAlternativeForm(t *testing.T) {
	// CD(a_i..a_k, q) = max_{i≤j≤k} [Cav(a_i..a_{j-1},q) + Cwc(a_j,q)
	//                    + Wmin(a_{j+1}..a_k)] — the form that proves
	// monotonicity in q. Check both agree on random systems.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		s := RandomSystem(rng, RandomSystemConfig{Actions: 12})
		for i := 0; i < s.NumActions(); i++ {
			for k := i; k < s.NumActions(); k++ {
				for q := Level(0); q <= s.QMax(); q++ {
					want := TimeNegInf
					for j := i; j <= k; j++ {
						v := s.AvRange(i, j-1, q) + s.WC(j, q) + (s.wminPrefix[k+1] - s.wminPrefix[j+1])
						if v > want {
							want = v
						}
					}
					if got := s.CD(i, k, q); got != want {
						t.Fatalf("CD(%d,%d,%v) = %v, alt form %v", i, k, q, got, want)
					}
				}
			}
		}
	}
}

func TestCDDominatesCsfAndCav(t *testing.T) {
	// Cav ≤ CD and Csf ≤ CD: the mixed estimate is at least as
	// conservative as the safe estimate over the same window start.
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 10; trial++ {
		s := RandomSystem(rng, RandomSystemConfig{Actions: 12})
		for i := 0; i < s.NumActions(); i++ {
			for k := i; k < s.NumActions(); k++ {
				for q := Level(0); q <= s.QMax(); q++ {
					cd := s.CD(i, k, q)
					if cd < s.Csf(i, k, q) {
						t.Fatalf("CD < Csf at (%d,%d,%v)", i, k, q)
					}
					if cd < s.AvRange(i, k, q) {
						t.Fatalf("CD < Cav at (%d,%d,%v)", i, k, q)
					}
				}
			}
		}
	}
}

func TestTDMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		s := RandomSystem(rng, RandomSystemConfig{Actions: 20, DeadlineEvery: 6})
		for i := 0; i <= s.NumActions(); i++ {
			for q := Level(0); q <= s.QMax(); q++ {
				fast := s.TD(i, q)
				naive := s.TDNaive(i, q)
				if fast != naive {
					t.Fatalf("trial %d: TD(%d,%v) = %v, naive %v", trial, i, q, fast, naive)
				}
			}
		}
	}
}

func TestTDMonotoneInQuality(t *testing.T) {
	// Paper §3.2: "tD is a non-increasing function of q".
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		s := RandomSystem(rng, RandomSystemConfig{DeadlineEvery: 4})
		for i := 0; i < s.NumActions(); i++ {
			for q := Level(1); q <= s.QMax(); q++ {
				if s.TD(i, q) > s.TD(i, q-1) {
					t.Fatalf("tD increasing in q at i=%d q=%v", i, q)
				}
			}
		}
	}
}

func TestTDMonotoneInState(t *testing.T) {
	// §3.3: "tD(s_j, q+1) is increasing with j" — more precisely
	// non-decreasing, which the relaxation lower bound relies on.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		s := RandomSystem(rng, RandomSystemConfig{DeadlineEvery: 4})
		for q := Level(0); q <= s.QMax(); q++ {
			for i := 1; i <= s.NumActions(); i++ {
				if s.TD(i, q) < s.TD(i-1, q) {
					t.Fatalf("tD decreasing in i at i=%d q=%v", i, q)
				}
			}
		}
	}
}

func TestTDPastLastDeadlineIsInf(t *testing.T) {
	s := tinySystem(t)
	if got := s.TD(4, 0); got != TimeInf {
		t.Fatalf("tD at final state = %v, want inf", got)
	}
}

func TestTDHandComputed(t *testing.T) {
	s := tinySystem(t)
	// State 3 (only a3 left), q=2: CD(3,3,2) = Cav + δmax = 5 + (6−5) = 6.
	// tD = D(a3) − 6 = 14µs.
	if got := s.TD(3, 2); got != 14*Microsecond {
		t.Fatalf("tD(3,2) = %v, want 14µs", got)
	}
	// State 3, q=0: CD = 1 + (2−1) = 2; tD = 18µs.
	if got := s.TD(3, 0); got != 18*Microsecond {
		t.Fatalf("tD(3,0) = %v, want 18µs", got)
	}
}

func TestSafeTDDominatedByTD(t *testing.T) {
	// Csf ≤ CD ⇒ tDsf ≥ tD: the safe policy is *less* conservative per
	// window start... but CD ≥ Csf means D − CD ≤ D − Csf, so tD ≤ tDsf.
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 20; trial++ {
		s := RandomSystem(rng, RandomSystemConfig{DeadlineEvery: 5})
		for i := 0; i < s.NumActions(); i++ {
			for q := Level(0); q <= s.QMax(); q++ {
				if s.TD(i, q) > s.SafeTD(i, q) {
					t.Fatalf("tD > tDsf at i=%d q=%v", i, q)
				}
			}
		}
	}
}

func TestPolicyConstraint(t *testing.T) {
	s := tinySystem(t)
	td := s.TD(0, 1)
	if !s.PolicyConstraint(0, td, 1) {
		t.Fatal("constraint must hold at exactly tD")
	}
	if s.PolicyConstraint(0, td+1, 1) {
		t.Fatal("constraint must fail just above tD")
	}
}
