package core

import (
	"math/rand"
	"testing"
)

func TestNumericManagerPicksMaximalFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for trial := 0; trial < 25; trial++ {
		s := RandomSystem(rng, RandomSystemConfig{DeadlineEvery: 5})
		m := NewNumericManager(s)
		for i := 0; i < s.NumActions(); i++ {
			// Probe a spread of times around the region boundaries.
			probes := []Time{0}
			for q := Level(0); q <= s.QMax(); q++ {
				td := s.TD(i, q)
				if !td.IsInf() {
					probes = append(probes, td, td+1, td-1)
				}
			}
			for _, tm := range probes {
				if tm < 0 {
					continue
				}
				d := m.Decide(i, tm)
				// Γ(s,t) = max{ q | tD(s,q) ≥ t }, or qmin if empty.
				want := Level(0)
				for q := s.QMax(); q >= 0; q-- {
					if s.TD(i, q) >= tm {
						want = q
						break
					}
				}
				if d.Q != want {
					t.Fatalf("trial %d i=%d t=%v: Decide=%v want %v", trial, i, tm, d.Q, want)
				}
				if d.Steps != 1 {
					t.Fatalf("numeric manager must return Steps=1, got %d", d.Steps)
				}
				if d.Work <= 0 {
					t.Fatal("Work must be positive")
				}
			}
		}
	}
}

func TestNumericManagerAtTimeZeroMatchesFeasibility(t *testing.T) {
	// At t=0 a feasible system always admits at least qmin.
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 25; trial++ {
		s := RandomSystem(rng, RandomSystemConfig{})
		m := NewNumericManager(s)
		d := m.Decide(0, 0)
		if d.Q < 0 || d.Q > s.QMax() {
			t.Fatalf("quality out of range: %v", d.Q)
		}
		if s.TD(0, d.Q) < 0 && d.Q != 0 {
			t.Fatal("chosen non-qmin level violates the constraint at t=0")
		}
	}
}

func TestNumericManagerMonotoneInTime(t *testing.T) {
	// Later arrival at the same state can only lower the chosen quality.
	rng := rand.New(rand.NewSource(22))
	s := RandomSystem(rng, RandomSystemConfig{DeadlineEvery: 4})
	m := NewNumericManager(s)
	for i := 0; i < s.NumActions(); i++ {
		prev := s.QMax() + 1
		for tm := Time(0); tm < 40*Microsecond; tm += 3 * Microsecond {
			d := m.Decide(i, tm)
			if d.Q > prev {
				t.Fatalf("quality increased with time at i=%d t=%v", i, tm)
			}
			prev = d.Q
		}
	}
}

func TestNumericManagerWorkGrowsWithRemaining(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	s := RandomSystem(rng, RandomSystemConfig{Actions: 60})
	m := NewNumericManager(s)
	early := m.Decide(0, 0)
	late := m.Decide(55, 0)
	if early.Work <= late.Work {
		t.Fatalf("Work at state 0 (%d) should exceed state 55 (%d)", early.Work, late.Work)
	}
}

func TestSafeManagerIsSafeButGreedy(t *testing.T) {
	// The safe manager chooses at least the numeric manager's quality at
	// t=0 (Csf ≤ CD ⇒ tDsf ≥ tD ⇒ weaker constraint ⇒ ≥ quality).
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 20; trial++ {
		s := RandomSystem(rng, RandomSystemConfig{DeadlineEvery: 6})
		num := NewNumericManager(s)
		safe := NewSafeManager(s)
		for i := 0; i < s.NumActions(); i += 3 {
			for _, tm := range []Time{0, 2 * Microsecond, 8 * Microsecond} {
				dn := num.Decide(i, tm)
				ds := safe.Decide(i, tm)
				if ds.Q < dn.Q {
					t.Fatalf("safe picked %v < mixed %v at i=%d t=%v", ds.Q, dn.Q, i, tm)
				}
			}
		}
	}
}

func TestFixedManager(t *testing.T) {
	m := FixedManager{Level: 3}
	d := m.Decide(5, 123)
	if d.Q != 3 || d.Steps != 1 {
		t.Fatalf("fixed manager decision = %+v", d)
	}
	if m.Name() != "fixed-q3" {
		t.Fatalf("name = %q", m.Name())
	}
}

func TestManagerNames(t *testing.T) {
	s := tinySystem(t)
	if NewNumericManager(s).Name() != "numeric" {
		t.Fatal("numeric name")
	}
	if NewSafeManager(s).Name() != "safe" {
		t.Fatal("safe name")
	}
}
