package fleet

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
)

// OpenLiveConfig shapes an incremental open run: the admission
// controller and scheduler shape of OpenConfig, without a population —
// streams are fed one at a time as their arrivals become known.
type OpenLiveConfig struct {
	// Admit is the admission controller; nil selects AdmitAll.
	Admit Admitter
	// Workers and BatchCycles shape the scheduler exactly as in
	// OpenConfig: they change wall-clock time, never results.
	Workers     int
	BatchCycles int
	// Lookahead is OpenConfig.Lookahead: the admission batch size per
	// executor wake (≤ 0 selects DefaultLookahead). Results are
	// byte-identical at any value.
	Lookahead int
	// MaxLevels bounds the quality-level count of every stream that
	// will ever be fed — the uniform histogram window width of the slot
	// arena, which cannot be widened once slots are live. Feeding a
	// stream with more levels is an error.
	MaxLevels int
	// Obs, when non-nil, enables the engine's metric hooks exactly as
	// OpenConfig.Obs does: results are byte-identical with it on or off.
	Obs *obs.FleetMetrics
	// Trace, when non-nil, records engine events into a bounded ring
	// exactly as OpenConfig.Trace does.
	Trace *obs.Trace
	// Scratch, when non-nil, amortizes the run's working memory exactly
	// as OpenConfig.Scratch does: slot-arena chunks, heaps, population
	// slabs and result slabs are reused, so a warm steady-state live run
	// at Workers = 1 is allocation-free end to end. The same aliasing
	// rule applies — the sealed OpenResult is valid only until the
	// scratch's next run.
	Scratch *OpenScratch
}

// OpenLive is the incremental form of OpenRunStats: the same
// deterministic frontier and executor, driven by a caller that learns
// arrivals one at a time (a serving daemon reading an event stream)
// instead of holding the whole schedule up front. Feed appends one
// arrival and advances the event loop through every instant the fed
// prefix fully determines; Close drains the system and seals the
// result. For one and the same (streams, arrivals, admitter) sequence,
// the sealed result is byte-identical to OpenRunStats over the batch
// configuration — the fed order simply is the spec's (instant, index)
// order, and the watermark withholds exactly the events a future feed
// could still precede.
//
// An OpenLive belongs to one goroutine; the concurrency inside (the
// executor pool) is the engine's own.
type OpenLive struct {
	sc       *OpenScratch
	f        *openFrontier
	streams  []Stream
	arrivals []core.Time
	lastFed  core.Time
	closed   bool
}

// NewOpenLive starts an empty incremental run with a running (idle)
// executor pool.
func NewOpenLive(cfg OpenLiveConfig) *OpenLive {
	sc := cfg.Scratch
	if sc == nil {
		sc = NewOpenScratch()
	}
	f := &sc.frontier
	*f = openFrontier{sc: sc, stats: true, maxLevels: cfg.MaxLevels, met: cfg.Obs, tr: cfg.Trace}
	f.adm = cfg.Admit
	if f.adm == nil {
		f.adm = AdmitAll{}
	}
	f.look = cfg.Lookahead
	if f.look <= 0 {
		f.look = DefaultLookahead
	}
	sc.arena.reset(0, true, nil, cfg.MaxLevels)
	f.arena = &sc.arena
	// The population and result slabs restart empty but keep their
	// backing arrays: a warm scratch makes every appendStream below a
	// capacity-reusing append.
	sc.order, sc.util, sc.minFin, sc.final = sc.order[:0], sc.util[:0], sc.minFin[:0], sc.final[:0]
	sc.lifecycles, sc.streams = sc.lifecycles[:0], sc.streams[:0]
	sc.traces, sc.stats, sc.hist = sc.traces[:0], sc.stats[:0], sc.hist[:0]
	sc.liveStreams, sc.liveArr = sc.liveStreams[:0], sc.liveArr[:0]
	sc.res = OpenResult{}
	f.res = &sc.res
	f.dep = sc.dep[:0]
	f.pend = sc.pend[:0]
	f.backlog = sc.backlog
	batch := cfg.BatchCycles
	if batch <= 0 {
		batch = DefaultBatchCycles
	}
	if workers := sim.EffectiveWorkers(math.MaxInt, cfg.Workers); workers == 1 {
		sc.inline.batch = batch
		sc.inline.met = f.met
		f.exec = &sc.inline
	} else {
		f.exec = newOpenSched(f.arena, workers, batch, sc, f.met, f.tr)
	}
	// The returned header lives in the scratch: a warm NewOpenLive
	// performs no allocation whatsoever.
	ol := &sc.live
	*ol = OpenLive{sc: sc, f: f, streams: sc.liveStreams, arrivals: sc.liveArr}
	return ol
}

// Feed appends one stream with its arrival instant and advances the
// event loop through every group at instants strictly before t. The
// strictness is what preserves the batch spec's simultaneity semantics:
// a later Feed may still add an arrival at exactly t, and the spec
// decides all arrivals of one instant in a single group (interleaved
// with any same-instant departures in a fixed order), so instant t
// stays unprocessed until a feed moves the watermark past it. Arrival
// instants must be non-decreasing across feeds — the fed order then is
// the spec's (instant, index) event order.
func (ol *OpenLive) Feed(s Stream, t core.Time) error {
	if ol.closed {
		return errors.New("fleet: Feed on a closed OpenLive")
	}
	if t < 0 || t.IsInf() {
		return arrivalInstantError(len(ol.streams), t)
	}
	if t < ol.lastFed {
		return fmt.Errorf("fleet: Feed out of order: arrival %v after %v", t, ol.lastFed)
	}
	if sys := s.Runner.Sys; sys != nil && sys.NumLevels() > ol.f.maxLevels {
		return fmt.Errorf("fleet: stream %q has %d levels, over the configured MaxLevels %d", s.Name, sys.NumLevels(), ol.f.maxLevels)
	}
	ol.lastFed = t
	ol.appendStream(s, t)
	ol.growArena()
	for ol.f.step(t - 1) {
	}
	return nil
}

// appendStream grows every per-stream slab by one entry and rebinds the
// frontier's slice headers — the incremental counterpart of
// newFrontier's layout pass. Slab reallocation here is safe without a
// quiesce: these arrays are the frontier's alone (workers touch only
// the arena), and result entries already harvested keep pointing into
// the old backing, which is never mutated again.
func (ol *OpenLive) appendStream(s Stream, t core.Time) {
	f, sc := ol.f, ol.sc
	k := f.n
	ol.streams = append(ol.streams, s)
	ol.arrivals = append(ol.arrivals, t)
	sc.liveStreams, sc.liveArr = ol.streams, ol.arrivals
	u, mf := streamWeight(&ol.streams[k].Runner, true)
	sc.order = append(sc.order, int32(k))
	sc.util = append(sc.util, u)
	sc.minFin = append(sc.minFin, mf)
	sc.final = append(sc.final, false)
	sc.lifecycles = append(sc.lifecycles, metrics.Lifecycle{Name: s.Name, Arrival: t})
	sc.streams = append(sc.streams, StreamResult{Name: s.Name})
	sc.traces = append(sc.traces, sim.Trace{})
	sc.stats = append(sc.stats, sim.StatsSink{})
	for i := 0; i < f.maxLevels; i++ {
		// Element-wise, not append(…, make(…)…): the spread form builds
		// a temporary slice per feed and would cost the warm scratch its
		// allocation-free steady state.
		sc.hist = append(sc.hist, 0)
	}
	f.n = k + 1
	f.streams, f.arr = ol.streams, ol.arrivals
	f.order, f.util, f.minFin, f.final = sc.order, sc.util, sc.minFin, sc.final
	sc.res.Streams = sc.streams
	sc.res.Lifecycles = sc.lifecycles
	if k == 0 {
		f.lastT = t
		f.res.FirstArrival = t
	}
}

// growArena widens the arena's flat indirection arrays to the fed
// population under an executor quiesce — the one shared structure
// Feed's growth touches that workers scan concurrently.
func (ol *OpenLive) growArena() {
	f := ol.f
	if f.n <= len(f.arena.slotTbl) {
		return
	}
	f.exec.quiesce()
	f.arena.ensurePopulation(f.n)
	f.exec.release()
}

// Events returns the number of event groups processed so far — the
// checkpoint-boundary clock a serving driver keys its snapshot interval
// on.
func (ol *OpenLive) Events() int64 { return ol.f.events }

// Population returns the number of streams fed so far.
func (ol *OpenLive) Population() int { return ol.f.n }

// Backlog returns the number of delayed streams currently queued for
// admission — the readiness signal a serving driver exposes. Like every
// OpenLive method it belongs to the owner goroutine.
func (ol *OpenLive) Backlog() int { return ol.f.blLen }

// InService returns the number of streams admitted and not yet departed
// in serial-event-order terms — together with Backlog and CPULoad, the
// watermark-consistent load a cluster router reads to place the next
// arrival.
func (ol *OpenLive) InService() int { return ol.f.inServe }

// CPULoad returns the summed multitask utilization of the in-service
// streams — the committed fraction of the simulated CPU budget, in the
// same serial-order terms as InService.
func (ol *OpenLive) CPULoad() float64 { return ol.f.cpuLoad }

// Advance processes every event group the fed prefix fully determines
// at instants up to and including the watermark, blocking (bounded, via
// the departure-bound gate) only when an in-flight completion gates a
// decision. After Advance(t), Backlog/InService/CPULoad report the
// serial-order state with every departure, promotion and fed arrival at
// instants ≤ t accounted for — a pure function of the fed sequence,
// independent of (workers, batch, lookahead). Feeding an arrival at an
// instant ≤ a previously advanced watermark is an order error, exactly
// as feeding out of arrival order is.
func (ol *OpenLive) Advance(watermark core.Time) error {
	if ol.closed {
		return errors.New("fleet: Advance on a closed OpenLive")
	}
	if watermark > ol.lastFed {
		ol.lastFed = watermark
	}
	for ol.f.step(watermark) {
	}
	return nil
}

// Checkpoint pauses execution at a cycle-batch quiescence point and
// returns a deep capture of the run, then lets the pool resume. The
// capture plus the fed (streams, arrivals) prefix is everything a
// Restore needs to continue the run with byte-identical results.
func (ol *OpenLive) Checkpoint() (*OpenCapture, error) {
	if ol.closed {
		return nil, errors.New("fleet: Checkpoint on a closed OpenLive")
	}
	return ol.f.checkpoint(), nil
}

// Restore rebuilds a freshly created OpenLive from a capture and the
// exact (streams, arrivals) population that had been fed when it was
// taken. Subsequent feeds continue the run; results are byte-identical
// to the run that never stopped.
func (ol *OpenLive) Restore(c *OpenCapture, streams []Stream, arrivals []core.Time) error {
	if ol.closed {
		return errors.New("fleet: Restore on a closed OpenLive")
	}
	if ol.f.n != 0 || ol.f.events != 0 {
		return errors.New("fleet: Restore on a used OpenLive")
	}
	if len(streams) != len(c.Lifecycles) || len(arrivals) != len(streams) {
		return errCorruptCapture(fmt.Sprintf("capture covers %d streams, caller re-fed %d with %d arrivals", len(c.Lifecycles), len(streams), len(arrivals)))
	}
	for i := range streams {
		t := arrivals[i]
		if t < 0 || t.IsInf() || t < ol.lastFed {
			return errCorruptCapture(fmt.Sprintf("re-fed arrival %d out of order", i))
		}
		if t != c.Lifecycles[i].Arrival {
			return errCorruptCapture(fmt.Sprintf("re-fed arrival %d is %v, capture recorded %v", i, t, c.Lifecycles[i].Arrival))
		}
		if sys := streams[i].Runner.Sys; sys != nil && sys.NumLevels() > ol.f.maxLevels {
			return fmt.Errorf("fleet: stream %q has %d levels, over the configured MaxLevels %d", streams[i].Name, sys.NumLevels(), ol.f.maxLevels)
		}
		ol.lastFed = t
		ol.appendStream(streams[i], t)
	}
	ol.growArena()
	return ol.f.restore(c)
}

// Abort shuts the executor pool down without draining or sealing: the
// run is discarded (after a Checkpoint, typically, whose capture is all
// that survives). Safe on an already-closed OpenLive.
func (ol *OpenLive) Abort() {
	if ol.closed {
		return
	}
	ol.closed = true
	ol.f.exec.shutdown()
}

// Close drains every remaining event, seals and returns the result —
// OpenResult has the exact shape and content of an OpenRunStats over
// the full fed population. The executor pool shuts down; the OpenLive
// is spent. Closing with no streams fed returns the no-streams error,
// like the batch entry points.
func (ol *OpenLive) Close() (*OpenResult, error) {
	if ol.closed {
		return nil, errors.New("fleet: OpenLive closed twice")
	}
	ol.closed = true
	defer ol.f.exec.shutdown()
	if ol.f.n == 0 {
		return nil, errNoStreams
	}
	for ol.f.step(core.TimeInf) {
	}
	ol.f.finishRun()
	return ol.f.res, nil
}
