package fleet

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/multitask"
)

// Verdict is an admission controller's decision about one arriving (or
// queued) stream.
type Verdict uint8

const (
	// Admit lets the stream enter service at the decision instant.
	Admit Verdict = iota
	// Delay keeps the stream in the FIFO backlog; it is reconsidered
	// whenever capacity frees.
	Delay
	// Shed drops the stream: it never runs and leaves no trace. Shed is
	// honoured only for new arrivals; a queued stream is never shed by a
	// re-consultation (the loop treats Shed as Delay there).
	Shed
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case Admit:
		return "admit"
	case Delay:
		return "delay"
	case Shed:
		return "shed"
	}
	return fmt.Sprintf("verdict(%d)", uint8(v))
}

// Load is the admission controller's view of the open system at a
// decision instant.
type Load struct {
	// T is the decision instant in simulated time.
	T core.Time
	// InService counts streams admitted and not yet departed.
	InService int
	// Backlog counts the streams queued *ahead of* the candidate: the
	// whole queue for a new arrival, zero for the backlog head being
	// reconsidered after a departure. A policy that delays whenever
	// Backlog > 0 is therefore FIFO by construction — arrivals cannot
	// overtake the queue.
	Backlog int
	// CPULoad is the summed multitask.Utilization of in-service streams:
	// the fraction of the simulated CPU budget already committed.
	CPULoad float64
}

// Admitter decides the fate of streams presented to an open fleet.
// Decide must be a pure function of its arguments and the policy's
// immutable parameters — the open loop's byte-for-byte determinism
// across (workers, batch) rests on it.
type Admitter interface {
	// Name identifies the policy and its parameters for reports and
	// benchmark rows.
	Name() string
	// Decide returns the verdict for a stream of utilization u at load l.
	Decide(l Load, u float64) Verdict
}

// AdmitAll admits every stream immediately — the open system degenerates
// to the closed fleet with staggered start times. It is the identity
// element the open/closed equivalence tests pin down.
type AdmitAll struct{}

// Name implements Admitter.
func (AdmitAll) Name() string { return "admit-all" }

// Decide implements Admitter.
func (AdmitAll) Decide(Load, float64) Verdict { return Admit }

// CapK bounds the number of concurrently-served streams at K, with an
// optional bound on the backlog: arrivals beyond K wait in FIFO order,
// and once Queue streams are already waiting, further arrivals are shed
// (Queue 0 is a pure loss system, Queue < 0 an unbounded queue).
type CapK struct {
	K     int
	Queue int
}

// Name implements Admitter.
func (p CapK) Name() string {
	if p.Queue < 0 {
		return fmt.Sprintf("cap-%d", p.K)
	}
	return fmt.Sprintf("cap-%d/queue-%d", p.K, p.Queue)
}

// Decide implements Admitter.
func (p CapK) Decide(l Load, _ float64) Verdict {
	if l.Backlog == 0 && l.InService < p.K {
		return Admit
	}
	if p.Queue < 0 || l.Backlog < p.Queue {
		return Delay
	}
	return Shed
}

// Budget admits on a simulated-CPU budget: a stream of utilization u
// (its guaranteed qmin demand, see multitask.Utilization) enters service
// only while the fleet's committed load passes multitask's EDF admission
// test against CPU processors. Streams that do not fit are delayed in
// FIFO order, or shed once Queue of them are already waiting (Queue < 0
// = unbounded). A stream whose own utilization exceeds the whole budget
// can never be admitted; it is shed when the system drains with it still
// at the head of the queue.
type Budget struct {
	CPU   float64
	Queue int
}

// Name implements Admitter.
func (p Budget) Name() string {
	if p.Queue < 0 {
		return fmt.Sprintf("budget-%g", p.CPU)
	}
	return fmt.Sprintf("budget-%g/queue-%d", p.CPU, p.Queue)
}

// Decide implements Admitter.
func (p Budget) Decide(l Load, u float64) Verdict {
	if l.Backlog == 0 && multitask.EDFAdmissible(l.CPULoad, u, p.CPU) {
		return Admit
	}
	if p.Queue < 0 || l.Backlog < p.Queue {
		return Delay
	}
	return Shed
}

// ParseAdmitter builds an admission policy from its flag spelling:
//
//	all                  admit everything (the default)
//	cap=K[,queue=N]      at most K concurrent streams, optional queue bound
//	budget=U[,queue=N]   simulated-CPU budget of U processors (EDF test)
//
// An omitted queue bound means an unbounded queue.
func ParseAdmitter(spec string) (Admitter, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "all" {
		return AdmitAll{}, nil
	}
	head, rest, hasComma := strings.Cut(spec, ",")
	queue := -1
	if hasComma && strings.TrimSpace(rest) == "" {
		return nil, fmt.Errorf("fleet: bad admission spec %q: trailing comma (want queue=N after it)", spec)
	}
	if rest != "" {
		qs, ok := strings.CutPrefix(strings.TrimSpace(rest), "queue=")
		if !ok {
			return nil, fmt.Errorf("fleet: bad admission spec %q: want queue=N after the comma", spec)
		}
		q, err := strconv.Atoi(qs)
		if err != nil || q < 0 {
			return nil, fmt.Errorf("fleet: bad admission queue bound %q: want a non-negative integer", qs)
		}
		queue = q
	}
	key, val, ok := strings.Cut(strings.TrimSpace(head), "=")
	if !ok {
		return nil, fmt.Errorf("fleet: unknown admission policy %q (want all, cap=K or budget=U)", spec)
	}
	switch key {
	case "cap":
		k, err := strconv.Atoi(val)
		if err != nil || k < 1 {
			return nil, fmt.Errorf("fleet: bad admission cap %q: want an integer ≥ 1", val)
		}
		return CapK{K: k, Queue: queue}, nil
	case "budget":
		u, err := strconv.ParseFloat(val, 64)
		if err != nil || math.IsNaN(u) || math.IsInf(u, 0) || u <= 0 {
			return nil, fmt.Errorf("fleet: bad admission budget %q: want a positive finite number of CPUs", val)
		}
		return Budget{CPU: u, Queue: queue}, nil
	}
	return nil, fmt.Errorf("fleet: unknown admission policy %q (want all, cap=K or budget=U)", spec)
}
