package fleet

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/regions"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// mixedStreams builds a fleet over the workloads catalog: stream k runs
// workload k mod 3 with its own derived seed — the multi-workload,
// multi-seed shape the engine exists for.
func mixedStreams(t *testing.T, n, cycles int, baseSeed uint64) []Stream {
	t.Helper()
	cat, err := workloads.Catalog()
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"audio-encoder", "sdr-pipeline", "video-decoder"}
	type compiled struct {
		sys *core.System
		tab *regions.TDTable
	}
	byName := map[string]compiled{}
	for _, name := range names {
		sys := cat[name]
		byName[name] = compiled{sys: sys, tab: regions.BuildTDTable(sys)}
	}
	streams := make([]Stream, n)
	for k := 0; k < n; k++ {
		name := names[k%len(names)]
		c := byName[name]
		streams[k] = Stream{
			Name: name,
			Runner: sim.Runner{
				Sys:      c.sys,
				Mgr:      regions.NewSymbolicManager(c.tab),
				Exec:     sim.Content{Sys: c.sys, NoiseAmp: 0.3, Seed: DeriveSeed(baseSeed, k)},
				Overhead: sim.IPodOverhead,
				Cycles:   cycles,
			},
		}
	}
	return streams
}

func traceBytes(t *testing.T, tr *sim.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := metrics.WriteTraceCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFleetTraceByteIdenticalToSerial is the engine's core guarantee:
// at the same seed, a fleet stream's trace is byte-identical to the
// serial runner's — parallelism changes wall-clock time, never results.
func TestFleetTraceByteIdenticalToSerial(t *testing.T) {
	streams := mixedStreams(t, 9, 4, 17)
	res, err := Run(Config{Streams: streams, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	for k, s := range streams {
		serial, err := s.Runner.Run()
		if err != nil {
			t.Fatal(err)
		}
		got := res.Streams[k]
		if !reflect.DeepEqual(got.Trace, serial) {
			t.Fatalf("stream %d (%s): fleet trace differs from serial run", k, s.Name)
		}
		if !bytes.Equal(traceBytes(t, got.Trace), traceBytes(t, serial)) {
			t.Fatalf("stream %d (%s): serialised traces not byte-identical", k, s.Name)
		}
	}
}

// TestFleetDeterministicAcrossWorkerCounts re-runs the same fleet under
// different pool sizes; every worker count must produce the same traces
// in the same stream order.
func TestFleetDeterministicAcrossWorkerCounts(t *testing.T) {
	base, err := Run(Config{Streams: mixedStreams(t, 6, 3, 5), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 16} {
		res, err := Run(Config{Streams: mixedStreams(t, 6, 3, 5), Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for k := range base.Streams {
			if !reflect.DeepEqual(res.Streams[k].Trace, base.Streams[k].Trace) {
				t.Fatalf("workers=%d: stream %d trace depends on worker count", workers, k)
			}
		}
	}
}

// TestFleetStressStreamsOverWorkers oversubscribes the pool (streams ≫
// workers) on a shared stateless manager; with -race this doubles as
// the engine's data-race check.
func TestFleetStressStreamsOverWorkers(t *testing.T) {
	sys := core.RandomSystem(rand.New(rand.NewSource(3)), core.RandomSystemConfig{Actions: 25})
	tab := regions.BuildTDTable(sys)
	mgr := regions.NewSymbolicManager(tab) // shared: stateless by design
	const n = 96
	streams := make([]Stream, n)
	for k := range streams {
		streams[k] = Stream{
			Name: "s",
			Runner: sim.Runner{
				Sys:    sys,
				Mgr:    mgr,
				Exec:   sim.Content{Sys: sys, NoiseAmp: 0.4, Seed: DeriveSeed(99, k)},
				Cycles: 4,
			},
		}
	}
	res, err := Run(Config{Streams: streams, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if len(res.Traces()) != n {
		t.Fatalf("got %d traces, want %d", len(res.Traces()), n)
	}
	want := sys.NumActions() * 4
	for k, tr := range res.Traces() {
		if len(tr.Records) != want {
			t.Fatalf("stream %d: %d records, want %d", k, len(tr.Records), want)
		}
	}
}

func TestFromBundleDeterministic(t *testing.T) {
	sys := core.RandomSystem(rand.New(rand.NewSource(8)), core.RandomSystemConfig{Actions: 20})
	bundle, err := controller.Compile(controller.SpecFromSystem("app", sys, []int{1, 4}))
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Manager: "relaxed", Cycles: 3, Overhead: sim.IPodOverhead, BaseSeed: 7, NoiseAmp: 0.2}
	mk := func() *Result {
		streams, err := FromBundle(bundle, 5, opt)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Config{Streams: streams, Workers: 3})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Err(); err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := mk(), mk()
	for k := range a.Streams {
		if a.Streams[k].Name != b.Streams[k].Name {
			t.Fatal("stream naming not deterministic")
		}
		if !reflect.DeepEqual(a.Streams[k].Trace, b.Streams[k].Trace) {
			t.Fatalf("stream %d: bundle fleet not reproducible", k)
		}
	}
	if reflect.DeepEqual(a.Streams[0].Trace.Records, a.Streams[1].Trace.Records) {
		t.Fatal("distinct streams should draw distinct content")
	}
	if _, err := FromBundle(bundle, 0, opt); err == nil {
		t.Fatal("FromBundle must reject n=0")
	}
	if _, err := FromBundle(bundle, 2, Options{Manager: "bogus", Cycles: 1}); err == nil {
		t.Fatal("FromBundle must reject unknown managers")
	}
}

func TestFleetErrors(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("empty fleet must be rejected")
	}
	streams := mixedStreams(t, 3, 2, 1)
	streams[1].Cycles = 0 // per-stream configuration error
	res, err := Run(Config{Streams: streams, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Streams[1].Err == nil {
		t.Fatal("bad stream must carry its error")
	}
	if res.Streams[0].Err != nil || res.Streams[2].Err != nil {
		t.Fatal("healthy streams must still run")
	}
	if res.Err() == nil {
		t.Fatal("Result.Err must surface the stream error")
	}
	if len(res.Traces()) != 2 {
		t.Fatalf("Traces() = %d, want the 2 healthy streams", len(res.Traces()))
	}
}

func TestDeriveSeed(t *testing.T) {
	seen := map[uint64]bool{}
	for k := 0; k < 1000; k++ {
		s := DeriveSeed(1, k)
		if seen[s] {
			t.Fatalf("seed collision at stream %d", k)
		}
		seen[s] = true
		if s != DeriveSeed(1, k) {
			t.Fatal("DeriveSeed must be pure")
		}
	}
	if DeriveSeed(1, 0) == DeriveSeed(2, 0) {
		t.Fatal("different bases should give different seeds")
	}
}

// TestRunStatsEqualsRetainedAggregation is the zero-retention engine's
// acceptance property: a fleet run through RunStats (StatsSink per
// stream, no records anywhere) must produce exactly the FleetSummary
// that the retained Run yields through AggregateTraces on the same
// seeds — and its scalar traces must match the retained ones field for
// field.
func TestRunStatsEqualsRetainedAggregation(t *testing.T) {
	retained, err := Run(Config{Streams: mixedStreams(t, 9, 4, 23), Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := RunStats(Config{Streams: mixedStreams(t, 9, 4, 23), Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := streamed.Err(); err != nil {
		t.Fatal(err)
	}

	var traces []*sim.Trace
	var stats []*sim.StatsSink
	for k, s := range streamed.Streams {
		if len(s.Trace.Records) != 0 {
			t.Fatalf("stream %d retained %d records under RunStats", k, len(s.Trace.Records))
		}
		if s.Stats == nil {
			t.Fatalf("stream %d carries no stats", k)
		}
		scalar := *retained.Streams[k].Trace
		scalar.Records = nil
		if !reflect.DeepEqual(*s.Trace, scalar) {
			t.Fatalf("stream %d: scalar trace diverges between RunStats and Run", k)
		}
		traces = append(traces, s.Trace)
		stats = append(stats, s.Stats)
	}

	got := metrics.AggregateStats(traces, stats)
	want := metrics.AggregateTraces(retained.Traces())
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("streamed fleet summary diverges from retained aggregation:\n got %+v\nwant %+v", got, want)
	}
}

// TestRunRejectsPresetSink: Run's contract is retained traces, so a
// stream arriving with a caller-set sink must fail per-stream instead
// of silently dropping either the sink or the records.
func TestRunRejectsPresetSink(t *testing.T) {
	streams := mixedStreams(t, 2, 2, 31)
	streams[1].Runner.Sink = &sim.TraceSink{}
	res, err := Run(Config{Streams: streams, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Streams[0].Err != nil {
		t.Fatal("sink-free stream must still run")
	}
	if res.Streams[1].Err == nil {
		t.Fatal("stream with a pre-set sink must be rejected by Run")
	}
}
