package fleet

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/regions"
	"repro/internal/sim"
)

// hetStreams builds a fleet with deliberately unequal stream lengths so
// shard durations are skewed and the steal path actually fires: the
// longest stream is ~an order of magnitude longer than the shortest.
func hetStreams(t *testing.T, n int, baseSeed uint64) []Stream {
	t.Helper()
	sys := core.RandomSystem(rand.New(rand.NewSource(21)), core.RandomSystemConfig{Actions: 20, Levels: 4, DeadlineEvery: 3})
	tab := regions.BuildTDTable(sys)
	rt := regions.MustBuildRelaxTables(tab, []int{1, 2, 5})
	mgr := regions.NewRelaxedManager(rt) // shared: stateless by design
	streams := make([]Stream, n)
	for k := range streams {
		streams[k] = Stream{
			Name: fmt.Sprintf("het-%03d", k),
			Runner: sim.Runner{
				Sys:    sys,
				Mgr:    mgr,
				Exec:   sim.Content{Sys: sys, NoiseAmp: 0.4, Seed: DeriveSeed(baseSeed, k)},
				Cycles: 2 + 11*(k%13),
			},
		}
	}
	return streams
}

// TestQuickFleetInvariantAcrossWorkersAndBatches is the v2 engine's
// acceptance property: for fuzzed fleets and arbitrary (workers,
// BatchCycles) settings — including batch 1, batches straddling stream
// ends and batches far beyond any stream — every trace equals the
// serial runner's for the same stream, byte for byte.
func TestQuickFleetInvariantAcrossWorkersAndBatches(t *testing.T) {
	f := func(seed int64, nRaw, wRaw, bRaw uint8) bool {
		n := int(nRaw%13) + 1
		workers := int(wRaw%9) + 1
		batch := []int{1, 2, 3, 7, 32, 1 << 20}[int(bRaw)%6]
		streams := hetStreams(t, n, uint64(seed))
		res, err := Run(Config{Streams: streams, Workers: workers, BatchCycles: batch})
		if err != nil {
			t.Log(err)
			return false
		}
		if err := res.Err(); err != nil {
			t.Log(err)
			return false
		}
		for k := range streams {
			serial, err := streams[k].Runner.Run()
			if err != nil {
				t.Log(err)
				return false
			}
			if !reflect.DeepEqual(res.Streams[k].Trace, serial) {
				t.Logf("n=%d workers=%d batch=%d: stream %d diverges from serial", n, workers, batch, k)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestFleetWorkStealing oversubscribes the pool with heterogeneous
// stream lengths (streams ≫ workers, shard durations skewed ~10×) so
// drained workers must steal from loaded shards mid-run; under -race
// this is the scheduler's hand-off correctness check. Batch 1 maximises
// the number of claim/release transitions.
func TestFleetWorkStealing(t *testing.T) {
	streams := hetStreams(t, 160, 7)
	for _, batch := range []int{1, 3, DefaultBatchCycles} {
		res, err := RunStats(Config{Streams: streams, Workers: 4, BatchCycles: batch})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Err(); err != nil {
			t.Fatal(err)
		}
		for k := range streams {
			want := streams[k].Runner.Cycles
			tr := res.Streams[k].Trace
			if tr.Cycles != want {
				t.Fatalf("batch=%d: stream %d ran %d cycles, want %d", batch, k, tr.Cycles, want)
			}
			if res.Streams[k].Stats.Records != want*streams[k].Runner.Sys.NumActions() {
				t.Fatalf("batch=%d: stream %d observed wrong record count", batch, k)
			}
		}
	}
}

// TestStreamTableSoALayout: the mutable state the workers sweep must
// actually live in the table's contiguous slabs — adjacent streams'
// states and sinks at fixed strides — or the cache-affinity argument is
// fiction.
func TestStreamTableSoALayout(t *testing.T) {
	streams := hetStreams(t, 8, 3)
	tbl, err := NewStreamTable(streams, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 8 {
		t.Fatalf("table length %d", tbl.Len())
	}
	for k := 1; k < 8; k++ {
		if &tbl.states[k] != &tbl.states[0:8][k] || &tbl.sinks[k] != &tbl.sinks[0:8][k] {
			t.Fatal("slabs must be single allocations")
		}
	}
	// Histogram windows: contiguous partition of one backing slab.
	levels := streams[0].Runner.Sys.NumLevels()
	if len(tbl.hist) != 8*levels {
		t.Fatalf("hist slab has %d cells, want %d", len(tbl.hist), 8*levels)
	}
	tbl.Run(2, 4)
	for k := 0; k < 8; k++ {
		total := 0
		for _, c := range tbl.hist[k*levels : (k+1)*levels] {
			total += c
		}
		if want := tbl.sinks[k].Records; total != want {
			t.Fatalf("stream %d: slab histogram holds %d records, sink says %d", k, total, want)
		}
	}
}

// TestRunRejectsExport: Run retains full traces; pairing it with a
// streaming export hook is a configuration contradiction that must be
// loud, not silent.
func TestRunRejectsExport(t *testing.T) {
	streams := hetStreams(t, 2, 1)
	_, err := Run(Config{Streams: streams, Export: func(int, string) sim.Sink { return nil }})
	if err == nil {
		t.Fatal("Run must reject Config.Export")
	}
}

// TestRunStatsExportTee: Export sinks observe exactly the stream's
// record sequence alongside the StatsSink, and a nil return skips the
// stream.
func TestRunStatsExportTee(t *testing.T) {
	streams := hetStreams(t, 3, 9)
	got := make([]*sim.TraceSink, len(streams))
	res, err := RunStats(Config{
		Streams: streams,
		Workers: 2,
		Export: func(k int, name string) sim.Sink {
			if k == 1 {
				return nil // opting out must be allowed
			}
			got[k] = &sim.TraceSink{}
			return got[k]
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	for k := range streams {
		serial, err := streams[k].Runner.Run()
		if err != nil {
			t.Fatal(err)
		}
		if k == 1 {
			if got[k] != nil {
				t.Fatal("skipped stream must have no export sink")
			}
			continue
		}
		if !reflect.DeepEqual(got[k].Records, serial.Records) {
			t.Fatalf("stream %d: exported records diverge from serial trace", k)
		}
		if res.Streams[k].Stats.Records != len(serial.Records) {
			t.Fatalf("stream %d: stats sink missed records under tee", k)
		}
	}
}

// TestDeriveSeedFleetScale: per-stream seeds stay distinct across a
// 100k-stream fleet and match frozen golden values — the derivation is
// part of the reproducibility contract, so a silent change to the mix
// would invalidate every recorded result.
func TestDeriveSeedFleetScale(t *testing.T) {
	seen := make(map[uint64]int, 100000)
	for k := 0; k < 100000; k++ {
		s := DeriveSeed(12345, k)
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision: streams %d and %d both get %#x", prev, k, s)
		}
		seen[s] = k
	}
	golden := []struct {
		base uint64
		k    int
		want uint64
	}{
		{0, 0, 0xE220A8397B1DCDAF},
		{1, 0, 0x910A2DEC89025CC1},
		{1, 1, 0xBEEB8DA1658EEC67},
		{1, 2, 0xF893A2EEFB32555E},
		{42, 7, 0xCCF635EE9E9E2FA4},
		{1 << 63, 99999, 0xEDFD6323B5963102},
	}
	for _, g := range golden {
		if got := DeriveSeed(g.base, g.k); got != g.want {
			t.Fatalf("DeriveSeed(%d, %d) = %#x, want %#x (derivation changed!)", g.base, g.k, got, g.want)
		}
	}
}
