package fleet

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/sim"
)

// DefaultBatchCycles is the number of cycles a worker advances one
// stream before moving to the next in its shard. 32 cycles of the
// paper's encoder is ≈38k actions — long enough to amortise the switch
// and keep the manager's tables hot, short enough that shard sweeps
// revisit every stream's struct-of-arrays state while it is still in
// cache and that stolen streams migrate at a useful granularity.
const DefaultBatchCycles = 32

// Per-stream scheduler states. A stream's owner moves it free → claimed
// → free once per batch; a thief moves it free → stolen exactly once
// and runs it to completion; the finisher stores done. All transitions
// go through the atomic status word, so exactly one worker ever
// advances a given stream at a time and every hand-off is a
// synchronised publication of the stream's slab state. Claimed is the
// only transient state — once every live stream is stolen, no stream
// can ever become claimable again, which is what lets drained workers
// exit instead of spinning until the last thief finishes.
const (
	streamFree int32 = iota
	streamClaimed
	streamStolen
	streamDone
)

// sched is the fleet's shard-affine run-to-completion scheduler.
// Persistent workers own disjoint contiguous stream shards and advance
// each live stream of their shard in BatchCycles-cycle batches —
// run-to-completion within the batch, no channel round-trip per
// stream-step, no shared state touched beyond one CAS pair per batch on
// the stream's own status word. Only when a worker's shard drains does
// it touch the shared steal counter to scan for leftover work on other
// shards; a stolen stream is run to completion by the thief. Scheduling
// order changes wall-clock time, never results: every stream is a
// serial sim.Stream whatever worker advances it.
type sched struct {
	tbl   *StreamTable
	slots []int32 // the table slots under this run; status is indexed in step
	batch int
	met   *obs.FleetMetrics // optional observability (Config.Obs); nil = dark
	tr    *obs.Trace
	// status holds one claim word per stream, CASed by whichever worker
	// advances it.
	//detlint:atomic
	status []atomic.Int32
	_      [cacheLine]byte // keep the dispenser off the slice headers' lines
	// steal is the shared work-stealing dispenser, touched only by
	// drained workers.
	//detlint:atomic
	steal atomic.Int64
	_     [cacheLine - 8]byte
}

// Run advances every stream of the table to completion on the given
// worker pool (≤ 0 selects GOMAXPROCS, capped at the stream count).
// batch ≤ 0 selects DefaultBatchCycles.
func (tbl *StreamTable) Run(workers, batch int) {
	slots := make([]int32, tbl.Len())
	for k := range slots {
		slots[k] = int32(k)
	}
	tbl.RunSlots(slots, workers, batch)
}

// RunSlots drains the given table slots to completion — the open-system
// entry point: each admission wave hands the scheduler just the slots it
// bound, so newly arrived streams are injected into the same shard-affine
// machinery that drains a closed fleet, whatever mix of fresh and
// recycled slots they landed in.
func (tbl *StreamTable) RunSlots(slots []int32, workers, batch int) {
	tbl.runSlots(slots, workers, batch, nil, nil)
}

// runSlots is RunSlots with the optional observability hooks threaded
// through — the closed fleet driver passes Config.Obs/.Trace here.
func (tbl *StreamTable) runSlots(slots []int32, workers, batch int, met *obs.FleetMetrics, tr *obs.Trace) {
	n := len(slots)
	if n == 0 {
		return
	}
	if batch <= 0 {
		batch = DefaultBatchCycles
	}
	workers = sim.EffectiveWorkers(n, workers)
	if workers == 1 {
		// One worker owns the whole slot set: plain batch sweeps, no
		// atomics at all. This is also the in-order reference the
		// concurrent path is property-tested against. The live set is
		// compacted in place as streams finish, so rounds cost O(live),
		// not O(n) — with skewed lengths the tail rounds sweep only the
		// stragglers.
		live := make([]int32, 0, n)
		for _, k := range slots {
			if tbl.errs[k] == nil {
				live = append(live, k)
			}
		}
		for len(live) > 0 {
			out := live[:0]
			for _, k := range live {
				if met != nil {
					met.Batches.Inc()
				}
				if !advance(&tbl.streams[k], batch) {
					out = append(out, k)
				}
			}
			live = out
		}
		return
	}

	s := &sched{tbl: tbl, slots: slots, batch: batch, met: met, tr: tr,
		status: make([]atomic.Int32, n)}
	for i, k := range slots {
		if tbl.errs[k] != nil {
			s.status[i].Store(streamDone)
		}
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		// Contiguous shards, remainder spread over the first workers,
		// so shard k's streams are adjacent in every slab.
		lo := w * n / workers
		hi := (w + 1) * n / workers
		go func(w int) {
			defer wg.Done()
			s.worker(w, lo, hi)
		}(w)
	}
	wg.Wait()
}

// advance runs one batch of cycles on st and reports whether the stream
// has completed.
func advance(st *sim.Stream, batch int) bool {
	for c := 0; c < batch; c++ {
		if !st.Step() {
			return true
		}
	}
	return st.Done()
}

// openSched is the continuous open engine's executor: a pool of
// persistent, injection-aware workers over the slot arena. Where the
// closed scheduler's workers drain a fixed population and exit, these
// outlive every stream: the frontier binds arrivals into recycled slots
// and publishes them ready *while workers run*, and workers harvest
// nothing themselves — they advance claimed slots in BatchCycles
// batches and publish completions for the frontier to retire. There is
// no global barrier anywhere: a wave of one stream no longer costs a
// pool start/join, and a straggler never idles the pool.
//
// Work discovery is shard-affine in the striped sense: worker w first
// sweeps its own stripe (slots ≡ w mod workers), and only when the
// stripe is dry touches the shared steal counter to stagger a full
// scan over every published slot — the closed scheduler's steal
// discipline adapted to a slot space that grows mid-run. A worker that
// finds nothing claimable parks on the bind generation and is woken by
// the next injection (or shutdown), so an idle pool burns no CPU.
type openSched struct {
	a       *openArena
	sc      *OpenScratch
	batch   int
	workers int
	met     *obs.FleetMetrics // optional observability (OpenConfig.Obs); nil = dark
	tr      *obs.Trace

	mu     sync.Mutex
	work   *sync.Cond // workers park here for the next injection
	comp   *sync.Cond // the frontier blocks here for completions
	quiet  *sync.Cond // quiesce waits here until every worker is parked
	resume *sync.Cond // paused workers park here until release
	space  *sync.Cond // overflow-parked workers wait for the frontier here
	over   []int32    // per-worker overflow cell (-1 = none), under mu
	gen    uint64     // bind generation; bumped under mu per injection batch
	parked int        // workers waiting on work, resume, or space
	paused bool       // quiesce requested; workers park at the next boundary
	done   bool

	rings   []completionRing // per-worker SPSC completion rings
	overBuf []int32          // frontier-only staging for overflow slots

	_ [cacheLine]byte // isolate the cross-thread hot words below
	// steal staggers full steal sweeps across drained workers.
	//detlint:atomic
	steal atomic.Int64
	_     [cacheLine - 8]byte
	// compWait is the Dekker flag for the frontier's blocking drain: the
	// frontier raises it (under mu) before re-walking the rings, and
	// every worker checks it after publishing. Both sides are seq-cst
	// store-then-load pairs over (ring tail, compWait), so either the
	// frontier's walk sees the completion or the worker sees the flag
	// and signals comp — a wakeup can never be lost.
	//detlint:atomic
	compWait atomic.Int32
	_        [cacheLine - 4]byte
	// overflow counts workers parked with a completion in their over
	// cell; the frontier polls it per harvest without taking the lock.
	//detlint:atomic
	overflow atomic.Int32
	_        [cacheLine - 4]byte

	wg sync.WaitGroup
}

// openRingCap is the per-worker completion ring capacity (a power of
// two). It is a variable only so tests can shrink it to force the
// wrap-around and overflow-park paths; nothing mutates it concurrently
// with a run.
var openRingCap = 64

// ringSpin bounds how long a worker yields on a full ring before
// parking: long enough to ride out a frontier that is mid-harvest,
// short enough that quiesce is never held hostage by a spinner.
const ringSpin = 128

// completionRing is a single-producer/single-consumer ring of finished
// slots: the owning worker pushes, the frontier pops. head and tail sit
// on separate cache lines so the producer's stores never invalidate the
// consumer's hot line (or vice versa). Both cursors are seq-cst
// atomics, which carries the classic SPSC argument: the producer writes
// buf[t] only after observing head > t−cap, the consumer reads buf[h]
// only after observing tail > h, and each side advances only its own
// cursor — so every buf access is ordered by a cursor publication.
type completionRing struct {
	// head is the consumer cursor; only the frontier advances it.
	//detlint:atomic
	head atomic.Int64
	_    [cacheLine - 8]byte
	// tail is the producer cursor; only the owning worker advances it.
	//detlint:atomic
	tail atomic.Int64
	_    [cacheLine - 8]byte
	buf  []int32 // power-of-two length; indexed by cursor & (len-1)
}

// reset prepares the ring for a new run, reallocating the buffer only
// when the capacity changed since the scratch last held it.
func (r *completionRing) reset(capacity int) {
	if len(r.buf) != capacity {
		r.buf = make([]int32, capacity)
	}
	r.head.Store(0)
	r.tail.Store(0)
}

// push publishes one finished slot, reporting false when the ring is
// full — the producer falls back to publishSlow rather than block here.
//
//detlint:hotpath
func (r *completionRing) push(slot int32) bool {
	t := r.tail.Load()
	if t-r.head.Load() >= int64(len(r.buf)) {
		return false
	}
	r.buf[int(t)&(len(r.buf)-1)] = slot
	r.tail.Store(t + 1)
	return true
}

// pop takes the oldest published slot, if any.
//
//detlint:hotpath
func (r *completionRing) pop() (int32, bool) {
	h := r.head.Load()
	if h == r.tail.Load() {
		return 0, false
	}
	slot := r.buf[int(h)&(len(r.buf)-1)]
	r.head.Store(h + 1)
	return slot, true
}

// newOpenSched spawns the persistent pool. The rings and overflow cells
// live in the scratch so a warm steady state publishes without
// allocating; cursors are reset here because an aborted run can leave
// completions behind.
func newOpenSched(a *openArena, workers, batch int, sc *OpenScratch, met *obs.FleetMetrics, tr *obs.Trace) *openSched {
	s := &openSched{a: a, sc: sc, batch: batch, workers: workers, met: met, tr: tr}
	s.work = sync.NewCond(&s.mu)
	s.comp = sync.NewCond(&s.mu)
	s.quiet = sync.NewCond(&s.mu)
	s.resume = sync.NewCond(&s.mu)
	s.space = sync.NewCond(&s.mu)
	if len(sc.rings) < workers {
		sc.rings = make([]completionRing, workers)
	}
	if cap(sc.over) < workers {
		sc.over = make([]int32, workers)
		sc.overBuf = make([]int32, 0, workers)
	}
	s.rings = sc.rings[:workers]
	for w := range s.rings {
		s.rings[w].reset(openRingCap)
	}
	s.over = sc.over[:workers]
	for w := range s.over {
		s.over[w] = -1
	}
	s.overBuf = sc.overBuf[:0]
	s.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer s.wg.Done()
			s.runOpen(w)
		}(w)
	}
	return s
}

// start wakes the pool after the frontier published n ready slots. The
// lookahead window batches publications, so one lock/generation bump
// covers a whole admission burst; waking min(n, workers) parked workers
// keeps a single-slot publish exactly as cheap as before.
func (s *openSched) start(n int) {
	s.mu.Lock()
	s.gen++
	if n >= s.workers {
		s.work.Broadcast()
	} else {
		for i := 0; i < n; i++ {
			s.work.Signal()
		}
	}
	s.mu.Unlock()
}

// harvest retires every published completion — the per-worker rings
// round-robin, then any overflow-parked slots — and reports whether it
// found one. Ring traffic is entirely lock-free; the mutex is touched
// only when some worker overflowed its ring and parked.
func (s *openSched) harvest(f *openFrontier) bool {
	got := false
	for w := range s.rings {
		r := &s.rings[w]
		for {
			slot, ok := r.pop()
			if !ok {
				break
			}
			f.finish(slot)
			got = true
		}
	}
	if s.overflow.Load() != 0 && s.takeOverflow(f) {
		got = true
	}
	return got
}

// takeOverflow consumes the overflow cell of every worker parked on a
// full ring and wakes them. Slots are collected under the lock but
// retired outside it, so the parked workers resume while the frontier
// is still finishing their streams.
func (s *openSched) takeOverflow(f *openFrontier) bool {
	s.mu.Lock()
	buf := s.overBuf[:0]
	for w := range s.over {
		if s.over[w] >= 0 {
			buf = append(buf, s.over[w])
			s.over[w] = -1
		}
	}
	if len(buf) > 0 {
		s.overflow.Add(int32(-len(buf)))
		s.space.Broadcast()
	}
	s.mu.Unlock()
	s.overBuf = buf[:0]
	for _, slot := range buf {
		f.finish(slot)
	}
	return len(buf) > 0
}

// drain retires published completions, blocking until at least one
// arrives when block is set. The non-blocking pass never takes the
// mutex unless a ring overflowed; the blocking pass raises compWait and
// re-walks the rings before every wait, so a publication cannot slip
// between the check and the sleep (see compWait). The overflow re-check
// under the lock covers the one publisher that parks instead of
// pushing: its counter bump happens under mu, so it is visible here.
func (s *openSched) drain(f *openFrontier, block bool) {
	if s.harvest(f) || !block {
		return
	}
	s.mu.Lock()
	s.compWait.Store(1)
	for {
		s.mu.Unlock()
		got := s.harvest(f)
		s.mu.Lock()
		if got {
			break
		}
		if s.overflow.Load() != 0 {
			continue // a publisher parked between harvest and lock
		}
		s.comp.Wait()
	}
	s.compWait.Store(0)
	s.mu.Unlock()
}

// publish hands one finished slot to the frontier. The fast path is a
// single SPSC push with no lock; the compWait check afterwards wakes a
// frontier that went to sleep concurrently (see compWait).
func (s *openSched) publish(w int, slot int32) {
	r := &s.rings[w]
	if !r.push(slot) {
		s.publishSlow(w, slot)
	}
	if s.met != nil {
		// Approximate occupancy: both cursors may move between the two
		// loads, but the high-water is a shape-dependent signal, not an
		// invariant.
		s.met.RingHighWater.SetMax(r.tail.Load() - r.head.Load())
	}
	if s.compWait.Load() != 0 {
		s.mu.Lock()
		s.comp.Signal()
		s.mu.Unlock()
	}
}

// publishSlow handles a full ring: yield-spin briefly (the frontier may
// be mid-harvest), then park with the slot in the worker's overflow
// cell until the frontier consumes it. Publication never waits on the
// frontier while holding anything the frontier needs, and the park
// counts toward quiesce — so a checkpoint reaches quiescence even with
// every ring full and drains the backlog afterwards.
func (s *openSched) publishSlow(w int, slot int32) {
	r := &s.rings[w]
	for i := 0; i < ringSpin; i++ {
		runtime.Gosched()
		if r.push(slot) {
			return
		}
	}
	s.mu.Lock()
	if !r.push(slot) {
		if s.met != nil {
			s.met.OverflowParks.Inc()
		}
		s.over[w] = slot
		s.overflow.Add(1)
		s.parked++
		if s.parked == s.workers {
			s.quiet.Signal()
		}
		if s.compWait.Load() != 0 {
			s.comp.Signal()
		}
		for s.over[w] >= 0 && !s.done {
			s.space.Wait()
		}
		s.parked--
	}
	s.mu.Unlock()
}

// shutdown releases the pool. The frontier calls it once every
// departure has been retired, so no slot can still be ready or claimed
// — except on abort, where a worker may still be parked on a full ring;
// the space broadcast lets it abandon the slot and exit.
func (s *openSched) shutdown() {
	s.mu.Lock()
	s.done = true
	s.work.Broadcast()
	s.resume.Broadcast()
	s.space.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// quiesce pauses the pool at a cycle-batch boundary: workers finish the
// batch they hold, publish its status, and park; quiesce returns once
// every worker is parked. From then until release, no slot is claimed
// and no slab is being written, so the frontier can read (or grow) every
// arena structure without a race — the checkpoint and population-growth
// hook. The frontier must still drain published completions itself: a
// worker may have completed a stream right before parking, and a worker
// parked on a full ring counts as parked with its slot still in the
// overflow cell — drain consumes both, so no slotDone slot survives a
// post-quiesce drain.
func (s *openSched) quiesce() {
	s.mu.Lock()
	s.paused = true
	s.work.Broadcast() // idle workers must migrate to the pause lobby
	for s.parked < s.workers {
		s.quiet.Wait()
	}
	s.mu.Unlock()
}

// release ends a quiesce and lets the pool run again.
func (s *openSched) release() {
	s.mu.Lock()
	s.paused = false
	s.resume.Broadcast()
	s.mu.Unlock()
}

// runOpen is one persistent worker: claim → advance a batch → publish
// or release, parking on the bind generation when nothing is claimable.
// Sampling the generation before the scan closes the classic missed-
// wakeup race — any injection after the sample bumps it, so the park
// loop falls through immediately. A pause request is honoured at the
// top of every iteration — between batches, never inside one — so a
// quiesced arena only ever exposes slot states at batch boundaries.
func (s *openSched) runOpen(w int) {
	for {
		s.mu.Lock()
		for s.paused && !s.done {
			s.parked++
			if s.parked == s.workers {
				s.quiet.Signal()
			}
			s.resume.Wait()
			s.parked--
		}
		gen, done := s.gen, s.done
		s.mu.Unlock()
		if done {
			return
		}
		slot, ok := s.claim(w)
		if !ok {
			s.mu.Lock()
			if !s.done && s.gen == gen && !s.paused {
				// About to park (not merely racing a wake): one
				// transition, however many spurious wakeups follow.
				if s.met != nil {
					s.met.Parks.Inc()
				}
				s.tr.Rec(obs.EvPark, obs.NoTime, obs.NoStream, int32(w), int64(gen))
			}
			for !s.done && s.gen == gen && !s.paused {
				s.parked++
				if s.parked == s.workers {
					s.quiet.Signal()
				}
				s.work.Wait()
				s.parked--
			}
			done = s.done
			s.mu.Unlock()
			if done {
				return
			}
			continue
		}
		tbl, idx := s.a.slotTbl[slot], s.a.slotIdx[slot]
		if s.met != nil {
			s.met.Batches.Inc()
		}
		if advance(&tbl.streams[idx], s.batch) {
			s.a.status[slot].v.Store(slotDone)
			s.publish(w, slot)
		} else {
			s.a.status[slot].v.Store(slotReady)
		}
	}
}

// claim finds a ready slot: the worker's own stripe first, then a full
// steal sweep staggered by the shared counter. The load-before-CAS
// keeps idle passes read-only on every status cache line.
//
//detlint:hotpath
func (s *openSched) claim(w int) (int32, bool) {
	n := int(s.a.allocated.Load())
	for i := w; i < n; i += s.workers {
		if s.a.status[i].v.Load() == slotReady && s.a.status[i].v.CompareAndSwap(slotReady, slotClaimed) {
			return int32(i), true
		}
	}
	if n == 0 {
		return 0, false
	}
	start := int(s.steal.Add(1)-1) % n
	for j := 0; j < n; j++ {
		i := start + j
		if i >= n {
			i -= n
		}
		if s.a.status[i].v.Load() == slotReady && s.a.status[i].v.CompareAndSwap(slotReady, slotClaimed) {
			if s.met != nil {
				s.met.Steals.Inc()
			}
			s.tr.Rec(obs.EvSteal, obs.NoTime, s.a.slotStream[i], int32(w), int64(i))
			return int32(i), true
		}
	}
	return 0, false
}

// worker drains the shard [lo, hi) and then steals.
func (s *sched) worker(w, lo, hi int) {
	// Shard phase: sweep the owned shard in batch rounds. Streams are
	// claimed per batch, so a drained thief can pick up the remains of
	// a loaded shard between two of its owner's batches.
	for {
		live, progressed := false, false
		for k := lo; k < hi; k++ {
			switch s.status[k].Load() {
			case streamDone:
				continue
			case streamStolen: // a thief is on it; it will finish it
				live = true
				continue
			}
			if !s.status[k].CompareAndSwap(streamFree, streamClaimed) {
				live = true
				continue
			}
			progressed = true
			if s.met != nil {
				s.met.Batches.Inc()
			}
			if advance(&s.tbl.streams[s.slots[k]], s.batch) {
				s.status[k].Store(streamDone)
			} else {
				live = true
				s.status[k].Store(streamFree)
			}
		}
		if !live {
			break // shard drained
		}
		if !progressed {
			break // everything left is in thieves' hands; go steal elsewhere
		}
	}

	// Steal phase: the only place the shared counter is touched — it
	// staggers where each drained worker starts scanning. Each pass
	// claims every free stream it finds and runs it to completion. A
	// stream in the transient claimed state may yet be released by its
	// owner, so passes repeat while any is seen; once everything left
	// is stolen or done, nothing can become claimable again and the
	// worker exits rather than spinning until the last thief finishes.
	n := len(s.slots)
	for {
		stole, transient := false, false
		start := int(s.steal.Add(1)-1) % n
		for j := 0; j < n; j++ {
			k := start + j
			if k >= n {
				k -= n
			}
			switch s.status[k].Load() {
			case streamDone, streamStolen:
				continue
			case streamClaimed:
				transient = true
				continue
			}
			if !s.status[k].CompareAndSwap(streamFree, streamStolen) {
				transient = true // raced with its owner or another thief
				continue
			}
			stole = true
			if s.met != nil {
				s.met.Steals.Inc()
			}
			s.tr.Rec(obs.EvSteal, obs.NoTime, s.slots[k], int32(w), int64(k))
			for {
				if s.met != nil {
					s.met.Batches.Inc()
				}
				if advance(&s.tbl.streams[s.slots[k]], s.batch) {
					break
				}
			}
			s.status[k].Store(streamDone)
		}
		if !stole {
			if !transient {
				return // all remaining streams are in terminal hands
			}
			// An owner holds a batch claim; be polite until it releases.
			runtime.Gosched()
		}
	}
}
