package fleet

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

// DefaultBatchCycles is the number of cycles a worker advances one
// stream before moving to the next in its shard. 32 cycles of the
// paper's encoder is ≈38k actions — long enough to amortise the switch
// and keep the manager's tables hot, short enough that shard sweeps
// revisit every stream's struct-of-arrays state while it is still in
// cache and that stolen streams migrate at a useful granularity.
const DefaultBatchCycles = 32

// Per-stream scheduler states. A stream's owner moves it free → claimed
// → free once per batch; a thief moves it free → stolen exactly once
// and runs it to completion; the finisher stores done. All transitions
// go through the atomic status word, so exactly one worker ever
// advances a given stream at a time and every hand-off is a
// synchronised publication of the stream's slab state. Claimed is the
// only transient state — once every live stream is stolen, no stream
// can ever become claimable again, which is what lets drained workers
// exit instead of spinning until the last thief finishes.
const (
	streamFree int32 = iota
	streamClaimed
	streamStolen
	streamDone
)

// sched is the fleet's shard-affine run-to-completion scheduler.
// Persistent workers own disjoint contiguous stream shards and advance
// each live stream of their shard in BatchCycles-cycle batches —
// run-to-completion within the batch, no channel round-trip per
// stream-step, no shared state touched beyond one CAS pair per batch on
// the stream's own status word. Only when a worker's shard drains does
// it touch the shared steal counter to scan for leftover work on other
// shards; a stolen stream is run to completion by the thief. Scheduling
// order changes wall-clock time, never results: every stream is a
// serial sim.Stream whatever worker advances it.
type sched struct {
	tbl    *StreamTable
	slots  []int32 // the table slots under this run; status is indexed in step
	batch  int
	status []atomic.Int32
	steal  atomic.Int64 // shared work-stealing dispenser, touched only by drained workers
}

// Run advances every stream of the table to completion on the given
// worker pool (≤ 0 selects GOMAXPROCS, capped at the stream count).
// batch ≤ 0 selects DefaultBatchCycles.
func (tbl *StreamTable) Run(workers, batch int) {
	slots := make([]int32, tbl.Len())
	for k := range slots {
		slots[k] = int32(k)
	}
	tbl.RunSlots(slots, workers, batch)
}

// RunSlots drains the given table slots to completion — the open-system
// entry point: each admission wave hands the scheduler just the slots it
// bound, so newly arrived streams are injected into the same shard-affine
// machinery that drains a closed fleet, whatever mix of fresh and
// recycled slots they landed in.
func (tbl *StreamTable) RunSlots(slots []int32, workers, batch int) {
	n := len(slots)
	if n == 0 {
		return
	}
	if batch <= 0 {
		batch = DefaultBatchCycles
	}
	workers = sim.EffectiveWorkers(n, workers)
	if workers == 1 {
		// One worker owns the whole slot set: plain batch sweeps, no
		// atomics at all. This is also the in-order reference the
		// concurrent path is property-tested against. The live set is
		// compacted in place as streams finish, so rounds cost O(live),
		// not O(n) — with skewed lengths the tail rounds sweep only the
		// stragglers.
		live := make([]int32, 0, n)
		for _, k := range slots {
			if tbl.errs[k] == nil {
				live = append(live, k)
			}
		}
		for len(live) > 0 {
			out := live[:0]
			for _, k := range live {
				if !advance(&tbl.streams[k], batch) {
					out = append(out, k)
				}
			}
			live = out
		}
		return
	}

	s := &sched{tbl: tbl, slots: slots, batch: batch, status: make([]atomic.Int32, n)}
	for i, k := range slots {
		if tbl.errs[k] != nil {
			s.status[i].Store(streamDone)
		}
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		// Contiguous shards, remainder spread over the first workers,
		// so shard k's streams are adjacent in every slab.
		lo := w * n / workers
		hi := (w + 1) * n / workers
		go func() {
			defer wg.Done()
			s.worker(lo, hi)
		}()
	}
	wg.Wait()
}

// advance runs one batch of cycles on st and reports whether the stream
// has completed.
func advance(st *sim.Stream, batch int) bool {
	for c := 0; c < batch; c++ {
		if !st.Step() {
			return true
		}
	}
	return st.Done()
}

// worker drains the shard [lo, hi) and then steals.
func (s *sched) worker(lo, hi int) {
	// Shard phase: sweep the owned shard in batch rounds. Streams are
	// claimed per batch, so a drained thief can pick up the remains of
	// a loaded shard between two of its owner's batches.
	for {
		live, progressed := false, false
		for k := lo; k < hi; k++ {
			switch s.status[k].Load() {
			case streamDone:
				continue
			case streamStolen: // a thief is on it; it will finish it
				live = true
				continue
			}
			if !s.status[k].CompareAndSwap(streamFree, streamClaimed) {
				live = true
				continue
			}
			progressed = true
			if advance(&s.tbl.streams[s.slots[k]], s.batch) {
				s.status[k].Store(streamDone)
			} else {
				live = true
				s.status[k].Store(streamFree)
			}
		}
		if !live {
			break // shard drained
		}
		if !progressed {
			break // everything left is in thieves' hands; go steal elsewhere
		}
	}

	// Steal phase: the only place the shared counter is touched — it
	// staggers where each drained worker starts scanning. Each pass
	// claims every free stream it finds and runs it to completion. A
	// stream in the transient claimed state may yet be released by its
	// owner, so passes repeat while any is seen; once everything left
	// is stolen or done, nothing can become claimable again and the
	// worker exits rather than spinning until the last thief finishes.
	n := len(s.slots)
	for {
		stole, transient := false, false
		start := int(s.steal.Add(1)-1) % n
		for j := 0; j < n; j++ {
			k := start + j
			if k >= n {
				k -= n
			}
			switch s.status[k].Load() {
			case streamDone, streamStolen:
				continue
			case streamClaimed:
				transient = true
				continue
			}
			if !s.status[k].CompareAndSwap(streamFree, streamStolen) {
				transient = true // raced with its owner or another thief
				continue
			}
			stole = true
			for !advance(&s.tbl.streams[s.slots[k]], s.batch) {
			}
			s.status[k].Store(streamDone)
		}
		if !stole {
			if !transient {
				return // all remaining streams are in terminal hands
			}
			// An owner holds a batch claim; be polite until it releases.
			runtime.Gosched()
		}
	}
}
