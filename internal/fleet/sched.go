package fleet

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

// DefaultBatchCycles is the number of cycles a worker advances one
// stream before moving to the next in its shard. 32 cycles of the
// paper's encoder is ≈38k actions — long enough to amortise the switch
// and keep the manager's tables hot, short enough that shard sweeps
// revisit every stream's struct-of-arrays state while it is still in
// cache and that stolen streams migrate at a useful granularity.
const DefaultBatchCycles = 32

// Per-stream scheduler states. A stream's owner moves it free → claimed
// → free once per batch; a thief moves it free → stolen exactly once
// and runs it to completion; the finisher stores done. All transitions
// go through the atomic status word, so exactly one worker ever
// advances a given stream at a time and every hand-off is a
// synchronised publication of the stream's slab state. Claimed is the
// only transient state — once every live stream is stolen, no stream
// can ever become claimable again, which is what lets drained workers
// exit instead of spinning until the last thief finishes.
const (
	streamFree int32 = iota
	streamClaimed
	streamStolen
	streamDone
)

// sched is the fleet's shard-affine run-to-completion scheduler.
// Persistent workers own disjoint contiguous stream shards and advance
// each live stream of their shard in BatchCycles-cycle batches —
// run-to-completion within the batch, no channel round-trip per
// stream-step, no shared state touched beyond one CAS pair per batch on
// the stream's own status word. Only when a worker's shard drains does
// it touch the shared steal counter to scan for leftover work on other
// shards; a stolen stream is run to completion by the thief. Scheduling
// order changes wall-clock time, never results: every stream is a
// serial sim.Stream whatever worker advances it.
type sched struct {
	tbl   *StreamTable
	slots []int32 // the table slots under this run; status is indexed in step
	batch int
	// status holds one claim word per stream, CASed by whichever worker
	// advances it.
	//detlint:atomic
	status []atomic.Int32
	// steal is the shared work-stealing dispenser, touched only by
	// drained workers.
	//detlint:atomic
	steal atomic.Int64
}

// Run advances every stream of the table to completion on the given
// worker pool (≤ 0 selects GOMAXPROCS, capped at the stream count).
// batch ≤ 0 selects DefaultBatchCycles.
func (tbl *StreamTable) Run(workers, batch int) {
	slots := make([]int32, tbl.Len())
	for k := range slots {
		slots[k] = int32(k)
	}
	tbl.RunSlots(slots, workers, batch)
}

// RunSlots drains the given table slots to completion — the open-system
// entry point: each admission wave hands the scheduler just the slots it
// bound, so newly arrived streams are injected into the same shard-affine
// machinery that drains a closed fleet, whatever mix of fresh and
// recycled slots they landed in.
func (tbl *StreamTable) RunSlots(slots []int32, workers, batch int) {
	n := len(slots)
	if n == 0 {
		return
	}
	if batch <= 0 {
		batch = DefaultBatchCycles
	}
	workers = sim.EffectiveWorkers(n, workers)
	if workers == 1 {
		// One worker owns the whole slot set: plain batch sweeps, no
		// atomics at all. This is also the in-order reference the
		// concurrent path is property-tested against. The live set is
		// compacted in place as streams finish, so rounds cost O(live),
		// not O(n) — with skewed lengths the tail rounds sweep only the
		// stragglers.
		live := make([]int32, 0, n)
		for _, k := range slots {
			if tbl.errs[k] == nil {
				live = append(live, k)
			}
		}
		for len(live) > 0 {
			out := live[:0]
			for _, k := range live {
				if !advance(&tbl.streams[k], batch) {
					out = append(out, k)
				}
			}
			live = out
		}
		return
	}

	s := &sched{tbl: tbl, slots: slots, batch: batch, status: make([]atomic.Int32, n)}
	for i, k := range slots {
		if tbl.errs[k] != nil {
			s.status[i].Store(streamDone)
		}
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		// Contiguous shards, remainder spread over the first workers,
		// so shard k's streams are adjacent in every slab.
		lo := w * n / workers
		hi := (w + 1) * n / workers
		go func() {
			defer wg.Done()
			s.worker(lo, hi)
		}()
	}
	wg.Wait()
}

// advance runs one batch of cycles on st and reports whether the stream
// has completed.
func advance(st *sim.Stream, batch int) bool {
	for c := 0; c < batch; c++ {
		if !st.Step() {
			return true
		}
	}
	return st.Done()
}

// openSched is the continuous open engine's executor: a pool of
// persistent, injection-aware workers over the slot arena. Where the
// closed scheduler's workers drain a fixed population and exit, these
// outlive every stream: the frontier binds arrivals into recycled slots
// and publishes them ready *while workers run*, and workers harvest
// nothing themselves — they advance claimed slots in BatchCycles
// batches and publish completions for the frontier to retire. There is
// no global barrier anywhere: a wave of one stream no longer costs a
// pool start/join, and a straggler never idles the pool.
//
// Work discovery is shard-affine in the striped sense: worker w first
// sweeps its own stripe (slots ≡ w mod workers), and only when the
// stripe is dry touches the shared steal counter to stagger a full
// scan over every published slot — the closed scheduler's steal
// discipline adapted to a slot space that grows mid-run. A worker that
// finds nothing claimable parks on the bind generation and is woken by
// the next injection (or shutdown), so an idle pool burns no CPU.
type openSched struct {
	a       *openArena
	sc      *OpenScratch
	batch   int
	workers int

	mu        sync.Mutex
	work      *sync.Cond // workers park here for the next injection
	comp      *sync.Cond // the frontier blocks here for completions
	quiet     *sync.Cond // quiesce waits here until every worker is parked
	resume    *sync.Cond // paused workers park here until release
	completed []int32    // published completions awaiting the frontier
	spare     []int32    // drained buffer, swapped back on the next drain
	gen       uint64     // bind generation; bumped under mu per injection
	parked    int        // workers currently waiting on work or resume
	paused    bool       // quiesce requested; workers park at the next boundary
	done      bool

	// steal staggers full steal sweeps across drained workers.
	//detlint:atomic
	steal atomic.Int64
	wg    sync.WaitGroup
}

// newOpenSched spawns the persistent pool. The completion buffers come
// from the scratch so a warm steady state publishes without allocating.
func newOpenSched(a *openArena, workers, batch int, sc *OpenScratch) *openSched {
	s := &openSched{a: a, sc: sc, batch: batch, workers: workers}
	s.work = sync.NewCond(&s.mu)
	s.comp = sync.NewCond(&s.mu)
	s.quiet = sync.NewCond(&s.mu)
	s.resume = sync.NewCond(&s.mu)
	s.completed = sc.completed[:0]
	s.spare = sc.spare[:0]
	s.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer s.wg.Done()
			s.runOpen(w)
		}(w)
	}
	return s
}

// start wakes the pool after the frontier published a ready slot. One
// injection is one slot, so one parked worker is woken (shutdown uses
// the broadcast); the lock and signal amortize over a whole stream's
// execution.
func (s *openSched) start(slot int32) {
	s.mu.Lock()
	s.gen++
	s.work.Signal()
	s.mu.Unlock()
}

// drain hands published completions to the frontier (blocking until at
// least one arrives when block is set) and finishes them outside the
// lock. The two buffers swap roles so the steady state never allocates.
func (s *openSched) drain(f *openFrontier, block bool) {
	s.mu.Lock()
	if block {
		for len(s.completed) == 0 {
			s.comp.Wait()
		}
	}
	buf := s.completed
	s.completed = s.spare[:0]
	s.mu.Unlock()
	for _, slot := range buf {
		f.finish(slot)
	}
	s.spare = buf[:0]
}

// shutdown releases the pool. The frontier calls it once every
// departure has been retired, so no slot can still be ready or claimed.
func (s *openSched) shutdown() {
	s.mu.Lock()
	s.done = true
	s.work.Broadcast()
	s.resume.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
	// Hand the grown buffers back so the next run's steady state starts
	// warm.
	s.sc.completed, s.sc.spare = s.completed[:0], s.spare[:0]
}

// quiesce pauses the pool at a cycle-batch boundary: workers finish the
// batch they hold, publish its status, and park; quiesce returns once
// every worker is parked. From then until release, no slot is claimed
// and no slab is being written, so the frontier can read (or grow) every
// arena structure without a race — the checkpoint and population-growth
// hook. The frontier must still drain published completions itself; a
// worker may have completed a stream right before parking.
func (s *openSched) quiesce() {
	s.mu.Lock()
	s.paused = true
	s.work.Broadcast() // idle workers must migrate to the pause lobby
	for s.parked < s.workers {
		s.quiet.Wait()
	}
	s.mu.Unlock()
}

// release ends a quiesce and lets the pool run again.
func (s *openSched) release() {
	s.mu.Lock()
	s.paused = false
	s.resume.Broadcast()
	s.mu.Unlock()
}

// runOpen is one persistent worker: claim → advance a batch → publish
// or release, parking on the bind generation when nothing is claimable.
// Sampling the generation before the scan closes the classic missed-
// wakeup race — any injection after the sample bumps it, so the park
// loop falls through immediately. A pause request is honoured at the
// top of every iteration — between batches, never inside one — so a
// quiesced arena only ever exposes slot states at batch boundaries.
func (s *openSched) runOpen(w int) {
	for {
		s.mu.Lock()
		for s.paused && !s.done {
			s.parked++
			if s.parked == s.workers {
				s.quiet.Signal()
			}
			s.resume.Wait()
			s.parked--
		}
		gen, done := s.gen, s.done
		s.mu.Unlock()
		if done {
			return
		}
		slot, ok := s.claim(w)
		if !ok {
			s.mu.Lock()
			for !s.done && s.gen == gen && !s.paused {
				s.parked++
				if s.parked == s.workers {
					s.quiet.Signal()
				}
				s.work.Wait()
				s.parked--
			}
			done = s.done
			s.mu.Unlock()
			if done {
				return
			}
			continue
		}
		tbl, idx := s.a.slotTbl[slot], s.a.slotIdx[slot]
		if advance(&tbl.streams[idx], s.batch) {
			s.a.status[slot].Store(slotDone)
			s.mu.Lock()
			s.completed = append(s.completed, slot)
			s.comp.Signal()
			s.mu.Unlock()
		} else {
			s.a.status[slot].Store(slotReady)
		}
	}
}

// claim finds a ready slot: the worker's own stripe first, then a full
// steal sweep staggered by the shared counter. The load-before-CAS
// keeps idle passes read-only on every status cache line.
//
//detlint:hotpath
func (s *openSched) claim(w int) (int32, bool) {
	n := int(s.a.allocated.Load())
	for i := w; i < n; i += s.workers {
		if s.a.status[i].Load() == slotReady && s.a.status[i].CompareAndSwap(slotReady, slotClaimed) {
			return int32(i), true
		}
	}
	if n == 0 {
		return 0, false
	}
	start := int(s.steal.Add(1)-1) % n
	for j := 0; j < n; j++ {
		i := start + j
		if i >= n {
			i -= n
		}
		if s.a.status[i].Load() == slotReady && s.a.status[i].CompareAndSwap(slotReady, slotClaimed) {
			return int32(i), true
		}
	}
	return 0, false
}

// worker drains the shard [lo, hi) and then steals.
func (s *sched) worker(lo, hi int) {
	// Shard phase: sweep the owned shard in batch rounds. Streams are
	// claimed per batch, so a drained thief can pick up the remains of
	// a loaded shard between two of its owner's batches.
	for {
		live, progressed := false, false
		for k := lo; k < hi; k++ {
			switch s.status[k].Load() {
			case streamDone:
				continue
			case streamStolen: // a thief is on it; it will finish it
				live = true
				continue
			}
			if !s.status[k].CompareAndSwap(streamFree, streamClaimed) {
				live = true
				continue
			}
			progressed = true
			if advance(&s.tbl.streams[s.slots[k]], s.batch) {
				s.status[k].Store(streamDone)
			} else {
				live = true
				s.status[k].Store(streamFree)
			}
		}
		if !live {
			break // shard drained
		}
		if !progressed {
			break // everything left is in thieves' hands; go steal elsewhere
		}
	}

	// Steal phase: the only place the shared counter is touched — it
	// staggers where each drained worker starts scanning. Each pass
	// claims every free stream it finds and runs it to completion. A
	// stream in the transient claimed state may yet be released by its
	// owner, so passes repeat while any is seen; once everything left
	// is stolen or done, nothing can become claimable again and the
	// worker exits rather than spinning until the last thief finishes.
	n := len(s.slots)
	for {
		stole, transient := false, false
		start := int(s.steal.Add(1)-1) % n
		for j := 0; j < n; j++ {
			k := start + j
			if k >= n {
				k -= n
			}
			switch s.status[k].Load() {
			case streamDone, streamStolen:
				continue
			case streamClaimed:
				transient = true
				continue
			}
			if !s.status[k].CompareAndSwap(streamFree, streamStolen) {
				transient = true // raced with its owner or another thief
				continue
			}
			stole = true
			for !advance(&s.tbl.streams[s.slots[k]], s.batch) {
			}
			s.status[k].Store(streamDone)
		}
		if !stole {
			if !transient {
				return // all remaining streams are in terminal hands
			}
			// An owner holds a batch claim; be polite until it releases.
			runtime.Gosched()
		}
	}
}
