package fleet

import (
	"testing"

	"repro/internal/core"
)

// TestDepHeapZeroAllocsWarm is the dynamic cross-check behind the
// //detlint:hotpath annotations on depPush/depPop: once the backing
// array is warm, a push/pop cycle must not touch the heap.
func TestDepHeapZeroAllocsWarm(t *testing.T) {
	h := make([]depEvent, 0, 64)

	// Sanity outside the measured region: the heap drains in (t, k)
	// order.
	for i := 0; i < 32; i++ {
		depPush(&h, depEvent{t: core.Time(97 - 3*i), k: int32(i)})
	}
	prev := depPop(&h)
	for len(h) > 0 {
		e := depPop(&h)
		if e.t < prev.t || (e.t == prev.t && e.k < prev.k) {
			t.Fatalf("dep heap out of order: %v after %v", e, prev)
		}
		prev = e
	}

	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 32; i++ {
			depPush(&h, depEvent{t: core.Time(97 - 3*i), k: int32(i)})
		}
		for len(h) > 0 {
			depPop(&h)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm depPush/depPop cycle allocates %.1f times per run; want 0", allocs)
	}
}
