package fleet

import (
	"cmp"
	"math"
	"slices"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/multitask"
	"repro/internal/obs"
	"repro/internal/sim"
)

// This file is the wave-free open engine: a deterministic virtual-time
// frontier that admits arrivals continuously while persistent workers
// drain the slot arena, with no global barrier anywhere.
//
// The engine rests on one load-bearing fact: a stream's trace — its
// service time Trace.Final included — is a pure function of its Runner.
// Arrival and admission instants never enter sim.Stream.Step, so
// execution does not have to be sequenced with admission at all; the
// frontier only needs each admitted stream's Final before it can retire
// the stream's departure. The serial spec (OpenRunSerial) obtains the
// Final by running every admission wave to completion — a full barrier
// per event. The frontier instead tracks, for every in-flight stream, a
// provable lower bound on its departure:
//
//	bound(k) = admitted(k) + (Cycles−1)·period        (streaming mode)
//
// which holds because a non-work-conserving stream idles each cycle to
// its arrival base, so its clock ends at or beyond the last cycle's
// base. (Work-conserving streams get the trivial bound 0 and degrade to
// lock-step.) The frontier processes the next event — the earlier of
// the next arrival and the earliest known departure — as long as every
// unresolved bound lies strictly beyond it; only when a bound fails to
// clear the event does it block for a completion. Admission decisions
// are therefore computed from exactly the information the serial loop
// had, in exactly the same order, while execution proceeds concurrently
// in the background — byte-identical traces, lifecycles and admission
// decisions at any (workers, batch), property-tested against the spec.

// OpenScratch amortizes the continuous open engine's working memory
// across runs: the slot arena's chunk tables, the frontier's heaps and
// queues, and the per-stream result slabs are all retained and reused,
// so a steady-state run with a warm scratch performs zero heap
// allocations end to end (proved by TestOpenSteadyStateAllocationFree).
//
// A scratch may be used by one run at a time, and the OpenResult of a
// run that used a scratch aliases it: the result is valid only until
// the scratch's next run. Callers that keep results across runs must
// either deep-copy them or forgo the scratch (a nil OpenConfig.Scratch
// allocates a private one per run).
type OpenScratch struct {
	arena    openArena
	frontier openFrontier
	inline   inlineExec
	res      OpenResult

	lifecycles []metrics.Lifecycle
	streams    []StreamResult
	order      []int32
	util       []float64
	minFin     []core.Time
	final      []bool
	dep        []depEvent
	pend       []depEvent
	backlog    []int32
	rings      []completionRing
	over       []int32
	overBuf    []int32

	traces []sim.Trace
	stats  []sim.StatsSink
	hist   []int

	// liveStreams and liveArr are the incremental driver's (OpenLive)
	// population slabs: the batch entry points take the population from
	// the caller, the live form accretes it feed by feed and parks the
	// grown backing arrays here between runs.
	liveStreams []Stream
	liveArr     []core.Time
	// live is the scratch-resident OpenLive header NewOpenLive hands
	// back, so a warm incremental run (a cluster instance per routed
	// window, say) allocates nothing at all — not even the driver
	// struct. Like res, it is valid only until the scratch's next run.
	live OpenLive
}

// NewOpenScratch returns an empty scratch; it warms up over the first
// run and is reusable for any open configuration (slab shapes adapt).
func NewOpenScratch() *OpenScratch { return new(OpenScratch) }

// depEvent is a (instant, stream) entry of the frontier's two binary
// heaps: exact departures, and departure lower bounds of in-flight
// streams. Ordering is (t, k) — the same index tie-break as the serial
// spec's container/heap form, hand-rolled so pushes never box into an
// interface and the warm steady state stays allocation-free.
type depEvent struct {
	t core.Time
	k int32
}

//detlint:hotpath
func depPush(h *[]depEvent, e depEvent) {
	//detlint:allow hotpathalloc growth amortized by the scratch-owned backing array
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s[p].t < s[i].t || (s[p].t == s[i].t && s[p].k <= s[i].k) {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
}

//detlint:hotpath
func depPop(h *[]depEvent) depEvent {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && (s[l].t < s[m].t || (s[l].t == s[m].t && s[l].k < s[m].k)) {
			m = l
		}
		if r < n && (s[r].t < s[m].t || (s[r].t == s[m].t && s[r].k < s[m].k)) {
			m = r
		}
		if m == i {
			return top
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
}

// openExec is the execution side of the continuous engine: the frontier
// calls start when a valid stream's slot is ready to run and drain to
// collect completions (blocking only when an unresolved departure bound
// gates the next event). quiesce halts execution at a cycle-batch
// boundary (release resumes it) — the window in which a checkpoint can
// read, or population growth reallocate, the arena's shared structures.
// Two implementations: inlineExec (workers = 1, no goroutines, no
// locks; always quiescent between drains) and openSched (persistent
// injection-aware workers, sched.go).
type openExec interface {
	start(n int)
	drain(f *openFrontier, block bool)
	quiesce()
	release()
	shutdown()
}

// openFrontier is the deterministic virtual-time event loop of the
// continuous engine. Its decision sequence is a pure function of the
// arrival instants and the per-stream service times, so it is shared
// verbatim by the single-threaded and concurrent executors; only
// wall-clock time depends on who runs the streams.
type openFrontier struct {
	streams   []Stream
	sc        *OpenScratch
	stats     bool
	n         int
	maxLevels int
	adm       Admitter

	arr    []core.Time
	order  []int32
	util   []float64
	minFin []core.Time
	final  []bool // service time resolved (lazy deletion mark for pend)

	dep     []depEvent // exact departures, min-heap by (t, k)
	pend    []depEvent // departure lower bounds of in-flight streams
	backlog []int32    // FIFO ring
	blHead  int
	blLen   int

	inServe int
	cpuLoad float64
	lastT   core.Time
	lastDep core.Time
	ai      int   // arrival cursor into order
	events  int64 // processed event groups (checkpoint-boundary counter)
	look    int   // lookahead window: ready slots published per executor wake
	starts  int   // ready slots admitted since the last flushStarts

	arena *openArena
	res   *OpenResult
	exec  openExec

	// met and tr are the optional observability hooks (OpenConfig.Obs /
	// .Trace). Both are nil-tolerant: met gates each metric group behind
	// one branch, and obs instruments are individually nil-safe, so the
	// disabled path costs a single predictable-not-taken branch per
	// event group. Nothing below ever reads them back — observability on
	// ≡ off stays byte-identical by construction and is property-tested.
	met *obs.FleetMetrics
	tr  *obs.Trace
}

// openRunContinuous is the wave-free OpenRun/OpenRunStats engine.
func openRunContinuous(cfg OpenConfig, stats bool) (*OpenResult, error) {
	f, err := frontierForRun(&cfg, stats)
	if err != nil {
		return nil, err
	}
	defer f.exec.shutdown()
	f.run()
	return f.res, nil
}

// frontierForRun validates the configuration, lays out the frontier and
// attaches the executor the scheduler shape selects — the shared setup
// of the plain and checkpointed run drivers.
func frontierForRun(cfg *OpenConfig, stats bool) (*openFrontier, error) {
	if err := validateOpen(cfg, stats); err != nil {
		return nil, err
	}
	sc := cfg.Scratch
	if sc == nil {
		sc = new(OpenScratch)
	}
	f := newFrontier(cfg, sc, stats)
	batch := cfg.BatchCycles
	if batch <= 0 {
		batch = DefaultBatchCycles
	}
	if workers := sim.EffectiveWorkers(f.n, cfg.Workers); workers == 1 {
		sc.inline.batch = batch
		sc.inline.met = f.met
		f.exec = &sc.inline
	} else {
		f.exec = newOpenSched(f.arena, workers, batch, sc, f.met, f.tr)
	}
	return f, nil
}

// streamWeight computes one stream's admission weight and departure
// lower bound — shared by newFrontier's layout pass and the live
// driver's incremental feed so the two can never disagree.
//
// Streams that will fail at Bind weigh nothing (they depart the instant
// they are admitted) and carry no bound: their service time is exactly
// zero and known at admission. The condition is precisely Bind's
// failure condition — sim.Runner.Validate plus the retain-mode
// rejection of a caller-set sink. For bindable non-work-conserving
// streams, each cycle idles to its arrival base, so the final clock is
// at least the last cycle's base. A clamped product guards pathological
// Cycles × period overflow — the bound only ever errs conservative
// (0 = resolve before every later event).
func streamWeight(r *sim.Runner, stats bool) (util float64, minFin core.Time) {
	if r.Validate() != nil || (!stats && r.Sink != nil) {
		return 0, 0
	}
	if u := multitask.Utilization(r.Sys, r.Sys.QMin(), r.ResolvedPeriod()); !math.IsInf(u, 1) {
		util = u
	}
	if !r.WorkConserving {
		if mf := core.Time(r.Cycles-1) * r.ResolvedPeriod(); mf > 0 {
			minFin = mf
		}
	}
	return util, minFin
}

// validateOpen is the configuration gate shared by the continuous
// engine and the serial spec; messages are unchanged from the wave
// engine so callers' error handling carries over.
func validateOpen(cfg *OpenConfig, stats bool) error {
	n := len(cfg.Streams)
	if n == 0 {
		return errNoStreams
	}
	if len(cfg.Arrivals) != n {
		return arrivalCountError(n, len(cfg.Arrivals))
	}
	for k, t := range cfg.Arrivals {
		if t < 0 || t.IsInf() {
			return arrivalInstantError(k, t)
		}
	}
	if !stats && cfg.Export != nil {
		return errExportNeedsStats
	}
	return nil
}

// newFrontier lays out the run: per-stream admission weights and
// departure bounds, the (instant, index)-ordered arrival schedule, the
// result slabs and the slot arena — every slab drawn from the scratch,
// so a warm frontier allocates nothing.
func newFrontier(cfg *OpenConfig, sc *OpenScratch, stats bool) *openFrontier {
	n := len(cfg.Streams)
	f := &sc.frontier
	*f = openFrontier{streams: cfg.Streams, sc: sc, stats: stats, n: n, arr: cfg.Arrivals,
		met: cfg.Obs, tr: cfg.Trace}
	f.adm = cfg.Admit
	if f.adm == nil {
		f.adm = AdmitAll{}
	}
	f.look = cfg.Lookahead
	if f.look <= 0 {
		f.look = DefaultLookahead
	}

	if stats {
		for k := range cfg.Streams {
			if sys := cfg.Streams[k].Runner.Sys; sys != nil && sys.NumLevels() > f.maxLevels {
				f.maxLevels = sys.NumLevels()
			}
		}
	}
	sc.arena.reset(n, stats, cfg.Export, f.maxLevels)
	f.arena = &sc.arena

	sc.util = growSlice(sc.util, n)
	sc.minFin = growSlice(sc.minFin, n)
	sc.final = growSlice(sc.final, n)
	f.util, f.minFin, f.final = sc.util, sc.minFin, sc.final
	for k := range cfg.Streams {
		f.util[k], f.minFin[k] = streamWeight(&cfg.Streams[k].Runner, stats)
		f.final[k] = false
	}

	// The arrival schedule: one flat, (instant, index)-ordered slab
	// computed up front — every arrival process already materializes via
	// a single Times call, and the frontier consumes the slab without
	// ever calling back per event. Process outputs are non-decreasing,
	// so the identity fast path is the common case; an unsorted
	// hand-built slab goes through the same stable sort as the spec.
	sc.order = growSlice(sc.order, n)
	f.order = sc.order
	sorted := true
	for k := range f.order {
		f.order[k] = int32(k)
		if k > 0 && cfg.Arrivals[k] < cfg.Arrivals[k-1] {
			sorted = false
		}
	}
	if !sorted {
		slices.SortStableFunc(f.order, func(a, b int32) int {
			return cmp.Compare(cfg.Arrivals[a], cfg.Arrivals[b])
		})
	}

	sc.lifecycles = growSlice(sc.lifecycles, n)
	sc.streams = growSlice(sc.streams, n)
	sc.traces = growSlice(sc.traces, n)
	if stats {
		sc.stats = growSlice(sc.stats, n)
		sc.hist = growSlice(sc.hist, n*f.maxLevels)
	}
	sc.res = OpenResult{Streams: sc.streams}
	sc.res.Lifecycles = sc.lifecycles
	f.res = &sc.res
	for k := range cfg.Streams {
		sc.streams[k] = StreamResult{Name: cfg.Streams[k].Name}
		sc.lifecycles[k] = metrics.Lifecycle{Name: cfg.Streams[k].Name, Arrival: cfg.Arrivals[k]}
	}

	f.dep = sc.dep[:0]
	f.pend = sc.pend[:0]
	f.backlog = sc.backlog
	f.lastT = cfg.Arrivals[f.order[0]]
	f.res.FirstArrival = f.lastT
	return f
}

// run drives the event loop to completion and seals the result.
func (f *openFrontier) run() {
	for f.step(core.TimeInf) {
	}
	f.finishRun()
}

// step processes the next event group — all simultaneous departures, or
// all simultaneous arrivals, at one instant — provided it lies at or
// before the watermark, and reports whether it processed one. The
// ordering contract is the serial spec's, verbatim: at one instant,
// departures retire first (then the freed capacity is offered to the
// FIFO backlog), and only then are new arrivals decided; ties among
// simultaneous events break by stream index. The single addition over
// the spec's loop is the bound gate — an event is processed only when
// every in-flight stream's departure bound clears it strictly, so the
// decision state (in-service count, CPU load, backlog) is provably
// identical to the spec's at every decision.
//
// A finite watermark is the incremental form (OpenLive): only events at
// instants ≤ the watermark may be processed, because a later Feed could
// still deliver an arrival before anything beyond it. A step that
// returns false has nothing (left) to do at this watermark; with an
// infinite watermark that means the run has drained. Each processed
// group advances the events counter — the engine's checkpoint-boundary
// clock.
func (f *openFrontier) step(watermark core.Time) bool {
	for {
		f.exec.drain(f, false)
		tA, tD := core.TimeInf, core.TimeInf
		if f.ai < f.n {
			tA = f.arr[f.order[f.ai]]
		}
		if len(f.dep) > 0 {
			tD = f.dep[0].t
		}
		t := tA
		if tD < t {
			t = tD
		}
		if b, ok := f.pendMin(); ok && b <= t && b <= watermark {
			// An in-flight stream could depart at or before the next
			// known event (and within the watermark): its exact service
			// time gates the decision. Flush any batched publications
			// first — the completion the gate waits for may be a stream
			// the executor was never woken for — then block and
			// re-evaluate.
			f.flushStarts()
			if m := f.met; m != nil {
				m.BlockingDrains.Inc()
			}
			f.exec.drain(f, true)
			continue
		}
		if t > watermark || t >= core.TimeInf {
			// Nothing (left) to process at this watermark: every known
			// event and every in-flight departure bound lies beyond it —
			// or, at an infinite watermark, the run has drained. Hand any
			// batched publications to the executor before yielding
			// control: the caller may go idle (OpenLive between feeds)
			// and the workers must not sit parked over ready slots.
			f.flushStarts()
			return false
		}
		if tD <= tA {
			f.advanceTo(tD)
			for len(f.dep) > 0 && f.dep[0].t == tD {
				e := depPop(&f.dep)
				f.inServe--
				f.cpuLoad -= f.util[e.k]
				if m := f.met; m != nil {
					m.Departures.Inc()
				}
			}
			// Offer the freed capacity to the backlog in FIFO order; a
			// Shed verdict for the head is treated as Delay (shedding is
			// an arrival-time decision).
			for f.blLen > 0 {
				k := f.backlog[f.blHead]
				if f.adm.Decide(Load{T: tD, InService: f.inServe, Backlog: 0, CPULoad: f.cpuLoad}, f.util[k]) != Admit {
					break
				}
				f.blHead++
				if f.blHead == len(f.backlog) {
					f.blHead = 0
				}
				f.blLen--
				if m := f.met; m != nil {
					m.Backlog.Set(int64(f.blLen))
				}
				f.admit(k, tD)
			}
			f.events++
			if m := f.met; m != nil {
				m.Events.Inc()
			}
			return true
		}
		f.advanceTo(tA)
		for f.ai < f.n && f.arr[f.order[f.ai]] == tA {
			k := f.order[f.ai]
			f.ai++
			f.tr.Rec(obs.EvArrive, tA, k, obs.NoWorker, 0)
			v := f.adm.Decide(Load{T: tA, InService: f.inServe, Backlog: f.blLen, CPULoad: f.cpuLoad}, f.util[k])
			if m := f.met; m != nil {
				m.Arrivals.Inc()
			}
			switch v {
			case Admit:
				f.admit(k, tA)
			case Delay:
				f.blPush(k)
				f.res.Lifecycles[k].Queued = true
				if f.blLen > f.res.MaxBacklog {
					f.res.MaxBacklog = f.blLen
				}
				if m := f.met; m != nil {
					m.Delayed.Inc()
					m.Backlog.Set(int64(f.blLen))
					m.BacklogMax.SetMax(int64(f.blLen))
				}
				f.tr.Rec(obs.EvDelay, tA, k, obs.NoWorker, int64(f.blLen))
			default:
				f.res.Lifecycles[k].Shed = true
				if m := f.met; m != nil {
					m.Shed.Inc()
				}
				f.tr.Rec(obs.EvShed, tA, k, obs.NoWorker, 0)
			}
		}
		f.events++
		if m := f.met; m != nil {
			m.Events.Inc()
		}
		return true
	}
}

// finishRun seals a drained run: terminal backlog shedding, fate counts
// and the observation-window bounds.
func (f *openFrontier) finishRun() {
	// Streams still queued when the system drained can never be admitted
	// — no departure will ever free more capacity — so they are shed at
	// the end of the run, exactly as in the spec.
	for ; f.blLen > 0; f.blLen-- {
		k := f.backlog[f.blHead]
		f.res.Lifecycles[k].Shed = true
		if m := f.met; m != nil {
			m.Shed.Inc()
		}
		f.tr.Rec(obs.EvShed, f.lastT, k, obs.NoWorker, 0)
		f.blHead++
		if f.blHead == len(f.backlog) {
			f.blHead = 0
		}
	}
	if m := f.met; m != nil {
		m.Backlog.Set(0)
	}
	for _, lc := range f.res.Lifecycles {
		if lc.Shed {
			f.res.Shed++
		} else {
			f.res.Admitted++
		}
		if lc.Queued {
			f.res.Delayed++
		}
	}
	f.res.End = f.lastT
	f.res.Final = f.lastDep
	f.persistScratch()
}

// pending reports whether any admitted stream's departure is still
// unresolved (ignoring lazily-deleted bound entries).
func (f *openFrontier) pending() bool {
	_, ok := f.pendMin()
	return ok
}

// pendMin returns the smallest unresolved departure bound, discarding
// entries whose stream has since resolved (lazy deletion keeps the heap
// free of random-access removals).
func (f *openFrontier) pendMin() (core.Time, bool) {
	for len(f.pend) > 0 && f.final[f.pend[0].k] {
		depPop(&f.pend)
	}
	if len(f.pend) == 0 {
		return 0, false
	}
	return f.pend[0].t, true
}

// advanceTo integrates the backlog depth over simulated time up to the
// next event instant — the identical accumulation order as the spec, so
// the float integral matches bit for bit.
func (f *openFrontier) advanceTo(t core.Time) {
	if t > f.lastT {
		f.res.BacklogIntegral += float64(t-f.lastT) * float64(f.blLen)
		f.lastT = t
		if m := f.met; m != nil {
			m.BacklogIntegral.Set(f.res.BacklogIntegral)
		}
	}
}

// admit enters stream k into service at instant t: admission
// bookkeeping, slot binding, and either immediate harvest (bind-time
// failures have service time exactly zero) or hand-off to the executor
// with the stream's departure bound registered.
func (f *openFrontier) admit(k int32, t core.Time) {
	f.res.Lifecycles[k].Admitted = t
	f.inServe++
	f.cpuLoad += f.util[k]
	if m := f.met; m != nil {
		m.Admitted.Inc()
	}
	f.tr.Rec(obs.EvAdmit, t, k, obs.NoWorker, int64(f.inServe))
	slot := f.arena.bind(&f.streams[k], int(k))
	f.tr.Rec(obs.EvBind, t, k, obs.NoWorker, int64(slot))
	if f.arena.err(slot) != nil {
		// The stream occupies no simulated time: its departure is t
		// itself, known without execution.
		f.finish(slot)
		return
	}
	depPush(&f.pend, depEvent{t: t + f.minFin[k], k: k})
	// The store publishes the bound slot: any worker already awake can
	// claim it immediately (claim sweeps the arena, not a queue). The
	// executor wake is batched through the lookahead window — admission
	// decisions stay in exact serial event order, only the lock/signal
	// that wakes parked workers is amortized over up to look slots.
	f.arena.status[slot].v.Store(slotReady)
	f.starts++
	if f.starts >= f.look {
		f.flushStarts()
	}
}

// flushStarts hands the batched ready-slot publications to the
// executor. Called when the lookahead window fills, and at every point
// the frontier stops producing — before a blocking drain (the workers
// it waits on may be parked) and before step yields to its caller.
func (f *openFrontier) flushStarts() {
	if f.starts > 0 {
		if m := f.met; m != nil {
			m.FlushSize.Observe(int64(f.starts))
		}
		f.exec.start(f.starts)
		f.starts = 0
	}
}

// finish harvests a completed (or bind-failed) slot: the result is
// copied into the per-stream slabs, the exact departure enters the
// event heap, and the slot recycles. Called by the frontier only — in
// the concurrent engine the workers publish completions and the
// frontier finishes them inside drain, so all result slabs stay
// single-writer.
func (f *openFrontier) finish(slot int32) {
	a := f.arena
	k := a.slotStream[slot]
	sr := &f.res.Streams[k]
	var sinkOut *sim.StatsSink
	var histOut []int
	if f.stats {
		sinkOut = &f.sc.stats[k]
		base := int(k) * f.maxLevels
		histOut = f.sc.hist[base : base+f.maxLevels]
	}
	a.slotTbl[slot].HarvestSlot(int(a.slotIdx[slot]), sr, &f.sc.traces[k], sinkOut, histOut)
	a.release(slot)
	lc := &f.res.Lifecycles[k]
	d := lc.Admitted
	if sr.Err == nil {
		d += sr.Trace.Final
	} else {
		lc.Failed = true
	}
	lc.Departed = d
	if d > f.lastDep {
		f.lastDep = d
	}
	depPush(&f.dep, depEvent{t: d, k: k})
	f.final[k] = true
	f.tr.Rec(obs.EvComplete, d, k, obs.NoWorker, int64(slot))
}

// blPush appends to the FIFO backlog ring, growing it amortized.
func (f *openFrontier) blPush(k int32) {
	if f.blLen == len(f.backlog) {
		grown := make([]int32, 2*f.blLen+openChunkMin)
		for i := 0; i < f.blLen; i++ {
			grown[i] = f.backlog[(f.blHead+i)%len(f.backlog)]
		}
		f.backlog, f.blHead = grown, 0
		f.sc.backlog = grown
	}
	f.backlog[(f.blHead+f.blLen)%len(f.backlog)] = k
	f.blLen++
}

// persistScratch hands the run's grown heap slabs back to the scratch
// so their capacity carries into the next run.
func (f *openFrontier) persistScratch() {
	f.sc.dep = f.dep[:0]
	f.sc.pend = f.pend[:0]
}

// inlineExec is the workers = 1 executor: no goroutines, no locks, no
// status traffic beyond the arena's own words. Execution happens only
// inside blocking drains — the frontier runs every admission decision
// it can prove first, then sweeps the ready slots in batch rounds until
// a completion resolves the gate. This is also the engine's in-order
// reference shape: a run at workers = 1 exercises the same frontier as
// the concurrent pool with fully deterministic execution interleaving.
type inlineExec struct {
	batch int
	met   *obs.FleetMetrics
}

// start is a no-op: there is no pool to wake, and the frontier already
// marked the slots ready for the drain sweep.
func (e *inlineExec) start(n int) {}

func (e *inlineExec) drain(f *openFrontier, block bool) {
	if !block {
		return
	}
	a := f.arena
	for {
		finished, live := false, false
		n := int(a.allocated.Load())
		for slot := 0; slot < n; slot++ {
			if a.status[slot].v.Load() != slotReady {
				continue
			}
			live = true
			tbl, idx := a.slotTbl[slot], a.slotIdx[slot]
			if m := e.met; m != nil {
				m.Batches.Inc()
			}
			if advance(&tbl.streams[idx], e.batch) {
				f.finish(int32(slot))
				finished = true
			}
		}
		if finished {
			return
		}
		if !live {
			panic("fleet: open frontier blocked with no runnable stream")
		}
	}
}

// quiesce and release are no-ops: with no pool, execution only ever
// happens inside a blocking drain, so the arena is quiescent whenever
// the frontier is in control.
func (e *inlineExec) quiesce() {}
func (e *inlineExec) release() {}

func (e *inlineExec) shutdown() {}

// growSlice returns s resized to n, reusing its backing array when the
// capacity allows — the scratch slabs' growth rule.
func growSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}
