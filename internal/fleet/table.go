package fleet

import (
	"errors"
	"sync/atomic"

	"repro/internal/sim"
)

// StreamTable is the fleet's struct-of-arrays stream store: the mutable
// per-stream simulation state — clocks and cycle counters (sim.State),
// trace aggregates (sim.Trace), and in stats mode the StatsSink
// accumulators and their histograms — lives in contiguous slabs, one
// entry per stream, instead of N individually heap-allocated objects.
// A worker sweeping its shard in cycle batches therefore walks arrays
// in index order and stays in cache; the sim.Stream views in the table
// are exactly the serial runner's streams, pointed at the slabs, so the
// SoA layout changes memory behaviour, never results.
type StreamTable struct {
	names   []string
	runners []sim.Runner    // per-stream runner configs (copies; sinks rewritten)
	streams []sim.Stream    // views over the slabs below; invalid where errs[k] != nil
	states  []sim.State     // hot scalars: clock + cycle counter
	traces  []sim.Trace     // scalar aggregates (and records in retain mode)
	sinks   []sim.StatsSink // stats mode only; len 0 in retain mode
	hist    []int           // shared backing slab for the sink histograms
	errs    []error         // per-stream configuration errors

	// Open-table state (newOpenTable only; zero for closed tables). An
	// open table's slot count is decoupled from its stream population:
	// slots are bound at admission, drained by the scheduler, harvested
	// at departure and recycled for the next admission wave, so the
	// slab footprint is the peak concurrency, not the total number of
	// streams that ever pass through the system.
	stats     bool
	export    func(k int, name string) sim.Sink
	maxLevels int   // uniform per-slot histogram window width
	free      []int // recycled slot stack
	bound     int   // currently bound slots
}

// NewStreamTable validates and lays out the given streams. stats
// selects the zero-retention shape: every stream gets a StatsSink from
// the table's contiguous sink slab (replacing any caller-set sink) with
// its histogram window in one shared int slab. In retain mode streams
// keep full traces and a caller-set Runner.Sink is a per-stream error,
// exactly as fleet.Run has always enforced. export, when non-nil,
// supplies an extra per-stream sink that records are teed into (stats
// mode only).
//
// Configuration errors of individual streams are recorded per stream —
// one bad stream does not abort the fleet.
func NewStreamTable(streams []Stream, stats bool, export func(k int, name string) sim.Sink) (*StreamTable, error) {
	n := len(streams)
	if n == 0 {
		return nil, errors.New("fleet: no streams")
	}
	tbl := &StreamTable{
		names:   make([]string, n),
		runners: make([]sim.Runner, n),
		streams: make([]sim.Stream, n),
		states:  make([]sim.State, n),
		traces:  make([]sim.Trace, n),
		errs:    make([]error, n),
	}
	if stats {
		tbl.sinks = make([]sim.StatsSink, n)
		// One histogram slab, one full-capacity window per stream.
		offs := make([]int, n+1)
		for k, s := range streams {
			levels := 0
			if s.Runner.Sys != nil {
				levels = s.Runner.Sys.NumLevels()
			}
			offs[k+1] = offs[k] + levels
		}
		tbl.hist = make([]int, offs[n])
		for k := range streams {
			tbl.sinks[k].Init(tbl.hist[offs[k]:offs[k]:offs[k+1]])
		}
	}
	for k := range streams {
		s := &streams[k]
		tbl.names[k] = s.Name
		r := &tbl.runners[k]
		*r = s.Runner // copy: the table must not mutate the caller's config
		if stats {
			var sink sim.Sink = &tbl.sinks[k]
			if export != nil {
				if extra := export(k, s.Name); extra != nil {
					sink = sim.TeeSink{&tbl.sinks[k], extra}
				}
			}
			r.Sink = sink
		} else if r.Sink != nil {
			// Run's contract is retained traces; a caller-set sink would
			// leave Trace.Records empty and downstream aggregation would
			// silently read zeroes.
			tbl.errs[k] = errors.New("fleet: stream has a Runner.Sink; Run retains traces — use RunStats for sink-based runs")
			continue
		}
		tbl.errs[k] = r.InitStream(&tbl.streams[k], &tbl.states[k], &tbl.traces[k])
	}
	return tbl, nil
}

// newOpenTable lays out an empty slot table for an open-system run over
// the given stream population. No slabs are allocated up front: Ensure
// grows them to the peak admission-wave size, Bind and Harvest recycle
// slots as streams enter and leave service. stats and export have the
// same meaning as in NewStreamTable; the histogram slab gives every slot
// a uniform window wide enough for any stream in the population.
func newOpenTable(streams []Stream, stats bool, export func(k int, name string) sim.Sink) *StreamTable {
	tbl := &StreamTable{stats: stats, export: export}
	if stats {
		for k := range streams {
			if sys := streams[k].Runner.Sys; sys != nil && sys.NumLevels() > tbl.maxLevels {
				tbl.maxLevels = sys.NumLevels()
			}
		}
	}
	return tbl
}

// Ensure grows the table to at least c slots. Growth reallocates the
// slabs, which would invalidate the stream views of bound slots — the
// open loop only grows between admission waves, when every slot has
// been harvested, and Ensure enforces that invariant.
func (tbl *StreamTable) Ensure(c int) {
	if c <= len(tbl.streams) {
		return
	}
	if tbl.bound != 0 {
		panic("fleet: growing an open table with bound slots")
	}
	tbl.names = make([]string, c)
	tbl.runners = make([]sim.Runner, c)
	tbl.streams = make([]sim.Stream, c)
	tbl.states = make([]sim.State, c)
	tbl.traces = make([]sim.Trace, c)
	tbl.errs = make([]error, c)
	if tbl.stats {
		tbl.sinks = make([]sim.StatsSink, c)
		tbl.hist = make([]int, c*tbl.maxLevels)
	}
	tbl.free = tbl.free[:0]
	for slot := c - 1; slot >= 0; slot-- {
		tbl.free = append(tbl.free, slot)
	}
}

// Bind claims a free slot for the stream (Ensure must have provided
// capacity) and initialises its views over the slabs, exactly as
// NewStreamTable does for a closed fleet: in stats mode the slot's
// StatsSink gets its histogram window of the shared slab (plus any
// export tee, keyed by the stream's index k in the open population); in
// retain mode a caller-set sink is a per-slot error. Configuration
// errors are recorded in the slot, not returned — the stream still
// occupies it until harvested, so one bad stream cannot derail the run.
func (tbl *StreamTable) Bind(s *Stream, k int) int {
	if len(tbl.free) == 0 {
		panic("fleet: Bind without a free slot; call Ensure first")
	}
	slot := tbl.free[len(tbl.free)-1]
	tbl.free = tbl.free[:len(tbl.free)-1]
	tbl.bound++
	tbl.BindSlot(slot, s, k)
	return slot
}

// BindSlot initialises the given slot for the stream without touching
// the table's own free-slot bookkeeping — the binding core shared by
// Bind and the continuous engine's openArena, which manages slot
// recycling across several chunk tables itself. The slot must not be
// bound or mid-execution. It never allocates on the stats path without
// an export sink, which is what keeps the continuous open engine's
// steady state allocation-free.
func (tbl *StreamTable) BindSlot(slot int, s *Stream, k int) {
	tbl.names[slot] = s.Name
	tbl.runners[slot] = s.Runner
	r := &tbl.runners[slot]
	if tbl.stats {
		base := slot * tbl.maxLevels
		tbl.sinks[slot].Init(tbl.hist[base : base : base+tbl.maxLevels])
		var sink sim.Sink = &tbl.sinks[slot]
		if tbl.export != nil {
			if extra := tbl.export(k, s.Name); extra != nil {
				sink = sim.TeeSink{&tbl.sinks[slot], extra}
			}
		}
		r.Sink = sink
	} else if r.Sink != nil {
		tbl.errs[slot] = errors.New("fleet: stream has a Runner.Sink; Run retains traces — use RunStats for sink-based runs")
		return
	}
	tbl.errs[slot] = r.InitStream(&tbl.streams[slot], &tbl.states[slot], &tbl.traces[slot])
}

// Harvest copies the slot's outcome out of the slabs (the same deep-copy
// discipline as Result) and recycles the slot for the next admission
// wave.
func (tbl *StreamTable) Harvest(slot int) StreamResult {
	sr := StreamResult{Name: tbl.names[slot], Err: tbl.errs[slot]}
	if tbl.sinks != nil {
		s := tbl.sinks[slot]
		s.QualityHist = append([]int(nil), s.QualityHist...)
		sr.Stats = &s
	}
	if sr.Err == nil {
		tr := tbl.traces[slot]
		sr.Trace = &tr
	}
	tbl.errs[slot] = nil
	tbl.free = append(tbl.free, slot)
	tbl.bound--
	return sr
}

// HarvestSlot is the allocation-free form of Harvest: the slot's outcome
// is copied into caller-owned result cells — trOut for the scalar trace,
// and in stats mode sinkOut plus a histogram window histOut of at least
// the table's level width — instead of freshly allocated ones. The copy
// discipline is identical to Harvest (the result aliases nothing in the
// slabs; a zero-length histogram copies to nil exactly as Harvest's
// append does), so results of the two forms are deep-equal. Free-slot
// bookkeeping is the caller's: the continuous engine's openArena
// recycles slots across chunk tables itself.
func (tbl *StreamTable) HarvestSlot(slot int, sr *StreamResult, trOut *sim.Trace, sinkOut *sim.StatsSink, histOut []int) {
	sr.Name = tbl.names[slot]
	sr.Err = tbl.errs[slot]
	if tbl.sinks != nil {
		*sinkOut = tbl.sinks[slot]
		if h := sinkOut.QualityHist; len(h) == 0 {
			sinkOut.QualityHist = nil
		} else {
			w := histOut[:len(h)]
			copy(w, h)
			sinkOut.QualityHist = w
		}
		sr.Stats = sinkOut
	}
	if sr.Err == nil {
		*trOut = tbl.traces[slot]
		sr.Trace = trOut
	}
	tbl.errs[slot] = nil
}

// Per-slot scheduler states of the continuous open engine (openArena
// slots; distinct from the closed scheduler's per-stream states, whose
// lifecycle has no empty/harvest phases). The frontier moves a slot
// empty → ready at Bind and done → empty at harvest; workers move it
// ready → claimed → ready once per batch and store done when the
// stream completes. Every transition goes through the slot's atomic
// status word, so slab publication between the frontier and the workers
// is always a synchronised hand-off.
const (
	slotEmpty int32 = iota
	slotReady
	slotClaimed
	slotDone
)

// cacheLine is the padding unit for the engine's worker-shared hot
// words. 64 bytes covers every amd64/arm64 part the engine targets;
// on parts with 128-byte prefetch pairs the residual sharing is
// between neighbours only, not the whole stripe.
const cacheLine = 64

// slotWord is one slot's scheduler status on its own cache line. The
// status array is scanned stripe-wise — worker w claims slots ≡ w mod
// workers — so with packed words sixteen workers' CAS traffic would
// land on each 64-byte line and every claim would ping-pong the line
// across cores. One word per line trades 60 bytes of padding per slot
// (slot count is peak concurrency, not population) for contention-free
// stripe sweeps.
type slotWord struct {
	// v is the slot's lifecycle word, shared between the frontier and
	// the workers.
	//detlint:atomic
	v atomic.Int32
	_ [cacheLine - 4]byte
}

// openArena is the continuous open engine's slot store: a set of
// fixed-size StreamTable chunks plus flat slot-indirection arrays. The
// closed-table growth rule (Ensure only with every slot free) cannot
// hold in a wave-free engine — streams are always mid-flight — so the
// arena never reallocates a slab: growth appends a fresh chunk, and the
// views of bound slots stay valid with no quiesce barrier. The heavy
// per-slot slabs (runners, states, traces, sinks, histograms) therefore
// still track peak concurrency, not the population; only the flat
// indirection arrays (a pointer and a few words per slot) are
// pre-sized to the population bound so workers can scan them without
// ever racing a reallocation.
//
// Ownership: chunks, free and the slot arrays beyond the published
// allocated count are the frontier's alone. Workers read slotTbl /
// slotIdx / slotStream only for slots below allocated (published with
// an atomic add) whose status they hold claimed, so every slab access
// is ordered by the status word or the allocated counter.
type openArena struct {
	stats     bool
	export    func(k int, name string) sim.Sink
	maxLevels int

	chunks     []*StreamTable
	slotTbl    []*StreamTable // slot → chunk table
	slotIdx    []int32        // slot → index within its chunk
	slotStream []int32        // slot → bound stream index (frontier writes before the ready store)
	// status holds one cache-line-padded lifecycle word per slot
	// (slotWord); the atomic discipline binds to slotWord.v.
	status []slotWord
	// allocated is the published slot count; workers scan [0, allocated).
	//detlint:atomic
	allocated atomic.Int32
	free      []int32 // recycled-slot stack (frontier only)
}

// openChunkMin is the first chunk's slot count; later chunks double the
// arena, so reaching a peak concurrency of C costs O(log C) chunk
// allocations over the whole run (and zero once a scratch is warm).
const openChunkMin = 8

// reset prepares the arena for a run over a population of n streams.
// Chunks from an earlier run with the same slab shape (stats mode and
// histogram width) are kept and their slots recycled; a shape change
// drops them. The export hook carries no slab state but is read by
// BindSlot from each chunk, so retained chunks must have it replaced
// too — a stale closure would tee records into the previous run's
// sinks.
func (a *openArena) reset(n int, stats bool, export func(int, string) sim.Sink, maxLevels int) {
	if stats != a.stats || maxLevels != a.maxLevels {
		a.chunks = nil
	}
	a.stats, a.export, a.maxLevels = stats, export, maxLevels
	for _, c := range a.chunks {
		c.export = export
	}
	total := 0
	for _, c := range a.chunks {
		total += c.Len()
	}
	want := n
	if total > want {
		want = total
	}
	if cap(a.slotTbl) < want {
		a.slotTbl = make([]*StreamTable, want)
		a.slotIdx = make([]int32, want)
		a.slotStream = make([]int32, want)
		a.status = make([]slotWord, want)
		a.free = make([]int32, 0, want)
	} else {
		a.slotTbl = a.slotTbl[:want]
		a.slotIdx = a.slotIdx[:want]
		a.slotStream = a.slotStream[:want]
		a.status = a.status[:want]
	}
	a.free = a.free[:0]
	slot := 0
	for _, c := range a.chunks {
		for i := 0; i < c.Len(); i++ {
			a.register(slot, c, i)
			slot++
		}
	}
	a.allocated.Store(int32(slot))
}

// ensurePopulation grows the flat indirection arrays to hold at least n
// slots, doubling to amortize. Workers scan these arrays (and the
// status words) up to the published allocated count, so reallocation is
// legal only while the executor is quiescent — the live driver calls
// this under quiesce when its fed population outgrows the arrays. The
// atomic status words are migrated value by value (an atomic.Int32 must
// never be copied as a struct); slots below allocated keep their
// published state, and the free stack needs no migration because only
// the frontier touches it.
func (a *openArena) ensurePopulation(n int) {
	if n <= len(a.slotTbl) {
		return
	}
	c := 2 * len(a.slotTbl)
	if c < n {
		c = n
	}
	if c < openChunkMin {
		c = openChunkMin
	}
	slotTbl := make([]*StreamTable, c)
	slotIdx := make([]int32, c)
	slotStream := make([]int32, c)
	status := make([]slotWord, c)
	copy(slotTbl, a.slotTbl)
	copy(slotIdx, a.slotIdx)
	copy(slotStream, a.slotStream)
	for i := range a.status {
		status[i].v.Store(a.status[i].v.Load())
	}
	a.slotTbl, a.slotIdx, a.slotStream, a.status = slotTbl, slotIdx, slotStream, status
}

// register wires one chunk slot into the flat arrays and the free stack.
// Slots above the published allocated count are invisible to workers
// until the counter advances.
func (a *openArena) register(slot int, c *StreamTable, i int) {
	a.slotTbl[slot] = c
	a.slotIdx[slot] = int32(i)
	a.slotStream[slot] = -1
	a.status[slot].v.Store(slotEmpty)
	a.free = append(a.free, int32(slot))
}

// grow appends a doubling chunk and publishes its slots. Called by the
// frontier only when the free stack is empty; the population bound
// guarantees the indirection arrays have room (at most one slot per
// stream is ever bound).
func (a *openArena) grow() {
	total := int(a.allocated.Load())
	size := total
	if size < openChunkMin {
		size = openChunkMin
	}
	if rem := len(a.slotTbl) - total; size > rem {
		size = rem
	}
	if size <= 0 {
		panic("fleet: open arena over population capacity")
	}
	c := &StreamTable{stats: a.stats, export: a.export, maxLevels: a.maxLevels}
	c.Ensure(size)
	c.free = nil // the arena recycles slots itself
	a.chunks = append(a.chunks, c)
	for i := 0; i < size; i++ {
		a.register(total+i, c, i)
	}
	a.allocated.Add(int32(size))
}

// bind claims a slot (growing if none is free), binds the stream into
// it and returns the slot id with its status still empty — the caller
// publishes it ready once the admission bookkeeping is done, or
// harvests it immediately for bind-time failures.
func (a *openArena) bind(s *Stream, k int) int32 {
	if len(a.free) == 0 {
		a.grow()
	}
	slot := a.free[len(a.free)-1]
	a.free = a.free[:len(a.free)-1]
	a.slotStream[slot] = int32(k)
	a.slotTbl[slot].BindSlot(int(a.slotIdx[slot]), s, k)
	return slot
}

// release recycles a harvested slot.
func (a *openArena) release(slot int32) {
	a.status[slot].v.Store(slotEmpty)
	a.slotStream[slot] = -1
	a.free = append(a.free, slot)
}

// err reports the slot's bind-time configuration error, if any.
func (a *openArena) err(slot int32) error {
	return a.slotTbl[slot].errs[a.slotIdx[slot]]
}

// Len returns the stream count.
func (tbl *StreamTable) Len() int { return len(tbl.streams) }

// Stream returns the k-th stream view, or nil when the stream's
// configuration was rejected.
func (tbl *StreamTable) Stream(k int) *sim.Stream {
	if tbl.errs[k] != nil {
		return nil
	}
	return &tbl.streams[k]
}

// Result assembles the per-stream outcomes in input order. Traces and
// stats are copied out of the table's slabs (record slices and
// histograms carry over; histograms are re-backed per stream), so a
// caller keeping one stream's result does not pin every stream's state
// for its lifetime.
func (tbl *StreamTable) Result() *Result {
	res := &Result{Streams: make([]StreamResult, tbl.Len())}
	for k := range res.Streams {
		sr := StreamResult{Name: tbl.names[k], Err: tbl.errs[k]}
		if tbl.sinks != nil {
			s := tbl.sinks[k]
			s.QualityHist = append([]int(nil), s.QualityHist...)
			sr.Stats = &s
		}
		if sr.Err == nil {
			tr := tbl.traces[k]
			sr.Trace = &tr
		}
		res.Streams[k] = sr
	}
	return res
}
