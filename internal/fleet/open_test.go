package fleet

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/arrivals"
	"repro/internal/core"
	"repro/internal/multitask"
	"repro/internal/sim"
)

// TestOpenClosedEquivalence is the open system's anchor property: a
// fixed-period arrival process with every stream arriving at t = 0 under
// admit-all is exactly the closed fleet, so the open engine must
// reproduce the closed engine's traces byte for byte at any worker count
// and batch size.
func TestOpenClosedEquivalence(t *testing.T) {
	streams := mixedStreams(t, 9, 4, 17)
	closed, err := Run(Config{Streams: streams, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := closed.Err(); err != nil {
		t.Fatal(err)
	}
	times, err := arrivals.Fixed{}.Times(len(streams))
	if err != nil {
		t.Fatal(err)
	}
	for _, shape := range []struct{ workers, batch int }{{1, 0}, {2, 1}, {4, 32}, {8, 3}} {
		open, err := OpenRun(OpenConfig{
			Streams:     streams,
			Arrivals:    times,
			Workers:     shape.workers,
			BatchCycles: shape.batch,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := open.Err(); err != nil {
			t.Fatal(err)
		}
		if open.Admitted != len(streams) || open.Shed != 0 || open.Delayed != 0 {
			t.Fatalf("workers=%d batch=%d: admit-all at t=0 admitted %d, delayed %d, shed %d",
				shape.workers, shape.batch, open.Admitted, open.Delayed, open.Shed)
		}
		for k := range streams {
			ct, ot := closed.Streams[k].Trace, open.Streams[k].Trace
			if !reflect.DeepEqual(ct, ot) {
				t.Fatalf("workers=%d batch=%d: stream %d trace diverged from the closed fleet",
					shape.workers, shape.batch, k)
			}
			if !bytes.Equal(traceBytes(t, ct), traceBytes(t, ot)) {
				t.Fatalf("workers=%d batch=%d: stream %d trace bytes diverged", shape.workers, shape.batch, k)
			}
			lc := open.Lifecycles[k]
			if lc.Admitted != 0 || lc.Departed != ot.Final {
				t.Fatalf("stream %d lifecycle %+v does not match trace final %v", k, lc, ot.Final)
			}
		}
	}
}

// openProcesses is the arrival-model matrix the determinism property
// sweeps: one representative of every supported model.
func openProcesses(t *testing.T, n int) map[string][]core.Time {
	t.Helper()
	period := 20 * core.Millisecond
	procs := map[string]arrivals.Process{
		"fixed":   arrivals.Fixed{Start: core.Millisecond, Period: period / 2},
		"poisson": arrivals.Poisson{MeanGap: period, Seed: 11},
		"bursty":  arrivals.Bursty{GapOn: period / 4, MeanOn: period, MeanOff: 3 * period, Seed: 12},
	}
	out := map[string][]core.Time{}
	for name, p := range procs {
		times, err := p.Times(n)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = times
	}
	// Trace replay: feed the poisson instants back through a Trace.
	tr, err := arrivals.NewTrace(out["poisson"])
	if err != nil {
		t.Fatal(err)
	}
	replay, err := tr.Times(n)
	if err != nil {
		t.Fatal(err)
	}
	out["trace"] = replay
	return out
}

// TestOpenDeterminismAcrossWorkersAndBatches is the acceptance property:
// for every arrival model and every admission policy, a fixed seed
// produces identical traces, lifecycles and admission decisions at any
// (workers, BatchCycles). The reference is the serial wave spec
// (OpenRunStatsSerial); the shapes cover both the inline workers = 1
// engine and the concurrent injection pool.
func TestOpenDeterminismAcrossWorkersAndBatches(t *testing.T) {
	const n = 10
	streams := mixedStreams(t, n, 3, 5)
	u := multitask.Utilization(streams[0].Runner.Sys, streams[0].Runner.Sys.QMin(), streams[0].Runner.Period)
	admitters := []Admitter{
		AdmitAll{},
		CapK{K: 2, Queue: -1},
		CapK{K: 2, Queue: 1},
		Budget{CPU: 2.5 * u, Queue: -1},
		Budget{CPU: 2.5 * u, Queue: 2},
	}
	for model, times := range openProcesses(t, n) {
		for _, adm := range admitters {
			ref, err := OpenRunStatsSerial(OpenConfig{Streams: streams, Arrivals: times, Admit: adm, Workers: 1})
			if err != nil {
				t.Fatalf("%s/%s: %v", model, adm.Name(), err)
			}
			if err := ref.Err(); err != nil {
				t.Fatalf("%s/%s: %v", model, adm.Name(), err)
			}
			for _, shape := range []struct{ workers, batch int }{{1, 0}, {2, 1}, {4, 32}, {8, 5}} {
				got, err := OpenRunStats(OpenConfig{
					Streams:     streams,
					Arrivals:    times,
					Admit:       adm,
					Workers:     shape.workers,
					BatchCycles: shape.batch,
				})
				if err != nil {
					t.Fatalf("%s/%s: %v", model, adm.Name(), err)
				}
				if !reflect.DeepEqual(ref.OpenObservations, got.OpenObservations) {
					t.Fatalf("%s/%s workers=%d batch=%d: lifecycles or backlog diverged",
						model, adm.Name(), shape.workers, shape.batch)
				}
				if ref.Admitted != got.Admitted || ref.Delayed != got.Delayed || ref.Shed != got.Shed {
					t.Fatalf("%s/%s workers=%d batch=%d: admission counts diverged",
						model, adm.Name(), shape.workers, shape.batch)
				}
				if !reflect.DeepEqual(ref.Streams, got.Streams) {
					t.Fatalf("%s/%s workers=%d batch=%d: stream results diverged",
						model, adm.Name(), shape.workers, shape.batch)
				}
			}
		}
	}
}

// TestOpenCapKSequencing pins the queueing semantics of cap-K admission
// on a hand-checkable case: three identical streams arriving together
// under cap-1 run strictly one after another, each admitted the instant
// its predecessor departs.
func TestOpenCapKSequencing(t *testing.T) {
	streams := mixedStreams(t, 3, 2, 9)
	times := []core.Time{0, 0, 0}
	res, err := OpenRunStats(OpenConfig{Streams: streams, Arrivals: times, Admit: CapK{K: 1, Queue: -1}, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if res.Admitted != 3 || res.Shed != 0 || res.Delayed != 2 {
		t.Fatalf("cap-1: admitted %d delayed %d shed %d", res.Admitted, res.Delayed, res.Shed)
	}
	if res.MaxBacklog != 2 {
		t.Fatalf("cap-1 with 3 simultaneous arrivals: max backlog %d, want 2", res.MaxBacklog)
	}
	for k := 0; k < 3; k++ {
		lc := res.Lifecycles[k]
		want := lc.Admitted + res.Streams[k].Trace.Final
		if lc.Departed != want {
			t.Fatalf("stream %d departed %v, want admitted %v + service %v", k, lc.Departed, lc.Admitted, res.Streams[k].Trace.Final)
		}
		if k > 0 && lc.Admitted != res.Lifecycles[k-1].Departed {
			t.Fatalf("stream %d admitted at %v, want predecessor departure %v", k, lc.Admitted, res.Lifecycles[k-1].Departed)
		}
		if (k > 0) != lc.Queued {
			t.Fatalf("stream %d queued flag %v", k, lc.Queued)
		}
	}
	if res.BacklogIntegral <= 0 {
		t.Fatal("cap-1 run with waiting streams has zero backlog integral")
	}
}

// TestOpenShedding covers the loss-system shapes: a zero-length queue
// sheds on arrival, a bounded queue sheds the overflow only.
func TestOpenShedding(t *testing.T) {
	streams := mixedStreams(t, 3, 2, 21)
	times := []core.Time{0, 0, 0}

	res, err := OpenRunStats(OpenConfig{Streams: streams, Arrivals: times, Admit: CapK{K: 1, Queue: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Admitted != 1 || res.Shed != 2 || res.Delayed != 0 {
		t.Fatalf("cap-1/queue-0: admitted %d delayed %d shed %d", res.Admitted, res.Delayed, res.Shed)
	}
	for k := 1; k < 3; k++ {
		if !res.Lifecycles[k].Shed {
			t.Fatalf("stream %d not shed", k)
		}
		if res.Streams[k].Trace != nil || res.Streams[k].Stats != nil {
			t.Fatalf("shed stream %d carries a trace or stats", k)
		}
	}
	if fr := res.FleetResult(); len(fr.Streams) != 1 {
		t.Fatalf("FleetResult has %d streams, want the 1 executed", len(fr.Streams))
	}

	res, err = OpenRunStats(OpenConfig{Streams: streams, Arrivals: times, Admit: CapK{K: 1, Queue: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Admitted != 2 || res.Shed != 1 || res.Delayed != 1 {
		t.Fatalf("cap-1/queue-1: admitted %d delayed %d shed %d", res.Admitted, res.Delayed, res.Shed)
	}
}

// TestOpenBudgetStarvation: a stream whose own demand exceeds the whole
// simulated-CPU budget can never be admitted; the run must terminate and
// shed it (and everything queued behind it) when the system drains
// instead of spinning.
func TestOpenBudgetStarvation(t *testing.T) {
	streams := mixedStreams(t, 2, 2, 33)
	res, err := OpenRunStats(OpenConfig{
		Streams:  streams,
		Arrivals: []core.Time{0, core.Millisecond},
		Admit:    Budget{CPU: 1e-9, Queue: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Admitted != 0 || res.Shed != 2 {
		t.Fatalf("unfittable streams: admitted %d shed %d", res.Admitted, res.Shed)
	}
	for k, lc := range res.Lifecycles {
		if !lc.Shed || !lc.Queued {
			t.Fatalf("stream %d lifecycle %+v: want queued then shed at drain", k, lc)
		}
	}
}

// TestOpenBadStream: an invalid stream configuration is a per-stream
// error, not a run abort; the stream occupies no simulated time.
func TestOpenBadStream(t *testing.T) {
	streams := mixedStreams(t, 3, 2, 41)
	streams[1].Runner.Cycles = 0 // invalid
	res, err := OpenRunStats(OpenConfig{Streams: streams, Arrivals: []core.Time{0, 0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Streams[1].Err == nil {
		t.Fatal("invalid stream has no error")
	}
	if err := res.Err(); err == nil || !strings.Contains(err.Error(), streams[1].Name) {
		t.Fatalf("result error %v does not name the bad stream", err)
	}
	lc := res.Lifecycles[1]
	if lc.Departed != lc.Admitted {
		t.Fatalf("bad stream occupies simulated time: %+v", lc)
	}
	if !lc.Failed {
		t.Fatalf("bad stream not marked failed: %+v", lc)
	}
	if res.Lifecycles[0].Failed || res.Lifecycles[2].Failed {
		t.Fatal("healthy streams marked failed")
	}
	if res.Streams[0].Err != nil || res.Streams[2].Err != nil {
		t.Fatal("healthy streams infected by the bad one")
	}
}

// TestOpenBadStreamHoldsNoBudget: a stream that will fail at bind
// departs instantly, so it must not consume CPU budget that valid
// arrivals at the same instant are decided against.
func TestOpenBadStreamHoldsNoBudget(t *testing.T) {
	streams := mixedStreams(t, 2, 2, 51)
	streams[0].Runner.Cycles = 0 // fails InitStream; would nominally weigh like streams[1]
	r := &streams[1].Runner
	u := multitask.Utilization(r.Sys, r.Sys.QMin(), r.Period)
	res, err := OpenRunStats(OpenConfig{
		Streams:  streams,
		Arrivals: []core.Time{0, 0},
		Admit:    Budget{CPU: u, Queue: 0}, // room for exactly the valid stream
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lifecycles[1].Shed {
		t.Fatal("valid stream shed because a bind-failing stream held budget")
	}
	if res.Streams[1].Err != nil || res.Streams[1].Stats == nil {
		t.Fatal("valid stream did not run")
	}

	// Same invariant for the other bind-time failure: in retain mode a
	// caller-set Runner.Sink is rejected at Bind, so it must not hold
	// budget either.
	streams = mixedStreams(t, 2, 2, 51)
	streams[0].Runner.Sink = new(sim.TraceSink)
	res, err = OpenRun(OpenConfig{
		Streams:  streams,
		Arrivals: []core.Time{0, 0},
		Admit:    Budget{CPU: u, Queue: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lifecycles[1].Shed {
		t.Fatal("valid stream shed because a bind-failing (Runner.Sink) stream held budget")
	}
	if res.Streams[0].Err == nil || !res.Lifecycles[0].Failed {
		t.Fatalf("sink-bearing stream not rejected at bind: %+v", res.Lifecycles[0])
	}
	if res.Streams[1].Err != nil || res.Streams[1].Trace == nil {
		t.Fatal("valid stream did not run")
	}
}

// TestOpenConfigValidation: friendly errors for malformed configs.
func TestOpenConfigValidation(t *testing.T) {
	streams := mixedStreams(t, 2, 1, 3)
	cases := []OpenConfig{
		{},
		{Streams: streams, Arrivals: []core.Time{0}},
		{Streams: streams, Arrivals: []core.Time{0, -1}},
		{Streams: streams, Arrivals: []core.Time{0, core.TimeInf}},
	}
	for i, cfg := range cases {
		if _, err := OpenRunStats(cfg); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
	// Export is a streaming-path feature; the retained form rejects it
	// just as the closed Run does.
	if _, err := OpenRun(OpenConfig{
		Streams:  streams,
		Arrivals: []core.Time{0, 0},
		Export:   func(int, string) sim.Sink { return nil },
	}); err == nil {
		t.Fatal("OpenRun accepted an Export sink")
	}
}

// TestOpenRetainedMatchesStats: the retained and zero-retention open
// paths agree on every scalar and lifecycle.
func TestOpenRetainedMatchesStats(t *testing.T) {
	streams := mixedStreams(t, 6, 3, 13)
	times, err := arrivals.Poisson{MeanGap: 10 * core.Millisecond, Seed: 3}.Times(len(streams))
	if err != nil {
		t.Fatal(err)
	}
	adm := CapK{K: 2, Queue: -1}
	retained, err := OpenRun(OpenConfig{Streams: streams, Arrivals: times, Admit: adm, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := OpenRunStats(OpenConfig{Streams: streams, Arrivals: times, Admit: adm, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(retained.OpenObservations, stats.OpenObservations) {
		t.Fatal("retained and stats lifecycles diverged")
	}
	for k := range streams {
		rt, st := retained.Streams[k].Trace, stats.Streams[k].Trace
		if rt == nil || st == nil {
			t.Fatalf("stream %d missing trace", k)
		}
		rs := *rt
		rs.Records = nil
		if !reflect.DeepEqual(&rs, st) {
			t.Fatalf("stream %d scalar traces diverged", k)
		}
	}
}
