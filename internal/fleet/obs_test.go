package fleet

import (
	"reflect"
	"testing"

	"repro/internal/obs"
)

// obsBundle is one fully wired observability surface for a single run:
// a fresh registry, the fleet instrument bundle and a trace ring.
func obsBundle() (*obs.Registry, *obs.FleetMetrics, *obs.Trace) {
	reg := obs.NewRegistry("test")
	return reg, obs.NewFleetMetrics(reg), obs.NewTrace(1 << 12)
}

// TestOpenObsOnOffByteIdentical is the observability layer's load-bearing
// property: enabling metrics and tracing must not change a single byte of
// any result — lifecycles, traces, stats, admission verdicts — at any
// scheduler shape. The instrumented run is compared against the plain
// serial spec, which ignores Obs entirely, so any observable side effect
// of the hooks fails the comparison.
func TestOpenObsOnOffByteIdentical(t *testing.T) {
	const n = 30
	streams := skewedStreams(t, n, 37)
	shapes := []struct{ workers, batch, look int }{
		{1, 0, 0}, {2, 1, 1}, {4, 32, 4}, {8, 3, 64},
	}
	for model, times := range openProcesses(t, n) {
		ref, err := OpenRunStatsSerial(OpenConfig{
			Streams: streams, Arrivals: times, Admit: CapK{K: 3, Queue: -1}})
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		for _, shape := range shapes {
			_, met, tr := obsBundle()
			got, err := OpenRunStats(OpenConfig{
				Streams:     streams,
				Arrivals:    times,
				Admit:       CapK{K: 3, Queue: -1},
				Workers:     shape.workers,
				BatchCycles: shape.batch,
				Lookahead:   shape.look,
				Obs:         met,
				Trace:       tr,
			})
			if err != nil {
				t.Fatalf("%s: %v", model, err)
			}
			label := model + "/obs-on"
			compareOpen(t, label, ref, got)
			if tr.Seq() == 0 {
				t.Fatalf("%s: trace recorded no events", label)
			}
		}
	}
}

// serialOrderSnapshot collects the metric values the determinism
// contract pins: everything driven by the frontier's single-goroutine
// event loop must be identical at any (workers, batch, lookahead).
type serialOrderSnapshot struct {
	arrivals, admitted, delayed, shed, departures, events int64
	backlogMax                                            int64
	backlogIntegral                                       float64
}

func snapshotSerialOrder(m *obs.FleetMetrics) serialOrderSnapshot {
	return serialOrderSnapshot{
		arrivals:        m.Arrivals.Value(),
		admitted:        m.Admitted.Value(),
		delayed:         m.Delayed.Value(),
		shed:            m.Shed.Value(),
		departures:      m.Departures.Value(),
		events:          m.Events.Value(),
		backlogMax:      m.BacklogMax.Value(),
		backlogIntegral: m.BacklogIntegral.Value(),
	}
}

// TestOpenSerialOrderMetricsDeterministic: the serial-order metric
// subset is a pure function of (streams, arrivals, admitter) — every
// scheduler shape reports the same values, and they agree with the
// sealed result's own counts.
func TestOpenSerialOrderMetricsDeterministic(t *testing.T) {
	const n = 30
	streams := skewedStreams(t, n, 41)
	times := openProcesses(t, n)["bursty"]
	adm := CapK{K: 2, Queue: 2}
	shapes := []struct{ workers, batch, look int }{
		{1, 0, 0}, {2, 1, 1}, {4, 32, 4}, {8, 3, 64},
	}
	var want serialOrderSnapshot
	for i, shape := range shapes {
		_, met, _ := obsBundle()
		res, err := OpenRunStats(OpenConfig{
			Streams:     streams,
			Arrivals:    times,
			Admit:       adm,
			Workers:     shape.workers,
			BatchCycles: shape.batch,
			Lookahead:   shape.look,
			Obs:         met,
		})
		if err != nil {
			t.Fatal(err)
		}
		got := snapshotSerialOrder(met)
		if got.arrivals != int64(n) {
			t.Fatalf("shape %d: arrivals = %d, want %d", i, got.arrivals, n)
		}
		if got.admitted != int64(res.Admitted) || got.delayed != int64(res.Delayed) || got.shed != int64(res.Shed) {
			t.Fatalf("shape %d: metric verdicts %d/%d/%d disagree with result %d/%d/%d",
				i, got.admitted, got.delayed, got.shed, res.Admitted, res.Delayed, res.Shed)
		}
		if got.backlogMax != int64(res.MaxBacklog) || got.backlogIntegral != res.BacklogIntegral {
			t.Fatalf("shape %d: backlog metrics %d/%v disagree with result %d/%v",
				i, got.backlogMax, got.backlogIntegral, res.MaxBacklog, res.BacklogIntegral)
		}
		if i == 0 {
			want = got
		} else if got != want {
			t.Fatalf("shape %d: serial-order metrics diverged across shapes:\nwant %+v\ngot  %+v", i, want, got)
		}
	}
}

// TestClosedObsOnOffIdentical covers the closed fleet path: Config.Obs
// and Config.Trace must not change results, and the batch counter must
// account for at least one batch per stream.
func TestClosedObsOnOffIdentical(t *testing.T) {
	streams := mixedStreams(t, 12, 40, 43)
	ref, err := RunStats(Config{Streams: streams, Workers: 4, BatchCycles: 8})
	if err != nil {
		t.Fatal(err)
	}
	_, met, tr := obsBundle()
	got, err := RunStats(Config{Streams: streams, Workers: 4, BatchCycles: 8, Obs: met, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	for k := range ref.Streams {
		w, g := &ref.Streams[k], &got.Streams[k]
		if w.Name != g.Name || (w.Err == nil) != (g.Err == nil) || !reflect.DeepEqual(w.Trace, g.Trace) {
			t.Fatalf("stream %d diverged with obs enabled", k)
		}
	}
	if met.Batches.Value() < int64(len(streams)) {
		t.Fatalf("batches = %d, want at least one per stream (%d)", met.Batches.Value(), len(streams))
	}
}
