// Package fleet is the concurrent multi-stream engine: it runs N
// independent quality-managed streams — each with its own cycle clock,
// RNG seed and workload — on a shard-affine run-to-completion
// scheduler. Stream state lives in a struct-of-arrays StreamTable
// (contiguous slabs of clocks, cycle counters, trace aggregates and
// StatsSink accumulators); persistent workers own disjoint contiguous
// shards of it, advance each stream in configurable cycle batches, and
// only touch a shared atomic counter to steal leftover work once their
// shard drains — there is no channel round-trip per stream-step. The
// paper's Quality Manager was built for exactly this reuse:
// core.Manager decisions are deterministic functions of (state, time)
// over immutable pre-computed tables (memoized further by the regions
// DecisionPlan), so one compiled controller.Bundle can drive
// arbitrarily many concurrent streams without locks.
//
// The engine guarantees that scheduling changes wall-clock time, never
// results: every stream is executed through the same sim.Stream path as
// a serial sim.Runner, so a stream's trace is byte-identical to the
// serial run at the same seed regardless of worker count or batch size.
package fleet

import (
	"errors"
	"fmt"

	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Stream configures one independent quality-managed stream: a name
// plus the embedded serial runner configuration, so the fleet cannot
// drift from what a serial run honours. Runner.Mgr must be a
// per-stream instance unless it is stateless (the policy and table
// managers are; baseline feedback controllers are not).
type Stream struct {
	Name string
	sim.Runner
}

// Config is a fleet run: the streams plus the scheduler shape.
type Config struct {
	Streams []Stream
	// Workers bounds the persistent worker pool (≤ 0 selects
	// GOMAXPROCS). Each worker owns a contiguous shard of the stream
	// table and advances its streams in cycle batches; a worker whose
	// shard drains steals leftover streams from the others. Worker
	// count and stealing order change wall-clock time, never results.
	Workers int
	// BatchCycles is the number of cycles a worker advances one stream
	// before moving on to the next in its shard (≤ 0 selects
	// DefaultBatchCycles). Traces are independent of the batch size.
	BatchCycles int
	// Export, when non-nil, supplies an extra per-stream sink (e.g. a
	// CSVWriter's per-stream sinks) that RunStats tees each stream's
	// records into alongside its StatsSink; returning nil skips the
	// stream. Run rejects it: retained records and streamed export are
	// redundant — export the retained trace instead.
	Export func(k int, name string) sim.Sink
	// Obs, when non-nil, enables the scheduler's metric hooks (batches
	// advanced, steals). Results are byte-identical with it on or off.
	Obs *obs.FleetMetrics
	// Trace, when non-nil, records scheduler events (steals) into a
	// bounded ring.
	Trace *obs.Trace
}

// StreamResult pairs a stream with its trace (or per-stream error).
// Under Run the trace retains every record; under RunStats it carries
// only the O(1) scalar aggregates and Stats holds the streamed
// record-derived quantities.
type StreamResult struct {
	Name  string
	Trace *sim.Trace
	// Stats is the stream's zero-retention aggregate; non-nil only for
	// streams executed through RunStats.
	Stats *sim.StatsSink
	Err   error
}

// Result collects the per-stream outcomes of a fleet run, in input
// order.
type Result struct {
	Streams []StreamResult
}

// Traces returns the successful traces in stream order.
func (r *Result) Traces() []*sim.Trace {
	out := make([]*sim.Trace, 0, len(r.Streams))
	for _, s := range r.Streams {
		if s.Err == nil && s.Trace != nil {
			out = append(out, s.Trace)
		}
	}
	return out
}

// Err returns the first per-stream error, or nil if every stream ran.
func (r *Result) Err() error {
	for _, s := range r.Streams {
		if s.Err != nil {
			return fmt.Errorf("fleet: stream %q: %w", s.Name, s.Err)
		}
	}
	return nil
}

// TotalMisses sums deadline misses across all successful streams.
func (r *Result) TotalMisses() int {
	n := 0
	for _, tr := range r.Traces() {
		n += tr.Misses
	}
	return n
}

// Run executes every stream of the fleet on the shard-affine scheduler
// and returns the per-stream results in input order, with full traces
// retained. Configuration errors of individual streams are reported per
// stream, so one bad stream does not abort the fleet.
func Run(cfg Config) (*Result, error) {
	if cfg.Export != nil {
		return nil, errors.New("fleet: Export needs the streaming path; use RunStats")
	}
	return run(cfg, false)
}

// RunStats executes the fleet with one StatsSink per stream: no records
// are retained anywhere, so fleet memory is O(streams · |Q|) instead of
// O(streams × cycles × actions), and the steady-state hot path is
// allocation-free. Each StreamResult carries the scalar-only trace plus
// its Stats; metrics.AggregateStats turns them into the same
// FleetSummary a retained Run would yield (property-tested). Any sink
// the caller pre-set on a stream's Runner is replaced; Config.Export
// sinks are teed in.
func RunStats(cfg Config) (*Result, error) {
	return run(cfg, true)
}

// run lays the streams out in a struct-of-arrays StreamTable, drains it
// on the shard-affine run-to-completion scheduler, and collects the
// results.
func run(cfg Config, stats bool) (*Result, error) {
	tbl, err := NewStreamTable(cfg.Streams, stats, cfg.Export)
	if err != nil {
		return nil, err
	}
	slots := make([]int32, tbl.Len())
	for k := range slots {
		slots[k] = int32(k)
	}
	tbl.runSlots(slots, cfg.Workers, cfg.BatchCycles, cfg.Obs, cfg.Trace)
	return tbl.Result(), nil
}

// DeriveSeed maps (base seed, stream index) to the stream's own seed
// with the splitmix64 avalanche, so fleets get decorrelated per-stream
// content without the caller managing N seeds. It is a pure function:
// the same base and index always give the same stream seed.
func DeriveSeed(base uint64, stream int) uint64 {
	return sim.Mix64(base + 0x9E3779B97F4A7C15*(uint64(stream)+1))
}

// ForSubsystem splits one base seed into a named subsystem's own seed
// domain: the subsystem name is folded in with FNV-1a before the
// splitmix64 avalanche, so every subsystem draws from a provably
// distinct stream and — the load-bearing property — adding a draw in
// one subsystem can never shift the sequence of another. This is the
// keyed split a cluster needs: the router's policy draws, each
// instance's workload seeds and the arrival process all derive from the
// same user-facing base seed without any coupling:
//
//	router   := ForSubsystem(base, "cluster/router")
//	workload := DeriveSeed(ForSubsystem(base, "cluster/workload"), k)
//
// ForSubsystem(base, name) is a pure function; goldens pin the mapping
// so a silent derivation change cannot re-seed every published result.
func ForSubsystem(base uint64, subsystem string) uint64 {
	// FNV-1a 64 over the subsystem name: cheap, dependency-free, and a
	// different fold than DeriveSeed's index arithmetic, so (base, k)
	// and (base, name) splits cannot collide structurally.
	h := uint64(0xCBF29CE484222325)
	for i := 0; i < len(subsystem); i++ {
		h ^= uint64(subsystem[i])
		h *= 0x100000001B3
	}
	return sim.Mix64(base ^ sim.Mix64(h))
}

// Options configure FromBundle's stream construction.
type Options struct {
	// Manager selects the per-stream Quality Manager instantiated from
	// the bundle: "symbolic", "relaxed" (default) or "numeric".
	Manager string
	// Cycles per stream (required).
	Cycles int
	// Period is the cycle arrival period (0 = last deadline).
	Period core.Time
	// Overhead is the platform's management-cost model.
	Overhead sim.OverheadModel
	// BaseSeed seeds the fleet; stream k draws content with
	// DeriveSeed(BaseSeed, k).
	BaseSeed uint64
	// NoiseAmp is the content model's jitter amplitude.
	NoiseAmp float64
	// FrameFactor and ActionFactor shape the content model (nil = flat).
	FrameFactor  func(c int) float64
	ActionFactor func(i int) float64
}

// FromBundle builds n streams that all instantiate their manager from
// one shared, immutable compiled bundle — the deployment shape the
// paper's tool flow targets: compile once, serve many streams.
func FromBundle(b *controller.Bundle, n int, opt Options) ([]Stream, error) {
	if n <= 0 {
		return nil, fmt.Errorf("fleet: non-positive stream count %d", n)
	}
	if opt.Cycles <= 0 {
		return nil, fmt.Errorf("fleet: non-positive cycle count %d", opt.Cycles)
	}
	mk, err := managerFactory(b, opt.Manager)
	if err != nil {
		return nil, err
	}
	sys := b.System()
	streams := make([]Stream, n)
	for k := 0; k < n; k++ {
		streams[k] = Stream{
			Name: fmt.Sprintf("%s-%03d", b.Spec().Name, k),
			Runner: sim.Runner{
				Sys: sys,
				Mgr: mk(),
				Exec: sim.Content{
					Sys:          sys,
					FrameFactor:  opt.FrameFactor,
					ActionFactor: opt.ActionFactor,
					NoiseAmp:     opt.NoiseAmp,
					Seed:         DeriveSeed(opt.BaseSeed, k),
				},
				Overhead: opt.Overhead,
				Cycles:   opt.Cycles,
				Period:   opt.Period,
			},
		}
	}
	return streams, nil
}

func managerFactory(b *controller.Bundle, name string) (func() core.Manager, error) {
	switch name {
	case "", "relaxed":
		return b.Relaxed, nil
	case "symbolic":
		return b.Symbolic, nil
	case "numeric":
		return b.Numeric, nil
	default:
		return nil, fmt.Errorf("fleet: unknown manager %q", name)
	}
}
