// Package fleet is the concurrent multi-stream engine: it runs N
// independent quality-managed streams — each with its own cycle clock,
// RNG seed and workload — over a goroutine worker pool sharded by
// stream. The paper's Quality Manager was built for exactly this reuse:
// core.Manager decisions are deterministic functions of (state, time)
// over immutable pre-computed tables, so one compiled controller.Bundle
// can drive arbitrarily many concurrent streams without locks.
//
// The engine guarantees that parallelism changes wall-clock time, never
// results: every stream is executed through the same sim.Stream path as
// a serial sim.Runner, so a stream's trace is byte-identical to the
// serial run at the same seed regardless of the worker count.
package fleet

import (
	"errors"
	"fmt"

	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/sim"
)

// Stream configures one independent quality-managed stream: a name
// plus the embedded serial runner configuration, so the fleet cannot
// drift from what a serial run honours. Runner.Mgr must be a
// per-stream instance unless it is stateless (the policy and table
// managers are; baseline feedback controllers are not).
type Stream struct {
	Name string
	sim.Runner
}

// Config is a fleet run: the streams plus the worker pool size.
type Config struct {
	Streams []Stream
	// Workers bounds the goroutine pool (≤ 0 selects GOMAXPROCS).
	// Work is sharded at stream granularity: each stream is claimed by
	// exactly one worker and runs start-to-finish on it.
	Workers int
}

// StreamResult pairs a stream with its trace (or per-stream error).
// Under Run the trace retains every record; under RunStats it carries
// only the O(1) scalar aggregates and Stats holds the streamed
// record-derived quantities.
type StreamResult struct {
	Name  string
	Trace *sim.Trace
	// Stats is the stream's zero-retention aggregate; non-nil only for
	// streams executed through RunStats.
	Stats *sim.StatsSink
	Err   error
}

// Result collects the per-stream outcomes of a fleet run, in input
// order.
type Result struct {
	Streams []StreamResult
}

// Traces returns the successful traces in stream order.
func (r *Result) Traces() []*sim.Trace {
	out := make([]*sim.Trace, 0, len(r.Streams))
	for _, s := range r.Streams {
		if s.Err == nil && s.Trace != nil {
			out = append(out, s.Trace)
		}
	}
	return out
}

// Err returns the first per-stream error, or nil if every stream ran.
func (r *Result) Err() error {
	for _, s := range r.Streams {
		if s.Err != nil {
			return fmt.Errorf("fleet: stream %q: %w", s.Name, s.Err)
		}
	}
	return nil
}

// TotalMisses sums deadline misses across all successful streams.
func (r *Result) TotalMisses() int {
	n := 0
	for _, tr := range r.Traces() {
		n += tr.Misses
	}
	return n
}

// Run executes every stream of the fleet on the sharded worker pool and
// returns the per-stream results in input order. Configuration errors
// of individual streams are reported per stream, so one bad stream does
// not abort the fleet.
func Run(cfg Config) (*Result, error) {
	if len(cfg.Streams) == 0 {
		return nil, errors.New("fleet: no streams")
	}
	res := &Result{Streams: make([]StreamResult, len(cfg.Streams))}
	sim.Dispatch(len(cfg.Streams), cfg.Workers, func(i int) {
		s := cfg.Streams[i]
		out := StreamResult{Name: s.Name}
		// Run's contract is retained traces; a caller-set sink would
		// leave Trace.Records empty and downstream aggregation would
		// silently read zeroes. Reject it like any other per-stream
		// misconfiguration — use RunStats (or sim directly) for
		// sink-based runs.
		if s.Runner.Sink != nil {
			out.Err = errors.New("fleet: stream has a Runner.Sink; Run retains traces — use RunStats for sink-based runs")
		} else {
			out.Trace, out.Err = s.Runner.Run()
		}
		res.Streams[i] = out
	})
	return res, nil
}

// RunStats executes the fleet with one StatsSink per stream: no records
// are retained anywhere, so fleet memory is O(streams · |Q|) instead of
// O(streams × cycles × actions), and the steady-state hot path is
// allocation-free. Each StreamResult carries the scalar-only trace plus
// its Stats; metrics.AggregateStats turns them into the same
// FleetSummary a retained Run would yield (property-tested). Any sink
// the caller pre-set on a stream's Runner is replaced.
func RunStats(cfg Config) (*Result, error) {
	if len(cfg.Streams) == 0 {
		return nil, errors.New("fleet: no streams")
	}
	res := &Result{Streams: make([]StreamResult, len(cfg.Streams))}
	sim.Dispatch(len(cfg.Streams), cfg.Workers, func(i int) {
		s := cfg.Streams[i]
		levels := 0
		if s.Runner.Sys != nil {
			levels = s.Runner.Sys.NumLevels()
		}
		sink := sim.NewStatsSink(levels)
		s.Runner.Sink = sink
		out := StreamResult{Name: s.Name, Stats: sink}
		out.Trace, out.Err = s.Runner.Run()
		res.Streams[i] = out
	})
	return res, nil
}

// DeriveSeed maps (base seed, stream index) to the stream's own seed
// with the splitmix64 avalanche, so fleets get decorrelated per-stream
// content without the caller managing N seeds. It is a pure function:
// the same base and index always give the same stream seed.
func DeriveSeed(base uint64, stream int) uint64 {
	return sim.Mix64(base + 0x9E3779B97F4A7C15*(uint64(stream)+1))
}

// Options configure FromBundle's stream construction.
type Options struct {
	// Manager selects the per-stream Quality Manager instantiated from
	// the bundle: "symbolic", "relaxed" (default) or "numeric".
	Manager string
	// Cycles per stream (required).
	Cycles int
	// Period is the cycle arrival period (0 = last deadline).
	Period core.Time
	// Overhead is the platform's management-cost model.
	Overhead sim.OverheadModel
	// BaseSeed seeds the fleet; stream k draws content with
	// DeriveSeed(BaseSeed, k).
	BaseSeed uint64
	// NoiseAmp is the content model's jitter amplitude.
	NoiseAmp float64
	// FrameFactor and ActionFactor shape the content model (nil = flat).
	FrameFactor  func(c int) float64
	ActionFactor func(i int) float64
}

// FromBundle builds n streams that all instantiate their manager from
// one shared, immutable compiled bundle — the deployment shape the
// paper's tool flow targets: compile once, serve many streams.
func FromBundle(b *controller.Bundle, n int, opt Options) ([]Stream, error) {
	if n <= 0 {
		return nil, fmt.Errorf("fleet: non-positive stream count %d", n)
	}
	if opt.Cycles <= 0 {
		return nil, fmt.Errorf("fleet: non-positive cycle count %d", opt.Cycles)
	}
	mk, err := managerFactory(b, opt.Manager)
	if err != nil {
		return nil, err
	}
	sys := b.System()
	streams := make([]Stream, n)
	for k := 0; k < n; k++ {
		streams[k] = Stream{
			Name: fmt.Sprintf("%s-%03d", b.Spec().Name, k),
			Runner: sim.Runner{
				Sys: sys,
				Mgr: mk(),
				Exec: sim.Content{
					Sys:          sys,
					FrameFactor:  opt.FrameFactor,
					ActionFactor: opt.ActionFactor,
					NoiseAmp:     opt.NoiseAmp,
					Seed:         DeriveSeed(opt.BaseSeed, k),
				},
				Overhead: opt.Overhead,
				Cycles:   opt.Cycles,
				Period:   opt.Period,
			},
		}
	}
	return streams, nil
}

func managerFactory(b *controller.Bundle, name string) (func() core.Manager, error) {
	switch name {
	case "", "relaxed":
		return b.Relaxed, nil
	case "symbolic":
		return b.Symbolic, nil
	case "numeric":
		return b.Numeric, nil
	default:
		return nil, fmt.Errorf("fleet: unknown manager %q", name)
	}
}
