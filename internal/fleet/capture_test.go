package fleet

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/arrivals"
	"repro/internal/core"
)

// burstyTimes is the capture tests' shared arrival schedule: bursty
// enough that admission, backlog and departure events interleave.
func burstyTimes(t *testing.T, n int, seed uint64) []core.Time {
	t.Helper()
	times, err := arrivals.Bursty{GapOn: 5 * core.Millisecond, MeanOn: 20 * core.Millisecond,
		MeanOff: 60 * core.Millisecond, Seed: seed}.Times(n)
	if err != nil {
		t.Fatal(err)
	}
	return times
}

// maxLevelsOf returns the widest quality-level count in the population —
// the OpenLiveConfig.MaxLevels a live run over it needs.
func maxLevelsOf(streams []Stream) int {
	m := 0
	for k := range streams {
		if sys := streams[k].Runner.Sys; sys != nil && sys.NumLevels() > m {
			m = sys.NumLevels()
		}
	}
	return m
}

// TestOpenCheckpointEveryBoundaryResume is the tentpole's crash-safety
// property: checkpoint at EVERY event boundary of a run, then treat
// each capture as the survivor of a kill at that exact boundary —
// resuming from it (across several (workers, batch) shapes, not just
// the one that took it) must reproduce the uninterrupted serial spec
// byte for byte: stream results, lifecycles, backlog accounting,
// admission counts.
func TestOpenCheckpointEveryBoundaryResume(t *testing.T) {
	const n = 24
	streams := skewedStreams(t, n, 61)
	times := burstyTimes(t, n, 19)
	base := OpenConfig{Streams: streams, Arrivals: times, Admit: CapK{K: 3, Queue: -1}}

	ref, err := OpenRunStatsSerial(base)
	if err != nil {
		t.Fatal(err)
	}

	var caps []*OpenCapture
	cfg := base
	cfg.Workers = 1
	got, err := OpenRunStatsCheckpointed(cfg, nil, 1, func(c *OpenCapture) error {
		caps = append(caps, c)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	compareOpen(t, "checkpointed run", ref, got)
	if len(caps) == 0 {
		t.Fatal("no checkpoint boundaries hit")
	}

	shapes := []struct{ workers, batch int }{{1, 0}, {2, 1}, {4, 32}}
	for i, c := range caps {
		shape := shapes[i%len(shapes)]
		rcfg := base
		rcfg.Workers, rcfg.BatchCycles = shape.workers, shape.batch
		res, err := OpenRunStatsCheckpointed(rcfg, c, 0, nil)
		if err != nil {
			t.Fatalf("resume at boundary %d (events=%d): %v", i, c.Events, err)
		}
		compareOpen(t, "resume at boundary "+string(rune('0'+i%10)), ref, res)
	}
}

// TestOpenResumeUnderContention is the -race stress form: captures are
// taken mid-run at every (workers, batch) shape over a skewed
// population, and every capture is resumed both at the shape that took
// it and at the single-worker reference shape — all byte-identical to
// the uninterrupted serial spec. At workers > 1 the capture's split
// between finished and in-flight streams depends on worker timing; the
// property is exactly that the results never do.
func TestOpenResumeUnderContention(t *testing.T) {
	const n = 36
	streams := skewedStreams(t, n, 67)
	times := burstyTimes(t, n, 23)
	base := OpenConfig{Streams: streams, Arrivals: times, Admit: Budget{CPU: 2.5, Queue: 4}}

	ref, err := OpenRunStatsSerial(base)
	if err != nil {
		t.Fatal(err)
	}
	shapes := []struct{ workers, batch int }{{1, 1}, {1, 0}, {2, 1}, {2, 0}, {4, 1}, {4, 0}}
	for _, shape := range shapes {
		cfg := base
		cfg.Workers, cfg.BatchCycles = shape.workers, shape.batch
		var caps []*OpenCapture
		got, err := OpenRunStatsCheckpointed(cfg, nil, 7, func(c *OpenCapture) error {
			caps = append(caps, c)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d batch=%d: %v", shape.workers, shape.batch, err)
		}
		compareOpen(t, "checkpointed", ref, got)
		for i, c := range caps {
			for _, rshape := range []struct{ workers, batch int }{shape, {1, 0}} {
				rcfg := base
				rcfg.Workers, rcfg.BatchCycles = rshape.workers, rshape.batch
				res, err := OpenRunStatsCheckpointed(rcfg, c, 0, nil)
				if err != nil {
					t.Fatalf("resume capture %d at workers=%d: %v", i, rshape.workers, err)
				}
				compareOpen(t, "contended resume", ref, res)
			}
		}
	}
}

// TestOpenCaptureDeterministicAtWorkersOne pins the snapshot itself: at
// workers = 1 the engine's execution interleaving is fully determined,
// so two identical runs must produce identical capture sequences —
// the property that makes single-worker snapshot files reproducible.
func TestOpenCaptureDeterministicAtWorkersOne(t *testing.T) {
	const n = 16
	streams := skewedStreams(t, n, 73)
	times := burstyTimes(t, n, 29)
	run := func() []*OpenCapture {
		var caps []*OpenCapture
		_, err := OpenRunStatsCheckpointed(OpenConfig{
			Streams: streams, Arrivals: times, Admit: CapK{K: 2, Queue: 2}, Workers: 1,
		}, nil, 3, func(c *OpenCapture) error {
			caps = append(caps, c)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return caps
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("capture counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			t.Fatalf("capture %d differs between identical workers=1 runs", i)
		}
	}
}

// TestOpenRestoreRejectsIncoherentCapture drives the restore validator:
// a capture whose cross-references do not fit the configuration must
// fail with an error, never index out of range — the engine-level
// defence behind the checkpoint package's checksum.
func TestOpenRestoreRejectsIncoherentCapture(t *testing.T) {
	const n = 8
	streams := skewedStreams(t, n, 79)
	times := burstyTimes(t, n, 31)
	cfg := OpenConfig{Streams: streams, Arrivals: times, Workers: 1}
	var cap0 *OpenCapture
	if _, err := OpenRunStatsCheckpointed(cfg, nil, 2, func(c *OpenCapture) error {
		if cap0 == nil {
			cap0 = c
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if cap0 == nil {
		t.Fatal("no capture taken")
	}
	corrupt := []struct {
		name string
		mut  func(c *OpenCapture)
	}{
		{"done stream out of range", func(c *OpenCapture) {
			c.Done = append(c.Done, DoneStream{K: int32(n) + 5})
		}},
		{"live stream out of range", func(c *OpenCapture) {
			c.Live = append(c.Live, LiveSlot{K: -1})
		}},
		{"departure out of range", func(c *OpenCapture) {
			c.Departures = append(c.Departures, DepEntry{K: 99})
		}},
		{"arrival cursor out of range", func(c *OpenCapture) {
			c.NextArrival = n + 1
		}},
		{"too many lifecycles", func(c *OpenCapture) {
			c.Lifecycles = append(c.Lifecycles, c.Lifecycles...)
		}},
	}
	for _, tc := range corrupt {
		bad := *cap0
		// Shallow copy shares slices; mutations below only append or set
		// scalars, so the original stays intact for the next case.
		tc.mut(&bad)
		if _, err := OpenRunStatsCheckpointed(cfg, &bad, 0, nil); err == nil {
			t.Fatalf("%s: restore accepted an incoherent capture", tc.name)
		} else if !strings.Contains(err.Error(), "capture") {
			t.Fatalf("%s: unexpected error %v", tc.name, err)
		}
	}
}

// TestOpenCheckpointedSteadyStateAllocationFree proves the checkpoint
// plumbing costs the hot path nothing: the checkpointed driver with no
// checkpoint interval is the exact hot path of OpenRunStats, and a warm
// steady-state run through it still performs zero heap allocations.
func TestOpenCheckpointedSteadyStateAllocationFree(t *testing.T) {
	streams := mixedStreams(t, 8, 3, 47)
	times, err := arrivals.Poisson{MeanGap: 15 * core.Millisecond, Seed: 9}.Times(len(streams))
	if err != nil {
		t.Fatal(err)
	}
	cfg := OpenConfig{
		Streams:  streams,
		Arrivals: times,
		Admit:    CapK{K: 3, Queue: -1},
		Workers:  1,
		Scratch:  NewOpenScratch(),
	}
	run := func() {
		res, err := OpenRunStatsCheckpointed(cfg, nil, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Admitted != len(streams) {
			t.Fatalf("admitted %d of %d", res.Admitted, len(streams))
		}
	}
	run()
	if allocs := testing.AllocsPerRun(32, run); allocs != 0 {
		t.Fatalf("checkpointed steady-state run allocates %.2f times per run, want 0", allocs)
	}
}

// TestOpenLiveMatchesBatch is the incremental driver's equivalence
// property: feeding the population one arrival at a time (the serving
// shape) seals a result byte-identical to the batch engine — and hence
// to the serial spec — for every arrival model, at several scheduler
// shapes, including simultaneous-arrival ties that Feed must withhold
// until the watermark passes them.
func TestOpenLiveMatchesBatch(t *testing.T) {
	const n = 30
	streams := skewedStreams(t, n, 83)
	levels := maxLevelsOf(streams)
	adm := CapK{K: 3, Queue: 2}
	for model, times := range openProcesses(t, n) {
		ref, err := OpenRunStatsSerial(OpenConfig{Streams: streams, Arrivals: times, Admit: adm})
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		for _, shape := range []struct{ workers, batch int }{{1, 0}, {3, 2}} {
			live := NewOpenLive(OpenLiveConfig{Admit: adm, Workers: shape.workers, BatchCycles: shape.batch, MaxLevels: levels})
			for k := range streams {
				if err := live.Feed(streams[k], times[k]); err != nil {
					t.Fatalf("%s: feed %d: %v", model, k, err)
				}
			}
			res, err := live.Close()
			if err != nil {
				t.Fatalf("%s: %v", model, err)
			}
			compareOpen(t, model+"/live", ref, res)
		}
	}
}

// TestOpenLiveCheckpointRestore kills a live run mid-stream: feed half
// the population, checkpoint, abandon the engine (the crash), rebuild a
// fresh OpenLive from the capture plus the re-fed prefix, feed the
// rest, and seal — byte-identical to the run that never stopped, across
// scheduler shapes on both sides of the crash.
func TestOpenLiveCheckpointRestore(t *testing.T) {
	const n = 26
	streams := skewedStreams(t, n, 89)
	times := burstyTimes(t, n, 37)
	levels := maxLevelsOf(streams)
	adm := Budget{CPU: 2.5, Queue: -1}

	ref, err := OpenRunStatsSerial(OpenConfig{Streams: streams, Arrivals: times, Admit: adm})
	if err != nil {
		t.Fatal(err)
	}

	cut := n / 2
	for _, before := range []int{1, 4} {
		for _, after := range []int{1, 2} {
			victim := NewOpenLive(OpenLiveConfig{Admit: adm, Workers: before, MaxLevels: levels})
			for k := 0; k < cut; k++ {
				if err := victim.Feed(streams[k], times[k]); err != nil {
					t.Fatal(err)
				}
			}
			cap0, err := victim.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			victim.Abort() // the crash: nothing after the capture survives

			heir := NewOpenLive(OpenLiveConfig{Admit: adm, Workers: after, MaxLevels: levels})
			if err := heir.Restore(cap0, streams[:cut], times[:cut]); err != nil {
				t.Fatalf("restore (workers %d→%d): %v", before, after, err)
			}
			for k := cut; k < n; k++ {
				if err := heir.Feed(streams[k], times[k]); err != nil {
					t.Fatal(err)
				}
			}
			res, err := heir.Close()
			if err != nil {
				t.Fatal(err)
			}
			compareOpen(t, "live resume", ref, res)
		}
	}
}

// TestOpenLiveValidation pins the incremental driver's input contract:
// out-of-order arrivals, over-wide streams and misuse after Close are
// errors, not corruption.
func TestOpenLiveValidation(t *testing.T) {
	streams := mixedStreams(t, 3, 1, 91)
	levels := maxLevelsOf(streams)
	live := NewOpenLive(OpenLiveConfig{Workers: 1, MaxLevels: levels})
	if err := live.Feed(streams[0], 10); err != nil {
		t.Fatal(err)
	}
	if err := live.Feed(streams[1], 5); err == nil {
		t.Fatal("out-of-order Feed accepted")
	}
	if err := live.Feed(streams[1], core.TimeInf); err == nil {
		t.Fatal("infinite arrival accepted")
	}
	narrow := NewOpenLive(OpenLiveConfig{Workers: 1, MaxLevels: 1})
	if err := narrow.Feed(streams[0], 0); err == nil || !strings.Contains(err.Error(), "MaxLevels") {
		t.Fatalf("over-wide stream accepted: %v", err)
	}
	narrow.Abort()
	if _, err := live.Close(); err != nil {
		t.Fatal(err)
	}
	if err := live.Feed(streams[1], 20); err == nil {
		t.Fatal("Feed after Close accepted")
	}
	if _, err := live.Close(); err == nil {
		t.Fatal("double Close accepted")
	}
	empty := NewOpenLive(OpenLiveConfig{Workers: 1})
	if _, err := empty.Close(); err != errNoStreams {
		t.Fatalf("empty Close: %v", err)
	}
}
