package fleet

import "testing"

// TestForSubsystemGoldens pins the subsystem seed derivation to
// concrete values: a silent change to the FNV fold or the avalanche
// would re-seed every published cluster result, so the mapping is
// golden-tested exactly like DeriveSeed's.
func TestForSubsystemGoldens(t *testing.T) {
	golden := []struct {
		base uint64
		name string
		want uint64
	}{
		{0, "cluster/router", 0xCA831897A9AED295},
		{42, "cluster/router", 0xF1D26420CB6F8731},
		{42, "cluster/workload", 0x7E5D44E8753F8382},
		{42, "cluster/arrivals", 0x98ACA5D6FE3C2D63},
		{3735928559, "fleet/content", 0x630508C266AE7430},
	}
	for _, g := range golden {
		if got := ForSubsystem(g.base, g.name); got != g.want {
			t.Errorf("ForSubsystem(%d, %q) = %#016X, want %#016X", g.base, g.name, got, g.want)
		}
	}
}

// TestForSubsystemPairwiseDistinct is the decorrelation property the
// keyed split exists for: across a grid of (instance, subsystem) seed
// derivations — subsystem splits, per-stream DeriveSeed chains under
// each subsystem, and the flat DeriveSeed chain they must not collide
// with — every derived seed is distinct. A collision would silently
// couple two components' draw sequences.
func TestForSubsystemPairwiseDistinct(t *testing.T) {
	const base = 97
	subsystems := []string{"cluster/router", "cluster/workload", "cluster/arrivals", "obs/sampling"}
	seen := map[uint64]string{}
	record := func(seed uint64, who string) {
		t.Helper()
		if prev, dup := seen[seed]; dup {
			t.Fatalf("seed collision: %s and %s both derive %#016X", prev, who, seed)
		}
		seen[seed] = who
	}
	record(base, "base")
	for _, name := range subsystems {
		sub := ForSubsystem(base, name)
		record(sub, name)
		// Each subsystem's per-stream chain must be internally distinct
		// and disjoint from every other subsystem's chain and from the
		// flat DeriveSeed chain off the same base.
		for k := 0; k < 32; k++ {
			record(DeriveSeed(sub, k), name+"/stream")
		}
	}
	for k := 0; k < 32; k++ {
		record(DeriveSeed(base, k), "flat/stream")
	}
	// The split must depend on the base too: the same subsystem under
	// different bases gives different seeds.
	if ForSubsystem(1, "cluster/router") == ForSubsystem(2, "cluster/router") {
		t.Fatal("ForSubsystem ignores its base seed")
	}
}
