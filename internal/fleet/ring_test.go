package fleet

import (
	"testing"

	"repro/internal/arrivals"
	"repro/internal/core"
)

// TestCompletionRingWrapAround drives one SPSC ring through several
// capacity wraps with interleaved push/pop phases: FIFO order must
// survive the cursor wrapping, push must refuse exactly at capacity,
// and pop must refuse exactly at empty.
func TestCompletionRingWrapAround(t *testing.T) {
	const capacity = 4
	var r completionRing
	r.reset(capacity)
	if _, ok := r.pop(); ok {
		t.Fatal("pop on an empty ring succeeded")
	}
	next := int32(0) // next value to push
	want := int32(0) // next value pop must yield
	for round := 0; round < 5; round++ {
		// Fill to capacity, confirm the full refusal, then half-drain —
		// the half offset walks the cursors across the wrap boundary.
		for r.tail.Load()-r.head.Load() < capacity {
			if !r.push(next) {
				t.Fatalf("round %d: push refused below capacity", round)
			}
			next++
		}
		if r.push(-1) {
			t.Fatalf("round %d: push succeeded on a full ring", round)
		}
		for i := 0; i < capacity/2; i++ {
			got, ok := r.pop()
			if !ok || got != want {
				t.Fatalf("round %d: pop = %d,%v, want %d,true", round, got, ok, want)
			}
			want++
		}
	}
	for {
		got, ok := r.pop()
		if !ok {
			break
		}
		if got != want {
			t.Fatalf("drain: pop = %d, want %d", got, want)
		}
		want++
	}
	if want != next {
		t.Fatalf("drained to %d, pushed %d values", want, next)
	}
	if h, tl := r.head.Load(), r.tail.Load(); h != tl || h <= int64(capacity) {
		t.Fatalf("cursors head=%d tail=%d never wrapped capacity %d", h, tl, capacity)
	}
}

// withTinyRings shrinks the per-worker completion rings for the
// duration of one test, forcing the wrap-around, backpressure-spin and
// overflow-park paths that a 64-slot ring would never hit in a test-
// sized run. Tests using it must not run in parallel.
func withTinyRings(t *testing.T, capacity int) {
	t.Helper()
	old := openRingCap
	openRingCap = capacity
	t.Cleanup(func() { openRingCap = old })
}

// TestOpenTinyRingBackpressureMatchesSpec is the overflow-path property
// test: with 2-slot rings, simultaneous arrivals and short streams,
// workers overrun their rings constantly — the bounded spin and the
// overflow park both fire — yet results must stay byte-identical to
// the serial spec at every worker count. A fresh scratch is reused
// across shapes so ring state must also survive reuse.
func TestOpenTinyRingBackpressureMatchesSpec(t *testing.T) {
	withTinyRings(t, 2)
	const n = 36
	streams := skewedStreams(t, n, 71)
	times, err := arrivals.Fixed{}.Times(n) // all at t=0: maximal concurrency
	if err != nil {
		t.Fatal(err)
	}
	base := OpenConfig{Streams: streams, Arrivals: times, Admit: CapK{K: 12, Queue: -1}}
	ref, err := OpenRunStatsSerial(base)
	if err != nil {
		t.Fatal(err)
	}
	scratch := NewOpenScratch()
	for _, shape := range []struct{ workers, batch int }{{2, 1}, {4, 2}, {8, 1}, {16, 1}} {
		cfg := base
		cfg.Workers, cfg.BatchCycles, cfg.Scratch = shape.workers, shape.batch, scratch
		got, err := OpenRunStats(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", shape.workers, err)
		}
		compareOpen(t, "tiny-ring", ref, got)
	}
}

// TestOpenCheckpointDrainsFullRings pins the quiesce contract under
// ring pressure: with 2-slot rings a worker can reach the quiesce park
// while its ring is full and a completion is still in its overflow
// cell. Checkpointing at every boundary must drain both — a capture
// holding a completed-but-unretired slot would resume that stream a
// second time. Every capture is resumed across shapes and compared to
// the uninterrupted serial spec.
func TestOpenCheckpointDrainsFullRings(t *testing.T) {
	withTinyRings(t, 2)
	const n = 24
	streams := skewedStreams(t, n, 73)
	times := burstyTimes(t, n, 29)
	base := OpenConfig{Streams: streams, Arrivals: times, Admit: CapK{K: 8, Queue: -1}}
	ref, err := OpenRunStatsSerial(base)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Workers, cfg.BatchCycles = 8, 1
	var caps []*OpenCapture
	got, err := OpenRunStatsCheckpointed(cfg, nil, 1, func(c *OpenCapture) error {
		caps = append(caps, c)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	compareOpen(t, "checkpointed tiny-ring run", ref, got)
	if len(caps) == 0 {
		t.Fatal("no checkpoint boundaries hit")
	}
	shapes := []struct{ workers, batch int }{{1, 0}, {4, 1}, {8, 2}}
	for i, c := range caps {
		shape := shapes[i%len(shapes)]
		rcfg := base
		rcfg.Workers, rcfg.BatchCycles = shape.workers, shape.batch
		res, err := OpenRunStatsCheckpointed(rcfg, c, 0, nil)
		if err != nil {
			t.Fatalf("resume at boundary %d (events=%d): %v", i, c.Events, err)
		}
		compareOpen(t, "tiny-ring resume", ref, res)
	}
}

// TestOpenLookaheadWindowEquivalence is the lookahead determinism
// property: the window batches only the executor wake, never the
// admission decisions, so every (workers, lookahead) pair — window 1
// being the pre-lookahead publish-per-event behaviour — must reproduce
// the serial spec byte for byte. One scratch is shared across all
// pairs.
func TestOpenLookaheadWindowEquivalence(t *testing.T) {
	const n = 36
	streams := skewedStreams(t, n, 79)
	for model, times := range openProcesses(t, n) {
		base := OpenConfig{Streams: streams, Arrivals: times, Admit: CapK{K: 4, Queue: -1}}
		ref, err := OpenRunStatsSerial(base)
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		scratch := NewOpenScratch()
		for _, look := range []int{1, 2, 3, DefaultLookahead, 1 << 20} {
			for _, workers := range []int{1, 2, 8} {
				cfg := base
				cfg.Workers, cfg.Lookahead, cfg.Scratch = workers, look, scratch
				got, err := OpenRunStats(cfg)
				if err != nil {
					t.Fatalf("%s lookahead=%d workers=%d: %v", model, look, workers, err)
				}
				compareOpen(t, model+"/lookahead", ref, got)
			}
		}
	}
}

// TestOpenWorkerExtremesStress covers the pool-shape extremes the
// striped claim and the ring harvest must both survive (run under
// -race in CI): workers ≫ streams (most workers never own a stripe
// slot and live off steals and parks) and streams ≫ workers (every
// ring turns over many times). Both compare to the serial spec.
func TestOpenWorkerExtremesStress(t *testing.T) {
	cases := []struct {
		name    string
		n       int
		workers int
		look    int
	}{
		{"workers-over-streams", 4, 16, 1},
		{"streams-over-workers", 96, 2, DefaultLookahead},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			streams := skewedStreams(t, tc.n, 83)
			times, err := arrivals.Poisson{MeanGap: 2 * core.Millisecond, Seed: 37}.Times(tc.n)
			if err != nil {
				t.Fatal(err)
			}
			base := OpenConfig{Streams: streams, Arrivals: times, Admit: AdmitAll{}}
			ref, err := OpenRunStatsSerial(base)
			if err != nil {
				t.Fatal(err)
			}
			cfg := base
			cfg.Workers, cfg.BatchCycles, cfg.Lookahead = tc.workers, 1, tc.look
			for round := 0; round < 3; round++ {
				got, err := OpenRunStats(cfg)
				if err != nil {
					t.Fatal(err)
				}
				compareOpen(t, tc.name, ref, got)
			}
		})
	}
}
