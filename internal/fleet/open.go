package fleet

import (
	"cmp"
	"container/heap"
	"errors"
	"fmt"
	"math"
	"slices"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/multitask"
	"repro/internal/obs"
	"repro/internal/sim"
)

// OpenConfig is an open-system fleet run: a stream population with
// arrival instants, an admission controller, and the scheduler shape.
// Where the closed Config starts every stream at once and runs the
// population to completion, the open form drives a virtual-time event
// loop — streams arrive, are admitted / queued / shed, run, and depart —
// while every admitted stream still executes on the same shard-affine
// scheduler as a closed fleet.
type OpenConfig struct {
	// Streams is the arriving population, in arrival-process order.
	Streams []Stream
	// Arrivals[k] is stream k's arrival instant in simulated time
	// (typically an arrivals.Process output). It must have exactly one
	// instant per stream, all ≥ 0 and finite; it need not be sorted —
	// the loop orders events by (instant, index).
	Arrivals []core.Time
	// Admit is the admission controller; nil selects AdmitAll.
	Admit Admitter
	// Workers and BatchCycles shape the scheduler exactly as in Config.
	// They change wall-clock time, never results: traces, lifecycles and
	// admission decisions are byte-identical at any (workers, batch).
	Workers     int
	BatchCycles int
	// Lookahead bounds how many admitted-and-ready slots the frontier
	// batches into one executor wake (≤ 0 selects DefaultLookahead;
	// 1 publishes per event, the pre-lookahead behaviour). Admission
	// decisions are made in exact serial event order regardless — the
	// window only amortizes the wake of parked workers, so results are
	// byte-identical at any (workers, batch, lookahead). The serial
	// spec ignores it.
	Lookahead int
	// Export is Config.Export for the stats path: an extra per-stream
	// sink keyed by the stream's index in Streams.
	Export func(k int, name string) sim.Sink
	// Scratch, when non-nil, amortizes the continuous engine's working
	// memory across runs: slot-arena chunks, frontier heaps and result
	// slabs are reused, making a warm steady-state run allocation-free.
	// The returned OpenResult then aliases the scratch and is valid only
	// until its next run. The serial spec ignores it.
	Scratch *OpenScratch
	// Obs, when non-nil, enables the engine's metric hooks: the frontier
	// feeds the serial-order instruments (arrivals, verdicts, backlog
	// accounting, event groups) and the executor feeds the
	// shape-dependent ones (batches, steals, parks, ring occupancy).
	// Observability on ≡ off is byte-identical — results never depend on
	// it — and the serial-order metric values are themselves identical
	// at any (workers, batch, lookahead); both are property-tested. The
	// serial spec ignores it.
	Obs *obs.FleetMetrics
	// Trace, when non-nil, records lifecycle events (arrive, admit,
	// shed, bind, complete, steal, park, checkpoint) into the bounded
	// virtual-time ring. Like Obs it never affects results. The serial
	// spec ignores it.
	Trace *obs.Trace
}

// OpenResult collects an open-system run: the per-stream outcomes (in
// input order; shed streams carry neither trace nor stats) plus the
// embedded open-system observations — lifecycles and backlog accounting
// — that metrics.SummarizeOpen aggregates.
type OpenResult struct {
	Streams []StreamResult
	metrics.OpenObservations
	// Admitted, Delayed and Shed count the population's fates: Admitted
	// streams ran, Delayed streams spent time in the backlog (whether
	// eventually admitted or shed), Shed streams never ran. They are
	// derived from Lifecycles, the single record of each verdict.
	Admitted, Delayed, Shed int
}

// FleetResult returns the executed streams as a closed-fleet result, so
// the whole cross-stream aggregation and reporting stack (FleetTable,
// AggregateStats) applies unchanged to an open run.
func (r *OpenResult) FleetResult() *Result {
	res := &Result{Streams: make([]StreamResult, 0, len(r.Streams))}
	for k, s := range r.Streams {
		if r.Lifecycles[k].Shed {
			continue
		}
		res.Streams = append(res.Streams, s)
	}
	return res
}

// Err returns the first per-stream error among executed streams, or nil.
func (r *OpenResult) Err() error {
	for _, s := range r.Streams {
		if s.Err != nil {
			return fmt.Errorf("fleet: stream %q: %w", s.Name, s.Err)
		}
	}
	return nil
}

// DefaultLookahead is the admission lookahead window selected by
// OpenConfig.Lookahead ≤ 0: wide enough that an admission burst wakes
// the pool once instead of per stream, narrow enough that the first
// admitted stream of a burst is never starved behind the frontier's
// own event processing.
const DefaultLookahead = 16

// OpenRun executes the open system on the continuous wave-free engine
// with full traces retained per executed stream. See OpenRunStats for
// the zero-retention form.
func OpenRun(cfg OpenConfig) (*OpenResult, error) {
	return openRunContinuous(cfg, false)
}

// OpenRunStats executes the open system on the continuous wave-free
// engine with one StatsSink per executed stream — the zero-retention
// shape: slot memory is bounded by the peak concurrency, not the
// population, and the steady-state hot path stays allocation-free.
//
// The engine: a deterministic virtual-time frontier (frontier.go)
// decides every admission in the serial spec's exact event order while
// persistent injection-aware workers (openSched) execute admitted
// streams in the background — no admission wave, no pool start/join per
// event, no barrier on wave stragglers. Traces, lifecycles and
// admission decisions are byte-identical to OpenRunSerial at any
// (workers, batch), property-tested under -race.
func OpenRunStats(cfg OpenConfig) (*OpenResult, error) {
	return openRunContinuous(cfg, true)
}

// OpenRunSerial is the wave-barrier open engine kept as the executable
// specification the continuous engine is property-tested against: a
// serial virtual-time event loop that runs every admission wave to
// completion on the scheduler before the next event. Results are
// byte-identical to OpenRun; only wall-clock behaviour differs.
func OpenRunSerial(cfg OpenConfig) (*OpenResult, error) {
	return openRunSerial(cfg, false)
}

// OpenRunStatsSerial is OpenRunSerial through the zero-retention stats
// path — the executable spec for OpenRunStats.
func OpenRunStatsSerial(cfg OpenConfig) (*OpenResult, error) {
	return openRunSerial(cfg, true)
}

// The shared configuration-rejection values of both engines.
var (
	errNoStreams        = errors.New("fleet: no streams")
	errExportNeedsStats = errors.New("fleet: Export needs the streaming path; use OpenRunStats")
)

func arrivalCountError(streams, instants int) error {
	return fmt.Errorf("fleet: %d streams but %d arrival instants", streams, instants)
}

func arrivalInstantError(k int, t core.Time) error {
	return fmt.Errorf("fleet: stream %d has invalid arrival instant %v", k, t)
}

// departure is a scheduled stream completion in the event heap.
type departure struct {
	t core.Time
	k int
}

// depHeap is a min-heap of departures ordered by (instant, stream
// index) — the index tie-break keeps simultaneous departures
// deterministic.
type depHeap []departure

func (h depHeap) Len() int { return len(h) }
func (h depHeap) Less(i, j int) bool {
	return h[i].t < h[j].t || (h[i].t == h[j].t && h[i].k < h[j].k)
}
func (h depHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *depHeap) Push(x any)   { *h = append(*h, x.(departure)) }
func (h *depHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// openRunSerial is the spec's virtual-time event loop. It is serial and
// deterministic by construction — every admission decision is a pure
// function of simulated instants — and delegates all stream execution to
// the shard-affine scheduler in admission waves: the streams admitted at
// one event instant are bound into (recycled) table slots, drained
// concurrently, and harvested, which fixes their departure instants
// before the loop advances to the next event. Concurrency therefore
// changes wall-clock time only; a fixed arrival seed yields byte-
// identical traces, lifecycles and admission decisions at any
// (workers, batch).
//
// Event ordering: at one instant, departures are retired first (ties by
// stream index), the freed capacity is offered to the FIFO backlog, and
// only then are new arrivals decided (ties by index) — an arrival queues
// behind streams already waiting. A stream still queued when the system
// drains can never be admitted (nothing will free more capacity), so it
// is shed then.
func openRunSerial(cfg OpenConfig, stats bool) (*OpenResult, error) {
	if err := validateOpen(&cfg, stats); err != nil {
		return nil, err
	}
	n := len(cfg.Streams)
	adm := cfg.Admit
	if adm == nil {
		adm = AdmitAll{}
	}

	// Per-stream guaranteed CPU demand for budget policies: the qmin
	// worst case over the resolved period. Streams that will fail at
	// Bind — sim.Runner.Validate (the same check InitStream applies) or
	// the retain-mode rejection of a caller-set sink — weigh nothing:
	// they depart the instant they are admitted without executing, so
	// they must not consume budget that same-instant arrivals are
	// decided against.
	util := make([]float64, n)
	for k := range cfg.Streams {
		r := &cfg.Streams[k].Runner
		if r.Validate() != nil || (!stats && r.Sink != nil) {
			continue
		}
		if u := multitask.Utilization(r.Sys, r.Sys.QMin(), r.ResolvedPeriod()); !math.IsInf(u, 1) {
			util[k] = u
		}
	}

	// Event order: arrivals sorted by (instant, index).
	order := make([]int, n)
	for k := range order {
		order[k] = k
	}
	slices.SortStableFunc(order, func(a, b int) int {
		return cmp.Compare(cfg.Arrivals[a], cfg.Arrivals[b])
	})

	tbl := newOpenTable(cfg.Streams, stats, cfg.Export)
	res := &OpenResult{Streams: make([]StreamResult, n)}
	res.Lifecycles = make([]metrics.Lifecycle, n)
	for k := range res.Streams {
		res.Streams[k].Name = cfg.Streams[k].Name
		res.Lifecycles[k] = metrics.Lifecycle{Name: cfg.Streams[k].Name, Arrival: cfg.Arrivals[k]}
	}

	var (
		dep     depHeap
		backlog []int
		wave    []int
		slots   []int32
		inServe int
		cpuLoad float64
		lastT   = cfg.Arrivals[order[0]]
		lastDep core.Time
	)
	res.FirstArrival = lastT

	admitStream := func(k int, t core.Time) {
		res.Lifecycles[k].Admitted = t
		inServe++
		cpuLoad += util[k]
		wave = append(wave, k)
	}

	// flush executes one admission wave: bind the admitted streams into
	// recycled slots, drain them on the scheduler, harvest, and schedule
	// their departures. Growth happens only here, with every slot free.
	flush := func() {
		if len(wave) == 0 {
			return
		}
		tbl.Ensure(len(wave))
		slots = slots[:0]
		for _, k := range wave {
			slots = append(slots, int32(tbl.Bind(&cfg.Streams[k], k)))
		}
		tbl.RunSlots(slots, cfg.Workers, cfg.BatchCycles)
		for i, k := range wave {
			sr := tbl.Harvest(int(slots[i]))
			res.Streams[k] = sr
			d := res.Lifecycles[k].Admitted
			if sr.Err == nil {
				d += sr.Trace.Final
			} else {
				res.Lifecycles[k].Failed = true
			}
			res.Lifecycles[k].Departed = d
			if d > lastDep {
				lastDep = d
			}
			heap.Push(&dep, departure{t: d, k: k})
		}
		wave = wave[:0]
	}

	// advanceTo integrates the backlog depth over simulated time up to
	// the next event instant.
	advanceTo := func(t core.Time) {
		if t > lastT {
			res.BacklogIntegral += float64(t-lastT) * float64(len(backlog))
			lastT = t
		}
	}

	ai := 0
	for ai < n || dep.Len() > 0 || len(wave) > 0 {
		flush()
		tA, tD := core.TimeInf, core.TimeInf
		if ai < n {
			tA = cfg.Arrivals[order[ai]]
		}
		if dep.Len() > 0 {
			tD = dep[0].t
		}
		if tD <= tA {
			t := tD
			advanceTo(t)
			for dep.Len() > 0 && dep[0].t == t {
				d := heap.Pop(&dep).(departure)
				inServe--
				cpuLoad -= util[d.k]
			}
			// Offer the freed capacity to the backlog in FIFO order; a
			// Shed verdict for the head is treated as Delay (shedding is
			// an arrival-time decision).
			for len(backlog) > 0 {
				k := backlog[0]
				if adm.Decide(Load{T: t, InService: inServe, Backlog: 0, CPULoad: cpuLoad}, util[k]) != Admit {
					break
				}
				backlog = backlog[1:]
				admitStream(k, t)
			}
			continue
		}
		t := tA
		advanceTo(t)
		for ai < n && cfg.Arrivals[order[ai]] == t {
			k := order[ai]
			ai++
			v := adm.Decide(Load{T: t, InService: inServe, Backlog: len(backlog), CPULoad: cpuLoad}, util[k])
			switch v {
			case Admit:
				admitStream(k, t)
			case Delay:
				backlog = append(backlog, k)
				res.Lifecycles[k].Queued = true
				if len(backlog) > res.MaxBacklog {
					res.MaxBacklog = len(backlog)
				}
			default:
				res.Lifecycles[k].Shed = true
			}
		}
	}

	// Streams still queued when the system drained can never be admitted
	// — no departure will ever free more capacity — so they are shed at
	// the end of the run (head-of-line blocking under FIFO: a stream the
	// budget can never fit starves everything behind it).
	for _, k := range backlog {
		res.Lifecycles[k].Shed = true
	}

	for _, lc := range res.Lifecycles {
		if lc.Shed {
			res.Shed++
		} else {
			res.Admitted++
		}
		if lc.Queued {
			res.Delayed++
		}
	}
	res.End = lastT
	res.Final = lastDep
	return res, nil
}
