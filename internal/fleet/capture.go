package fleet

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
)

// This file is the checkpoint surface of the continuous open engine: a
// deep, self-contained capture of a paused run (OpenCapture) plus the
// restore path that rebuilds a frontier from one. The enabling facts
// are the engine's own invariants — per-stream mutable state is O(1)
// and lives in the arena slabs (sim.State clock/cycle, sim.Trace
// aggregates, StatsSink accumulators), and a stream's trace is a pure
// function of its Runner plus that state (the prefix property) — so a
// resumed run replays the identical decision sequence and the identical
// per-cycle records, making its results byte-identical to the
// uninterrupted run's.
//
// Captures are taken only at quiescence points: the executor is paused
// at a cycle-batch boundary and every published completion has been
// harvested, so all slots are either empty or parked at a batch
// boundary (slotReady) and every slab is at rest. At workers = 1 the
// capture taken after a given event count is fully deterministic; at
// workers > 1 the split between finished and in-flight streams can vary
// with worker timing — the snapshot bytes may differ, but the restored
// run's results never do.

// DepEntry is one scheduled exact departure in a capture.
type DepEntry struct {
	T core.Time
	K int32
}

// DoneStream is a finished stream's harvested outcome in a capture:
// its scalar trace aggregates and sink accumulators (or its bind-time
// error), exactly what the result slabs hold.
type DoneStream struct {
	K     int32
	Err   string // bind-time configuration error; "" = ran successfully
	Trace sim.Trace
	Sink  sim.SinkState
}

// LiveSlot is an in-flight stream's mid-run state in a capture: the
// clock/cycle scalars, the trace aggregates so far, and the sink
// accumulators — everything Step reads and writes. Rebinding the same
// Runner and overwriting its slab cells with these resumes the stream
// exactly where the batch boundary left it.
type LiveSlot struct {
	K     int32
	State sim.State
	Trace sim.Trace
	Sink  sim.SinkState
}

// OpenCapture is a deep snapshot of a paused open run: the frontier's
// event-loop cursors and admission state, the backlog ring, the exact
// departure events not yet retired, every lifecycle verdict so far, and
// the per-stream outcomes split into finished and in-flight. It aliases
// nothing in the engine, holds no pointers into any slab, and together
// with the run's configuration (streams, arrivals, admitter) determines
// the rest of the run exactly. Captures exist only for the stats
// (zero-retention) path, whose per-stream state is O(1) by design.
type OpenCapture struct {
	// Events counts the event groups processed so far — the engine's
	// checkpoint-boundary clock.
	Events int64
	// NextArrival is the cursor into the (instant, index)-ordered
	// arrival schedule.
	NextArrival int
	// InService and CPULoad are the admission controller's load inputs.
	InService int
	CPULoad   float64
	// FirstArrival, LastT and LastDep are the observation-window
	// cursors behind OpenResult.End/Final.
	FirstArrival, LastT, LastDep core.Time
	// BacklogIntegral and MaxBacklog are the backlog accounting
	// accumulated so far.
	BacklogIntegral float64
	MaxBacklog      int
	// Backlog is the FIFO ring's content, head first.
	Backlog []int32
	// Departures are the exact departures scheduled but not yet
	// retired. Order is internal heap layout; restore re-heapifies, and
	// the (t, k) pop order is the same for any layout.
	Departures []DepEntry
	// Lifecycles records every stream's verdict so far, in input order
	// over the population known at capture time.
	Lifecycles []metrics.Lifecycle
	// Done and Live are the per-stream outcomes: harvested results of
	// departed (or bind-failed) streams, and the mid-run state of
	// streams still in service.
	Done []DoneStream
	Live []LiveSlot
}

// checkpoint pauses the executor at a cycle-batch boundary, harvests
// every published completion, captures, and resumes the pool. The
// returned capture is deep: it stays valid across the rest of the run.
func (f *openFrontier) checkpoint() *OpenCapture {
	f.exec.quiesce()
	f.exec.drain(f, false)
	c := f.capture()
	f.exec.release()
	f.tr.Rec(obs.EvCheckpoint, f.lastT, obs.NoStream, obs.NoWorker, f.events)
	return c
}

// capture deep-copies the paused frontier. The executor must be
// quiescent with all completions drained: every slot is then empty or
// parked at a batch boundary, so the slab reads below race nothing.
func (f *openFrontier) capture() *OpenCapture {
	c := &OpenCapture{
		Events:       f.events,
		NextArrival:  f.ai,
		InService:    f.inServe,
		CPULoad:      f.cpuLoad,
		FirstArrival: f.res.FirstArrival,
		LastT:        f.lastT,
		LastDep:      f.lastDep,

		BacklogIntegral: f.res.BacklogIntegral,
		MaxBacklog:      f.res.MaxBacklog,
		Lifecycles:      append([]metrics.Lifecycle(nil), f.res.Lifecycles[:f.n]...),
	}
	if f.blLen > 0 {
		c.Backlog = make([]int32, f.blLen)
		for i := 0; i < f.blLen; i++ {
			c.Backlog[i] = f.backlog[(f.blHead+i)%len(f.backlog)]
		}
	}
	if len(f.dep) > 0 {
		c.Departures = make([]DepEntry, len(f.dep))
		for i, e := range f.dep {
			c.Departures[i] = DepEntry{T: e.t, K: e.k}
		}
	}
	for k := 0; k < f.n; k++ {
		if !f.final[k] {
			continue
		}
		d := DoneStream{K: int32(k), Sink: f.sc.stats[k].State()}
		if err := f.res.Streams[k].Err; err != nil {
			d.Err = err.Error()
		} else {
			d.Trace = f.sc.traces[k]
		}
		c.Done = append(c.Done, d)
	}
	a := f.arena
	for slot, n := 0, int(a.allocated.Load()); slot < n; slot++ {
		if a.status[slot].v.Load() != slotReady {
			continue
		}
		tbl, idx := a.slotTbl[slot], a.slotIdx[slot]
		c.Live = append(c.Live, LiveSlot{
			K:     a.slotStream[slot],
			State: tbl.states[idx],
			Trace: tbl.traces[idx],
			Sink:  tbl.sinks[idx].State(),
		})
	}
	return c
}

// errCorruptCapture rejects a capture whose cross-references do not fit
// the run it is being restored into — the defence behind the checksum:
// a snapshot that decodes but does not cohere must fail loudly, never
// index out of range.
func errCorruptCapture(what string) error {
	return fmt.Errorf("fleet: capture does not match the run configuration: %s", what)
}

// restore rebuilds a freshly laid-out frontier from a capture of the
// same configuration. The executor must already be attached; live
// streams are rebound into arena slots, their slab cells overwritten
// with the captured mid-run state, and handed to the executor exactly
// as a fresh admission would be. The departure bound of a live stream
// is recomputed as admission instant + minFin — identical to the value
// the uninterrupted run had — so the event gate resumes with the same
// information the serial spec's loop would hold.
func (f *openFrontier) restore(c *OpenCapture) error {
	if !f.stats {
		return errors.New("fleet: capture restore requires the stats path")
	}
	if len(c.Lifecycles) > f.n {
		return errCorruptCapture(fmt.Sprintf("%d lifecycles for %d streams", len(c.Lifecycles), f.n))
	}
	if c.NextArrival < 0 || c.NextArrival > f.n {
		return errCorruptCapture(fmt.Sprintf("arrival cursor %d out of range", c.NextArrival))
	}
	f.events = c.Events
	f.ai = c.NextArrival
	f.inServe = c.InService
	f.cpuLoad = c.CPULoad
	f.lastT = c.LastT
	f.lastDep = c.LastDep
	f.res.FirstArrival = c.FirstArrival
	f.res.BacklogIntegral = c.BacklogIntegral
	f.res.MaxBacklog = c.MaxBacklog
	copy(f.res.Lifecycles, c.Lifecycles)

	if len(f.backlog) < len(c.Backlog) {
		f.backlog = make([]int32, len(c.Backlog)+openChunkMin)
		f.sc.backlog = f.backlog
	}
	copy(f.backlog, c.Backlog)
	f.blHead, f.blLen = 0, len(c.Backlog)

	for _, d := range c.Done {
		k := int(d.K)
		if k < 0 || k >= f.n {
			return errCorruptCapture(fmt.Sprintf("finished stream %d out of range", k))
		}
		f.final[k] = true
		sr := &f.res.Streams[k]
		if d.Err != "" {
			sr.Err = errors.New(d.Err)
		} else {
			f.sc.traces[k] = d.Trace
			sr.Trace = &f.sc.traces[k]
		}
		// The sink returns to its slab window with HarvestSlot's copy
		// discipline (an empty histogram is nil, not zero-length).
		s := &f.sc.stats[k]
		base := k * f.maxLevels
		s.Init(f.sc.hist[base : base : base+f.maxLevels])
		s.RestoreState(d.Sink)
		if len(s.QualityHist) == 0 {
			s.QualityHist = nil
		}
		sr.Stats = s
	}
	for _, e := range c.Departures {
		if e.K < 0 || int(e.K) >= f.n {
			return errCorruptCapture(fmt.Sprintf("departure of stream %d out of range", e.K))
		}
		depPush(&f.dep, depEvent{t: e.T, k: e.K})
	}
	for i := range c.Live {
		e := &c.Live[i]
		k := int(e.K)
		if k < 0 || k >= f.n || f.final[k] {
			return errCorruptCapture(fmt.Sprintf("live stream %d out of range or already finished", k))
		}
		slot := f.arena.bind(&f.streams[k], k)
		if err := f.arena.err(slot); err != nil {
			return fmt.Errorf("fleet: restore: stream %d no longer binds: %w", k, err)
		}
		tbl, idx := f.arena.slotTbl[slot], f.arena.slotIdx[slot]
		tbl.states[idx] = e.State
		tbl.traces[idx] = e.Trace
		tbl.sinks[idx].RestoreState(e.Sink)
		depPush(&f.pend, depEvent{t: f.res.Lifecycles[k].Admitted + f.minFin[k], k: int32(k)})
		f.arena.status[slot].v.Store(slotReady)
		f.starts++
	}
	// One batched wake for every restored live slot — the executor sees
	// the restore exactly as one admission burst.
	f.flushStarts()
	return nil
}

// CheckpointFunc receives a capture taken at a quiescent event
// boundary. Returning an error aborts the run with that error — the
// hook by which a driver persists snapshots and by which the fault
// harness injects a crash at an exact boundary.
type CheckpointFunc func(c *OpenCapture) error

// OpenRunStatsCheckpointed is OpenRunStats with a checkpoint stream:
// after every multiple of `every` processed event groups the engine
// pauses at a cycle-batch quiescence point, captures, and hands the
// capture to fn. resume, when non-nil, restores a previous capture of
// the identical configuration first, and the run continues exactly
// where that capture cut: the completed run's traces, lifecycles and
// admission decisions are byte-identical to the uninterrupted run's at
// any (workers, batch) — the crash-safety property the checkpoint
// package builds on.
func OpenRunStatsCheckpointed(cfg OpenConfig, resume *OpenCapture, every int64, fn CheckpointFunc) (*OpenResult, error) {
	f, err := frontierForRun(&cfg, true)
	if err != nil {
		return nil, err
	}
	defer f.exec.shutdown()
	if resume != nil {
		if err := f.restore(resume); err != nil {
			return nil, err
		}
	}
	for f.step(core.TimeInf) {
		if every > 0 && fn != nil && f.events%every == 0 {
			if err := fn(f.checkpoint()); err != nil {
				return nil, err
			}
		}
	}
	f.finishRun()
	return f.res, nil
}
