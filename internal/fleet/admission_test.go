package fleet

import (
	"testing"
)

func TestAdmitterDecide(t *testing.T) {
	cases := []struct {
		name string
		adm  Admitter
		l    Load
		u    float64
		want Verdict
	}{
		{"admit-all full system", AdmitAll{}, Load{InService: 99, Backlog: 99}, 9.9, Admit},
		{"cap free", CapK{K: 2, Queue: -1}, Load{InService: 1}, 0, Admit},
		{"cap full queues", CapK{K: 2, Queue: -1}, Load{InService: 2}, 0, Delay},
		{"cap fifo no overtaking", CapK{K: 2, Queue: -1}, Load{InService: 1, Backlog: 1}, 0, Delay},
		{"cap bounded queue sheds", CapK{K: 1, Queue: 2}, Load{InService: 1, Backlog: 2}, 0, Shed},
		{"cap loss system", CapK{K: 1, Queue: 0}, Load{InService: 1}, 0, Shed},
		{"budget fits", Budget{CPU: 1, Queue: -1}, Load{CPULoad: 0.5}, 0.4, Admit},
		{"budget exact fill", Budget{CPU: 1, Queue: -1}, Load{CPULoad: 0.5}, 0.5, Admit},
		{"budget oversubscribed", Budget{CPU: 1, Queue: -1}, Load{CPULoad: 0.8}, 0.4, Delay},
		{"budget fifo", Budget{CPU: 1, Queue: -1}, Load{CPULoad: 0, Backlog: 1}, 0.1, Delay},
		{"budget bounded queue sheds", Budget{CPU: 1, Queue: 1}, Load{CPULoad: 0.9, Backlog: 1}, 0.4, Shed},
	}
	for _, c := range cases {
		if got := c.adm.Decide(c.l, c.u); got != c.want {
			t.Errorf("%s: %s.Decide(%+v, %g) = %v, want %v", c.name, c.adm.Name(), c.l, c.u, got, c.want)
		}
	}
}

func TestParseAdmitter(t *testing.T) {
	good := map[string]string{
		"":                 "admit-all",
		"all":              "admit-all",
		"cap=4":            "cap-4",
		"cap=4,queue=0":    "cap-4/queue-0",
		"cap=2, queue=16":  "cap-2/queue-16",
		"budget=1.5":       "budget-1.5",
		"budget=2,queue=8": "budget-2/queue-8",
	}
	for spec, want := range good {
		adm, err := ParseAdmitter(spec)
		if err != nil {
			t.Errorf("ParseAdmitter(%q): %v", spec, err)
			continue
		}
		if adm.Name() != want {
			t.Errorf("ParseAdmitter(%q) = %s, want %s", spec, adm.Name(), want)
		}
	}
	bad := []string{
		"capk", "cap", "cap=", "cap=0", "cap=-1", "cap=x",
		"budget=0", "budget=-2", "budget=NaN",
		"cap=1,quux=2", "cap=1,queue=-3", "cap=1,queue=x", "random",
	}
	for _, spec := range bad {
		if _, err := ParseAdmitter(spec); err == nil {
			t.Errorf("ParseAdmitter(%q) accepted", spec)
		}
	}
}
