package fleet

import (
	"reflect"
	"testing"

	"repro/internal/arrivals"
	"repro/internal/core"
	"repro/internal/multitask"
	"repro/internal/obs"
	"repro/internal/sim"
)

// skewedStreams builds an open-engine stress population: stream lengths
// vary by ~an order of magnitude (so shard/steal interleavings are
// irregular and wave stragglers would be visible), a sprinkling of
// work-conserving streams exercises the frontier's trivial departure
// bound (forced lock-step resolution), and one invalid stream exercises
// the zero-service bind-failure path under every policy.
func skewedStreams(t *testing.T, n int, baseSeed uint64) []Stream {
	t.Helper()
	streams := mixedStreams(t, n, 1, baseSeed)
	for k := range streams {
		streams[k].Runner.Cycles = 1 + (k*5)%9
		if k%6 == 5 {
			streams[k].Runner.WorkConserving = true
		}
	}
	if n > 13 {
		streams[13].Runner.Cycles = 0 // invalid: fails at bind
	}
	return streams
}

// compareOpen asserts two open results are byte-identical in everything
// the engine guarantees: stream results (traces/stats/errors),
// lifecycles, backlog accounting and admission-verdict counts.
func compareOpen(t *testing.T, label string, want, got *OpenResult) {
	t.Helper()
	if !reflect.DeepEqual(want.OpenObservations, got.OpenObservations) {
		t.Fatalf("%s: lifecycles or backlog diverged from the serial spec", label)
	}
	if want.Admitted != got.Admitted || want.Delayed != got.Delayed || want.Shed != got.Shed {
		t.Fatalf("%s: admission counts diverged: want %d/%d/%d, got %d/%d/%d", label,
			want.Admitted, want.Delayed, want.Shed, got.Admitted, got.Delayed, got.Shed)
	}
	if !reflect.DeepEqual(want.Streams, got.Streams) {
		t.Fatalf("%s: stream results diverged from the serial spec", label)
	}
}

// TestOpenContinuousMatchesSerialSpec is the continuous engine's
// acceptance property: for a stress population (streams ≫ workers,
// skewed lengths, a bind failure, work-conserving members) under every
// arrival model × admission policy, the wave-free engine reproduces the
// serial wave spec byte for byte at any (workers, batch) — with one
// scratch reused across every shape, so stale-state bugs cannot hide.
func TestOpenContinuousMatchesSerialSpec(t *testing.T) {
	const n = 36
	streams := skewedStreams(t, n, 29)
	u := multitask.Utilization(streams[0].Runner.Sys, streams[0].Runner.Sys.QMin(), streams[0].Runner.Period)
	admitters := []Admitter{
		AdmitAll{},
		CapK{K: 3, Queue: -1},
		CapK{K: 2, Queue: 2},
		Budget{CPU: 2.5 * u, Queue: -1},
		Budget{CPU: 2.5 * u, Queue: 3},
	}
	shapes := []struct{ workers, batch int }{{1, 0}, {2, 1}, {4, 32}, {8, 3}}
	scratch := NewOpenScratch()
	for model, times := range openProcesses(t, n) {
		for _, adm := range admitters {
			ref, err := OpenRunStatsSerial(OpenConfig{Streams: streams, Arrivals: times, Admit: adm, Workers: 3})
			if err != nil {
				t.Fatalf("%s/%s: %v", model, adm.Name(), err)
			}
			for _, shape := range shapes {
				got, err := OpenRunStats(OpenConfig{
					Streams:     streams,
					Arrivals:    times,
					Admit:       adm,
					Workers:     shape.workers,
					BatchCycles: shape.batch,
					Scratch:     scratch,
				})
				if err != nil {
					t.Fatalf("%s/%s: %v", model, adm.Name(), err)
				}
				label := model + "/" + adm.Name()
				compareOpen(t, label, ref, got)
			}
		}
	}
}

// TestOpenRetainedContinuousMatchesSerial covers the full-retention
// path: record-for-record identical traces between the wave spec and
// the continuous engine.
func TestOpenRetainedContinuousMatchesSerial(t *testing.T) {
	streams := skewedStreams(t, 18, 31)
	times, err := arrivals.Bursty{GapOn: 5 * core.Millisecond, MeanOn: 20 * core.Millisecond,
		MeanOff: 60 * core.Millisecond, Seed: 17}.Times(len(streams))
	if err != nil {
		t.Fatal(err)
	}
	adm := CapK{K: 3, Queue: -1}
	ref, err := OpenRunSerial(OpenConfig{Streams: streams, Arrivals: times, Admit: adm, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		got, err := OpenRun(OpenConfig{Streams: streams, Arrivals: times, Admit: adm, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		compareOpen(t, "retained", ref, got)
	}
}

// TestOpenScratchReuseAcrossConfigs reuses one scratch across runs of
// different shapes — population size, retention mode, policy, worker
// count — and checks each against a scratch-free run: nothing from an
// earlier run may leak into a later one.
func TestOpenScratchReuseAcrossConfigs(t *testing.T) {
	big := skewedStreams(t, 24, 41)
	small := mixedStreams(t, 5, 2, 43)
	u := multitask.Utilization(big[0].Runner.Sys, big[0].Runner.Sys.QMin(), big[0].Runner.Period)
	poisson, err := arrivals.Poisson{MeanGap: 10 * core.Millisecond, Seed: 23}.Times(len(big))
	if err != nil {
		t.Fatal(err)
	}
	together, err := arrivals.Fixed{}.Times(len(small))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		cfg   OpenConfig
		stats bool
	}{
		{"big-stats-cap", OpenConfig{Streams: big, Arrivals: poisson, Admit: CapK{K: 2, Queue: 1}, Workers: 2}, true},
		{"small-retain-all", OpenConfig{Streams: small, Arrivals: together, Workers: 4}, false},
		{"big-stats-budget", OpenConfig{Streams: big, Arrivals: poisson, Admit: Budget{CPU: 2 * u, Queue: -1}, Workers: 1}, true},
		{"small-stats-all", OpenConfig{Streams: small, Arrivals: together, Workers: 1}, true},
	}
	scratch := NewOpenScratch()
	for _, tc := range cases {
		run := OpenRun
		if tc.stats {
			run = OpenRunStats
		}
		want, err := run(tc.cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		cfg := tc.cfg
		cfg.Scratch = scratch
		got, err := run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		// Compare before the scratch's next run: got aliases it.
		compareOpen(t, tc.name, want, got)
	}
}

// countSink counts observed records; safe for one stream each.
type countSink struct{ n int }

func (s *countSink) Observe(sim.Record) { s.n++ }

// TestOpenScratchExportReplaced pins the export hook against scratch
// reuse: chunks retained from an earlier run must tee into the *new*
// run's export sinks, not the closure they were grown with (a run
// without export followed by one with export previously left retained
// chunks exporting nothing).
func TestOpenScratchExportReplaced(t *testing.T) {
	streams := mixedStreams(t, 6, 2, 53)
	times, err := arrivals.Fixed{}.Times(len(streams))
	if err != nil {
		t.Fatal(err)
	}
	scratch := NewOpenScratch()
	cfg := OpenConfig{Streams: streams, Arrivals: times, Workers: 2, Scratch: scratch}
	if _, err := OpenRunStats(cfg); err != nil { // grows chunks with a nil export
		t.Fatal(err)
	}
	sinks := make([]countSink, len(streams))
	cfg.Export = func(k int, _ string) sim.Sink { return &sinks[k] }
	res, err := OpenRunStats(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for k := range streams {
		if want := res.Streams[k].Stats.Records; sinks[k].n != want {
			t.Fatalf("stream %d: export sink saw %d of %d records (stale chunk export hook?)", k, sinks[k].n, want)
		}
	}
}

// TestOpenSteadyStateAllocationFree is the open-engine mirror of
// TestStreamStepAllocationFree: once the scratch is warm, a whole
// steady-state open run — arrival ordering, admission decisions, slot
// binding, execution, harvest and lifecycle bookkeeping — performs zero
// heap allocations under StatsSink at workers = 1 (the goroutine-free
// inline executor; a concurrent pool costs O(workers) allocations per
// run for its stacks, which the benchmark rows bound).
func TestOpenSteadyStateAllocationFree(t *testing.T) {
	streams := mixedStreams(t, 8, 3, 47)
	times, err := arrivals.Poisson{MeanGap: 15 * core.Millisecond, Seed: 9}.Times(len(streams))
	if err != nil {
		t.Fatal(err)
	}
	cfg := OpenConfig{
		Streams:  streams,
		Arrivals: times,
		Admit:    CapK{K: 3, Queue: -1},
		Workers:  1,
		Scratch:  NewOpenScratch(),
	}
	run := func() {
		res, err := OpenRunStats(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Admitted != len(streams) {
			t.Fatalf("admitted %d of %d", res.Admitted, len(streams))
		}
	}
	run() // warm the scratch: chunks, heaps and result slabs allocate once
	if allocs := testing.AllocsPerRun(32, run); allocs != 0 {
		t.Fatalf("steady-state open run allocates %.2f times per run, want 0", allocs)
	}

	// The metric hooks must not cost the property: the same steady
	// state with the full instrument bundle enabled stays at zero.
	cfg.Obs = obs.NewFleetMetrics(obs.NewRegistry("t"))
	run()
	if allocs := testing.AllocsPerRun(32, run); allocs != 0 {
		t.Fatalf("steady-state open run with metrics allocates %.2f times per run, want 0", allocs)
	}

	// The incremental driver inherits the contract through
	// OpenLiveConfig.Scratch: a warm feed-by-feed run — create, feed,
	// advance, state reads, close — is just as allocation-free, which is
	// what makes a cluster instance's steady state free in turn.
	sc := NewOpenScratch()
	maxLevels := 0
	for k := range streams {
		maxLevels = max(maxLevels, streams[k].Runner.Sys.NumLevels())
	}
	live := func() {
		ol := NewOpenLive(OpenLiveConfig{Admit: cfg.Admit, Workers: 1, MaxLevels: maxLevels, Scratch: sc})
		for k, s := range streams {
			if err := ol.Advance(times[k] - 1); err != nil {
				t.Fatal(err)
			}
			_ = ol.Backlog() + ol.InService()
			_ = ol.CPULoad()
			if err := ol.Feed(s, times[k]); err != nil {
				t.Fatal(err)
			}
		}
		res, err := ol.Close()
		if err != nil {
			t.Fatal(err)
		}
		if res.Admitted != len(streams) {
			t.Fatalf("admitted %d of %d", res.Admitted, len(streams))
		}
	}
	live()
	if allocs := testing.AllocsPerRun(32, live); allocs != 0 {
		t.Fatalf("steady-state live run allocates %.2f times per run, want 0", allocs)
	}
}
