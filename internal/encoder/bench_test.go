package encoder

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/frame"
)

// BenchmarkEncodeFrame measures one full frame cycle per quality level —
// the raw material of the profiler's Cav/Cwc estimates. The ns/op growth
// across sub-benchmarks is the "execution times increase with quality"
// premise of the whole paper, measured on the real substrate.
func BenchmarkEncodeFrame(b *testing.B) {
	for q := 0; q < 7; q++ {
		q := q
		b.Run(fmt.Sprintf("q%d", q), func(b *testing.B) {
			src := &frame.Source{W: 128, H: 96, Seed: 1}
			e := MustNew(src, 7)
			e.EncodeFrame(core.Level(q)) // intra frame outside the loop
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.EncodeFrame(core.Level(q))
			}
		})
	}
}

// BenchmarkActionClasses measures the three per-macroblock pipeline
// stages separately at a mid quality level.
func BenchmarkActionClasses(b *testing.B) {
	src := &frame.Source{W: 128, H: 96, Seed: 2}
	e := MustNew(src, 7)
	e.EncodeFrame(3)
	e.Exec(0, 3) // set up the next frame so ME has a reference
	for cls, idx := range map[string]int{"me": 1, "tq": 2, "vlc": 3} {
		cls, idx := cls, idx
		b.Run(cls, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e.Exec(idx, 3)
			}
		})
	}
}
