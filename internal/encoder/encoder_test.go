package encoder

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/frame"
)

// smallSource returns a 64×48 (12 MB) source to keep tests fast.
func smallSource(seed uint64) *frame.Source {
	return &frame.Source{W: 64, H: 48, Seed: seed}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(smallSource(1), 1); err == nil {
		t.Error("single level accepted")
	}
	if _, err := New(smallSource(1), 7); err != nil {
		t.Errorf("valid encoder rejected: %v", err)
	}
}

func TestActionStructureMatchesPaper(t *testing.T) {
	// CIF: 1 + 3·396 = 1,189 actions (§4.1).
	e := MustNew(frame.NewCIFSource(1), 7)
	if e.NumActions() != 1189 {
		t.Fatalf("CIF encoder has %d actions, want 1189", e.NumActions())
	}
	if e.NumMB() != 396 {
		t.Fatalf("CIF encoder has %d MBs, want 396", e.NumMB())
	}
}

func TestActionClassAndMB(t *testing.T) {
	if ActionClass(0) != ClassSetup || ActionMB(0) != -1 {
		t.Fatal("action 0 must be setup")
	}
	if ActionClass(1) != ClassMotion || ActionMB(1) != 0 {
		t.Fatal("action 1 must be me[0]")
	}
	if ActionClass(2) != ClassTransform || ActionMB(2) != 0 {
		t.Fatal("action 2 must be tq[0]")
	}
	if ActionClass(3) != ClassCode || ActionMB(3) != 0 {
		t.Fatal("action 3 must be vlc[0]")
	}
	if ActionClass(4) != ClassMotion || ActionMB(4) != 1 {
		t.Fatal("action 4 must be me[1]")
	}
}

func TestActionsDeadline(t *testing.T) {
	e := MustNew(smallSource(1), 4)
	acts := e.Actions(30 * core.Second)
	if len(acts) != e.NumActions() {
		t.Fatalf("action list length %d", len(acts))
	}
	for i := 0; i < len(acts)-1; i++ {
		if acts[i].HasDeadline() {
			t.Fatalf("interior action %d has a deadline", i)
		}
	}
	if acts[len(acts)-1].Deadline != 30*core.Second {
		t.Fatal("final action must carry the global deadline")
	}
}

func TestEncodeFrameProducesOutput(t *testing.T) {
	e := MustNew(smallSource(2), 5)
	e.EncodeFrame(2)
	st := e.Stats()
	if st.Frames != 1 {
		t.Fatalf("frames = %d", st.Frames)
	}
	if st.Bytes == 0 || st.Symbols == 0 {
		t.Fatalf("no output produced: %+v", st)
	}
	if len(st.PSNR) != 1 {
		t.Fatalf("PSNR entries = %d", len(st.PSNR))
	}
}

func TestPSNRImprovesWithQuality(t *testing.T) {
	// Encode the same content at qmin and qmax; reconstruction quality
	// must improve substantially.
	lo := MustNew(smallSource(3), 7)
	hi := MustNew(smallSource(3), 7)
	for f := 0; f < 3; f++ {
		lo.EncodeFrame(0)
		hi.EncodeFrame(6)
	}
	loPSNR := avg(lo.Stats().PSNR)
	hiPSNR := avg(hi.Stats().PSNR)
	if hiPSNR <= loPSNR+1 {
		t.Fatalf("qmax PSNR %.2f dB not clearly above qmin %.2f dB", hiPSNR, loPSNR)
	}
	if loPSNR < 10 {
		t.Fatalf("qmin reconstruction implausibly bad: %.2f dB", loPSNR)
	}
}

func TestBitrateGrowsWithQuality(t *testing.T) {
	lo := MustNew(smallSource(4), 7)
	hi := MustNew(smallSource(4), 7)
	lo.EncodeFrame(0)
	hi.EncodeFrame(6)
	if hi.Stats().Bytes <= lo.Stats().Bytes {
		t.Fatalf("qmax bytes %d not above qmin %d", hi.Stats().Bytes, lo.Stats().Bytes)
	}
}

func TestSearchOpsGrowWithQuality(t *testing.T) {
	lo := MustNew(smallSource(5), 7)
	hi := MustNew(smallSource(5), 7)
	for f := 0; f < 2; f++ { // frame 1 has a reference → real search
		lo.EncodeFrame(0)
		hi.EncodeFrame(6)
	}
	if hi.Stats().SearchOps <= lo.Stats().SearchOps {
		t.Fatalf("qmax search ops %d not above qmin %d",
			hi.Stats().SearchOps, lo.Stats().SearchOps)
	}
}

func TestInterFramesCheaperThanIntra(t *testing.T) {
	// With motion compensation, steady content costs fewer bits after
	// the first (intra) frame.
	src := &frame.Source{W: 64, H: 48, Seed: 6, ComplexityProfile: func(int) float64 { return 0.3 }}
	e := MustNew(src, 5)
	e.EncodeFrame(3)
	intra := e.Stats().Bytes
	e.EncodeFrame(3)
	inter := e.Stats().Bytes - intra
	if inter >= intra {
		t.Fatalf("inter frame (%d B) not cheaper than intra (%d B)", inter, intra)
	}
}

func TestMixedQualityWithinFrame(t *testing.T) {
	// Drive actions individually with varying quality — the manager's
	// view of the encoder. Must not panic and must produce output.
	e := MustNew(smallSource(7), 7)
	for i := 0; i < e.NumActions(); i++ {
		q := core.Level(i % 7)
		e.Exec(i, q)
	}
	if e.Stats().Frames != 1 || e.Stats().Bytes == 0 {
		t.Fatalf("mixed-quality frame failed: %+v", e.Stats())
	}
}

func TestExecPanicsOnBadLevel(t *testing.T) {
	e := MustNew(smallSource(8), 4)
	defer func() {
		if recover() == nil {
			t.Fatal("Exec with invalid level must panic")
		}
	}()
	e.Exec(0, 9)
}

func avg(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
