// Package encoder is the application-software substrate: an MPEG-like
// video encoder built from the frame, motion, dct, quant, vlc and
// bitstream packages, scheduled exactly as in the paper's experiment —
// one frame-setup action followed by three actions (motion estimation,
// transform+quantisation, entropy coding) per macroblock. For CIF input
// (396 macroblocks) that is 1 + 3·396 = 1,189 actions per frame cycle,
// the |A| reported in §4.1.
//
// Every stage's work grows with the quality level: motion search radius
// and strategy, DCT precision, quantiser fineness (which feeds the
// entropy coder more symbols). The encoder can run "live" under a real
// Quality Manager (examples/liveencoder) and is the workload profiled by
// internal/profiler to obtain Cav/Cwc tables.
package encoder

import (
	"fmt"

	"repro/internal/bitstream"
	"repro/internal/core"
	"repro/internal/dct"
	"repro/internal/frame"
	"repro/internal/motion"
	"repro/internal/quant"
	"repro/internal/vlc"
)

// ActionsPerMB is the number of pipeline actions per macroblock.
const ActionsPerMB = 3

// Action classes within a frame cycle.
const (
	ClassSetup     = "setup"
	ClassMotion    = "me"
	ClassTransform = "tq"
	ClassCode      = "vlc"
)

// Stats accumulates per-run encoder statistics.
type Stats struct {
	Frames     int
	Bytes      int
	Symbols    int
	SearchOps  int
	PSNR       []float64 // luma PSNR of each reconstructed frame
	NonzeroSum int
}

// Encoder encodes the frames of a Source as a cyclic action sequence.
type Encoder struct {
	src    *frame.Source
	levels int

	cur, ref, recon *frame.Frame
	mvs             []motion.Vector
	qblocks         [][4][64]int32
	quantizers      []*quant.Quantizer
	cb              *vlc.Codebook
	bits            *bitstream.Writer
	frameIdx        int
	stats           Stats
}

// New builds an encoder over src with the given number of quality levels.
func New(src *frame.Source, levels int) (*Encoder, error) {
	if levels < 2 {
		return nil, fmt.Errorf("encoder: need at least 2 quality levels, got %d", levels)
	}
	probe := src.Frame(0)
	e := &Encoder{
		src:        src,
		levels:     levels,
		mvs:        make([]motion.Vector, probe.NumMB()),
		qblocks:    make([][4][64]int32, probe.NumMB()),
		quantizers: make([]*quant.Quantizer, levels),
		cb:         vlc.NewDefaultCodebook(),
		bits:       bitstream.NewWriter(),
	}
	for q := 0; q < levels; q++ {
		e.quantizers[q] = quant.MustNew(q, levels)
	}
	return e, nil
}

// MustNew is New that panics on error.
func MustNew(src *frame.Source, levels int) *Encoder {
	e, err := New(src, levels)
	if err != nil {
		panic(err)
	}
	return e
}

// NumMB returns the macroblock count per frame.
func (e *Encoder) NumMB() int { return len(e.mvs) }

// NumActions returns the per-cycle action count: 1 + 3·NumMB.
func (e *Encoder) NumActions() int { return 1 + ActionsPerMB*e.NumMB() }

// Levels returns the quality level count.
func (e *Encoder) Levels() int { return e.levels }

// Stats returns the accumulated statistics.
func (e *Encoder) Stats() Stats { return e.stats }

// Bitstream returns the encoded output produced so far (flushed).
func (e *Encoder) Bitstream() []byte { return e.bits.Bytes() }

// Recon returns the current reconstruction frame: after the final action
// of a cycle it holds the decoded form of the frame just encoded (what a
// conforming decoder must reproduce). The returned frame is reused by the
// next cycle; Clone it to keep it.
func (e *Encoder) Recon() *frame.Frame { return e.recon }

// ActionClass returns the pipeline class of action i.
func ActionClass(i int) string {
	if i == 0 {
		return ClassSetup
	}
	switch (i - 1) % ActionsPerMB {
	case 0:
		return ClassMotion
	case 1:
		return ClassTransform
	default:
		return ClassCode
	}
}

// ActionMB returns the macroblock index of action i (−1 for setup).
func ActionMB(i int) int {
	if i == 0 {
		return -1
	}
	return (i - 1) / ActionsPerMB
}

// Actions builds the core action sequence for one frame cycle with a
// single global deadline on the final action, matching the experiment's
// "single global deadline".
func (e *Encoder) Actions(deadline core.Time) []core.Action {
	n := e.NumActions()
	actions := make([]core.Action, n)
	for i := 0; i < n; i++ {
		actions[i] = core.Action{
			Name:     fmt.Sprintf("%s[%d]", ActionClass(i), ActionMB(i)),
			Deadline: core.TimeInf,
		}
	}
	actions[n-1].Deadline = deadline
	return actions
}

// Exec runs action i of the current frame cycle at quality level q.
// Actions must be invoked in order 0..NumActions()−1; action 0 advances
// to the next source frame.
func (e *Encoder) Exec(i int, q core.Level) {
	if int(q) >= e.levels || q < 0 {
		panic(fmt.Sprintf("encoder: level %v outside [0,%d)", q, e.levels))
	}
	switch ActionClass(i) {
	case ClassSetup:
		e.setup()
	case ClassMotion:
		e.motionAction(ActionMB(i), int(q))
	case ClassTransform:
		e.transformAction(ActionMB(i), int(q))
	default:
		e.codeAction(ActionMB(i))
	}
	if i == e.NumActions()-1 {
		e.finishFrame()
	}
}

func (e *Encoder) setup() {
	e.cur = e.src.Frame(e.frameIdx)
	if e.recon == nil {
		e.recon = frame.MustNew(e.cur.W, e.cur.H)
	} else {
		// Previous reconstruction becomes the reference.
		e.ref, e.recon = e.recon, e.refOrNew()
	}
}

func (e *Encoder) refOrNew() *frame.Frame {
	if e.ref == nil {
		return frame.MustNew(e.cur.W, e.cur.H)
	}
	return e.ref
}

func (e *Encoder) motionAction(mb, q int) {
	if e.ref == nil {
		e.mvs[mb] = motion.Vector{}
		return
	}
	x, y := e.cur.MBOrigin(mb)
	res := motion.Estimate(e.cur, e.ref, x, y, q, e.levels)
	e.mvs[mb] = res.MV
	e.stats.SearchOps += res.Ops
}

func (e *Encoder) transformAction(mb, q int) {
	x, y := e.cur.MBOrigin(mb)
	mv := e.mvs[mb]
	qz := e.quantizers[q]
	var src, coef, deq, rec [64]int32
	for b := 0; b < 4; b++ {
		bx := x + (b%2)*8
		by := y + (b/2)*8
		// Residual against the motion-compensated reference (or flat
		// 128 intra prediction on the first frame).
		for r := 0; r < 8; r++ {
			for c := 0; c < 8; c++ {
				pred := int32(128)
				if e.ref != nil {
					pred = int32(e.ref.YAt(bx+c+mv.X, by+r+mv.Y))
				}
				src[r*8+c] = int32(e.cur.YAt(bx+c, by+r)) - pred
			}
		}
		// Higher levels use the precise float transform.
		if q >= e.levels-3 {
			dct.Forward(&src, &coef)
		} else {
			dct.ForwardInt(&src, &coef)
		}
		nz := qz.Quantize(&coef, &e.qblocks[mb][b])
		e.stats.NonzeroSum += nz
		// Reconstruction path (decoder mirror) for the next reference.
		qz.Dequantize(&e.qblocks[mb][b], &deq)
		dct.Inverse(&deq, &rec)
		for r := 0; r < 8; r++ {
			for c := 0; c < 8; c++ {
				pred := int32(128)
				if e.ref != nil {
					pred = int32(e.ref.YAt(bx+c+mv.X, by+r+mv.Y))
				}
				v := rec[r*8+c] + pred
				if v < 0 {
					v = 0
				}
				if v > 255 {
					v = 255
				}
				if bx+c < e.cur.W && by+r < e.cur.H {
					e.recon.Y[(by+r)*e.cur.W+bx+c] = uint8(v)
				}
			}
		}
	}
}

func (e *Encoder) codeAction(mb int) {
	mv := e.mvs[mb]
	e.bits.WriteSE(int32(mv.X))
	e.bits.WriteSE(int32(mv.Y))
	for b := 0; b < 4; b++ {
		pairs := vlc.RunLength(&e.qblocks[mb][b])
		e.stats.Symbols += e.cb.EncodeBlock(e.bits, pairs)
	}
}

func (e *Encoder) finishFrame() {
	if p, err := frame.PSNR(e.cur, e.recon); err == nil {
		e.stats.PSNR = append(e.stats.PSNR, p)
	}
	e.stats.Frames++
	e.stats.Bytes = e.bits.Len()
	e.frameIdx++
}

// EncodeFrame drives one whole frame cycle at a fixed quality level; a
// convenience for tests and profiling.
func (e *Encoder) EncodeFrame(q core.Level) {
	for i := 0; i < e.NumActions(); i++ {
		e.Exec(i, q)
	}
}
