package analysis

import "testing"

// testGolden runs analyzers over one golden package and reports every
// mismatch between diagnostics and `// want` markers.
func testGolden(t *testing.T, dir string, analyzers ...*Analyzer) {
	t.Helper()
	problems, err := CheckGolden(dir, analyzers...)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}

func TestNondeterminismGolden(t *testing.T) {
	testGolden(t, "testdata/src/nondet", Nondeterminism)
}

func TestNondeterminismUnscopedGolden(t *testing.T) {
	// No engine directive, not an engine package: zero findings expected.
	testGolden(t, "testdata/src/nondet/unscoped", Nondeterminism)
}

func TestRNGDisciplineGolden(t *testing.T) {
	testGolden(t, "testdata/src/rng", RNGDiscipline)
}

func TestHotPathAllocGolden(t *testing.T) {
	testGolden(t, "testdata/src/hotpath", HotPathAlloc)
}

func TestAtomicDisciplineGolden(t *testing.T) {
	testGolden(t, "testdata/src/atomicdisc", AtomicDiscipline)
}

func TestDirectivesGolden(t *testing.T) {
	testGolden(t, "testdata/src/directives", Directives)
}
