package analysis

import (
	"go/ast"
	"go/types"
)

// inspectStack walks the tree like ast.Inspect but hands the visitor
// the stack of enclosing nodes (outermost first, excluding n itself) —
// what the atomic-discipline analyzer needs to classify how a field
// selector is being used.
func inspectStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			// Visitor pruned the subtree: don't push, and tell Inspect
			// to skip children (no matching nil pop will arrive).
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// calleeFunc resolves the called function of e (an ast.CallExpr.Fun) to
// its types.Func, seeing through parentheses. Returns nil for builtins,
// conversions, and indirect calls through variables.
func calleeFunc(info *types.Info, e ast.Expr) *types.Func {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[e].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[e.Sel].(*types.Func)
		return fn
	}
	return nil
}

// pkgFunc reports whether fn is the package-level function path.name.
func pkgFunc(fn *types.Func, path, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == path && fn.Name() == name &&
		fn.Type().(*types.Signature).Recv() == nil
}

// isBuiltin reports whether the call expression invokes the named
// builtin (append, make, new, ...).
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// isRandRandPtr reports whether t is *math/rand.Rand or *math/rand/v2.Rand.
func isRandRandPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	path := n.Obj().Pkg().Path()
	return (path == "math/rand" || path == "math/rand/v2") && n.Obj().Name() == "Rand"
}

// pointerShaped reports whether values of t are represented as a single
// pointer word, so storing one in an interface never heap-allocates.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}
