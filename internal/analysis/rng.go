package analysis

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// RNGDiscipline enforces the PartitionedRNG seed contract: every RNG a
// module package constructs must be keyed through fleet.DeriveSeed /
// sim.Mix64 / a splitmix64 subsystem stream, never by ad-hoc seed
// arithmetic (seed+k collides across subsystems and silently couples
// their draws) or by the wall clock. It also flags a *rand.Rand shared
// into a goroutine: rand.Rand is not safe for concurrent use, and even
// under a mutex the interleaving would make draw order
// schedule-dependent.
var RNGDiscipline = &Analyzer{
	Name: "rngdiscipline",
	Doc:  "RNG seeds must flow from DeriveSeed/Mix64/splitmix64, and a *rand.Rand must not escape into goroutines",
	Run:  runRNGDiscipline,
}

// seededConstructors maps math/rand{,/v2} constructor names to which of
// their arguments are seeds.
var seededConstructors = map[string]bool{
	"NewSource":  true, // NewSource(seed)
	"NewPCG":     true, // NewPCG(seed1, seed2)
	"NewChaCha8": true, // NewChaCha8(seed)
}

func runRNGDiscipline(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkSeedArgs(pass, n)
			case *ast.GoStmt:
				checkGoroutineRand(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkSeedArgs inspects the seed arguments of RNG constructors and of
// the deprecated (*rand.Rand).Seed re-seeding method.
func checkSeedArgs(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.Info, call.Fun)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	path := fn.Pkg().Path()
	if path != "math/rand" && path != "math/rand/v2" {
		return
	}
	isCtor := seededConstructors[fn.Name()] && fn.Type().(*types.Signature).Recv() == nil
	isSeed := fn.Name() == "Seed" // global rand.Seed or the Rand method
	if !isCtor && !isSeed {
		return
	}
	for _, arg := range call.Args {
		checkSeedExpr(pass, arg)
	}
}

// checkSeedExpr walks one seed expression. Anything derived through an
// approved keying function is fine (the subtree is skipped); arithmetic
// on seeds outside one, or a wall-clock read, is flagged.
func checkSeedExpr(pass *Pass, seed ast.Expr) {
	ast.Inspect(seed, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := calleeFunc(pass.Info, n.Fun); fn != nil {
				if approvedSeedDerivation(fn) {
					return false // inside DeriveSeed(...) anything goes
				}
				if fn.Pkg() != nil && fn.Pkg().Path() == "time" {
					pass.Reportf(n.Pos(), "seeding an RNG from time.%s is nondeterministic; derive the seed with fleet.DeriveSeed", fn.Name())
					return false
				}
			}
		case *ast.BinaryExpr:
			if isArithmetic(n.Op) {
				pass.Reportf(n.Pos(), "raw seed arithmetic %q couples RNG streams across subsystems; key the stream with fleet.DeriveSeed or a splitmix64 subsystem key", exprString(n))
				return false
			}
		}
		return true
	})
}

// approvedSeedDerivation reports whether fn is one of the sanctioned
// seed-keying functions: fleet.DeriveSeed, the subsystem-keyed
// fleet.ForSubsystem split, sim.Mix64, or any splitmix-named helper
// (the arrivals package's sequential stream).
func approvedSeedDerivation(fn *types.Func) bool {
	switch fn.Name() {
	case "DeriveSeed", "ForSubsystem", "Mix64":
		return true
	}
	return strings.Contains(strings.ToLower(fn.Name()), "splitmix")
}

func isArithmetic(op token.Token) bool {
	switch op {
	case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
		token.AND, token.OR, token.XOR, token.SHL, token.SHR, token.AND_NOT:
		return true
	}
	return false
}

// checkGoroutineRand flags a *rand.Rand crossing into a goroutine,
// either captured by the launched closure or passed as an argument.
func checkGoroutineRand(pass *Pass, g *ast.GoStmt) {
	for _, arg := range g.Call.Args {
		if t := pass.Info.TypeOf(arg); t != nil && isRandRandPtr(t) {
			pass.Reportf(arg.Pos(), "*rand.Rand %s passed into a goroutine; draws become schedule-dependent — give each goroutine its own DeriveSeed-keyed generator", exprString(arg))
		}
	}
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		return
	}
	seen := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || seen[obj] || !isRandRandPtr(obj.Type()) {
			return true
		}
		// Declared outside the literal = captured, not a local.
		if obj.Pos() < lit.Pos() || obj.Pos() > lit.End() {
			seen[obj] = true
			pass.Reportf(id.Pos(), "*rand.Rand %s captured by a goroutine; draws become schedule-dependent — give each goroutine its own DeriveSeed-keyed generator", id.Name)
		}
		return true
	})
}

// exprString renders a (small) expression for diagnostics.
func exprString(e ast.Expr) string {
	var b bytes.Buffer
	if err := printer.Fprint(&b, token.NewFileSet(), e); err != nil {
		return "expression"
	}
	s := b.String()
	if len(s) > 40 {
		s = s[:37] + "..."
	}
	return s
}
