package analysis

import (
	"fmt"
	"regexp"
	"strings"
)

// expectation is one `// want "regex"` marker in a golden file.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// CheckGolden runs the analyzers over the golden package at dir
// (testdata/src/<name>) and compares the diagnostics against the
// package's `// want "regex"` line markers, in the style of
// golang.org/x/tools/go/analysis/analysistest:
//
//   - every unsuppressed diagnostic must match a want on its line;
//   - every want must be matched by some diagnostic;
//   - diagnostics silenced by //detlint:allow must NOT have a want —
//     a honored suppression is the absence of a finding.
//
// It returns the list of mismatches (empty = pass), so the test
// wrapper stays a two-liner and the harness itself needs no *testing.T.
func CheckGolden(dir string, analyzers ...*Analyzer) ([]string, error) {
	pkg, err := LoadDir(dir)
	if err != nil {
		return nil, err
	}
	diags, err := Run(pkg, analyzers)
	if err != nil {
		return nil, err
	}
	wants, err := parseWants(pkg)
	if err != nil {
		return nil, err
	}

	var problems []string
	for _, d := range diags {
		if d.Suppressed {
			continue
		}
		if !claimWant(wants, d) {
			problems = append(problems, fmt.Sprintf("%s:%d: unexpected diagnostic: %s: %s",
				d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message))
		}
	}
	for _, w := range wants {
		if !w.matched {
			problems = append(problems, fmt.Sprintf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.raw))
		}
	}
	return problems, nil
}

// claimWant marks and returns the first unmatched want on the
// diagnostic's line whose regexp matches the message.
func claimWant(wants []*expectation, d Diagnostic) bool {
	for _, w := range wants {
		if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
			continue
		}
		if w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// parseWants extracts the `// want "re" "re"...` markers from every
// comment of the package.
func parseWants(pkg *Package) ([]*expectation, error) {
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// Substring, not prefix: a want marker may ride at the
				// end of a detlint directive under test.
				i := strings.Index(c.Text, "// want ")
				if i < 0 {
					continue
				}
				text := c.Text[i+len("// want "):]
				pos := pkg.Fset.Position(c.Pos())
				for _, raw := range splitQuoted(text) {
					re, err := regexp.Compile(raw)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, raw, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}
	return wants, nil
}

// splitQuoted extracts the double-quoted segments of a want comment.
func splitQuoted(s string) []string {
	var out []string
	for {
		i := strings.IndexByte(s, '"')
		if i < 0 {
			return out
		}
		s = s[i+1:]
		j := strings.IndexByte(s, '"')
		if j < 0 {
			return out
		}
		out = append(out, s[:j])
		s = s[j+1:]
	}
}
