package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicDiscipline enforces the worker-shared word contract: struct
// fields annotated //detlint:atomic (the steal counters, the slot
// status words, the published-slot count) may only be touched through
// sync/atomic. Two field classes are supported:
//
//   - typed atomics (atomic.Int64 & friends, or slices/arrays of them):
//     every element access must be a method call (Load/Store/Add/Swap/
//     CompareAndSwap); copying the value or assigning over it is
//     flagged. Whole-slice header operations (make, len, reslice) are
//     legal — they manage the slab, not the shared words.
//
//   - plain integer fields: every reference must be &x.f passed to a
//     sync/atomic function; any direct read or write is flagged.
//
// Annotations bind within the declaring package (all the engine's
// shared words are unexported), so the check needs no cross-package
// facts.
var AtomicDiscipline = &Analyzer{
	Name: "atomicdiscipline",
	Doc:  "//detlint:atomic fields may only be accessed through sync/atomic operations",
	Run:  runAtomicDiscipline,
}

func runAtomicDiscipline(pass *Pass) error {
	marked := collectAtomicFields(pass)
	if len(marked) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		inspectStack(f, func(n ast.Node, stack []ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s, ok := pass.Info.Selections[sel]
			if !ok || s.Kind() != types.FieldVal {
				return true
			}
			fv, ok := s.Obj().(*types.Var)
			if !ok || !marked[fv] {
				return true
			}
			checkAtomicUse(pass, sel, fv, stack)
			return true
		})
	}
	return nil
}

// collectAtomicFields maps the package's //detlint:atomic struct fields
// to their types.Var objects.
func collectAtomicFields(pass *Pass) map[*types.Var]bool {
	marked := map[*types.Var]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if !hasDirective(field.Doc, "atomic") && !hasDirective(field.Comment, "atomic") {
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.Info.Defs[name].(*types.Var); ok {
						marked[v] = true
					}
				}
			}
			return true
		})
	}
	return marked
}

// checkAtomicUse classifies one selector reference to a marked field.
func checkAtomicUse(pass *Pass, sel *ast.SelectorExpr, fv *types.Var, stack []ast.Node) {
	if isTypedAtomic(fv.Type()) {
		// Scalar typed atomic: x.f.Method(...) only.
		if isAtomicMethodCall(pass, sel, stack) {
			return
		}
		pass.Reportf(sel.Sel.Pos(), "worker-shared field %s must be accessed through its atomic methods, not copied or reassigned", fv.Name())
		return
	}
	if elem, ok := atomicElemType(fv.Type()); ok && isTypedAtomic(elem) {
		// Slice/array of typed atomics: header ops are free; indexed
		// elements must be method calls.
		idx, ok := parentOf(stack, sel).(*ast.IndexExpr)
		if !ok {
			return
		}
		if isAtomicElemMethodCall(pass, idx, stack) {
			return
		}
		pass.Reportf(sel.Sel.Pos(), "worker-shared slot word %s[i] must be accessed through its atomic methods", fv.Name())
		return
	}
	// Plain word: only legal as &x.f handed to sync/atomic.
	if addrPassedToSyncAtomic(pass, sel, stack) {
		return
	}
	pass.Reportf(sel.Sel.Pos(), "plain access to worker-shared field %s; every read and write must go through sync/atomic", fv.Name())
}

// isTypedAtomic reports whether t is one of sync/atomic's typed values.
func isTypedAtomic(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "sync/atomic"
}

// atomicElemType unwraps one level of slice or array.
func atomicElemType(t types.Type) (types.Type, bool) {
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return u.Elem(), true
	case *types.Array:
		return u.Elem(), true
	}
	return nil, false
}

// parentOf returns the immediate parent of n on the stack (nil at the
// root). The stack is outermost-first and excludes n.
func parentOf(stack []ast.Node, n ast.Node) ast.Node {
	if len(stack) == 0 {
		return nil
	}
	return stack[len(stack)-1]
}

func grandparentOf(stack []ast.Node) ast.Node {
	if len(stack) < 2 {
		return nil
	}
	return stack[len(stack)-2]
}

// isAtomicMethodCall reports whether sel (x.f, f a typed atomic) is the
// receiver of a method call: parent is x.f.Method, grandparent the call.
func isAtomicMethodCall(pass *Pass, sel *ast.SelectorExpr, stack []ast.Node) bool {
	m, ok := parentOf(stack, sel).(*ast.SelectorExpr)
	if !ok || m.X != sel {
		return false
	}
	call, ok := grandparentOf(stack).(*ast.CallExpr)
	return ok && call.Fun == m
}

// isAtomicElemMethodCall does the same one level deeper, for x.f[i].
func isAtomicElemMethodCall(pass *Pass, idx *ast.IndexExpr, stack []ast.Node) bool {
	// stack ends ..., call?, methodSel?, idx → relative to sel it is
	// ..., call, methodSel, idx, and sel sits one deeper than idx.
	if len(stack) < 3 {
		return false
	}
	m, ok := stack[len(stack)-2].(*ast.SelectorExpr)
	if !ok || m.X != idx {
		return false
	}
	call, ok := stack[len(stack)-3].(*ast.CallExpr)
	return ok && call.Fun == m
}

// addrPassedToSyncAtomic reports whether sel appears as &x.f in an
// argument to a sync/atomic function.
func addrPassedToSyncAtomic(pass *Pass, sel *ast.SelectorExpr, stack []ast.Node) bool {
	addr, ok := parentOf(stack, sel).(*ast.UnaryExpr)
	if !ok || addr.Op != token.AND {
		return false
	}
	call, ok := grandparentOf(stack).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(pass.Info, call.Fun)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}
