// Package analysis is the repro's static-analysis framework: a
// stdlib-only reimplementation of the golang.org/x/tools/go/analysis
// API shape (Analyzer, Pass, Diagnostic) plus the detlint directive
// machinery. The container this repo grows in has no module proxy, so
// the framework is built on go/ast and go/types alone; the analyzers it
// hosts mechanically enforce the contracts the fleet engine's
// correctness rests on — determinism, seed-derived RNG streams, and
// allocation-free hot paths — at vet time instead of only at test time.
//
// Directives (all are line comments, checked by the Directives
// analyzer):
//
//	//detlint:allow <analyzer> <reason>   suppress <analyzer> on this or the next line
//	//detlint:hotpath                     function must not contain allocating constructs
//	//detlint:atomic                      struct field may only be touched via sync/atomic
//	//detlint:engine                      file opts its package into the engine contract
package analysis

import (
	"cmp"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"slices"
	"strings"
)

// An Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //detlint:allow directives.
	Name string
	// Doc is the one-line contract the analyzer enforces.
	Doc string
	// Run reports violations on pass and returns an error only for
	// analyzer-internal failures (never for findings).
	Run func(*Pass) error
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// Suppressed marks a diagnostic silenced by a matching
	// //detlint:allow directive; drivers drop these, the test harness
	// asserts on them.
	Suppressed bool
}

// A Pass hands one analyzer everything it may inspect about one
// package. The same Pkg/Info is shared across analyzers; Report is
// analyzer-specific so suppression can match on the analyzer name.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	// PkgPath is the canonical import path ("repro/internal/fleet"),
	// with any vet test-variant suffix already trimmed.
	PkgPath string
	Pkg     *types.Package
	Info    *types.Info

	dirs  *fileDirectives
	diags *[]Diagnostic
}

// Reportf records a violation at pos. Suppression by //detlint:allow is
// resolved here so every analyzer gets the escape hatch for free.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	d := Diagnostic{
		Analyzer:   p.Analyzer.Name,
		Pos:        position,
		Message:    fmt.Sprintf(format, args...),
		Suppressed: p.dirs.allows(p.Analyzer.Name, position),
	}
	*p.diags = append(*p.diags, d)
}

// IsTestFile reports whether the file holding pos is a _test.go file;
// analyzers whose contract only binds engine code skip those.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Package bundles one loaded, type-checked package for the runner —
// produced by the source loader (standalone mode, tests) or by the vet
// config path (gc export data) in cmd/detlint.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// NewInfo returns a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// Run applies the analyzers to the package and returns the diagnostics
// sorted by position. Diagnostics silenced by //detlint:allow are
// returned with Suppressed set; plain drivers drop them, the golden
// harness checks them.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	dirs := parseDirectives(pkg.Fset, pkg.Files)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			PkgPath:  TrimVariant(pkg.Path),
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			dirs:     dirs,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis %s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	slices.SortFunc(diags, func(x, y Diagnostic) int {
		if c := cmp.Compare(x.Pos.Filename, y.Pos.Filename); c != 0 {
			return c
		}
		if c := cmp.Compare(x.Pos.Line, y.Pos.Line); c != 0 {
			return c
		}
		if c := cmp.Compare(x.Pos.Column, y.Pos.Column); c != 0 {
			return c
		}
		return cmp.Compare(x.Analyzer, y.Analyzer)
	})
	return diags, nil
}

// TrimVariant strips the vet test-variant suffix from an import path:
// "repro/internal/fleet [repro/internal/fleet.test]" names the same
// package as "repro/internal/fleet" for scoping purposes.
func TrimVariant(path string) string {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		return path[:i]
	}
	return path
}
