// Package atomicdisc exercises the atomicdiscipline analyzer: fields
// annotated //detlint:atomic may only be touched through sync/atomic,
// in all three supported shapes (typed atomic scalar, slice of typed
// atomics, plain integer word).
package atomicdisc

import "sync/atomic"

type pool struct {
	// steal counts tasks claimed from sibling shards.
	//detlint:atomic
	steal atomic.Int64
	// status holds one slot word per worker.
	//detlint:atomic
	status []atomic.Int32
	// published is a pre-typed-atomics shared word.
	//detlint:atomic
	published uint64
	name      string
}

func ok(p *pool) int64 {
	p.steal.Add(1)
	p.status = make([]atomic.Int32, 8) // header op manages the slab: legal
	p.status[3].Store(2)
	atomic.AddUint64(&p.published, 1)
	p.name = "fleet" // unannotated field: unrestricted
	if atomic.LoadUint64(&p.published) > uint64(len(p.status)) {
		return 0
	}
	return p.steal.Load() + int64(p.status[0].Load())
}

func bad(p *pool) uint64 {
	_ = p.steal                  // want "field steal must be accessed through its atomic methods"
	p.status[0] = atomic.Int32{} // want "slot word status"
	p.published++                // want "plain access to worker-shared field published"
	return p.published           // want "plain access to worker-shared field published"
}

func allowed(p *pool) {
	//detlint:allow atomicdiscipline drain runs after every worker has joined
	p.published = 0
}
