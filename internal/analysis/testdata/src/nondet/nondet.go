// Package nondet exercises the nondeterminism analyzer: wall-clock
// reads, global math/rand draws, map iteration, and racing selects in
// an engine-scoped package.
//
//detlint:engine
package nondet

import (
	"math/rand"
	"time"
)

func wallClock() time.Duration {
	start := time.Now()      // want "time.Now reads the wall clock"
	return time.Since(start) // want "time.Since reads the wall clock"
}

func timers(d time.Duration) {
	time.Sleep(d) // want "time.Sleep depends on real time"
}

func pureTimeOK(d time.Duration) time.Duration {
	return d.Round(time.Millisecond) // value maths on durations is legal
}

func globalRand() int {
	return rand.Intn(10) // want "global rand.Intn draws from the process-shared stream"
}

func localRandOK() int {
	r := rand.New(rand.NewSource(1)) // construction is rngdiscipline's concern
	return r.Intn(10)
}

func mapOrder(m map[string]int) int {
	sum := 0
	for _, v := range m { // want "iteration over map m has nondeterministic order"
		sum += v
	}
	//detlint:allow nondeterminism commutative sum, order cannot reach output
	for _, v := range m {
		sum += v
	}
	return sum
}

func sliceRangeOK(s []int) int {
	t := 0
	for _, v := range s {
		t += v
	}
	return t
}

func racingSelect(a, b chan int) int {
	select { // want "select with 2 communication cases"
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

func singleCaseSelectOK(a chan int) int {
	select {
	case v := <-a:
		return v
	default:
		return 0
	}
}
