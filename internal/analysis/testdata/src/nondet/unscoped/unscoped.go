// Package unscoped has no //detlint:engine directive and is not an
// engine package, so the determinism contract does not bind it: the
// golden test expects no findings here.
package unscoped

import "time"

func WallClockIsFineHere() time.Time { return time.Now() }

func MapRangeIsFineHere(m map[string]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}
