// Package rng exercises the rngdiscipline analyzer: ad-hoc seed
// arithmetic, wall-clock seeding, and *rand.Rand values escaping into
// goroutines. Unlike nondeterminism, this contract is module-wide, so
// no //detlint:engine directive is needed.
package rng

import (
	"math/rand"
	"time"
)

// DeriveSeed mirrors fleet.DeriveSeed's shape; the analyzer approves
// seed expressions flowing through any function of this name, so the
// golden package needs no import of the real engine.
func DeriveSeed(root int64, key uint64) int64 {
	z := uint64(root) + key*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	return int64(z ^ (z >> 27))
}

func keyedOK(root int64, key uint64) *rand.Rand {
	return rand.New(rand.NewSource(DeriveSeed(root, key)))
}

func rawArithmetic(root int64, k int64) *rand.Rand {
	return rand.New(rand.NewSource(root + k)) // want "raw seed arithmetic"
}

func wallClockSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "seeding an RNG from time.UnixNano"
}

func sharedIntoGoroutine(r *rand.Rand, work chan int) {
	go func() {
		work <- r.Intn(10) // want "captured by a goroutine"
	}()
	go consume(r, work) // want "passed into a goroutine"
}

func consume(r *rand.Rand, work chan int) {
	work <- r.Intn(10)
}

func perGoroutineOK(root int64, n int, work chan int) {
	for i := 0; i < n; i++ {
		go func(key uint64) {
			r := rand.New(rand.NewSource(DeriveSeed(root, key)))
			work <- r.Intn(10)
		}(uint64(i))
	}
}

func allowedArithmetic(root int64) *rand.Rand {
	//detlint:allow rngdiscipline legacy stream layout predates DeriveSeed
	return rand.New(rand.NewSource(root * 2654435761))
}
