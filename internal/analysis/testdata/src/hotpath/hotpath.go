// Package hotpath exercises the hotpathalloc analyzer: the
// //detlint:hotpath directive opts a function into the
// zero-allocations contract, and the analyzer flags the syntactic
// allocation sources inside it.
package hotpath

import "fmt"

var sink any

//detlint:hotpath
func cleanStep(vals []int, i int) int {
	v := vals[i]
	v += i
	double := func(x int) int { return 2 * x } // no captures: legal
	return double(v)
}

//detlint:hotpath
func fmtInHotPath(q float64) {
	fmt.Println("q =", q) // want "fmt.Println in hot path allocates"
}

//detlint:hotpath
func appendInHotPath(h []int, v int) []int {
	return append(h, v) // want "append in hot path"
}

//detlint:hotpath
func makeInHotPath(n int) []int {
	return make([]int, n) // want "make in hot path allocates"
}

//detlint:hotpath
func boxArg(v int) {
	record(v) // want "interface boxing of non-pointer int"
}

//detlint:hotpath
func pointerArgOK(v *int) {
	record(v)
}

//detlint:hotpath
func boxAssign(v int) {
	sink = v // want "interface boxing of non-pointer int"
}

//detlint:hotpath
func boxReturn(v float64) any {
	return v // want "interface boxing of non-pointer float64"
}

//detlint:hotpath
func closureCapture(n int) func() int {
	return func() int { return n } // want "closure captures n in hot path"
}

//detlint:hotpath
func amortizedAppend(h []int, v int) []int {
	//detlint:allow hotpathalloc growth amortized by the slab Init preallocates
	return append(h, v)
}

// counter mimics an obs instrument: a direct pointer is the legal way
// to meter a hot path.
type counter struct{ n int64 }

func (c *counter) inc() { c.n++ }

//detlint:hotpath
func mapBackedMetricsHook(metrics map[string]*counter) {
	metrics["arrivals"].inc() // want "map access in hot path hashes per call"
}

//detlint:hotpath
func mapStoreInHotPath(seen map[int]bool, k int) {
	seen[k] = true // want "map access in hot path hashes per call"
}

//detlint:hotpath
func fmtMetricsHook(c *counter, name string) {
	c.inc()
	fmt.Printf("metric %s = %d\n", name, c.n) // want "fmt.Printf in hot path allocates"
}

//detlint:hotpath
func directInstrumentOK(c *counter, vals []int, i int) {
	_ = vals[i] // slice indexing stays legal
	c.inc()
}

//detlint:hotpath
func coldStartMapOK(metrics map[string]*counter) {
	//detlint:allow hotpathalloc one-time wiring before the steady state begins
	metrics["arrivals"].inc()
}

func record(x any) { sink = x }

// coldPathIsFree has no directive, so nothing in it is checked.
func coldPathIsFree(n int) []string {
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, fmt.Sprint(i))
	}
	return out
}
