// Package directives exercises the directives analyzer, which
// validates detlint directive syntax so a typo cannot silently
// suppress nothing.
package directives

import "sort"

//detlint:hotpath
func annotatedOK(vals []int, i int) int { return vals[i] }

func wellFormedAllowOK(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	//detlint:allow nondeterminism keys are sorted immediately below
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

//detlint:frobnicate the gears // want "unknown verb"
func unknownVerb() {}

//detlint:allow // want "allow needs an analyzer name and a reason"
func bareAllow() {}

//detlint:allow determinizm spelling counts // want "unknown analyzer"
func misspelledAnalyzer() {}

//detlint:allow nondeterminism // want "allow nondeterminism needs a reason"
func missingReason() {}
