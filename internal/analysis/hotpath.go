package analysis

import (
	"go/ast"
	"go/types"
)

// HotPathAlloc enforces the 0-allocs/op contract on functions annotated
// //detlint:hotpath (steady-state Stream.Step, StatsSink.Observe,
// DecisionPlan.Decide, the openSched claim loop, the frontier heaps).
// Inside an annotated function it flags the constructs that reach the
// heap: fmt calls, append, make/new, closures that capture variables,
// and interface boxing of non-pointer values. The check is per-function
// and syntactic by design — the allocation-count test harness
// (testing.AllocsPerRun over the annotated entry points) is the dynamic
// cross-check that catches what escapes analysis of callees would need.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "//detlint:hotpath functions must not contain fmt calls, append, make/new, capturing closures, or interface boxing",
	Run:  runHotPathAlloc,
}

func runHotPathAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hasDirective(fn.Doc, "hotpath") {
				continue
			}
			checkHotFunc(pass, fn)
		}
	}
	return nil
}

func checkHotFunc(pass *Pass, fn *ast.FuncDecl) {
	sig, _ := pass.Info.Defs[fn.Name].Type().(*types.Signature)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotCall(pass, n)
		case *ast.IndexExpr:
			checkMapAccess(pass, n)
		case *ast.FuncLit:
			checkClosureCapture(pass, fn, n)
			return false // the literal runs elsewhere; don't scan its body twice
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i < len(n.Rhs) {
					checkBoxing(pass, pass.Info.TypeOf(lhs), n.Rhs[i])
				}
			}
		case *ast.ReturnStmt:
			if sig != nil && sig.Results().Len() == len(n.Results) {
				for i, res := range n.Results {
					checkBoxing(pass, sig.Results().At(i).Type(), res)
				}
			}
		}
		return true
	})
}

// checkHotCall flags allocating calls and boxing at call boundaries.
func checkHotCall(pass *Pass, call *ast.CallExpr) {
	switch {
	case isBuiltin(pass.Info, call, "append"):
		pass.Reportf(call.Pos(), "append in hot path may grow the backing array; preallocate and reslice, or justify with //detlint:allow")
		return
	case isBuiltin(pass.Info, call, "make"), isBuiltin(pass.Info, call, "new"):
		pass.Reportf(call.Pos(), "%s in hot path allocates", exprString(call.Fun))
		return
	}
	// Conversion to an interface type boxes its operand.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			checkBoxing(pass, tv.Type, call.Args[0])
		}
		return
	}
	if fn := calleeFunc(pass.Info, call.Fun); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "fmt.%s in hot path allocates (formatting boxes its operands)", fn.Name())
		return
	}
	// Boxing of arguments into interface parameters.
	sig, ok := pass.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (i == params.Len()-1 && !sig.Variadic()):
			pt = params.At(i).Type()
		case sig.Variadic() && params.Len() > 0:
			if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok && call.Ellipsis == 0 {
				pt = s.Elem()
			}
		}
		if pt != nil {
			checkBoxing(pass, pt, arg)
		}
	}
}

// checkMapAccess flags indexing a map inside a hot function. A lookup
// hashes on every call and a store can grow the table mid-run; both
// break the steady-state cost model the annotation asserts. The
// instrument bundles in internal/obs exist precisely so hot code holds
// direct *Counter/*Gauge pointers — a map-backed metrics lookup
// (metrics[name].Inc()) on the hot path is the anti-pattern this
// rejects. Slice and array indexing pass through untouched.
func checkMapAccess(pass *Pass, idx *ast.IndexExpr) {
	t := pass.Info.TypeOf(idx.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	pass.Reportf(idx.Pos(), "map access in hot path hashes per call and may allocate; hold direct pointers (e.g. pre-registered instruments), or justify with //detlint:allow")
}

// checkBoxing flags storing a non-pointer-shaped concrete value into an
// interface-typed destination — the assignment heap-allocates the box.
func checkBoxing(pass *Pass, dst types.Type, src ast.Expr) {
	if dst == nil {
		return
	}
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return
	}
	st := pass.Info.TypeOf(src)
	if st == nil || pointerShaped(st) {
		return
	}
	if b, ok := st.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	pass.Reportf(src.Pos(), "interface boxing of non-pointer %s in hot path allocates; pass a pointer or keep the type concrete", st.String())
}

// checkClosureCapture flags function literals that capture variables of
// the enclosing function — each capture forces a heap-allocated closure
// (and usually moves the captured variable to the heap with it).
func checkClosureCapture(pass *Pass, enclosing *ast.FuncDecl, lit *ast.FuncLit) {
	seen := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || seen[obj] || obj.IsField() {
			return true
		}
		// Captured = declared in the enclosing function, outside the lit.
		if obj.Pos() >= enclosing.Pos() && obj.Pos() < lit.Pos() {
			seen[obj] = true
			pass.Reportf(lit.Pos(), "closure captures %s in hot path; captures heap-allocate the closure", id.Name)
		}
		return true
	})
}
