package analysis

import (
	"go/ast"
	"go/types"
)

// Nondeterminism enforces the engine's load-bearing invariant: a run is
// a pure function of (config, seed), so fleet traces stay byte-identical
// to the serial spec at any (workers, batch). In engine packages it
// forbids the constructs that smuggle scheduling or hashing order into
// results: wall-clock reads, the global math/rand stream, iteration
// over maps, and multi-case selects (the runtime picks a ready case
// pseudo-randomly).
var Nondeterminism = &Analyzer{
	Name: "nondeterminism",
	Doc:  "engine packages must not read wall clocks, draw from global math/rand, range over maps, or race select cases",
	Run:  runNondeterminism,
}

// forbiddenTimeFuncs are the time functions that observe or depend on
// the wall clock or timers. Pure-value helpers (time.Duration maths,
// time.Unix, Parse/Format) stay legal.
var forbiddenTimeFuncs = map[string]string{
	"Now":       "reads the wall clock",
	"Since":     "reads the wall clock",
	"Until":     "reads the wall clock",
	"Sleep":     "depends on real time",
	"Tick":      "depends on real time",
	"After":     "depends on real time",
	"AfterFunc": "depends on real time",
	"NewTimer":  "depends on real time",
	"NewTicker": "depends on real time",
}

// randConstructors are the math/rand package-level functions that build
// a generator rather than draw from the shared global one. Construction
// is rngdiscipline's concern; drawing from the global stream is a
// determinism violation because any other goroutine perturbs it.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func runNondeterminism(pass *Pass) error {
	if !pass.engineScoped() {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				// Covers both qualified uses (the Sel of time.Now) and
				// dot-imported ones.
				checkForbiddenFunc(pass, n)
			case *ast.RangeStmt:
				if t := pass.Info.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Map); ok {
						pass.Reportf(n.Pos(), "iteration over map %s has nondeterministic order; iterate sorted keys instead", exprString(n.X))
					}
				}
			case *ast.SelectStmt:
				comm := 0
				for _, c := range n.Body.List {
					if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
						comm++
					}
				}
				if comm >= 2 {
					pass.Reportf(n.Pos(), "select with %d communication cases resolves ready cases pseudo-randomly; use a deterministic priority order", comm)
				}
			}
			return true
		})
	}
	return nil
}

// checkForbiddenFunc flags uses of wall-clock time functions and of the
// global math/rand draw functions.
func checkForbiddenFunc(pass *Pass, id *ast.Ident) {
	fn, ok := pass.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Type().(*types.Signature).Recv() != nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if why, bad := forbiddenTimeFuncs[fn.Name()]; bad {
			pass.Reportf(id.Pos(), "time.%s %s; engine results must be a pure function of (config, seed)", fn.Name(), why)
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[fn.Name()] {
			pass.Reportf(id.Pos(), "global %s.%s draws from the process-shared stream; use a seed-derived generator (fleet.DeriveSeed)", fn.Pkg().Name(), fn.Name())
		}
	}
}
