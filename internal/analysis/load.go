package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"slices"
)

// listedPackage is the slice of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Error      *struct{ Err string }
}

// Load enumerates the packages matching patterns (run from dir, the
// module root) and type-checks each from source. Imports — stdlib and
// module-local alike — resolve through the compiler's source importer,
// so the loader works offline with nothing but the toolchain. This is
// cmd/detlint's standalone mode; the vet-tool mode gets its file lists
// and export data from the go command instead.
func Load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// Cgo off keeps GoFiles pure-Go so the source importer can check
	// every dependency without a C toolchain.
	cmd.Env = append(cmd.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var listed []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		listed = append(listed, p)
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			files[i] = filepath.Join(p.Dir, f)
		}
		pkg, err := CheckFiles(p.ImportPath, fset, files, imp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// goldenFset and goldenImporter are shared by every LoadDir call so the
// golden tests type-check each stdlib dependency once per process, not
// once per analyzer.
var (
	goldenFset     *token.FileSet
	goldenImporter types.Importer
)

// LoadDir parses and type-checks the single package rooted at dir — the
// golden-test entry point for analysistest packages under testdata,
// which go list refuses to enumerate. Imports resolve from source, so
// testdata packages may use the stdlib and the module's own packages.
// Not safe for concurrent use (the golden tests run sequentially).
func LoadDir(dir string) (*Package, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(matches) == 0 {
		return nil, fmt.Errorf("analysis: no Go files under %s", dir)
	}
	slices.Sort(matches)
	if goldenFset == nil {
		goldenFset = token.NewFileSet()
		goldenImporter = importer.ForCompiler(goldenFset, "source", nil)
	}
	return CheckFiles("testdata/"+filepath.Base(dir), goldenFset, matches, goldenImporter)
}

// CheckFiles parses the given files as one package and type-checks them
// with the importer.
func CheckFiles(path string, fset *token.FileSet, filenames []string, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		files = append(files, f)
	}
	return CheckParsed(path, fset, files, imp)
}

// CheckParsed type-checks already-parsed files as the package at path.
// Shared by the source loader and cmd/detlint's vet-config mode (which
// parses from a go-command-provided file list and imports from export
// data).
func CheckParsed(path string, fset *token.FileSet, files []*ast.File, imp types.Importer) (*Package, error) {
	info := NewInfo()
	conf := types.Config{
		Importer:    imp,
		FakeImportC: true,
	}
	tpkg, err := conf.Check(TrimVariant(path), fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: typecheck %s: %v", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
