package analysis

// EnginePackages are the packages bound by the determinism contract:
// everything that executes between a (config, seed) pair and the bytes
// of a trace. Packages outside the list can opt in with a
// //detlint:engine file comment.
var EnginePackages = map[string]bool{
	"repro/internal/sim":       true,
	"repro/internal/fleet":     true,
	"repro/internal/cluster":   true,
	"repro/internal/arrivals":  true,
	"repro/internal/regions":   true,
	"repro/internal/multitask": true,
	"repro/internal/metrics":   true,
	"repro/internal/obs":       true,
}

// engineScoped reports whether the pass's package is under the engine
// determinism contract — listed above, or opted in by any of its files.
func (p *Pass) engineScoped() bool {
	if EnginePackages[p.PkgPath] {
		return true
	}
	for _, f := range p.Files {
		if fileHasDirective(f, "engine") {
			return true
		}
	}
	return false
}

// All returns the detlint suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		Nondeterminism,
		RNGDiscipline,
		HotPathAlloc,
		AtomicDiscipline,
		Directives,
	}
}

// analyzerNames lists the suite members an allow directive may
// reference. A static list, not All(): runDirectives consulting the
// Directives analyzer's own name would be an initialization cycle.
var analyzerNames = map[string]bool{
	"nondeterminism":   true,
	"rngdiscipline":    true,
	"hotpathalloc":     true,
	"atomicdiscipline": true,
	"directives":       true,
}

// knownAnalyzer reports whether name is a suite member an allow
// directive may reference.
func knownAnalyzer(name string) bool {
	return analyzerNames[name]
}
