package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// prefix is the comment marker every detlint directive starts with.
const prefix = "//detlint:"

// A directive is one parsed //detlint: comment.
type directive struct {
	pos  token.Position
	verb string // "allow", "hotpath", "atomic", "engine"
	args string // raw text after the verb
}

// fileDirectives indexes a package's directives for suppression lookup
// and for the Directives validity analyzer.
type fileDirectives struct {
	all []directive
	// allow[analyzer] lists (file, line) pairs a matching diagnostic may
	// sit on: the directive's own line and the line below it, so both
	// trailing comments and own-line comments above the construct work.
	allow map[string]map[fileLine]bool
}

type fileLine struct {
	file string
	line int
}

// parseDirectives scans every comment of the files. Malformed
// directives are kept (with their raw args) so the Directives analyzer
// can flag them; suppression only honors well-formed allows.
func parseDirectives(fset *token.FileSet, files []*ast.File) *fileDirectives {
	d := &fileDirectives{allow: map[string]map[fileLine]bool{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, prefix)
				if !ok {
					continue
				}
				verb, args, _ := strings.Cut(text, " ")
				// Strip an embedded golden-test marker so testdata can
				// assert on malformed directives; no real reason ever
				// contains one.
				if i := strings.Index(args, "// want "); i >= 0 {
					args = args[:i]
				}
				dir := directive{pos: fset.Position(c.Pos()), verb: verb, args: strings.TrimSpace(args)}
				d.all = append(d.all, dir)
				if verb != "allow" {
					continue
				}
				analyzer, reason, _ := strings.Cut(dir.args, " ")
				if analyzer == "" || strings.TrimSpace(reason) == "" {
					continue // malformed; Directives flags it, nothing is suppressed
				}
				lines := d.allow[analyzer]
				if lines == nil {
					lines = map[fileLine]bool{}
					d.allow[analyzer] = lines
				}
				lines[fileLine{dir.pos.Filename, dir.pos.Line}] = true
				lines[fileLine{dir.pos.Filename, dir.pos.Line + 1}] = true
			}
		}
	}
	return d
}

// allows reports whether a diagnostic of the named analyzer at pos is
// silenced by a well-formed //detlint:allow directive.
func (d *fileDirectives) allows(analyzer string, pos token.Position) bool {
	return d.allow[analyzer][fileLine{pos.Filename, pos.Line}]
}

// hasDirective reports whether the comment group contains the given
// bare directive verb (e.g. a //detlint:hotpath line in a func doc).
func hasDirective(cg *ast.CommentGroup, verb string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if text, ok := strings.CutPrefix(c.Text, prefix); ok {
			v, _, _ := strings.Cut(text, " ")
			if v == verb {
				return true
			}
		}
	}
	return false
}

// fileHasDirective reports whether any comment in the file carries the
// verb — used for the file-scoped //detlint:engine opt-in.
func fileHasDirective(f *ast.File, verb string) bool {
	for _, cg := range f.Comments {
		if hasDirective(cg, verb) {
			return true
		}
	}
	return false
}

// Directives validates detlint directive syntax itself, so a typo in an
// escape hatch surfaces as a finding instead of silently disabling
// nothing.
var Directives = &Analyzer{
	Name: "directives",
	Doc:  "detlint directives must be well-formed: a known verb, and for allow an analyzer name plus a non-empty reason",
	Run:  runDirectives,
}

func runDirectives(pass *Pass) error {
	dirs := parseDirectives(pass.Fset, pass.Files)
	for _, d := range dirs.all {
		report := func(format string, args ...any) {
			*pass.diags = append(*pass.diags, Diagnostic{
				Analyzer: pass.Analyzer.Name,
				Pos:      d.pos,
				Message:  "detlint directive: " + fmt.Sprintf(format, args...),
			})
		}
		switch d.verb {
		case "hotpath", "atomic", "engine":
			// Bare verbs; trailing text is tolerated as commentary.
		case "allow":
			analyzer, reason, _ := strings.Cut(d.args, " ")
			switch {
			case analyzer == "":
				report("allow needs an analyzer name and a reason")
			case !knownAnalyzer(analyzer):
				report("allow names unknown analyzer %q", analyzer)
			case strings.TrimSpace(reason) == "":
				report("allow %s needs a reason", analyzer)
			}
		default:
			report("unknown verb %q", d.verb)
		}
	}
	return nil
}
