package baseline

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

func tightSystem(seed int64) *core.System {
	rng := rand.New(rand.NewSource(seed))
	return core.RandomSystem(rng, core.RandomSystemConfig{
		Actions: 40, Levels: 5, DeadlineEvery: 10, SlackNum: 3, SlackDen: 2,
	})
}

func TestSkipManagerOnSchedule(t *testing.T) {
	sys := tightSystem(1)
	m := NewSkipManager(sys, 3)
	// At t=0 the controller is on schedule and keeps the target.
	if d := m.Decide(0, 0); d.Q != 3 {
		t.Fatalf("on-schedule decision = %v", d.Q)
	}
	// Far behind: skip to qmin.
	if d := m.Decide(10, sys.LastDeadline()); d.Q != 0 {
		t.Fatalf("behind-schedule decision = %v", d.Q)
	}
}

func TestSkipManagerRecovers(t *testing.T) {
	// Skip-over must pull a behind-schedule run back by degrading.
	sys := tightSystem(2)
	trc := (&sim.Runner{
		Sys: sys, Mgr: NewSkipManager(sys, sys.QMax()),
		Exec:     sim.WorstCase{Sys: sys},
		Overhead: sim.FreeOverhead, Cycles: 2,
	}).MustRun()
	sawSkip := false
	for _, r := range trc.Records {
		if r.Q == 0 {
			sawSkip = true
			break
		}
	}
	if !sawSkip {
		t.Fatal("skip-over never skipped under worst-case load")
	}
}

func TestPIDReactsToLateness(t *testing.T) {
	sys := tightSystem(3)
	m := NewPIDManager(sys, 2, 0.5, 0.05, 0.1)
	early := m.Decide(5, 0)
	m.Reset()
	late := m.Decide(5, sys.LastDeadline())
	if late.Q >= early.Q {
		t.Fatalf("PID did not degrade under lateness: early %v late %v", early.Q, late.Q)
	}
}

func TestPIDResetClearsState(t *testing.T) {
	sys := tightSystem(4)
	m := NewPIDManager(sys, 2, 0.4, 0.1, 0)
	for i := 0; i < 10; i++ {
		m.Decide(i, sys.LastDeadline()) // accumulate integral
	}
	biased := m.Decide(10, 0)
	m.Reset()
	fresh := m.Decide(10, 0)
	if fresh.Q <= biased.Q {
		t.Fatalf("reset ineffective: fresh %v biased %v", fresh.Q, biased.Q)
	}
}

func TestBaselinesCanMissWhereMixedCannot(t *testing.T) {
	// The ablation's central claim: on tight systems under adversarial
	// load, at least one baseline misses deadlines somewhere while the
	// mixed-policy manager never does.
	baselineMissed := false
	for seed := int64(0); seed < 20; seed++ {
		sys := tightSystem(seed)
		run := func(m core.Manager) int {
			return (&sim.Runner{Sys: sys, Mgr: m, Exec: sim.WorstCase{Sys: sys},
				Overhead: sim.FreeOverhead, Cycles: 2}).MustRun().Misses
		}
		if run(NewSkipManager(sys, sys.QMax())) > 0 {
			baselineMissed = true
		}
		if run(NewPIDManager(sys, sys.QMax(), 0.5, 0.05, 0.1)) > 0 {
			baselineMissed = true
		}
		if m := run(core.NewNumericManager(sys)); m != 0 {
			t.Fatalf("seed %d: mixed policy missed %d deadlines", seed, m)
		}
	}
	if !baselineMissed {
		t.Fatal("no baseline ever missed; ablation has no contrast")
	}
}

func TestManagerNames(t *testing.T) {
	sys := tightSystem(5)
	if NewSkipManager(sys, 1).Name() != "skip-over" {
		t.Fatal("skip name")
	}
	if NewPIDManager(sys, 1, 1, 0, 0).Name() != "pid" {
		t.Fatal("pid name")
	}
}
