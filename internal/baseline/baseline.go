// Package baseline implements the related-work controllers the paper
// positions itself against (§1): open-loop constant quality, skip-over
// overload handling (Koren & Shasha), and PID feedback scheduling
// (Lu et al.). None of them offers the mixed policy's guarantee; the
// ablation benchmarks quantify the difference on the encoder workload
// (deadline misses, average quality, smoothness).
//
// Unlike the policy managers, the feedback controllers carry run-local
// state; construct a fresh instance per run.
package baseline

import (
	"math"

	"repro/internal/core"
)

// SkipManager approximates skip-over scheduling: it runs at a fixed
// target quality while on schedule and drops to qmin (the cheapest
// admissible execution — our stand-in for a skipped instance) whenever
// the run falls behind its proportional schedule. It knows nothing about
// worst cases, so deadline misses remain possible.
type SkipManager struct {
	sys    *core.System
	target core.Level
	// schedule[i] is the proportional time budget consumed before
	// action i at the target quality.
	schedule []core.Time
}

// NewSkipManager builds a skip-over controller targeting level target.
func NewSkipManager(sys *core.System, target core.Level) *SkipManager {
	n := sys.NumActions()
	d := sys.LastDeadline()
	total := sys.AvPrefix(n, target)
	schedule := make([]core.Time, n)
	for i := 0; i < n; i++ {
		if total > 0 {
			schedule[i] = core.Time(float64(sys.AvPrefix(i, target)) / float64(total) * float64(d))
		}
	}
	return &SkipManager{sys: sys, target: target, schedule: schedule}
}

// Name implements core.Manager.
func (m *SkipManager) Name() string { return "skip-over" }

// Decide implements core.Manager.
func (m *SkipManager) Decide(i int, t core.Time) core.Decision {
	q := m.target
	if t > m.schedule[i] {
		q = 0 // behind: skip (cheapest execution)
	}
	return core.Decision{Q: q, Steps: 1, Work: 2}
}

// PIDManager is a feedback scheduler in the style of Lu et al.: it
// observes the lateness error against a proportional schedule at a
// reference quality and applies a PID correction to the quality level.
// Misses remain possible ("deadline misses remain possible", §1).
type PIDManager struct {
	sys      *core.System
	ref      core.Level
	schedule []core.Time
	kp, ki   float64
	kd       float64
	integral float64
	prevErr  float64
	started  bool
}

// NewPIDManager builds a PID controller around reference level ref with
// the given gains. Positive error (late) lowers quality.
func NewPIDManager(sys *core.System, ref core.Level, kp, ki, kd float64) *PIDManager {
	n := sys.NumActions()
	d := sys.LastDeadline()
	total := sys.AvPrefix(n, ref)
	schedule := make([]core.Time, n)
	for i := 0; i < n; i++ {
		if total > 0 {
			schedule[i] = core.Time(float64(sys.AvPrefix(i, ref)) / float64(total) * float64(d))
		}
	}
	return &PIDManager{sys: sys, ref: ref, schedule: schedule, kp: kp, ki: ki, kd: kd}
}

// Name implements core.Manager.
func (m *PIDManager) Name() string { return "pid" }

// Decide implements core.Manager.
func (m *PIDManager) Decide(i int, t core.Time) core.Decision {
	// Error in units of the mean action budget: positive = late.
	n := m.sys.NumActions()
	unit := float64(m.sys.LastDeadline()) / float64(n)
	e := float64(t-m.schedule[i]) / unit
	m.integral += e
	d := 0.0
	if m.started {
		d = e - m.prevErr
	}
	m.prevErr = e
	m.started = true
	u := m.kp*e + m.ki*m.integral + m.kd*d
	q := core.Level(math.Round(float64(m.ref) - u)).Clamp(m.sys.NumLevels())
	return core.Decision{Q: q, Steps: 1, Work: 4}
}

// Reset clears the controller state for reuse in a fresh run.
func (m *PIDManager) Reset() {
	m.integral = 0
	m.prevErr = 0
	m.started = false
}
