package regions

import (
	"slices"

	"repro/internal/core"
)

// DecisionPlan is the memoized form of the symbolic decision procedure:
// for every state i it stores the finite partition of the time axis into
// slack segments on which the decision (quality level, relaxation steps,
// Work charge) is constant, together with that constant. The decision
// function t ↦ (Choose, Steps) is piecewise constant with breakpoints
// only at the tD row values and the relaxation interval borders, so the
// whole steady-state decision procedure — the Choose binary search plus
// the descending relaxation probe with its three-level slice chasing —
// collapses into one binary search over a contiguous sorted slab and a
// single indexed load of the pre-evaluated decision.
//
// The plan is an exact memo, not an approximation: every segment's entry
// is produced by running the uncached procedure at a representative
// point, and the cached and uncached managers agree on (Q, Steps, Work)
// for every time value (property-tested, including the borders). Because
// Work is constant per segment it is stored, so overhead accounting — and
// therefore traces — are byte-identical to the uncached manager's.
//
// Layout: state i's breakpoints are bounds[off[i]:off[i+1]], sorted
// ascending; its entries start at entries[int(off[i])+i] and hold one
// more element than the breakpoints (segment j is (bounds[j-1],
// bounds[j]], with open ends below the first and above the last
// breakpoint). Both slabs are contiguous across all states.
type DecisionPlan struct {
	off     []int32
	bounds  []core.Time
	entries []planEntry
}

// planEntry is one memoized decision: 12 bytes, three per cache line
// in the contiguous entries slab.
type planEntry struct {
	work  int32
	steps int32
	q     int32
}

// Decide returns the memoized decision at state i and elapsed time t:
// one binary search over the state's contiguous breakpoint row, one
// entry load. It is read-only and safe for concurrent use by any number
// of streams.
//
//detlint:hotpath
func (p *DecisionPlan) Decide(i int, t core.Time) core.Decision {
	lo, hi := p.off[i], p.off[i+1]
	b := p.bounds[lo:hi]
	// Smallest j with b[j] ≥ t selects the segment (b[j-1], b[j]].
	x, y := 0, len(b)
	for x < y {
		mid := int(uint(x+y) >> 1)
		if b[mid] >= t {
			y = mid
		} else {
			x = mid + 1
		}
	}
	e := p.entries[int(lo)+i+x]
	return core.Decision{Q: core.Level(e.q), Steps: int(e.steps), Work: int(e.work)}
}

// NumStates returns the number of states the plan covers.
func (p *DecisionPlan) NumStates() int { return len(p.off) - 1 }

// NumSegments returns the total slack-segment count across all states.
func (p *DecisionPlan) NumSegments() int { return len(p.entries) }

// MemoryBytes returns the resident size of the plan's slabs.
func (p *DecisionPlan) MemoryBytes() int {
	return len(p.off)*4 + len(p.bounds)*8 + len(p.entries)*12
}

// buildPlan memoizes the decision procedure over td (and, when rt is
// non-nil, the relaxation grant over rt) for every state. Cost is
// O(n·k·(log k + log|Q| + |ρ|)) for k breakpoints per state — paid once
// per table, off the hot path, and shared read-only by all streams.
func buildPlan(td *TDTable, rt *RelaxTables) *DecisionPlan {
	n := td.sys.NumActions()
	nq := td.nq
	p := &DecisionPlan{off: make([]int32, n+1)}
	// Per-state scratch, reused across states.
	cap0 := nq
	if rt != nil {
		cap0 += 2 * nq * len(rt.rho)
	}
	bp := make([]core.Time, 0, cap0)
	for i := 0; i < n; i++ {
		bp = bp[:0]
		for q := 0; q < nq; q++ {
			bp = appendBreakpoint(bp, td.td[i*nq+q])
			if rt != nil {
				for ri := range rt.rho {
					bp = appendBreakpoint(bp, rt.upper[q][ri][i])
					bp = appendBreakpoint(bp, rt.lower[q][ri][i])
				}
			}
		}
		slices.Sort(bp)
		bp = slices.Compact(bp)
		p.off[i+1] = p.off[i] + int32(len(bp))
		p.bounds = append(p.bounds, bp...)
		// Evaluate the uncached procedure once per segment: segment j is
		// (bp[j-1], bp[j]], represented by its right endpoint; the open
		// top segment by the first time past the last breakpoint.
		for j := 0; j <= len(bp); j++ {
			var rep core.Time
			if j < len(bp) {
				rep = bp[j]
			} else if len(bp) > 0 {
				rep = bp[len(bp)-1] + 1
			}
			q, work := td.Choose(i, rep)
			steps := 1
			if rt != nil {
				r, w2 := rt.Steps(i, rep, q)
				steps = r
				work += 2 * w2
			}
			p.entries = append(p.entries, planEntry{work: int32(work), steps: int32(steps), q: int32(q)})
		}
	}
	return p
}

// appendBreakpoint keeps v as a segment border. TimeNegInf is dropped —
// no finite time is ≤ it, so it borders no non-empty segment. TimeInf
// is kept so the plan stays exact even for (unreachable) times beyond
// every deadline.
func appendBreakpoint(bp []core.Time, v core.Time) []core.Time {
	if v <= core.TimeNegInf {
		return bp
	}
	return append(bp, v)
}

// Plan returns the table's decision plan for the pure quality-region
// decision (Steps ≡ 1), building it on first use; the built plan is
// immutable and shared read-only by every symbolic manager over this
// table.
func (t *TDTable) Plan() *DecisionPlan {
	t.planOnce.Do(func() { t.plan = buildPlan(t, nil) })
	return t.plan
}

// Plan returns the decision plan covering both the quality choice and
// the relaxation grant, building it on first use; the built plan is
// immutable and shared read-only by every relaxed manager over these
// tables.
func (rt *RelaxTables) Plan() *DecisionPlan {
	rt.planOnce.Do(func() { rt.plan = buildPlan(rt.td, rt) })
	return rt.plan
}
