package regions

import (
	"repro/internal/core"
)

// SymbolicManager is the quality-region Quality Manager of §4.1: at each
// state it picks the quality from the pre-computed tD table
// (Proposition 2), replacing the numeric manager's O(n−i) policy
// evaluation per level with a handful of table reads. It still runs
// before every action (Steps = 1).
//
// In steady state it answers from the table's DecisionPlan — the
// memoized piecewise-constant decision function, built lazily on first
// use and shared read-only across every manager (and therefore every
// fleet stream) over the same table. The memo reproduces the uncached
// probe sequence's Work exactly, so overhead accounting and traces are
// byte-identical to the uncached path (property-tested).
type SymbolicManager struct {
	tab      *TDTable
	uncached bool
}

// NewSymbolicManager builds the quality-region manager from a tD table.
func NewSymbolicManager(tab *TDTable) *SymbolicManager {
	return &SymbolicManager{tab: tab}
}

// NewSymbolicManagerUncached builds a manager that re-runs the Choose
// binary search on every call instead of consulting the decision plan:
// the executable specification the cached manager is property-tested
// against, and the baseline its speedup is benchmarked against.
func NewSymbolicManagerUncached(tab *TDTable) *SymbolicManager {
	return &SymbolicManager{tab: tab, uncached: true}
}

// Name implements core.Manager.
func (m *SymbolicManager) Name() string { return "symbolic" }

// Table exposes the underlying tD table (for diagnostics and plots).
func (m *SymbolicManager) Table() *TDTable { return m.tab }

// Decide implements core.Manager.
func (m *SymbolicManager) Decide(i int, t core.Time) core.Decision {
	if m.uncached {
		q, work := m.tab.Choose(i, t)
		return core.Decision{Q: q, Steps: 1, Work: work}
	}
	return m.tab.Plan().Decide(i, t)
}

// RelaxedManager is the control-relaxation Quality Manager of §4.1: it
// picks the quality from the tD table, then probes the relaxation tables
// for the largest r ∈ ρ whose region R^r_q contains the current state,
// and asks the executor to skip the next r−1 manager invocations
// (Decision.Steps = r). Relaxation is conservative: the skipped
// invocations would have chosen the same quality (Proposition 3), which
// the cross-manager equivalence tests verify.
//
// Like the symbolic manager it answers from a lazily built, shared
// DecisionPlan; the plan folds the quality choice and the relaxation
// grant into one lookup while preserving the uncached Work accounting.
type RelaxedManager struct {
	tab      *TDTable
	relax    *RelaxTables
	uncached bool
}

// NewRelaxedManager builds the control-relaxation manager.
func NewRelaxedManager(relax *RelaxTables) *RelaxedManager {
	return &RelaxedManager{tab: relax.TDTable(), relax: relax}
}

// NewRelaxedManagerUncached builds a manager that probes the tD and
// relaxation tables on every call instead of consulting the decision
// plan: the executable specification the cached manager is
// property-tested against, and the benchmark baseline.
func NewRelaxedManagerUncached(relax *RelaxTables) *RelaxedManager {
	return &RelaxedManager{tab: relax.TDTable(), relax: relax, uncached: true}
}

// Name implements core.Manager.
func (m *RelaxedManager) Name() string { return "relaxed" }

// Tables exposes the relaxation tables (for diagnostics and plots).
func (m *RelaxedManager) Tables() *RelaxTables { return m.relax }

// Decide implements core.Manager.
func (m *RelaxedManager) Decide(i int, t core.Time) core.Decision {
	if m.uncached {
		q, work := m.tab.Choose(i, t)
		r, w2 := m.relax.Steps(i, t, q)
		return core.Decision{Q: q, Steps: r, Work: work + 2*w2}
	}
	return m.relax.Plan().Decide(i, t)
}
