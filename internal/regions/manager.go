package regions

import (
	"repro/internal/core"
)

// SymbolicManager is the quality-region Quality Manager of §4.1: at each
// state it picks the quality by probing the pre-computed tD table from
// qmax downward (Proposition 2), replacing the numeric manager's O(n−i)
// policy evaluation per level with a single table read. It still runs
// before every action (Steps = 1).
type SymbolicManager struct {
	tab *TDTable
}

// NewSymbolicManager builds the quality-region manager from a tD table.
func NewSymbolicManager(tab *TDTable) *SymbolicManager {
	return &SymbolicManager{tab: tab}
}

// Name implements core.Manager.
func (m *SymbolicManager) Name() string { return "symbolic" }

// Table exposes the underlying tD table (for diagnostics and plots).
func (m *SymbolicManager) Table() *TDTable { return m.tab }

// Decide implements core.Manager.
func (m *SymbolicManager) Decide(i int, t core.Time) core.Decision {
	q, work := m.tab.Choose(i, t)
	return core.Decision{Q: q, Steps: 1, Work: work}
}

// RelaxedManager is the control-relaxation Quality Manager of §4.1: it
// picks the quality from the tD table, then probes the relaxation tables
// for the largest r ∈ ρ whose region R^r_q contains the current state,
// and asks the executor to skip the next r−1 manager invocations
// (Decision.Steps = r). Relaxation is conservative: the skipped
// invocations would have chosen the same quality (Proposition 3), which
// the cross-manager equivalence tests verify.
type RelaxedManager struct {
	tab   *TDTable
	relax *RelaxTables
}

// NewRelaxedManager builds the control-relaxation manager.
func NewRelaxedManager(relax *RelaxTables) *RelaxedManager {
	return &RelaxedManager{tab: relax.TDTable(), relax: relax}
}

// Name implements core.Manager.
func (m *RelaxedManager) Name() string { return "relaxed" }

// Tables exposes the relaxation tables (for diagnostics and plots).
func (m *RelaxedManager) Tables() *RelaxTables { return m.relax }

// Decide implements core.Manager.
func (m *RelaxedManager) Decide(i int, t core.Time) core.Decision {
	q, work := m.tab.Choose(i, t)
	r, w2 := m.relax.Steps(i, t, q)
	return core.Decision{Q: q, Steps: r, Work: work + 2*w2}
}
