package regions

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

// TestChooseBinaryMatchesLinear property-tests the binary-search Choose
// against the linear-scan executable specification on random systems:
// for every state, a time grid spanning each region border (the stored
// tD values ±1, plus the extremes) must yield the identical level.
func TestChooseBinaryMatchesLinear(t *testing.T) {
	cfgs := []core.RandomSystemConfig{
		{},
		{Actions: 60, Levels: 2},
		{Actions: 37, Levels: 9, DeadlineEvery: 4},
		{Actions: 13, Levels: 7, DeadlineEvery: 1, SlackNum: 3, SlackDen: 2},
	}
	for seed := int64(0); seed < 25; seed++ {
		cfg := cfgs[seed%int64(len(cfgs))]
		sys := core.RandomSystem(rand.New(rand.NewSource(seed)), cfg)
		tab := BuildTDTable(sys)
		n := sys.NumActions()
		nq := sys.NumLevels()
		for i := 0; i <= n; i++ {
			grid := make([]core.Time, 0, 3*nq+3)
			for q := 0; q < nq; q++ {
				v := tab.TD(i, core.Level(q))
				if v.IsInf() {
					continue
				}
				grid = append(grid, v-1, v, v+1)
			}
			grid = append(grid, core.TimeNegInf+1, 0, core.TimeInf)
			for _, tm := range grid {
				gotQ, gotWork := tab.Choose(i, tm)
				wantQ, _ := tab.chooseLinear(i, tm)
				if gotQ != wantQ {
					t.Fatalf("seed %d: Choose(%d, %v) = q%d, linear reference q%d",
						seed, i, tm, gotQ, wantQ)
				}
				if gotWork < 1 || gotWork > ceilLog2(nq)+1 {
					t.Fatalf("seed %d: Choose(%d, %v) spent %d probes on %d levels",
						seed, i, tm, gotWork, nq)
				}
			}
		}
	}
}

func ceilLog2(n int) int {
	b := 0
	for 1<<b < n {
		b++
	}
	return b
}

// TestChooseWorkCounted pins the Work accounting: a binary search over
// |Q| levels probes at most ⌈log2 |Q|⌉+1 entries, so on the paper-sized
// 7-level system every decision spends at most 3 probes — the per-call
// cost the overhead model converts to platform time.
func TestChooseWorkCounted(t *testing.T) {
	sys := core.RandomSystem(rand.New(rand.NewSource(42)), core.RandomSystemConfig{Actions: 50, Levels: 7})
	tab := BuildTDTable(sys)
	for i := 0; i <= sys.NumActions(); i++ {
		for _, tm := range []core.Time{0, core.Millisecond, core.TimeInf} {
			if _, work := tab.Choose(i, tm); work > 3 {
				t.Fatalf("Choose(%d, %v) spent %d probes, want ≤ 3 on 7 levels", i, tm, work)
			}
		}
	}
}
