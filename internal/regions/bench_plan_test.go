package regions

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

// benchTables builds an encoder-scale system (1,189 actions, 7 levels,
// the paper's ρ) so the Decide benchmarks see realistic row lengths and
// cache footprints.
func benchTables(b *testing.B) *RelaxTables {
	b.Helper()
	sys := core.RandomSystem(rand.New(rand.NewSource(1)), core.RandomSystemConfig{
		Actions:       1189,
		Levels:        7,
		DeadlineEvery: 12,
	})
	td := BuildTDTableParallel(sys)
	rt, err := BuildRelaxTablesParallel(td, []int{1, 10, 20, 30, 40, 50})
	if err != nil {
		b.Fatal(err)
	}
	return rt
}

// benchDecide sweeps the manager across all states at in-region times,
// the access pattern of one simulated cycle.
func benchDecide(b *testing.B, m core.Manager, rt *RelaxTables) {
	sys := rt.TDTable().Sys()
	n := sys.NumActions()
	times := make([]core.Time, n)
	for i := 0; i < n; i++ {
		if max := rt.TDTable().TD(i, 0); !max.IsInf() && max > 0 {
			times[i] = core.Time(uint64(i*2654435761) % uint64(max))
		}
	}
	m.Decide(0, 0) // build the plan outside the timed region
	b.ReportAllocs()
	b.ResetTimer()
	for k := 0; k < b.N; k++ {
		i := k % n
		sinkDecision = m.Decide(i, times[i])
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/decide")
}

var sinkDecision core.Decision // defeats dead-code elimination

// E12a — the uncached relaxed decision: Choose binary search plus the
// descending relaxation probe over three-level nested slices. This is
// the per-decision baseline the plan cache is measured against.
func BenchmarkDecideRelaxedUncached(b *testing.B) {
	rt := benchTables(b)
	benchDecide(b, NewRelaxedManagerUncached(rt), rt)
}

// E12b — the plan-cached relaxed decision: one binary search over the
// state's contiguous slack-segment row, one indexed load. The ratio to
// E12a is the decision-plan cache's isolated contribution to the fleet
// ns/action budget.
func BenchmarkDecideRelaxedCached(b *testing.B) {
	rt := benchTables(b)
	benchDecide(b, NewRelaxedManager(rt), rt)
}

// E12c/E12d — the same pair for the pure symbolic manager.
func BenchmarkDecideSymbolicUncached(b *testing.B) {
	rt := benchTables(b)
	benchDecide(b, NewSymbolicManagerUncached(rt.TDTable()), rt)
}

func BenchmarkDecideSymbolicCached(b *testing.B) {
	rt := benchTables(b)
	benchDecide(b, NewSymbolicManager(rt.TDTable()), rt)
}
