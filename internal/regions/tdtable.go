// Package regions implements the symbolic quality-management machinery of
// §3.2 and §3.3: pre-computed tD tables, quality regions R_q
// (Proposition 2), control relaxation regions R^r_q (Proposition 3), and
// the symbolic and relaxed Quality Managers built on them.
//
// The paper pre-computed the tables with a Matlab/Simulink prototype; here
// they are built natively, either by the executable-specification builder
// (O(n²) per level) or by an amortised O(n) monotonic-stack builder, which
// the tests prove equivalent.
package regions

import (
	"fmt"

	"repro/internal/core"
)

// TDTable stores tD(s_i, q) for every state i ∈ [0, n) and level q: the
// |A|·|Q| integers that characterise the quality regions (§4.1 reports
// 8,323 of them for the 1,189-action, 7-level encoder).
type TDTable struct {
	sys *core.System
	td  [][]core.Time // td[q][i], i in [0, n]
}

// Sys returns the system the table was built for.
func (t *TDTable) Sys() *core.System { return t.sys }

// TD returns the tabulated tD(s_i, q); i may equal NumActions().
func (t *TDTable) TD(i int, q core.Level) core.Time { return t.td[q][i] }

// NumEntries returns the |A|·|Q| count of stored region integers, the
// figure the paper reports in §4.1 (state n is excluded: it has no
// decision).
func (t *TDTable) NumEntries() int {
	return t.sys.NumActions() * t.sys.NumLevels()
}

// MemoryBytes returns the resident size of the table payload in bytes
// (8 bytes per integer, excluding Go slice headers).
func (t *TDTable) MemoryBytes() int {
	return t.sys.NumLevels() * (t.sys.NumActions() + 1) * 8
}

// BuildTDTable computes tD(s_i, q) for all states and levels with the
// amortised O(n·|Q|) monotonic-stack algorithm.
//
// For a fixed level q (see core/policy.go for the derivation),
//
//	tD(s_i, q) = A_q[i] + min_{k ≥ i, dl} ( c(k) − max_{i≤j≤k} h_q(j) ),
//	c(k) = D(a_k) − W[k+1].
//
// Scanning i from n−1 downward, the step function k ↦ max_{i≤j≤k} h_q(j)
// is maintained as a stack of plateau segments ordered by increasing hmax
// from the current state rightward; pushing h_q(i) absorbs every segment
// whose maximum it dominates. Each segment carries the minimum of c(k)
// over its deadline positions and the best (minimal) value of
// c − hmax over itself and all segments below it, so the global minimum
// is read off the top of the stack in O(1).
func BuildTDTable(sys *core.System) *TDTable {
	n := sys.NumActions()
	nq := sys.NumLevels()
	t := &TDTable{sys: sys, td: make([][]core.Time, nq)}

	type segment struct {
		hmax core.Time // plateau value of the running maximum
		minC core.Time // min of c(k) over deadline positions in the segment
		best core.Time // min over this segment and all segments below
	}
	// c(k) is level-independent; precompute once.
	c := make([]core.Time, n)
	for k := 0; k < n; k++ {
		if a := sys.Action(k); a.HasDeadline() {
			c[k] = a.Deadline - sys.WCPrefix(k+1, 0)
		} else {
			c[k] = core.TimeInf
		}
	}

	stack := make([]segment, 0, n)
	for q := 0; q < nq; q++ {
		col := make([]core.Time, n+1)
		col[n] = core.TimeInf
		stack = stack[:0]
		for i := n - 1; i >= 0; i-- {
			h := hq(sys, i, core.Level(q))
			minC := c[i]
			for len(stack) > 0 && stack[len(stack)-1].hmax <= h {
				top := stack[len(stack)-1]
				minC = core.MinTime(minC, top.minC)
				stack = stack[:len(stack)-1]
			}
			contrib := core.TimeInf
			if minC < core.TimeInf {
				contrib = minC - h
			}
			best := contrib
			if len(stack) > 0 {
				best = core.MinTime(best, stack[len(stack)-1].best)
			}
			stack = append(stack, segment{hmax: h, minC: minC, best: best})
			if best >= core.TimeInf {
				col[i] = core.TimeInf
			} else {
				col[i] = best + sys.AvPrefix(i, core.Level(q))
			}
		}
		t.td[q] = col
	}
	return t
}

// hq returns h_q(j) = Cwc(a_j, q) + A_q[j] − W[j+1], the per-position
// summand of the δmax maximisation.
func hq(sys *core.System, j int, q core.Level) core.Time {
	return sys.WC(j, q) + sys.AvPrefix(j, q) - sys.WCPrefix(j+1, 0)
}

// BuildTDTableReference computes the same table by calling the on-line
// evaluator for every state: an O(n²·|Q|) executable specification used
// to validate BuildTDTable.
func BuildTDTableReference(sys *core.System) *TDTable {
	n := sys.NumActions()
	nq := sys.NumLevels()
	t := &TDTable{sys: sys, td: make([][]core.Time, nq)}
	for q := 0; q < nq; q++ {
		col := make([]core.Time, n+1)
		for i := 0; i <= n; i++ {
			col[i] = sys.TD(i, core.Level(q))
		}
		t.td[q] = col
	}
	return t
}

// Interval returns the quality-region interval of Proposition 2 for state
// i and level q: (s_i, t) ∈ R_q iff lo < t ≤ hi, with lo = TimeNegInf for
// q = qmax.
func (t *TDTable) Interval(i int, q core.Level) (lo, hi core.Time) {
	hi = t.td[q][i]
	if q == t.sys.QMax() {
		return core.TimeNegInf, hi
	}
	return t.td[q+1][i], hi
}

// InRegion reports whether (s_i, t) lies in the quality region R_q.
func (t *TDTable) InRegion(i int, tm core.Time, q core.Level) bool {
	lo, hi := t.Interval(i, q)
	return lo < tm && tm <= hi
}

// Choose returns the quality the mixed policy assigns at (s_i, t):
// the maximal q with tD(s_i, q) ≥ t, or qmin if no level qualifies.
// work reports the number of table probes spent.
func (t *TDTable) Choose(i int, tm core.Time) (q core.Level, work int) {
	for q := t.sys.QMax(); q > 0; q-- {
		work++
		if t.td[q][i] >= tm {
			return q, work
		}
	}
	return 0, work + 1
}

// Validate cross-checks structural invariants of the table: monotonicity
// in both arguments (non-increasing in q, non-decreasing in i) and
// agreement of adjacent-interval borders. Returns the first violation.
func (t *TDTable) Validate() error {
	n := t.sys.NumActions()
	for q := 0; q < t.sys.NumLevels(); q++ {
		for i := 0; i <= n; i++ {
			if q > 0 && t.td[q][i] > t.td[q-1][i] {
				return fmt.Errorf("regions: tD increasing in q at i=%d q=%d", i, q)
			}
			if i > 0 && t.td[q][i] < t.td[q][i-1] {
				return fmt.Errorf("regions: tD decreasing in i at i=%d q=%d", i, q)
			}
		}
	}
	return nil
}
