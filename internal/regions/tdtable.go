// Package regions implements the symbolic quality-management machinery of
// §3.2 and §3.3: pre-computed tD tables, quality regions R_q
// (Proposition 2), control relaxation regions R^r_q (Proposition 3), and
// the symbolic and relaxed Quality Managers built on them.
//
// The paper pre-computed the tables with a Matlab/Simulink prototype; here
// they are built natively, either by the executable-specification builder
// (O(n²) per level) or by an amortised O(n) monotonic-stack builder, which
// the tests prove equivalent.
package regions

import (
	"fmt"
	"sync"

	"repro/internal/core"
)

// TDTable stores tD(s_i, q) for every state i ∈ [0, n) and level q: the
// |A|·|Q| integers that characterise the quality regions (§4.1 reports
// 8,323 of them for the 1,189-action, 7-level encoder).
//
// The payload is one contiguous slab indexed i·|Q|+q, so the |Q| entries
// a Decide probes at state i share a cache line instead of living in |Q|
// separate column slices.
type TDTable struct {
	sys *core.System
	nq  int
	td  []core.Time // td[i*nq+q], i in [0, n]

	planOnce sync.Once
	plan     *DecisionPlan // lazily memoized decision procedure; see plan.go
}

// Sys returns the system the table was built for.
func (t *TDTable) Sys() *core.System { return t.sys }

// TD returns the tabulated tD(s_i, q); i may equal NumActions().
func (t *TDTable) TD(i int, q core.Level) core.Time { return t.td[i*t.nq+int(q)] }

// newTDTable allocates the flat payload for sys (all entries zero).
func newTDTable(sys *core.System) *TDTable {
	nq := sys.NumLevels()
	return &TDTable{
		sys: sys,
		nq:  nq,
		td:  make([]core.Time, (sys.NumActions()+1)*nq),
	}
}

// NumEntries returns the |A|·|Q| count of stored region integers, the
// figure the paper reports in §4.1 (state n is excluded: it has no
// decision).
func (t *TDTable) NumEntries() int {
	return t.sys.NumActions() * t.sys.NumLevels()
}

// MemoryBytes returns the resident size of the table payload in bytes
// (8 bytes per integer, excluding Go slice headers).
func (t *TDTable) MemoryBytes() int {
	return t.sys.NumLevels() * (t.sys.NumActions() + 1) * 8
}

// BuildTDTable computes tD(s_i, q) for all states and levels with the
// amortised O(n·|Q|) monotonic-stack algorithm.
//
// For a fixed level q (see core/policy.go for the derivation),
//
//	tD(s_i, q) = A_q[i] + min_{k ≥ i, dl} ( c(k) − max_{i≤j≤k} h_q(j) ),
//	c(k) = D(a_k) − W[k+1].
//
// Scanning i from n−1 downward, the step function k ↦ max_{i≤j≤k} h_q(j)
// is maintained as a stack of plateau segments ordered by increasing hmax
// from the current state rightward; pushing h_q(i) absorbs every segment
// whose maximum it dominates. Each segment carries the minimum of c(k)
// over its deadline positions and the best (minimal) value of
// c − hmax over itself and all segments below it, so the global minimum
// is read off the top of the stack in O(1).
func BuildTDTable(sys *core.System) *TDTable {
	t := newTDTable(sys)
	c := deadlineSlack(sys)
	for q := 0; q < t.nq; q++ {
		buildLevel(sys, core.Level(q), c, t)
	}
	return t
}

// deadlineSlack precomputes the level-independent c(k) = D(a_k) − W[k+1]
// terms shared by every level's monotonic-stack pass.
func deadlineSlack(sys *core.System) []core.Time {
	n := sys.NumActions()
	c := make([]core.Time, n)
	for k := 0; k < n; k++ {
		if a := sys.Action(k); a.HasDeadline() {
			c[k] = a.Deadline - sys.WCPrefix(k+1, 0)
		} else {
			c[k] = core.TimeInf
		}
	}
	return c
}

// hq returns h_q(j) = Cwc(a_j, q) + A_q[j] − W[j+1], the per-position
// summand of the δmax maximisation.
func hq(sys *core.System, j int, q core.Level) core.Time {
	return sys.WC(j, q) + sys.AvPrefix(j, q) - sys.WCPrefix(j+1, 0)
}

// BuildTDTableReference computes the same table by calling the on-line
// evaluator for every state: an O(n²·|Q|) executable specification used
// to validate BuildTDTable.
func BuildTDTableReference(sys *core.System) *TDTable {
	t := newTDTable(sys)
	n := sys.NumActions()
	for q := 0; q < t.nq; q++ {
		for i := 0; i <= n; i++ {
			t.td[i*t.nq+q] = sys.TD(i, core.Level(q))
		}
	}
	return t
}

// Interval returns the quality-region interval of Proposition 2 for state
// i and level q: (s_i, t) ∈ R_q iff lo < t ≤ hi, with lo = TimeNegInf for
// q = qmax.
func (t *TDTable) Interval(i int, q core.Level) (lo, hi core.Time) {
	row := i * t.nq
	hi = t.td[row+int(q)]
	if q == t.sys.QMax() {
		return core.TimeNegInf, hi
	}
	return t.td[row+int(q)+1], hi
}

// InRegion reports whether (s_i, t) lies in the quality region R_q.
func (t *TDTable) InRegion(i int, tm core.Time, q core.Level) bool {
	lo, hi := t.Interval(i, q)
	return lo < tm && tm <= hi
}

// Choose returns the quality the mixed policy assigns at (s_i, t):
// the maximal q with tD(s_i, q) ≥ t, or qmin if no level qualifies.
// tD is non-increasing in q (property-tested), so the qualifying levels
// form a prefix of [0, qmax] and Choose binary-searches the contiguous
// row for its upper border in O(log |Q|) probes of one cache line.
// work reports the number of table probes spent.
func (t *TDTable) Choose(i int, tm core.Time) (q core.Level, work int) {
	row := t.td[i*t.nq : (i+1)*t.nq]
	lo, hi := 0, len(row)-1
	best := -1
	for lo <= hi {
		mid := int(uint(lo+hi) >> 1)
		work++
		if row[mid] >= tm {
			best = mid
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	if best <= 0 {
		return 0, work
	}
	return core.Level(best), work
}

// chooseLinear is the original qmax-downward linear scan, kept as the
// executable specification the binary-search Choose is property-tested
// against.
func (t *TDTable) chooseLinear(i int, tm core.Time) (q core.Level, work int) {
	for q := t.sys.QMax(); q > 0; q-- {
		work++
		if t.TD(i, q) >= tm {
			return q, work
		}
	}
	return 0, work + 1
}

// Validate cross-checks structural invariants of the table: monotonicity
// in both arguments (non-increasing in q, non-decreasing in i) and
// agreement of adjacent-interval borders. Returns the first violation.
func (t *TDTable) Validate() error {
	n := t.sys.NumActions()
	for q := 0; q < t.nq; q++ {
		for i := 0; i <= n; i++ {
			if q > 0 && t.td[i*t.nq+q] > t.td[i*t.nq+q-1] {
				return fmt.Errorf("regions: tD increasing in q at i=%d q=%d", i, q)
			}
			if i > 0 && t.td[i*t.nq+q] < t.td[(i-1)*t.nq+q] {
				return fmt.Errorf("regions: tD decreasing in i at i=%d q=%d", i, q)
			}
		}
	}
	return nil
}
