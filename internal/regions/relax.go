package regions

import (
	"fmt"
	"slices"
	"sync"

	"repro/internal/core"
)

// RelaxTables stores the control relaxation regions R^r_q of §3.3 for a
// set ρ of relaxation step counts. For each level q, step count r ∈ ρ and
// state i it stores the two interval bounds of Proposition 3:
//
//	upper[q][ri][i] = tD,r(s_i, q) = min_{i≤j≤i+r-1} tD(s_j, q) − Cwc(a_i..a_{j-1}, q)
//	lower[q][ri][i] = tD(s_{i+r-1}, q+1)            (TimeNegInf for q = qmax)
//
// so that (s_i, t) ∈ R^r_q  ⇔  lower < t ≤ upper. This is 2·|A|·|Q|·|ρ|
// integers — 99,876 for the paper's encoder (§4.1). States too close to
// the end of the cycle to relax r steps carry an empty interval
// (upper = TimeNegInf).
type RelaxTables struct {
	td    *TDTable
	rho   []int
	upper [][][]core.Time // [q][ri][i]
	lower [][][]core.Time // [q][ri][i]

	planOnce sync.Once
	plan     *DecisionPlan // lazily memoized decision procedure; see plan.go
}

// BuildRelaxTables derives the relaxation tables from a tD table and a
// relaxation-step set rho. rho is sorted ascending, deduplicated, and must
// contain 1 (R^1_q = R_q guarantees the relaxed manager always finds a
// step count). Construction is O(n·|Q|·|ρ|) using a sliding-window
// minimum (monotonic deque) per (q, r) over e_q(j) = tD(s_j, q) − Wq[j].
func BuildRelaxTables(td *TDTable, rho []int) (*RelaxTables, error) {
	if len(rho) == 0 {
		return nil, fmt.Errorf("regions: empty relaxation set")
	}
	r2 := append([]int(nil), rho...)
	slices.Sort(r2)
	uniq := r2[:0]
	for i, r := range r2 {
		if r <= 0 {
			return nil, fmt.Errorf("regions: non-positive relaxation step %d", r)
		}
		if i == 0 || r != uniq[len(uniq)-1] {
			uniq = append(uniq, r)
		}
	}
	if uniq[0] != 1 {
		return nil, fmt.Errorf("regions: relaxation set must contain 1 (R¹_q = R_q)")
	}

	sys := td.sys
	n := sys.NumActions()
	nq := sys.NumLevels()
	rt := &RelaxTables{
		td:    td,
		rho:   uniq,
		upper: make([][][]core.Time, nq),
		lower: make([][][]core.Time, nq),
	}
	for q := 0; q < nq; q++ {
		rt.upper[q] = make([][]core.Time, len(uniq))
		rt.lower[q] = make([][]core.Time, len(uniq))
		// e(j) = tD(s_j, q) − Wq[j]; window minima of e give the upper
		// bounds after adding back Wq[i].
		e := make([]core.Time, n)
		for j := 0; j < n; j++ {
			tdv := td.TD(j, core.Level(q))
			if tdv >= core.TimeInf {
				e[j] = core.TimeInf
			} else {
				e[j] = tdv - sys.WCPrefix(j, core.Level(q))
			}
		}
		for ri, r := range uniq {
			up := make([]core.Time, n)
			lo := make([]core.Time, n)
			// Monotonic deque of indices with increasing e values.
			deque := make([]int, 0, r+1)
			for j := 0; j < n; j++ {
				for len(deque) > 0 && e[deque[len(deque)-1]] >= e[j] {
					deque = deque[:len(deque)-1]
				}
				deque = append(deque, j)
				i := j - r + 1 // window [i, j] has length r
				if i < 0 {
					continue
				}
				if deque[0] < i {
					deque = deque[1:]
				}
				m := e[deque[0]]
				if m >= core.TimeInf {
					up[i] = core.TimeInf
				} else {
					up[i] = m + sys.WCPrefix(i, core.Level(q))
				}
				if q == nq-1 {
					lo[i] = core.TimeNegInf
				} else {
					lo[i] = td.TD(i+r-1, core.Level(q+1))
				}
			}
			// States that cannot accommodate r further actions carry
			// an empty interval.
			for i := n - r + 1; i < n; i++ {
				if i >= 0 {
					up[i] = core.TimeNegInf
					lo[i] = core.TimeNegInf
				}
			}
			rt.upper[q][ri] = up
			rt.lower[q][ri] = lo
		}
	}
	return rt, nil
}

// MustBuildRelaxTables is BuildRelaxTables that panics on error.
func MustBuildRelaxTables(td *TDTable, rho []int) *RelaxTables {
	rt, err := BuildRelaxTables(td, rho)
	if err != nil {
		panic(err)
	}
	return rt
}

// Rho returns the (sorted, deduplicated) relaxation-step set.
func (rt *RelaxTables) Rho() []int { return rt.rho }

// TDTable returns the quality-region table the relaxation tables extend.
func (rt *RelaxTables) TDTable() *TDTable { return rt.td }

// Interval returns the R^r_q interval bounds for state i and the ri-th
// element of ρ: (s_i, t) ∈ R^r_q ⇔ lo < t ≤ hi.
func (rt *RelaxTables) Interval(i int, q core.Level, ri int) (lo, hi core.Time) {
	return rt.lower[q][ri][i], rt.upper[q][ri][i]
}

// InRegion reports whether (s_i, t) lies in R^r_q for ρ[ri].
func (rt *RelaxTables) InRegion(i int, tm core.Time, q core.Level, ri int) bool {
	lo, hi := rt.Interval(i, q, ri)
	return lo < tm && tm <= hi
}

// Steps returns the largest r ∈ ρ such that (s_i, t) ∈ R^r_q, trying ρ in
// descending order; it always succeeds with r = 1 when q is the level the
// mixed policy chose at (s_i, t). work counts the probes spent.
func (rt *RelaxTables) Steps(i int, tm core.Time, q core.Level) (r, work int) {
	for ri := len(rt.rho) - 1; ri >= 0; ri-- {
		work++
		if rt.InRegion(i, tm, q, ri) {
			return rt.rho[ri], work
		}
	}
	// Unreachable when q = Choose(i, tm): R¹_q = R_q contains (i, tm).
	return 1, work
}

// NumEntries returns the 2·|A|·|Q|·|ρ| count of stored integers (§4.1).
func (rt *RelaxTables) NumEntries() int {
	sys := rt.td.sys
	return 2 * sys.NumActions() * sys.NumLevels() * len(rt.rho)
}

// MemoryBytes returns the resident size of the table payload in bytes.
func (rt *RelaxTables) MemoryBytes() int { return rt.NumEntries() * 8 }

// Validate checks structural invariants: R^r_q ⊆ R_q (upper bounds never
// exceed tD(s_i, q), lower bounds never fall below the R_q lower border),
// and nesting R^{r'}_q ⊆ R^r_q for r' ≥ r.
func (rt *RelaxTables) Validate() error {
	sys := rt.td.sys
	n := sys.NumActions()
	for q := 0; q < sys.NumLevels(); q++ {
		for ri, r := range rt.rho {
			for i := 0; i+r <= n; i++ {
				lo, hi := rt.Interval(i, core.Level(q), ri)
				rlo, rhi := rt.td.Interval(i, core.Level(q))
				if hi > rhi {
					return fmt.Errorf("regions: R^%d_q%d upper exceeds R_q at i=%d", r, q, i)
				}
				if lo < rlo && lo > core.TimeNegInf {
					return fmt.Errorf("regions: R^%d_q%d lower below R_q at i=%d", r, q, i)
				}
				if ri > 0 {
					plo, phi := rt.Interval(i, core.Level(q), ri-1)
					if hi > phi || (lo < plo && lo > core.TimeNegInf) {
						return fmt.Errorf("regions: R^%d_q%d not nested in R^%d at i=%d", r, q, rt.rho[ri-1], i)
					}
				}
			}
		}
	}
	return nil
}
