package regions

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

func TestBuildRelaxTablesValidation(t *testing.T) {
	sys := randSys(1, core.RandomSystemConfig{DeadlineEvery: 4})
	tab := BuildTDTable(sys)
	if _, err := BuildRelaxTables(tab, nil); err == nil {
		t.Error("empty rho accepted")
	}
	if _, err := BuildRelaxTables(tab, []int{2, 5}); err == nil {
		t.Error("rho without 1 accepted")
	}
	if _, err := BuildRelaxTables(tab, []int{1, 0}); err == nil {
		t.Error("non-positive step accepted")
	}
	rt, err := BuildRelaxTables(tab, []int{5, 1, 5, 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := rt.Rho(); len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("rho = %v, want [1 3 5]", got)
	}
}

func TestRelaxTablesEntryCountMatchesPaper(t *testing.T) {
	// §4.1: 2·|A|·|Q|·|ρ| = 2·1189·7·6 = 99,876 integers.
	sys := randSys(2, core.RandomSystemConfig{Actions: 1189, Levels: 7})
	rt := MustBuildRelaxTables(BuildTDTable(sys), []int{1, 10, 20, 30, 40, 50})
	if got := rt.NumEntries(); got != 99876 {
		t.Fatalf("entries = %d, want 99876", got)
	}
	if rt.MemoryBytes() != 99876*8 {
		t.Fatalf("memory = %d", rt.MemoryBytes())
	}
}

func TestRelaxUpperMatchesDefinition(t *testing.T) {
	// upper[q][r][i] must equal the Proposition 3 formula evaluated
	// directly: min over j ∈ [i, i+r-1] of tD(s_j, q) − Cwc(a_i..a_{j-1}, q).
	for seed := int64(0); seed < 20; seed++ {
		sys := randSys(seed, core.RandomSystemConfig{Actions: 25, DeadlineEvery: 7})
		tab := BuildTDTable(sys)
		rho := []int{1, 2, 3, 5, 8}
		rt := MustBuildRelaxTables(tab, rho)
		n := sys.NumActions()
		for q := core.Level(0); q <= sys.QMax(); q++ {
			for ri, r := range rho {
				for i := 0; i+r <= n; i++ {
					want := core.TimeInf
					for j := i; j <= i+r-1; j++ {
						v := tab.TD(j, q)
						if !v.IsInf() {
							v -= sys.WCRange(i, j-1, q)
						}
						want = core.MinTime(want, v)
					}
					_, hi := rt.Interval(i, q, ri)
					if hi != want {
						t.Fatalf("seed %d: upper[%v][r=%d][%d] = %v, want %v", seed, q, r, i, hi, want)
					}
				}
			}
		}
	}
}

func TestRelaxLowerMatchesDefinition(t *testing.T) {
	sys := randSys(30, core.RandomSystemConfig{Actions: 25, DeadlineEvery: 6})
	tab := BuildTDTable(sys)
	rho := []int{1, 4, 7}
	rt := MustBuildRelaxTables(tab, rho)
	n := sys.NumActions()
	for q := core.Level(0); q <= sys.QMax(); q++ {
		for ri, r := range rho {
			for i := 0; i+r <= n; i++ {
				lo, _ := rt.Interval(i, q, ri)
				if q == sys.QMax() {
					if lo != core.TimeNegInf {
						t.Fatalf("qmax lower bound = %v, want -inf", lo)
					}
				} else if lo != tab.TD(i+r-1, q+1) {
					t.Fatalf("lower[%v][r=%d][%d] = %v, want tD(s_%d, q+1) = %v",
						q, r, i, lo, i+r-1, tab.TD(i+r-1, q+1))
				}
			}
		}
	}
}

func TestRelaxRegionsNested(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		sys := randSys(seed, core.RandomSystemConfig{Actions: 30, DeadlineEvery: 5})
		rt := MustBuildRelaxTables(BuildTDTable(sys), []int{1, 2, 4, 8})
		if err := rt.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestRelaxRegionEmptyNearCycleEnd(t *testing.T) {
	sys := randSys(8, core.RandomSystemConfig{Actions: 10, DeadlineEvery: 3})
	rt := MustBuildRelaxTables(BuildTDTable(sys), []int{1, 4})
	n := sys.NumActions()
	for i := n - 3; i < n; i++ {
		// r = 4 does not fit after state n−4.
		if rt.InRegion(i, 0, 0, 1) || rt.InRegion(i, core.Time(1), sys.QMax(), 1) {
			t.Fatalf("state %d admitted 4-step relaxation in a %d-action cycle", i, n)
		}
	}
}

// TestProposition3Conservative is the heart of the relaxation soundness
// claim: whenever (s_i, t) ∈ R^r_q, running the next r actions at quality
// q with ANY execution-time draw bounded by Cwc keeps every intermediate
// state inside R_q — i.e. the numeric manager would have chosen q at each
// of the skipped states.
func TestProposition3Conservative(t *testing.T) {
	rho := []int{1, 2, 3, 5, 8, 13}
	for seed := int64(0); seed < 30; seed++ {
		sys := randSys(seed, core.RandomSystemConfig{Actions: 26, DeadlineEvery: 9})
		tab := BuildTDTable(sys)
		rt := MustBuildRelaxTables(tab, rho)
		num := core.NewNumericManager(sys)
		rng := rand.New(rand.NewSource(seed + 1000))
		n := sys.NumActions()

		for trial := 0; trial < 120; trial++ {
			i := rng.Intn(n)
			// Sample a time inside the chosen quality's region.
			maxT := tab.TD(i, 0)
			if maxT.IsInf() {
				maxT = sys.LastDeadline()
			}
			if maxT <= 0 {
				continue
			}
			tm := core.Time(rng.Int63n(int64(maxT)))
			q, _ := tab.Choose(i, tm)
			r, _ := rt.Steps(i, tm, q)
			if r == 1 {
				continue
			}
			// Re-execute the r relaxed steps with three adversarial
			// draws: all-zero, all-worst-case, and random ≤ Cwc.
			for mode := 0; mode < 3; mode++ {
				cur := tm
				for j := i; j < i+r; j++ {
					if d := num.Decide(j, cur); d.Q != q {
						t.Fatalf("seed %d: relaxation unsound: at (s_%d, %v) granted r=%d q=%v, but numeric picks %v at s_%d",
							seed, i, tm, r, q, d.Q, j)
					}
					var c core.Time
					switch mode {
					case 0:
						c = 0
					case 1:
						c = sys.WC(j, q)
					default:
						c = core.Time(rng.Int63n(int64(sys.WC(j, q)) + 1))
					}
					cur += c
				}
			}
		}
	}
}

func TestStepsAlwaysAtLeastOne(t *testing.T) {
	sys := randSys(77, core.RandomSystemConfig{Actions: 20, DeadlineEvery: 4})
	tab := BuildTDTable(sys)
	rt := MustBuildRelaxTables(tab, []int{1, 5, 9})
	rng := rand.New(rand.NewSource(78))
	for trial := 0; trial < 300; trial++ {
		i := rng.Intn(sys.NumActions())
		tm := core.Time(rng.Int63n(int64(2 * core.MaxTime(sys.LastDeadline(), 1))))
		q, _ := tab.Choose(i, tm)
		r, work := rt.Steps(i, tm, q)
		if r < 1 || work < 1 {
			t.Fatalf("Steps returned r=%d work=%d", r, work)
		}
		if i+r > sys.NumActions() {
			t.Fatalf("granted %d steps at state %d of %d", r, i, sys.NumActions())
		}
	}
}
