package regions

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func qsys(seed int64, a, b, c byte) *core.System {
	return core.RandomSystem(rand.New(rand.NewSource(seed)), core.RandomSystemConfig{
		Actions:       int(a%24) + 2,
		Levels:        int(b%6) + 2,
		DeadlineEvery: int(c % 6),
	})
}

// TestQuickRegionPartition: for any state and any feasible time, exactly
// one quality region contains it (Proposition 2 makes the regions a
// partition of the feasible half-plane).
func TestQuickRegionPartition(t *testing.T) {
	f := func(seed int64, a, b, c byte, stateRaw uint8, frac float64) bool {
		sys := qsys(seed, a, b, c)
		tab := BuildTDTable(sys)
		i := int(stateRaw) % sys.NumActions()
		max := tab.TD(i, 0)
		if max.IsInf() || max <= 0 {
			return true
		}
		frac = unitFrac(frac)
		tm := core.Time(frac * float64(max))
		count := 0
		for q := core.Level(0); q <= sys.QMax(); q++ {
			if tab.InRegion(i, tm, q) {
				count++
			}
		}
		return count == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRelaxationSound: a fuzzed version of Proposition 3 — any
// granted relaxation replayed under a random execution draw yields the
// same choices the numeric manager would have made.
func TestQuickRelaxationSound(t *testing.T) {
	rho := []int{1, 2, 4, 8}
	f := func(seed int64, a, b, c byte, stateRaw uint8, frac float64, execSeed int64) bool {
		sys := qsys(seed, a, b, c)
		tab := BuildTDTable(sys)
		rt := MustBuildRelaxTables(tab, rho)
		num := core.NewNumericManager(sys)
		i := int(stateRaw) % sys.NumActions()
		max := tab.TD(i, 0)
		if max.IsInf() || max <= 0 {
			return true
		}
		frac = unitFrac(frac)
		tm := core.Time(frac * float64(max))
		q, _ := tab.Choose(i, tm)
		r, _ := rt.Steps(i, tm, q)
		rng := rand.New(rand.NewSource(execSeed))
		cur := tm
		for j := i; j < i+r; j++ {
			if num.Decide(j, cur).Q != q {
				return false
			}
			wc := sys.WC(j, q)
			if wc > 0 {
				cur += core.Time(rng.Int63n(int64(wc) + 1))
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBuildersAgree: serial, parallel and reference table builders
// coincide on fuzzed systems.
func TestQuickBuildersAgree(t *testing.T) {
	f := func(seed int64, a, b, c byte) bool {
		sys := qsys(seed, a, b, c)
		s := BuildTDTable(sys)
		p := BuildTDTableParallel(sys)
		r := BuildTDTableReference(sys)
		for q := core.Level(0); q <= sys.QMax(); q++ {
			for i := 0; i <= sys.NumActions(); i++ {
				if s.TD(i, q) != p.TD(i, q) || s.TD(i, q) != r.TD(i, q) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// unitFrac maps an arbitrary fuzzed float into [0, 1), treating
// non-finite values as 0.5.
func unitFrac(f float64) float64 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0.5
	}
	f = math.Abs(f)
	return f - math.Floor(f)
}
