package regions

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestRelaxTablesSerialisationRoundTrip(t *testing.T) {
	sys := randSys(40, core.RandomSystemConfig{Actions: 22, DeadlineEvery: 6})
	tab := BuildTDTable(sys)
	rt := MustBuildRelaxTables(tab, []int{1, 3, 7})
	var buf bytes.Buffer
	n, err := rt.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	loaded, err := LoadRelaxTables(&buf, tab)
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded.Rho(); len(got) != 3 || got[2] != 7 {
		t.Fatalf("rho = %v", got)
	}
	for q := core.Level(0); q <= sys.QMax(); q++ {
		for ri := range rt.Rho() {
			for i := 0; i < sys.NumActions(); i++ {
				lo1, hi1 := rt.Interval(i, q, ri)
				lo2, hi2 := loaded.Interval(i, q, ri)
				if lo1 != lo2 || hi1 != hi2 {
					t.Fatalf("interval mismatch at q=%v ri=%d i=%d", q, ri, i)
				}
			}
		}
	}
	// The loaded tables must drive a manager identically.
	m1 := NewRelaxedManager(rt)
	m2 := NewRelaxedManager(loaded)
	for i := 0; i < sys.NumActions(); i++ {
		d1 := m1.Decide(i, 3*core.Microsecond)
		d2 := m2.Decide(i, 3*core.Microsecond)
		if d1 != d2 {
			t.Fatalf("decisions diverge at %d: %+v vs %+v", i, d1, d2)
		}
	}
}

func TestLoadRelaxTablesRejectsMismatch(t *testing.T) {
	sys := randSys(41, core.RandomSystemConfig{Actions: 22, DeadlineEvery: 6})
	other := randSys(42, core.RandomSystemConfig{Actions: 10, DeadlineEvery: 4})
	tab := BuildTDTable(sys)
	rt := MustBuildRelaxTables(tab, []int{1, 2})
	var buf bytes.Buffer
	if _, err := rt.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadRelaxTables(bytes.NewReader(buf.Bytes()), BuildTDTable(other)); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	if _, err := LoadRelaxTables(strings.NewReader("{"), tab); err == nil {
		t.Fatal("truncated JSON accepted")
	}
	// Corrupt payload shape: right dims, wrong row length.
	mangled := strings.Replace(buf.String(), `"rho":[1,2]`, `"rho":[1,2,3]`, 1)
	if _, err := LoadRelaxTables(strings.NewReader(mangled), tab); err == nil {
		t.Fatal("inconsistent rho accepted")
	}
}

// TestLoadTDTableRejectsNonMonotone: the binary-search Choose is only
// correct on q/i-monotone tables, so a corrupt or hand-edited bundle
// payload must be rejected at load time, not misdecide at run time.
func TestLoadTDTableRejectsNonMonotone(t *testing.T) {
	sys := randSys(43, core.RandomSystemConfig{Actions: 12, DeadlineEvery: 3})
	tab := BuildTDTable(sys)
	var buf bytes.Buffer
	if _, err := tab.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Sanity: the untouched payload loads.
	if _, err := LoadTDTable(bytes.NewReader(buf.Bytes()), sys); err != nil {
		t.Fatal(err)
	}
	// Swap two levels of one state: tD becomes increasing in q there.
	var j struct {
		Actions int       `json:"actions"`
		Levels  int       `json:"levels"`
		TD      [][]int64 `json:"td"`
	}
	if err := json.Unmarshal(buf.Bytes(), &j); err != nil {
		t.Fatal(err)
	}
	if j.TD[0][0] == j.TD[j.Levels-1][0] {
		j.TD[j.Levels-1][0] = j.TD[0][0] + 1
	} else {
		j.TD[0][0], j.TD[j.Levels-1][0] = j.TD[j.Levels-1][0], j.TD[0][0]
	}
	mangled, err := json.Marshal(j)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTDTable(bytes.NewReader(mangled), sys); err == nil {
		t.Fatal("non-monotone table accepted at load time")
	}
}
