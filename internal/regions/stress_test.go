package regions

import (
	"testing"

	"repro/internal/core"
)

// TestLargeSystemScaling: the table builders and managers must stay
// practical on systems an order of magnitude beyond the paper's
// (long-GOP encoders, minute-scale pipelines).
func TestLargeSystemScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("large-system stress test")
	}
	const n, levels = 50000, 10
	tt := core.NewTimingTable(n, levels)
	for i := 0; i < n; i++ {
		for q := 0; q < levels; q++ {
			av := core.Time(50+10*q+i%7) * core.Microsecond
			tt.Set(i, core.Level(q), av, av*3/2)
		}
	}
	actions := make([]core.Action, n)
	for i := range actions {
		actions[i] = core.Action{Deadline: core.TimeInf}
		if (i+1)%10000 == 0 {
			actions[i].Deadline = core.Time(i+1) * 175 * core.Microsecond
		}
	}
	sys := core.MustNewSystem(actions, tt)
	if err := sys.Feasible(); err != nil {
		t.Fatal(err)
	}
	tab := BuildTDTableParallel(sys)
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	rt, err := BuildRelaxTablesParallel(tab, []int{1, 10, 100, 1000})
	if err != nil {
		t.Fatal(err)
	}
	m := NewRelaxedManager(rt)
	// Sweep a controlled pass over the whole system.
	tm := core.Time(0)
	pending, decisions := 0, 0
	var cur core.Level
	for i := 0; i < n; i++ {
		if pending == 0 {
			d := m.Decide(i, tm)
			cur, pending = d.Q, d.Steps
			decisions++
		}
		tm += sys.Av(i, cur)
		pending--
	}
	if decisions >= n/5 {
		t.Fatalf("relaxation ineffective at scale: %d decisions for %d actions", decisions, n)
	}
	// Spot-check equivalence against the reference builder on a slice
	// of states (full reference is O(n²) — too slow here).
	for _, i := range []int{0, 1, 9999, 25000, n - 1, n} {
		for q := core.Level(0); q < levels; q += 3 {
			if tab.TD(i, q) != sys.TD(i, q) {
				t.Fatalf("fast table diverges at i=%d q=%v", i, q)
			}
		}
	}
}
