package regions

import (
	"runtime"
	"sync"

	"repro/internal/core"
)

// BuildTDTableParallel computes the same table as BuildTDTable with one
// goroutine per quality level (levels are fully independent: each runs
// its own monotonic-stack pass). For the paper-sized system the build is
// already sub-millisecond; the parallel variant exists for the large
// systems a downstream user may bring (long GOP structures, many levels)
// and is proven equivalent by tests.
func BuildTDTableParallel(sys *core.System) *TDTable {
	t := newTDTable(sys)
	c := deadlineSlack(sys)

	// Each level writes the disjoint strided entries td[i*nq+q] of the
	// shared slab, so levels may run concurrently.
	var wg sync.WaitGroup
	sem := make(chan struct{}, maxParallelism())
	for q := 0; q < t.nq; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			buildLevel(sys, core.Level(q), c, t)
		}(q)
	}
	wg.Wait()
	return t
}

// buildLevel runs the monotonic-stack pass for one level (the body of
// BuildTDTable's per-level loop, shared by the serial and parallel
// builders), writing the level's strided column of t's flat payload.
func buildLevel(sys *core.System, q core.Level, c []core.Time, t *TDTable) {
	n := sys.NumActions()
	nq := t.nq
	type segment struct {
		hmax core.Time
		minC core.Time
		best core.Time
	}
	t.td[n*nq+int(q)] = core.TimeInf
	stack := make([]segment, 0, 64)
	for i := n - 1; i >= 0; i-- {
		h := hq(sys, i, q)
		minC := c[i]
		for len(stack) > 0 && stack[len(stack)-1].hmax <= h {
			top := stack[len(stack)-1]
			minC = core.MinTime(minC, top.minC)
			stack = stack[:len(stack)-1]
		}
		contrib := core.TimeInf
		if minC < core.TimeInf {
			contrib = minC - h
		}
		best := contrib
		if len(stack) > 0 {
			best = core.MinTime(best, stack[len(stack)-1].best)
		}
		stack = append(stack, segment{hmax: h, minC: minC, best: best})
		if best >= core.TimeInf {
			t.td[i*nq+int(q)] = core.TimeInf
		} else {
			t.td[i*nq+int(q)] = best + sys.AvPrefix(i, q)
		}
	}
}

// BuildRelaxTablesParallel computes the same tables as BuildRelaxTables
// with the (level, r) sliding-window passes distributed over a bounded
// worker pool.
func BuildRelaxTablesParallel(td *TDTable, rho []int) (*RelaxTables, error) {
	// Reuse the serial constructor for validation and layout, then
	// recompute the heavy payload concurrently. The serial pass is the
	// executable specification; tests pin equivalence.
	rt, err := BuildRelaxTables(td, rho)
	if err != nil {
		return nil, err
	}
	sys := td.sys
	nq := sys.NumLevels()

	type job struct{ q, ri int }
	jobs := make(chan job)
	var wg sync.WaitGroup
	workers := maxParallelism()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				fillRelaxRow(rt, j.q, j.ri)
			}
		}()
	}
	for q := 0; q < nq; q++ {
		for ri := range rt.rho {
			jobs <- job{q, ri}
		}
	}
	close(jobs)
	wg.Wait()
	return rt, nil
}

// fillRelaxRow recomputes upper/lower for one (level, rho-index) pair.
// It writes only its own rows, so rows may be filled concurrently.
func fillRelaxRow(rt *RelaxTables, q, ri int) {
	sys := rt.td.sys
	n := sys.NumActions()
	nq := sys.NumLevels()
	r := rt.rho[ri]
	up := rt.upper[q][ri]
	lo := rt.lower[q][ri]
	deque := make([]int, 0, r+1)
	e := func(j int) core.Time {
		tdv := rt.td.TD(j, core.Level(q))
		if tdv >= core.TimeInf {
			return core.TimeInf
		}
		return tdv - sys.WCPrefix(j, core.Level(q))
	}
	for j := 0; j < n; j++ {
		for len(deque) > 0 && e(deque[len(deque)-1]) >= e(j) {
			deque = deque[:len(deque)-1]
		}
		deque = append(deque, j)
		i := j - r + 1
		if i < 0 {
			continue
		}
		if deque[0] < i {
			deque = deque[1:]
		}
		if m := e(deque[0]); m >= core.TimeInf {
			up[i] = core.TimeInf
		} else {
			up[i] = m + sys.WCPrefix(i, core.Level(q))
		}
		if q == nq-1 {
			lo[i] = core.TimeNegInf
		} else {
			lo[i] = rt.td.TD(i+r-1, core.Level(q+1))
		}
	}
	for i := n - r + 1; i < n; i++ {
		if i >= 0 {
			up[i] = core.TimeNegInf
			lo[i] = core.TimeNegInf
		}
	}
}

func maxParallelism() int {
	p := runtime.GOMAXPROCS(0)
	if p < 1 {
		return 1
	}
	return p
}
