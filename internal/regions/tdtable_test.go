package regions

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
)

func randSys(seed int64, cfg core.RandomSystemConfig) *core.System {
	return core.RandomSystem(rand.New(rand.NewSource(seed)), cfg)
}

func TestBuildTDTableMatchesReference(t *testing.T) {
	// The O(n) monotonic-stack builder must agree entry-for-entry with
	// the executable specification across many random systems,
	// including ones with dense and sparse deadlines.
	for seed := int64(0); seed < 40; seed++ {
		cfg := core.RandomSystemConfig{Actions: 30}
		if seed%3 == 1 {
			cfg.DeadlineEvery = 4
		}
		if seed%3 == 2 {
			cfg.DeadlineEvery = 1
		}
		sys := randSys(seed, cfg)
		fast := BuildTDTable(sys)
		ref := BuildTDTableReference(sys)
		for q := core.Level(0); q <= sys.QMax(); q++ {
			for i := 0; i <= sys.NumActions(); i++ {
				if fast.TD(i, q) != ref.TD(i, q) {
					t.Fatalf("seed %d: tD[%v][%d]: fast %v, ref %v",
						seed, q, i, fast.TD(i, q), ref.TD(i, q))
				}
			}
		}
	}
}

func TestTDTableValidate(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		sys := randSys(seed, core.RandomSystemConfig{DeadlineEvery: 5})
		if err := BuildTDTable(sys).Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestTDTableEntryCountMatchesPaper(t *testing.T) {
	// §4.1: |A|·|Q| = 1189·7 = 8,323 integers for the encoder system.
	sys := randSys(1, core.RandomSystemConfig{Actions: 1189, Levels: 7})
	tab := BuildTDTable(sys)
	if got := tab.NumEntries(); got != 8323 {
		t.Fatalf("entries = %d, want 8323", got)
	}
	if tab.MemoryBytes() < 8323*8 {
		t.Fatalf("memory %d below payload size", tab.MemoryBytes())
	}
}

func TestProposition2(t *testing.T) {
	// Γ(s_i, t) = q  ⇔  t ∈ ( tD(s_i, q+1), tD(s_i, q) ]  (q < qmax)
	//             ⇔  t ∈ ( −∞,             tD(s_i, q) ]  (q = qmax),
	// where Γ is the *numeric* manager (independent implementation).
	for seed := int64(0); seed < 25; seed++ {
		sys := randSys(seed, core.RandomSystemConfig{Actions: 20, DeadlineEvery: 6})
		tab := BuildTDTable(sys)
		num := core.NewNumericManager(sys)
		for i := 0; i < sys.NumActions(); i++ {
			probes := []core.Time{0, 1}
			for q := core.Level(0); q <= sys.QMax(); q++ {
				if td := tab.TD(i, q); !td.IsInf() && td > 0 {
					probes = append(probes, td-1, td, td+1)
				}
			}
			for _, tm := range probes {
				got := num.Decide(i, tm).Q
				if !tab.InRegion(i, tm, got) {
					// The numeric fallback to qmin may land below
					// every region when even qmin fails; the region
					// partition only covers feasible times.
					if got == 0 && tab.TD(i, 0) < tm {
						continue
					}
					t.Fatalf("seed %d: Γ(%d, %v) = %v but state not in R_q", seed, i, tm, got)
				}
				// Uniqueness: no other region may contain the state.
				for q := core.Level(0); q <= sys.QMax(); q++ {
					if q != got && tab.InRegion(i, tm, q) {
						t.Fatalf("seed %d: state (%d, %v) in both R_%v and R_%v", seed, i, tm, got, q)
					}
				}
			}
		}
	}
}

func TestRegionsPartitionFeasibleTimes(t *testing.T) {
	// For any t ≤ tD(s_i, qmin), exactly one region contains (s_i, t).
	sys := randSys(99, core.RandomSystemConfig{Actions: 16, DeadlineEvery: 5})
	tab := BuildTDTable(sys)
	for i := 0; i < sys.NumActions(); i++ {
		max := tab.TD(i, 0)
		if max.IsInf() {
			continue
		}
		for tm := core.Time(0); tm <= max; tm += core.MaxTime(max/17, 1) {
			count := 0
			for q := core.Level(0); q <= sys.QMax(); q++ {
				if tab.InRegion(i, tm, q) {
					count++
				}
			}
			if count != 1 {
				t.Fatalf("state (%d, %v) in %d regions", i, tm, count)
			}
		}
	}
}

func TestChooseAgreesWithNumericManager(t *testing.T) {
	for seed := int64(50); seed < 65; seed++ {
		sys := randSys(seed, core.RandomSystemConfig{DeadlineEvery: 3})
		tab := BuildTDTable(sys)
		num := core.NewNumericManager(sys)
		rng := rand.New(rand.NewSource(seed * 7))
		for trial := 0; trial < 200; trial++ {
			i := rng.Intn(sys.NumActions())
			tm := core.Time(rng.Int63n(int64(2 * core.MaxTime(sys.LastDeadline(), 1))))
			q, _ := tab.Choose(i, tm)
			if want := num.Decide(i, tm).Q; q != want {
				t.Fatalf("seed %d: Choose(%d,%v) = %v, numeric %v", seed, i, tm, q, want)
			}
		}
	}
}

func TestIntervalBordersShared(t *testing.T) {
	// Adjacent regions share borders: hi of R_{q+1} equals lo of R_q.
	sys := randSys(3, core.RandomSystemConfig{DeadlineEvery: 4})
	tab := BuildTDTable(sys)
	for i := 0; i < sys.NumActions(); i++ {
		for q := core.Level(0); q < sys.QMax(); q++ {
			lo, _ := tab.Interval(i, q)
			_, hiAbove := tab.Interval(i, q+1)
			if lo != hiAbove {
				t.Fatalf("border mismatch at i=%d q=%v: %v vs %v", i, q, lo, hiAbove)
			}
		}
	}
}

func TestTDTableSerialisationRoundTrip(t *testing.T) {
	sys := randSys(4, core.RandomSystemConfig{Actions: 18, DeadlineEvery: 5})
	tab := BuildTDTable(sys)
	var buf bytes.Buffer
	if _, err := tab.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTDTable(&buf, sys)
	if err != nil {
		t.Fatal(err)
	}
	for q := core.Level(0); q <= sys.QMax(); q++ {
		for i := 0; i <= sys.NumActions(); i++ {
			if loaded.TD(i, q) != tab.TD(i, q) {
				t.Fatalf("roundtrip mismatch at i=%d q=%v", i, q)
			}
		}
	}
}

func TestLoadTDTableRejectsMismatch(t *testing.T) {
	sys := randSys(5, core.RandomSystemConfig{Actions: 18, DeadlineEvery: 5})
	other := randSys(6, core.RandomSystemConfig{Actions: 12, DeadlineEvery: 5})
	tab := BuildTDTable(sys)
	var buf bytes.Buffer
	if _, err := tab.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTDTable(&buf, other); err == nil || !strings.Contains(err.Error(), "system is") {
		t.Fatalf("dimension mismatch not rejected: %v", err)
	}
	if _, err := LoadTDTable(strings.NewReader("not json"), sys); err == nil {
		t.Fatal("garbage input accepted")
	}
}
