package regions

import (
	"testing"

	"repro/internal/core"
)

func TestParallelTDTableMatchesSerial(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		cfg := core.RandomSystemConfig{Actions: 60, Levels: 8}
		if seed%2 == 1 {
			cfg.DeadlineEvery = 7
		}
		sys := randSys(seed, cfg)
		serial := BuildTDTable(sys)
		par := BuildTDTableParallel(sys)
		for q := core.Level(0); q <= sys.QMax(); q++ {
			for i := 0; i <= sys.NumActions(); i++ {
				if serial.TD(i, q) != par.TD(i, q) {
					t.Fatalf("seed %d: parallel tD[%v][%d] = %v, serial %v",
						seed, q, i, par.TD(i, q), serial.TD(i, q))
				}
			}
		}
	}
}

func TestParallelRelaxTablesMatchSerial(t *testing.T) {
	rho := []int{1, 3, 9, 17}
	for seed := int64(0); seed < 12; seed++ {
		sys := randSys(seed, core.RandomSystemConfig{Actions: 50, DeadlineEvery: 11})
		tab := BuildTDTable(sys)
		serial := MustBuildRelaxTables(tab, rho)
		par, err := BuildRelaxTablesParallel(tab, rho)
		if err != nil {
			t.Fatal(err)
		}
		for q := core.Level(0); q <= sys.QMax(); q++ {
			for ri := range rho {
				for i := 0; i < sys.NumActions(); i++ {
					slo, shi := serial.Interval(i, q, ri)
					plo, phi := par.Interval(i, q, ri)
					if slo != plo || shi != phi {
						t.Fatalf("seed %d: intervals diverge at q=%v ri=%d i=%d", seed, q, ri, i)
					}
				}
			}
		}
	}
}

func TestParallelRelaxTablesValidation(t *testing.T) {
	sys := randSys(3, core.RandomSystemConfig{DeadlineEvery: 5})
	tab := BuildTDTable(sys)
	if _, err := BuildRelaxTablesParallel(tab, []int{2}); err == nil {
		t.Fatal("rho without 1 accepted by parallel builder")
	}
}

func BenchmarkBuildTDTableSerial(b *testing.B) {
	sys := randSys(1, core.RandomSystemConfig{Actions: 5000, Levels: 16, DeadlineEvery: 100})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildTDTable(sys)
	}
}

func BenchmarkBuildTDTableParallel(b *testing.B) {
	sys := randSys(1, core.RandomSystemConfig{Actions: 5000, Levels: 16, DeadlineEvery: 100})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildTDTableParallel(sys)
	}
}
