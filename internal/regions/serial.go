package regions

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/core"
)

// tdTableJSON is the wire form of a TDTable. Only the table payload is
// serialised; the system must be supplied again at load time (tables are
// platform- and deadline-specific, and the system is the authority on
// dimensions).
type tdTableJSON struct {
	Actions int       `json:"actions"`
	Levels  int       `json:"levels"`
	TD      [][]int64 `json:"td"` // [level][state]
}

// WriteTo serialises the table as JSON. The wire format stays
// [level][state] (the pre-flattening layout), so bundles written before
// the payload became one contiguous slab load unchanged.
func (t *TDTable) WriteTo(w io.Writer) (int64, error) {
	n := t.sys.NumActions()
	j := tdTableJSON{
		Actions: n,
		Levels:  t.nq,
		TD:      make([][]int64, t.nq),
	}
	for q := 0; q < t.nq; q++ {
		row := make([]int64, n+1)
		for i := 0; i <= n; i++ {
			row[i] = int64(t.td[i*t.nq+q])
		}
		j.TD[q] = row
	}
	cw := &countWriter{w: w}
	err := json.NewEncoder(cw).Encode(j)
	return cw.n, err
}

// LoadTDTable deserialises a table previously written with WriteTo and
// re-binds it to sys, verifying the dimensions match.
func LoadTDTable(r io.Reader, sys *core.System) (*TDTable, error) {
	var j tdTableJSON
	if err := json.NewDecoder(r).Decode(&j); err != nil {
		return nil, fmt.Errorf("regions: decode tD table: %w", err)
	}
	if j.Actions != sys.NumActions() || j.Levels != sys.NumLevels() {
		return nil, fmt.Errorf("regions: table is %d×%d, system is %d×%d",
			j.Actions, j.Levels, sys.NumActions(), sys.NumLevels())
	}
	if len(j.TD) != j.Levels {
		return nil, fmt.Errorf("regions: %d level rows in payload, want %d", len(j.TD), j.Levels)
	}
	t := newTDTable(sys)
	for q, row := range j.TD {
		if len(row) != j.Actions+1 {
			return nil, fmt.Errorf("regions: level %d has %d entries, want %d", q, len(row), j.Actions+1)
		}
		for i, v := range row {
			t.td[i*t.nq+q] = core.Time(v)
		}
	}
	// The binary-search Choose relies on the monotonicity invariants;
	// a hand-edited or corrupt bundle must fail here, not misdecide.
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

type countWriter struct {
	w io.Writer
	n int64
}

func (cw *countWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// relaxTablesJSON is the wire form of a RelaxTables. Like the tD table,
// only the payload travels; the tD table (and through it the system) is
// re-supplied at load time.
type relaxTablesJSON struct {
	Actions int         `json:"actions"`
	Levels  int         `json:"levels"`
	Rho     []int       `json:"rho"`
	Upper   [][][]int64 `json:"upper"` // [level][rhoIdx][state]
	Lower   [][][]int64 `json:"lower"`
}

// WriteTo serialises the relaxation tables as JSON.
func (rt *RelaxTables) WriteTo(w io.Writer) (int64, error) {
	sys := rt.td.sys
	j := relaxTablesJSON{
		Actions: sys.NumActions(),
		Levels:  sys.NumLevels(),
		Rho:     rt.rho,
		Upper:   encode3(rt.upper),
		Lower:   encode3(rt.lower),
	}
	cw := &countWriter{w: w}
	err := json.NewEncoder(cw).Encode(j)
	return cw.n, err
}

// LoadRelaxTables deserialises relaxation tables written with WriteTo and
// re-binds them to td, verifying dimensions.
func LoadRelaxTables(r io.Reader, td *TDTable) (*RelaxTables, error) {
	var j relaxTablesJSON
	if err := json.NewDecoder(r).Decode(&j); err != nil {
		return nil, fmt.Errorf("regions: decode relax tables: %w", err)
	}
	sys := td.sys
	if j.Actions != sys.NumActions() || j.Levels != sys.NumLevels() {
		return nil, fmt.Errorf("regions: tables are %d×%d, system is %d×%d",
			j.Actions, j.Levels, sys.NumActions(), sys.NumLevels())
	}
	upper, err := decode3(j.Upper, j.Levels, len(j.Rho), j.Actions)
	if err != nil {
		return nil, err
	}
	lower, err := decode3(j.Lower, j.Levels, len(j.Rho), j.Actions)
	if err != nil {
		return nil, err
	}
	return &RelaxTables{td: td, rho: j.Rho, upper: upper, lower: lower}, nil
}

func encode3(t [][][]core.Time) [][][]int64 {
	out := make([][][]int64, len(t))
	for q := range t {
		out[q] = make([][]int64, len(t[q]))
		for ri := range t[q] {
			row := make([]int64, len(t[q][ri]))
			for i, v := range t[q][ri] {
				row[i] = int64(v)
			}
			out[q][ri] = row
		}
	}
	return out
}

func decode3(t [][][]int64, nq, nrho, n int) ([][][]core.Time, error) {
	if len(t) != nq {
		return nil, fmt.Errorf("regions: %d levels in payload, want %d", len(t), nq)
	}
	out := make([][][]core.Time, nq)
	for q := range t {
		if len(t[q]) != nrho {
			return nil, fmt.Errorf("regions: level %d has %d rho rows, want %d", q, len(t[q]), nrho)
		}
		out[q] = make([][]core.Time, nrho)
		for ri := range t[q] {
			if len(t[q][ri]) != n {
				return nil, fmt.Errorf("regions: level %d rho %d has %d states, want %d", q, ri, len(t[q][ri]), n)
			}
			row := make([]core.Time, n)
			for i, v := range t[q][ri] {
				row[i] = core.Time(v)
			}
			out[q][ri] = row
		}
	}
	return out, nil
}
