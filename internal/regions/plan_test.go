package regions

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

// planProbeTimes collects the adversarial time samples for state i: every
// breakpoint the plan could possibly key on (tD row values, relaxation
// interval borders) plus its two neighbours, so off-by-one segment
// boundaries cannot hide, plus a spread of ordinary times.
func planProbeTimes(td *TDTable, rt *RelaxTables, i int, rng *rand.Rand) []core.Time {
	var ts []core.Time
	add := func(v core.Time) {
		if v <= core.TimeNegInf || v >= core.TimeInf {
			return
		}
		ts = append(ts, v-1, v, v+1)
	}
	sys := td.Sys()
	for q := 0; q < sys.NumLevels(); q++ {
		add(td.TD(i, core.Level(q)))
		if rt != nil {
			for ri := range rt.Rho() {
				lo, hi := rt.Interval(i, core.Level(q), ri)
				add(lo)
				add(hi)
			}
		}
	}
	max := td.TD(i, 0)
	if !max.IsInf() && max > 0 {
		for k := 0; k < 8; k++ {
			ts = append(ts, core.Time(rng.Int63n(int64(max)+1)))
		}
	}
	ts = append(ts, 0, -5, core.TimeInf-1)
	return ts
}

// TestQuickPlanEqualsUncachedRelaxed is the decision-plan cache's
// acceptance property: on random bundles the plan-cached relaxed manager
// and the uncached table-probing manager agree on the full decision —
// quality, relaxation grant AND Work accounting — for every probed time,
// including the exact region borders and their neighbours. Work equality
// is what makes cached traces byte-identical to uncached ones under any
// overhead model.
func TestQuickPlanEqualsUncachedRelaxed(t *testing.T) {
	rho := []int{1, 2, 4, 8}
	f := func(seed int64, a, b, c byte) bool {
		sys := qsys(seed, a, b, c)
		td := BuildTDTable(sys)
		rt := MustBuildRelaxTables(td, rho)
		cached := NewRelaxedManager(rt)
		uncached := NewRelaxedManagerUncached(rt)
		rng := rand.New(rand.NewSource(seed ^ 0x5f5f))
		for i := 0; i < sys.NumActions(); i++ {
			for _, tm := range planProbeTimes(td, rt, i, rng) {
				if cached.Decide(i, tm) != uncached.Decide(i, tm) {
					t.Logf("state %d t=%v: cached %+v uncached %+v",
						i, tm, cached.Decide(i, tm), uncached.Decide(i, tm))
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPlanEqualsUncachedSymbolic is the same property for the pure
// quality-region manager (Steps ≡ 1, Work = Choose probes only).
func TestQuickPlanEqualsUncachedSymbolic(t *testing.T) {
	f := func(seed int64, a, b, c byte) bool {
		sys := qsys(seed, a, b, c)
		td := BuildTDTable(sys)
		cached := NewSymbolicManager(td)
		uncached := NewSymbolicManagerUncached(td)
		rng := rand.New(rand.NewSource(seed ^ 0x1bd1))
		for i := 0; i < sys.NumActions(); i++ {
			for _, tm := range planProbeTimes(td, nil, i, rng) {
				if cached.Decide(i, tm) != uncached.Decide(i, tm) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestPlanSharedAndLazy: the plan is built once per table, the same
// pointer is served to every manager, and building is concurrency-safe
// (the fleet's first cycle races many streams into the first Decide;
// run with -race this test is the guard).
func TestPlanSharedAndLazy(t *testing.T) {
	sys := core.RandomSystem(rand.New(rand.NewSource(11)), core.RandomSystemConfig{Actions: 40, Levels: 5, DeadlineEvery: 3})
	td := BuildTDTable(sys)
	rt := MustBuildRelaxTables(td, []int{1, 3, 9})
	done := make(chan *DecisionPlan, 8)
	for k := 0; k < 8; k++ {
		go func() { done <- rt.Plan() }()
	}
	first := <-done
	for k := 1; k < 8; k++ {
		if p := <-done; p != first {
			t.Fatal("concurrent Plan calls returned distinct plans")
		}
	}
	if rt.Plan() != first {
		t.Fatal("Plan must be memoized")
	}
	if td.Plan() == nil || td.Plan() != td.Plan() {
		t.Fatal("TDTable plan must be memoized")
	}
	if first.NumStates() != sys.NumActions() {
		t.Fatalf("plan covers %d states, want %d", first.NumStates(), sys.NumActions())
	}
	if first.NumSegments() <= sys.NumActions() {
		t.Fatal("plan should hold at least one segment per state")
	}
	if first.MemoryBytes() <= 0 {
		t.Fatal("plan memory must be positive")
	}
}

// TestPlanDecideAllocationFree: steady-state Decide through the plan
// must not touch the heap, or the fleet hot path would lose its
// 0 allocs/op guarantee.
func TestPlanDecideAllocationFree(t *testing.T) {
	sys := core.RandomSystem(rand.New(rand.NewSource(4)), core.RandomSystemConfig{Actions: 60, Levels: 6, DeadlineEvery: 4})
	rt := MustBuildRelaxTables(BuildTDTable(sys), []int{1, 2, 5})
	m := NewRelaxedManager(rt)
	m.Decide(0, 0) // force the lazy build outside the measurement
	avg := testing.AllocsPerRun(200, func() {
		for i := 0; i < sys.NumActions(); i++ {
			m.Decide(i, core.Time(i)*1000)
		}
	})
	if avg != 0 {
		t.Fatalf("plan Decide allocates %v times per sweep, want 0", avg)
	}
}
