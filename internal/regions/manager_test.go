package regions

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

// TestThreeManagersAgree is the central equivalence property (§4.1, §4.2):
// the numeric, symbolic and relaxed Quality Managers choose identical
// quality sequences when driven through identical executions — symbolic
// management changes the *cost* of control, never its decisions.
func TestThreeManagersAgree(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		sys := randSys(seed, core.RandomSystemConfig{Actions: 40, DeadlineEvery: 10})
		tab := BuildTDTable(sys)
		rt := MustBuildRelaxTables(tab, []int{1, 3, 7, 15})
		managers := []core.Manager{
			core.NewNumericManager(sys),
			NewSymbolicManager(tab),
			NewRelaxedManager(rt),
		}
		rng := rand.New(rand.NewSource(seed + 500))
		n := sys.NumActions()

		// Drive one execution per random draw; every manager replays the
		// same actual execution times (drawn per (state, level) so the
		// trajectory stays identical as long as decisions agree).
		for trial := 0; trial < 20; trial++ {
			draw := make([]float64, n)
			for j := range draw {
				draw[j] = rng.Float64()
			}
			seqs := make([][]core.Level, len(managers))
			for mi, m := range managers {
				var qs []core.Level
				tm := core.Time(0)
				pending := 0
				var cur core.Level
				for j := 0; j < n; j++ {
					if pending == 0 {
						d := m.Decide(j, tm)
						cur = d.Q
						pending = d.Steps
					}
					qs = append(qs, cur)
					tm += core.Time(draw[j] * float64(sys.WC(j, cur)))
					pending--
				}
				seqs[mi] = qs
			}
			for j := 0; j < n; j++ {
				if seqs[0][j] != seqs[1][j] || seqs[0][j] != seqs[2][j] {
					t.Fatalf("seed %d trial %d: managers diverge at action %d: numeric=%v symbolic=%v relaxed=%v",
						seed, trial, j, seqs[0][j], seqs[1][j], seqs[2][j])
				}
			}
		}
	}
}

func TestSymbolicManagerWorkBounded(t *testing.T) {
	// Symbolic decisions cost O(|Q|) probes, independent of system size.
	sys := randSys(3, core.RandomSystemConfig{Actions: 500, Levels: 7, DeadlineEvery: 50})
	m := NewSymbolicManager(BuildTDTable(sys))
	for i := 0; i < sys.NumActions(); i += 13 {
		d := m.Decide(i, 0)
		if d.Work > sys.NumLevels() {
			t.Fatalf("symbolic Work = %d exceeds |Q| = %d", d.Work, sys.NumLevels())
		}
	}
}

func TestRelaxedManagerGrantsMultiStepRelaxation(t *testing.T) {
	// On a calm, uniform system with a generous deadline, relaxation
	// must actually grant r > 1 somewhere — otherwise the mechanism is
	// vacuous and the Fig. 8 experiment cannot reproduce.
	n, nq := 120, 5
	tt := core.NewTimingTable(n, nq)
	for i := 0; i < n; i++ {
		for q := 0; q < nq; q++ {
			av := core.Time(10+2*q) * core.Microsecond
			tt.Set(i, core.Level(q), av, av*3/2)
		}
	}
	actions := make([]core.Action, n)
	for i := range actions {
		actions[i] = core.Action{Deadline: core.TimeInf}
	}
	actions[n-1].Deadline = core.Time(n) * 25 * core.Microsecond
	sys := core.MustNewSystem(actions, tt)
	if err := sys.Feasible(); err != nil {
		t.Fatalf("calm system must be feasible: %v", err)
	}
	rt := MustBuildRelaxTables(BuildTDTable(sys), []int{1, 5, 10, 20})
	m := NewRelaxedManager(rt)

	granted := 0
	tm := core.Time(0)
	pending := 0
	var cur core.Level
	for i := 0; i < n; i++ {
		if pending == 0 {
			d := m.Decide(i, tm)
			cur, pending = d.Q, d.Steps
			if d.Steps > 1 {
				granted++
			}
		}
		tm += sys.Av(i, cur)
		pending--
	}
	if granted == 0 {
		t.Fatal("relaxed manager never granted r > 1 on a calm system")
	}
}

func TestManagerNamesAndAccessors(t *testing.T) {
	sys := randSys(9, core.RandomSystemConfig{DeadlineEvery: 4})
	tab := BuildTDTable(sys)
	rt := MustBuildRelaxTables(tab, []int{1, 2})
	sm := NewSymbolicManager(tab)
	rm := NewRelaxedManager(rt)
	if sm.Name() != "symbolic" || rm.Name() != "relaxed" {
		t.Fatalf("names: %q %q", sm.Name(), rm.Name())
	}
	if sm.Table() != tab || rm.Tables() != rt {
		t.Fatal("accessors broken")
	}
}
