package power

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// microWork builds a uniform workload with a final deadline leaving
// roughly 2× slack over the fmax worst case.
func microWork(n int) []Workload {
	w := make([]Workload, n)
	for i := range w {
		w[i] = Workload{Name: "op", Av: 100 * core.Microsecond, WC: 150 * core.Microsecond, Deadline: core.TimeInf}
	}
	w[n-1].Deadline = core.Time(n) * 300 * core.Microsecond
	return w
}

var testFreqs = []float64{1.0, 0.8, 0.6, 0.5, 0.4}

func TestSystemValidation(t *testing.T) {
	if _, _, err := System(microWork(4), nil); err == nil {
		t.Error("empty frequency set accepted")
	}
	if _, _, err := System(microWork(4), []float64{0.9, 0.5}); err == nil {
		t.Error("missing fmax=1.0 accepted")
	}
	if _, _, err := System(microWork(4), []float64{1.0, -0.5}); err == nil {
		t.Error("negative frequency accepted")
	}
	bad := microWork(4)
	bad[0].Av = 2 * bad[0].WC
	if _, _, err := System(bad, testFreqs); err == nil {
		t.Error("av > wc accepted")
	}
}

func TestLevelZeroIsFMax(t *testing.T) {
	sys, fs, err := System(microWork(8), []float64{0.5, 1.0, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if fs[0] != 1.0 || fs[1] != 0.8 || fs[2] != 0.5 {
		t.Fatalf("frequencies not sorted descending: %v", fs)
	}
	// Level 0 = fmax = shortest times; monotone in q.
	for q := core.Level(1); q <= sys.QMax(); q++ {
		if sys.Av(0, q) < sys.Av(0, q-1) {
			t.Fatal("times must grow as frequency drops")
		}
	}
	if sys.Av(0, 0) != 100*core.Microsecond {
		t.Fatalf("fmax time = %v", sys.Av(0, 0))
	}
	if sys.Av(0, 2) != 200*core.Microsecond {
		t.Fatalf("half-speed time = %v", sys.Av(0, 2))
	}
}

func TestControlledRunSavesEnergyWithoutMisses(t *testing.T) {
	sys, fs, err := System(microWork(60), testFreqs)
	if err != nil {
		t.Fatal(err)
	}
	run := func(m core.Manager) *sim.Trace {
		return (&sim.Runner{Sys: sys, Mgr: m, Exec: sim.Average{Sys: sys},
			Overhead: sim.FreeOverhead, Cycles: 3}).MustRun()
	}
	controlled := run(core.NewNumericManager(sys))
	fmax := run(core.FixedManager{Level: 0})
	if controlled.Misses != 0 {
		t.Fatalf("energy controller missed %d deadlines", controlled.Misses)
	}
	s := Savings(controlled, fmax, fs)
	if s <= 0.2 {
		t.Fatalf("savings %.2f too small; controller not descending frequency", s)
	}
	if s >= 1 {
		t.Fatalf("savings %.2f impossible", s)
	}
}

func TestEnergyMonotoneInFrequency(t *testing.T) {
	sys, fs, _ := System(microWork(30), testFreqs)
	run := func(l core.Level) *sim.Trace {
		return (&sim.Runner{Sys: sys, Mgr: core.FixedManager{Level: l}, Exec: sim.Average{Sys: sys},
			Overhead: sim.FreeOverhead, Cycles: 1, Period: sys.LastDeadline() * 4}).MustRun()
	}
	prev := Energy(run(0), fs)
	for q := core.Level(1); q <= sys.QMax(); q++ {
		e := Energy(run(q), fs)
		if e >= prev {
			t.Fatalf("energy not decreasing with slower frequency at level %v: %v >= %v", q, e, prev)
		}
		prev = e
	}
}

func TestSafetyUnderWorstCase(t *testing.T) {
	sys, _, _ := System(microWork(60), testFreqs)
	trc := (&sim.Runner{Sys: sys, Mgr: core.NewNumericManager(sys),
		Exec: sim.WorstCase{Sys: sys}, Overhead: sim.FreeOverhead, Cycles: 3}).MustRun()
	if trc.Misses != 0 {
		t.Fatalf("worst-case run missed %d deadlines", trc.Misses)
	}
}

func TestFrequencyAccessor(t *testing.T) {
	_, fs, _ := System(microWork(4), testFreqs)
	if Frequency(fs, 0) != 1.0 || Frequency(fs, 4) != 0.4 {
		t.Fatalf("frequency accessor: %v", fs)
	}
}
