// Package power implements the conclusion's power-management direction:
// "quality level is replaced by frequency and the objective is to
// minimize energy consumption without missing the deadlines".
//
// The mapping into the core framework: level q selects the q-th *slowest*
// frequency, so execution times are non-decreasing in q (Definition 1
// holds) and the mixed policy's "maximal q meeting the constraint"
// becomes "lowest frequency meeting the deadlines" — exactly deadline-
// safe energy minimisation. Dynamic energy is modelled as f²·t per
// action (P ∝ f³ at scaled voltage, t ∝ 1/f).
package power

import (
	"fmt"
	"slices"

	"repro/internal/core"
	"repro/internal/sim"
)

// Workload describes one action of the frequency-scalable task at the
// *maximal* frequency: its average and worst-case times, and its
// cycle-relative deadline (TimeInf for none).
type Workload struct {
	Name     string
	Av, WC   core.Time
	Deadline core.Time
}

// System builds a parameterized system whose "quality levels" are
// slowness indices over the given relative frequencies (1.0 = maximal).
// Level q runs at freqs sorted descending; times scale by 1/f.
func System(work []Workload, freqs []float64) (*core.System, []float64, error) {
	if len(freqs) == 0 {
		return nil, nil, fmt.Errorf("power: no frequencies")
	}
	fs := append([]float64(nil), freqs...)
	slices.Sort(fs)
	slices.Reverse(fs)
	if fs[0] != 1.0 {
		return nil, nil, fmt.Errorf("power: maximal relative frequency must be 1.0, got %v", fs[0])
	}
	for _, f := range fs {
		if f <= 0 {
			return nil, nil, fmt.Errorf("power: non-positive frequency %v", f)
		}
	}
	tt := core.NewTimingTable(len(work), len(fs))
	actions := make([]core.Action, len(work))
	for i, w := range work {
		if w.Av > w.WC {
			return nil, nil, fmt.Errorf("power: action %d: av %v > wc %v", i, w.Av, w.WC)
		}
		for q, f := range fs {
			tt.Set(i, core.Level(q),
				core.Time(float64(w.Av)/f),
				core.Time(float64(w.WC)/f))
		}
		actions[i] = core.Action{Name: w.Name, Deadline: w.Deadline}
	}
	sys, err := core.NewSystem(actions, tt)
	if err != nil {
		return nil, nil, err
	}
	return sys, fs, nil
}

// Frequency returns the relative frequency selected by level q.
func Frequency(fs []float64, q core.Level) float64 { return fs[q] }

// Energy computes the normalised dynamic energy of a trace: Σ f²·t over
// application execution (management overhead is charged at full
// frequency, conservatively).
func Energy(tr *sim.Trace, fs []float64) float64 {
	var e float64
	for _, r := range tr.Records {
		f := fs[r.Q]
		e += f * f * float64(r.Exec)
		e += float64(r.Overhead) // f = 1 during management
	}
	return e
}

// Savings reports the energy saved by a controlled trace relative to an
// always-fmax trace, as a fraction in [0, 1).
func Savings(controlled, fmax *sim.Trace, fs []float64) float64 {
	eC := Energy(controlled, fs)
	eF := Energy(fmax, fs)
	if eF == 0 {
		return 0
	}
	return 1 - eC/eF
}
