// Package dct implements the 8×8 type-II discrete cosine transform and
// its inverse, the transform stage of the encoder substrate. Two
// implementations are provided: a float64 reference (separable, matrix
// form) and a faster scaled-integer variant whose output matches the
// reference within ±1 after rounding; tests pin both accuracy and the
// DC/energy identities.
package dct

import "math"

// N is the transform edge length.
const N = 8

// cosTable[u][x] = cos((2x+1)uπ/16) · c(u) · 1/2, the separable DCT-II
// basis including normalisation.
var cosTable [N][N]float64

func init() {
	for u := 0; u < N; u++ {
		for x := 0; x < N; x++ {
			cosTable[u][x] = math.Cos(float64(2*x+1) * float64(u) * math.Pi / 16)
		}
	}
}

func alpha(u int) float64 {
	if u == 0 {
		return 1 / math.Sqrt2
	}
	return 1
}

// Forward computes the 2-D DCT-II of an 8×8 block (row-major). Input
// samples are typically centred (e.g. pixel−128 or prediction residuals);
// output coefficients follow the standard orthonormal scaling with
// out[0] = 8·mean for a flat block of value mean... precisely,
// out[u][v] = ¼·α(u)·α(v)·ΣΣ in[y][x]·cos·cos.
func Forward(in *[64]int32, out *[64]int32) {
	var tmp [64]float64
	// Rows.
	for y := 0; y < N; y++ {
		for u := 0; u < N; u++ {
			var s float64
			for x := 0; x < N; x++ {
				s += float64(in[y*N+x]) * cosTable[u][x]
			}
			tmp[y*N+u] = s
		}
	}
	// Columns, with normalisation.
	for u := 0; u < N; u++ {
		for v := 0; v < N; v++ {
			var s float64
			for y := 0; y < N; y++ {
				s += tmp[y*N+u] * cosTable[v][y]
			}
			out[v*N+u] = int32(math.Round(0.25 * alpha(u) * alpha(v) * s))
		}
	}
}

// Inverse computes the 2-D inverse DCT (type III) of an 8×8 coefficient
// block, rounding to the nearest integer sample.
func Inverse(in *[64]int32, out *[64]int32) {
	var tmp [64]float64
	// Columns.
	for u := 0; u < N; u++ {
		for y := 0; y < N; y++ {
			var s float64
			for v := 0; v < N; v++ {
				s += alpha(v) * float64(in[v*N+u]) * cosTable[v][y]
			}
			tmp[y*N+u] = s
		}
	}
	// Rows.
	for y := 0; y < N; y++ {
		for x := 0; x < N; x++ {
			var s float64
			for u := 0; u < N; u++ {
				s += alpha(u) * tmp[y*N+u] * cosTable[u][x]
			}
			out[y*N+x] = int32(math.Round(0.25 * s))
		}
	}
}

// fixed-point tables for the integer transform: cos values scaled by 2^13.
const fbits = 13

var icosTable [N][N]int64

func init() {
	for u := 0; u < N; u++ {
		for x := 0; x < N; x++ {
			icosTable[u][x] = int64(math.Round(cosTable[u][x] * alpha(u) * (1 << fbits)))
		}
	}
}

// ForwardInt is the scaled-integer forward DCT. It trades ±1 coefficient
// accuracy for integer-only arithmetic; the encoder uses it at the lower
// quality levels where precision matters least (one of the
// quality-dependent work knobs).
func ForwardInt(in *[64]int32, out *[64]int32) {
	var tmp [64]int64
	for y := 0; y < N; y++ {
		for u := 0; u < N; u++ {
			var s int64
			for x := 0; x < N; x++ {
				s += int64(in[y*N+x]) * icosTable[u][x]
			}
			tmp[y*N+u] = s >> 6 // keep headroom
		}
	}
	for u := 0; u < N; u++ {
		for v := 0; v < N; v++ {
			var s int64
			for y := 0; y < N; y++ {
				s += tmp[y*N+u] * icosTable[v][y]
			}
			// Accumulated scale is 2^(2·fbits−6); the ¼
			// normalisation adds 2 more bits: shift by 22 total.
			const shift = 2*fbits - 6 + 2
			out[v*N+u] = int32((s + (1 << (shift - 1))) >> shift)
		}
	}
}
