package dct

import (
	"math/rand"
	"testing"
)

func benchBlock() *[64]int32 {
	rng := rand.New(rand.NewSource(1))
	return randomBlock(rng, 255)
}

func BenchmarkForward(b *testing.B) {
	in := benchBlock()
	var out [64]int32
	for i := 0; i < b.N; i++ {
		Forward(in, &out)
	}
}

func BenchmarkForwardInt(b *testing.B) {
	in := benchBlock()
	var out [64]int32
	for i := 0; i < b.N; i++ {
		ForwardInt(in, &out)
	}
}

func BenchmarkInverse(b *testing.B) {
	in := benchBlock()
	var coef, out [64]int32
	Forward(in, &coef)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Inverse(&coef, &out)
	}
}
