package dct

import (
	"math"
	"math/rand"
	"testing"
)

func randomBlock(rng *rand.Rand, amp int32) *[64]int32 {
	var b [64]int32
	for i := range b {
		b[i] = rng.Int31n(2*amp+1) - amp
	}
	return &b
}

func TestForwardInverseRoundTrip(t *testing.T) {
	// DCT∘IDCT must reproduce the input within rounding (±1).
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		in := randomBlock(rng, 255)
		var coef, back [64]int32
		Forward(in, &coef)
		Inverse(&coef, &back)
		for i := range in {
			if d := in[i] - back[i]; d < -1 || d > 1 {
				t.Fatalf("trial %d: roundtrip error %d at %d", trial, d, i)
			}
		}
	}
}

func TestFlatBlockIsDCOnly(t *testing.T) {
	var in, coef [64]int32
	for i := range in {
		in[i] = 100
	}
	Forward(&in, &coef)
	// DC of a flat block of value v is 8·v.
	if coef[0] != 800 {
		t.Fatalf("DC = %d, want 800", coef[0])
	}
	for i := 1; i < 64; i++ {
		if coef[i] != 0 {
			t.Fatalf("AC coefficient %d = %d, want 0", i, coef[i])
		}
	}
}

func TestZeroBlock(t *testing.T) {
	var in, coef [64]int32
	Forward(&in, &coef)
	for i, v := range coef {
		if v != 0 {
			t.Fatalf("coef[%d] = %d for zero input", i, v)
		}
	}
}

func TestLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomBlock(rng, 100)
	b := randomBlock(rng, 100)
	var sum, ca, cb, csum [64]int32
	for i := range sum {
		sum[i] = a[i] + b[i]
	}
	Forward(a, &ca)
	Forward(b, &cb)
	Forward(&sum, &csum)
	for i := range csum {
		// Rounding each transform separately allows ±1 slack per term.
		if d := csum[i] - ca[i] - cb[i]; d < -2 || d > 2 {
			t.Fatalf("linearity violated at %d: %d vs %d+%d", i, csum[i], ca[i], cb[i])
		}
	}
}

func TestParseval(t *testing.T) {
	// The orthonormal DCT preserves energy up to rounding.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		in := randomBlock(rng, 200)
		var coef [64]int32
		Forward(in, &coef)
		var ein, ecoef float64
		for i := range in {
			ein += float64(in[i]) * float64(in[i])
			ecoef += float64(coef[i]) * float64(coef[i])
		}
		if ein == 0 {
			continue
		}
		if rel := math.Abs(ein-ecoef) / ein; rel > 0.01 {
			t.Fatalf("trial %d: energy ratio off by %v", trial, rel)
		}
	}
}

func TestForwardIntMatchesFloat(t *testing.T) {
	// The scaled-integer transform tracks the float reference within a
	// small absolute error.
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		in := randomBlock(rng, 255)
		var cf, ci [64]int32
		Forward(in, &cf)
		ForwardInt(in, &ci)
		for i := range cf {
			if d := cf[i] - ci[i]; d < -2 || d > 2 {
				t.Fatalf("trial %d: int DCT off by %d at %d (float %d, int %d)",
					trial, d, i, cf[i], ci[i])
			}
		}
	}
}

func TestSingleBasisFunction(t *testing.T) {
	// Forward of the (1,0) basis function concentrates on coef[1].
	var in, coef [64]int32
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			in[y*8+x] = int32(math.Round(100 * math.Cos(float64(2*x+1)*math.Pi/16)))
		}
	}
	Forward(&in, &coef)
	var maxIdx int
	var maxAbs int32
	for i, v := range coef {
		if v < 0 {
			v = -v
		}
		if v > maxAbs {
			maxAbs = v
			maxIdx = i
		}
	}
	if maxIdx != 1 {
		t.Fatalf("energy concentrated at %d, want 1 (coef %v)", maxIdx, coef[:8])
	}
}
