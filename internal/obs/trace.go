package obs

import (
	"encoding/json"
	"io"
	"sync"

	"repro/internal/core"
)

// EventKind names one engine lifecycle transition in the trace ring.
type EventKind uint8

const (
	EvArrive     EventKind = iota // arrival reached the frontier (T = arrival instant)
	EvAdmit                       // admission verdict: admit
	EvDelay                       // admission verdict: queue in the backlog
	EvShed                        // admission verdict: shed
	EvBind                        // stream bound to an arena slot (Arg = slot)
	EvComplete                    // stream service complete (T = departure instant, Arg = slot)
	EvSteal                       // worker stole a slot from another stripe (Arg = slot)
	EvPark                        // worker parked: no claimable work (Arg = scheduler generation)
	EvCheckpoint                  // frontier quiesced for a snapshot (Arg = engine event count)
	EvSwap                        // controller bundle hot swap (Arg = bundle hash low bits)
)

// String returns the event name used in trace exposition. A switch,
// not a table: no allocation, no map.
func (k EventKind) String() string {
	switch k {
	case EvArrive:
		return "arrive"
	case EvAdmit:
		return "admit"
	case EvDelay:
		return "delay"
	case EvShed:
		return "shed"
	case EvBind:
		return "bind"
	case EvComplete:
		return "complete"
	case EvSteal:
		return "steal"
	case EvPark:
		return "park"
	case EvCheckpoint:
		return "checkpoint"
	case EvSwap:
		return "swap"
	}
	return "unknown"
}

// NoTime marks trace records with no engine instant: scheduler-side
// events (steal, park) happen between virtual instants, so they are
// ordered by Seq alone.
const NoTime core.Time = -1

// NoStream and NoWorker mark records not scoped to a stream or not
// produced by a worker goroutine (frontier-side records).
const (
	NoStream int32 = -1
	NoWorker int32 = -1
)

// Event is one trace record. T is a virtual instant (engine
// nanoseconds, never a wall clock) or NoTime; Seq is a global
// monotonic stamp assigned at record time.
type Event struct {
	Seq    int64
	T      core.Time
	Kind   EventKind
	Stream int32
	Worker int32
	Arg    int64
}

// Trace is a bounded ring of Events. Recording is mutex-serialized —
// frontier and workers write concurrently, and a lock-free lapping
// ring would race on slot reuse — so tracing is opt-in and costs a
// short critical section per lifecycle event (not per action). A nil
// *Trace is a valid no-op recorder.
type Trace struct {
	mu  sync.Mutex
	seq int64
	buf []Event
}

// DefaultTraceCap bounds the ring when NewTrace is given no capacity:
// enough for every lifecycle event of a few thousand streams.
const DefaultTraceCap = 1 << 14

// NewTrace returns a trace ring retaining the last capacity events
// (DefaultTraceCap if capacity ≤ 0).
func NewTrace(capacity int) *Trace {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Trace{buf: make([]Event, capacity)}
}

// Rec appends one record, overwriting the oldest when the ring is
// full. Safe on a nil receiver (no-op) and from any goroutine.
//
//detlint:hotpath
func (t *Trace) Rec(kind EventKind, at core.Time, stream, worker int32, arg int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.seq++
	t.buf[(t.seq-1)%int64(len(t.buf))] = Event{
		Seq: t.seq, T: at, Kind: kind, Stream: stream, Worker: worker, Arg: arg,
	}
	t.mu.Unlock()
}

// Len returns the number of retained events (≤ capacity).
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.seq < int64(len(t.buf)) {
		return int(t.seq)
	}
	return len(t.buf)
}

// Seq returns the total number of events ever recorded (recorded −
// retained = overwritten).
func (t *Trace) Seq() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// Events returns the retained records oldest-first.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := int64(len(t.buf))
	if t.seq < n {
		return append([]Event(nil), t.buf[:t.seq]...)
	}
	out := make([]Event, 0, n)
	head := t.seq % n // oldest retained slot
	out = append(out, t.buf[head:]...)
	out = append(out, t.buf[:head]...)
	return out
}

// chromeEvent is one Chrome trace-viewer record (the "JSON Array
// Format" chrome://tracing and Perfetto load). Instant events only:
// ph "i" with thread scope.
type chromeEvent struct {
	Name string     `json:"name"`
	Cat  string     `json:"cat"`
	Ph   string     `json:"ph"`
	TS   float64    `json:"ts"` // microseconds
	PID  int        `json:"pid"`
	TID  int        `json:"tid"`
	S    string     `json:"s"`
	Args chromeArgs `json:"args"`
}

type chromeArgs struct {
	Seq    int64 `json:"seq"`
	Stream int32 `json:"stream"`
	Arg    int64 `json:"arg"`
	TNanos int64 `json:"t_nanos"`
}

// chromeTrace is the top-level JSON Object Format envelope.
type chromeTrace struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

// Chrome trace process lanes: frontier records live on pid 0 with ts =
// virtual time; scheduler records (no engine instant) live on pid 1
// with one tid per worker and ts = Seq, so worker activity reads as an
// ordered lane per worker.
const (
	chromePIDFrontier = 0
	chromePIDSched    = 1
)

// WriteChrome renders the retained events as Chrome trace-viewer JSON.
// Virtual instants map to the viewer's microsecond axis (1 engine µs =
// 1 viewer µs); records with no instant are placed on the scheduler
// process with the event sequence number as their axis.
func (t *Trace) WriteChrome(w io.Writer) error {
	evs := t.Events()
	out := chromeTrace{
		DisplayTimeUnit: "ns",
		TraceEvents:     make([]chromeEvent, 0, len(evs)),
	}
	for _, e := range evs {
		ce := chromeEvent{
			Name: e.Kind.String(),
			Cat:  "frontier",
			Ph:   "i",
			PID:  chromePIDFrontier,
			TID:  0,
			S:    "t",
			Args: chromeArgs{Seq: e.Seq, Stream: e.Stream, Arg: e.Arg, TNanos: int64(e.T)},
		}
		if e.T == NoTime {
			ce.Cat = "sched"
			ce.PID = chromePIDSched
			ce.TID = int(e.Worker)
			ce.TS = float64(e.Seq)
		} else {
			ce.TS = float64(e.T) / 1e3
			if e.Worker != NoWorker {
				ce.Cat = "sched"
				ce.TID = int(e.Worker)
			}
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}
