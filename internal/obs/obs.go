// Package obs is the engine's observability layer: an allocation-free
// metrics kernel (atomic counters, gauges, fixed-bucket histograms in
// pre-sized slabs behind a static slice-backed registry — no map
// lookups, no fmt, no interface boxing anywhere a worker runs) plus a
// bounded virtual-time event trace (trace.go) and a Prometheus text
// renderer/parser (expfmt.go).
//
// The package is dependency-free beyond the standard library and is
// bound by the same determinism contract as the engine packages it
// instruments (the //detlint:engine directive below): no wall clocks,
// no global RNG, no map iteration. Metric *values* come in two classes,
// tagged per metric in the registry:
//
//   - SerialOrder: a pure function of the run's serial event order —
//     identical at any (workers, batch, lookahead) shape. Admissions,
//     sheds, backlog accounting.
//   - ShapeDependent: an artifact of how the scheduler happened to
//     interleave — steals, parks, ring occupancy — or of the wall
//     clock (checkpoint encode time). Real signals for tuning, but not
//     reproducible across shapes.
//
// Hot-path updates are single atomic operations; the exposition side
// (WriteProm, Events) takes snapshots with atomic loads and may
// allocate freely. Every mutating hot method is nil-receiver-safe so
// instrumented code paths need no branches of their own.
package obs

//detlint:engine

import (
	"math"
	"sync/atomic"
)

// Determinism classifies a metric's reproducibility contract.
type Determinism uint8

const (
	// SerialOrder values are identical at any scheduler shape: they
	// depend only on the run's serial event order.
	SerialOrder Determinism = iota
	// ShapeDependent values depend on worker interleaving or the wall
	// clock and are not comparable across shapes.
	ShapeDependent
)

// String returns the registry/exposition label value.
func (d Determinism) String() string {
	if d == SerialOrder {
		return "serial-order"
	}
	return "shape-dependent"
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	//detlint:atomic
	v atomic.Int64
}

// Add increments the counter by n (n ≥ 0; monotonicity is the
// caller's contract, not checked on the hot path).
//
//detlint:hotpath
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
//
//detlint:hotpath
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value.
type Gauge struct {
	//detlint:atomic
	v atomic.Int64
}

// Set stores the current value.
//
//detlint:hotpath
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// SetMax raises the gauge to v if v exceeds the stored value — the
// high-water update used for ring occupancy and backlog peaks.
//
//detlint:hotpath
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// FloatGauge is an atomic float64 value (bit-stored), for quantities
// that are natively fractional — the backlog integral, CPU load.
type FloatGauge struct {
	//detlint:atomic
	bits atomic.Uint64
}

// Set stores the current value.
//
//detlint:hotpath
func (g *FloatGauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value.
func (g *FloatGauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket cumulative histogram over int64 samples.
// Bounds are set once at registration; counts live in one pre-sized
// slab, so Observe is a bounded scan plus two atomic adds.
type Histogram struct {
	bounds []int64 // upper bucket bounds, strictly increasing
	//detlint:atomic
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	//detlint:atomic
	sum atomic.Int64
}

// Observe records one sample.
//
//detlint:hotpath
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// Count returns the total number of samples observed.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// snapshot returns per-bucket counts (same order as bounds, +Inf last)
// and the sum, read with atomic loads.
func (h *Histogram) snapshot() ([]int64, int64) {
	counts := make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return counts, h.sum.Load()
}

// metricKind discriminates Desc payloads.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindFloatGauge
	kindHistogram
)

// Desc is one registered metric: its full exposition name, help text,
// determinism class and payload. Metrics registered through a labeled
// view additionally carry the view's pre-rendered label pairs; the same
// name may appear once per distinct label set (one family, many
// series).
type Desc struct {
	Name string // full name including the registry prefix
	Help string
	Det  Determinism

	labels string // pre-rendered `,k="v"` pairs from the registering view
	kind   metricKind
	c      *Counter
	g      *Gauge
	fg     *FloatGauge
	h      *Histogram
	valid  bool
}

// Labels returns the metric's extra label pairs as rendered in the
// exposition (`instance="0"`, comma-separated), empty for metrics
// registered on the root registry.
func (d *Desc) Labels() string {
	if d.labels == "" {
		return ""
	}
	return d.labels[1:] // drop the leading comma of the render form
}

// Registry is a static metric registry: metrics are registered once at
// setup (registration may panic on programmer error and may allocate)
// and thereafter live in a flat slice — exposition walks the slice in
// registration order, and the hot path holds direct pointers, so no
// map is ever consulted after setup.
//
// WithLabels derives a labeled view: metrics registered through it land
// in the same root slice (one WriteProm serves them all) as separate
// series of the shared family — the mechanism a cluster uses to give
// each engine instance its own instance="i" series of every fleet
// instrument.
type Registry struct {
	prefix string
	labels string
	// root points to the registry owning the metric slice; nil on the
	// root itself.
	root    *Registry
	metrics []Desc
}

// NewRegistry returns a registry whose metric names are prefixed with
// prefix + "_" (empty prefix means bare names).
func NewRegistry(prefix string) *Registry {
	if prefix != "" && !validMetricName(prefix) {
		panic("obs: invalid registry prefix " + prefix)
	}
	return &Registry{prefix: prefix}
}

// WithLabels returns a view of the registry that stamps every metric
// registered through it with an extra label pair. Views share the
// root's metric slice: the family (name, help, type) is registered
// once, each view contributes its own series, and the root's WriteProm
// renders everything grouped per family. The value must not contain
// quotes, backslashes or newlines (no escaping on the hot-path side).
func (r *Registry) WithLabels(key, value string) *Registry {
	if !validMetricName(key) || key == detLabel {
		panic("obs: invalid label key " + key)
	}
	for i := 0; i < len(value); i++ {
		switch value[i] {
		case '"', '\\', '\n':
			panic("obs: label value needs escaping: " + value)
		}
	}
	return &Registry{
		prefix: r.prefix,
		labels: r.labels + "," + key + `="` + value + `"`,
		root:   r.base(),
	}
}

// base resolves the registry owning the metric slice.
func (r *Registry) base() *Registry {
	if r.root != nil {
		return r.root
	}
	return r
}

// Counter registers and returns a counter. Names are suffixed with
// "_total" (Prometheus counter convention) if not already.
func (r *Registry) Counter(name, help string, det Determinism) *Counter {
	if !hasSuffix(name, "_total") {
		name += "_total"
	}
	c := &Counter{}
	r.register(Desc{Name: r.full(name), Help: help, Det: det, kind: kindCounter, c: c})
	return c
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string, det Determinism) *Gauge {
	g := &Gauge{}
	r.register(Desc{Name: r.full(name), Help: help, Det: det, kind: kindGauge, g: g})
	return g
}

// FloatGauge registers and returns a float-valued gauge.
func (r *Registry) FloatGauge(name, help string, det Determinism) *FloatGauge {
	g := &FloatGauge{}
	r.register(Desc{Name: r.full(name), Help: help, Det: det, kind: kindFloatGauge, fg: g})
	return g
}

// Histogram registers and returns a fixed-bucket histogram. Bounds
// must be non-empty and strictly increasing.
func (r *Registry) Histogram(name, help string, det Determinism, bounds []int64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram " + name + " needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram " + name + " bounds must be strictly increasing")
		}
	}
	h := &Histogram{
		bounds: append([]int64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	r.register(Desc{Name: r.full(name), Help: help, Det: det, kind: kindHistogram, h: h})
	return h
}

// Metrics returns the registered descriptors in registration order,
// including every labeled view's series.
func (r *Registry) Metrics() []Desc {
	return r.base().metrics
}

func (r *Registry) full(name string) string {
	if r.prefix == "" {
		return name
	}
	return r.prefix + "_" + name
}

func (r *Registry) register(d Desc) {
	if !validMetricName(d.Name) {
		panic("obs: invalid metric name " + d.Name)
	}
	d.labels = r.labels
	root := r.base()
	for i := range root.metrics {
		prev := &root.metrics[i]
		if prev.Name != d.Name {
			continue
		}
		if prev.labels == d.labels {
			panic("obs: duplicate metric " + d.Name)
		}
		// Same family from another labeled view: the kind must agree or
		// the family's TYPE line would lie for one of the series.
		if prev.kind != d.kind {
			panic("obs: metric " + d.Name + " re-registered with a different type")
		}
	}
	d.valid = true
	root.metrics = append(root.metrics, d)
}

// validMetricName enforces the Prometheus identifier grammar
// [a-zA-Z_:][a-zA-Z0-9_:]* without regexp.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// hasSuffix avoids importing strings in the kernel file.
func hasSuffix(s, suf string) bool {
	return len(s) >= len(suf) && s[len(s)-len(suf):] == suf
}
