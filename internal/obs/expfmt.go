package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// detLabel is the exposition label carrying each metric's determinism
// class, so a scrape is self-describing about which series are
// comparable across scheduler shapes.
const detLabel = "determinism"

// WriteProm renders every registered metric in Prometheus text
// exposition format v0.0.4, grouped per family: HELP and TYPE appear
// once per metric name (at its first registration), followed by every
// series of that family — labeled views (per-instance series) collapse
// into one valid block. Values are read with atomic loads, so scraping
// a live engine is safe; the rendering itself is cold-path and
// allocates freely. Called on a labeled view, it renders the whole
// root registry.
func (r *Registry) WriteProm(w io.Writer) error {
	bw := bufio.NewWriter(w)
	metrics := r.base().metrics
	done := map[string]bool{}
	for i := range metrics {
		if name := metrics[i].Name; metrics[i].valid && !done[name] {
			done[name] = true
			writePromFamily(bw, metrics, name)
		}
	}
	return bw.Flush()
}

// writePromFamily renders one family: the HELP/TYPE header from its
// first series, then every series of the name in registration order.
func writePromFamily(bw *bufio.Writer, metrics []Desc, name string) {
	first := true
	for i := range metrics {
		d := &metrics[i]
		if d.Name != name || !d.valid {
			continue
		}
		if first {
			first = false
			fmt.Fprintf(bw, "# HELP %s %s\n", d.Name, escapeHelp(d.Help))
			switch d.kind {
			case kindCounter:
				fmt.Fprintf(bw, "# TYPE %s counter\n", d.Name)
			case kindGauge, kindFloatGauge:
				fmt.Fprintf(bw, "# TYPE %s gauge\n", d.Name)
			case kindHistogram:
				fmt.Fprintf(bw, "# TYPE %s histogram\n", d.Name)
			}
		}
		labels := `{` + detLabel + `="` + d.Det.String() + `"` + d.labels + `}`
		switch d.kind {
		case kindCounter:
			fmt.Fprintf(bw, "%s%s %d\n", d.Name, labels, d.c.Value())
		case kindGauge:
			fmt.Fprintf(bw, "%s%s %d\n", d.Name, labels, d.g.Value())
		case kindFloatGauge:
			fmt.Fprintf(bw, "%s%s %s\n", d.Name, labels,
				strconv.FormatFloat(d.fg.Value(), 'g', -1, 64))
		case kindHistogram:
			counts, sum := d.h.snapshot()
			var cum int64
			for j, bound := range d.h.bounds {
				cum += counts[j]
				fmt.Fprintf(bw, "%s_bucket{%s=%q%s,le=%q} %d\n",
					d.Name, detLabel, d.Det.String(), d.labels, strconv.FormatInt(bound, 10), cum)
			}
			cum += counts[len(counts)-1]
			fmt.Fprintf(bw, "%s_bucket{%s=%q%s,le=\"+Inf\"} %d\n", d.Name, detLabel, d.Det.String(), d.labels, cum)
			fmt.Fprintf(bw, "%s_sum%s %d\n", d.Name, labels, sum)
			fmt.Fprintf(bw, "%s_count%s %d\n", d.Name, labels, cum)
		}
	}
}

// escapeHelp escapes backslashes and newlines per the exposition
// format's HELP rules.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Sample is one parsed exposition sample: the metric name with its
// label set exactly as rendered, and the parsed value.
type Sample struct {
	Name   string // bare metric name (no labels)
	Series string // name{labels...} — the full series identity
	Value  float64
}

// ParseProm parses Prometheus text exposition v0.0.4 strictly enough
// to act as a format validator: every non-comment line must be
// `name[{labels}] value`, HELP/TYPE comments must be well-formed and
// TYPE must precede samples of its metric. It returns the samples in
// input order. The golden tests and the CI scrape assertion both go
// through this parser, so "qmfleetd serves valid exposition" is a
// checked property, not a hope.
func ParseProm(r io.Reader) ([]Sample, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var samples []Sample
	typed := map[string]string{} // metric name → TYPE
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if err := parsePromComment(text, typed); err != nil {
				return nil, fmt.Errorf("line %d: %w", line, err)
			}
			continue
		}
		s, err := parsePromSample(text)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		if err := checkTyped(typed, s.Name); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		samples = append(samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return samples, nil
}

// parsePromComment validates a # HELP / # TYPE line (other comments
// pass through) and records TYPE declarations.
func parsePromComment(text string, typed map[string]string) error {
	fields := strings.Fields(text)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed HELP comment %q", text)
		}
	case "TYPE":
		if len(fields) != 4 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed TYPE comment %q", text)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
		typed[fields[2]] = fields[3]
	}
	return nil
}

// parsePromSample splits `name[{labels}] value`.
func parsePromSample(text string) (Sample, error) {
	series := text
	valueStr := ""
	if i := strings.Index(text, "}"); i >= 0 {
		series = strings.TrimSpace(text[:i+1])
		valueStr = strings.TrimSpace(text[i+1:])
	} else {
		var ok bool
		series, valueStr, ok = strings.Cut(text, " ")
		if !ok {
			return Sample{}, fmt.Errorf("sample %q has no value", text)
		}
		valueStr = strings.TrimSpace(valueStr)
	}
	name := series
	if i := strings.Index(series, "{"); i >= 0 {
		if !strings.HasSuffix(series, "}") {
			return Sample{}, fmt.Errorf("unbalanced label braces in %q", text)
		}
		name = series[:i]
		if err := checkLabels(series[i+1 : len(series)-1]); err != nil {
			return Sample{}, fmt.Errorf("%w in %q", err, text)
		}
	}
	if !validMetricName(name) {
		return Sample{}, fmt.Errorf("invalid metric name %q", name)
	}
	v, err := strconv.ParseFloat(valueStr, 64)
	if err != nil {
		return Sample{}, fmt.Errorf("sample %q: bad value: %w", text, err)
	}
	return Sample{Name: name, Series: series, Value: v}, nil
}

// checkLabels validates a comma-separated k="v" label body.
func checkLabels(body string) error {
	if strings.TrimSpace(body) == "" {
		return nil
	}
	for _, part := range strings.Split(body, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || !validMetricName(k) {
			return fmt.Errorf("malformed label %q", part)
		}
		if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
			return fmt.Errorf("unquoted label value %q", part)
		}
	}
	return nil
}

// checkTyped requires a preceding TYPE for the sample's metric family
// (histogram series resolve _bucket/_sum/_count to their family).
func checkTyped(typed map[string]string, name string) error {
	if _, ok := typed[name]; ok {
		return nil
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if typed[base] == "histogram" || typed[base] == "summary" {
				return nil
			}
		}
	}
	return fmt.Errorf("sample %s has no preceding # TYPE declaration", name)
}

// FindSample returns the first sample whose bare name matches, and
// whether one exists — the lookup the CI assertion tool leans on.
func FindSample(samples []Sample, name string) (Sample, bool) {
	for _, s := range samples {
		if s.Name == name {
			return s, true
		}
	}
	return Sample{}, false
}

// FindSeries returns the first sample matching the bare name whose
// series carries every given `k="v"` label pair — the labeled lookup
// (instance="0") the CI assertion tool uses against per-instance
// series. An empty pair list degenerates to FindSample.
func FindSeries(samples []Sample, name string, pairs []string) (Sample, bool) {
	for _, s := range samples {
		if s.Name != name {
			continue
		}
		ok := true
		for _, p := range pairs {
			if !strings.Contains(s.Series, p) {
				ok = false
				break
			}
		}
		if ok {
			return s, true
		}
	}
	return Sample{}, false
}
