package obs

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestTraceRingWrap(t *testing.T) {
	tr := NewTrace(4)
	for i := int64(1); i <= 10; i++ {
		tr.Rec(EvAdmit, core.Time(100*i), int32(i), NoWorker, 0)
	}
	if tr.Seq() != 10 {
		t.Fatalf("seq = %d, want 10", tr.Seq())
	}
	if tr.Len() != 4 {
		t.Fatalf("len = %d, want 4", tr.Len())
	}
	evs := tr.Events()
	for i, e := range evs {
		wantSeq := int64(7 + i)
		if e.Seq != wantSeq || e.T != core.Time(100*wantSeq) || e.Stream != int32(wantSeq) {
			t.Fatalf("event %d = %+v, want seq %d", i, e, wantSeq)
		}
	}
}

func TestTraceDefaultCapacity(t *testing.T) {
	tr := NewTrace(0)
	tr.Rec(EvArrive, 1, 0, NoWorker, 0)
	if tr.Len() != 1 {
		t.Fatalf("len = %d, want 1", tr.Len())
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{EvArrive, EvAdmit, EvDelay, EvShed, EvBind,
		EvComplete, EvSteal, EvPark, EvCheckpoint, EvSwap}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "unknown" || seen[s] {
			t.Fatalf("kind %d has bad or duplicate name %q", k, s)
		}
		seen[s] = true
	}
	if EventKind(200).String() != "unknown" {
		t.Fatal("out-of-range kind must read unknown")
	}
}

// TestWriteChromeGolden pins the Chrome trace-viewer JSON shape: the
// exact bytes for a fixed event sequence, so any drift in the schema
// the viewer depends on fails loudly.
func TestWriteChromeGolden(t *testing.T) {
	tr := NewTrace(8)
	tr.Rec(EvArrive, 1500, 3, NoWorker, 0)     // frontier lane, ts = 1.5µs
	tr.Rec(EvSteal, NoTime, 5, 2, 9)           // scheduler lane, ts = seq
	tr.Rec(EvCheckpoint, 2000, NoStream, NoWorker, 42)
	var sb strings.Builder
	if err := tr.WriteChrome(&sb); err != nil {
		t.Fatal(err)
	}
	want := `{
 "displayTimeUnit": "ns",
 "traceEvents": [
  {
   "name": "arrive",
   "cat": "frontier",
   "ph": "i",
   "ts": 1.5,
   "pid": 0,
   "tid": 0,
   "s": "t",
   "args": {
    "seq": 1,
    "stream": 3,
    "arg": 0,
    "t_nanos": 1500
   }
  },
  {
   "name": "steal",
   "cat": "sched",
   "ph": "i",
   "ts": 2,
   "pid": 1,
   "tid": 2,
   "s": "t",
   "args": {
    "seq": 2,
    "stream": 5,
    "arg": 9,
    "t_nanos": -1
   }
  },
  {
   "name": "checkpoint",
   "cat": "frontier",
   "ph": "i",
   "ts": 2,
   "pid": 0,
   "tid": 0,
   "s": "t",
   "args": {
    "seq": 3,
    "stream": -1,
    "arg": 42,
    "t_nanos": 2000
   }
  }
 ]
}
`
	if got := sb.String(); got != want {
		t.Fatalf("chrome trace mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestWriteChromeRoundTrip re-parses the JSON the writer emits the way
// the trace viewer would: a top-level object with a traceEvents array
// of instant events carrying ts/pid/tid — the structural contract for
// "loads in chrome://tracing".
func TestWriteChromeRoundTrip(t *testing.T) {
	tr := NewTrace(16)
	tr.Rec(EvArrive, 1000, 0, NoWorker, 0)
	tr.Rec(EvAdmit, 1000, 0, NoWorker, 0)
	tr.Rec(EvBind, 1000, 0, NoWorker, 7)
	tr.Rec(EvPark, NoTime, NoStream, 1, 3)
	tr.Rec(EvComplete, 5000, 0, NoWorker, 7)
	var sb strings.Builder
	if err := tr.WriteChrome(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			PID  int     `json:"pid"`
			TID  int     `json:"tid"`
			S    string  `json:"s"`
			Args struct {
				Seq int64 `json:"seq"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("emitted trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("got %d trace events, want 5", len(doc.TraceEvents))
	}
	for i, e := range doc.TraceEvents {
		if e.Ph != "i" || e.S != "t" {
			t.Fatalf("event %d: ph/s = %q/%q, want instant/thread", i, e.Ph, e.S)
		}
		if e.Args.Seq != int64(i+1) {
			t.Fatalf("event %d: seq = %d, want %d", i, e.Args.Seq, i+1)
		}
		if e.TS < 0 {
			t.Fatalf("event %d: negative ts %v", i, e.TS)
		}
	}
	// The park record has no engine instant: it must land on the
	// scheduler pid with its worker as tid.
	park := doc.TraceEvents[3]
	if park.PID != chromePIDSched || park.TID != 1 {
		t.Fatalf("park event on pid/tid %d/%d, want %d/1", park.PID, park.TID, chromePIDSched)
	}
}
