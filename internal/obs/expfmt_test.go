package obs

import (
	"strings"
	"testing"
)

// promRegistry builds a fixed registry with one instrument of each
// kind, set to known values — shared by the golden and round-trip
// tests.
func promRegistry() *Registry {
	r := NewRegistry("qmtest")
	c := r.Counter("admitted", "Streams admitted.", SerialOrder)
	g := r.Gauge("backlog", "Backlog depth.", SerialOrder)
	f := r.FloatGauge("integral", "Backlog integral.", SerialOrder)
	h := r.Histogram("flush", "Flush sizes.", ShapeDependent, []int64{1, 4})
	c.Add(42)
	g.Set(7)
	f.Set(1.5)
	h.Observe(1)
	h.Observe(3)
	h.Observe(9)
	return r
}

// TestWritePromGolden pins the exposition bytes: Prometheus text
// format v0.0.4, determinism labels, cumulative histogram buckets.
func TestWritePromGolden(t *testing.T) {
	var sb strings.Builder
	if err := promRegistry().WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP qmtest_admitted_total Streams admitted.
# TYPE qmtest_admitted_total counter
qmtest_admitted_total{determinism="serial-order"} 42
# HELP qmtest_backlog Backlog depth.
# TYPE qmtest_backlog gauge
qmtest_backlog{determinism="serial-order"} 7
# HELP qmtest_integral Backlog integral.
# TYPE qmtest_integral gauge
qmtest_integral{determinism="serial-order"} 1.5
# HELP qmtest_flush Flush sizes.
# TYPE qmtest_flush histogram
qmtest_flush_bucket{determinism="shape-dependent",le="1"} 1
qmtest_flush_bucket{determinism="shape-dependent",le="4"} 2
qmtest_flush_bucket{determinism="shape-dependent",le="+Inf"} 3
qmtest_flush_sum{determinism="shape-dependent"} 13
qmtest_flush_count{determinism="shape-dependent"} 3
`
	if got := sb.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestParsePromRoundTrip feeds the writer's output back through the
// parser: every series must come back with its value intact — the
// property the CI scrape assertion relies on.
func TestParsePromRoundTrip(t *testing.T) {
	var sb strings.Builder
	if err := promRegistry().WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseProm(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("parse of our own exposition failed: %v", err)
	}
	wantValues := map[string]float64{
		"qmtest_admitted_total": 42,
		"qmtest_backlog":        7,
		"qmtest_integral":       1.5,
		"qmtest_flush_sum":      13,
		"qmtest_flush_count":    3,
	}
	for name, want := range wantValues {
		s, ok := FindSample(samples, name)
		if !ok {
			t.Fatalf("sample %s missing from round trip", name)
		}
		if s.Value != want {
			t.Fatalf("%s = %v, want %v", name, s.Value, want)
		}
	}
	// The +Inf bucket must equal the count, per the format's contract.
	var inf, count float64
	for _, s := range samples {
		if s.Name == "qmtest_flush_bucket" && strings.Contains(s.Series, `le="+Inf"`) {
			inf = s.Value
		}
		if s.Name == "qmtest_flush_count" {
			count = s.Value
		}
	}
	if inf != count || count == 0 {
		t.Fatalf("+Inf bucket %v != count %v", inf, count)
	}
	if escapeHelp("a\\b\nc") != `a\\b\nc` {
		t.Fatal("help escaping broken")
	}
}

func TestParsePromRejectsMalformed(t *testing.T) {
	cases := []struct{ name, in string }{
		{"no value", "# TYPE m counter\nm{}"},
		{"bad value", "# TYPE m counter\nm{} abc"},
		{"unbalanced braces", "# TYPE m counter\nm{x=\"1\" 3"},
		{"bad name", "# TYPE m counter\n2m 3"},
		{"unquoted label", "# TYPE m counter\nm{x=1} 3"},
		{"untyped sample", "m 3"},
		{"bad type", "# TYPE m zebra\nm 3"},
		{"malformed type", "# TYPE m\nm 3"},
		{"malformed help", "# HELP \nm 3"},
	}
	for _, tc := range cases {
		if _, err := ParseProm(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: parse accepted %q", tc.name, tc.in)
		}
	}
}

func TestParsePromAcceptsHistogramSeries(t *testing.T) {
	in := `# TYPE m histogram
m_bucket{le="1"} 1
m_bucket{le="+Inf"} 2
m_sum 3
m_count 2
`
	samples, err := ParseProm(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 4 {
		t.Fatalf("got %d samples, want 4", len(samples))
	}
}

// TestWithLabelsExposition pins the labeled-view mechanics end to end:
// two instance views of one root registry register the same family, the
// exposition groups both series under one HELP/TYPE block (interleaved
// registration order notwithstanding), the parser round-trips it, and
// FindSeries resolves each instance's series by its label pair.
func TestWithLabelsExposition(t *testing.T) {
	root := NewRegistry("qmtest")
	i0 := root.WithLabels("instance", "0")
	i1 := root.WithLabels("instance", "1")
	a0 := i0.Counter("admitted", "Streams admitted.", SerialOrder)
	b0 := i0.Gauge("backlog", "Backlog depth.", SerialOrder)
	a1 := i1.Counter("admitted", "Streams admitted.", SerialOrder)
	b1 := i1.Gauge("backlog", "Backlog depth.", SerialOrder)
	a0.Add(3)
	a1.Add(5)
	b0.Set(1)
	b1.Set(2)

	var sb strings.Builder
	if err := i1.WriteProm(&sb); err != nil { // a view renders the whole root
		t.Fatal(err)
	}
	want := `# HELP qmtest_admitted_total Streams admitted.
# TYPE qmtest_admitted_total counter
qmtest_admitted_total{determinism="serial-order",instance="0"} 3
qmtest_admitted_total{determinism="serial-order",instance="1"} 5
# HELP qmtest_backlog Backlog depth.
# TYPE qmtest_backlog gauge
qmtest_backlog{determinism="serial-order",instance="0"} 1
qmtest_backlog{determinism="serial-order",instance="1"} 2
`
	if got := sb.String(); got != want {
		t.Fatalf("labeled exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	samples, err := ParseProm(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	s, ok := FindSeries(samples, "qmtest_admitted_total", []string{`instance="1"`})
	if !ok || s.Value != 5 {
		t.Fatalf("FindSeries(instance=1) = %+v, %v", s, ok)
	}
	if _, ok := FindSeries(samples, "qmtest_admitted_total", []string{`instance="9"`}); ok {
		t.Fatal("FindSeries matched a nonexistent instance")
	}
	if len(root.Metrics()) != 4 {
		t.Fatalf("root sees %d series, want 4", len(root.Metrics()))
	}

	// Re-registering a family member with the same labels, or the same
	// name as a different kind, is a programmer error on any view.
	for name, fn := range map[string]func(){
		"duplicate series": func() { i0.Counter("admitted", "dup", SerialOrder) },
		"kind mismatch":    func() { root.Gauge("admitted_total", "kind", SerialOrder) },
		"det label key":    func() { root.WithLabels("determinism", "x") },
		"quoted value":     func() { root.WithLabels("instance", `a"b`) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
