package obs

// This file defines the metric bundles the engine layers accept: flat
// structs of pre-registered instruments, so instrumented code holds
// direct pointers and the hot path never consults the registry. A nil
// bundle pointer disables a layer's instrumentation entirely; the
// individual instruments are additionally nil-receiver-safe.

// FleetMetrics instruments the open/closed fleet engine: the frontier's
// serial-order admission accounting and the scheduler's shape-dependent
// work-distribution counters.
//
// Serial-order metrics are pure functions of the run's serial event
// order — property-tested identical at any (workers, batch, lookahead).
// The scheduler metrics describe how this particular shape interleaved
// and are tagged shape-dependent in the registry.
type FleetMetrics struct {
	// Frontier (serial-order).
	Arrivals        *Counter    // arrival events decided
	Admitted        *Counter    // verdicts: admit (incl. backlog promotions)
	Delayed         *Counter    // verdicts: queue in the backlog
	Shed            *Counter    // verdicts: shed (incl. terminal backlog shedding)
	Departures      *Counter    // departure events retired by the event loop
	Events          *Counter    // processed event groups (checkpoint-boundary clock)
	Backlog         *Gauge      // current backlog depth
	BacklogMax      *Gauge      // backlog high-water
	BacklogIntegral *FloatGauge // ∫ backlog·dt (stream·virtual-nanoseconds)

	// Scheduler (shape-dependent).
	Batches        *Counter   // cycle batches claimed and advanced by workers
	Steals         *Counter   // slots claimed outside the worker's own stripe/shard
	Parks          *Counter   // workers parked with nothing claimable
	OverflowParks  *Counter   // workers parked on a full completion ring
	BlockingDrains *Counter   // frontier blocked on a completion to clear a bound gate
	RingHighWater  *Gauge     // completion-ring occupancy high-water
	FlushSize      *Histogram // ready slots per lookahead flush
}

// flushBounds buckets the lookahead flush size: the default window is
// 16, and qmfleetd feeds can batch far past it.
var flushBounds = []int64{1, 2, 4, 8, 16, 32, 64, 128}

// NewFleetMetrics registers the fleet instrument set on r.
func NewFleetMetrics(r *Registry) *FleetMetrics {
	return &FleetMetrics{
		Arrivals:        r.Counter("arrivals", "Arrival events decided by the admission frontier.", SerialOrder),
		Admitted:        r.Counter("admitted", "Streams admitted into service (arrival-time and backlog promotions).", SerialOrder),
		Delayed:         r.Counter("delayed", "Arrivals queued in the admission backlog.", SerialOrder),
		Shed:            r.Counter("shed", "Streams shed (arrival-time verdicts and terminal backlog shedding).", SerialOrder),
		Departures:      r.Counter("departures", "Departure events retired by the virtual-time event loop.", SerialOrder),
		Events:          r.Counter("engine_events", "Processed event groups: the engine's checkpoint-boundary clock.", SerialOrder),
		Backlog:         r.Gauge("backlog", "Streams currently queued in the admission backlog.", SerialOrder),
		BacklogMax:      r.Gauge("backlog_max", "Admission backlog high-water mark.", SerialOrder),
		BacklogIntegral: r.FloatGauge("backlog_integral", "Backlog integrated over virtual time (stream·nanoseconds).", SerialOrder),

		Batches:        r.Counter("sched_batches", "Cycle batches claimed and advanced by workers.", ShapeDependent),
		Steals:         r.Counter("sched_steals", "Slots claimed outside the claiming worker's own stripe or shard.", ShapeDependent),
		Parks:          r.Counter("sched_parks", "Worker park transitions with nothing claimable.", ShapeDependent),
		OverflowParks:  r.Counter("sched_overflow_parks", "Worker parks on a full completion ring.", ShapeDependent),
		BlockingDrains: r.Counter("sched_blocking_drains", "Frontier waits for a completion to clear a departure-bound gate.", ShapeDependent),
		RingHighWater:  r.Gauge("sched_ring_occupancy_max", "Per-worker completion-ring occupancy high-water.", ShapeDependent),
		FlushSize:      r.Histogram("sched_flush_streams", "Ready slots published per lookahead flush.", ShapeDependent, flushBounds),
	}
}

// CheckpointMetrics instruments the snapshot store. Counters are
// shape-independent facts about the snapshot sequence; encode time is
// a wall-clock quantity and therefore shape-dependent. NowNanos is the
// store's injected clock — engine-scoped code never reads the wall
// clock itself, so the CLIs supply time.Now and a nil NowNanos simply
// skips duration observation.
type CheckpointMetrics struct {
	Snapshots *Counter // snapshots written durably ("checkpoints_total")
	Pruned    *Counter // old snapshots removed by retention
	Bytes     *Counter // snapshot bytes written
	Fallbacks *Counter // LoadLatest skips past corrupt/foreign files
	Encode    *Histogram
	NowNanos  func() int64
}

// encodeBounds buckets snapshot encode+write time: 100µs to 10s.
var encodeBounds = []int64{1e5, 1e6, 1e7, 1e8, 1e9, 1e10}

// NewCheckpointMetrics registers the snapshot-store instrument set on r.
func NewCheckpointMetrics(r *Registry, now func() int64) *CheckpointMetrics {
	return &CheckpointMetrics{
		Snapshots: r.Counter("checkpoints", "Snapshots written durably by the checkpoint store.", SerialOrder),
		Pruned:    r.Counter("checkpoints_pruned", "Snapshots removed by the store's retention policy.", SerialOrder),
		Bytes:     r.Counter("checkpoint_bytes", "Snapshot bytes written durably.", SerialOrder),
		Fallbacks: r.Counter("checkpoint_fallbacks", "Corrupt or foreign snapshot files skipped by LoadLatest.", SerialOrder),
		Encode:    r.Histogram("checkpoint_encode_nanos", "Wall-clock nanoseconds to encode and durably write one snapshot.", ShapeDependent, encodeBounds),
		NowNanos:  now,
	}
}
