package obs

import (
	"testing"
)

func TestCounterGaugeSemantics(t *testing.T) {
	r := NewRegistry("t")
	c := r.Counter("things", "things.", SerialOrder)
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("depth", "depth.", SerialOrder)
	g.Set(7)
	g.SetMax(3) // below: no-op
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	g.SetMax(11)
	if got := g.Value(); got != 11 {
		t.Fatalf("gauge after SetMax = %d, want 11", got)
	}
	f := r.FloatGauge("load", "load.", SerialOrder)
	f.Set(2.5)
	if got := f.Value(); got != 2.5 {
		t.Fatalf("float gauge = %v, want 2.5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry("t")
	h := r.Histogram("sizes", "sizes.", ShapeDependent, []int64{1, 4, 16})
	for _, v := range []int64{0, 1, 2, 4, 5, 16, 17, 1000} {
		h.Observe(v)
	}
	if got := h.Count(); got != 8 {
		t.Fatalf("count = %d, want 8", got)
	}
	if got := h.Sum(); got != 1045 {
		t.Fatalf("sum = %d, want 1045", got)
	}
	counts, _ := h.snapshot()
	want := []int64{2, 2, 2, 2} // ≤1, (1,4], (4,16], +Inf
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, counts[i], want[i], counts)
		}
	}
}

// TestNilInstrumentsAreNoOps pins the nil-receiver contract the
// instrumented engine leans on: disabled observability must be a plain
// branch, never a panic.
func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var f *FloatGauge
	var h *Histogram
	var tr *Trace
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.SetMax(2)
	f.Set(1.5)
	h.Observe(9)
	tr.Rec(EvAdmit, 10, 0, NoWorker, 0)
	if c.Value() != 0 || g.Value() != 0 || f.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if tr.Len() != 0 || tr.Seq() != 0 || tr.Events() != nil {
		t.Fatal("nil trace must read empty")
	}
}

func TestRegistryRejectsProgrammerErrors(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry("t")
	r.Counter("dup", "first.", SerialOrder)
	mustPanic("duplicate", func() { r.Counter("dup", "second.", SerialOrder) })
	bare := NewRegistry("")
	mustPanic("bad name", func() { r.Gauge("no spaces", "bad.", SerialOrder) })
	mustPanic("digit first", func() { bare.Gauge("9lives", "bad.", SerialOrder) })
	mustPanic("empty bounds", func() { r.Histogram("h1", "bad.", SerialOrder, nil) })
	mustPanic("unsorted bounds", func() { r.Histogram("h2", "bad.", SerialOrder, []int64{4, 2}) })
	mustPanic("bad prefix", func() { NewRegistry("9x") })
}

// TestHotOpsAllocationFree is the zero-alloc contract, measured: every
// operation an engine hot path may issue performs no heap allocation.
func TestHotOpsAllocationFree(t *testing.T) {
	r := NewRegistry("t")
	c := r.Counter("c", "c.", SerialOrder)
	g := r.Gauge("g", "g.", SerialOrder)
	f := r.FloatGauge("f", "f.", SerialOrder)
	h := r.Histogram("h", "h.", ShapeDependent, []int64{1, 8, 64})
	tr := NewTrace(64)
	cases := []struct {
		name string
		op   func()
	}{
		{"counter-add", func() { c.Add(2) }},
		{"counter-inc", func() { c.Inc() }},
		{"gauge-set", func() { g.Set(3) }},
		{"gauge-setmax", func() { g.SetMax(9) }},
		{"floatgauge-set", func() { f.Set(1.25) }},
		{"histogram-observe", func() { h.Observe(17) }},
		{"trace-rec", func() { tr.Rec(EvSteal, NoTime, 3, 1, 42) }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(100, tc.op); allocs != 0 {
			t.Errorf("%s allocates %.2f times per op, want 0", tc.name, allocs)
		}
	}
}

func TestCounterAutoTotalSuffix(t *testing.T) {
	r := NewRegistry("app")
	r.Counter("events", "events.", SerialOrder)
	r.Counter("done_total", "done.", SerialOrder)
	ms := r.Metrics()
	if ms[0].Name != "app_events_total" {
		t.Fatalf("counter name = %q, want app_events_total", ms[0].Name)
	}
	if ms[1].Name != "app_done_total" {
		t.Fatalf("counter name = %q, want app_done_total (no double suffix)", ms[1].Name)
	}
}
