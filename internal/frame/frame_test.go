package frame

import (
	"math"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 16); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := New(20, 16); err == nil {
		t.Error("non-multiple width accepted")
	}
	f, err := New(CIFWidth, CIFHeight)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Y) != CIFWidth*CIFHeight {
		t.Fatalf("luma size %d", len(f.Y))
	}
	if len(f.Cb) != CIFWidth*CIFHeight/4 || len(f.Cr) != len(f.Cb) {
		t.Fatal("chroma subsampling wrong")
	}
}

func TestCIFMacroblockCount(t *testing.T) {
	// The paper: 352×288 = 396 macroblocks.
	f := MustNew(CIFWidth, CIFHeight)
	if f.NumMB() != 396 {
		t.Fatalf("CIF has %d macroblocks, want 396", f.NumMB())
	}
	if f.MBCols() != 22 || f.MBRows() != 18 {
		t.Fatalf("MB grid %dx%d, want 22x18", f.MBCols(), f.MBRows())
	}
}

func TestYAtClamping(t *testing.T) {
	f := MustNew(16, 16)
	f.Y[0] = 7
	f.Y[15] = 9
	f.Y[15*16] = 11
	if f.YAt(-5, -5) != 7 {
		t.Fatal("top-left clamp")
	}
	if f.YAt(100, 0) != 9 {
		t.Fatal("right clamp")
	}
	if f.YAt(0, 100) != 11 {
		t.Fatal("bottom clamp")
	}
}

func TestMBOrigin(t *testing.T) {
	f := MustNew(CIFWidth, CIFHeight)
	x, y := f.MBOrigin(0)
	if x != 0 || y != 0 {
		t.Fatal("mb 0 origin")
	}
	x, y = f.MBOrigin(22) // first MB of second row
	if x != 0 || y != 16 {
		t.Fatalf("mb 22 origin (%d,%d)", x, y)
	}
	x, y = f.MBOrigin(23)
	if x != 16 || y != 16 {
		t.Fatalf("mb 23 origin (%d,%d)", x, y)
	}
}

func TestBlock8(t *testing.T) {
	f := MustNew(16, 16)
	for i := range f.Y {
		f.Y[i] = uint8(i % 251)
	}
	var b [64]int32
	f.Block8(4, 2, &b)
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			if b[r*8+c] != int32(f.Y[(2+r)*16+4+c]) {
				t.Fatalf("block mismatch at (%d,%d)", r, c)
			}
		}
	}
}

func TestPSNR(t *testing.T) {
	a := MustNew(16, 16)
	b := MustNew(16, 16)
	p, err := PSNR(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(p, 1) {
		t.Fatalf("identical frames PSNR = %v", p)
	}
	for i := range b.Y {
		b.Y[i] = a.Y[i] + 10
	}
	p, _ = PSNR(a, b)
	want := 10 * math.Log10(255*255/100.0)
	if math.Abs(p-want) > 1e-9 {
		t.Fatalf("PSNR = %v, want %v", p, want)
	}
	if _, err := PSNR(a, MustNew(32, 16)); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestSourceDeterministic(t *testing.T) {
	s1 := NewCIFSource(42)
	s2 := NewCIFSource(42)
	f1 := s1.Frame(7)
	f2 := s2.Frame(7)
	for i := range f1.Y {
		if f1.Y[i] != f2.Y[i] {
			t.Fatal("same seed, same frame index must be identical")
		}
	}
	s3 := NewCIFSource(43)
	f3 := s3.Frame(7)
	same := true
	for i := range f1.Y {
		if f1.Y[i] != f3.Y[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds must differ")
	}
}

func TestSourceFramesEvolve(t *testing.T) {
	s := NewCIFSource(1)
	f0 := s.Frame(0)
	f1 := s.Frame(1)
	diff := 0
	for i := range f0.Y {
		if f0.Y[i] != f1.Y[i] {
			diff++
		}
	}
	if diff < len(f0.Y)/20 {
		t.Fatalf("consecutive frames differ in only %d pixels; motion too weak", diff)
	}
}

func TestComplexityProfile(t *testing.T) {
	// Default profile peaks mid-sequence.
	if DefaultComplexity(14) <= DefaultComplexity(0) {
		t.Fatal("default complexity must peak mid-sequence")
	}
	if DefaultComplexity(28) >= DefaultComplexity(14) {
		t.Fatal("default complexity must fall off after the peak")
	}
	s := &Source{W: 32, H: 32, Seed: 5, ComplexityProfile: func(i int) float64 { return 2.5 }}
	if f := s.Frame(3); f.Complexity != 2.5 {
		t.Fatalf("custom profile ignored: %v", f.Complexity)
	}
}

func TestClamp8(t *testing.T) {
	if clamp8(-3) != 0 || clamp8(300) != 255 || clamp8(128.4) != 128 {
		t.Fatal("clamp8 broken")
	}
}
