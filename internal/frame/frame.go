// Package frame provides YUV 4:2:0 video frames and a deterministic
// synthetic CIF video source. The source stands in for the paper's input
// sequence ("29 frames of 352×288 pixels, 396 macroblocks"): it renders
// moving gradients, moving rectangles and film grain whose amounts follow
// a per-frame complexity profile, so the encoder's work genuinely varies
// with content the way camera footage does.
package frame

import (
	"fmt"
	"math"
)

// MBSize is the macroblock edge in luma pixels.
const MBSize = 16

// CIF dimensions (352×288 = 22×18 = 396 macroblocks), the paper's format.
const (
	CIFWidth  = 352
	CIFHeight = 288
)

// Frame is a YUV 4:2:0 picture. Chroma planes are half-resolution in
// both dimensions.
type Frame struct {
	W, H       int
	Y, Cb, Cr  []uint8
	Complexity float64 // the source's complexity factor for this frame (diagnostic)
}

// New allocates a zeroed frame. Width and height must be multiples of
// the macroblock size.
func New(w, h int) (*Frame, error) {
	if w <= 0 || h <= 0 || w%MBSize != 0 || h%MBSize != 0 {
		return nil, fmt.Errorf("frame: dimensions %dx%d not multiples of %d", w, h, MBSize)
	}
	return &Frame{
		W: w, H: h,
		Y:  make([]uint8, w*h),
		Cb: make([]uint8, w*h/4),
		Cr: make([]uint8, w*h/4),
	}, nil
}

// MustNew is New that panics on invalid dimensions.
func MustNew(w, h int) *Frame {
	f, err := New(w, h)
	if err != nil {
		panic(err)
	}
	return f
}

// Clone returns a deep copy of the frame.
func (f *Frame) Clone() *Frame {
	c := MustNew(f.W, f.H)
	copy(c.Y, f.Y)
	copy(c.Cb, f.Cb)
	copy(c.Cr, f.Cr)
	c.Complexity = f.Complexity
	return c
}

// MBCols returns the number of macroblock columns.
func (f *Frame) MBCols() int { return f.W / MBSize }

// MBRows returns the number of macroblock rows.
func (f *Frame) MBRows() int { return f.H / MBSize }

// NumMB returns the macroblock count (396 for CIF).
func (f *Frame) NumMB() int { return f.MBCols() * f.MBRows() }

// YAt returns the luma sample at (x, y), clamping coordinates to the
// frame borders (the extension used by motion search at frame edges).
func (f *Frame) YAt(x, y int) uint8 {
	if x < 0 {
		x = 0
	}
	if x >= f.W {
		x = f.W - 1
	}
	if y < 0 {
		y = 0
	}
	if y >= f.H {
		y = f.H - 1
	}
	return f.Y[y*f.W+x]
}

// MBOrigin returns the top-left luma pixel of macroblock mb in raster
// order.
func (f *Frame) MBOrigin(mb int) (x, y int) {
	return (mb % f.MBCols()) * MBSize, (mb / f.MBCols()) * MBSize
}

// Block8 copies the 8×8 luma block with top-left corner (x, y) into dst
// as int32 samples (clamped at borders).
func (f *Frame) Block8(x, y int, dst *[64]int32) {
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			dst[r*8+c] = int32(f.YAt(x+c, y+r))
		}
	}
}

// PSNR computes the luma peak signal-to-noise ratio between two frames
// of identical dimensions, in dB. Identical frames yield +Inf.
func PSNR(a, b *Frame) (float64, error) {
	if a.W != b.W || a.H != b.H {
		return 0, fmt.Errorf("frame: PSNR dimension mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H)
	}
	var sse float64
	for i := range a.Y {
		d := float64(int(a.Y[i]) - int(b.Y[i]))
		sse += d * d
	}
	if sse == 0 {
		return math.Inf(1), nil
	}
	mse := sse / float64(len(a.Y))
	return 10 * math.Log10(255*255/mse), nil
}
