package frame

import "math"

// Source deterministically synthesises a video sequence. Frame i is a
// pure function of (seed, i), so repeated generation yields bit-identical
// pictures.
type Source struct {
	W, H int
	Seed uint64
	// ComplexityProfile maps a frame index to a complexity factor
	// ≥ 0 controlling motion amplitude and grain. Nil selects
	// DefaultComplexity.
	ComplexityProfile func(i int) float64
}

// NewCIFSource returns a CIF source with the default complexity profile.
func NewCIFSource(seed uint64) *Source {
	return &Source{W: CIFWidth, H: CIFHeight, Seed: seed}
}

// DefaultComplexity is a slowly varying per-frame complexity profile:
// calm at the start, a busy middle section, calm again — shaped like a
// scene change in the middle of the paper's 29-frame input.
func DefaultComplexity(i int) float64 {
	return 1 + 0.8*math.Exp(-sq(float64(i)-14)/30)
}

func sq(x float64) float64 { return x * x }

// Frame renders frame i.
func (s *Source) Frame(i int) *Frame {
	f := MustNew(s.W, s.H)
	cpx := DefaultComplexity(i)
	if s.ComplexityProfile != nil {
		cpx = s.ComplexityProfile(i)
	}
	f.Complexity = cpx
	t := float64(i)

	// Background: slowly drifting diagonal gradient.
	dx := 3 * t * cpx
	dy := 2 * t * cpx
	for y := 0; y < s.H; y++ {
		for x := 0; x < s.W; x++ {
			v := 96 + 0.25*(float64(x)+dx) + 0.2*(float64(y)+dy)
			v += 20 * math.Sin((float64(x)+4*dx)/37)
			f.Y[y*s.W+x] = clamp8(v)
		}
	}
	// Moving rectangles: amplitude and count scale with complexity.
	nRects := 2 + int(cpx*3)
	for r := 0; r < nRects; r++ {
		h := s.hash(uint64(r), 0)
		w0 := 24 + int(h%64)
		h0 := 16 + int((h>>8)%48)
		speed := (1 + float64((h>>16)%5)) * cpx
		cx := int(math.Mod(float64(h%uint64(s.W))+speed*t*4, float64(s.W)))
		cy := int(math.Mod(float64((h>>24)%uint64(s.H))+speed*t*2, float64(s.H)))
		shade := uint8(40 + (h>>32)%176)
		for yy := cy; yy < cy+h0 && yy < s.H; yy++ {
			for xx := cx; xx < cx+w0 && xx < s.W; xx++ {
				f.Y[yy*s.W+xx] = shade
			}
		}
	}
	// Film grain: amplitude scales with complexity.
	amp := 6 * cpx
	for y := 0; y < s.H; y += 2 {
		for x := 0; x < s.W; x += 2 {
			g := (float64(s.hash(uint64(i)<<20|uint64(y), uint64(x)))/float64(math.MaxUint64) - 0.5) * 2 * amp
			idx := y*s.W + x
			f.Y[idx] = clamp8(float64(f.Y[idx]) + g)
		}
	}
	// Flat chroma with a slow tint drift (chroma is carried along but
	// the encoder's action structure follows the paper: luma dominates).
	cb := clamp8(128 + 10*math.Sin(t/7))
	cr := clamp8(128 + 10*math.Cos(t/9))
	for j := range f.Cb {
		f.Cb[j] = cb
		f.Cr[j] = cr
	}
	return f
}

func (s *Source) hash(a, b uint64) uint64 {
	x := s.Seed ^ (a * 0x9E3779B97F4A7C15) ^ (b * 0xBF58476D1CE4E5B9)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

func clamp8(v float64) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}
