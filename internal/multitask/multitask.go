// Package multitask implements the conclusion's "adaption to multiple
// tasks" direction: several cyclic parameterized systems sharing one CPU,
// each under its own Quality Manager, interleaved at action granularity
// by an EDF (earliest absolute deadline first) scheduler.
//
// The single-task theory assumes a dedicated CPU, so each task's timing
// tables must be inflated by its share of the processor before region
// construction (InflateTiming); with a consistent inflation the per-task
// managers retain their safety margins, which the tests demonstrate, and
// without it overload shows up as deadline misses — the gap this
// future-work item was about.
package multitask

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// Task is one cyclic application under quality management.
type Task struct {
	Name     string
	Sys      *core.System
	Mgr      core.Manager
	Exec     sim.ExecModel
	Period   core.Time // cycle arrival period; 0 = last deadline
	Cycles   int
	Overhead sim.OverheadModel
	// Sink, when non-nil, observes the task's records instead of the
	// trace retaining them (same contract as sim.Runner.Sink): the
	// task's Trace then carries only scalar aggregates.
	Sink sim.Sink
}

// InflateTiming scales a timing table by num/den, modelling a task that
// owns only den/num of the CPU (e.g. 2/1 for half the processor). Use it
// to build per-task systems whose managers stay safe under sharing.
func InflateTiming(tt *core.TimingTable, num, den int64) *core.TimingTable {
	if num <= 0 || den <= 0 || num < den {
		panic(fmt.Sprintf("multitask: inflation %d/%d must be ≥ 1", num, den))
	}
	out := core.NewTimingTable(tt.NumActions(), tt.NumLevels())
	for i := 0; i < tt.NumActions(); i++ {
		for q := 0; q < tt.NumLevels(); q++ {
			l := core.Level(q)
			out.Set(i, l,
				tt.Av(i, l)*core.Time(num)/core.Time(den),
				tt.WC(i, l)*core.Time(num)/core.Time(den))
		}
	}
	return out
}

// taskState tracks progress of one task through its cycles.
type taskState struct {
	task    *Task
	period  core.Time
	cycle   int
	index   int
	pending int
	curQ    core.Level
	done    bool
	lastRun int64 // dispatch sequence number, for fair tie-breaking
}

// arrival returns the absolute arrival instant of the task's current
// cycle.
func (st *taskState) arrival() core.Time {
	return core.Time(st.cycle) * st.period
}

// deadline returns the absolute deadline of the task's current cycle's
// last deadline action — the EDF key.
func (st *taskState) deadline() core.Time {
	return st.arrival() + st.task.Sys.LastDeadline()
}

// Result bundles the per-task traces of a shared run.
type Result struct {
	Traces map[string]*sim.Trace
	Final  core.Time
}

// TotalMisses sums deadline misses across tasks.
func (r *Result) TotalMisses() int {
	n := 0
	//detlint:allow nondeterminism commutative integer sum, order cannot reach the result
	for _, tr := range r.Traces {
		n += tr.Misses
	}
	return n
}

// Group is one independent EDF-scheduled task set: the tasks share one
// simulated CPU with each other, but not with other groups. A fleet of
// groups models many multi-tenant devices managed at once.
type Group struct {
	Name  string
	Tasks []*Task
}

// RunGroups executes independent groups concurrently on the simulation
// layer's sharded worker pool (workers ≤ 0 selects GOMAXPROCS) and
// returns each group's result keyed by group name. Every group stays a
// serial EDF simulation, so its result is identical to calling Run on
// its tasks; only independent groups overlap in wall-clock time. The
// groups must be independent: a stateful Manager instance (e.g. the
// baseline feedback controllers) must not be shared across groups —
// the stateless policy and table managers are safe to share.
func RunGroups(groups []Group, workers int) (map[string]*Result, error) {
	if len(groups) == 0 {
		return nil, errors.New("multitask: no groups")
	}
	seen := map[string]bool{}
	for _, g := range groups {
		if g.Name == "" {
			return nil, errors.New("multitask: group with empty name")
		}
		if seen[g.Name] {
			return nil, fmt.Errorf("multitask: duplicate group name %q", g.Name)
		}
		seen[g.Name] = true
	}
	results := make([]*Result, len(groups))
	errs := make([]error, len(groups))
	sim.Dispatch(len(groups), workers, func(i int) {
		results[i], errs[i] = Run(groups[i].Tasks)
	})
	out := make(map[string]*Result, len(groups))
	for i, g := range groups {
		if errs[i] != nil {
			return nil, fmt.Errorf("multitask: group %q: %w", g.Name, errs[i])
		}
		out[g.Name] = results[i]
	}
	return out, nil
}

// Run interleaves the tasks on one simulated CPU under EDF at action
// granularity and returns per-task traces.
func Run(tasks []*Task) (*Result, error) {
	if len(tasks) == 0 {
		return nil, errors.New("multitask: no tasks")
	}
	states := make([]*taskState, len(tasks))
	res := &Result{Traces: map[string]*sim.Trace{}}
	for i, tk := range tasks {
		if tk.Sys == nil || tk.Mgr == nil || tk.Exec == nil || tk.Cycles <= 0 {
			return nil, fmt.Errorf("multitask: task %q incomplete", tk.Name)
		}
		period := tk.Period
		if period == 0 {
			period = tk.Sys.LastDeadline()
		}
		states[i] = &taskState{task: tk, period: period}
		if _, dup := res.Traces[tk.Name]; dup {
			return nil, fmt.Errorf("multitask: duplicate task name %q", tk.Name)
		}
		res.Traces[tk.Name] = &sim.Trace{Manager: tk.Mgr.Name(), Period: period, Cycles: tk.Cycles}
	}

	t := core.Time(0)
	var seq int64
	for {
		// Pick the ready task with the earliest deadline; ties go to
		// the least recently dispatched task, so tasks with aligned
		// deadlines interleave at action granularity (which is what
		// the per-task timing inflation models). If none is ready,
		// jump to the next arrival.
		var pick *taskState
		nextArrival := core.TimeInf
		for _, st := range states {
			if st.done {
				continue
			}
			if st.arrival() > t {
				nextArrival = core.MinTime(nextArrival, st.arrival())
				continue
			}
			if pick == nil || st.deadline() < pick.deadline() ||
				(st.deadline() == pick.deadline() && st.lastRun < pick.lastRun) {
				pick = st
			}
		}
		if pick == nil {
			if nextArrival.IsInf() {
				break // all tasks finished
			}
			for _, st := range states {
				if !st.done && st.arrival() == nextArrival {
					res.Traces[st.task.Name].TotalIdle += nextArrival - t
				}
			}
			t = nextArrival
			continue
		}

		st := pick
		seq++
		st.lastRun = seq
		tr := res.Traces[st.task.Name]
		rec := sim.Record{Cycle: st.cycle, Index: st.index, Deadline: core.TimeInf}
		rel := t - st.arrival()
		if st.pending == 0 {
			d := st.task.Mgr.Decide(st.index, rel)
			oh := st.task.Overhead.Cost(d.Work)
			t += oh
			st.curQ = d.Q
			st.pending = d.Steps
			rec.Decision = true
			rec.Steps = d.Steps
			rec.Overhead = oh
			tr.TotalOverhead += oh
			tr.Decisions++
		}
		et := st.task.Exec.Actual(st.cycle, st.index, st.curQ)
		rec.Q = st.curQ
		rec.Start = t
		rec.Exec = et
		t += et
		tr.TotalExec += et
		st.pending--
		if a := st.task.Sys.Action(st.index); a.HasDeadline() {
			rec.Deadline = st.arrival() + a.Deadline
			if t > rec.Deadline {
				rec.Missed = true
				tr.Misses++
			}
		}
		if st.task.Sink != nil {
			st.task.Sink.Observe(rec)
		} else {
			tr.Records = append(tr.Records, rec)
		}

		st.index++
		if st.index == st.task.Sys.NumActions() {
			st.index = 0
			st.pending = 0
			st.cycle++
			if st.cycle == st.task.Cycles {
				st.done = true
			}
		}
	}
	res.Final = t
	for _, st := range states {
		res.Traces[st.task.Name].Final = t
	}
	return res, nil
}
