package multitask

import (
	"math"

	"repro/internal/core"
)

// Utilization returns the fraction of one simulated CPU a cyclic task
// demands at quality level q: the worst-case busy time of one cycle over
// its period. At q = QMin it is the task's guaranteed demand — the
// qmin-feasibility precondition (core.System.Feasible) means the Quality
// Manager can always retreat to it — which makes it the right per-task
// weight for admission at fleet scale. period 0 selects the system's
// last deadline, the same default the runner and Task use; a
// non-positive resolved period yields +Inf (never admissible).
func Utilization(sys *core.System, q core.Level, period core.Time) float64 {
	if sys == nil {
		return math.Inf(1)
	}
	if period == 0 {
		period = sys.LastDeadline()
	}
	if period <= 0 {
		return math.Inf(1)
	}
	return float64(sys.WCRange(0, sys.NumActions()-1, q)) / float64(period)
}

// EDFAdmissible is the preemptive-EDF utilization-bound admission test
// lifted to fleet scale: a task with utilization u may join a CPU whose
// admitted tasks already sum to total iff total + u ≤ budget, where
// budget is the number of (possibly fractional) simulated CPUs the fleet
// may commit. This is the same schedulability condition behind
// InflateTiming's per-task CPU shares — inflating every task's timing by
// its share is safe exactly when the shares sum to at most the
// processor — applied before admission instead of after the fact. The
// bound is exact for implicit-deadline preemptive EDF and conservative
// for the in-cycle deadlines the paper's systems carry. A tiny epsilon
// absorbs float accumulation so a fully-subscribed budget still admits
// the task that exactly fills it.
func EDFAdmissible(total, u, budget float64) bool {
	return total+u <= budget+1e-9
}
