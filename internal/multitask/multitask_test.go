package multitask

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// uniformSystem builds an n-action system with per-action average
// avMicros µs (wc = 1.5×) and a final deadline of budgetMicros µs.
func uniformSystem(n int, avMicros, budgetMicros int64, levels int) *core.System {
	tt := core.NewTimingTable(n, levels)
	for i := 0; i < n; i++ {
		for q := 0; q < levels; q++ {
			av := core.Time(avMicros+int64(q)*avMicros/2) * core.Microsecond
			tt.Set(i, core.Level(q), av, av*3/2)
		}
	}
	actions := make([]core.Action, n)
	for i := range actions {
		actions[i] = core.Action{Deadline: core.TimeInf}
	}
	actions[n-1].Deadline = core.Time(budgetMicros) * core.Microsecond
	return core.MustNewSystem(actions, tt)
}

func TestInflateTiming(t *testing.T) {
	tt := core.NewTimingTable(2, 2)
	tt.Set(0, 0, 100, 200)
	tt.Set(0, 1, 150, 300)
	tt.Set(1, 0, 100, 200)
	tt.Set(1, 1, 150, 300)
	out := InflateTiming(tt, 2, 1)
	if out.Av(0, 0) != 200 || out.WC(0, 1) != 600 {
		t.Fatalf("inflation wrong: %v %v", out.Av(0, 0), out.WC(0, 1))
	}
}

func TestInflateTimingRejectsDeflation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("deflation must panic")
		}
	}()
	InflateTiming(core.NewTimingTable(1, 1), 1, 2)
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(nil); err == nil {
		t.Error("empty task set accepted")
	}
	sys := uniformSystem(10, 100, 3000, 3)
	tk := &Task{Name: "a", Sys: sys, Mgr: core.NewNumericManager(sys), Exec: sim.Average{Sys: sys}}
	if _, err := Run([]*Task{tk}); err == nil {
		t.Error("zero cycles accepted")
	}
	tk.Cycles = 1
	tk2 := &Task{Name: "a", Sys: sys, Mgr: core.NewNumericManager(sys), Exec: sim.Average{Sys: sys}, Cycles: 1}
	if _, err := Run([]*Task{tk, tk2}); err == nil {
		t.Error("duplicate names accepted")
	}
}

func TestSingleTaskMatchesRunner(t *testing.T) {
	// With one task, the EDF scheduler must degenerate to the
	// single-task runner exactly.
	sys := uniformSystem(20, 100, 5000, 4)
	mk := func() *Task {
		return &Task{Name: "solo", Sys: sys, Mgr: core.NewNumericManager(sys),
			Exec: sim.Uniform{Sys: sys, Seed: 5}, Cycles: 3}
	}
	multi, err := Run([]*Task{mk()})
	if err != nil {
		t.Fatal(err)
	}
	single := (&sim.Runner{Sys: sys, Mgr: core.NewNumericManager(sys),
		Exec: sim.Uniform{Sys: sys, Seed: 5}, Overhead: sim.FreeOverhead, Cycles: 3}).MustRun()
	mt := multi.Traces["solo"]
	if mt.Final != single.Final || mt.Misses != single.Misses || len(mt.Records) != len(single.Records) {
		t.Fatalf("EDF single-task diverges from runner: final %v vs %v", mt.Final, single.Final)
	}
	for i := range mt.Records {
		if mt.Records[i].Q != single.Records[i].Q || mt.Records[i].Start != single.Records[i].Start {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestTwoInflatedTasksShareSafely(t *testing.T) {
	// Two identical half-CPU tasks with 2× inflated tables must both
	// meet their deadlines: the managers degrade quality instead.
	n, avM, budget := 20, 100, int64(8000)
	base := uniformSystem(n, int64(avM), budget, 4)
	inflated := InflateTiming(base.Timing(), 2, 1)
	actions := make([]core.Action, n)
	for i := range actions {
		actions[i] = core.Action{Deadline: core.TimeInf}
	}
	actions[n-1].Deadline = core.Time(budget) * core.Microsecond
	sysA := core.MustNewSystem(actions, inflated)
	sysB := core.MustNewSystem(actions, inflated)

	// Execution consumes *real* (uninflated) time.
	mk := func(name string, sys *core.System) *Task {
		return &Task{Name: name, Sys: sys, Mgr: core.NewNumericManager(sys),
			Exec: sim.WorstCase{Sys: base}, Cycles: 4}
	}
	res, err := Run([]*Task{mk("a", sysA), mk("b", sysB)})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalMisses() != 0 {
		t.Fatalf("inflated tasks missed %d deadlines", res.TotalMisses())
	}
}

func TestOverloadedTasksMiss(t *testing.T) {
	// Without inflation, two tasks that each assume a full CPU and are
	// driven at worst case must overload and miss — the contrast that
	// motivates the future-work item.
	sys := uniformSystem(20, 100, 3200, 4)
	mk := func(name string) *Task {
		return &Task{Name: name, Sys: sys, Mgr: core.FixedManager{Level: 3},
			Exec: sim.WorstCase{Sys: sys}, Cycles: 3}
	}
	res, err := Run([]*Task{mk("a"), mk("b")})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalMisses() == 0 {
		t.Fatal("overload produced no misses; scenario too easy")
	}
}

func TestEDFPrefersEarlierDeadline(t *testing.T) {
	// A short-deadline task must finish its cycle before a long-deadline
	// task completes, even when both are ready at t=0.
	urgent := uniformSystem(5, 100, 1000, 2)
	lazy := uniformSystem(5, 100, 100000, 2)
	res, err := Run([]*Task{
		{Name: "urgent", Sys: urgent, Mgr: core.FixedManager{Level: 0}, Exec: sim.Average{Sys: urgent}, Cycles: 1},
		{Name: "lazy", Sys: lazy, Mgr: core.FixedManager{Level: 0}, Exec: sim.Average{Sys: lazy}, Cycles: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	urgentEnd := res.Traces["urgent"].Records[4].End()
	lazyEnd := res.Traces["lazy"].Records[4].End()
	if urgentEnd >= lazyEnd {
		t.Fatalf("EDF ran lazy (%v) before urgent (%v)", lazyEnd, urgentEnd)
	}
	if res.Traces["urgent"].Misses != 0 {
		t.Fatal("urgent task missed under EDF")
	}
}

func TestRunGroupsMatchesSerialRuns(t *testing.T) {
	sys := uniformSystem(20, 100, 5000, 4)
	mkGroup := func(name string, seedA, seedB uint64) Group {
		mk := func(tname string, seed uint64) *Task {
			return &Task{Name: tname, Sys: sys, Mgr: core.NewNumericManager(sys),
				Exec: sim.Uniform{Sys: sys, Seed: seed}, Cycles: 3}
		}
		return Group{Name: name, Tasks: []*Task{mk("a", seedA), mk("b", seedB)}}
	}
	groups := []Group{mkGroup("g0", 1, 2), mkGroup("g1", 3, 4), mkGroup("g2", 5, 6)}
	parallel, err := RunGroups(groups, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []Group{mkGroup("g0", 1, 2), mkGroup("g1", 3, 4), mkGroup("g2", 5, 6)} {
		serial, err := Run(g.Tasks)
		if err != nil {
			t.Fatal(err)
		}
		got := parallel[g.Name]
		if got.Final != serial.Final || got.TotalMisses() != serial.TotalMisses() {
			t.Fatalf("group %s diverges from serial run", g.Name)
		}
		for name, str := range serial.Traces {
			gtr := got.Traces[name]
			if len(gtr.Records) != len(str.Records) {
				t.Fatalf("group %s task %s record count differs", g.Name, name)
			}
			for i := range gtr.Records {
				if gtr.Records[i] != str.Records[i] {
					t.Fatalf("group %s task %s record %d differs", g.Name, name, i)
				}
			}
		}
	}
}

func TestRunGroupsValidation(t *testing.T) {
	if _, err := RunGroups(nil, 2); err == nil {
		t.Fatal("empty group list must be rejected")
	}
	sys := uniformSystem(5, 100, 2000, 3)
	mk := func(name string) Group {
		return Group{Name: name, Tasks: []*Task{{Name: "t", Sys: sys,
			Mgr: core.NewNumericManager(sys), Exec: sim.Average{Sys: sys}, Cycles: 1}}}
	}
	if _, err := RunGroups([]Group{mk("g"), mk("g")}, 2); err == nil {
		t.Fatal("duplicate group names must be rejected")
	}
	if _, err := RunGroups([]Group{{Name: "", Tasks: mk("x").Tasks}}, 1); err == nil {
		t.Fatal("empty group name must be rejected")
	}
	bad := Group{Name: "bad", Tasks: []*Task{{Name: "nope"}}}
	if _, err := RunGroups([]Group{mk("ok"), bad}, 2); err == nil {
		t.Fatal("task validation errors must surface")
	}
}

// TestTaskSinkMatchesRetainedRun: a task run under a sink must leave
// its trace record-free while the sink observes the identical record
// sequence a retained run stores — the sim.Runner sink contract carried
// over to the EDF interleaver.
func TestTaskSinkMatchesRetainedRun(t *testing.T) {
	mk := func(sink sim.Sink) []*Task {
		sys := uniformSystem(6, 200, 4000, 3)
		return []*Task{
			{Name: "a", Sys: sys, Mgr: core.NewNumericManager(sys),
				Exec: sim.Content{Sys: sys, NoiseAmp: 0.2, Seed: 5}, Cycles: 3,
				Overhead: sim.IPodOverhead, Sink: sink},
			{Name: "b", Sys: sys, Mgr: core.NewNumericManager(sys),
				Exec: sim.Content{Sys: sys, NoiseAmp: 0.2, Seed: 9}, Cycles: 3,
				Overhead: sim.IPodOverhead},
		}
	}
	ref, err := Run(mk(nil))
	if err != nil {
		t.Fatal(err)
	}
	sink := &sim.TraceSink{}
	got, err := Run(mk(sink))
	if err != nil {
		t.Fatal(err)
	}
	if n := len(got.Traces["a"].Records); n != 0 {
		t.Fatalf("sunk task retained %d records", n)
	}
	if len(sink.Records) != len(ref.Traces["a"].Records) {
		t.Fatalf("sink saw %d records, retained run stored %d",
			len(sink.Records), len(ref.Traces["a"].Records))
	}
	for j, rec := range sink.Records {
		if rec != ref.Traces["a"].Records[j] {
			t.Fatalf("record %d diverges: %+v vs %+v", j, rec, ref.Traces["a"].Records[j])
		}
	}
	if got.Traces["a"].TotalExec != ref.Traces["a"].TotalExec ||
		got.Traces["a"].Misses != ref.Traces["a"].Misses {
		t.Fatal("scalar trace fields diverge under sink")
	}
}
