package multitask

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// uniformSystem builds an n-action system with per-action average
// avMicros µs (wc = 1.5×) and a final deadline of budgetMicros µs.
func uniformSystem(n int, avMicros, budgetMicros int64, levels int) *core.System {
	tt := core.NewTimingTable(n, levels)
	for i := 0; i < n; i++ {
		for q := 0; q < levels; q++ {
			av := core.Time(avMicros+int64(q)*avMicros/2) * core.Microsecond
			tt.Set(i, core.Level(q), av, av*3/2)
		}
	}
	actions := make([]core.Action, n)
	for i := range actions {
		actions[i] = core.Action{Deadline: core.TimeInf}
	}
	actions[n-1].Deadline = core.Time(budgetMicros) * core.Microsecond
	return core.MustNewSystem(actions, tt)
}

func TestInflateTiming(t *testing.T) {
	tt := core.NewTimingTable(2, 2)
	tt.Set(0, 0, 100, 200)
	tt.Set(0, 1, 150, 300)
	tt.Set(1, 0, 100, 200)
	tt.Set(1, 1, 150, 300)
	out := InflateTiming(tt, 2, 1)
	if out.Av(0, 0) != 200 || out.WC(0, 1) != 600 {
		t.Fatalf("inflation wrong: %v %v", out.Av(0, 0), out.WC(0, 1))
	}
}

func TestInflateTimingRejectsDeflation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("deflation must panic")
		}
	}()
	InflateTiming(core.NewTimingTable(1, 1), 1, 2)
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(nil); err == nil {
		t.Error("empty task set accepted")
	}
	sys := uniformSystem(10, 100, 3000, 3)
	tk := &Task{Name: "a", Sys: sys, Mgr: core.NewNumericManager(sys), Exec: sim.Average{Sys: sys}}
	if _, err := Run([]*Task{tk}); err == nil {
		t.Error("zero cycles accepted")
	}
	tk.Cycles = 1
	tk2 := &Task{Name: "a", Sys: sys, Mgr: core.NewNumericManager(sys), Exec: sim.Average{Sys: sys}, Cycles: 1}
	if _, err := Run([]*Task{tk, tk2}); err == nil {
		t.Error("duplicate names accepted")
	}
}

func TestSingleTaskMatchesRunner(t *testing.T) {
	// With one task, the EDF scheduler must degenerate to the
	// single-task runner exactly.
	sys := uniformSystem(20, 100, 5000, 4)
	mk := func() *Task {
		return &Task{Name: "solo", Sys: sys, Mgr: core.NewNumericManager(sys),
			Exec: sim.Uniform{Sys: sys, Seed: 5}, Cycles: 3}
	}
	multi, err := Run([]*Task{mk()})
	if err != nil {
		t.Fatal(err)
	}
	single := (&sim.Runner{Sys: sys, Mgr: core.NewNumericManager(sys),
		Exec: sim.Uniform{Sys: sys, Seed: 5}, Overhead: sim.FreeOverhead, Cycles: 3}).MustRun()
	mt := multi.Traces["solo"]
	if mt.Final != single.Final || mt.Misses != single.Misses || len(mt.Records) != len(single.Records) {
		t.Fatalf("EDF single-task diverges from runner: final %v vs %v", mt.Final, single.Final)
	}
	for i := range mt.Records {
		if mt.Records[i].Q != single.Records[i].Q || mt.Records[i].Start != single.Records[i].Start {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestTwoInflatedTasksShareSafely(t *testing.T) {
	// Two identical half-CPU tasks with 2× inflated tables must both
	// meet their deadlines: the managers degrade quality instead.
	n, avM, budget := 20, 100, int64(8000)
	base := uniformSystem(n, int64(avM), budget, 4)
	inflated := InflateTiming(base.Timing(), 2, 1)
	actions := make([]core.Action, n)
	for i := range actions {
		actions[i] = core.Action{Deadline: core.TimeInf}
	}
	actions[n-1].Deadline = core.Time(budget) * core.Microsecond
	sysA := core.MustNewSystem(actions, inflated)
	sysB := core.MustNewSystem(actions, inflated)

	// Execution consumes *real* (uninflated) time.
	mk := func(name string, sys *core.System) *Task {
		return &Task{Name: name, Sys: sys, Mgr: core.NewNumericManager(sys),
			Exec: sim.WorstCase{Sys: base}, Cycles: 4}
	}
	res, err := Run([]*Task{mk("a", sysA), mk("b", sysB)})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalMisses() != 0 {
		t.Fatalf("inflated tasks missed %d deadlines", res.TotalMisses())
	}
}

func TestOverloadedTasksMiss(t *testing.T) {
	// Without inflation, two tasks that each assume a full CPU and are
	// driven at worst case must overload and miss — the contrast that
	// motivates the future-work item.
	sys := uniformSystem(20, 100, 3200, 4)
	mk := func(name string) *Task {
		return &Task{Name: name, Sys: sys, Mgr: core.FixedManager{Level: 3},
			Exec: sim.WorstCase{Sys: sys}, Cycles: 3}
	}
	res, err := Run([]*Task{mk("a"), mk("b")})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalMisses() == 0 {
		t.Fatal("overload produced no misses; scenario too easy")
	}
}

func TestEDFPrefersEarlierDeadline(t *testing.T) {
	// A short-deadline task must finish its cycle before a long-deadline
	// task completes, even when both are ready at t=0.
	urgent := uniformSystem(5, 100, 1000, 2)
	lazy := uniformSystem(5, 100, 100000, 2)
	res, err := Run([]*Task{
		{Name: "urgent", Sys: urgent, Mgr: core.FixedManager{Level: 0}, Exec: sim.Average{Sys: urgent}, Cycles: 1},
		{Name: "lazy", Sys: lazy, Mgr: core.FixedManager{Level: 0}, Exec: sim.Average{Sys: lazy}, Cycles: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	urgentEnd := res.Traces["urgent"].Records[4].End()
	lazyEnd := res.Traces["lazy"].Records[4].End()
	if urgentEnd >= lazyEnd {
		t.Fatalf("EDF ran lazy (%v) before urgent (%v)", lazyEnd, urgentEnd)
	}
	if res.Traces["urgent"].Misses != 0 {
		t.Fatal("urgent task missed under EDF")
	}
}
