package multitask

import (
	"math"
	"testing"

	"repro/internal/core"
)

// twoActionSystem builds a 2-action, 2-level system with worst cases
// 40+60 at q0 and 80+120 at q1, last deadline 200.
func twoActionSystem(t *testing.T) *core.System {
	t.Helper()
	tt := core.NewTimingTable(2, 2)
	tt.Set(0, 0, 20, 40)
	tt.Set(0, 1, 40, 80)
	tt.Set(1, 0, 30, 60)
	tt.Set(1, 1, 60, 120)
	sys, err := core.NewSystem([]core.Action{
		{Name: "a0", Deadline: core.TimeInf},
		{Name: "a1", Deadline: 200},
	}, tt)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestUtilization(t *testing.T) {
	sys := twoActionSystem(t)
	if u := Utilization(sys, 0, 200); u != 0.5 {
		t.Fatalf("qmin utilization over period 200 = %v, want 0.5", u)
	}
	if u := Utilization(sys, 1, 400); u != 0.5 {
		t.Fatalf("qmax utilization over period 400 = %v, want 0.5", u)
	}
	// period 0 resolves to the last deadline, like the runner.
	if u := Utilization(sys, 0, 0); u != 0.5 {
		t.Fatalf("default-period utilization = %v, want 0.5", u)
	}
	if u := Utilization(nil, 0, 100); !math.IsInf(u, 1) {
		t.Fatalf("nil system utilization = %v, want +Inf", u)
	}
	if u := Utilization(sys, 0, -5); !math.IsInf(u, 1) {
		t.Fatalf("negative period utilization = %v, want +Inf", u)
	}
}

func TestEDFAdmissible(t *testing.T) {
	if !EDFAdmissible(0.5, 0.4, 1) {
		t.Fatal("0.9 of 1 CPU rejected")
	}
	if !EDFAdmissible(0.5, 0.5, 1) {
		t.Fatal("exact fill rejected")
	}
	if EDFAdmissible(0.8, 0.3, 1) {
		t.Fatal("1.1 of 1 CPU admitted")
	}
	// Fractional multi-CPU budgets work the same way.
	if !EDFAdmissible(1.2, 0.3, 1.5) {
		t.Fatal("exact fill of 1.5 CPUs rejected")
	}
	if EDFAdmissible(1.2, 0.4, 1.5) {
		t.Fatal("oversubscription of 1.5 CPUs admitted")
	}
}
