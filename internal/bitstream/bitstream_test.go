package bitstream

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadBits(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0b101, 3)
	w.WriteBits(0xFF, 8)
	w.WriteBits(0, 5)
	w.WriteBits(0b11, 2)
	b := w.Bytes()
	r := NewReader(b)
	if v, _ := r.ReadBits(3); v != 0b101 {
		t.Fatalf("first read %b", v)
	}
	if v, _ := r.ReadBits(8); v != 0xFF {
		t.Fatalf("second read %x", v)
	}
	if v, _ := r.ReadBits(5); v != 0 {
		t.Fatalf("third read %b", v)
	}
	if v, _ := r.ReadBits(2); v != 0b11 {
		t.Fatalf("fourth read %b", v)
	}
}

func TestBitLenAndLen(t *testing.T) {
	w := NewWriter()
	if w.BitLen() != 0 || w.Len() != 0 {
		t.Fatal("fresh writer not empty")
	}
	w.WriteBits(1, 1)
	if w.BitLen() != 1 || w.Len() != 0 {
		t.Fatalf("after 1 bit: bitlen %d len %d", w.BitLen(), w.Len())
	}
	w.WriteBits(0x7F, 7)
	if w.BitLen() != 8 || w.Len() != 1 {
		t.Fatalf("after 8 bits: bitlen %d len %d", w.BitLen(), w.Len())
	}
}

func TestReset(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0xABC, 12)
	w.Reset()
	if w.BitLen() != 0 {
		t.Fatal("reset did not clear")
	}
	w.WriteBits(0xF, 4)
	b := w.Bytes()
	if len(b) != 1 || b[0] != 0xF0 {
		t.Fatalf("post-reset bytes % X", b)
	}
}

func TestOutOfBits(t *testing.T) {
	r := NewReader([]byte{0xAA})
	if _, err := r.ReadBits(9); err != ErrOutOfBits {
		t.Fatalf("expected ErrOutOfBits, got %v", err)
	}
	if _, err := r.ReadBits(8); err != nil {
		t.Fatalf("8-bit read should work: %v", err)
	}
	if r.BitsLeft() != 0 {
		t.Fatalf("bits left %d", r.BitsLeft())
	}
	if _, err := r.ReadBit(); err != ErrOutOfBits {
		t.Fatal("read past end must fail")
	}
}

func TestWriteBitsPanicsOver32(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WriteBits(>32) must panic")
		}
	}()
	NewWriter().WriteBits(0, 33)
}

func TestUERoundTripSmall(t *testing.T) {
	w := NewWriter()
	for v := uint32(0); v < 300; v++ {
		w.WriteUE(v)
	}
	r := NewReader(w.Bytes())
	for v := uint32(0); v < 300; v++ {
		got, err := r.ReadUE()
		if err != nil {
			t.Fatalf("ReadUE(%d): %v", v, err)
		}
		if got != v {
			t.Fatalf("UE roundtrip %d → %d", v, got)
		}
	}
}

func TestSERoundTrip(t *testing.T) {
	vals := []int32{0, 1, -1, 2, -2, 100, -100, 30000, -30000}
	w := NewWriter()
	for _, v := range vals {
		w.WriteSE(v)
	}
	r := NewReader(w.Bytes())
	for _, v := range vals {
		got, err := r.ReadSE()
		if err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Fatalf("SE roundtrip %d → %d", v, got)
		}
	}
}

func TestBitstreamPropertyRoundTrip(t *testing.T) {
	// Property: any sequence of (value, width) writes reads back
	// identically.
	f := func(seed int64, count uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(count%64) + 1
		type item struct {
			v uint32
			n uint
		}
		items := make([]item, n)
		w := NewWriter()
		for i := range items {
			width := uint(rng.Intn(32) + 1)
			v := uint32(rng.Int63()) & ((1 << width) - 1)
			items[i] = item{v, width}
			w.WriteBits(v, width)
		}
		r := NewReader(w.Bytes())
		for _, it := range items {
			got, err := r.ReadBits(it.n)
			if err != nil || got != it.v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMalformedUE(t *testing.T) {
	// 40 zero bits: no terminating 1 within the 32-bit budget.
	r := NewReader(make([]byte, 5))
	if _, err := r.ReadUE(); err == nil {
		t.Fatal("malformed UE accepted")
	}
}
