package bitstream

import "testing"

// FuzzReader: arbitrary bytes through the UE/SE decoders must never
// panic, and successful reads must re-encode to the same values.
func FuzzReader(f *testing.F) {
	f.Add([]byte{0x80}, uint(3))
	f.Add([]byte{0x00, 0xFF, 0x12}, uint(11))
	f.Fuzz(func(t *testing.T, data []byte, n uint) {
		r := NewReader(data)
		if v, err := r.ReadBits(n % 33); err == nil {
			w := NewWriter()
			w.WriteBits(v, n%33)
		}
		r2 := NewReader(data)
		if v, err := r2.ReadUE(); err == nil {
			w := NewWriter()
			w.WriteUE(v)
			back := NewReader(w.Bytes())
			got, err := back.ReadUE()
			if err != nil || got != v {
				t.Fatalf("UE re-encode mismatch: %d vs %d (%v)", v, got, err)
			}
		}
		r3 := NewReader(data)
		if v, err := r3.ReadSE(); err == nil {
			w := NewWriter()
			w.WriteSE(v)
			back := NewReader(w.Bytes())
			got, err := back.ReadSE()
			if err != nil || got != v {
				t.Fatalf("SE re-encode mismatch: %d vs %d (%v)", v, got, err)
			}
		}
	})
}
