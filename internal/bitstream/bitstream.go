// Package bitstream provides MSB-first bit-level writing and reading,
// the substrate of the entropy coder.
package bitstream

import (
	"errors"
	"fmt"
)

// Writer accumulates bits MSB-first into a byte buffer.
type Writer struct {
	buf  []byte
	cur  uint64 // pending bits, left-aligned within nbit
	nbit uint   // number of pending bits in cur
}

// NewWriter returns an empty writer.
func NewWriter() *Writer { return &Writer{} }

// WriteBits appends the n low-order bits of v, most significant first.
// n must be in [0, 32].
func (w *Writer) WriteBits(v uint32, n uint) {
	if n > 32 {
		panic(fmt.Sprintf("bitstream: WriteBits n=%d > 32", n))
	}
	if n == 0 {
		return
	}
	w.cur = w.cur<<n | uint64(v&((1<<n)-1))
	w.nbit += n
	for w.nbit >= 8 {
		w.nbit -= 8
		w.buf = append(w.buf, byte(w.cur>>w.nbit))
	}
}

// WriteBit appends a single bit.
func (w *Writer) WriteBit(b uint32) { w.WriteBits(b&1, 1) }

// WriteUE appends v as an Exp-Golomb code (universal code for
// non-negative integers), used for values without a dedicated table.
func (w *Writer) WriteUE(v uint32) {
	x := uint64(v) + 1
	n := uint(0)
	for y := x; y > 1; y >>= 1 {
		n++
	}
	w.WriteBits(0, n)
	// Write the value with its leading one bit, in two halves if wide.
	if n+1 > 32 {
		panic("bitstream: UE value too wide")
	}
	w.WriteBits(uint32(x), n+1)
}

// WriteSE appends v as a signed Exp-Golomb code (zigzag mapping).
func (w *Writer) WriteSE(v int32) {
	if v <= 0 {
		w.WriteUE(uint32(-2 * v))
	} else {
		w.WriteUE(uint32(2*v - 1))
	}
}

// Len returns the number of complete bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// BitLen returns the total number of bits written so far.
func (w *Writer) BitLen() int { return len(w.buf)*8 + int(w.nbit) }

// Bytes flushes the pending bits (padding with zeros) and returns the
// buffer. The writer remains usable; padding bits become part of the
// stream.
func (w *Writer) Bytes() []byte {
	if w.nbit > 0 {
		pad := 8 - w.nbit
		w.cur <<= pad
		w.buf = append(w.buf, byte(w.cur))
		w.cur = 0
		w.nbit = 0
	}
	return w.buf
}

// Reset discards all written data.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.cur = 0
	w.nbit = 0
}

// Reader consumes bits MSB-first from a byte slice.
type Reader struct {
	buf []byte
	pos uint // bit position
}

// ErrOutOfBits is returned when a read crosses the end of the stream.
var ErrOutOfBits = errors.New("bitstream: out of bits")

// NewReader wraps a byte slice.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// ReadBits reads n bits MSB-first. n must be in [0, 32].
func (r *Reader) ReadBits(n uint) (uint32, error) {
	if n > 32 {
		panic(fmt.Sprintf("bitstream: ReadBits n=%d > 32", n))
	}
	if r.pos+n > uint(len(r.buf))*8 {
		return 0, ErrOutOfBits
	}
	var v uint32
	for i := uint(0); i < n; i++ {
		byteIdx := (r.pos + i) / 8
		bitIdx := 7 - (r.pos+i)%8
		v = v<<1 | uint32(r.buf[byteIdx]>>bitIdx&1)
	}
	r.pos += n
	return v, nil
}

// ReadBit reads a single bit.
func (r *Reader) ReadBit() (uint32, error) { return r.ReadBits(1) }

// ReadUE reads an Exp-Golomb coded non-negative integer.
func (r *Reader) ReadUE() (uint32, error) {
	zeros := uint(0)
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b == 1 {
			break
		}
		zeros++
		if zeros > 31 {
			return 0, errors.New("bitstream: malformed UE code")
		}
	}
	rest, err := r.ReadBits(zeros)
	if err != nil {
		return 0, err
	}
	return uint32(1)<<zeros - 1 + rest, nil
}

// ReadSE reads a signed Exp-Golomb coded integer.
func (r *Reader) ReadSE() (int32, error) {
	u, err := r.ReadUE()
	if err != nil {
		return 0, err
	}
	if u%2 == 0 {
		return -int32(u / 2), nil
	}
	return int32(u+1) / 2, nil
}

// BitsLeft returns the number of unread bits.
func (r *Reader) BitsLeft() int { return len(r.buf)*8 - int(r.pos) }
