package experiment

import (
	"reflect"
	"testing"

	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/sim"
)

func TestRunFleetMatchesSerialRunner(t *testing.T) {
	s := Paper(1)
	s.Cycles = 2
	res, err := s.RunFleet(9, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	streams, err := s.FleetStreams(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	for k, stream := range streams {
		serial := stream.Runner.MustRun()
		if !reflect.DeepEqual(res.Streams[k].Trace, serial) {
			t.Fatalf("stream %d: fleet trace differs from serial runner", k)
		}
	}

	// A setup whose exec model cannot be reseeded per stream must be
	// rejected rather than silently replicating one stream n times.
	bad := Paper(1)
	bad.Exec = sim.WorstCase{Sys: bad.Sys}
	if _, err := bad.FleetStreams(1, 4); err == nil {
		t.Fatal("non-Content exec model accepted")
	}
}

func TestPaperFleetStaysSafe(t *testing.T) {
	s := Paper(2)
	s.Cycles = 3
	res, err := s.RunFleet(2, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	fs := metrics.AggregateTraces(res.Traces())
	if fs.Streams != 6 {
		t.Fatalf("aggregated %d streams, want 6", fs.Streams)
	}
	if fs.Misses != 0 {
		t.Fatalf("paper fleet missed %d deadlines; the per-stream manager must stay safe", fs.Misses)
	}
	if fs.AvgQuality <= 0 {
		t.Fatalf("degenerate fleet quality %v", fs.AvgQuality)
	}
}

func TestWorkloadFleetMixesCatalog(t *testing.T) {
	streams, err := WorkloadFleet(4, 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(streams) != 7 {
		t.Fatalf("got %d streams", len(streams))
	}
	distinct := map[string]int{}
	for _, st := range streams {
		distinct[st.Sys.Action(0).Name]++
	}
	if len(distinct) != 3 {
		t.Fatalf("workload mix covers %d workloads, want 3", len(distinct))
	}
	res, err := fleet.Run(fleet.Config{Streams: streams, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if res.TotalMisses() != 0 {
		t.Fatalf("mixed workload fleet missed %d deadlines", res.TotalMisses())
	}
	if _, err := WorkloadFleet(1, 0, 2); err == nil {
		t.Fatal("n=0 must be rejected")
	}
	if _, err := WorkloadFleet(1, 2, 0); err == nil {
		t.Fatal("cycles=0 must be rejected")
	}
}
