package experiment

import (
	"reflect"
	"testing"

	"repro/internal/arrivals"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/sim"
)

func TestRunFleetMatchesSerialRunner(t *testing.T) {
	s := Paper(1)
	s.Cycles = 2
	res, err := s.RunFleet(9, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	streams, err := s.FleetStreams(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	for k, stream := range streams {
		serial := stream.Runner.MustRun()
		if !reflect.DeepEqual(res.Streams[k].Trace, serial) {
			t.Fatalf("stream %d: fleet trace differs from serial runner", k)
		}
	}

	// A setup whose exec model cannot be reseeded per stream must be
	// rejected rather than silently replicating one stream n times.
	bad := Paper(1)
	bad.Exec = sim.WorstCase{Sys: bad.Sys}
	if _, err := bad.FleetStreams(1, 4); err == nil {
		t.Fatal("non-Content exec model accepted")
	}
}

func TestPaperFleetStaysSafe(t *testing.T) {
	s := Paper(2)
	s.Cycles = 3
	res, err := s.RunFleet(2, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	fs := metrics.AggregateTraces(res.Traces())
	if fs.Streams != 6 {
		t.Fatalf("aggregated %d streams, want 6", fs.Streams)
	}
	if fs.Misses != 0 {
		t.Fatalf("paper fleet missed %d deadlines; the per-stream manager must stay safe", fs.Misses)
	}
	if fs.AvgQuality <= 0 {
		t.Fatalf("degenerate fleet quality %v", fs.AvgQuality)
	}
}

func TestWorkloadFleetMixesCatalog(t *testing.T) {
	streams, err := WorkloadFleet(4, 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(streams) != 7 {
		t.Fatalf("got %d streams", len(streams))
	}
	distinct := map[string]int{}
	for _, st := range streams {
		distinct[st.Sys.Action(0).Name]++
	}
	if len(distinct) != 3 {
		t.Fatalf("workload mix covers %d workloads, want 3", len(distinct))
	}
	res, err := fleet.Run(fleet.Config{Streams: streams, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if res.TotalMisses() != 0 {
		t.Fatalf("mixed workload fleet missed %d deadlines", res.TotalMisses())
	}
	if _, err := WorkloadFleet(1, 0, 2); err == nil {
		t.Fatal("n=0 must be rejected")
	}
	if _, err := WorkloadFleet(1, 2, 0); err == nil {
		t.Fatal("cycles=0 must be rejected")
	}
}

// TestRunOpenFleet: the open-system wrapper admits the whole paper
// population under an ample cap and its executed traces match the
// closed fleet's (same seeds, same streams — arrivals only shift the
// lifecycle, never the content).
func TestRunOpenFleet(t *testing.T) {
	s := Paper(1)
	s.Cycles = 2
	const n, seed = 3, 9
	proc := arrivals.Poisson{MeanGap: s.Period, Seed: 4}
	open, err := s.RunOpenFleet(seed, n, 2, proc, fleet.CapK{K: 2, Queue: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := open.Err(); err != nil {
		t.Fatal(err)
	}
	if open.Admitted != n || open.Shed != 0 {
		t.Fatalf("ample cap admitted %d, shed %d", open.Admitted, open.Shed)
	}
	closed, err := s.RunFleetStats(seed, n, 2)
	if err != nil {
		t.Fatal(err)
	}
	for k := range closed.Streams {
		if !reflect.DeepEqual(closed.Streams[k].Trace, open.Streams[k].Trace) {
			t.Fatalf("stream %d: open trace differs from closed fleet", k)
		}
		if !reflect.DeepEqual(closed.Streams[k].Stats, open.Streams[k].Stats) {
			t.Fatalf("stream %d: open stats differ from closed fleet", k)
		}
	}

	// Arrival-process errors surface instead of panicking.
	short, err := arrivals.NewTrace([]core.Time{0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunOpenFleet(seed, n, 2, short, nil); err == nil {
		t.Fatal("overdrawn trace process accepted")
	}
}
