package experiment

import (
	"fmt"

	"repro/internal/arrivals"
	"repro/internal/fleet"
	"repro/internal/regions"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// FleetStreams builds n independent copies of the paper's encoder
// stream, all sharing this setup's pre-computed tables (one manager
// instance per stream over the same immutable regions). Stream k draws
// its content from the setup's own execution model reseeded with
// fleet.DeriveSeed(seed, k), so the fleet models n users watching n
// different inputs on identical hardware and stays in lockstep with
// whatever content model Paper defines. A setup whose Exec is not a
// sim.Content cannot be reseeded per stream and is rejected — silently
// running n byte-identical streams would make every cross-stream
// statistic meaningless.
//
// Streams run the memoized sim.FastContent form of the model — the
// action-complexity profile tabulated once and shared read-only by all
// n streams, the frame factor cached per cycle — which draws
// bit-identical times to the plain model (property-tested in sim).
func (s *Setup) FleetStreams(seed uint64, n int) ([]fleet.Stream, error) {
	if n <= 0 {
		return nil, fmt.Errorf("experiment: non-positive stream count %d", n)
	}
	content, ok := s.Exec.(sim.Content)
	if !ok {
		return nil, fmt.Errorf("experiment: fleet needs a sim.Content execution model to reseed per stream, got %T", s.Exec)
	}
	base := sim.NewFastContent(content, s.Sys.NumActions())
	streams := make([]fleet.Stream, n)
	for k := 0; k < n; k++ {
		streams[k] = fleet.Stream{
			Name: fmt.Sprintf("encoder-%03d", k),
			Runner: sim.Runner{
				Sys:      s.Sys,
				Mgr:      s.Relaxed(),
				Exec:     base.WithSeed(fleet.DeriveSeed(seed, k)),
				Overhead: s.Overhead,
				Cycles:   s.Cycles,
				Period:   s.Period,
			},
		}
	}
	return streams, nil
}

// FleetStreamsUncached is FleetStreams with every stream driven by the
// uncached relaxed manager — the table-probing path that bypasses the
// regions.DecisionPlan memo. Traces are byte-identical to FleetStreams
// runs (the plan preserves Work accounting exactly); only the decision
// cost differs, which is what lets the throughput benchmarks account
// for the plan cache separately.
func (s *Setup) FleetStreamsUncached(seed uint64, n int) ([]fleet.Stream, error) {
	streams, err := s.FleetStreams(seed, n)
	if err != nil {
		return nil, err
	}
	for k := range streams {
		streams[k].Runner.Mgr = regions.NewRelaxedManagerUncached(s.Relax)
	}
	return streams, nil
}

// RunFleet routes n paper streams through the fleet engine on the given
// worker pool. The per-stream traces are byte-identical to serial
// Runner runs at the same derived seeds.
func (s *Setup) RunFleet(seed uint64, n, workers int) (*fleet.Result, error) {
	streams, err := s.FleetStreams(seed, n)
	if err != nil {
		return nil, err
	}
	return fleet.Run(fleet.Config{Streams: streams, Workers: workers})
}

// RunFleetStats is RunFleet through the zero-retention sink path: each
// stream feeds a StatsSink and no records are materialised, so memory
// stays O(streams) however long the run. The aggregates equal the
// retained run's exactly.
func (s *Setup) RunFleetStats(seed uint64, n, workers int) (*fleet.Result, error) {
	streams, err := s.FleetStreams(seed, n)
	if err != nil {
		return nil, err
	}
	return fleet.RunStats(fleet.Config{Streams: streams, Workers: workers})
}

// RunOpenFleet drives n paper-encoder streams through the continuous
// open-system engine: arrivals from the given process (materialized
// into a flat instant slab with one Times call), admission by the
// given controller (nil = admit all). It is RunFleetStats for live
// traffic — the executed streams' traces are still byte-identical to
// serial runs at the same derived seeds, whatever the worker count,
// and so are the admission decisions.
func (s *Setup) RunOpenFleet(seed uint64, n, workers int, proc arrivals.Process, adm fleet.Admitter) (*fleet.OpenResult, error) {
	streams, err := s.FleetStreams(seed, n)
	if err != nil {
		return nil, err
	}
	times, err := proc.Times(n)
	if err != nil {
		return nil, err
	}
	return fleet.OpenRunStats(fleet.OpenConfig{
		Streams:  streams,
		Arrivals: times,
		Admit:    adm,
		Workers:  workers,
	})
}

// WorkloadFleet builds a mixed fleet over the workloads catalog: stream
// k runs catalog workload k mod |catalog| (audio encoder, SDR pipeline,
// video decoder, in name order) under its own relaxed manager, with
// per-stream content seeded from the base seed. The region tables are
// compiled once per workload and shared by all of its streams.
func WorkloadFleet(seed uint64, n, cycles int) ([]fleet.Stream, error) {
	if n <= 0 {
		return nil, fmt.Errorf("experiment: non-positive stream count %d", n)
	}
	if cycles <= 0 {
		return nil, fmt.Errorf("experiment: non-positive cycle count %d", cycles)
	}
	cat, err := workloads.Catalog()
	if err != nil {
		return nil, err
	}
	names := []string{"audio-encoder", "sdr-pipeline", "video-decoder"}
	if n < len(names) {
		// Fewer streams than workloads: don't compile tables nobody
		// runs. Trimming keeps the k mod len(names) assignment intact.
		names = names[:n]
	}
	byName := map[string]*regions.RelaxTables{}
	for _, name := range names {
		sys, ok := cat[name]
		if !ok {
			return nil, fmt.Errorf("experiment: catalog missing workload %q", name)
		}
		tab := regions.BuildTDTableParallel(sys)
		rt, err := regions.BuildRelaxTablesParallel(tab, []int{1, 5, 10, 25})
		if err != nil {
			return nil, err
		}
		byName[name] = rt
	}
	streams := make([]fleet.Stream, n)
	for k := 0; k < n; k++ {
		name := names[k%len(names)]
		sys := cat[name]
		streams[k] = fleet.Stream{
			Name: fmt.Sprintf("%s-%03d", name, k),
			Runner: sim.Runner{
				Sys:      sys,
				Mgr:      regions.NewRelaxedManager(byName[name]),
				Exec:     sim.Content{Sys: sys, NoiseAmp: 0.3, Seed: fleet.DeriveSeed(seed, k)},
				Overhead: sim.IPodOverhead,
				Cycles:   cycles,
			},
		}
	}
	return streams, nil
}
