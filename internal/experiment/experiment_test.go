package experiment

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// TestPaperOverheadOrdering reproduces the §4.2 headline table: overhead
// fractions must be ordered numeric ≫ symbolic > relaxed, with magnitudes
// in the paper's neighbourhood (5.7 % / 1.9 % / <1.1 %).
func TestPaperOverheadOrdering(t *testing.T) {
	s := Paper(1)
	var fr [3]float64
	for i, m := range s.Managers() {
		tr := s.Run(m)
		if tr.Misses != 0 {
			t.Fatalf("%s missed %d deadlines", m.Name(), tr.Misses)
		}
		fr[i] = tr.OverheadFraction()
	}
	numeric, symbolic, relaxed := fr[0], fr[1], fr[2]
	if !(numeric > symbolic && symbolic > relaxed) {
		t.Fatalf("overhead ordering violated: %.4f %.4f %.4f", numeric, symbolic, relaxed)
	}
	if numeric < 0.03 || numeric > 0.10 {
		t.Fatalf("numeric overhead %.2f%% outside the paper's neighbourhood", 100*numeric)
	}
	if symbolic < 0.005 || symbolic > 0.04 {
		t.Fatalf("symbolic overhead %.2f%% outside the paper's neighbourhood", 100*symbolic)
	}
	if relaxed > 0.011 {
		t.Fatalf("relaxed overhead %.2f%% above the paper's 1.1%% bound", 100*relaxed)
	}
}

// TestPaperQualityOrdering reproduces Fig. 7's key claim: lower overhead
// buys higher quality ("symbolic Quality Managers choose higher quality
// levels than the numeric Quality Manager").
func TestPaperQualityOrdering(t *testing.T) {
	s := Paper(1)
	var avg [3]float64
	for i, m := range s.Managers() {
		avg[i] = metrics.Summarize(s.Run(m)).AvgQuality
	}
	if !(avg[1] > avg[0]) {
		t.Fatalf("symbolic quality %.3f not above numeric %.3f", avg[1], avg[0])
	}
	if avg[2] < avg[1] {
		t.Fatalf("relaxed quality %.3f below symbolic %.3f", avg[2], avg[1])
	}
	// Sanity: the operating point sits in the interior of the range.
	for i, a := range avg {
		if a < 2 || a > 6 {
			t.Fatalf("manager %d average quality %.2f implausible", i, a)
		}
	}
}

// TestPaperQualityTracksContent: the busy middle frames must push the
// average quality down for every manager (the Fig. 7 dip).
func TestPaperQualityTracksContent(t *testing.T) {
	s := Paper(1)
	for _, m := range s.Managers() {
		avg := metrics.AvgQualityPerCycle(s.Run(m))
		calm := (avg[0] + avg[1] + avg[2]) / 3
		busy := (avg[13] + avg[14] + avg[15]) / 3
		if busy >= calm-0.3 {
			t.Fatalf("%s: busy frames %.2f not clearly below calm %.2f", m.Name(), busy, calm)
		}
	}
}

// TestPaperRelaxationAdapts reproduces Fig. 8's behavioural claim: "the
// number of relaxation steps r is dynamically adapted during the
// execution" — the bands must include both large grants and r = 1.
func TestPaperRelaxationAdapts(t *testing.T) {
	s := Paper(1)
	tr := s.RunCycles(s.Relaxed(), 1)
	bands := metrics.Bands(tr, 0)
	if len(bands) < 4 {
		t.Fatalf("only %d relaxation bands; no adaptation visible", len(bands))
	}
	sawLarge, sawOne := false, false
	for _, b := range bands {
		if b.Steps >= 40 {
			sawLarge = true
		}
		if b.Steps == 1 && b.To-b.From >= 10 {
			sawOne = true
		}
	}
	if !sawLarge || !sawOne {
		t.Fatalf("bands lack extremes (large=%v one=%v): %+v", sawLarge, sawOne, bands)
	}
}

// TestPaperRelaxationReducesDecisions: the §4.1 mechanism itself.
func TestPaperRelaxationReducesDecisions(t *testing.T) {
	s := Paper(1)
	sym := s.Run(s.Symbolic())
	rel := s.Run(s.Relaxed())
	if rel.Decisions >= sym.Decisions/2 {
		t.Fatalf("relaxation saved too few decisions: %d of %d", rel.Decisions, sym.Decisions)
	}
}

// TestRelaxationConservativeAtZeroOverhead: with management made free,
// the symbolic and relaxed managers see identical clocks, so conservative
// relaxation must yield *identical* quality sequences record by record.
// (Under the iPod overhead model the relaxed run legitimately diverges
// upward — it has more budget left; that is Fig. 7's point.)
func TestRelaxationConservativeAtZeroOverhead(t *testing.T) {
	s := Paper(1)
	s.Overhead = sim.FreeOverhead
	sym := s.Run(s.Symbolic())
	rel := s.Run(s.Relaxed())
	if len(sym.Records) != len(rel.Records) {
		t.Fatal("record counts differ")
	}
	for j := range sym.Records {
		if sym.Records[j].Q != rel.Records[j].Q {
			t.Fatalf("quality diverged at record %d: %v vs %v", j, sym.Records[j].Q, rel.Records[j].Q)
		}
	}
}

// TestPaperTableSizes reproduces the §4.1 memory accounting.
func TestPaperTableSizes(t *testing.T) {
	s := Paper(1)
	if got := s.Tab.NumEntries(); got != 8323 {
		t.Fatalf("quality-region integers = %d, want 8323", got)
	}
	if got := s.Relax.NumEntries(); got != 99876 {
		t.Fatalf("relaxation integers = %d, want 99876", got)
	}
}

func TestExecFactorsWithinEnvelope(t *testing.T) {
	// Frame and action factors must stay within the Cwc envelope
	// (1.6× average) or the Content model would clamp systematically.
	for c := 0; c < 29; c++ {
		for _, i := range []int{0, 200, 490, 700, 1188} {
			f := FrameFactor(c) * ActionFactor(i)
			if f <= 0 || f >= 1.6 {
				t.Fatalf("factor %v at frame %d action %d escapes envelope", f, c, i)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := Paper(7)
	b := Paper(7)
	ta := a.Run(a.Relaxed())
	tb := b.Run(b.Relaxed())
	if ta.Final != tb.Final || ta.TotalOverhead != tb.TotalOverhead {
		t.Fatal("same seed must give identical runs")
	}
	c := Paper(8)
	if tc := c.Run(c.Relaxed()); tc.Final == ta.Final {
		t.Fatal("different seeds should differ")
	}
}
