// Package experiment wires the full §4 evaluation: the synthetic-iPod
// encoder system, the content-driven execution model, the calibrated
// overhead model, the paper's relaxation set ρ = {1,10,20,30,40,50}, and
// the three Quality Managers. cmd/figures and the root benchmarks build
// every table and figure from these setups.
package experiment

import (
	"math"

	"repro/internal/core"
	"repro/internal/profiler"
	"repro/internal/regions"
	"repro/internal/sim"
)

// PaperRho is the relaxation-step set of §4.1.
var PaperRho = []int{1, 10, 20, 30, 40, 50}

// Fig8Window is the action range plotted in Fig. 8.
const (
	Fig8From = 200
	Fig8To   = 700
)

// Setup bundles everything needed to run the paper's experiment.
type Setup struct {
	Sys      *core.System
	Tab      *regions.TDTable
	Relax    *regions.RelaxTables
	Exec     sim.ExecModel
	Overhead sim.OverheadModel
	Cycles   int
	Period   core.Time
}

// FrameFactor is the per-frame content-complexity multiplier of the
// default 29-frame input: calm opening, a busy middle section around
// frame 14, calm ending. Values stay within the Cwc envelope (≤1.6).
func FrameFactor(c int) float64 {
	return 0.86 + 0.22*math.Exp(-sq(float64(c)-14)/30)
}

// ActionFactor is the intra-frame complexity profile: a bump over the
// middle macroblocks (a busy image centre), which drives the adaptive
// relaxation bands of Fig. 8 — large r on the calm opening, r = 1 inside
// the bump, intermediate r on the way out.
func ActionFactor(i int) float64 {
	return 0.94 + 0.34*math.Exp(-sq(float64(i)-490)/(2*70*70))
}

func sq(x float64) float64 { return x * x }

// Paper returns the full §4 setup: 1,189 actions, 7 levels, ≈1.0345 s
// frame period, 29 frames, content-driven times, calibrated iPod
// overhead model.
func Paper(seed uint64) *Setup {
	sys := profiler.IPodSystem()
	tab := regions.BuildTDTable(sys)
	relax := regions.MustBuildRelaxTables(tab, PaperRho)
	return &Setup{
		Sys:   sys,
		Tab:   tab,
		Relax: relax,
		Exec: sim.Content{
			Sys:          sys,
			FrameFactor:  FrameFactor,
			ActionFactor: ActionFactor,
			NoiseAmp:     0.08,
			Seed:         seed,
		},
		Overhead: sim.IPodOverhead,
		Cycles:   profiler.PaperFrames,
		Period:   profiler.FramePeriod,
	}
}

// Numeric returns the on-line mixed-policy manager.
func (s *Setup) Numeric() core.Manager { return core.NewNumericManager(s.Sys) }

// Symbolic returns the quality-region manager.
func (s *Setup) Symbolic() core.Manager { return regions.NewSymbolicManager(s.Tab) }

// Relaxed returns the control-relaxation manager.
func (s *Setup) Relaxed() core.Manager { return regions.NewRelaxedManager(s.Relax) }

// Managers returns the three §4.1 managers in paper order.
func (s *Setup) Managers() []core.Manager {
	return []core.Manager{s.Numeric(), s.Symbolic(), s.Relaxed()}
}

// Run executes the workload under the given manager.
func (s *Setup) Run(m core.Manager) *sim.Trace {
	return (&sim.Runner{
		Sys:      s.Sys,
		Mgr:      m,
		Exec:     s.Exec,
		Overhead: s.Overhead,
		Cycles:   s.Cycles,
		Period:   s.Period,
	}).MustRun()
}

// RunCycles runs only the first n cycles (Fig. 8 needs a single frame).
func (s *Setup) RunCycles(m core.Manager, n int) *sim.Trace {
	return (&sim.Runner{
		Sys:      s.Sys,
		Mgr:      m,
		Exec:     s.Exec,
		Overhead: s.Overhead,
		Cycles:   n,
		Period:   s.Period,
	}).MustRun()
}
