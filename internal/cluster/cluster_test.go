package cluster

import (
	"reflect"
	"testing"

	"repro/internal/arrivals"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/regions"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// testStreams builds a skewed multi-workload population: stream lengths
// vary by ~an order of magnitude, a sprinkling of work-conserving
// streams forces the frontier's lock-step departure bound, and (when n
// is large enough) one invalid stream exercises the bind-failure path
// through the router.
func testStreams(t *testing.T, n int, baseSeed uint64) []fleet.Stream {
	t.Helper()
	cat, err := workloads.Catalog()
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"audio-encoder", "sdr-pipeline", "video-decoder"}
	type compiled struct {
		sys *core.System
		tab *regions.TDTable
	}
	byName := map[string]compiled{}
	for _, name := range names {
		sys := cat[name]
		byName[name] = compiled{sys: sys, tab: regions.BuildTDTable(sys)}
	}
	streams := make([]fleet.Stream, n)
	for k := 0; k < n; k++ {
		c := byName[names[k%len(names)]]
		streams[k] = fleet.Stream{
			Name: names[k%len(names)],
			Runner: sim.Runner{
				Sys:      c.sys,
				Mgr:      regions.NewSymbolicManager(c.tab),
				Exec:     sim.Content{Sys: c.sys, NoiseAmp: 0.3, Seed: fleet.DeriveSeed(baseSeed, k)},
				Overhead: sim.IPodOverhead,
				Cycles:   1 + (k*5)%9,
			},
		}
		if k%6 == 5 {
			streams[k].Runner.WorkConserving = true
		}
	}
	if n > 13 {
		streams[13].Runner.Cycles = 0 // invalid: fails at bind
	}
	return streams
}

// clusterProcesses returns the arrival models the equivalence property
// sweeps: deterministic lock-step (maximal simultaneity), Poisson, and
// bursty on/off phases.
func clusterProcesses(t *testing.T, n int) map[string][]core.Time {
	t.Helper()
	period := 20 * core.Millisecond
	procs := map[string]arrivals.Process{
		"fixed":   arrivals.Fixed{Start: core.Millisecond, Period: period / 2},
		"poisson": arrivals.Poisson{MeanGap: period, Seed: 11},
		"bursty":  arrivals.Bursty{GapOn: period / 4, MeanOn: period, MeanOff: 3 * period, Seed: 12},
	}
	out := map[string][]core.Time{}
	for name, p := range procs {
		times, err := p.Times(n)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = times
	}
	return out
}

// compareCluster asserts two cluster results are byte-identical in
// everything the router and engines guarantee: the routing record, the
// merged global observations, and every instance's full open result.
func compareCluster(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if want.Policy != got.Policy {
		t.Fatalf("%s: policy %q vs %q", label, want.Policy, got.Policy)
	}
	if !reflect.DeepEqual(want.Assign, got.Assign) {
		t.Fatalf("%s: routing decisions diverged", label)
	}
	if !reflect.DeepEqual(want.Local, got.Local) || !reflect.DeepEqual(want.Routed, got.Routed) {
		t.Fatalf("%s: routing bookkeeping diverged", label)
	}
	if !reflect.DeepEqual(want.Global, got.Global) {
		t.Fatalf("%s: merged global observations diverged", label)
	}
	for i := range want.Instances {
		w, g := want.Instances[i], got.Instances[i]
		if !reflect.DeepEqual(w.OpenObservations, g.OpenObservations) {
			t.Fatalf("%s: instance %d lifecycles or backlog diverged", label, i)
		}
		if w.Admitted != g.Admitted || w.Delayed != g.Delayed || w.Shed != g.Shed {
			t.Fatalf("%s: instance %d admission counts diverged", label, i)
		}
		if !reflect.DeepEqual(w.Streams, g.Streams) {
			t.Fatalf("%s: instance %d stream results diverged", label, i)
		}
	}
}

// TestClusterSingleInstancePassThrough pins the cluster's ground truth:
// M = 1 with the pass-through round-robin router is byte-for-byte the
// plain batch open engine — global lifecycles, backlog accounting,
// admission counts and per-stream results all identical.
func TestClusterSingleInstancePassThrough(t *testing.T) {
	streams := testStreams(t, 24, 29)
	adm := fleet.CapK{K: 3, Queue: -1}
	for model, times := range clusterProcesses(t, len(streams)) {
		batch, err := fleet.OpenRunStats(fleet.OpenConfig{Streams: streams, Arrivals: times, Admit: adm, Workers: 2})
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		for _, run := range []struct {
			name string
			fn   func(Config) (*Result, error)
		}{{"serial", RunSerial}, {"concurrent", Run}} {
			got, err := run.fn(Config{Streams: streams, Arrivals: times, Instances: 1, Admit: adm, Workers: 2})
			if err != nil {
				t.Fatalf("%s/%s: %v", model, run.name, err)
			}
			inst := got.Instances[0]
			if !reflect.DeepEqual(batch.OpenObservations, inst.OpenObservations) {
				t.Fatalf("%s/%s: instance observations diverged from the batch engine", model, run.name)
			}
			if !reflect.DeepEqual(batch.OpenObservations, got.Global) {
				t.Fatalf("%s/%s: merged global observations diverged from the batch engine", model, run.name)
			}
			if batch.Admitted != inst.Admitted || batch.Delayed != inst.Delayed || batch.Shed != inst.Shed {
				t.Fatalf("%s/%s: admission counts diverged", model, run.name)
			}
			// The instance's streams are in fed (instant, index) order;
			// the routing record maps each global index onto them.
			for k := range streams {
				if got.Assign[k] != 0 {
					t.Fatalf("%s/%s: pass-through routed stream %d to instance %d", model, run.name, k, got.Assign[k])
				}
				if !reflect.DeepEqual(batch.Streams[k], inst.Streams[got.Local[k]]) {
					t.Fatalf("%s/%s: stream %d result diverged from the batch engine", model, run.name, k)
				}
			}
		}
	}
}

// TestClusterRunMatchesSerial is the cluster's acceptance property: the
// concurrent engine (instance goroutines, pipelined command queues,
// overlapped drains) reproduces the single-goroutine serial spec byte
// for byte — at every (workers, batch, lookahead) shape, under every
// routing policy, for every arrival model, with one scratch reused
// across all shapes so stale state cannot hide. Since the reference is
// recomputed per (model, policy) and every shape must match it, this
// also pins shape-invariance of the routing decisions themselves.
func TestClusterRunMatchesSerial(t *testing.T) {
	streams := testStreams(t, 36, 31)
	times := clusterProcesses(t, len(streams))
	policies := []Policy{RoundRobin{}, LeastBacklog{}, UtilizationWeighted{}, Affinity{}}
	shapes := []struct{ workers, batch, look int }{{1, 0, 0}, {2, 3, 1}, {4, 32, 8}}
	adm := fleet.CapK{K: 2, Queue: 3}
	scratch := NewScratch()
	for model, arr := range times {
		for _, pol := range policies {
			ref, err := RunSerial(Config{
				Streams: streams, Arrivals: arr, Instances: 3,
				Route: pol, Admit: adm, Workers: 1, Seed: 77,
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", model, pol.Name(), err)
			}
			for _, shape := range shapes {
				got, err := Run(Config{
					Streams: streams, Arrivals: arr, Instances: 3,
					Route: pol, Admit: adm, Seed: 77,
					Workers: shape.workers, BatchCycles: shape.batch, Lookahead: shape.look,
					Scratch: scratch,
				})
				if err != nil {
					t.Fatalf("%s/%s: %v", model, pol.Name(), err)
				}
				compareCluster(t, model+"/"+pol.Name(), ref, got)
			}
		}
	}
}

// TestClusterRoundRobinSpread pins the pass-through policy's shape: the
// routed counts differ by at most one, so the fairness index is ~1.
func TestClusterRoundRobinSpread(t *testing.T) {
	streams := testStreams(t, 26, 5)
	times, err := arrivals.Poisson{MeanGap: 10 * core.Millisecond, Seed: 3}.Times(len(streams))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Streams: streams, Arrivals: times, Instances: 4})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := res.Routed[0], res.Routed[0]
	for _, c := range res.Routed {
		lo, hi = min(lo, c), max(hi, c)
	}
	if hi-lo > 1 {
		t.Fatalf("round-robin routed counts %v spread by more than one", res.Routed)
	}
	if s := res.Summarize(); s.Fairness < 0.99 {
		t.Fatalf("round-robin fairness %.4f, want ≈ 1", s.Fairness)
	}
}

// TestClusterIdleInstances covers M > population: never-routed
// instances are aborted, get empty results, and the summary still
// stands up (fairness reflects the idle capacity).
func TestClusterIdleInstances(t *testing.T) {
	streams := testStreams(t, 3, 9)
	times := []core.Time{0, core.Millisecond, core.Millisecond}
	for _, run := range []struct {
		name string
		fn   func(Config) (*Result, error)
	}{{"serial", RunSerial}, {"concurrent", Run}} {
		res, err := run.fn(Config{Streams: streams, Arrivals: times, Instances: 8})
		if err != nil {
			t.Fatalf("%s: %v", run.name, err)
		}
		for i := 3; i < 8; i++ {
			if res.Routed[i] != 0 || len(res.Instances[i].Lifecycles) != 0 {
				t.Fatalf("%s: idle instance %d has traffic", run.name, i)
			}
		}
		s := res.Summarize()
		if s.Global.Streams != 3 || s.Fairness >= 0.5 {
			t.Fatalf("%s: summary over idle cluster: streams %d fairness %.3f", run.name, s.Global.Streams, s.Fairness)
		}
	}
}

// badPolicy routes out of range to exercise the router's abort path.
type badPolicy struct{}

func (badPolicy) Name() string          { return "bad" }
func (badPolicy) NeedsState() bool      { return false }
func (badPolicy) Route(d *Decision) int { return len(d.Pending) }

// TestClusterConfigErrors exercises validation and the abort path of
// both drivers; the goroutine leak detector (-race + test exit) backs
// the claim that aborts tear every instance down.
func TestClusterConfigErrors(t *testing.T) {
	streams := testStreams(t, 4, 1)
	times := []core.Time{0, 1, 2, 3}
	bad := []Config{
		{Streams: streams, Arrivals: times, Instances: 0},
		{Streams: nil, Arrivals: nil, Instances: 2},
		{Streams: streams, Arrivals: times[:2], Instances: 2},
		{Streams: streams, Arrivals: []core.Time{0, -1, 2, 3}, Instances: 2},
		{Streams: streams, Arrivals: times, Instances: 2, Route: badPolicy{}},
	}
	for i, cfg := range bad {
		if _, err := RunSerial(cfg); err == nil {
			t.Errorf("serial config %d: no error", i)
		}
		if _, err := Run(cfg); err == nil {
			t.Errorf("concurrent config %d: no error", i)
		}
	}
	if _, err := ParsePolicy("nope"); err == nil {
		t.Error("ParsePolicy accepted an unknown policy")
	}
	for _, spec := range []string{"", "round-robin", "least-backlog", "weighted", "affinity"} {
		if _, err := ParsePolicy(spec); err != nil {
			t.Errorf("ParsePolicy(%q): %v", spec, err)
		}
	}
}

// TestClusterSteadyStateAllocationFree extends the open engine's
// zero-allocation contract across the router: once the cluster scratch
// is warm, a whole steady-state serial cluster run — arrival ordering,
// watermark synchronization, state reads, policy draws, routing, feeds,
// drains and the global observation merge — performs zero heap
// allocations at workers = 1. The concurrent driver costs O(instances)
// allocations per run for its goroutines and queues, which the
// benchmark rows bound.
func TestClusterSteadyStateAllocationFree(t *testing.T) {
	streams := testStreams(t, 12, 47)
	times, err := arrivals.Poisson{MeanGap: 15 * core.Millisecond, Seed: 9}.Times(len(streams))
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []Policy{RoundRobin{}, LeastBacklog{}, UtilizationWeighted{}} {
		cfg := Config{
			Streams: streams, Arrivals: times, Instances: 3,
			Route: pol, Admit: fleet.CapK{K: 2, Queue: -1},
			Workers: 1, Seed: 13, Scratch: NewScratch(),
		}
		run := func() {
			res, err := RunSerial(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Global.Lifecycles) != len(streams) {
				t.Fatalf("merged %d lifecycles of %d", len(res.Global.Lifecycles), len(streams))
			}
		}
		run() // warm: per-instance scratches, router slabs
		if allocs := testing.AllocsPerRun(32, run); allocs != 0 {
			t.Fatalf("%s: steady-state cluster run allocates %.2f times per run, want 0", pol.Name(), allocs)
		}
	}
}
