// Package cluster scales the open fleet engine out across M
// independent instances behind a virtual-time front-end router. Each
// instance is a full fleet.OpenLive — its own admission controller
// state, worker pool and slot arena — so the cluster stacks
// instance-level parallelism on top of the per-instance pools: router
// and instances pipeline through command queues, and the final drains
// of all instances overlap.
//
// Determinism is load-bearing, exactly as in the single engine: every
// routing decision is a pure function of the global serial event order.
// State-reading policies see each instance's serial-order load at the
// arrival's virtual instant — the router advances every instance's
// watermark to t−1 (so all simultaneous arrivals are decided in one
// event group, like the batch spec) and the instance blocks, bounded by
// the departure-bound gate, until that state is fully determined.
// Policy draws come from a keyed subsystem stream
// (fleet.ForSubsystem(seed, "cluster/router")), so enabling a drawing
// policy can never shift arrival or workload sequences. RunSerial is
// the executable spec: Run is property-tested byte-identical to it at
// every (workers, batch, lookahead) × policy × arrival model.
package cluster

import (
	"errors"
	"fmt"
	"slices"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/obs"
)

// Config shapes a cluster run: the global arriving population plus the
// instance count, routing policy and per-instance engine shape.
type Config struct {
	// Streams is the global arriving population, Arrivals its arrival
	// instants — exactly OpenConfig's contract: one finite non-negative
	// instant per stream, ordered by the router as (instant, index).
	Streams  []fleet.Stream
	Arrivals []core.Time
	// Instances is the cluster width M (≥ 1).
	Instances int
	// Route assigns each arrival to an instance; nil selects RoundRobin.
	// The policy must be a pure function of its Decision (see Policy).
	Route Policy
	// Admit is each instance's admission controller; nil selects
	// AdmitAll. The same value is shared across instances, so it must be
	// stateless — which the Admitter contract already requires.
	Admit fleet.Admitter
	// Workers, BatchCycles and Lookahead shape each instance's engine
	// exactly as in OpenConfig. They change wall-clock time, never
	// results — and neither does the instance count times they are
	// multiplied by.
	Workers     int
	BatchCycles int
	Lookahead   int
	// Seed is the cluster's base seed. The router's policy draw stream
	// is ForSubsystem(Seed, "cluster/router"); workload and arrival
	// seeds derive from their own subsystems, so no component's draws
	// can shift another's.
	Seed uint64
	// Obs, when non-nil, carries one metric bundle per instance
	// (len ≥ Instances), typically NewFleetMetrics over per-instance
	// labeled registries. Results are byte-identical with it on or off.
	Obs []*obs.FleetMetrics
	// Scratch, when non-nil, amortizes the cluster's working memory —
	// router slabs plus one OpenScratch per instance — so a warm
	// steady-state RunSerial at Workers = 1 is allocation-free end to
	// end. The returned Result then aliases the scratch and is valid
	// only until its next run.
	Scratch *Scratch
}

// Scratch is the cluster's reusable working memory: the router's
// order/assignment/pending slabs and one fleet.OpenScratch per
// instance. A zero Scratch is ready to use; it warms up over the first
// run and adapts to any (population, instance count) shape.
type Scratch struct {
	open []*fleet.OpenScratch

	order   []int32
	assign  []int32
	local   []int32
	routed  []int
	pending []int
	states  []InstanceState
	results []*fleet.OpenResult
	empty   []fleet.OpenResult
	errs    []error

	lifecycles []metrics.Lifecycle
	lives      []*fleet.OpenLive
	dec        Decision
	rng        PolicyRNG
	serial     serialDriver
	res        Result
}

// NewScratch returns an empty cluster scratch.
func NewScratch() *Scratch { return new(Scratch) }

// ensure sizes the scratch for m instances and n streams, reusing
// backing arrays. routed and pending restart zeroed; assign/local are
// fully overwritten by the router before anything reads them.
func (sc *Scratch) ensure(m, n int) {
	for len(sc.open) < m {
		sc.open = append(sc.open, fleet.NewOpenScratch())
	}
	sc.order = grown(sc.order, n)
	sc.assign = grown(sc.assign, n)
	sc.local = grown(sc.local, n)
	sc.routed = grown(sc.routed, m)
	sc.pending = grown(sc.pending, m)
	sc.states = grown(sc.states, m)
	sc.results = grown(sc.results, m)
	sc.empty = grown(sc.empty, m)
	sc.errs = grown(sc.errs, m)
	sc.lives = grown(sc.lives, m)
	clear(sc.routed)
	clear(sc.pending)
	clear(sc.errs)
}

// grown resizes a scratch slab to length n, reusing capacity.
func grown[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// Result is a cluster run's outcome: each instance's complete open
// result plus the routing record that maps the global population onto
// them.
type Result struct {
	// Instances[i] is instance i's sealed open result; its slices are
	// in instance-local routed order. An instance the policy never
	// routed to has an empty result.
	Instances []*fleet.OpenResult
	// Assign[k] is the instance stream k was routed to and Local[k] its
	// index within that instance's result slices, so
	// Instances[Assign[k]].Lifecycles[Local[k]] is stream k's lifecycle.
	Assign []int32
	Local  []int32
	// Routed[i] counts streams routed to instance i.
	Routed []int
	// Policy is the routing policy's name.
	Policy string
	// Global is the merged observation record: lifecycles in global
	// (arrival-process) stream order, BacklogIntegral summed across
	// instances (each queues independently), MaxBacklog the deepest any
	// single instance's queue got, and the window bounds the min/max
	// over instances.
	Global metrics.OpenObservations
}

// Summarize computes the cluster summary: global and per-instance
// open-system summaries plus the Jain fairness index of the routing.
func (r *Result) Summarize() metrics.ClusterSummary {
	per := make([]metrics.OpenObservations, len(r.Instances))
	for i, inst := range r.Instances {
		per[i] = inst.OpenObservations
	}
	return metrics.SummarizeCluster(r.Policy, r.Global, per, r.Routed)
}

// FleetResult returns the executed streams as one closed-fleet result
// in global stream order (shed streams skipped), so the whole
// cross-stream aggregation and reporting stack applies unchanged to a
// cluster run — exactly OpenResult.FleetResult, across instances.
func (r *Result) FleetResult() *fleet.Result {
	res := &fleet.Result{Streams: make([]fleet.StreamResult, 0, len(r.Assign))}
	for k := range r.Assign {
		inst := r.Instances[r.Assign[k]]
		j := r.Local[k]
		if inst.Lifecycles[j].Shed {
			continue
		}
		res.Streams = append(res.Streams, inst.Streams[j])
	}
	return res
}

// Err returns the first per-stream error in global stream order, or
// nil if every executed stream ran.
func (r *Result) Err() error {
	for k := range r.Assign {
		s := &r.Instances[r.Assign[k]].Streams[r.Local[k]]
		if s.Err != nil {
			return fmt.Errorf("cluster: stream %q: %w", s.Name, s.Err)
		}
	}
	return nil
}

// Run executes the cluster with one goroutine per instance: the router
// streams commands (advance watermark, feed arrival, read state, close)
// into per-instance queues, so instances execute concurrently with each
// other and with the router — stateless policies never synchronize at
// all, and state-reading ones synchronize exactly at each arrival's
// virtual instant. The result is byte-identical to RunSerial.
func Run(cfg Config) (*Result, error) {
	sc, pol, maxLevels, err := prepare(&cfg)
	if err != nil {
		return nil, err
	}
	d := &concDriver{streams: cfg.Streams, ws: make([]instWorker, cfg.Instances)}
	for i := 0; i < cfg.Instances; i++ {
		d.ws[i] = instWorker{
			cmds:  make(chan instCmd, 128),
			state: make(chan InstanceState, 1),
			done:  make(chan instDone, 1),
		}
		// The OpenLive is created here and handed to the worker
		// goroutine: creation happens-before the goroutine starts, and
		// from then on the worker is its sole owner.
		go runInstance(newInstance(&cfg, sc, maxLevels, i), cfg.Streams, d.ws[i])
	}
	return runCluster(&cfg, pol, sc, d)
}

// RunSerial is the cluster's executable specification: the identical
// router loop driving all instances from one goroutine. Results are
// byte-for-byte what Run produces; with a warm Scratch at Workers = 1
// the steady state is allocation-free, which pins the router hot path's
// zero-allocation contract.
func RunSerial(cfg Config) (*Result, error) {
	sc, pol, maxLevels, err := prepare(&cfg)
	if err != nil {
		return nil, err
	}
	d := &sc.serial
	*d = serialDriver{lives: sc.lives, streams: cfg.Streams, errs: sc.errs}
	for i := 0; i < cfg.Instances; i++ {
		d.lives[i] = newInstance(&cfg, sc, maxLevels, i)
	}
	return runCluster(&cfg, pol, sc, d)
}

// prepare validates the configuration, sizes the scratch and sorts the
// global arrival order.
func prepare(cfg *Config) (*Scratch, Policy, int, error) {
	if cfg.Instances <= 0 {
		return nil, nil, 0, fmt.Errorf("cluster: non-positive instance count %d", cfg.Instances)
	}
	n := len(cfg.Streams)
	if n == 0 {
		return nil, nil, 0, errors.New("cluster: no streams")
	}
	if len(cfg.Arrivals) != n {
		return nil, nil, 0, fmt.Errorf("cluster: %d streams but %d arrival instants", n, len(cfg.Arrivals))
	}
	maxLevels := 0
	for k := range cfg.Streams {
		if t := cfg.Arrivals[k]; t < 0 || t.IsInf() {
			return nil, nil, 0, fmt.Errorf("cluster: stream %d has invalid arrival instant %v", k, t)
		}
		if sys := cfg.Streams[k].Runner.Sys; sys != nil && sys.NumLevels() > maxLevels {
			maxLevels = sys.NumLevels()
		}
	}
	if cfg.Obs != nil && len(cfg.Obs) < cfg.Instances {
		return nil, nil, 0, fmt.Errorf("cluster: %d metric bundles for %d instances", len(cfg.Obs), cfg.Instances)
	}
	pol := cfg.Route
	if pol == nil {
		pol = RoundRobin{}
	}
	sc := cfg.Scratch
	if sc == nil {
		sc = NewScratch()
	}
	sc.ensure(cfg.Instances, n)
	order := sc.order[:0]
	for k := 0; k < n; k++ {
		order = append(order, int32(k))
	}
	// Stable by instant: simultaneous arrivals keep index order, the
	// same (instant, index) event order as the single-engine spec.
	slices.SortStableFunc(order, func(a, b int32) int {
		switch {
		case cfg.Arrivals[a] < cfg.Arrivals[b]:
			return -1
		case cfg.Arrivals[a] > cfg.Arrivals[b]:
			return 1
		}
		return 0
	})
	sc.order = order
	return sc, pol, maxLevels, nil
}

// newInstance starts instance i's incremental engine on its own scratch.
func newInstance(cfg *Config, sc *Scratch, maxLevels, i int) *fleet.OpenLive {
	lc := fleet.OpenLiveConfig{
		Admit:       cfg.Admit,
		Workers:     cfg.Workers,
		BatchCycles: cfg.BatchCycles,
		Lookahead:   cfg.Lookahead,
		MaxLevels:   maxLevels,
		Scratch:     sc.open[i],
	}
	if cfg.Obs != nil {
		lc.Obs = cfg.Obs[i]
	}
	return fleet.NewOpenLive(lc)
}

// driver is the router's view of the instance set: the serial form
// calls straight into each OpenLive, the concurrent form streams the
// same calls through per-instance command queues. Both execute the
// identical serial-order protocol, which is why their results are
// byte-identical.
type driver interface {
	// advance moves every instance's watermark to w (asynchronously in
	// the concurrent form — ordering per instance is all that matters).
	advance(w core.Time)
	// states reads every instance's serial-order state at its current
	// watermark; a barrier in the concurrent form.
	states(dst []InstanceState)
	// feed hands stream k arriving at t to instance i.
	feed(i int, k int32, t core.Time)
	// finish closes every instance — concurrently in the concurrent
	// form, so the final drains overlap — collecting results and the
	// first instance error. Zero-routed instances are aborted and get
	// an empty result (Close on an empty engine is the no-streams
	// error, which routing made legitimate here).
	finish(routed []int, results []*fleet.OpenResult, empty []fleet.OpenResult) error
	// abort tears every instance down without sealing (router error).
	abort()
}

// runCluster is the shared router loop: the single place routing
// semantics are defined, so the spec and the concurrent engine cannot
// drift.
//
//detlint:hotpath
func runCluster(cfg *Config, pol Policy, sc *Scratch, d driver) (*Result, error) {
	n, m := len(cfg.Streams), cfg.Instances
	needs := pol.NeedsState()
	sc.rng = PolicyRNG{state: fleet.ForSubsystem(cfg.Seed, "cluster/router")}
	dec := &sc.dec
	*dec = Decision{Pending: sc.pending, RNG: &sc.rng}
	lastT := core.Time(-1)
	for ord := 0; ord < n; ord++ {
		k := sc.order[ord]
		t := cfg.Arrivals[k]
		if t != lastT {
			// A new instant: every previously routed arrival is now
			// visible in instance state once the watermark reaches t−1.
			clear(sc.pending)
			lastT = t
		}
		if needs {
			// Watermark t−1, not t: all arrivals at instant t must be
			// decided in one event group, exactly like the batch spec —
			// advancing through t would let a same-instant departure
			// retire between two simultaneous arrivals' decisions.
			d.advance(t - 1)
			d.states(sc.states)
			dec.States = sc.states
		}
		dec.Stream = &cfg.Streams[k]
		dec.K = int(k)
		dec.T = t
		dec.Ordinal = ord
		i := pol.Route(dec)
		if i < 0 || i >= m {
			d.abort()
			//detlint:allow hotpathalloc terminal abort on a misrouting policy, never taken at steady state
			return nil, fmt.Errorf("cluster: policy %q routed stream %d to instance %d of %d", pol.Name(), k, i, m)
		}
		sc.assign[k] = int32(i)
		sc.local[k] = int32(sc.routed[i])
		sc.routed[i]++
		sc.pending[i]++
		d.feed(i, k, t)
	}
	if err := d.finish(sc.routed, sc.results, sc.empty); err != nil {
		return nil, err
	}
	res := &sc.res
	*res = Result{
		Instances: sc.results,
		Assign:    sc.assign,
		Local:     sc.local,
		Routed:    sc.routed,
		Policy:    pol.Name(),
	}
	res.Global = mergeObservations(sc, res)
	return res, nil
}

// mergeObservations assembles the global observation record from the
// sealed per-instance results: lifecycles back in global stream order
// via the (Assign, Local) routing record, backlog integral summed,
// window bounds min/max over the instances that saw traffic.
func mergeObservations(sc *Scratch, r *Result) metrics.OpenObservations {
	var o metrics.OpenObservations
	first := true
	for _, inst := range r.Instances {
		if len(inst.Lifecycles) == 0 {
			continue
		}
		if first {
			o.FirstArrival, o.End, o.Final = inst.FirstArrival, inst.End, inst.Final
			o.MaxBacklog = inst.MaxBacklog
			first = false
		} else {
			o.FirstArrival = min(o.FirstArrival, inst.FirstArrival)
			o.End = max(o.End, inst.End)
			o.Final = max(o.Final, inst.Final)
			o.MaxBacklog = max(o.MaxBacklog, inst.MaxBacklog)
		}
		o.BacklogIntegral += inst.BacklogIntegral
	}
	sc.lifecycles = sc.lifecycles[:0]
	for k := range r.Assign {
		sc.lifecycles = append(sc.lifecycles, r.Instances[r.Assign[k]].Lifecycles[r.Local[k]])
	}
	o.Lifecycles = sc.lifecycles
	return o
}

// serialDriver drives every instance from the router's own goroutine —
// the executable spec, and the allocation-free steady-state form.
type serialDriver struct {
	lives   []*fleet.OpenLive
	streams []fleet.Stream
	errs    []error
}

func (d *serialDriver) advance(w core.Time) {
	for i, ol := range d.lives {
		if d.errs[i] == nil {
			d.errs[i] = ol.Advance(w)
		}
	}
}

func (d *serialDriver) states(dst []InstanceState) {
	for i, ol := range d.lives {
		dst[i] = InstanceState{InService: ol.InService(), Backlog: ol.Backlog(), CPULoad: ol.CPULoad()}
	}
}

func (d *serialDriver) feed(i int, k int32, t core.Time) {
	if d.errs[i] == nil {
		d.errs[i] = d.lives[i].Feed(d.streams[k], t)
	}
}

func (d *serialDriver) finish(routed []int, results []*fleet.OpenResult, empty []fleet.OpenResult) error {
	var firstErr error
	for i, ol := range d.lives {
		switch {
		case d.errs[i] != nil:
			ol.Abort()
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: instance %d: %w", i, d.errs[i])
			}
		case routed[i] == 0:
			ol.Abort()
			empty[i] = fleet.OpenResult{}
			results[i] = &empty[i]
		default:
			res, err := ol.Close()
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("cluster: instance %d: %w", i, err)
				}
				continue
			}
			results[i] = res
		}
	}
	return firstErr
}

func (d *serialDriver) abort() {
	for _, ol := range d.lives {
		ol.Abort()
	}
}

// concDriver streams the router protocol through one command queue per
// instance goroutine. The queue is FIFO, so each instance executes its
// advance/feed/state sequence in exactly the serial driver's order;
// across instances there is no ordering to preserve — their event
// sequences are independent once routed.
type concDriver struct {
	streams []fleet.Stream
	ws      []instWorker
}

type instWorker struct {
	cmds  chan instCmd
	state chan InstanceState
	done  chan instDone
}

type instCmd struct {
	op byte
	t  core.Time
	k  int32
}

type instDone struct {
	res *fleet.OpenResult
	err error
}

const (
	opAdvance byte = iota
	opFeed
	opState
	opClose
	opAbort
)

// runInstance is one instance goroutine: it owns its OpenLive and
// applies router commands in queue order until closed or aborted.
func runInstance(ol *fleet.OpenLive, streams []fleet.Stream, w instWorker) {
	var err error
	for c := range w.cmds {
		switch c.op {
		case opAdvance:
			if err == nil {
				err = ol.Advance(c.t)
			}
		case opFeed:
			if err == nil {
				err = ol.Feed(streams[c.k], c.t)
			}
		case opState:
			w.state <- InstanceState{InService: ol.InService(), Backlog: ol.Backlog(), CPULoad: ol.CPULoad()}
		case opClose:
			if err != nil {
				ol.Abort()
				w.done <- instDone{err: err}
				return
			}
			res, cerr := ol.Close()
			w.done <- instDone{res: res, err: cerr}
			return
		case opAbort:
			ol.Abort()
			w.done <- instDone{}
			return
		}
	}
}

func (d *concDriver) advance(w core.Time) {
	for i := range d.ws {
		d.ws[i].cmds <- instCmd{op: opAdvance, t: w}
	}
}

func (d *concDriver) states(dst []InstanceState) {
	// Broadcast first, then gather: the M reads overlap.
	for i := range d.ws {
		d.ws[i].cmds <- instCmd{op: opState}
	}
	for i := range d.ws {
		dst[i] = <-d.ws[i].state
	}
}

func (d *concDriver) feed(i int, k int32, t core.Time) {
	d.ws[i].cmds <- instCmd{op: opFeed, t: t, k: k}
}

func (d *concDriver) finish(routed []int, results []*fleet.OpenResult, empty []fleet.OpenResult) error {
	// Broadcast the closes before collecting anything: every instance's
	// final drain runs concurrently — this overlap is the cluster's
	// instance-level parallelism at its widest.
	for i := range d.ws {
		op := byte(opClose)
		if routed[i] == 0 {
			op = opAbort
		}
		d.ws[i].cmds <- instCmd{op: op}
	}
	var firstErr error
	for i := range d.ws {
		dn := <-d.ws[i].done
		close(d.ws[i].cmds)
		switch {
		case routed[i] == 0:
			empty[i] = fleet.OpenResult{}
			results[i] = &empty[i]
		case dn.err != nil:
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: instance %d: %w", i, dn.err)
			}
		default:
			results[i] = dn.res
		}
	}
	return firstErr
}

func (d *concDriver) abort() {
	for i := range d.ws {
		d.ws[i].cmds <- instCmd{op: opAbort}
	}
	for i := range d.ws {
		<-d.ws[i].done
		close(d.ws[i].cmds)
	}
}
