package cluster

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/sim"
)

// InstanceState is the serial-order load of one engine instance as the
// router sees it at a routing instant: the state after every departure,
// backlog promotion and fed arrival at instants strictly before the
// arrival being routed. It is a pure function of the instance's fed
// event sequence — independent of (workers, batch, lookahead) — which
// is what makes every routing decision reproducible at any shape.
type InstanceState struct {
	// InService counts streams admitted and not yet departed.
	InService int
	// Backlog counts streams queued for admission.
	Backlog int
	// CPULoad is the summed multitask utilization of in-service streams.
	CPULoad float64
}

// PolicyRNG is the router's policy draw stream: a sequential splitmix64
// sequence seeded by fleet.ForSubsystem(seed, "cluster/router"), so a
// policy that draws (utilization-weighted) consumes randomness from its
// own keyed subsystem — adding or removing router draws can never shift
// the arrival-process or per-stream workload sequences, and vice versa.
type PolicyRNG struct{ state uint64 }

// Unit returns the next uniform draw in [0, 1).
func (r *PolicyRNG) Unit() float64 {
	r.state += 0x9E3779B97F4A7C15
	return float64(sim.Mix64(r.state)>>11) / float64(1<<53)
}

// Decision is the router's view of one arriving stream. Every field is
// a pure function of the global serial event order, so Route
// implementations are deterministic by construction.
type Decision struct {
	// Stream is the arriving stream (for content-keyed policies).
	Stream *fleet.Stream
	// K is the stream's global index, T its arrival instant.
	K int
	T core.Time
	// Ordinal is the 0-based serial number of this arrival in global
	// (instant, index) order.
	Ordinal int
	// States is the per-instance serial-order state at the arrival's
	// virtual instant; nil for policies that report NeedsState false.
	States []InstanceState
	// Pending[i] counts arrivals already routed to instance i at exactly
	// instant T whose admission verdict is not yet visible in States[i]
	// (the instance watermark sits at T−1 so that all simultaneous
	// arrivals are decided in one event group, exactly like the
	// single-engine spec). len(Pending) is the instance count.
	Pending []int
	// RNG is the router's policy draw stream.
	RNG *PolicyRNG
}

// Instances returns the cluster width M.
func (d *Decision) Instances() int { return len(d.Pending) }

// Policy assigns each arriving stream to an engine instance. Route must
// be a pure function of the Decision (plus draws from its RNG, which
// the router replays in serial order): the cluster's byte-for-byte
// determinism across scheduler shapes rests on it, exactly as the open
// engine's rests on Admitter purity.
type Policy interface {
	// Name identifies the policy for reports and benchmark rows.
	Name() string
	// NeedsState reports whether Route reads Decision.States. Stateless
	// policies skip the per-arrival instance watermark synchronization
	// entirely, so the router never blocks on instance progress.
	NeedsState() bool
	// Route returns the target instance in [0, Instances()).
	Route(d *Decision) int
}

// RoundRobin cycles arrivals across instances in global arrival order —
// the stateless default, and the identity routing the M=1 pass-through
// equivalence pins down.
type RoundRobin struct{}

// Name implements Policy.
func (RoundRobin) Name() string { return "round-robin" }

// NeedsState implements Policy.
func (RoundRobin) NeedsState() bool { return false }

// Route implements Policy.
//
//detlint:hotpath
func (RoundRobin) Route(d *Decision) int { return d.Ordinal % len(d.Pending) }

// LeastBacklog routes each arrival to the instance with the fewest
// outstanding streams at the arrival's virtual instant: primary key is
// queue depth (serial-order backlog plus same-instant arrivals already
// routed there), ties break on in-service count, then instance index.
type LeastBacklog struct{}

// Name implements Policy.
func (LeastBacklog) Name() string { return "least-backlog" }

// NeedsState implements Policy.
func (LeastBacklog) NeedsState() bool { return true }

// Route implements Policy.
//
//detlint:hotpath
func (LeastBacklog) Route(d *Decision) int {
	best := 0
	bq := d.States[0].Backlog + d.Pending[0]
	bs := d.States[0].InService
	for i := 1; i < len(d.States); i++ {
		q := d.States[i].Backlog + d.Pending[i]
		s := d.States[i].InService
		if q < bq || (q == bq && s < bs) {
			best, bq, bs = i, q, s
		}
	}
	return best
}

// UtilizationWeighted samples the target instance with probability
// proportional to its remaining capacity 1/(1 + CPULoad + pending):
// lightly-loaded instances attract arrivals without the hard
// winner-takes-all of LeastBacklog. The draw comes from the router's
// keyed subsystem stream, so enabling this policy never perturbs
// workload or arrival draws.
type UtilizationWeighted struct{}

// Name implements Policy.
func (UtilizationWeighted) Name() string { return "utilization-weighted" }

// NeedsState implements Policy.
func (UtilizationWeighted) NeedsState() bool { return true }

// Route implements Policy.
//
//detlint:hotpath
func (UtilizationWeighted) Route(d *Decision) int {
	total := 0.0
	for i := range d.States {
		total += 1 / (1 + d.States[i].CPULoad + float64(d.Pending[i]))
	}
	u := d.RNG.Unit() * total
	cum := 0.0
	for i := range d.States {
		cum += 1 / (1 + d.States[i].CPULoad + float64(d.Pending[i]))
		if u < cum {
			return i
		}
	}
	return len(d.States) - 1 // float round-off on the last partial sum
}

// Affinity pins each stream to the instance its content seed hashes to
// (falling back to the stream name when the executor model carries no
// seed): every stream of one seed/bundle lineage lands on the same
// instance run after run, the placement a warm per-instance cache wants.
// Stateless — routing is a pure function of the stream itself.
type Affinity struct{}

// Name implements Policy.
func (Affinity) Name() string { return "affinity" }

// NeedsState implements Policy.
func (Affinity) NeedsState() bool { return false }

// Route implements Policy.
//
//detlint:hotpath
func (Affinity) Route(d *Decision) int {
	var key uint64
	switch e := d.Stream.Runner.Exec.(type) {
	case sim.Content:
		key = sim.Mix64(e.Seed)
	case *sim.FastContent:
		key = sim.Mix64(e.Seed)
	default:
		key = fleet.ForSubsystem(0, d.Stream.Name)
	}
	return int(key % uint64(len(d.Pending)))
}

// ParsePolicy builds a routing policy from its flag spelling:
//
//	round-robin    cycle arrivals across instances (the default)
//	least-backlog  fewest outstanding streams at the arrival instant
//	weighted       sample by remaining capacity (utilization-weighted)
//	affinity       pin streams to instances by content seed
func ParsePolicy(spec string) (Policy, error) {
	switch strings.TrimSpace(spec) {
	case "", "round-robin":
		return RoundRobin{}, nil
	case "least-backlog":
		return LeastBacklog{}, nil
	case "weighted", "utilization-weighted":
		return UtilizationWeighted{}, nil
	case "affinity":
		return Affinity{}, nil
	}
	return nil, fmt.Errorf("cluster: unknown routing policy %q (want round-robin, least-backlog, weighted or affinity)", spec)
}
