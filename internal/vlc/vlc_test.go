package vlc

import (
	"math/rand"
	"testing"

	"repro/internal/bitstream"
)

func TestZigZagIsPermutation(t *testing.T) {
	seen := [64]bool{}
	for _, v := range ZigZag {
		if v < 0 || v >= 64 || seen[v] {
			t.Fatalf("zigzag not a permutation at %d", v)
		}
		seen[v] = true
	}
	// Spot-check the canonical start of the pattern.
	want := []int{0, 1, 8, 16, 9, 2}
	for i, w := range want {
		if ZigZag[i] != w {
			t.Fatalf("ZigZag[%d] = %d, want %d", i, ZigZag[i], w)
		}
	}
}

func TestRunLengthRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		var block [64]int32
		// Sparse blocks like real quantised DCT output.
		for i := 0; i < 64; i++ {
			if rng.Intn(5) == 0 {
				block[i] = rng.Int31n(41) - 20
			}
		}
		pairs := RunLength(&block)
		var back [64]int32
		if err := Reconstruct(pairs, &back); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if back != block {
			t.Fatalf("trial %d: runlength roundtrip mismatch", trial)
		}
	}
}

func TestRunLengthEmptyBlock(t *testing.T) {
	var block [64]int32
	if pairs := RunLength(&block); len(pairs) != 0 {
		t.Fatalf("zero block produced %d pairs", len(pairs))
	}
}

func TestReconstructRejectsMalformed(t *testing.T) {
	var block [64]int32
	if err := Reconstruct([]RunLevel{{Run: 64, Level: 5}}, &block); err == nil {
		t.Fatal("overflowing run accepted")
	}
	if err := Reconstruct([]RunLevel{{Run: 0, Level: 0}}, &block); err == nil {
		t.Fatal("zero level accepted")
	}
}

func TestCodebookPrefixFree(t *testing.T) {
	cb := NewDefaultCodebook()
	// Collect all codes (including escape).
	type entry struct {
		bits uint32
		n    uint
	}
	var all []entry
	for _, c := range cb.codes {
		all = append(all, entry{c.bits, c.n})
	}
	all = append(all, entry{cb.escape.bits, cb.escape.n})
	for i, a := range all {
		for j, b := range all {
			if i == j {
				continue
			}
			if a.n <= b.n && b.bits>>(b.n-a.n) == a.bits {
				t.Fatalf("code %b/%d is a prefix of %b/%d", a.bits, a.n, b.bits, b.n)
			}
		}
	}
}

func TestEncodeDecodeBlockRoundTrip(t *testing.T) {
	cb := NewDefaultCodebook()
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		var block [64]int32
		for i := 0; i < 64; i++ {
			switch rng.Intn(8) {
			case 0:
				block[i] = rng.Int31n(15) - 7 // small levels, common
			case 1:
				block[i] = rng.Int31n(4001) - 2000 // escapes
			}
		}
		pairs := RunLength(&block)
		w := bitstream.NewWriter()
		cb.EncodeBlock(w, pairs)
		r := bitstream.NewReader(w.Bytes())
		got, err := cb.DecodeBlock(r)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if len(got) != len(pairs) {
			t.Fatalf("trial %d: %d pairs, want %d", trial, len(got), len(pairs))
		}
		for k := range pairs {
			if got[k] != pairs[k] {
				t.Fatalf("trial %d: pair %d = %+v, want %+v", trial, k, got[k], pairs[k])
			}
		}
	}
}

func TestEncodeMultipleBlocksSequentially(t *testing.T) {
	cb := NewDefaultCodebook()
	w := bitstream.NewWriter()
	blocks := [][]RunLevel{
		{{Run: 0, Level: 5}, {Run: 3, Level: -2}},
		{}, // empty block: just EOB
		{{Run: 63, Level: 1}},
	}
	for _, b := range blocks {
		cb.EncodeBlock(w, b)
	}
	r := bitstream.NewReader(w.Bytes())
	for i, want := range blocks {
		got, err := cb.DecodeBlock(r)
		if err != nil {
			t.Fatalf("block %d: %v", i, err)
		}
		if len(got) != len(want) {
			t.Fatalf("block %d: %d pairs, want %d", i, len(got), len(want))
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("block %d pair %d mismatch", i, k)
			}
		}
	}
}

func TestCommonSymbolsShorterThanRare(t *testing.T) {
	cb := NewDefaultCodebook()
	common := cb.codes[symbol{0, 1}] // run 0, level 1: most frequent
	rare := cb.codes[symbol{15, 8}]  // long run, big level
	if common.n >= rare.n {
		t.Fatalf("common symbol %d bits, rare %d bits", common.n, rare.n)
	}
}

func TestEncodeBlockReturnsSymbolCount(t *testing.T) {
	cb := NewDefaultCodebook()
	w := bitstream.NewWriter()
	pairs := []RunLevel{{0, 1}, {1, 2}, {2, -3}}
	if n := cb.EncodeBlock(w, pairs); n != 4 { // 3 pairs + EOB
		t.Fatalf("symbol count %d, want 4", n)
	}
}
