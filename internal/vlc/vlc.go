// Package vlc implements the entropy-coding stage of the encoder
// substrate: zig-zag scanning of 8×8 coefficient blocks, (run, level)
// run-length coding, and a canonical Huffman code over the common
// (run, level) pairs with an escape mechanism for the rest — the
// structure of MPEG's VLC tables, rebuilt from scratch.
package vlc

import (
	"cmp"
	"fmt"
	"slices"

	"repro/internal/bitstream"
)

// ZigZag is the standard 8×8 zig-zag scan order.
var ZigZag = [64]int{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}

// RunLevel is one run-length symbol: Run zero coefficients followed by a
// non-zero Level.
type RunLevel struct {
	Run   int
	Level int32
}

// RunLength converts a quantised coefficient block to (run, level) pairs
// in zig-zag order. The DC coefficient (index 0) is included like any
// other; an all-zero block yields no pairs.
func RunLength(block *[64]int32) []RunLevel {
	var out []RunLevel
	run := 0
	for _, idx := range ZigZag {
		v := block[idx]
		if v == 0 {
			run++
			continue
		}
		out = append(out, RunLevel{Run: run, Level: v})
		run = 0
	}
	return out
}

// Reconstruct inverts RunLength into a coefficient block.
func Reconstruct(pairs []RunLevel, block *[64]int32) error {
	*block = [64]int32{}
	pos := 0
	for _, p := range pairs {
		pos += p.Run
		if pos >= 64 {
			return fmt.Errorf("vlc: run overflows block (pos %d)", pos)
		}
		if p.Level == 0 {
			return fmt.Errorf("vlc: zero level in run-length pair")
		}
		block[ZigZag[pos]] = p.Level
		pos++
	}
	return nil
}

// symbol identifies a (run, smallish-level) pair for the Huffman table.
type symbol struct {
	run int
	lvl int32
}

// Codebook is a canonical Huffman code over frequent (run, |level|≤maxL)
// symbols plus an escape code. Sign bits are written raw after each
// non-escape symbol.
type Codebook struct {
	codes   map[symbol]code
	decode  map[code]symbol
	escape  code
	maxRun  int
	maxLvl  int32
	maxBits uint
}

type code struct {
	bits uint32
	n    uint
}

// NewDefaultCodebook builds the static codebook used by the encoder:
// geometric frequencies favouring short runs and small levels, the shape
// of real DCT statistics.
func NewDefaultCodebook() *Codebook {
	const maxRun, maxLvl = 15, 8
	var syms []weightedSymbol
	for run := 0; run <= maxRun; run++ {
		for lvl := int32(1); lvl <= maxLvl; lvl++ {
			w := 1.0 / (float64(run+1) * float64(lvl) * float64(lvl))
			syms = append(syms, weightedSymbol{symbol{run, lvl}, w})
		}
	}
	// Escape weight comparable to a mid-frequency symbol.
	syms = append(syms, weightedSymbol{symbol{-1, 0}, 0.02})

	// Huffman lengths via package-local tree construction.
	lengths := huffmanLengths(syms)

	// Canonical code assignment: sort by (length, run, level).
	type assigned struct {
		sym symbol
		len uint
	}
	arr := make([]assigned, len(syms))
	for i, s := range syms {
		arr[i] = assigned{s.sym, lengths[i]}
	}
	slices.SortFunc(arr, func(a, b assigned) int {
		if c := cmp.Compare(a.len, b.len); c != 0 {
			return c
		}
		if c := cmp.Compare(a.sym.run, b.sym.run); c != 0 {
			return c
		}
		return cmp.Compare(a.sym.lvl, b.sym.lvl)
	})
	cb := &Codebook{
		codes:  make(map[symbol]code, len(arr)),
		decode: make(map[code]symbol, len(arr)),
		maxRun: maxRun,
		maxLvl: maxLvl,
	}
	next := uint32(0)
	prevLen := uint(0)
	for _, a := range arr {
		next <<= (a.len - prevLen)
		prevLen = a.len
		c := code{bits: next, n: a.len}
		if a.sym.run < 0 {
			cb.escape = c
		} else {
			cb.codes[a.sym] = c
		}
		cb.decode[c] = a.sym
		if a.len > cb.maxBits {
			cb.maxBits = a.len
		}
		next++
	}
	return cb
}

// weightedSymbol pairs a codebook symbol with its assumed frequency.
type weightedSymbol struct {
	sym symbol
	w   float64
}

// huffmanLengths computes code lengths with a selection-based Huffman
// builder (the codebook is built once at startup; O(n²) is fine).
func huffmanLengths(syms []weightedSymbol) []uint {
	type node struct {
		w           float64
		left, right int // indices into nodes, -1 for leaves
		leaf        int // symbol index for leaves
	}
	nodes := make([]node, 0, 2*len(syms))
	heap := make([]int, 0, len(syms))
	for i, s := range syms {
		nodes = append(nodes, node{w: s.w, left: -1, right: -1, leaf: i})
		heap = append(heap, i)
	}
	pop := func() int {
		best := 0
		for i := 1; i < len(heap); i++ {
			if nodes[heap[i]].w < nodes[heap[best]].w {
				best = i
			}
		}
		id := heap[best]
		heap = append(heap[:best], heap[best+1:]...)
		return id
	}
	for len(heap) > 1 {
		a, b := pop(), pop()
		nodes = append(nodes, node{w: nodes[a].w + nodes[b].w, left: a, right: b, leaf: -1})
		heap = append(heap, len(nodes)-1)
	}
	lengths := make([]uint, len(syms))
	var walk func(id int, depth uint)
	walk = func(id int, depth uint) {
		nd := nodes[id]
		if nd.left < 0 {
			if depth == 0 {
				depth = 1 // single-symbol degenerate code
			}
			lengths[nd.leaf] = depth
			return
		}
		walk(nd.left, depth+1)
		walk(nd.right, depth+1)
	}
	walk(heap[0], 0)
	return lengths
}

// EncodeBlock writes the (run, level) pairs of a quantised block followed
// by an end-of-block marker. It returns the number of symbols written
// (work accounting for the encoder's timing model).
func (cb *Codebook) EncodeBlock(w *bitstream.Writer, pairs []RunLevel) int {
	for _, p := range pairs {
		lvl := p.Level
		neg := lvl < 0
		if neg {
			lvl = -lvl
		}
		if p.Run <= cb.maxRun && lvl <= cb.maxLvl {
			c := cb.codes[symbol{p.Run, lvl}]
			w.WriteBits(c.bits, c.n)
			if neg {
				w.WriteBit(1)
			} else {
				w.WriteBit(0)
			}
		} else {
			// Escape: code, then raw run and signed level.
			w.WriteBits(cb.escape.bits, cb.escape.n)
			w.WriteBits(uint32(p.Run), 6)
			w.WriteSE(p.Level)
		}
	}
	// End of block: escape with run 63 (cannot occur as a real escape
	// because a 63-run pair is representable but unused sentinel-wise).
	w.WriteBits(cb.escape.bits, cb.escape.n)
	w.WriteBits(63, 6)
	w.WriteSE(0)
	return len(pairs) + 1
}

// DecodeBlock reads pairs until the end-of-block marker.
func (cb *Codebook) DecodeBlock(r *bitstream.Reader) ([]RunLevel, error) {
	var pairs []RunLevel
	for {
		sym, err := cb.readSymbol(r)
		if err != nil {
			return nil, err
		}
		if sym.run < 0 {
			// Escape.
			run, err := r.ReadBits(6)
			if err != nil {
				return nil, err
			}
			lvl, err := r.ReadSE()
			if err != nil {
				return nil, err
			}
			if run == 63 && lvl == 0 {
				return pairs, nil // end of block
			}
			pairs = append(pairs, RunLevel{Run: int(run), Level: lvl})
			continue
		}
		signBit, err := r.ReadBit()
		if err != nil {
			return nil, err
		}
		lvl := sym.lvl
		if signBit == 1 {
			lvl = -lvl
		}
		pairs = append(pairs, RunLevel{Run: sym.run, Level: lvl})
	}
}

func (cb *Codebook) readSymbol(r *bitstream.Reader) (symbol, error) {
	var c code
	for c.n <= cb.maxBits {
		b, err := r.ReadBit()
		if err != nil {
			return symbol{}, err
		}
		c.bits = c.bits<<1 | b
		c.n++
		if s, ok := cb.decode[c]; ok {
			return s, nil
		}
	}
	return symbol{}, fmt.Errorf("vlc: invalid code after %d bits", c.n)
}
