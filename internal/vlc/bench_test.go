package vlc

import (
	"math/rand"
	"testing"

	"repro/internal/bitstream"
)

func benchPairs() []RunLevel {
	rng := rand.New(rand.NewSource(1))
	var block [64]int32
	for i := range block {
		if rng.Intn(4) == 0 {
			block[i] = rng.Int31n(15) - 7
		}
	}
	return RunLength(&block)
}

func BenchmarkEncodeBlock(b *testing.B) {
	cb := NewDefaultCodebook()
	pairs := benchPairs()
	w := bitstream.NewWriter()
	for i := 0; i < b.N; i++ {
		w.Reset()
		cb.EncodeBlock(w, pairs)
	}
}

func BenchmarkDecodeBlock(b *testing.B) {
	cb := NewDefaultCodebook()
	pairs := benchPairs()
	w := bitstream.NewWriter()
	cb.EncodeBlock(w, pairs)
	data := w.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := bitstream.NewReader(data)
		if _, err := cb.DecodeBlock(r); err != nil {
			b.Fatal(err)
		}
	}
}
