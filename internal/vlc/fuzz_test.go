package vlc

import (
	"testing"

	"repro/internal/bitstream"
)

// FuzzDecodeBlock: arbitrary bytes must never panic the VLC decoder —
// it either returns pairs or a clean error. (Runs its seed corpus in
// normal `go test`; use `go test -fuzz=FuzzDecodeBlock` to explore.)
func FuzzDecodeBlock(f *testing.F) {
	cb := NewDefaultCodebook()
	w := bitstream.NewWriter()
	cb.EncodeBlock(w, []RunLevel{{Run: 0, Level: 3}, {Run: 5, Level: -1}})
	f.Add(w.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{0x00, 0x00, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bitstream.NewReader(data)
		for i := 0; i < 8; i++ {
			pairs, err := cb.DecodeBlock(r)
			if err != nil {
				return
			}
			// Any successfully decoded pairs must reconstruct or
			// fail cleanly — never panic.
			var block [64]int32
			_ = Reconstruct(pairs, &block)
		}
	})
}
