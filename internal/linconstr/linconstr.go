// Package linconstr implements the conclusion's "using linear constraints
// to approximate control relaxation regions" direction: the per-state
// region boundaries tD(s_i, q) are replaced by piecewise-linear functions
// of the state index, shrinking the table from |A|·|Q| integers to a few
// segments per level.
//
// The approximation is *conservative*: upper boundaries are approximated
// from below and lower boundaries from above, so every approximated
// region is a subset of the true region. A manager driven by the
// approximated boundaries therefore never chooses a higher quality than
// the exact manager — safety is preserved; the price is (bounded) quality
// loss, which the A5 ablation benchmark quantifies against the memory
// saved.
package linconstr

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/regions"
)

// Segment is one linear piece: over states [From, To] the boundary is
// approximated by Base + Slope·(i − From), in nanoseconds with a
// per-nanosecond-per-index slope.
type Segment struct {
	From, To    int
	Base, Slope core.Time
}

// eval returns the segment's value at state i (i must be in [From, To]).
func (s Segment) eval(i int) core.Time {
	return s.Base + s.Slope*core.Time(i-s.From)
}

// Boundary is a piecewise-linear approximation of one level's tD column.
type Boundary struct {
	Segments []Segment
}

// Eval evaluates the boundary at state i by locating its segment
// (binary search over the ordered, contiguous segments).
func (b *Boundary) Eval(i int) core.Time {
	lo, hi := 0, len(b.Segments)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if b.Segments[mid].To < i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return b.Segments[lo].eval(i)
}

// Table approximates a regions.TDTable with conservative piecewise-linear
// boundaries.
type Table struct {
	sys     *core.System
	bounds  []Boundary // per level, approximating tD from below
	epsilon core.Time
}

// Approximate builds a conservative piecewise-linear approximation of tab
// with per-point error at most eps. Segments are grown greedily: a
// segment [from, to] interpolates the true boundary at its endpoints and
// is shifted down by its maximal overshoot; it grows while that overshoot
// stays within eps. Infinite table entries break segments (they only
// occur past the last deadline, where the boundary is vacuous).
func Approximate(tab *regions.TDTable, eps core.Time) (*Table, error) {
	if eps < 0 {
		return nil, fmt.Errorf("linconstr: negative tolerance %v", eps)
	}
	sys := tab.Sys()
	n := sys.NumActions()
	t := &Table{sys: sys, bounds: make([]Boundary, sys.NumLevels()), epsilon: eps}
	for q := 0; q < sys.NumLevels(); q++ {
		col := make([]core.Time, n)
		for i := 0; i < n; i++ {
			col[i] = tab.TD(i, core.Level(q))
		}
		t.bounds[q] = approximateColumn(col, eps)
	}
	return t, nil
}

// approximateColumn fits one level's column with greedy conservative
// segments.
func approximateColumn(col []core.Time, eps core.Time) Boundary {
	var b Boundary
	n := len(col)
	from := 0
	for from < n {
		if col[from].IsInf() {
			// Vacuous region: keep as an exact infinite segment.
			to := from
			for to+1 < n && col[to+1].IsInf() {
				to++
			}
			b.Segments = append(b.Segments, Segment{From: from, To: to, Base: core.TimeInf, Slope: 0})
			from = to + 1
			continue
		}
		// Grow the segment while the endpoint interpolation stays
		// within eps of the truth (and below it after shifting).
		to := from
		bestSeg := Segment{From: from, To: from, Base: col[from]}
		for cand := from + 1; cand < n && !col[cand].IsInf(); cand++ {
			seg, ok := fitSegment(col, from, cand, eps)
			if !ok {
				break
			}
			to = cand
			bestSeg = seg
		}
		b.Segments = append(b.Segments, bestSeg)
		from = to + 1
	}
	return b
}

// fitSegment interpolates col between from and to, shifts the line down
// by its maximal overshoot, and accepts if the resulting maximal
// undershoot is within eps.
func fitSegment(col []core.Time, from, to int, eps core.Time) (Segment, bool) {
	span := to - from
	slope := (col[to] - col[from]) / core.Time(span)
	overshoot := core.Time(0)
	for i := from; i <= to; i++ {
		v := col[from] + slope*core.Time(i-from)
		if d := v - col[i]; d > overshoot {
			overshoot = d
		}
	}
	base := col[from] - overshoot
	// Check the undershoot after the conservative shift.
	for i := from; i <= to; i++ {
		v := base + slope*core.Time(i-from)
		if col[i]-v > eps {
			return Segment{}, false
		}
	}
	return Segment{From: from, To: to, Base: base, Slope: slope}, true
}

// TD returns the approximated tD(s_i, q), guaranteed ≤ the exact value.
func (t *Table) TD(i int, q core.Level) core.Time {
	return t.bounds[q].Eval(i)
}

// NumSegments returns the total segment count across levels.
func (t *Table) NumSegments() int {
	n := 0
	for _, b := range t.bounds {
		n += len(b.Segments)
	}
	return n
}

// MemoryBytes returns the approximate resident size: four 8-byte fields
// per segment.
func (t *Table) MemoryBytes() int { return t.NumSegments() * 4 * 8 }

// Manager picks qualities from the approximated boundaries: the maximal
// level whose approximated tD is ≥ t. Because every boundary
// under-approximates the true one, the choice never exceeds the exact
// manager's and safety is inherited.
type Manager struct {
	tab *Table
}

// NewManager wraps an approximated table as a Quality Manager.
func NewManager(tab *Table) *Manager { return &Manager{tab: tab} }

// Name implements core.Manager.
func (m *Manager) Name() string { return "linconstr" }

// Decide implements core.Manager.
func (m *Manager) Decide(i int, tm core.Time) core.Decision {
	work := 0
	for q := m.tab.sys.QMax(); q > 0; q-- {
		work += 2
		if m.tab.TD(i, q) >= tm {
			return core.Decision{Q: q, Steps: 1, Work: work}
		}
	}
	return core.Decision{Q: 0, Steps: 1, Work: work + 2}
}
