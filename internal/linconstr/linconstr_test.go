package linconstr

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/profiler"
	"repro/internal/regions"
	"repro/internal/sim"
)

func approxPair(t *testing.T, seed int64, eps core.Time) (*regions.TDTable, *Table) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sys := core.RandomSystem(rng, core.RandomSystemConfig{Actions: 40, DeadlineEvery: 10})
	tab := regions.BuildTDTable(sys)
	approx, err := Approximate(tab, eps)
	if err != nil {
		t.Fatal(err)
	}
	return tab, approx
}

func TestApproximateValidation(t *testing.T) {
	tab, _ := approxPair(t, 1, core.Microsecond)
	if _, err := Approximate(tab, -1); err == nil {
		t.Fatal("negative tolerance accepted")
	}
}

func TestConservativeAndWithinEps(t *testing.T) {
	// approx ≤ exact everywhere, and exact − approx ≤ eps on finite
	// entries.
	for seed := int64(0); seed < 15; seed++ {
		eps := core.Time(1+seed%5) * core.Microsecond
		tab, approx := approxPair(t, seed, eps)
		sys := tab.Sys()
		for q := core.Level(0); q <= sys.QMax(); q++ {
			for i := 0; i < sys.NumActions(); i++ {
				exact := tab.TD(i, q)
				got := approx.TD(i, q)
				if exact.IsInf() {
					if !got.IsInf() {
						t.Fatalf("seed %d: finite approximation of vacuous boundary at i=%d q=%v", seed, i, q)
					}
					continue
				}
				if got > exact {
					t.Fatalf("seed %d: non-conservative at i=%d q=%v: %v > %v", seed, i, q, got, exact)
				}
				if exact-got > eps {
					t.Fatalf("seed %d: error %v exceeds eps %v at i=%d q=%v", seed, exact-got, eps, i, q)
				}
			}
		}
	}
}

func TestCompressionOnStructuredSystem(t *testing.T) {
	// The encoder system's boundaries are near-linear (uniform classes),
	// so even a small tolerance must compress the table substantially.
	sys := profiler.IPodSystem()
	tab := regions.BuildTDTable(sys)
	approx, err := Approximate(tab, 500*core.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	exactBytes := tab.MemoryBytes()
	if approx.MemoryBytes() >= exactBytes/10 {
		t.Fatalf("compression too weak: %d vs %d bytes (%d segments)",
			approx.MemoryBytes(), exactBytes, approx.NumSegments())
	}
}

func TestManagerNeverExceedsExact(t *testing.T) {
	for seed := int64(20); seed < 30; seed++ {
		tab, approx := approxPair(t, seed, 2*core.Microsecond)
		sys := tab.Sys()
		exact := regions.NewSymbolicManager(tab)
		apx := NewManager(approx)
		rng := rand.New(rand.NewSource(seed * 3))
		for trial := 0; trial < 200; trial++ {
			i := rng.Intn(sys.NumActions())
			tm := core.Time(rng.Int63n(int64(2 * core.MaxTime(sys.LastDeadline(), 1))))
			qa := apx.Decide(i, tm).Q
			qe := exact.Decide(i, tm).Q
			if qa > qe {
				t.Fatalf("seed %d: approx picked %v above exact %v at (%d, %v)", seed, qa, qe, i, tm)
			}
		}
	}
}

func TestManagerStaysSafe(t *testing.T) {
	// Inherited safety: the approximated manager under worst-case
	// execution still meets every deadline.
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		sys := core.RandomSystem(rng, core.RandomSystemConfig{Actions: 30, DeadlineEvery: 8})
		tab := regions.BuildTDTable(sys)
		approx, err := Approximate(tab, 3*core.Microsecond)
		if err != nil {
			t.Fatal(err)
		}
		trc := (&sim.Runner{Sys: sys, Mgr: NewManager(approx), Exec: sim.WorstCase{Sys: sys},
			Overhead: sim.FreeOverhead, Cycles: 2}).MustRun()
		if trc.Misses != 0 {
			t.Fatalf("seed %d: approximated manager missed %d deadlines", seed, trc.Misses)
		}
	}
}

func TestQualityLossShrinksWithTolerance(t *testing.T) {
	sys := profiler.IPodSystem()
	tab := regions.BuildTDTable(sys)
	run := func(m core.Manager) float64 {
		tr := (&sim.Runner{Sys: sys, Mgr: m, Exec: sim.Content{Sys: sys, Seed: 4},
			Overhead: sim.FreeOverhead, Cycles: 2}).MustRun()
		var sum float64
		for _, r := range tr.Records {
			sum += float64(r.Q)
		}
		return sum / float64(len(tr.Records))
	}
	exact := run(regions.NewSymbolicManager(tab))
	coarse, _ := Approximate(tab, 20*core.Millisecond)
	fine, _ := Approximate(tab, 100*core.Microsecond)
	qCoarse := run(NewManager(coarse))
	qFine := run(NewManager(fine))
	if qCoarse > exact || qFine > exact {
		t.Fatalf("approximation gained quality: %v %v vs exact %v", qCoarse, qFine, exact)
	}
	if qFine < qCoarse {
		t.Fatalf("finer tolerance lost more quality: %v < %v", qFine, qCoarse)
	}
}

func TestEvalMatchesSegments(t *testing.T) {
	b := Boundary{Segments: []Segment{
		{From: 0, To: 4, Base: 100, Slope: 10},
		{From: 5, To: 9, Base: 200, Slope: -5},
	}}
	if b.Eval(0) != 100 || b.Eval(4) != 140 {
		t.Fatal("first segment eval")
	}
	if b.Eval(5) != 200 || b.Eval(9) != 180 {
		t.Fatal("second segment eval")
	}
}
