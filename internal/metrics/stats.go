package metrics

import (
	"repro/internal/core"
	"repro/internal/sim"
)

// StatsOfTrace replays a retained trace's records through a fresh
// StatsSink. It bridges the two worlds: a run executed with full
// retention can be aggregated by the same stats-based code paths as a
// zero-retention run, and the equality of both routes is the sink
// layer's property-tested contract.
func StatsOfTrace(tr *sim.Trace) *sim.StatsSink {
	s := sim.NewStatsSink(0)
	for _, r := range tr.Records {
		s.Observe(r)
	}
	return s
}

// SummarizeStats computes the run Summary from the scalar trace (clock,
// totals, decision and miss counts — all O(1) fields the executor
// maintains regardless of retention) and the streamed record aggregates.
// For a trace run with retention, SummarizeStats(tr, StatsOfTrace(tr))
// equals Summarize(tr) exactly.
func SummarizeStats(tr *sim.Trace, st *sim.StatsSink) Summary {
	s := Summary{
		Manager:          tr.Manager,
		Cycles:           tr.Cycles,
		Decisions:        tr.Decisions,
		Misses:           tr.Misses,
		OverheadFraction: tr.OverheadFraction(),
		TotalExec:        tr.TotalExec,
		TotalOverhead:    tr.TotalOverhead,
		TotalIdle:        tr.TotalIdle,
		Final:            tr.Final,
		MinQuality:       st.MinQuality(),
		MaxQuality:       st.MaxQuality(),
	}
	if st.Records >= 2 {
		s.Smooth = Smoothness{
			MeanAbsDelta: st.AbsDeltaSum / float64(st.Records-1),
			Switches:     st.Switches,
		}
	}
	if st.Records == 0 {
		return s
	}
	s.AvgQuality = st.QualitySum / float64(st.Records)
	if tr.Decisions > 0 {
		s.MeanRelaxSteps = float64(st.Records) / float64(tr.Decisions)
	}
	return s
}

// AggregateStats computes the fleet summary from per-stream scalar
// traces and their streamed stats — the zero-retention counterpart of
// AggregateTraces, with which it agrees exactly on the same runs
// (quality levels are small integers, so every float accumulation is
// exact). Entry j is skipped when traces[j] is nil (a failed stream);
// stats[j] must be non-nil wherever traces[j] is.
func AggregateStats(traces []*sim.Trace, stats []*sim.StatsSink) FleetSummary {
	fs := FleetSummary{}
	var qSum float64
	var exec, overhead core.Time
	var utils []float64
	for j, tr := range traces {
		if tr == nil {
			continue
		}
		st := stats[j]
		fs.Streams++
		fs.PerStream = append(fs.PerStream, SummarizeStats(tr, st))
		fs.Records += st.Records
		fs.Decisions += tr.Decisions
		fs.Misses += tr.Misses
		exec += tr.TotalExec
		overhead += tr.TotalOverhead

		qSum += st.QualitySum
		for q, c := range st.QualityHist {
			for len(fs.QualityHist) <= q {
				fs.QualityHist = append(fs.QualityHist, 0)
			}
			fs.QualityHist[q] += c
		}
		fs.DeadlineRecords += st.DeadlineRecords
		rate := 0.0
		if st.DeadlineRecords > 0 {
			rate = float64(tr.Misses) / float64(st.DeadlineRecords)
		}
		fs.PerStreamMissRate = append(fs.PerStreamMissRate, rate)
		fs.WorstStreamMissRate = max(fs.WorstStreamMissRate, rate)
		fs.PerStreamUtilization = append(fs.PerStreamUtilization, Utilization(tr))
	}
	utils = append(utils, fs.PerStreamUtilization...) // Percentile sorts its argument
	if fs.Records > 0 {
		fs.AvgQuality = qSum / float64(fs.Records)
	}
	if fs.DeadlineRecords > 0 {
		fs.MissRate = float64(fs.Misses) / float64(fs.DeadlineRecords)
	}
	if busy := exec + overhead; busy > 0 {
		fs.OverheadFraction = float64(overhead) / float64(busy)
	}
	fs.UtilizationP50 = Percentile(utils, 0.5)
	fs.UtilizationP90 = Percentile(utils, 0.9)
	fs.UtilizationMax = Percentile(utils, 1)
	return fs
}
