package metrics

import (
	"math"

	"repro/internal/core"
)

// Lifecycle is the open-system record of one stream: when it arrived,
// when the admission controller let it in, and when it left. It is the
// per-stream observable the open fleet engine produces alongside the
// usual trace, and the unit SummarizeOpen aggregates.
type Lifecycle struct {
	Name    string
	Arrival core.Time
	// Admitted is the instant the stream entered service; meaningful
	// only when Shed is false.
	Admitted core.Time
	// Departed is the instant the stream's last cycle completed;
	// meaningful only when Shed is false.
	Departed core.Time
	// Queued reports that the stream spent time in the backlog before
	// being admitted (or shed).
	Queued bool
	// Shed reports that the admission controller dropped the stream: it
	// never entered service and has no trace.
	Shed bool
	// Failed reports that the stream was admitted but failed
	// configuration validation: it departed the instant it was admitted,
	// occupied no service time and has no trace.
	Failed bool
}

// Wait returns the admission delay (arrival → service), 0 for shed
// streams.
func (lc Lifecycle) Wait() core.Time {
	if lc.Shed {
		return 0
	}
	return lc.Admitted - lc.Arrival
}

// Sojourn returns the time in system (arrival → departure), 0 for shed
// streams.
func (lc Lifecycle) Sojourn() core.Time {
	if lc.Shed {
		return 0
	}
	return lc.Departed - lc.Arrival
}

// OpenObservations is everything an open-system run exposes beyond the
// per-stream traces: the stream lifecycles plus the backlog accounting
// the event loop integrates as it runs. fleet.OpenResult embeds it; all
// quantities are in simulated time.
type OpenObservations struct {
	Lifecycles []Lifecycle
	// MaxBacklog is the deepest the admission queue ever got.
	MaxBacklog int
	// BacklogIntegral is ∫ backlog(t) dt in tick·streams: divided by the
	// observation span it gives the time-weighted mean queue depth.
	BacklogIntegral float64
	// FirstArrival and End bound the observation window over which
	// BacklogIntegral was accumulated: the first arrival instant and the
	// last event instant (final departure, or a later arrival that was
	// queued or shed). Final is the last departure instant; End ≥ Final.
	FirstArrival, End, Final core.Time
}

// OpenSummary aggregates an open-system run's observables: admission and
// shed rates, backlog depth, and the admission-delay and time-in-system
// (sojourn) percentiles over the streams that ran.
type OpenSummary struct {
	Streams  int `json:"streams"`
	Admitted int `json:"admitted"`
	Delayed  int `json:"delayed"` // admitted or shed after waiting in the backlog
	Shed     int `json:"shed"`
	Failed   int `json:"failed"` // admitted but failed validation; never ran

	AdmitRate float64 `json:"admit_rate"` // Admitted / Streams
	ShedRate  float64 `json:"shed_rate"`  // Shed / Streams

	MaxBacklog  int     `json:"max_backlog"`
	MeanBacklog float64 `json:"mean_backlog"` // time-weighted over the span

	// Wait percentiles are the admission delays of the admitted streams
	// that ran (failed streams contribute no samples).
	WaitP50 core.Time `json:"wait_p50"`
	WaitP90 core.Time `json:"wait_p90"`
	WaitMax core.Time `json:"wait_max"`

	// Sojourn percentiles are the times in system of the admitted
	// streams that ran (failed streams contribute no samples).
	SojournP50 core.Time `json:"sojourn_p50"`
	SojournP90 core.Time `json:"sojourn_p90"`
	SojournMax core.Time `json:"sojourn_max"`

	// Span is the observation window (first arrival → last event, so the
	// backlog mean's divisor matches its integral); Final is the last
	// departure instant.
	Span  core.Time `json:"span"`
	Final core.Time `json:"final"`
}

// SummarizeOpen computes the open-system summary of a run's
// observations. Percentiles interpolate linearly between order
// statistics (the same convention as the utilisation percentiles) and
// are rounded back to the integer tick clock.
func SummarizeOpen(o OpenObservations) OpenSummary {
	s := OpenSummary{
		Streams:    len(o.Lifecycles),
		MaxBacklog: o.MaxBacklog,
		Final:      o.Final,
	}
	var waits, sojourns []float64
	for _, lc := range o.Lifecycles {
		if lc.Queued {
			s.Delayed++
		}
		if lc.Shed {
			s.Shed++
			continue
		}
		s.Admitted++
		if lc.Failed {
			s.Failed++
			continue // never ran: no wait/sojourn samples
		}
		waits = append(waits, float64(lc.Wait()))
		sojourns = append(sojourns, float64(lc.Sojourn()))
	}
	if s.Streams > 0 {
		s.AdmitRate = float64(s.Admitted) / float64(s.Streams)
		s.ShedRate = float64(s.Shed) / float64(s.Streams)
	}
	if o.End > o.FirstArrival {
		s.Span = o.End - o.FirstArrival
		s.MeanBacklog = o.BacklogIntegral / float64(s.Span)
	}
	s.WaitP50 = timePercentile(waits, 0.5)
	s.WaitP90 = timePercentile(waits, 0.9)
	s.WaitMax = timePercentile(waits, 1)
	s.SojournP50 = timePercentile(sojourns, 0.5)
	s.SojournP90 = timePercentile(sojourns, 0.9)
	s.SojournMax = timePercentile(sojourns, 1)
	return s
}

// timePercentile is Percentile rounded back to the tick clock.
func timePercentile(values []float64, p float64) core.Time {
	return core.Time(math.Round(Percentile(values, p)))
}
