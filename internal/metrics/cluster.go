package metrics

// InstanceSummary is one engine instance's slice of a cluster run: how
// many streams the router placed there and the instance's own
// open-system summary over exactly those streams.
type InstanceSummary struct {
	Instance int         `json:"instance"`
	Routed   int         `json:"routed"`
	Open     OpenSummary `json:"open"`
}

// ClusterSummary aggregates a routed scale-out run: the global
// open-system summary over the merged population (lifecycles in global
// arrival order, backlog integral summed across instances), the
// per-instance summaries, and the Jain fairness index of the routed
// counts — 1 when the policy spread arrivals perfectly evenly, 1/M when
// it funnelled everything to a single instance of M.
type ClusterSummary struct {
	Instances   int               `json:"instances"`
	Route       string            `json:"route"`
	Fairness    float64           `json:"fairness"`
	Global      OpenSummary       `json:"global"`
	PerInstance []InstanceSummary `json:"per_instance"`
}

// JainFairness computes Jain's fairness index (Σx)² / (n·Σx²) over the
// per-instance routed counts: scale-free, bounded in [1/n, 1], and 1
// exactly when all counts are equal. An all-zero allocation is vacuously
// fair (1).
func JainFairness(x []int) float64 {
	var sum, sq float64
	for _, v := range x {
		f := float64(v)
		sum += f
		sq += f * f
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(len(x)) * sq)
}

// SummarizeCluster computes the cluster summary from the merged global
// observations, the per-instance observations and the routed counts.
// global's backlog quantities follow the cluster merge convention:
// BacklogIntegral is the sum across instances (each queues
// independently), MaxBacklog the deepest any single instance's queue
// got.
func SummarizeCluster(route string, global OpenObservations, perInstance []OpenObservations, routed []int) ClusterSummary {
	cs := ClusterSummary{
		Instances:   len(perInstance),
		Route:       route,
		Fairness:    JainFairness(routed),
		Global:      SummarizeOpen(global),
		PerInstance: make([]InstanceSummary, len(perInstance)),
	}
	for i := range perInstance {
		cs.PerInstance[i] = InstanceSummary{
			Instance: i,
			Routed:   routed[i],
			Open:     SummarizeOpen(perInstance[i]),
		}
	}
	return cs
}
