package metrics

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/regions"
	"repro/internal/sim"
)

func fleetTraces(t *testing.T, n int) []*sim.Trace {
	t.Helper()
	sys := core.RandomSystem(rand.New(rand.NewSource(6)), core.RandomSystemConfig{Actions: 20})
	tab := regions.BuildTDTable(sys)
	traces := make([]*sim.Trace, n)
	for k := range traces {
		tr, err := (&sim.Runner{
			Sys:      sys,
			Mgr:      regions.NewSymbolicManager(tab),
			Exec:     sim.Content{Sys: sys, NoiseAmp: 0.4, Seed: uint64(100 + k)},
			Overhead: sim.IPodOverhead,
			Cycles:   3,
		}).Run()
		if err != nil {
			t.Fatal(err)
		}
		traces[k] = tr
	}
	return traces
}

func TestAggregateTraces(t *testing.T) {
	traces := fleetTraces(t, 5)
	fs := AggregateTraces(traces)
	if fs.Streams != 5 || len(fs.PerStream) != 5 || len(fs.PerStreamMissRate) != 5 {
		t.Fatalf("stream accounting wrong: %+v", fs)
	}
	wantRecords, wantMisses, wantDecisions := 0, 0, 0
	for _, tr := range traces {
		wantRecords += len(tr.Records)
		wantMisses += tr.Misses
		wantDecisions += tr.Decisions
	}
	if fs.Records != wantRecords || fs.Misses != wantMisses || fs.Decisions != wantDecisions {
		t.Fatalf("totals wrong: %+v", fs)
	}
	histSum := 0
	for _, c := range fs.QualityHist {
		histSum += c
	}
	if histSum != wantRecords {
		t.Fatalf("quality histogram sums to %d, want %d", histSum, wantRecords)
	}
	var qSum float64
	for _, tr := range traces {
		for _, r := range tr.Records {
			qSum += float64(r.Q)
		}
	}
	if math.Abs(fs.AvgQuality-qSum/float64(wantRecords)) > 1e-12 {
		t.Fatalf("AvgQuality = %v", fs.AvgQuality)
	}
	if fs.DeadlineRecords == 0 {
		t.Fatal("random systems carry deadlines; DeadlineRecords must be > 0")
	}
	if fs.MissRate != float64(fs.Misses)/float64(fs.DeadlineRecords) {
		t.Fatalf("MissRate = %v", fs.MissRate)
	}
	for _, rate := range fs.PerStreamMissRate {
		if rate > fs.WorstStreamMissRate {
			t.Fatal("WorstStreamMissRate below a per-stream rate")
		}
	}
	if fs.UtilizationP50 > fs.UtilizationP90 || fs.UtilizationP90 > fs.UtilizationMax {
		t.Fatalf("utilisation percentiles not ordered: %v %v %v",
			fs.UtilizationP50, fs.UtilizationP90, fs.UtilizationMax)
	}
	if fs.UtilizationMax <= 0 || fs.UtilizationMax > 1 {
		t.Fatalf("UtilizationMax = %v outside (0, 1]", fs.UtilizationMax)
	}
}

func TestAggregateTracesSkipsNil(t *testing.T) {
	traces := fleetTraces(t, 2)
	fs := AggregateTraces([]*sim.Trace{traces[0], nil, traces[1]})
	if fs.Streams != 2 {
		t.Fatalf("Streams = %d, want 2", fs.Streams)
	}
	empty := AggregateTraces(nil)
	if empty.Streams != 0 || empty.Records != 0 || empty.MissRate != 0 {
		t.Fatalf("empty aggregate not zero: %+v", empty)
	}
}

func TestPercentile(t *testing.T) {
	if Percentile(nil, 0.5) != 0 {
		t.Fatal("empty percentile must be 0")
	}
	v := []float64{4, 1, 3, 2}
	if got := Percentile(v, 0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(v, 1); got != 4 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(v, 0.5); got != 2.5 {
		t.Fatalf("p50 = %v, want 2.5", got)
	}
	if got := Percentile([]float64{7}, 0.9); got != 7 {
		t.Fatalf("single-value percentile = %v", got)
	}
}
