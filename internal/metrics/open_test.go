package metrics

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/core"
)

func TestSummarizeOpen(t *testing.T) {
	o := OpenObservations{
		Lifecycles: []Lifecycle{
			{Name: "a", Arrival: 0, Admitted: 0, Departed: 100},
			{Name: "b", Arrival: 0, Admitted: 100, Departed: 250, Queued: true},
			{Name: "c", Arrival: 50, Admitted: 250, Departed: 400, Queued: true},
			{Name: "d", Arrival: 60, Shed: true},
		},
		MaxBacklog:      2,
		BacklogIntegral: 300, // e.g. 2 queued for 100 ticks + 1 for 100
		FirstArrival:    0,
		End:             400,
		Final:           400,
	}
	s := SummarizeOpen(o)
	if s.Streams != 4 || s.Admitted != 3 || s.Shed != 1 || s.Delayed != 2 {
		t.Fatalf("counts: %+v", s)
	}
	if s.AdmitRate != 0.75 || s.ShedRate != 0.25 {
		t.Fatalf("rates: admit %v shed %v", s.AdmitRate, s.ShedRate)
	}
	if s.Span != 400 || s.MeanBacklog != 0.75 {
		t.Fatalf("span %v mean backlog %v", s.Span, s.MeanBacklog)
	}
	// Waits are [0, 100, 200]: p50 = 100, max = 200, p90 interpolates
	// between 100 and 200 at 0.8 → 180.
	if s.WaitP50 != 100 || s.WaitP90 != 180 || s.WaitMax != 200 {
		t.Fatalf("wait percentiles: %v %v %v", s.WaitP50, s.WaitP90, s.WaitMax)
	}
	// Sojourns are [100, 250, 350].
	if s.SojournP50 != 250 || s.SojournMax != 350 {
		t.Fatalf("sojourn percentiles: %v %v", s.SojournP50, s.SojournMax)
	}
	if s.Final != 400 {
		t.Fatalf("final %v", s.Final)
	}

	// A stream admitted but failing validation counts as admitted and
	// failed, and contributes no wait/sojourn samples — it never ran.
	s = SummarizeOpen(OpenObservations{
		Lifecycles: []Lifecycle{
			{Name: "a", Arrival: 0, Admitted: 0, Departed: 100},
			{Name: "bad", Arrival: 0, Admitted: 50, Departed: 50, Queued: true, Failed: true},
		},
		FirstArrival: 0,
		End:          100,
		Final:        100,
	})
	if s.Admitted != 2 || s.Failed != 1 {
		t.Fatalf("failed-stream counts: %+v", s)
	}
	if s.WaitMax != 0 || s.SojournMax != 100 {
		t.Fatalf("failed stream polluted percentiles: wait max %v sojourn max %v", s.WaitMax, s.SojournMax)
	}

	// The integral window can outlive the last departure: arrivals that
	// queue (or are shed) after the final departure extend End, and the
	// mean divides by that window, not the departure span.
	s = SummarizeOpen(OpenObservations{
		Lifecycles: []Lifecycle{
			{Name: "a", Arrival: 0, Admitted: 0, Departed: 100},
			{Name: "b", Arrival: 200, Queued: true, Shed: true},
			{Name: "c", Arrival: 400, Queued: true, Shed: true},
		},
		MaxBacklog:      2,
		BacklogIntegral: 200, // b queued over [200, 400)
		FirstArrival:    0,
		End:             400, // last arrival, after the last departure
		Final:           100,
	})
	if s.Span != 400 || s.MeanBacklog != 0.5 || s.Final != 100 {
		t.Fatalf("late-arrival summary: %+v", s)
	}
	if s.MeanBacklog > float64(s.MaxBacklog) {
		t.Fatalf("mean backlog %v exceeds max %d", s.MeanBacklog, s.MaxBacklog)
	}

	// Degenerate: everything shed, no departures.
	s = SummarizeOpen(OpenObservations{
		Lifecycles:   []Lifecycle{{Name: "x", Arrival: 10, Queued: true, Shed: true}},
		FirstArrival: 10,
		End:          10,
	})
	if s.Admitted != 0 || s.Shed != 1 || s.Span != 0 || s.MeanBacklog != 0 {
		t.Fatalf("degenerate summary: %+v", s)
	}
}

func TestLifecycleAccessors(t *testing.T) {
	lc := Lifecycle{Arrival: 10, Admitted: 30, Departed: 100}
	if lc.Wait() != 20 || lc.Sojourn() != 90 {
		t.Fatalf("wait %v sojourn %v", lc.Wait(), lc.Sojourn())
	}
	shed := Lifecycle{Arrival: 10, Shed: true}
	if shed.Wait() != 0 || shed.Sojourn() != 0 {
		t.Fatal("shed lifecycle reports nonzero wait or sojourn")
	}
}

func TestFleetDocRoundTrip(t *testing.T) {
	doc := &FleetDoc{
		Label:       "encoder",
		Mode:        "open",
		Streams:     16,
		Workers:     4,
		BatchCycles: 32,
		Cycles:      8,
		Seed:        17,
		Arrivals:    "poisson(gap=1.0345s,seed=17)",
		Admission:   "cap-4",
		Summary: FleetSummary{
			Streams:     15,
			Records:     1234,
			Misses:      3,
			MissRate:    0.25,
			QualityHist: []int{1, 2, 3},
			AvgQuality:  1.5,
		},
		Open: &OpenSummary{
			Streams:    16,
			Admitted:   15,
			Shed:       1,
			AdmitRate:  0.9375,
			WaitP90:    core.Time(120),
			SojournMax: core.Time(4000),
			MaxBacklog: 3,
		},
	}
	var buf bytes.Buffer
	if err := doc.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFleetDoc(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(doc, got) {
		t.Fatalf("round trip diverged:\nwrote %+v\nread  %+v", doc, got)
	}

	if _, err := ReadFleetDoc(bytes.NewReader([]byte("{broken"))); err == nil {
		t.Fatal("broken doc accepted")
	}
}
