package metrics

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

func statsTestTrace(t *testing.T, seed int64, cycles int) *sim.Trace {
	t.Helper()
	sys := core.RandomSystem(rand.New(rand.NewSource(seed)), core.RandomSystemConfig{Actions: 20, DeadlineEvery: 2})
	tr, err := (&sim.Runner{
		Sys:      sys,
		Mgr:      core.NewNumericManager(sys),
		Exec:     sim.Content{Sys: sys, NoiseAmp: 0.35, Seed: uint64(seed)},
		Overhead: sim.IPodOverhead,
		Cycles:   cycles,
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestSummarizeStatsEqualsSummarize: on any retained trace, the
// stats-route summary must equal the record-scanning Summarize exactly
// — the two are independent implementations, and quality levels are
// small integers so every float accumulation is exact.
func TestSummarizeStatsEqualsSummarize(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		tr := statsTestTrace(t, seed, 1+int(seed%5))
		got := SummarizeStats(tr, StatsOfTrace(tr))
		want := Summarize(tr)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: stats summary diverges:\n got %+v\nwant %+v", seed, got, want)
		}
	}
}

// TestSummarizeStatsEmptyTrace pins the empty-trace conventions.
func TestSummarizeStatsEmptyTrace(t *testing.T) {
	tr := &sim.Trace{Manager: "x", Cycles: 0}
	got := SummarizeStats(tr, StatsOfTrace(tr))
	if !reflect.DeepEqual(got, Summarize(tr)) {
		t.Fatalf("empty-trace summaries diverge: %+v vs %+v", got, Summarize(tr))
	}
}

// TestAggregateStatsEqualsAggregateTraces: the fleet-level equivalence —
// aggregating streamed stats must reproduce the retained-trace
// aggregation field for field, including nil (failed-stream) holes.
func TestAggregateStatsEqualsAggregateTraces(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		var traces []*sim.Trace
		var stats []*sim.StatsSink
		for k := 0; k < 5; k++ {
			if k == 3 && seed%2 == 0 {
				traces = append(traces, nil) // failed stream: skipped by both
				stats = append(stats, nil)
				continue
			}
			tr := statsTestTrace(t, seed*100+int64(k), 2+k)
			traces = append(traces, tr)
			stats = append(stats, StatsOfTrace(tr))
		}
		got := AggregateStats(traces, stats)
		want := AggregateTraces(traces)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: fleet aggregation diverges:\n got %+v\nwant %+v", seed, got, want)
		}
	}
}
