// Package metrics computes the evaluation quantities of §4.2 from
// execution traces: per-frame average quality (Fig. 7), per-action
// management overhead (Fig. 8), overhead fractions, smoothness and
// utilization.
package metrics

import (
	"math"

	"repro/internal/core"
	"repro/internal/sim"
)

// AvgQualityPerCycle returns the Fig. 7 series: the mean quality level of
// the actions of each cycle (frame).
func AvgQualityPerCycle(tr *sim.Trace) []float64 {
	sums := make([]float64, tr.Cycles)
	counts := make([]int, tr.Cycles)
	for _, r := range tr.Records {
		sums[r.Cycle] += float64(r.Q)
		counts[r.Cycle]++
	}
	for c := range sums {
		if counts[c] > 0 {
			sums[c] /= float64(counts[c])
		}
	}
	return sums
}

// OverheadPoint is one sample of the Fig. 8 series.
type OverheadPoint struct {
	Index    int       // action index within the cycle
	Overhead core.Time // management time charged before the action
	Steps    int       // relaxation grant at this point (0 = skipped)
}

// OverheadSeries returns the Fig. 8 series for one cycle: the
// quality-management time charged before each action in [from, to].
func OverheadSeries(tr *sim.Trace, cycle, from, to int) []OverheadPoint {
	var pts []OverheadPoint
	for _, r := range tr.Records {
		if r.Cycle != cycle || r.Index < from || r.Index > to {
			continue
		}
		pts = append(pts, OverheadPoint{Index: r.Index, Overhead: r.Overhead, Steps: r.Steps})
	}
	return pts
}

// RelaxationBands compresses the decision records of one cycle into runs
// of identical relaxation grants — the "r = 40 from a200 to a421" bands
// the paper reports under Fig. 8. Only decision points contribute.
type Band struct {
	From, To int // action index range (inclusive) covered by the grants
	Steps    int
}

// Bands lists the relaxation bands of a cycle, merging consecutive
// decisions with an identical step grant.
func Bands(tr *sim.Trace, cycle int) []Band {
	var bands []Band
	for _, r := range tr.Records {
		if r.Cycle != cycle || !r.Decision {
			continue
		}
		end := r.Index + r.Steps - 1
		if len(bands) > 0 && bands[len(bands)-1].Steps == r.Steps {
			bands[len(bands)-1].To = end
			continue
		}
		bands = append(bands, Band{From: r.Index, To: end, Steps: r.Steps})
	}
	return bands
}

// Smoothness reports quality-level fluctuation: the mean absolute
// difference between consecutive action qualities, and the number of
// switches. Lower is smoother (§2.1 requires low fluctuation for
// multimedia).
type Smoothness struct {
	MeanAbsDelta float64
	Switches     int
}

// SmoothnessOf computes the smoothness metrics over a whole trace.
func SmoothnessOf(tr *sim.Trace) Smoothness {
	var s Smoothness
	if len(tr.Records) < 2 {
		return s
	}
	total := 0.0
	for j := 1; j < len(tr.Records); j++ {
		d := int(tr.Records[j].Q) - int(tr.Records[j-1].Q)
		if d != 0 {
			s.Switches++
		}
		total += math.Abs(float64(d))
	}
	s.MeanAbsDelta = total / float64(len(tr.Records)-1)
	return s
}

// Summary aggregates the headline numbers of a run.
type Summary struct {
	Manager          string
	Cycles           int
	Decisions        int
	Misses           int
	AvgQuality       float64
	MinQuality       core.Level
	MaxQuality       core.Level
	OverheadFraction float64
	TotalExec        core.Time
	TotalOverhead    core.Time
	TotalIdle        core.Time
	Final            core.Time
	MeanRelaxSteps   float64
	Smooth           Smoothness
}

// Summarize computes a Summary from a trace.
func Summarize(tr *sim.Trace) Summary {
	s := Summary{
		Manager:          tr.Manager,
		Cycles:           tr.Cycles,
		Decisions:        tr.Decisions,
		Misses:           tr.Misses,
		OverheadFraction: tr.OverheadFraction(),
		TotalExec:        tr.TotalExec,
		TotalOverhead:    tr.TotalOverhead,
		TotalIdle:        tr.TotalIdle,
		Final:            tr.Final,
		MinQuality:       core.Level(math.MaxInt32),
		MaxQuality:       -1,
		Smooth:           SmoothnessOf(tr),
	}
	if len(tr.Records) == 0 {
		s.MinQuality = 0
		s.MaxQuality = 0
		return s
	}
	var qsum float64
	for _, r := range tr.Records {
		qsum += float64(r.Q)
		if r.Q < s.MinQuality {
			s.MinQuality = r.Q
		}
		if r.Q > s.MaxQuality {
			s.MaxQuality = r.Q
		}
	}
	s.AvgQuality = qsum / float64(len(tr.Records))
	if tr.Decisions > 0 {
		s.MeanRelaxSteps = float64(len(tr.Records)) / float64(tr.Decisions)
	}
	return s
}

// Utilization returns busy time (exec + overhead) as a fraction of the
// wall-clock span of the run.
func Utilization(tr *sim.Trace) float64 {
	if tr.Final == 0 {
		return 0
	}
	return float64(tr.TotalExec+tr.TotalOverhead) / float64(tr.Final)
}
