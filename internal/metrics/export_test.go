package metrics

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

func TestWriteTraceCSV(t *testing.T) {
	tr := &sim.Trace{Records: []sim.Record{
		{Cycle: 0, Index: 0, Q: 3, Start: 10, Exec: 5, Overhead: 2, Decision: true, Steps: 2, Deadline: core.TimeInf},
		{Cycle: 0, Index: 1, Q: 3, Start: 17, Exec: 6, Deadline: 100, Missed: true},
	}}
	var b strings.Builder
	if err := WriteTraceCSV(&b, tr); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("line count %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "cycle,index,quality") {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "0,0,3,10,5,2,true,2,-1,false" {
		t.Fatalf("row 1 = %q", lines[1])
	}
	if lines[2] != "0,1,3,17,6,0,false,0,100,true" {
		t.Fatalf("row 2 = %q", lines[2])
	}
}

func TestWriteSummaryCSV(t *testing.T) {
	sums := []Summary{{
		Manager: "relaxed", Cycles: 29, Decisions: 9505, Misses: 0,
		AvgQuality: 4.774, OverheadFraction: 0.005, MeanRelaxSteps: 3.6,
		Smooth: Smoothness{Switches: 500, MeanAbsDelta: 0.02},
	}}
	var b strings.Builder
	if err := WriteSummaryCSV(&b, sums); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "relaxed,29,9505,0,4.7740") {
		t.Fatalf("summary row missing: %q", out)
	}
}
