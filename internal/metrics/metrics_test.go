package metrics

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

func sampleTrace(t *testing.T) *sim.Trace {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	sys := core.RandomSystem(rng, core.RandomSystemConfig{Actions: 25, DeadlineEvery: 6})
	r := &sim.Runner{
		Sys: sys, Mgr: core.NewNumericManager(sys),
		Exec:     sim.Uniform{Sys: sys, Seed: 3},
		Overhead: sim.OverheadModel{CallBase: core.Microsecond, PerUnit: core.Nanosecond},
		Cycles:   4,
	}
	return r.MustRun()
}

func TestAvgQualityPerCycle(t *testing.T) {
	tr := sampleTrace(t)
	avg := AvgQualityPerCycle(tr)
	if len(avg) != 4 {
		t.Fatalf("cycle count %d", len(avg))
	}
	for c, v := range avg {
		if v < 0 || v > float64(4) {
			t.Fatalf("cycle %d average %v out of level range", c, v)
		}
	}
	// Cross-check cycle 0 by hand.
	var sum float64
	n := 0
	for _, r := range tr.Records {
		if r.Cycle == 0 {
			sum += float64(r.Q)
			n++
		}
	}
	if math.Abs(avg[0]-sum/float64(n)) > 1e-12 {
		t.Fatalf("cycle 0 avg %v, want %v", avg[0], sum/float64(n))
	}
}

func TestOverheadSeries(t *testing.T) {
	tr := sampleTrace(t)
	pts := OverheadSeries(tr, 1, 5, 15)
	if len(pts) != 11 {
		t.Fatalf("series length %d, want 11", len(pts))
	}
	for j, p := range pts {
		if p.Index != 5+j {
			t.Fatalf("series index %d at position %d", p.Index, j)
		}
		if p.Overhead <= 0 {
			t.Fatal("numeric manager decides everywhere; overhead must be positive")
		}
	}
}

func TestBandsMergeConsecutiveGrants(t *testing.T) {
	tr := &sim.Trace{Cycles: 1, Records: []sim.Record{
		{Index: 0, Decision: true, Steps: 2},
		{Index: 1},
		{Index: 2, Decision: true, Steps: 2},
		{Index: 3},
		{Index: 4, Decision: true, Steps: 1},
		{Index: 5, Decision: true, Steps: 3},
		{Index: 6}, {Index: 7},
	}}
	bands := Bands(tr, 0)
	want := []Band{{From: 0, To: 3, Steps: 2}, {From: 4, To: 4, Steps: 1}, {From: 5, To: 7, Steps: 3}}
	if len(bands) != len(want) {
		t.Fatalf("bands = %+v", bands)
	}
	for i := range want {
		if bands[i] != want[i] {
			t.Fatalf("band %d = %+v, want %+v", i, bands[i], want[i])
		}
	}
}

func TestSmoothness(t *testing.T) {
	tr := &sim.Trace{Records: []sim.Record{
		{Q: 2}, {Q: 2}, {Q: 3}, {Q: 1}, {Q: 1},
	}}
	s := SmoothnessOf(tr)
	if s.Switches != 2 {
		t.Fatalf("switches = %d", s.Switches)
	}
	if math.Abs(s.MeanAbsDelta-(0+1+2+0)/4.0) > 1e-12 {
		t.Fatalf("mean abs delta = %v", s.MeanAbsDelta)
	}
	if got := SmoothnessOf(&sim.Trace{}); got.Switches != 0 || got.MeanAbsDelta != 0 {
		t.Fatal("empty trace smoothness must be zero")
	}
}

func TestSummarize(t *testing.T) {
	tr := sampleTrace(t)
	s := Summarize(tr)
	if s.Manager != "numeric" || s.Cycles != 4 {
		t.Fatalf("summary header: %+v", s)
	}
	if s.MinQuality > s.MaxQuality {
		t.Fatal("min > max quality")
	}
	if s.AvgQuality < float64(s.MinQuality) || s.AvgQuality > float64(s.MaxQuality) {
		t.Fatal("average outside [min, max]")
	}
	if s.Decisions != len(tr.Records) {
		t.Fatal("numeric manager decisions must equal record count")
	}
	if math.Abs(s.MeanRelaxSteps-1) > 1e-12 {
		t.Fatalf("mean relax steps %v, want 1 for numeric", s.MeanRelaxSteps)
	}
	if s.OverheadFraction <= 0 {
		t.Fatal("overhead fraction must be positive here")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(&sim.Trace{Manager: "x"})
	if s.AvgQuality != 0 || s.MinQuality != 0 || s.MaxQuality != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
}

func TestUtilization(t *testing.T) {
	tr := &sim.Trace{TotalExec: 70, TotalOverhead: 10, TotalIdle: 20, Final: 100}
	if u := Utilization(tr); math.Abs(u-0.8) > 1e-12 {
		t.Fatalf("utilization = %v", u)
	}
	if Utilization(&sim.Trace{}) != 0 {
		t.Fatal("empty utilization must be 0")
	}
}
