package metrics

import (
	"fmt"
	"io"

	"repro/internal/sim"
)

// WriteTraceCSV dumps a retained trace as CSV: one row per action
// instance with the fields downstream analysis needs (spreadsheets,
// pandas, gnuplot). The streaming sim.CSVWriter emits the same columns
// prefixed by a stream label (its rows for one stream are byte-equal to
// these, tested in sim), so zero-retention fleet exports and retained
// dumps stay analysable by one pipeline.
func WriteTraceCSV(w io.Writer, tr *sim.Trace) error {
	if _, err := fmt.Fprintln(w, "cycle,index,quality,start_ns,exec_ns,overhead_ns,decision,steps,deadline_ns,missed"); err != nil {
		return err
	}
	for _, r := range tr.Records {
		deadline := int64(-1)
		if !r.Deadline.IsInf() {
			deadline = int64(r.Deadline)
		}
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d,%t,%d,%d,%t\n",
			r.Cycle, r.Index, int(r.Q), int64(r.Start), int64(r.Exec), int64(r.Overhead),
			r.Decision, r.Steps, deadline, r.Missed); err != nil {
			return err
		}
	}
	return nil
}

// WriteSummaryCSV dumps a set of run summaries as one CSV table — the
// §4.2 comparison table in machine-readable form.
func WriteSummaryCSV(w io.Writer, sums []Summary) error {
	if _, err := fmt.Fprintln(w, "manager,cycles,decisions,misses,avg_quality,overhead_fraction,mean_relax_steps,switches,mean_abs_dq"); err != nil {
		return err
	}
	for _, s := range sums {
		if _, err := fmt.Fprintf(w, "%s,%d,%d,%d,%.4f,%.6f,%.3f,%d,%.5f\n",
			s.Manager, s.Cycles, s.Decisions, s.Misses, s.AvgQuality,
			s.OverheadFraction, s.MeanRelaxSteps, s.Smooth.Switches, s.Smooth.MeanAbsDelta); err != nil {
			return err
		}
	}
	return nil
}
