package metrics

import (
	"math"
	"slices"

	"repro/internal/core"
	"repro/internal/sim"
)

// FleetSummary aggregates many per-stream traces into fleet-wide
// quantities: deadline-miss rates per stream and overall, the quality
// histogram of every executed action, and the distribution of
// per-stream utilisation. It is the cross-stream view the single-run
// Summary cannot give.
type FleetSummary struct {
	Streams   int
	Records   int
	Decisions int

	// Misses and DeadlineRecords count deadline violations and
	// deadline-carrying action instances across the fleet; MissRate is
	// their ratio (0 when no action carries a deadline).
	Misses          int
	DeadlineRecords int
	MissRate        float64
	// PerStreamMissRate is each aggregated stream's own miss rate, in
	// the order the (non-nil) traces were given; its indices align with
	// PerStream, not with the caller's original stream list when that
	// list contained failed (nil) entries.
	PerStreamMissRate []float64
	// WorstStreamMissRate is the maximum per-stream miss rate — the
	// fleet's fairness headline (an average can hide a starving stream).
	WorstStreamMissRate float64

	// QualityHist counts executed actions per quality level, fleet-wide;
	// index = level. AvgQuality is the record-weighted mean.
	QualityHist []int
	AvgQuality  float64

	// OverheadFraction is management time over busy time, fleet-wide.
	OverheadFraction float64

	// PerStreamUtilization is each aggregated stream's utilisation
	// (busy time over wall-clock span), aligned with PerStream;
	// UtilizationP50/P90/Max summarise its distribution.
	PerStreamUtilization []float64
	UtilizationP50       float64
	UtilizationP90       float64
	UtilizationMax       float64

	// PerStream holds each aggregated stream's single-run summary,
	// aligned with PerStreamMissRate.
	PerStream []Summary
}

// AggregateTraces computes the fleet summary of the given traces (one
// per stream, in stream order). Nil traces are skipped — the slice
// from a fleet result with failed streams can be passed directly —
// and the per-stream slices are compacted accordingly: entry j
// describes the j-th non-nil trace.
func AggregateTraces(traces []*sim.Trace) FleetSummary {
	fs := FleetSummary{}
	var qSum float64
	var exec, overhead core.Time
	var utils []float64
	for _, tr := range traces {
		if tr == nil {
			continue
		}
		fs.Streams++
		sum := Summarize(tr)
		fs.PerStream = append(fs.PerStream, sum)
		fs.Records += len(tr.Records)
		fs.Decisions += tr.Decisions
		fs.Misses += tr.Misses
		exec += tr.TotalExec
		overhead += tr.TotalOverhead

		deadlines := 0
		for _, r := range tr.Records {
			qSum += float64(r.Q)
			q := int(r.Q)
			for len(fs.QualityHist) <= q {
				fs.QualityHist = append(fs.QualityHist, 0)
			}
			fs.QualityHist[q]++
			if !r.Deadline.IsInf() {
				deadlines++
			}
		}
		fs.DeadlineRecords += deadlines
		rate := 0.0
		if deadlines > 0 {
			rate = float64(tr.Misses) / float64(deadlines)
		}
		fs.PerStreamMissRate = append(fs.PerStreamMissRate, rate)
		fs.WorstStreamMissRate = max(fs.WorstStreamMissRate, rate)
		fs.PerStreamUtilization = append(fs.PerStreamUtilization, Utilization(tr))
	}
	utils = append(utils, fs.PerStreamUtilization...) // Percentile sorts its argument
	if fs.Records > 0 {
		fs.AvgQuality = qSum / float64(fs.Records)
	}
	if fs.DeadlineRecords > 0 {
		fs.MissRate = float64(fs.Misses) / float64(fs.DeadlineRecords)
	}
	if busy := exec + overhead; busy > 0 {
		fs.OverheadFraction = float64(overhead) / float64(busy)
	}
	fs.UtilizationP50 = Percentile(utils, 0.5)
	fs.UtilizationP90 = Percentile(utils, 0.9)
	fs.UtilizationMax = Percentile(utils, 1)
	return fs
}

// Percentile returns the p-quantile (p in [0, 1]) of values by linear
// interpolation between order statistics. It sorts values in place and
// returns 0 for an empty slice.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	slices.Sort(values)
	if p <= 0 {
		return values[0]
	}
	if p >= 1 {
		return values[len(values)-1]
	}
	pos := p * float64(len(values)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return values[lo]
	}
	frac := pos - float64(lo)
	return values[lo]*(1-frac) + values[hi]*frac
}
