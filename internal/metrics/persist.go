package metrics

import (
	"encoding/json"
	"fmt"
	"io"
)

// FleetDoc is the persisted form of a fleet run: the configuration
// headline, the cross-stream FleetSummary, and — for open-system runs —
// the OpenSummary. qmfleet -json writes it; cmd/figures renders a fleet
// section from it, so a fleet experiment survives as an artefact instead
// of scrolling away with the terminal.
type FleetDoc struct {
	// Label describes the stream mix or bundle the fleet ran.
	Label string `json:"label"`
	// Mode is "closed" (fixed population, all streams at t=0) or "open"
	// (arrival process + admission control).
	Mode    string `json:"mode"`
	Streams int    `json:"streams"`
	// Workers is the configured scheduler width (the -workers cap, 0
	// resolved to GOMAXPROCS), not a concurrency measurement: an open
	// run executes admission waves that may each use fewer workers.
	// Results never depend on it either way.
	Workers     int    `json:"workers"`
	BatchCycles int    `json:"batch_cycles"`
	Cycles      int    `json:"cycles"`
	Seed        uint64 `json:"seed"`
	// Arrivals and Admission name the open-system configuration (empty
	// for closed runs).
	Arrivals  string `json:"arrivals,omitempty"`
	Admission string `json:"admission,omitempty"`

	Summary FleetSummary `json:"summary"`
	Open    *OpenSummary `json:"open,omitempty"`
	// Cluster is the routed scale-out section (per-instance summaries,
	// fairness), present when the run spread across engine instances.
	Cluster *ClusterSummary `json:"cluster,omitempty"`
}

// WriteJSON persists the doc as indented JSON.
func (d *FleetDoc) WriteJSON(w io.Writer) error {
	out, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return fmt.Errorf("metrics: marshal fleet doc: %w", err)
	}
	out = append(out, '\n')
	_, err = w.Write(out)
	return err
}

// ReadFleetDoc loads a doc written by WriteJSON.
func ReadFleetDoc(r io.Reader) (*FleetDoc, error) {
	var d FleetDoc
	dec := json.NewDecoder(r)
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("metrics: read fleet doc: %w", err)
	}
	return &d, nil
}
