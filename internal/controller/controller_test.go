package controller

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/profiler"
	"repro/internal/sim"
)

// validSpec builds a small, feasible spec.
func validSpec() Spec {
	const n, levels = 12, 4
	spec := Spec{Name: "test-app", Levels: levels, Rho: []int{1, 3, 6}}
	for i := 0; i < n; i++ {
		a := ActionSpec{Name: "op", Av: make([]int64, levels), WC: make([]int64, levels)}
		for q := 0; q < levels; q++ {
			a.Av[q] = int64(100+40*q) * 1000 // ns
			a.WC[q] = a.Av[q] * 3 / 2
		}
		spec.Actions = append(spec.Actions, a)
	}
	spec.Actions[n-1].Deadline = int64(n) * 260 * 1000
	return spec
}

func TestCompileValidSpec(t *testing.T) {
	b, err := Compile(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	if b.System().NumActions() != 12 || b.System().NumLevels() != 4 {
		t.Fatalf("compiled dimensions wrong")
	}
	if got := b.RelaxTables().Rho(); len(got) != 3 {
		t.Fatalf("rho = %v", got)
	}
	if b.Spec().Name != "test-app" {
		t.Fatal("spec not retained")
	}
}

func TestCompileRejectsBadSpecs(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
		want   string
	}{
		{"no actions", func(s *Spec) { s.Actions = nil }, "no actions"},
		{"one level", func(s *Spec) { s.Levels = 1 }, "levels"},
		{"row length", func(s *Spec) { s.Actions[0].Av = s.Actions[0].Av[:2] }, "entries"},
		{"no deadline", func(s *Spec) { s.Actions[len(s.Actions)-1].Deadline = 0 }, "no deadlines"},
		{"infeasible", func(s *Spec) { s.Actions[len(s.Actions)-1].Deadline = 1 }, "infeasible"},
		{"av above wc", func(s *Spec) { s.Actions[3].Av[1] = s.Actions[3].WC[1] + 1 }, "exceeds"},
		{"bad rho", func(s *Spec) { s.Rho = []int{4} }, "relaxation"},
	}
	for _, c := range cases {
		spec := validSpec()
		c.mutate(&spec)
		_, err := Compile(spec)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestCompileDefaultsRhoToOne(t *testing.T) {
	spec := validSpec()
	spec.Rho = nil
	b, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.RelaxTables().Rho(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("default rho = %v", got)
	}
}

func TestBundleRoundTrip(t *testing.T) {
	b, err := Compile(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := b.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Loaded managers must decide identically to the originals.
	sys := b.System()
	rng := rand.New(rand.NewSource(1))
	m1, m2 := b.Relaxed(), loaded.Relaxed()
	s1, s2 := b.Symbolic(), loaded.Symbolic()
	for trial := 0; trial < 300; trial++ {
		i := rng.Intn(sys.NumActions())
		tm := core.Time(rng.Int63n(int64(sys.LastDeadline() * 2)))
		if d1, d2 := m1.Decide(i, tm), m2.Decide(i, tm); d1 != d2 {
			t.Fatalf("relaxed decisions diverge at (%d, %v): %+v vs %+v", i, tm, d1, d2)
		}
		if d1, d2 := s1.Decide(i, tm), s2.Decide(i, tm); d1 != d2 {
			t.Fatalf("symbolic decisions diverge at (%d, %v)", i, tm)
		}
	}
}

// TestBundleHashStableAcrossReload: the hash is a pure function of the
// serialized form — identical across reloads (so a hot swap to a
// reloaded identical bundle is recognisable as a no-op) and different
// for a different spec.
func TestBundleHashStableAcrossReload(t *testing.T) {
	b, err := Compile(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	h1, err := b.Hash()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := b.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := loaded.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("reloaded bundle hashes %016x, original %016x", h2, h1)
	}
	other := validSpec()
	other.Actions[0].Av[1]++
	ob, err := Compile(other)
	if err != nil {
		t.Fatal(err)
	}
	h3, err := ob.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h3 == h1 {
		t.Fatal("distinct bundles collided")
	}
}

// TestReloadedBundleSwapIsNoOp: the hot-swap property at the stream
// level. A stream bound against a reloaded copy of the same bundle
// produces a byte-identical trace to one bound against the original —
// so a serving daemon swapping in an identical bundle changes nothing
// for streams admitted after the swap, and in-flight streams (which
// keep their old manager pointer) are untouched by construction.
func TestReloadedBundleSwapIsNoOp(t *testing.T) {
	b, err := Compile(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := b.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	run := func(bb *Bundle) *sim.Trace {
		return (&sim.Runner{Sys: bb.System(), Mgr: bb.Relaxed(),
			Exec:     sim.Content{Sys: bb.System(), NoiseAmp: 0.4, Seed: 99},
			Overhead: sim.IPodOverhead, Cycles: 6}).MustRun()
	}
	want, got := run(b), run(loaded)
	if !reflect.DeepEqual(want, got) {
		t.Fatal("stream under the reloaded bundle diverged from the original")
	}
}

// TestLoadErrorsNameSectionAndOffset: corrupt bundles must diagnose to
// a section and a byte offset, and truncation must say so.
func TestLoadErrorsNameSectionAndOffset(t *testing.T) {
	b, err := Compile(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := b.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	whole := buf.String()

	_, err = Load(strings.NewReader(strings.Replace(whole, `"spec"`, `"spec!`, 1)))
	if err == nil || !strings.Contains(err.Error(), "byte offset") || !strings.Contains(err.Error(), "bundle envelope") {
		t.Fatalf("syntax error lacks section+offset: %v", err)
	}
	_, err = Load(strings.NewReader(strings.Replace(whole, `"levels":4`, `"levels":"four"`, 1)))
	if err == nil || !strings.Contains(err.Error(), "byte offset") {
		t.Fatalf("type error lacks offset: %v", err)
	}
	_, err = Load(strings.NewReader(whole[:len(whole)/2]))
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("truncation not named: %v", err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Load(strings.NewReader(`{"spec":{"levels":0},"tables":{},"relax":{}}`)); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestSpecFromSystemRoundTrip(t *testing.T) {
	// profiler system → spec → compile → identical decisions.
	sys := profiler.IPodSystem()
	spec := SpecFromSystem("ipod-encoder", sys, []int{1, 10, 20})
	b, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	if b.System().NumActions() != sys.NumActions() {
		t.Fatal("action count changed")
	}
	orig := core.NewNumericManager(sys)
	comp := b.Numeric()
	for _, i := range []int{0, 100, 594, 1188} {
		for _, tm := range []core.Time{0, 300 * core.Millisecond, core.Second} {
			if orig.Decide(i, tm).Q != comp.Decide(i, tm).Q {
				t.Fatalf("decision changed at (%d, %v)", i, tm)
			}
		}
	}
}

func TestCompiledControllerRunsSafely(t *testing.T) {
	b, err := Compile(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	trc := (&sim.Runner{Sys: b.System(), Mgr: b.Relaxed(),
		Exec: sim.WorstCase{Sys: b.System()}, Overhead: sim.FreeOverhead, Cycles: 3}).MustRun()
	if trc.Misses != 0 {
		t.Fatalf("compiled controller missed %d deadlines", trc.Misses)
	}
}
