package controller

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/profiler"
	"repro/internal/sim"
)

// validSpec builds a small, feasible spec.
func validSpec() Spec {
	const n, levels = 12, 4
	spec := Spec{Name: "test-app", Levels: levels, Rho: []int{1, 3, 6}}
	for i := 0; i < n; i++ {
		a := ActionSpec{Name: "op", Av: make([]int64, levels), WC: make([]int64, levels)}
		for q := 0; q < levels; q++ {
			a.Av[q] = int64(100+40*q) * 1000 // ns
			a.WC[q] = a.Av[q] * 3 / 2
		}
		spec.Actions = append(spec.Actions, a)
	}
	spec.Actions[n-1].Deadline = int64(n) * 260 * 1000
	return spec
}

func TestCompileValidSpec(t *testing.T) {
	b, err := Compile(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	if b.System().NumActions() != 12 || b.System().NumLevels() != 4 {
		t.Fatalf("compiled dimensions wrong")
	}
	if got := b.RelaxTables().Rho(); len(got) != 3 {
		t.Fatalf("rho = %v", got)
	}
	if b.Spec().Name != "test-app" {
		t.Fatal("spec not retained")
	}
}

func TestCompileRejectsBadSpecs(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
		want   string
	}{
		{"no actions", func(s *Spec) { s.Actions = nil }, "no actions"},
		{"one level", func(s *Spec) { s.Levels = 1 }, "levels"},
		{"row length", func(s *Spec) { s.Actions[0].Av = s.Actions[0].Av[:2] }, "entries"},
		{"no deadline", func(s *Spec) { s.Actions[len(s.Actions)-1].Deadline = 0 }, "no deadlines"},
		{"infeasible", func(s *Spec) { s.Actions[len(s.Actions)-1].Deadline = 1 }, "infeasible"},
		{"av above wc", func(s *Spec) { s.Actions[3].Av[1] = s.Actions[3].WC[1] + 1 }, "exceeds"},
		{"bad rho", func(s *Spec) { s.Rho = []int{4} }, "relaxation"},
	}
	for _, c := range cases {
		spec := validSpec()
		c.mutate(&spec)
		_, err := Compile(spec)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestCompileDefaultsRhoToOne(t *testing.T) {
	spec := validSpec()
	spec.Rho = nil
	b, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.RelaxTables().Rho(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("default rho = %v", got)
	}
}

func TestBundleRoundTrip(t *testing.T) {
	b, err := Compile(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := b.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Loaded managers must decide identically to the originals.
	sys := b.System()
	rng := rand.New(rand.NewSource(1))
	m1, m2 := b.Relaxed(), loaded.Relaxed()
	s1, s2 := b.Symbolic(), loaded.Symbolic()
	for trial := 0; trial < 300; trial++ {
		i := rng.Intn(sys.NumActions())
		tm := core.Time(rng.Int63n(int64(sys.LastDeadline() * 2)))
		if d1, d2 := m1.Decide(i, tm), m2.Decide(i, tm); d1 != d2 {
			t.Fatalf("relaxed decisions diverge at (%d, %v): %+v vs %+v", i, tm, d1, d2)
		}
		if d1, d2 := s1.Decide(i, tm), s2.Decide(i, tm); d1 != d2 {
			t.Fatalf("symbolic decisions diverge at (%d, %v)", i, tm)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Load(strings.NewReader(`{"spec":{"levels":0},"tables":{},"relax":{}}`)); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestSpecFromSystemRoundTrip(t *testing.T) {
	// profiler system → spec → compile → identical decisions.
	sys := profiler.IPodSystem()
	spec := SpecFromSystem("ipod-encoder", sys, []int{1, 10, 20})
	b, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	if b.System().NumActions() != sys.NumActions() {
		t.Fatal("action count changed")
	}
	orig := core.NewNumericManager(sys)
	comp := b.Numeric()
	for _, i := range []int{0, 100, 594, 1188} {
		for _, tm := range []core.Time{0, 300 * core.Millisecond, core.Second} {
			if orig.Decide(i, tm).Q != comp.Decide(i, tm).Q {
				t.Fatalf("decision changed at (%d, %v)", i, tm)
			}
		}
	}
}

func TestCompiledControllerRunsSafely(t *testing.T) {
	b, err := Compile(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	trc := (&sim.Runner{Sys: b.System(), Mgr: b.Relaxed(),
		Exec: sim.WorstCase{Sys: b.System()}, Overhead: sim.FreeOverhead, Cycles: 3}).MustRun()
	if trc.Misses != 0 {
		t.Fatalf("compiled controller missed %d deadlines", trc.Misses)
	}
}
