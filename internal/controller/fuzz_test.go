package controller

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzLoadBundle is the robustness contract of the bundle loader: for
// ANY byte string — torn downloads, truncated writes, bit rot, hostile
// input — Load either returns a usable bundle or an error; it never
// panics, and a bundle it does accept serialises again and carries a
// working system. The corpus seeds a valid bundle plus truncations and
// near-miss corruptions of it so the fuzzer starts at the format's
// interesting edges.
func FuzzLoadBundle(f *testing.F) {
	b, err := Compile(validSpec())
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := b.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	whole := buf.Bytes()
	f.Add(whole)
	for _, cut := range []int{0, 1, len(whole) / 3, len(whole) / 2, len(whole) - 1} {
		f.Add(whole[:cut])
	}
	f.Add(bytes.Replace(whole, []byte(`"levels"`), []byte(`"levelz"`), 1))
	f.Add(bytes.Replace(whole, []byte(`:`), []byte(`:-`), 1))
	f.Add([]byte(`{"spec":{"levels":2,"actions":[{"av":[1,2],"wc":[1,2],"deadline":9}]},"tables":{},"relax":{}}`))
	f.Add([]byte("not json"))

	f.Fuzz(func(t *testing.T, data []byte) {
		loaded, err := Load(bytes.NewReader(data))
		if err != nil {
			if !strings.HasPrefix(err.Error(), "controller:") {
				t.Fatalf("load error escaped the package's prefix: %v", err)
			}
			return
		}
		if loaded.System() == nil || loaded.Tables() == nil || loaded.RelaxTables() == nil {
			t.Fatal("Load returned a hollow bundle without error")
		}
		if _, err := loaded.WriteTo(&bytes.Buffer{}); err != nil {
			t.Fatalf("accepted bundle does not re-serialise: %v", err)
		}
	})
}
