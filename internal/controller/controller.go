// Package controller is the reproduction of the paper's Figure 1 tool
// flow: a "compiler" that takes the application description (actions,
// timing functions Cav/Cwc, deadline function D) plus the controller
// parameters (relaxation set ρ), validates the quality-management
// problem, pre-computes the speed-diagram tables, and packages
// everything into one self-contained, serialisable **Bundle** — the
// moral equivalent of the binary the BIP/THINK chain loaded onto the
// iPod. A bundle can be saved, shipped, reloaded, and instantiated into
// any of the three Quality Managers without access to the original
// timing sources.
package controller

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"

	"repro/internal/core"
	"repro/internal/regions"
)

// Spec is the compiler input: a full description of the application and
// the controller parameters.
type Spec struct {
	// Name identifies the application (diagnostics only).
	Name string `json:"name"`
	// Actions of one cycle, in scheduled order.
	Actions []ActionSpec `json:"actions"`
	// Levels is the quality level count |Q|.
	Levels int `json:"levels"`
	// Rho is the control relaxation set; empty means {1} (no
	// multi-step relaxation).
	Rho []int `json:"rho,omitempty"`
}

// ActionSpec describes one action: per-level timing rows and an optional
// deadline (0 = none, matching the JSON-friendly convention).
type ActionSpec struct {
	Name     string  `json:"name"`
	Av       []int64 `json:"av"` // ns per level
	WC       []int64 `json:"wc"` // ns per level
	Deadline int64   `json:"deadline,omitempty"`
}

// SpecFromSystem converts an existing parameterized system into a Spec
// (e.g. to compile a bundle from profiler output).
func SpecFromSystem(name string, sys *core.System, rho []int) Spec {
	spec := Spec{Name: name, Levels: sys.NumLevels(), Rho: append([]int(nil), rho...)}
	for i := 0; i < sys.NumActions(); i++ {
		a := sys.Action(i)
		as := ActionSpec{
			Name: a.Name,
			Av:   make([]int64, sys.NumLevels()),
			WC:   make([]int64, sys.NumLevels()),
		}
		for q := 0; q < sys.NumLevels(); q++ {
			as.Av[q] = int64(sys.Av(i, core.Level(q)))
			as.WC[q] = int64(sys.WC(i, core.Level(q)))
		}
		if a.HasDeadline() {
			as.Deadline = int64(a.Deadline)
		}
		spec.Actions = append(spec.Actions, as)
	}
	return spec
}

// Bundle is the compiled controller: the validated system plus the
// pre-computed symbolic tables.
type Bundle struct {
	spec  Spec
	sys   *core.System
	tab   *regions.TDTable
	relax *regions.RelaxTables
}

// Compile validates the spec (Definition 1 monotonicity, Cav ≤ Cwc,
// qmin-feasibility — the conditions under which the mixed policy is
// safe) and pre-computes the tables with the parallel builders.
func Compile(spec Spec) (*Bundle, error) {
	sys, err := buildSystem(spec)
	if err != nil {
		return nil, err
	}
	rho := spec.Rho
	if len(rho) == 0 {
		rho = []int{1}
	}
	tab := regions.BuildTDTableParallel(sys)
	relax, err := regions.BuildRelaxTablesParallel(tab, rho)
	if err != nil {
		return nil, fmt.Errorf("controller: %w", err)
	}
	return &Bundle{spec: spec, sys: sys, tab: tab, relax: relax}, nil
}

// buildSystem validates the spec into a parameterized system (no table
// construction).
func buildSystem(spec Spec) (*core.System, error) {
	if len(spec.Actions) == 0 {
		return nil, errors.New("controller: no actions")
	}
	if spec.Levels < 2 {
		return nil, fmt.Errorf("controller: need ≥2 quality levels, got %d", spec.Levels)
	}
	tt := core.NewTimingTable(len(spec.Actions), spec.Levels)
	actions := make([]core.Action, len(spec.Actions))
	for i, a := range spec.Actions {
		if len(a.Av) != spec.Levels || len(a.WC) != spec.Levels {
			return nil, fmt.Errorf("controller: action %d (%s): timing rows must have %d entries", i, a.Name, spec.Levels)
		}
		for q := 0; q < spec.Levels; q++ {
			tt.Set(i, core.Level(q), core.Time(a.Av[q]), core.Time(a.WC[q]))
		}
		d := core.TimeInf
		if a.Deadline > 0 {
			d = core.Time(a.Deadline)
		}
		actions[i] = core.Action{Name: a.Name, Deadline: d}
	}
	sys, err := core.NewSystem(actions, tt)
	if err != nil {
		return nil, fmt.Errorf("controller: %w", err)
	}
	if err := sys.Feasible(); err != nil {
		return nil, fmt.Errorf("controller: %w", err)
	}
	return sys, nil
}

// Spec returns the bundle's originating spec.
func (b *Bundle) Spec() Spec { return b.spec }

// System returns the validated parameterized system.
func (b *Bundle) System() *core.System { return b.sys }

// Tables returns the quality-region table.
func (b *Bundle) Tables() *regions.TDTable { return b.tab }

// RelaxTables returns the control-relaxation tables.
func (b *Bundle) RelaxTables() *regions.RelaxTables { return b.relax }

// Numeric instantiates the on-line manager (kept mostly for comparison
// runs; the whole point of the bundle is to avoid it).
func (b *Bundle) Numeric() core.Manager { return core.NewNumericManager(b.sys) }

// Symbolic instantiates the quality-region manager.
func (b *Bundle) Symbolic() core.Manager { return regions.NewSymbolicManager(b.tab) }

// Relaxed instantiates the control-relaxation manager.
func (b *Bundle) Relaxed() core.Manager { return regions.NewRelaxedManager(b.relax) }

// Hash returns a stable FNV-1a identity of the bundle's serialized
// form. Two bundles hash equal exactly when WriteTo emits identical
// bytes — the identity the serving layer uses to name bundles on disk,
// to record which bundle each stream ran under in a checkpoint, and to
// recognise a hot swap to an identical bundle as a no-op.
func (b *Bundle) Hash() (uint64, error) {
	h := fnv.New64a()
	if _, err := b.WriteTo(h); err != nil {
		return 0, err
	}
	return h.Sum64(), nil
}

// bundleJSON is the wire format: the spec plus both table payloads, so a
// loaded bundle needs no recomputation.
type bundleJSON struct {
	Spec   Spec            `json:"spec"`
	Tables json.RawMessage `json:"tables"`
	Relax  json.RawMessage `json:"relax"`
}

// WriteTo serialises the bundle (spec + pre-computed tables) as JSON.
func (b *Bundle) WriteTo(w io.Writer) (int64, error) {
	var tabBuf, relaxBuf bytes.Buffer
	if _, err := b.tab.WriteTo(&tabBuf); err != nil {
		return 0, err
	}
	if _, err := b.relax.WriteTo(&relaxBuf); err != nil {
		return 0, err
	}
	j := bundleJSON{Spec: b.spec, Tables: tabBuf.Bytes(), Relax: relaxBuf.Bytes()}
	cw := &countWriter{w: w}
	err := json.NewEncoder(cw).Encode(j)
	return cw.n, err
}

// Load reads a bundle written by WriteTo, revalidates the spec and
// re-binds the stored tables (verifying dimensions). The tables are NOT
// recomputed: load cost is parsing only, mirroring the paper's
// pre-computed deployment. A corrupt or truncated bundle is always an
// error naming the failing section and, for parse failures, the byte
// offset — never a panic (property-tested by FuzzLoadBundle): a serving
// daemon hot-swapping bundles must survive any file it is pointed at.
func Load(r io.Reader) (*Bundle, error) {
	var j bundleJSON
	if err := json.NewDecoder(r).Decode(&j); err != nil {
		return nil, loadErr("bundle envelope", err)
	}
	// Rebuild the system from the spec (cheap), then attach tables.
	skeleton, err := compileSystemOnly(j.Spec)
	if err != nil {
		return nil, err
	}
	tab, err := regions.LoadTDTable(bytes.NewReader(j.Tables), skeleton)
	if err != nil {
		return nil, loadErr("quality-region table", err)
	}
	relax, err := regions.LoadRelaxTables(bytes.NewReader(j.Relax), tab)
	if err != nil {
		return nil, loadErr("relaxation tables", err)
	}
	return &Bundle{spec: j.Spec, sys: skeleton, tab: tab, relax: relax}, nil
}

// loadErr wraps a section's load failure with the section name and,
// when the underlying JSON decoder reports one, the byte offset where
// parsing derailed — so "bundle won't load" diagnoses to a place, not
// just a feeling.
func loadErr(section string, err error) error {
	var syn *json.SyntaxError
	if errors.As(err, &syn) {
		return fmt.Errorf("controller: %s: syntax error at byte offset %d: %w", section, syn.Offset, err)
	}
	var typ *json.UnmarshalTypeError
	if errors.As(err, &typ) {
		where := typ.Field
		if where == "" {
			where = "value"
		}
		return fmt.Errorf("controller: %s: %s cannot hold a JSON %s (byte offset %d): %w", section, where, typ.Value, typ.Offset, err)
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("controller: %s: truncated: %w", section, err)
	}
	return fmt.Errorf("controller: %s: %w", section, err)
}

func compileSystemOnly(spec Spec) (*core.System, error) {
	return buildSystem(spec)
}

// countWriter mirrors the regions package's helper.
type countWriter struct {
	w io.Writer
	n int64
}

func (cw *countWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}
