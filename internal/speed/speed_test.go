package speed

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
)

// evenSystem builds a 6-action, 3-level system with uniform per-action
// times so virtual time is easy to hand-check. Deadline 60µs on the last
// action.
func evenSystem(t *testing.T) *core.System {
	t.Helper()
	tt := core.NewTimingTable(6, 3)
	for i := 0; i < 6; i++ {
		for q := 0; q < 3; q++ {
			av := core.Time(4+2*q) * core.Microsecond
			tt.Set(i, core.Level(q), av, av*2)
		}
	}
	actions := make([]core.Action, 6)
	for i := range actions {
		actions[i] = core.Action{Name: "a", Deadline: core.TimeInf}
	}
	actions[5].Deadline = 60 * core.Microsecond
	return core.MustNewSystem(actions, tt)
}

func TestNewDiagramValidation(t *testing.T) {
	s := evenSystem(t)
	if _, err := NewDiagram(s, -1); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := NewDiagram(s, 6); err == nil {
		t.Error("out-of-range index accepted")
	}
	if _, err := NewDiagram(s, 2); err == nil {
		t.Error("deadline-free action accepted")
	}
	d, err := NewDiagram(s, 5)
	if err != nil {
		t.Fatalf("valid diagram rejected: %v", err)
	}
	if d.Target() != 5 || d.Deadline() != 60*core.Microsecond {
		t.Fatalf("target %d deadline %v", d.Target(), d.Deadline())
	}
}

func TestNewFinalDiagram(t *testing.T) {
	s := evenSystem(t)
	d, err := NewFinalDiagram(s)
	if err != nil {
		t.Fatal(err)
	}
	if d.Target() != 5 {
		t.Fatalf("final diagram targets %d", d.Target())
	}
}

func TestNewDiagramRejectsZeroWorkload(t *testing.T) {
	tt := core.NewTimingTable(2, 2)
	// All-zero average times.
	for i := 0; i < 2; i++ {
		for q := 0; q < 2; q++ {
			tt.Set(i, core.Level(q), 0, core.Microsecond)
		}
	}
	actions := []core.Action{{Deadline: core.TimeInf}, {Deadline: 5 * core.Microsecond}}
	s := core.MustNewSystem(actions, tt)
	if _, err := NewDiagram(s, 1); err == nil {
		t.Fatal("zero-workload system accepted")
	}
}

func TestVirtualTimeEndpoints(t *testing.T) {
	s := evenSystem(t)
	d, _ := NewDiagram(s, 5)
	for q := core.Level(0); q <= s.QMax(); q++ {
		if y := d.VirtualTime(0, q); y != 0 {
			t.Fatalf("y_0(%v) = %v, want 0", q, y)
		}
		if y := d.VirtualTime(6, q); math.Abs(y-float64(d.Deadline())) > 1e-9 {
			t.Fatalf("y_n(%v) = %v, want %v", q, y, float64(d.Deadline()))
		}
	}
}

func TestVirtualTimeUniformSteps(t *testing.T) {
	// With identical per-action averages, y advances by D/n per state.
	s := evenSystem(t)
	d, _ := NewDiagram(s, 5)
	step := float64(60*core.Microsecond) / 6
	for i := 0; i <= 6; i++ {
		want := step * float64(i)
		if y := d.VirtualTime(i, 1); math.Abs(y-want) > 1e-6 {
			t.Fatalf("y_%d = %v, want %v", i, y, want)
		}
	}
}

func TestIdealSpeedIndependentOfState(t *testing.T) {
	// §3.1.2: v_idl only depends on q and the target deadline. With the
	// even system: Cav(all, q=0) = 24µs, D = 60µs → v_idl = 2.5.
	s := evenSystem(t)
	d, _ := NewDiagram(s, 5)
	if v := d.IdealSpeed(0); math.Abs(v-2.5) > 1e-12 {
		t.Fatalf("v_idl(0) = %v, want 2.5", v)
	}
	// q=2: Cav = 48µs → v_idl = 1.25.
	if v := d.IdealSpeed(2); math.Abs(v-1.25) > 1e-12 {
		t.Fatalf("v_idl(2) = %v, want 1.25", v)
	}
}

func TestIdealSpeedDecreasesWithQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		s := core.RandomSystem(rng, core.RandomSystemConfig{MaxAv: 900})
		d, err := NewFinalDiagram(s)
		if err != nil {
			continue // zero-workload draw
		}
		for q := core.Level(1); q <= s.QMax(); q++ {
			if d.IdealSpeed(q) > d.IdealSpeed(q-1)+1e-12 {
				t.Fatalf("v_idl increasing in q at %v", q)
			}
		}
	}
}

func TestProposition1Equivalence(t *testing.T) {
	// v_idl(q) ≥ v_opt(q) ⇔ D(a_k) − CD(a_i..a_k, q) ≥ t_i,
	// with both sides computed independently.
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 60; trial++ {
		s := core.RandomSystem(rng, core.RandomSystemConfig{Actions: 18, DeadlineEvery: 7})
		d, err := NewFinalDiagram(s)
		if err != nil {
			continue
		}
		D := d.Deadline()
		for i := 0; i <= d.Target(); i++ {
			for q := core.Level(0); q <= s.QMax(); q++ {
				// Probe around the constraint boundary and far from it.
				boundary := D - s.CD(i, d.Target(), q)
				for _, tm := range []core.Time{0, boundary - 1, boundary, boundary + 1, D, D * 2} {
					if tm < 0 {
						continue
					}
					lhs := d.SpeedOrder(i, tm, q)
					rhs := d.ConstraintHolds(i, tm, q)
					if lhs != rhs {
						t.Fatalf("trial %d: Prop1 violated at i=%d q=%v t=%v: speeds %v constraint %v (v_idl=%v v_opt=%v)",
							trial, i, q, tm, lhs, rhs, d.IdealSpeed(q), d.OptimalSpeed(i, tm, q))
					}
				}
			}
		}
	}
}

func TestSpeedOrderMatchesFloatSpeedsAwayFromBoundary(t *testing.T) {
	// The exact integer SpeedOrder must agree with the float64 speed
	// comparison whenever the two speeds are well separated.
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 30; trial++ {
		s := core.RandomSystem(rng, core.RandomSystemConfig{Actions: 14})
		d, err := NewFinalDiagram(s)
		if err != nil {
			continue
		}
		for i := 0; i <= d.Target(); i++ {
			for q := core.Level(0); q <= s.QMax(); q++ {
				for _, tm := range []core.Time{0, d.Deadline() / 3, d.Deadline()} {
					vi, vo := d.IdealSpeed(q), d.OptimalSpeed(i, tm, q)
					if math.IsInf(vo, 1) {
						continue
					}
					rel := math.Abs(vi-vo) / max(vi, 1e-30)
					if rel < 1e-9 {
						continue // too close to trust floats
					}
					if got, want := d.SpeedOrder(i, tm, q), vi >= vo; got != want {
						t.Fatalf("SpeedOrder=%v but v_idl=%v v_opt=%v at i=%d q=%v t=%v",
							got, vi, vo, i, q, tm)
					}
				}
			}
		}
	}
}

func TestOptimalSpeedGrowsWithLateness(t *testing.T) {
	// Arriving later at the same state demands a faster optimal speed.
	s := evenSystem(t)
	d, _ := NewDiagram(s, 5)
	prev := -1.0
	for tm := core.Time(0); tm < 40*core.Microsecond; tm += 2 * core.Microsecond {
		v := d.OptimalSpeed(2, tm, 1)
		if v < prev {
			t.Fatalf("v_opt decreased with lateness at t=%v", tm)
		}
		prev = v
	}
}

func TestOptimalSpeedDegenerateCases(t *testing.T) {
	s := evenSystem(t)
	d, _ := NewDiagram(s, 5)
	// Far past the deadline: no finite speed reaches the target.
	if v := d.OptimalSpeed(2, 10*60*core.Microsecond, 1); !math.IsInf(v, 1) {
		t.Fatalf("v_opt past deadline = %v, want +inf", v)
	}
}

func TestTrajectoryAndSlope(t *testing.T) {
	s := evenSystem(t)
	d, _ := NewDiagram(s, 5)
	states := []int{0, 1, 2}
	times := []core.Time{0, 5 * core.Microsecond, 9 * core.Microsecond}
	quals := []core.Level{1, 1, 2}
	pts := d.Trajectory(states, times, quals, 1)
	if len(pts) != 3 {
		t.Fatalf("trajectory length %d", len(pts))
	}
	if pts[2].Q != 2 || pts[2].State != 2 {
		t.Fatalf("point 2 = %+v", pts[2])
	}
	// Slope between first two points: Δy = 10µs-equivalent, Δt = 5µs → 2.
	sl := Slope(pts[0], pts[1])
	if math.Abs(sl-2.0) > 1e-9 {
		t.Fatalf("slope = %v, want 2", sl)
	}
	if !math.IsInf(Slope(pts[0], pts[0]), 1) && Slope(pts[0], pts[0]) != float64(core.TimeInf) {
		t.Fatalf("zero-Δt slope should be infinite-like, got %v", Slope(pts[0], pts[0]))
	}
}

func TestTrajectoryDefaultQuality(t *testing.T) {
	s := evenSystem(t)
	d, _ := NewDiagram(s, 5)
	pts := d.Trajectory([]int{0, 1}, []core.Time{0, 1}, nil, 2)
	if pts[0].Q != 2 || pts[1].Q != 2 {
		t.Fatal("missing qualities must default to refQ")
	}
}
