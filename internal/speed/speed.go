// Package speed implements the speed diagrams of §3: a two-dimensional
// representation of a controlled system's state where the horizontal axis
// is actual time and the vertical axis is virtual time computed from the
// average execution-time function. In this space, the mixed quality
// management policy reads geometrically (Proposition 1): the manager picks
// the maximal quality whose *ideal speed* still exceeds the *optimal
// speed* at the current point.
package speed

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// Diagram evaluates speed-diagram quantities of a parameterized system
// with respect to a fixed target deadline action a_k.
type Diagram struct {
	sys *core.System
	k   int // target deadline action index
}

// NewDiagram builds a diagram targeting the deadline carried by action k.
// It fails if a_k has no finite deadline.
func NewDiagram(sys *core.System, k int) (*Diagram, error) {
	if k < 0 || k >= sys.NumActions() {
		return nil, fmt.Errorf("speed: action index %d out of range", k)
	}
	if !sys.Action(k).HasDeadline() {
		return nil, fmt.Errorf("speed: action %d has no deadline", k)
	}
	// The diagram normalises virtual time by Cav(a_0..a_k, q); a zero
	// total average workload would break the normalisation (and makes
	// quality management pointless anyway).
	for q := core.Level(0); q <= sys.QMax(); q++ {
		if sys.AvPrefix(k+1, q) == 0 {
			return nil, fmt.Errorf("speed: zero total average workload at level %v", q)
		}
	}
	return &Diagram{sys: sys, k: k}, nil
}

// NewFinalDiagram targets the last deadline of the system, the usual
// choice for a cyclically executed frame system with one global deadline.
func NewFinalDiagram(sys *core.System) (*Diagram, error) {
	idx := sys.DeadlineIndices()
	return NewDiagram(sys, idx[len(idx)-1])
}

// Target returns the index of the deadline action the diagram refers to.
func (d *Diagram) Target() int { return d.k }

// Deadline returns D(a_k), the available time budget.
func (d *Diagram) Deadline() core.Time { return d.sys.Action(d.k).Deadline }

// VirtualTime returns y_i(q), the virtual time at state i (after actions
// 0..i-1 have completed) for uniform quality q:
//
//	y_i(q) = Cav(a_0..a_{i-1}, q) / Cav(a_0..a_k, q) · D(a_k)
//
// i.e. the fraction of the average workload consumed, scaled to the time
// budget. By construction y_{k+1}(q) = D(a_k) for every q. The result is
// a float because the normalisation is a ratio.
func (d *Diagram) VirtualTime(i int, q core.Level) float64 {
	total := d.sys.AvPrefix(d.k+1, q)
	if total == 0 {
		// Zero average workload: every state is already "done".
		return float64(d.Deadline())
	}
	return float64(d.sys.AvPrefix(i, q)) / float64(total) * float64(d.Deadline())
}

// IdealSpeed returns v_idl(q) = D(a_k) / Cav(a_0..a_k, q): the constant
// slope of the trajectory when every action runs exactly at its average
// time with uniform quality q. It is independent of the state (§3.1.2).
func (d *Diagram) IdealSpeed(q core.Level) float64 {
	total := d.sys.AvPrefix(d.k+1, q)
	if total == 0 {
		return math.Inf(1)
	}
	return float64(d.Deadline()) / float64(total)
}

// OptimalSpeed returns v_opt(q) at state (i, t): the slope of the vector
// from the current point (t, y_i(q)) to the target point
// (D(a_k) − δmax(a_{i}..a_k, q), D(a_k)) — the deadline shifted left by
// the mixed policy's safety margin. Positive infinity is returned when
// the remaining real-time budget (denominator) is non-positive, meaning
// no finite speed can reach the target in time.
//
// Note on indexing: the paper writes δmax(a_{i+1}..a_k, q) for the margin
// of the *remaining* actions after state s_i; with this package's 0-based
// states (state i precedes action i) the remaining window is a_i..a_k.
func (d *Diagram) OptimalSpeed(i int, t core.Time, q core.Level) float64 {
	margin := d.sys.DeltaMax(i, d.k, q)
	den := float64(d.Deadline()) - float64(margin) - float64(t)
	rem := d.sys.AvRange(i, d.k, q)
	switch {
	case den > 0:
		// v_opt = D/Cav(a_0..a_k,q) · Cav(a_i..a_k,q) / (D − δmax − t)
		//       = (y_{k+1} − y_i) / (D − δmax − t), both forms equal.
		return (float64(d.Deadline()) - d.VirtualTime(i, q)) / den
	case rem == 0 && den == 0:
		// No remaining average workload and no remaining budget:
		// the target point coincides with the current point.
		return 0
	default:
		return math.Inf(1)
	}
}

// ConstraintHolds reports the right-hand side of Proposition 1 for the
// diagram's target deadline: D(a_k) − CD(a_i..a_k, q) ≥ t. Proposition 1
// states this is equivalent to IdealSpeed(q) ≥ OptimalSpeed(i, t, q);
// the equivalence is property-tested, not assumed.
func (d *Diagram) ConstraintHolds(i int, t core.Time, q core.Level) bool {
	return d.Deadline()-d.sys.CD(i, d.k, q) >= t
}

// SpeedOrder reports whether v_idl(q) ≥ v_opt(q) at state (i, t) — the
// left-hand side of Proposition 1. The comparison is evaluated in exact
// integer arithmetic: with den = D − δmax(a_i..a_k,q) − t and
// rem = Cav(a_i..a_k,q),
//
//	v_idl ≥ v_opt  ⇔  D/Cav(a_0..a_k)·den ≥ D/Cav(a_0..a_k)·rem  ⇔  den ≥ rem
//
// when den > 0, and v_opt is infinite otherwise (except for the
// degenerate point target den = rem = 0 where v_opt = 0). Using the
// rational form avoids float64 ties at the exact region boundary, where
// the two divisions can disagree in the last ulp.
func (d *Diagram) SpeedOrder(i int, t core.Time, q core.Level) bool {
	den := d.Deadline() - d.sys.DeltaMax(i, d.k, q) - t
	rem := d.sys.AvRange(i, d.k, q)
	if den > 0 {
		return den >= rem
	}
	return rem == 0 && den == 0
}

// Point is one trajectory sample in the diagram plane.
type Point struct {
	State   int       // state index i
	Actual  core.Time // t_i, actual elapsed time
	Virtual float64   // y_i(q) at the reference quality
	Q       core.Level
}

// Trajectory maps an executed (state, time, quality) sequence into diagram
// points. states[j] is the state index reached at times[j] with the
// quality chosen at that state; refQ fixes the virtual-time normalisation
// (the diagram plots y_i(refQ) so that a uniform-quality run at refQ is a
// straight line).
func (d *Diagram) Trajectory(states []int, times []core.Time, quals []core.Level, refQ core.Level) []Point {
	pts := make([]Point, 0, len(states))
	for j, st := range states {
		q := refQ
		if j < len(quals) {
			q = quals[j]
		}
		pts = append(pts, Point{
			State:   st,
			Actual:  times[j],
			Virtual: d.VirtualTime(st, refQ),
			Q:       q,
		})
	}
	return pts
}

// Slope returns the speed v_{i,j}(q) between two diagram points, i.e.
// Δvirtual / Δactual. Infinite when the actual times coincide.
func Slope(a, b Point) float64 {
	dt := float64(b.Actual - a.Actual)
	if dt == 0 {
		return float64(core.TimeInf)
	}
	return (b.Virtual - a.Virtual) / dt
}
