package decoder

import (
	"testing"

	"repro/internal/core"
)

// FuzzDecodeFrame: arbitrary streams must never panic the frame decoder.
func FuzzDecodeFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xAB, 0xCD, 0xEF, 0x01, 0x23})
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := New(data, 32, 32, 4)
		if err != nil {
			t.Fatal(err) // dimensions are fixed-valid here
		}
		qs := make([]core.Level, 4)
		for i := range qs {
			qs[i] = core.Level(i % 4)
		}
		_, _ = d.DecodeFrame(qs)
	})
}
