package decoder

import (
	"testing"

	"repro/internal/core"
	"repro/internal/encoder"
	"repro/internal/frame"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 20, 16, 4); err == nil {
		t.Error("non-multiple width accepted")
	}
	if _, err := New(nil, 16, 16, 1); err == nil {
		t.Error("single level accepted")
	}
	if _, err := New(nil, 16, 16, 4); err != nil {
		t.Errorf("valid decoder rejected: %v", err)
	}
}

// encodeWithQualities encodes frames at the given per-frame quality and
// returns the stream, the per-MB transform levels per frame, and the
// encoder's own reconstruction frames.
func encodeWithQualities(t *testing.T, src *frame.Source, levels int, frameQs []core.Level) ([]byte, [][]core.Level, []*frame.Frame) {
	t.Helper()
	e := encoder.MustNew(src, levels)
	var perMB [][]core.Level
	var recons []*frame.Frame
	for _, q := range frameQs {
		mbQ := make([]core.Level, e.NumMB())
		for i := 0; i < e.NumActions(); i++ {
			// Vary quality within the frame like a manager would.
			aq := q
			if encoder.ActionMB(i)%5 == 0 {
				aq = (q + 1) % core.Level(levels)
			}
			e.Exec(i, aq)
			if encoder.ActionClass(i) == encoder.ClassTransform {
				mbQ[encoder.ActionMB(i)] = aq
			}
		}
		perMB = append(perMB, mbQ)
		recons = append(recons, e.Recon().Clone())
	}
	return e.Bitstream(), perMB, recons
}

// TestDecoderMatchesEncoderReconstruction is the end-to-end substrate
// check: decoding the produced bitstream must reproduce the encoder's
// reconstruction frames bit-exactly, across intra and inter frames and
// mixed in-frame quality levels.
func TestDecoderMatchesEncoderReconstruction(t *testing.T) {
	src := &frame.Source{W: 64, H: 48, Seed: 9}
	const levels = 5
	stream, perMB, recons := encodeWithQualities(t, src, levels,
		[]core.Level{2, 4, 0, 3})
	d, err := New(stream, 64, 48, levels)
	if err != nil {
		t.Fatal(err)
	}
	for f := range perMB {
		got, err := d.DecodeFrame(perMB[f])
		if err != nil {
			t.Fatalf("frame %d: %v", f, err)
		}
		want := recons[f]
		for i := range want.Y {
			if got.Y[i] != want.Y[i] {
				t.Fatalf("frame %d: pixel %d differs: %d vs %d", f, i, got.Y[i], want.Y[i])
			}
		}
	}
	if d.Frames() != 4 {
		t.Fatalf("decoded %d frames", d.Frames())
	}
}

func TestDecodedVideoCloseToSource(t *testing.T) {
	// Lossy but sane: decoded frames at a high quality level must be
	// within a reasonable PSNR of the original.
	src := &frame.Source{W: 64, H: 48, Seed: 10}
	const levels = 7
	stream, perMB, _ := encodeWithQualities(t, src, levels, []core.Level{6, 6})
	d, err := New(stream, 64, 48, levels)
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < 2; f++ {
		got, err := d.DecodeFrame(perMB[f])
		if err != nil {
			t.Fatal(err)
		}
		p, err := frame.PSNR(src.Frame(f), got)
		if err != nil {
			t.Fatal(err)
		}
		if p < 25 {
			t.Fatalf("frame %d PSNR %.1f dB too low for qmax", f, p)
		}
	}
}

func TestDecodeFrameValidation(t *testing.T) {
	d, _ := New(nil, 32, 32, 4)
	if _, err := d.DecodeFrame(make([]core.Level, 3)); err == nil {
		t.Fatal("wrong level count accepted")
	}
	qs := make([]core.Level, 4)
	qs[0] = 9
	if _, err := d.DecodeFrame(qs); err == nil {
		t.Fatal("out-of-range level accepted")
	}
}

func TestDecodeTruncatedStream(t *testing.T) {
	src := &frame.Source{W: 32, H: 32, Seed: 11}
	stream, perMB, _ := encodeWithQualities(t, src, 4, []core.Level{2})
	d, err := New(stream[:len(stream)/3], 32, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.DecodeFrame(perMB[0]); err == nil {
		t.Fatal("truncated stream decoded without error")
	}
}

func TestDecodeGarbage(t *testing.T) {
	garbage := make([]byte, 4096)
	for i := range garbage {
		garbage[i] = byte(i*37 + 11)
	}
	d, err := New(garbage, 32, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Garbage must either decode to *something* or fail cleanly —
	// never panic.
	_, _ = d.DecodeFrame(make([]core.Level, 4))
}
