// Package decoder is the decoding counterpart of the encoder substrate:
// it parses the bitstream produced by internal/encoder (motion vectors +
// VLC-coded quantised residual blocks) and reconstructs the video. Since
// quantiser choice is a per-macroblock encoding decision, the decoder is
// driven by the same quality sequence the Quality Manager chose — in a
// real container format those levels would be carried per macroblock; the
// reproduction passes them out of band to keep the substrate focused.
//
// Its purpose in the reproduction is verification: decoding an encoded
// stream must reproduce the encoder's own reconstruction frames exactly
// (both sides run the same dequantise → IDCT → motion-compensate chain),
// which pins the whole entropy-coding path end to end.
package decoder

import (
	"fmt"

	"repro/internal/bitstream"
	"repro/internal/core"
	"repro/internal/dct"
	"repro/internal/frame"
	"repro/internal/motion"
	"repro/internal/quant"
	"repro/internal/vlc"
)

// Decoder reconstructs frames from an encoded stream.
type Decoder struct {
	w, h       int
	levels     int
	quantizers []*quant.Quantizer
	cb         *vlc.Codebook
	r          *bitstream.Reader
	ref        *frame.Frame
	frames     int
}

// New builds a decoder for streams of the given dimensions and quality
// level count (which fixes the quantiser family, as in the encoder).
func New(data []byte, w, h, levels int) (*Decoder, error) {
	if w <= 0 || h <= 0 || w%frame.MBSize != 0 || h%frame.MBSize != 0 {
		return nil, fmt.Errorf("decoder: dimensions %dx%d not multiples of %d", w, h, frame.MBSize)
	}
	if levels < 2 {
		return nil, fmt.Errorf("decoder: need ≥2 levels, got %d", levels)
	}
	d := &Decoder{
		w: w, h: h, levels: levels,
		quantizers: make([]*quant.Quantizer, levels),
		cb:         vlc.NewDefaultCodebook(),
		r:          bitstream.NewReader(data),
	}
	for q := 0; q < levels; q++ {
		d.quantizers[q] = quant.MustNew(q, levels)
	}
	return d, nil
}

// Frames returns the number of frames decoded so far.
func (d *Decoder) Frames() int { return d.frames }

// DecodeFrame parses one frame's worth of macroblocks. qlevels gives the
// quality level the encoder used for each macroblock's transform action
// (length = number of macroblocks).
func (d *Decoder) DecodeFrame(qlevels []core.Level) (*frame.Frame, error) {
	out := frame.MustNew(d.w, d.h)
	numMB := out.NumMB()
	if len(qlevels) != numMB {
		return nil, fmt.Errorf("decoder: %d quality levels for %d macroblocks", len(qlevels), numMB)
	}
	for mb := 0; mb < numMB; mb++ {
		if err := d.decodeMB(out, mb, qlevels[mb]); err != nil {
			return nil, fmt.Errorf("decoder: frame %d mb %d: %w", d.frames, mb, err)
		}
	}
	// The reconstruction becomes the reference for the next frame,
	// mirroring the encoder.
	d.ref = out
	d.frames++
	return out, nil
}

func (d *Decoder) decodeMB(out *frame.Frame, mb int, q core.Level) error {
	if int(q) >= d.levels || q < 0 {
		return fmt.Errorf("level %v outside [0,%d)", q, d.levels)
	}
	mvx, err := d.r.ReadSE()
	if err != nil {
		return fmt.Errorf("mv.x: %w", err)
	}
	mvy, err := d.r.ReadSE()
	if err != nil {
		return fmt.Errorf("mv.y: %w", err)
	}
	mv := motion.Vector{X: int(mvx), Y: int(mvy)}
	x, y := out.MBOrigin(mb)
	qz := d.quantizers[q]
	var coef, deq, rec [64]int32
	for b := 0; b < 4; b++ {
		bx := x + (b%2)*8
		by := y + (b/2)*8
		pairs, err := d.cb.DecodeBlock(d.r)
		if err != nil {
			return fmt.Errorf("block %d: %w", b, err)
		}
		if err := vlc.Reconstruct(pairs, &coef); err != nil {
			return fmt.Errorf("block %d: %w", b, err)
		}
		qz.Dequantize(&coef, &deq)
		dct.Inverse(&deq, &rec)
		for r := 0; r < 8; r++ {
			for c := 0; c < 8; c++ {
				pred := int32(128)
				if d.ref != nil {
					pred = int32(d.ref.YAt(bx+c+mv.X, by+r+mv.Y))
				}
				v := rec[r*8+c] + pred
				if v < 0 {
					v = 0
				}
				if v > 255 {
					v = 255
				}
				out.Y[(by+r)*d.w+bx+c] = uint8(v)
			}
		}
	}
	return nil
}
