package motion

import (
	"testing"

	"repro/internal/frame"
)

// shifted builds a pair of frames where ref shifted by (dx, dy) equals
// cur (inside the safe interior).
func shifted(t *testing.T, dx, dy int) (cur, ref *frame.Frame) {
	t.Helper()
	ref = frame.MustNew(96, 96)
	for y := 0; y < 96; y++ {
		for x := 0; x < 96; x++ {
			ref.Y[y*96+x] = uint8((x*7 + y*13 + x*y/16) % 256)
		}
	}
	cur = frame.MustNew(96, 96)
	for y := 0; y < 96; y++ {
		for x := 0; x < 96; x++ {
			cur.Y[y*96+x] = ref.YAt(x+dx, y+dy)
		}
	}
	return cur, ref
}

func TestSAD16ZeroOnIdentical(t *testing.T) {
	cur, _ := shifted(t, 0, 0)
	if s := SAD16(cur, cur, 32, 32, 0, 0); s != 0 {
		t.Fatalf("self SAD = %d", s)
	}
}

func TestFullSearchFindsExactShift(t *testing.T) {
	for _, mv := range []Vector{{3, 2}, {-4, 1}, {0, -5}, {6, 6}} {
		cur, ref := shifted(t, mv.X, mv.Y)
		res := FullSearch(cur, ref, 32, 32, 8)
		if res.MV != mv {
			t.Fatalf("full search found %+v, want %+v", res.MV, mv)
		}
		if res.SAD != 0 {
			t.Fatalf("exact shift should give SAD 0, got %d", res.SAD)
		}
		if res.Ops != 17*17 {
			t.Fatalf("full search ops = %d, want %d", res.Ops, 17*17)
		}
	}
}

func TestDiamondSearchFindsExactShift(t *testing.T) {
	// Diamond search converges on smooth SAD landscapes; the shifted
	// gradient frame is exactly that.
	for _, mv := range []Vector{{2, 0}, {0, 2}, {-3, -1}} {
		cur, ref := shifted(t, mv.X, mv.Y)
		res := DiamondSearch(cur, ref, 32, 32, 8)
		if res.SAD != 0 {
			t.Fatalf("diamond search SAD %d at %+v, want 0 at %+v", res.SAD, res.MV, mv)
		}
	}
}

func TestDiamondCheaperThanFull(t *testing.T) {
	cur, ref := shifted(t, 3, 2)
	full := FullSearch(cur, ref, 32, 32, 8)
	dia := DiamondSearch(cur, ref, 32, 32, 8)
	if dia.Ops >= full.Ops {
		t.Fatalf("diamond ops %d not cheaper than full %d", dia.Ops, full.Ops)
	}
}

func TestRadiusForLevel(t *testing.T) {
	if RadiusForLevel(0, 7) != 1 {
		t.Fatal("level 0 radius")
	}
	if RadiusForLevel(3, 7) != 8 {
		t.Fatal("level 3 radius")
	}
	if RadiusForLevel(6, 7) != 16 {
		t.Fatal("radius must cap at 16")
	}
	prev := 0
	for q := 0; q < 7; q++ {
		r := RadiusForLevel(q, 7)
		if r < prev {
			t.Fatalf("radius not monotone at %d", q)
		}
		prev = r
	}
}

func TestEstimateWorkGrowsWithQuality(t *testing.T) {
	cur, ref := shifted(t, 2, 1)
	prevOps := 0
	grew := false
	for q := 0; q < 7; q++ {
		res := Estimate(cur, ref, 32, 32, q, 7)
		if res.Ops > prevOps {
			grew = true
		}
		prevOps = res.Ops
	}
	if !grew {
		t.Fatal("search effort never grew with quality")
	}
	// Top level must use full search: ops = (2·16+1)².
	top := Estimate(cur, ref, 32, 32, 6, 7)
	if top.Ops != 33*33 {
		t.Fatalf("top level ops = %d, want full search %d", top.Ops, 33*33)
	}
}

func TestSearchRespectsRadius(t *testing.T) {
	cur, ref := shifted(t, 6, 6)
	res := FullSearch(cur, ref, 32, 32, 2)
	if res.MV.X < -2 || res.MV.X > 2 || res.MV.Y < -2 || res.MV.Y > 2 {
		t.Fatalf("MV %+v outside radius 2", res.MV)
	}
	res = DiamondSearch(cur, ref, 32, 32, 2)
	if res.MV.X < -2 || res.MV.X > 2 || res.MV.Y < -2 || res.MV.Y > 2 {
		t.Fatalf("diamond MV %+v outside radius 2", res.MV)
	}
}

func TestFullSearchPrefersSmallVectorOnTies(t *testing.T) {
	// A flat frame ties everywhere; the zero vector must win.
	flat := frame.MustNew(64, 64)
	res := FullSearch(flat, flat, 16, 16, 4)
	if res.MV != (Vector{}) {
		t.Fatalf("tie-break picked %+v, want zero vector", res.MV)
	}
}
