package motion

import (
	"testing"

	"repro/internal/frame"
)

func benchFrames() (cur, ref *frame.Frame) {
	ref = frame.MustNew(352, 288)
	for y := 0; y < 288; y++ {
		for x := 0; x < 352; x++ {
			ref.Y[y*352+x] = uint8((x*7 + y*13 + x*y/16) % 256)
		}
	}
	cur = frame.MustNew(352, 288)
	for y := 0; y < 288; y++ {
		for x := 0; x < 352; x++ {
			cur.Y[y*352+x] = ref.YAt(x+3, y+2)
		}
	}
	return cur, ref
}

// The full/diamond cost gap at growing radii is the dominant
// quality→time knob of the encoder.
func BenchmarkFullSearchR4(b *testing.B) {
	cur, ref := benchFrames()
	for i := 0; i < b.N; i++ {
		FullSearch(cur, ref, 160, 128, 4)
	}
}

func BenchmarkFullSearchR16(b *testing.B) {
	cur, ref := benchFrames()
	for i := 0; i < b.N; i++ {
		FullSearch(cur, ref, 160, 128, 16)
	}
}

func BenchmarkDiamondSearchR16(b *testing.B) {
	cur, ref := benchFrames()
	for i := 0; i < b.N; i++ {
		DiamondSearch(cur, ref, 160, 128, 16)
	}
}
