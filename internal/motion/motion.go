// Package motion implements block motion estimation for 16×16 luma
// macroblocks: exhaustive full search and diamond search over a
// quality-dependent radius. Search effort — and therefore execution
// time — grows with the quality level, the dominant work knob of the
// encoder substrate (exactly as in MPEG encoders, where motion search is
// the most expensive stage).
package motion

import (
	"math"

	"repro/internal/frame"
)

// Vector is a motion vector in luma pixels.
type Vector struct{ X, Y int }

// Result reports the outcome of a motion search.
type Result struct {
	MV  Vector
	SAD int // sum of absolute differences at MV
	Ops int // number of SAD evaluations performed (work accounting)
}

// SAD16 computes the sum of absolute differences between the 16×16 block
// of cur at (cx, cy) and the block of ref at (cx+dx, cy+dy), with border
// clamping on the reference.
func SAD16(cur, ref *frame.Frame, cx, cy, dx, dy int) int {
	sum := 0
	for r := 0; r < frame.MBSize; r++ {
		for c := 0; c < frame.MBSize; c++ {
			a := int(cur.Y[(cy+r)*cur.W+cx+c])
			b := int(ref.YAt(cx+c+dx, cy+r+dy))
			d := a - b
			if d < 0 {
				d = -d
			}
			sum += d
		}
	}
	return sum
}

// RadiusForLevel maps a quality level in [0, levels) to a search radius:
// level 0 searches ±1, the top level ±(2^min(6,levels)) capped at 16.
// The exponential growth mirrors how real encoders trade motion quality
// for time.
func RadiusForLevel(q, levels int) int {
	if q <= 0 {
		return 1
	}
	r := 1 << uint(q)
	if r > 16 {
		r = 16
	}
	return r
}

// FullSearch exhaustively scans the (2r+1)² displacement window around
// the zero vector.
func FullSearch(cur, ref *frame.Frame, cx, cy, radius int) Result {
	best := Result{SAD: math.MaxInt}
	for dy := -radius; dy <= radius; dy++ {
		for dx := -radius; dx <= radius; dx++ {
			s := SAD16(cur, ref, cx, cy, dx, dy)
			best.Ops++
			if s < best.SAD || (s == best.SAD && absLess(dx, dy, best.MV)) {
				best.SAD = s
				best.MV = Vector{X: dx, Y: dy}
			}
		}
	}
	return best
}

// DiamondSearch runs the classic large/small diamond pattern from the
// zero vector, bounded by radius. It evaluates far fewer candidates than
// FullSearch at slightly worse SAD; the encoder uses it below the top
// quality levels.
func DiamondSearch(cur, ref *frame.Frame, cx, cy, radius int) Result {
	large := [...]Vector{{0, 0}, {2, 0}, {-2, 0}, {0, 2}, {0, -2}, {1, 1}, {1, -1}, {-1, 1}, {-1, -1}}
	small := [...]Vector{{0, 0}, {1, 0}, {-1, 0}, {0, 1}, {0, -1}}

	center := Vector{}
	best := Result{SAD: SAD16(cur, ref, cx, cy, 0, 0), Ops: 1}
	for {
		improved := false
		for _, d := range large[1:] {
			cand := Vector{center.X + d.X, center.Y + d.Y}
			if cand.X < -radius || cand.X > radius || cand.Y < -radius || cand.Y > radius {
				continue
			}
			s := SAD16(cur, ref, cx, cy, cand.X, cand.Y)
			best.Ops++
			if s < best.SAD {
				best.SAD = s
				best.MV = cand
				improved = true
			}
		}
		if !improved {
			break
		}
		center = best.MV
	}
	// Refinement with the small diamond.
	center = best.MV
	for _, d := range small[1:] {
		cand := Vector{center.X + d.X, center.Y + d.Y}
		if cand.X < -radius || cand.X > radius || cand.Y < -radius || cand.Y > radius {
			continue
		}
		s := SAD16(cur, ref, cx, cy, cand.X, cand.Y)
		best.Ops++
		if s < best.SAD {
			best.SAD = s
			best.MV = cand
		}
	}
	return best
}

// Estimate picks the search strategy for a quality level: diamond search
// below the two top levels, full search at the top (the expensive,
// high-quality path).
func Estimate(cur, ref *frame.Frame, cx, cy, q, levels int) Result {
	radius := RadiusForLevel(q, levels)
	if q >= levels-2 {
		return FullSearch(cur, ref, cx, cy, radius)
	}
	return DiamondSearch(cur, ref, cx, cy, radius)
}

func absLess(dx, dy int, than Vector) bool {
	return dx*dx+dy*dy < than.X*than.X+than.Y*than.Y
}
