package sim

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
)

func sinkTestRunner(seed int64, cycles int) (*core.System, Runner) {
	sys := core.RandomSystem(rand.New(rand.NewSource(seed)), core.RandomSystemConfig{Actions: 30, DeadlineEvery: 3})
	return sys, Runner{
		Sys:      sys,
		Mgr:      core.NewNumericManager(sys),
		Exec:     Content{Sys: sys, NoiseAmp: 0.3, Seed: uint64(seed)},
		Overhead: IPodOverhead,
		Cycles:   cycles,
	}
}

// TestTraceSinkSeesIdenticalRecords: the sink layer's contract — a sink
// observes the exact record sequence a retained run stores, and a run
// under a sink leaves Trace.Records empty while every scalar aggregate
// on the trace stays identical.
func TestTraceSinkSeesIdenticalRecords(t *testing.T) {
	_, retained := sinkTestRunner(3, 5)
	ref, err := retained.Run()
	if err != nil {
		t.Fatal(err)
	}

	_, sunk := sinkTestRunner(3, 5)
	sink := &TraceSink{}
	sunk.Sink = sink
	tr, err := sunk.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 0 {
		t.Fatalf("sink run retained %d records in the trace", len(tr.Records))
	}
	if !reflect.DeepEqual(sink.Records, ref.Records) {
		t.Fatal("TraceSink observed a different record sequence than the retained run stored")
	}
	tr.Records = ref.Records // scalar comparison: everything else must match
	if !reflect.DeepEqual(tr, ref) {
		t.Fatalf("scalar trace fields diverged between sink and retained runs:\n%+v\n%+v", tr, ref)
	}
}

// TestStatsSinkMatchesTraceScalars: the streaming aggregates must agree
// with the totals the executor maintains on the trace, and with a
// replay of the retained records.
func TestStatsSinkMatchesTraceScalars(t *testing.T) {
	sys, r := sinkTestRunner(7, 6)
	stats := NewStatsSink(sys.NumLevels())
	r.Sink = stats
	tr, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != sys.NumActions()*6 {
		t.Fatalf("observed %d records, want %d", stats.Records, sys.NumActions()*6)
	}
	if stats.Decisions != tr.Decisions || stats.Misses != tr.Misses {
		t.Fatalf("sink decisions/misses %d/%d, trace %d/%d",
			stats.Decisions, stats.Misses, tr.Decisions, tr.Misses)
	}
	if stats.TotalExec != tr.TotalExec || stats.TotalOverhead != tr.TotalOverhead {
		t.Fatal("sink exec/overhead totals diverge from the trace scalars")
	}

	_, retained := sinkTestRunner(7, 6)
	ref, err := retained.Run()
	if err != nil {
		t.Fatal(err)
	}
	replay := NewStatsSink(sys.NumLevels())
	for _, rec := range ref.Records {
		replay.Observe(rec)
	}
	if !reflect.DeepEqual(stats, replay) {
		t.Fatalf("streamed stats differ from replayed stats:\n%+v\n%+v", stats, replay)
	}
}

// TestStatsSinkEmpty pins the empty-stream conventions (min = max = 0).
func TestStatsSinkEmpty(t *testing.T) {
	s := NewStatsSink(4)
	if s.MinQuality() != 0 || s.MaxQuality() != 0 {
		t.Fatal("empty sink must report 0/0 quality extremes")
	}
	if len(s.QualityHist) != 0 {
		t.Fatal("empty sink must have an empty histogram")
	}
}

// TestStatsSinkStateRoundTrip: State followed by RestoreState must
// reproduce the sink exactly — including the private extremes and
// smoothness trackers — and splitting a record stream across a
// round-trip must end in the same accumulators as streaming it
// uninterrupted (the sink-level half of the checkpoint/resume
// guarantee).
func TestStatsSinkStateRoundTrip(t *testing.T) {
	sys, retained := sinkTestRunner(13, 4)
	ref, err := retained.Run()
	if err != nil {
		t.Fatal(err)
	}
	whole := NewStatsSink(sys.NumLevels())
	for _, rec := range ref.Records {
		whole.Observe(rec)
	}

	cut := len(ref.Records) / 3
	first := NewStatsSink(sys.NumLevels())
	for _, rec := range ref.Records[:cut] {
		first.Observe(rec)
	}
	st := first.State()
	if len(st.QualityHist) > 0 && &st.QualityHist[0] == &first.QualityHist[0] {
		t.Fatal("State must not alias the live histogram")
	}
	second := NewStatsSink(sys.NumLevels())
	second.RestoreState(st)
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("restored sink differs from the original:\n%+v\n%+v", first, second)
	}
	for _, rec := range ref.Records[cut:] {
		second.Observe(rec)
	}
	// Compare accumulators, re-backing the histogram: the split run's
	// window may live in a different array, but values must match.
	a, b := whole.State(), second.State()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("split-and-resumed sink diverged from the uninterrupted one:\n%+v\n%+v", a, b)
	}

	empty := NewStatsSink(2)
	var back StatsSink
	back.RestoreState(empty.State())
	if back.MinQuality() != 0 || back.MaxQuality() != 0 || back.Records != 0 {
		t.Fatal("empty-state round trip broke the empty-sink conventions")
	}
}

// TestStreamStepAllocationFree: the acceptance criterion of the sink
// layer — in steady state, advancing a stream under a StatsSink
// performs zero heap allocations per cycle.
func TestStreamStepAllocationFree(t *testing.T) {
	sys, r := sinkTestRunner(11, 1<<30)
	r.Sink = NewStatsSink(sys.NumLevels())
	st, err := r.Stream()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ { // warm up past any lazy growth
		st.Step()
	}
	if allocs := testing.AllocsPerRun(100, func() { st.Step() }); allocs != 0 {
		t.Fatalf("Stream.Step allocates %.1f objects per cycle under StatsSink, want 0", allocs)
	}
}

// TestTracePreallocationClamped: a long run must not pre-commit
// gigabytes of record storage before the first cycle executes.
func TestTracePreallocationClamped(t *testing.T) {
	_, r := sinkTestRunner(1, 1<<20) // 30 actions × 2^20 cycles ≫ clamp
	st, err := r.Stream()
	if err != nil {
		t.Fatal(err)
	}
	if c := cap(st.Trace().Records); c > maxInitialRecords {
		t.Fatalf("initial trace capacity %d exceeds the %d-record clamp", c, maxInitialRecords)
	}
	_, small := sinkTestRunner(1, 2)
	st2, err := small.Stream()
	if err != nil {
		t.Fatal(err)
	}
	if c := cap(st2.Trace().Records); c != 60 {
		t.Fatalf("short runs should still preallocate exactly n·Cycles (got %d)", c)
	}
}
