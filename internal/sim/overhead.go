package sim

import (
	"repro/internal/core"
)

// OverheadModel converts the abstract Work units of a Quality Manager
// decision into platform time charged to the clock. The paper's §4.2
// overhead comparison (5.7 % numeric, 1.9 % symbolic, <1.1 % relaxed)
// is entirely a function of this translation: the three managers take
// the same decisions but spend different Work, and each invocation also
// pays a fixed per-call price (on the iPod, dominated by reading the
// real-time clock and entering the manager).
type OverheadModel struct {
	// CallBase is charged once per manager invocation.
	CallBase core.Time
	// PerUnit is charged per Decision.Work unit.
	PerUnit core.Time
}

// Cost returns the time charged for a decision with the given work.
func (m OverheadModel) Cost(work int) core.Time {
	return m.CallBase + core.Time(work)*m.PerUnit
}

// IPodOverhead is the calibrated overhead model of the reproduction's
// synthetic iPod platform (see internal/profiler). The constants were
// fitted so that on the 1,189-action encoder with a ~1.03 s frame budget
// the numeric manager loses ≈5–6 % of the budget to management, the
// symbolic manager ≈2 %, and the relaxed manager ≈1 %, matching the
// relative figures of §4.2. CallBase models the iPod's expensive
// clock-read + call sequence; PerUnit models one table probe or one
// policy-evaluation loop iteration on a slow ARM core.
var IPodOverhead = OverheadModel{
	CallBase: 15 * core.Microsecond,
	PerUnit:  18 * core.Nanosecond,
}

// FreeOverhead charges nothing; used by tests isolating control
// decisions from platform cost.
var FreeOverhead = OverheadModel{}
