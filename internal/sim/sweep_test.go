package sim

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

func TestSweepMatchesSequentialRuns(t *testing.T) {
	sys := calmSystem(t, 80)
	mk := func(seed uint64) *Runner {
		return &Runner{Sys: sys, Mgr: core.NewNumericManager(sys),
			Exec: Uniform{Sys: sys, Seed: seed}, Overhead: FreeOverhead, Cycles: 2}
	}
	var points []SweepPoint
	for seed := uint64(0); seed < 16; seed++ {
		points = append(points, SweepPoint{Label: fmt.Sprintf("seed-%d", seed), Runner: mk(seed)})
	}
	results := Sweep(points)
	if len(results) != 16 {
		t.Fatalf("result count %d", len(results))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Label, r.Err)
		}
		if r.Label != fmt.Sprintf("seed-%d", i) {
			t.Fatalf("results out of order: %q at %d", r.Label, i)
		}
		// Each concurrent run must equal its sequential twin exactly.
		seq := mk(uint64(i)).MustRun()
		if r.Trace.Final != seq.Final || r.Trace.TotalExec != seq.TotalExec {
			t.Fatalf("%s: concurrent run diverged from sequential", r.Label)
		}
	}
}

func TestSweepPropagatesErrors(t *testing.T) {
	sys := calmSystem(t, 10)
	results := Sweep([]SweepPoint{
		{Label: "nil-runner"},
		{Label: "bad", Runner: &Runner{Sys: sys}},
		{Label: "good", Runner: &Runner{Sys: sys, Mgr: core.FixedManager{Level: 0},
			Exec: Average{Sys: sys}, Overhead: FreeOverhead, Cycles: 1}},
	})
	if results[0].Err == nil || results[1].Err == nil {
		t.Fatal("errors not propagated")
	}
	if results[2].Err != nil || results[2].Trace == nil {
		t.Fatal("valid point failed")
	}
}

func TestSweepEmpty(t *testing.T) {
	if got := Sweep(nil); len(got) != 0 {
		t.Fatal("empty sweep should return empty results")
	}
}
