package sim

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/regions"
)

func streamRunner(seed int64) *Runner {
	sys := randSys(seed, core.RandomSystemConfig{Actions: 40})
	tab := regions.BuildTDTable(sys)
	return &Runner{
		Sys:      sys,
		Mgr:      regions.NewSymbolicManager(tab),
		Exec:     Content{Sys: sys, NoiseAmp: 0.3, Seed: uint64(seed)},
		Overhead: IPodOverhead,
		Cycles:   6,
	}
}

func TestStreamStepMatchesRun(t *testing.T) {
	full := streamRunner(41).MustRun()
	st, err := streamRunner(41).Stream()
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for !st.Done() {
		if !st.Step() {
			t.Fatal("Step returned false before Done")
		}
		steps++
		if st.CyclesRun() != steps {
			t.Fatalf("CyclesRun = %d after %d steps", st.CyclesRun(), steps)
		}
		if st.Trace().Final != st.Clock() {
			t.Fatal("partial trace Final must track the stream clock")
		}
	}
	if steps != 6 {
		t.Fatalf("stream ran %d cycles, want 6", steps)
	}
	if st.Step() {
		t.Fatal("Step past the last cycle must be a no-op")
	}
	if !reflect.DeepEqual(st.Trace(), full) {
		t.Fatal("stepped trace differs from Run trace")
	}
}

func TestStreamPrefixIsShorterRun(t *testing.T) {
	st, err := streamRunner(42).Stream()
	if err != nil {
		t.Fatal(err)
	}
	st.Step()
	st.Step()
	short := streamRunner(42)
	short.Cycles = 2
	want := short.MustRun()
	if !reflect.DeepEqual(st.Trace(), want) {
		t.Fatal("2-step prefix trace differs from a 2-cycle run")
	}
}

func TestDispatchCoversAllIndices(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 3, 7, 64} {
		n := 53
		hits := make([]int, n)
		Dispatch(n, workers, func(i int) { hits[i]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
	Dispatch(0, 4, func(int) { t.Fatal("fn must not run for n=0") })
}

func TestSweepWorkersMatchesSweep(t *testing.T) {
	mk := func() []SweepPoint {
		return []SweepPoint{
			{Label: "a", Runner: streamRunner(7)},
			{Label: "b", Runner: streamRunner(8)},
			{Label: "bad"},
			{Label: "c", Runner: streamRunner(9)},
		}
	}
	base := Sweep(mk())
	for _, workers := range []int{1, 2, 8} {
		got := SweepWorkers(mk(), workers)
		if len(got) != len(base) {
			t.Fatal("result length mismatch")
		}
		for i := range got {
			if got[i].Label != base[i].Label {
				t.Fatalf("workers=%d: label order changed", workers)
			}
			if (got[i].Err == nil) != (base[i].Err == nil) {
				t.Fatalf("workers=%d: error mismatch at %q", workers, got[i].Label)
			}
			if got[i].Err != nil {
				continue
			}
			if !reflect.DeepEqual(got[i].Trace, base[i].Trace) {
				t.Fatalf("workers=%d: trace %q differs", workers, got[i].Label)
			}
		}
	}
}
