package sim

import (
	"math"

	"repro/internal/core"
)

// Sink observes the record stream of one quality-managed run. The
// executor calls Observe exactly once per action instance, in execution
// order, with the identical Record the retained trace would have stored
// — so any aggregate computed by a sink is trace-equivalent by
// construction. Implementations are not required to be goroutine-safe:
// a sink belongs to exactly one stream.
type Sink interface {
	// Observe receives one record by value; it must not retain pointers
	// into the caller's state.
	Observe(rec Record)
}

// TraceSink retains every record — the full-retention behaviour the
// default Runner path has always had, expressed as a sink. Memory grows
// as cycles × actions; use StatsSink when only aggregates are needed.
type TraceSink struct {
	Records []Record
}

// Observe implements Sink.
func (s *TraceSink) Observe(rec Record) { s.Records = append(s.Records, rec) }

// StatsSink computes, on-line, every record-derived quantity the metrics
// layer needs — quality histogram/sum/extremes, smoothness, deadline and
// decision counts, exec and overhead totals — without retaining records:
// its memory is O(|Q|), constant in the run length. Observe never
// allocates once the histogram has reached its preallocated level count,
// which makes the steady-state fleet hot path allocation-free (proved by
// BenchmarkFleetStep).
//
// The accumulators mirror metrics.Summarize/AggregateTraces exactly:
// quality levels are small integers, so the float64 sums are exact and a
// stats-based summary is byte-equal to one computed from a retained
// trace (property-tested in the metrics package).
type StatsSink struct {
	// Records counts observed action instances; Decisions those with a
	// manager invocation; Misses the deadline violations;
	// DeadlineRecords the deadline-carrying instances.
	Records, Decisions, Misses, DeadlineRecords int
	// TotalExec and TotalOverhead accumulate the per-record execution
	// and management times.
	TotalExec, TotalOverhead core.Time
	// QualitySum is the sum of quality levels over all records;
	// QualityHist counts records per level (length = 1 + highest level
	// observed, matching the lazily-grown fleet histogram).
	QualitySum  float64
	QualityHist []int
	// Switches and AbsDeltaSum are the smoothness accumulators: the
	// number of quality changes between consecutive records and the sum
	// of their absolute differences.
	Switches    int
	AbsDeltaSum float64

	minQ, maxQ int
	lastQ      core.Level
}

// NewStatsSink returns an empty sink. levels preallocates the quality
// histogram (pass the system's level count to keep Observe
// allocation-free; 0 is valid and grows on demand).
func NewStatsSink(levels int) *StatsSink {
	s := new(StatsSink)
	s.Init(make([]int, 0, levels))
	return s
}

// Init (re)initialises s as an empty sink whose quality histogram grows
// into hist's backing array — the fleet's struct-of-arrays table hands
// every stream's sink a full-capacity window of one shared slab, so the
// accumulators of all streams stay contiguous. hist's capacity bounds
// the allocation-free level range; pass a three-index slice of the slab
// so an overflowing append reallocates instead of growing into a
// neighbouring stream's window.
func (s *StatsSink) Init(hist []int) {
	*s = StatsSink{
		QualityHist: hist[:0],
		minQ:        math.MaxInt32,
		maxQ:        -1,
	}
}

// Observe implements Sink.
//
//detlint:hotpath
func (s *StatsSink) Observe(rec Record) {
	q := int(rec.Q)
	if s.Records > 0 {
		if d := q - int(s.lastQ); d != 0 {
			s.Switches++
			s.AbsDeltaSum += math.Abs(float64(d))
		}
	}
	s.lastQ = rec.Q
	s.Records++
	s.QualitySum += float64(q)
	if q < s.minQ {
		s.minQ = q
	}
	if q > s.maxQ {
		s.maxQ = q
	}
	for len(s.QualityHist) <= q {
		//detlint:allow hotpathalloc bounded by the level count and amortized by Init's preallocated window
		s.QualityHist = append(s.QualityHist, 0)
	}
	s.QualityHist[q]++
	if rec.Decision {
		s.Decisions++
	}
	if rec.Missed {
		s.Misses++
	}
	if !rec.Deadline.IsInf() {
		s.DeadlineRecords++
	}
	s.TotalExec += rec.Exec
	s.TotalOverhead += rec.Overhead
}

// TeeSink fans one record stream out to several sinks, in order: the
// way qmfleet feeds a stream's records to both its StatsSink and a
// streaming exporter without running the stream twice.
type TeeSink []Sink

// Observe implements Sink.
func (t TeeSink) Observe(rec Record) {
	for _, s := range t {
		s.Observe(rec)
	}
}

// SinkState is the serializable form of a StatsSink: every accumulator,
// including the private smoothness and extreme trackers, as plain
// exported fields. It is what a checkpoint stores for a mid-run stream —
// State followed by RestoreState reproduces the sink exactly, so a
// resumed stream's aggregates continue bit-for-bit from where the
// snapshot cut (the sink-level half of the sim.Stream prefix property).
type SinkState struct {
	Records, Decisions, Misses, DeadlineRecords int
	TotalExec, TotalOverhead                    core.Time
	QualitySum                                  float64
	QualityHist                                 []int
	Switches                                    int
	AbsDeltaSum                                 float64
	MinQ, MaxQ                                  int
	LastQ                                       core.Level
}

// State exports the sink's full accumulator state. The histogram is
// copied, so the state does not alias the live sink.
func (s *StatsSink) State() SinkState {
	return SinkState{
		Records: s.Records, Decisions: s.Decisions, Misses: s.Misses,
		DeadlineRecords: s.DeadlineRecords,
		TotalExec:       s.TotalExec, TotalOverhead: s.TotalOverhead,
		QualitySum:  s.QualitySum,
		QualityHist: append([]int(nil), s.QualityHist...),
		Switches:    s.Switches, AbsDeltaSum: s.AbsDeltaSum,
		MinQ: s.minQ, MaxQ: s.maxQ, LastQ: s.lastQ,
	}
}

// RestoreState overwrites the sink with a previously exported state. The
// histogram values are copied into the sink's existing QualityHist
// backing array when its capacity allows (the fleet table's slab
// window), so restoring into a freshly Init-ed slot sink allocates only
// when the window is too narrow.
func (s *StatsSink) RestoreState(st SinkState) {
	hist := s.QualityHist
	if cap(hist) >= len(st.QualityHist) {
		hist = hist[:len(st.QualityHist)]
		copy(hist, st.QualityHist)
	} else {
		hist = append([]int(nil), st.QualityHist...)
	}
	*s = StatsSink{
		Records: st.Records, Decisions: st.Decisions, Misses: st.Misses,
		DeadlineRecords: st.DeadlineRecords,
		TotalExec:       st.TotalExec, TotalOverhead: st.TotalOverhead,
		QualitySum:  st.QualitySum,
		QualityHist: hist,
		Switches:    st.Switches, AbsDeltaSum: st.AbsDeltaSum,
		minQ: st.MinQ, maxQ: st.MaxQ, lastQ: st.LastQ,
	}
}

// MinQuality returns the lowest observed level (0 when no records have
// been observed, matching the retained-trace summary convention).
func (s *StatsSink) MinQuality() core.Level {
	if s.Records == 0 {
		return 0
	}
	return core.Level(s.minQ)
}

// MaxQuality returns the highest observed level (0 when empty).
func (s *StatsSink) MaxQuality() core.Level {
	if s.Records == 0 {
		return 0
	}
	return core.Level(s.maxQ)
}
