package sim

import (
	"io"
	"strconv"
	"sync"
	"sync/atomic"
)

// csvHeader matches metrics.WriteTraceCSV's columns with a leading
// stream column, so fleet exports from many streams concatenate into
// one analysable table.
const csvHeader = "stream,cycle,index,quality,start_ns,exec_ns,overhead_ns,decision,steps,deadline_ns,missed\n"

// CSVWriter streams fleet records to one io.Writer as CSV with zero
// retention: every record is formatted and written as it is observed,
// so exporting a run costs O(1) memory however long the streams are.
// One CSVWriter serves a whole fleet — Stream hands out one CSVSink per
// stream, each formatting rows into its own scratch buffer and pushing
// them through the writer under a shared mutex, one Write per row.
// Rows of one stream appear in execution order; rows of different
// streams interleave in worker execution order (sort on the stream,
// cycle and index columns to reconstruct any global order).
type CSVWriter struct {
	mu     sync.Mutex
	w      io.Writer
	err    error
	failed atomic.Bool // mirrors err != nil; lock-free fast path for sinks
	header bool
}

// NewCSVWriter wraps w for CSV record export. The header row is written
// lazily before the first record. Wrap files in a bufio.Writer and
// flush it after the run; CSVWriter itself buffers nothing.
func NewCSVWriter(w io.Writer) *CSVWriter {
	return &CSVWriter{w: w}
}

// Err returns the first write error, if any; once a write has failed
// all subsequent rows are dropped. Check it after the run — Observe has
// no error channel.
func (cw *CSVWriter) Err() error {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	return cw.err
}

// Stream returns the sink that exports one stream's records under the
// given stream label. The sink belongs to exactly one stream; distinct
// sinks of the same writer are safe to use concurrently.
func (cw *CSVWriter) Stream(name string) *CSVSink {
	return &CSVSink{cw: cw, name: name, buf: make([]byte, 0, 128+len(name))}
}

// write pushes one formatted row (or the header) through the shared
// writer, keeping the first error sticky.
func (cw *CSVWriter) write(row []byte) {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	if cw.err != nil {
		return
	}
	if !cw.header {
		cw.header = true
		if _, err := io.WriteString(cw.w, csvHeader); err != nil {
			cw.err = err
			cw.failed.Store(true)
			return
		}
	}
	if _, err := cw.w.Write(row); err != nil {
		cw.err = err
		cw.failed.Store(true)
	}
}

// CSVSink exports one stream's records through its CSVWriter. It
// retains nothing: each Observe formats the record into a reused
// scratch buffer and hands it to the writer, so the steady-state export
// path is allocation-free.
type CSVSink struct {
	cw   *CSVWriter
	name string
	buf  []byte
}

// Observe implements Sink.
func (s *CSVSink) Observe(rec Record) {
	if s.cw.failed.Load() {
		return // writer latched an error; skip the dead formatting work
	}
	b := s.buf[:0]
	b = append(b, s.name...)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(rec.Cycle), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(rec.Index), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(rec.Q), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(rec.Start), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(rec.Exec), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(rec.Overhead), 10)
	b = append(b, ',')
	b = strconv.AppendBool(b, rec.Decision)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(rec.Steps), 10)
	b = append(b, ',')
	deadline := int64(-1)
	if !rec.Deadline.IsInf() {
		deadline = int64(rec.Deadline)
	}
	b = strconv.AppendInt(b, deadline, 10)
	b = append(b, ',')
	b = strconv.AppendBool(b, rec.Missed)
	b = append(b, '\n')
	s.buf = b
	s.cw.write(b)
}
