package sim

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/regions"
)

func randSys(seed int64, cfg core.RandomSystemConfig) *core.System {
	return core.RandomSystem(rand.New(rand.NewSource(seed)), cfg)
}

func TestExecModelsBoundedByWC(t *testing.T) {
	sys := randSys(1, core.RandomSystemConfig{Actions: 30})
	models := []ExecModel{
		WorstCase{Sys: sys},
		Average{Sys: sys},
		Uniform{Sys: sys, Seed: 7},
		Content{Sys: sys, NoiseAmp: 0.5, Seed: 9,
			FrameFactor:  func(c int) float64 { return 1 + 0.4*float64(c%3) },
			ActionFactor: func(i int) float64 { return 1 + 0.2*float64(i%5) }},
	}
	for _, m := range models {
		for c := 0; c < 5; c++ {
			for i := 0; i < sys.NumActions(); i++ {
				for q := core.Level(0); q <= sys.QMax(); q++ {
					v := m.Actual(c, i, q)
					if v < 0 || v > sys.WC(i, q) {
						t.Fatalf("%T: Actual(%d,%d,%v) = %v outside [0, %v]", m, c, i, q, v, sys.WC(i, q))
					}
				}
			}
		}
	}
}

func TestExecModelsDeterministic(t *testing.T) {
	sys := randSys(2, core.RandomSystemConfig{})
	m1 := Uniform{Sys: sys, Seed: 11}
	m2 := Uniform{Sys: sys, Seed: 11}
	m3 := Uniform{Sys: sys, Seed: 12}
	diff := false
	for i := 0; i < sys.NumActions(); i++ {
		if m1.Actual(3, i, 1) != m2.Actual(3, i, 1) {
			t.Fatal("same seed must give same draw")
		}
		if m1.Actual(3, i, 1) != m3.Actual(3, i, 1) {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds should give different draws")
	}
}

func TestHashUnitRange(t *testing.T) {
	for a := uint64(0); a < 100; a++ {
		for b := uint64(0); b < 20; b++ {
			u := HashUnit(42, a, b)
			if u < 0 || u >= 1 {
				t.Fatalf("HashUnit out of range: %v", u)
			}
		}
	}
}

func TestOverheadModelCost(t *testing.T) {
	m := OverheadModel{CallBase: 10 * core.Microsecond, PerUnit: 5 * core.Nanosecond}
	if got := m.Cost(100); got != 10*core.Microsecond+500*core.Nanosecond {
		t.Fatalf("Cost(100) = %v", got)
	}
	if FreeOverhead.Cost(1000) != 0 {
		t.Fatal("FreeOverhead must charge nothing")
	}
}

func TestRunnerValidation(t *testing.T) {
	sys := randSys(3, core.RandomSystemConfig{})
	if _, err := (&Runner{}).Run(); err == nil {
		t.Error("empty runner accepted")
	}
	r := &Runner{Sys: sys, Mgr: core.NewNumericManager(sys), Exec: Average{Sys: sys}}
	if _, err := r.Run(); err == nil {
		t.Error("zero cycles accepted")
	}
	r.Cycles = 1
	if _, err := r.Run(); err != nil {
		t.Errorf("valid runner rejected: %v", err)
	}
}

// TestSafetyProperty is invariant #1 of DESIGN.md §5: on feasible random
// systems, the mixed-policy managers never miss a deadline, for any
// execution model bounded by Cwc — including the adversarial worst case —
// across single and multi-cycle runs.
func TestSafetyProperty(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		sys := randSys(seed, core.RandomSystemConfig{Actions: 35, DeadlineEvery: 8})
		tab := regions.BuildTDTable(sys)
		rt := regions.MustBuildRelaxTables(tab, []int{1, 4, 9})
		managers := []core.Manager{
			core.NewNumericManager(sys),
			core.NewSafeManager(sys),
			regions.NewSymbolicManager(tab),
			regions.NewRelaxedManager(rt),
		}
		execs := []ExecModel{
			WorstCase{Sys: sys},
			Uniform{Sys: sys, Seed: uint64(seed)},
			Content{Sys: sys, NoiseAmp: 0.9, Seed: uint64(seed),
				FrameFactor: func(c int) float64 { return 1.5 }},
		}
		for _, m := range managers {
			for _, e := range execs {
				trc := (&Runner{Sys: sys, Mgr: m, Exec: e, Overhead: FreeOverhead, Cycles: 3}).MustRun()
				if trc.Misses != 0 {
					t.Fatalf("seed %d: manager %s missed %d deadlines under %T", seed, m.Name(), trc.Misses, e)
				}
			}
		}
	}
}

func TestFixedQmaxCanMissButQminCannot(t *testing.T) {
	// Sanity check of the harness itself: an open-loop qmax controller
	// must be able to violate deadlines on a tight system, while
	// open-loop qmin never can (feasibility).
	missedSomewhere := false
	for seed := int64(0); seed < 30; seed++ {
		sys := randSys(seed, core.RandomSystemConfig{Actions: 30, DeadlineEvery: 6, SlackNum: 5, SlackDen: 4})
		qmax := (&Runner{Sys: sys, Mgr: core.FixedManager{Level: sys.QMax()}, Exec: WorstCase{Sys: sys},
			Overhead: FreeOverhead, Cycles: 1}).MustRun()
		if qmax.Misses > 0 {
			missedSomewhere = true
		}
		qmin := (&Runner{Sys: sys, Mgr: core.FixedManager{Level: 0}, Exec: WorstCase{Sys: sys},
			Overhead: FreeOverhead, Cycles: 2}).MustRun()
		if qmin.Misses != 0 {
			t.Fatalf("seed %d: qmin missed a deadline on a feasible system", seed)
		}
	}
	if !missedSomewhere {
		t.Fatal("qmax never missed on tight systems; harness cannot distinguish safety")
	}
}

func TestTraceAccounting(t *testing.T) {
	sys := randSys(10, core.RandomSystemConfig{Actions: 20, DeadlineEvery: 5})
	oh := OverheadModel{CallBase: core.Microsecond, PerUnit: core.Nanosecond}
	trc := (&Runner{Sys: sys, Mgr: core.NewNumericManager(sys), Exec: Average{Sys: sys},
		Overhead: oh, Cycles: 3}).MustRun()

	if len(trc.Records) != 60 {
		t.Fatalf("record count %d", len(trc.Records))
	}
	var exec, over core.Time
	decisions := 0
	for _, rec := range trc.Records {
		exec += rec.Exec
		over += rec.Overhead
		if rec.Decision {
			decisions++
			if rec.Overhead < oh.CallBase {
				t.Fatal("decision record missing call base cost")
			}
		} else if rec.Overhead != 0 {
			t.Fatal("non-decision record charged overhead")
		}
	}
	if exec != trc.TotalExec || over != trc.TotalOverhead || decisions != trc.Decisions {
		t.Fatalf("totals disagree with records: %v/%v %v/%v %d/%d",
			exec, trc.TotalExec, over, trc.TotalOverhead, decisions, trc.Decisions)
	}
	// Numeric manager decides before every action.
	if decisions != 60 {
		t.Fatalf("numeric manager made %d decisions, want 60", decisions)
	}
	if trc.Final < trc.TotalExec+trc.TotalOverhead {
		t.Fatal("final clock below busy time")
	}
	if f := trc.OverheadFraction(); f <= 0 || f >= 1 {
		t.Fatalf("overhead fraction %v out of (0,1)", f)
	}
}

func TestRelaxedManagerReducesDecisions(t *testing.T) {
	sys := calmSystem(t, 200)
	tab := regions.BuildTDTable(sys)
	rt := regions.MustBuildRelaxTables(tab, []int{1, 10, 20, 40})
	run := func(m core.Manager) *Trace {
		return (&Runner{Sys: sys, Mgr: m, Exec: Average{Sys: sys},
			Overhead: FreeOverhead, Cycles: 2}).MustRun()
	}
	sym := run(regions.NewSymbolicManager(tab))
	rel := run(regions.NewRelaxedManager(rt))
	if rel.Decisions >= sym.Decisions {
		t.Fatalf("relaxation did not reduce decisions: %d vs %d", rel.Decisions, sym.Decisions)
	}
	if rel.Decisions > sym.Decisions/4 {
		t.Fatalf("relaxation too weak on calm system: %d of %d", rel.Decisions, sym.Decisions)
	}
	// Decisions differ but quality sequences must not.
	for j := range sym.Records {
		if sym.Records[j].Q != rel.Records[j].Q {
			t.Fatalf("quality diverged at record %d", j)
		}
	}
}

func TestPeriodicArrivalIdle(t *testing.T) {
	// A short cycle with a long period must produce idle time, and
	// cycle c must never start before c·Period.
	sys := calmSystem(t, 10)
	period := 4 * sys.LastDeadline()
	trc := (&Runner{Sys: sys, Mgr: core.FixedManager{Level: 0}, Exec: Average{Sys: sys},
		Overhead: FreeOverhead, Cycles: 3, Period: period}).MustRun()
	if trc.TotalIdle == 0 {
		t.Fatal("expected idle time with sparse arrivals")
	}
	for _, rec := range trc.Records {
		if rec.Start < core.Time(rec.Cycle)*period {
			t.Fatalf("cycle %d started early at %v", rec.Cycle, rec.Start)
		}
	}
	// Work-conserving mode removes the idle time.
	wc := (&Runner{Sys: sys, Mgr: core.FixedManager{Level: 0}, Exec: Average{Sys: sys},
		Overhead: FreeOverhead, Cycles: 3, Period: period, WorkConserving: true}).MustRun()
	if wc.TotalIdle != 0 {
		t.Fatal("work-conserving run must not idle")
	}
	if wc.Final >= trc.Final {
		t.Fatal("work-conserving run should finish earlier")
	}
}

func TestRecordHelpers(t *testing.T) {
	r := Record{Cycle: 2, Start: 250 * core.Microsecond, Exec: 10 * core.Microsecond}
	if r.End() != 260*core.Microsecond {
		t.Fatalf("End = %v", r.End())
	}
	if r.RelStart(100*core.Microsecond) != 50*core.Microsecond {
		t.Fatalf("RelStart = %v", r.RelStart(100*core.Microsecond))
	}
}

// calmSystem builds a uniform, generously budgeted system on which
// relaxation should be very effective.
func calmSystem(t *testing.T, n int) *core.System {
	t.Helper()
	tt := core.NewTimingTable(n, 4)
	for i := 0; i < n; i++ {
		for q := 0; q < 4; q++ {
			av := core.Time(10+3*q) * core.Microsecond
			tt.Set(i, core.Level(q), av, av*3/2)
		}
	}
	actions := make([]core.Action, n)
	for i := range actions {
		actions[i] = core.Action{Deadline: core.TimeInf}
	}
	actions[n-1].Deadline = core.Time(n) * 25 * core.Microsecond
	sys := core.MustNewSystem(actions, tt)
	if err := sys.Feasible(); err != nil {
		t.Fatalf("calm system infeasible: %v", err)
	}
	return sys
}
