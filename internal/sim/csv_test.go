package sim

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// TestCSVSinkMatchesTraceCSV: a stream exported through a CSVSink must
// produce exactly the rows of the retained trace's CSV dump (modulo the
// leading stream column) — the sink is a zero-retention transport, not
// a different format.
func TestCSVSinkMatchesTraceCSV(t *testing.T) {
	full := streamRunner(51).MustRun()

	var buf bytes.Buffer
	cw := NewCSVWriter(&buf)
	r := streamRunner(51)
	r.Sink = cw.Stream("s0")
	tr, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := cw.Err(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 0 {
		t.Fatalf("CSV export retained %d records", len(tr.Records))
	}

	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != len(full.Records)+1 {
		t.Fatalf("exported %d lines, want %d records + header", len(lines), len(full.Records))
	}
	if lines[0] != strings.TrimRight(csvHeader, "\n") {
		t.Fatalf("header = %q", lines[0])
	}
	for k, rec := range full.Records {
		deadline := int64(-1)
		if !rec.Deadline.IsInf() {
			deadline = int64(rec.Deadline)
		}
		// Independent fmt-based rendering of the metrics.WriteTraceCSV
		// row shape, with the stream column prefixed.
		want := fmt.Sprintf("s0,%d,%d,%d,%d,%d,%d,%t,%d,%d,%t",
			rec.Cycle, rec.Index, int(rec.Q), int64(rec.Start), int64(rec.Exec),
			int64(rec.Overhead), rec.Decision, rec.Steps, deadline, rec.Missed)
		if lines[k+1] != want {
			t.Fatalf("row %d = %q, want %q", k, lines[k+1], want)
		}
	}
}

// TestCSVSinkObserveAllocationFree: the steady-state export path must
// not allocate, or -csv would break the fleet's allocation-free hot
// path.
func TestCSVSinkObserveAllocationFree(t *testing.T) {
	var buf bytes.Buffer
	buf.Grow(1 << 20)
	s := NewCSVWriter(&buf).Stream("stream-000")
	rec := Record{Cycle: 3, Index: 41, Q: 5, Start: 123456, Exec: 9999, Overhead: 17,
		Decision: true, Steps: 10, Deadline: 4567890, Missed: false}
	s.Observe(rec) // warm the scratch buffer and header
	avg := testing.AllocsPerRun(500, func() { s.Observe(rec) })
	if avg != 0 {
		t.Fatalf("CSVSink.Observe allocates %v/op, want 0", avg)
	}
}

// TestCSVWriterStickyError: the first write failure is retained and all
// later rows are dropped instead of panicking mid-fleet.
func TestCSVWriterStickyError(t *testing.T) {
	cw := NewCSVWriter(failWriter{})
	s := cw.Stream("x")
	s.Observe(Record{})
	s.Observe(Record{})
	if cw.Err() == nil {
		t.Fatal("write error must be sticky and visible")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

// TestTeeSink: every sink sees every record, in order.
func TestTeeSink(t *testing.T) {
	a := &TraceSink{}
	b := NewStatsSink(4)
	tee := TeeSink{a, b}
	recs := []Record{{Q: 1}, {Q: 3, Missed: true, Decision: true}, {Q: 0}}
	for _, r := range recs {
		tee.Observe(r)
	}
	if len(a.Records) != 3 || b.Records != 3 || b.Misses != 1 || b.Decisions != 1 {
		t.Fatalf("tee fanned out incorrectly: %d trace records, stats %+v", len(a.Records), b)
	}
}

// TestInitStreamOnSlabs: a stream initialised onto caller-owned State
// and Trace cells (the fleet table shape) runs identically to a
// self-contained stream, and actually mutates the provided cells.
func TestInitStreamOnSlabs(t *testing.T) {
	want := streamRunner(77).MustRun()

	states := make([]State, 3)
	traces := make([]Trace, 3)
	streams := make([]Stream, 3)
	r := streamRunner(77)
	if err := r.InitStream(&streams[1], &states[1], &traces[1]); err != nil {
		t.Fatal(err)
	}
	for streams[1].Step() {
	}
	if states[1].Cycle != r.Cycles || states[1].T != want.Final {
		t.Fatalf("slab state not driven: %+v, want cycle %d final %v", states[1], r.Cycles, want.Final)
	}
	got := traces[1]
	if got.Final != want.Final || got.Misses != want.Misses || got.TotalExec != want.TotalExec ||
		got.Decisions != want.Decisions || len(got.Records) != len(want.Records) {
		t.Fatalf("slab trace diverges from self-contained run")
	}
	if states[0] != (State{}) || states[2] != (State{}) {
		t.Fatal("neighbouring state cells must stay untouched")
	}

	// StatsSink on a shared histogram slab: accumulators must land in
	// the slab window, not a private array.
	hist := make([]int, 8)
	var sink StatsSink
	sink.Init(hist[2:2:6])
	sink.Observe(Record{Q: 3})
	if hist[5] != 1 {
		t.Fatalf("slab-backed histogram not updated in place: %v", hist)
	}
}
