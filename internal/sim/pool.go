package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Dispatch runs fn(i) for every i in [0, n) on a pool of `workers`
// goroutines. Work is sharded at index granularity: each index is
// claimed by exactly one worker (an atomic dispenser, so load balances
// even when costs are skewed) and runs start-to-finish on that worker.
// The units must be independent — fn(i) writes only state owned by
// index i — and then the outcome is a pure function of the inputs:
// worker count and claiming order change wall-clock time, never
// results. workers ≤ 0 selects GOMAXPROCS. Dispatch returns when every
// call has finished.
//
// This is the one concurrency primitive of the simulation layer: the
// parameter sweep, the fleet engine and the multitask group runner all
// parallelise through it, and each dispatched unit stays a serial
// simulation.
func Dispatch(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = EffectiveWorkers(n, workers)
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// EffectiveWorkers resolves a requested worker count to the pool size
// Dispatch actually uses for n units: GOMAXPROCS when workers ≤ 0,
// capped at n. Callers reporting a run's configuration should print
// this, not the raw request.
func EffectiveWorkers(n, workers int) int {
	if workers <= 0 {
		workers = maxWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

func maxWorkers() int {
	p := runtime.GOMAXPROCS(0)
	if p < 1 {
		return 1
	}
	return p
}
