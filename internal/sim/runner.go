package sim

import (
	"errors"
	"fmt"

	"repro/internal/core"
)

// Record describes the execution of one action instance.
type Record struct {
	// Cycle and Index locate the action instance (cycle = frame number
	// for the encoder workload).
	Cycle, Index int
	// Q is the quality level the action ran at.
	Q core.Level
	// Start is the absolute clock value when the action began (after
	// any quality-management overhead charged ahead of it).
	Start core.Time
	// Exec is the actual execution time of the action.
	Exec core.Time
	// Overhead is the quality-management time charged immediately
	// before this action (zero when the manager was skipped under
	// control relaxation).
	Overhead core.Time
	// Decision reports whether the manager ran before this action.
	Decision bool
	// Steps is the relaxation grant returned by that decision (0 when
	// Decision is false).
	Steps int
	// Deadline is the absolute deadline of this action instance, or
	// TimeInf when the action carries none.
	Deadline core.Time
	// Missed reports a deadline violation by this action instance.
	Missed bool
}

// End returns the absolute completion time of the record's action.
func (r Record) End() core.Time { return r.Start + r.Exec }

// RelStart returns the cycle-relative start time, given the period.
func (r Record) RelStart(period core.Time) core.Time {
	return r.Start - core.Time(r.Cycle)*period
}

// Trace is the full execution record of a controlled run.
type Trace struct {
	Manager       string
	Period        core.Time
	Cycles        int
	Records       []Record
	Final         core.Time // clock at the end of the run
	TotalExec     core.Time // time spent in application actions
	TotalOverhead core.Time // time spent in quality management
	TotalIdle     core.Time // time spent waiting for cycle arrivals
	Decisions     int       // number of manager invocations
	Misses        int       // number of deadline violations
}

// OverheadFraction returns management overhead as a fraction of the
// total busy time (exec + overhead), the §4.2 metric.
func (tr *Trace) OverheadFraction() float64 {
	busy := tr.TotalExec + tr.TotalOverhead
	if busy == 0 {
		return 0
	}
	return float64(tr.TotalOverhead) / float64(busy)
}

// Runner executes a parameterized system cyclically under a Quality
// Manager on the simulated platform.
type Runner struct {
	Sys      *core.System
	Mgr      core.Manager
	Exec     ExecModel
	Overhead OverheadModel
	// Cycles is the number of cycles (frames) to execute.
	Cycles int
	// Period is the cycle arrival period; each cycle c becomes ready at
	// absolute time c·Period and its in-table deadlines are offset by
	// the same amount. Zero selects the system's last deadline.
	Period core.Time
	// WorkConserving lets a cycle start before its arrival instant
	// (batch mode). Off by default: streaming frames are not available
	// early, which matches the encoder experiment.
	WorkConserving bool
	// Sink, when non-nil, receives every Record instead of the trace
	// retaining it: Trace.Records stays empty, the trace carries only
	// its O(1) scalar aggregates, and the stream's memory no longer
	// grows with cycles × actions. Nil keeps the historical
	// full-retention behaviour (equivalent to a TraceSink feeding
	// Trace.Records). The sink sees the identical record sequence
	// either way.
	Sink Sink
}

// Run executes the configured workload and returns its trace. It is the
// batch form of the Stream API: Run drives a Stream to completion, so a
// serial run and a fleet stream share one execution path — their traces
// are identical by construction, not by careful duplication.
func (r *Runner) Run() (*Trace, error) {
	st, err := r.Stream()
	if err != nil {
		return nil, err
	}
	for st.Step() {
	}
	return st.Trace(), nil
}

// State is the hot mutable scalar state of one Stream: the virtual
// clock and the executed-cycle count — everything Step reads and writes
// besides the trace aggregates. It is split out of Stream so a fleet
// engine can keep the states of many streams in one contiguous
// struct-of-arrays slab (see fleet.StreamTable) and a worker sweeping
// its shard stays in cache instead of pointer-chasing heap objects; a
// stand-alone Stream simply embeds its own.
type State struct {
	// T is the stream's virtual clock.
	T core.Time
	// Cycle counts the cycles executed so far.
	Cycle int
}

// Stream is the incremental form of Runner: one quality-managed stream
// advanced cycle by cycle. Its mutable simulation state (State, Trace)
// lives behind pointers that InitStream can aim at caller-owned slabs,
// so a fleet engine holds many streams as contiguous arrays and
// advances each on its own schedule without the streams interacting.
// A Stream must not be copied after initialisation.
type Stream struct {
	r      *Runner
	period core.Time
	n      int
	tr     *Trace
	sink   Sink   // nil = retain records in tr
	state  *State // points at own for stand-alone streams
	own    State
}

// maxInitialRecords caps the retained trace's preallocation: a long run
// (n·Cycles in the millions) must not pre-commit gigabytes before a
// single cycle executes. Beyond the cap the slice grows geometrically
// as usual. 65,536 records ≈ 6 MB.
const maxInitialRecords = 1 << 16

// Stream validates the runner's configuration and returns the stream
// positioned before its first cycle, with self-owned state and trace.
func (r *Runner) Stream() (*Stream, error) {
	st := new(Stream)
	if err := r.InitStream(st, nil, nil); err != nil {
		return nil, err
	}
	return st, nil
}

// ResolvedPeriod returns the cycle period the stream will run with:
// Period, defaulted to the system's last deadline when it is 0 — the
// single defaulting rule shared by Validate, InitStream, the fleet's
// admission weighting and the qmfleet reference period.
func (r *Runner) ResolvedPeriod() core.Time {
	if r.Period != 0 || r.Sys == nil {
		return r.Period
	}
	return r.Sys.LastDeadline()
}

// Validate reports the configuration error InitStream would return,
// without touching any stream state — the single source of truth for
// bind-time rejection, so callers that must predict it (the open
// fleet's budget accounting) cannot desynchronize from InitStream.
func (r *Runner) Validate() error {
	if r.Sys == nil || r.Mgr == nil || r.Exec == nil {
		return errors.New("sim: runner needs Sys, Mgr and Exec")
	}
	if r.Cycles <= 0 {
		return fmt.Errorf("sim: non-positive cycle count %d", r.Cycles)
	}
	if p := r.ResolvedPeriod(); p <= 0 {
		return fmt.Errorf("sim: non-positive period %v", p)
	}
	return nil
}

// InitStream initialises st in place as a stream of r positioned before
// its first cycle. state and tr, when non-nil, become the stream's
// mutable scalar state and trace — the fleet engine passes pointers
// into its contiguous slabs, so the per-stream hot state is
// struct-of-arrays instead of per-stream heap objects. Nil selects
// self-owned storage (state embedded in st, trace freshly allocated),
// which is what Stream does. Provided cells are reset; st must stay at
// a stable address afterwards.
func (r *Runner) InitStream(st *Stream, state *State, tr *Trace) error {
	if err := r.Validate(); err != nil {
		return err
	}
	period := r.ResolvedPeriod()
	if tr == nil {
		tr = new(Trace)
	}
	*st = Stream{
		r:      r,
		period: period,
		n:      r.Sys.NumActions(),
		sink:   r.Sink,
		tr:     tr,
		state:  state,
	}
	if st.state == nil {
		st.state = &st.own
	}
	*st.state = State{}
	*tr = Trace{
		Manager: r.Mgr.Name(),
		Period:  period,
	}
	if st.sink == nil {
		c := st.n * r.Cycles
		if c > maxInitialRecords {
			c = maxInitialRecords
		}
		tr.Records = make([]Record, 0, c)
	}
	return nil
}

// observe hands one record to the stream's sink, or retains it in the
// trace when no sink is configured (the historical default).
func (st *Stream) observe(rec Record) {
	if st.sink != nil {
		st.sink.Observe(rec)
		return
	}
	st.tr.Records = append(st.tr.Records, rec)
}

// Step executes the stream's next cycle and reports whether it ran one
// (false once all cycles have completed). After every step the trace is
// a valid prefix run — Final tracks the current clock and Cycles the
// cycles executed so far — so a k-step trace equals a k-cycle Run.
//
//detlint:hotpath
func (st *Stream) Step() bool {
	if st.state.Cycle >= st.r.Cycles {
		return false
	}
	c := st.state.Cycle
	tr := st.tr
	t := st.state.T
	base := core.Time(c) * st.period
	if !st.r.WorkConserving && t < base {
		tr.TotalIdle += base - t
		t = base
	}
	pending := 0
	var curQ core.Level
	for i := 0; i < st.n; i++ {
		rec := Record{Cycle: c, Index: i, Deadline: core.TimeInf}
		if pending == 0 {
			d := st.r.Mgr.Decide(i, t-base)
			oh := st.r.Overhead.Cost(d.Work)
			t += oh
			curQ = d.Q
			pending = d.Steps
			rec.Decision = true
			rec.Steps = d.Steps
			rec.Overhead = oh
			tr.TotalOverhead += oh
			tr.Decisions++
		}
		et := st.r.Exec.Actual(c, i, curQ)
		rec.Q = curQ
		rec.Start = t
		rec.Exec = et
		t += et
		tr.TotalExec += et
		pending--
		if a := st.r.Sys.Action(i); a.HasDeadline() {
			rec.Deadline = base + a.Deadline
			if t > rec.Deadline {
				rec.Missed = true
				tr.Misses++
			}
		}
		st.observe(rec)
	}
	st.state.T = t
	st.state.Cycle++
	tr.Cycles = st.state.Cycle
	tr.Final = t
	return true
}

// Done reports whether every cycle has run.
func (st *Stream) Done() bool { return st.state.Cycle >= st.r.Cycles }

// CyclesRun returns how many cycles have executed so far.
func (st *Stream) CyclesRun() int { return st.state.Cycle }

// Clock returns the stream's current virtual time.
func (st *Stream) Clock() core.Time { return st.state.T }

// Trace returns the accumulating trace. It is complete once Done
// reports true; before that it is the valid trace of a shorter run.
func (st *Stream) Trace() *Trace { return st.tr }

// MustRun is Run that panics on configuration errors; for examples and
// benchmarks with statically valid configurations.
func (r *Runner) MustRun() *Trace {
	tr, err := r.Run()
	if err != nil {
		panic(err)
	}
	return tr
}
