package sim

import (
	"fmt"
)

// SweepPoint is one configuration of a parameter sweep: a label and a
// fully configured runner. Runners must not share mutable managers (the
// policy managers are stateless and safe to share; baseline feedback
// controllers are not).
type SweepPoint struct {
	Label  string
	Runner *Runner
}

// SweepResult pairs a sweep point's label with its trace (or error).
type SweepResult struct {
	Label string
	Trace *Trace
	Err   error
}

// Sweep executes the given points concurrently on a bounded worker pool
// (GOMAXPROCS workers) and returns the results in input order. Each
// simulated run is single-threaded, preserving the paper's execution
// model; only independent runs are parallelised — the usual shape of a
// benchmark sweep over seeds, managers or parameter grids.
func Sweep(points []SweepPoint) []SweepResult {
	return SweepWorkers(points, 0)
}

// SweepWorkers is Sweep with an explicit worker count (≤ 0 selects
// GOMAXPROCS). Points are dispatched on the shared sharded pool, so a
// point's result never depends on the worker count — only the
// wall-clock time does.
func SweepWorkers(points []SweepPoint, workers int) []SweepResult {
	results := make([]SweepResult, len(points))
	Dispatch(len(points), workers, func(idx int) {
		p := points[idx]
		res := SweepResult{Label: p.Label}
		if p.Runner == nil {
			res.Err = fmt.Errorf("sim: sweep point %q has no runner", p.Label)
		} else {
			res.Trace, res.Err = p.Runner.Run()
		}
		results[idx] = res
	})
	return results
}
