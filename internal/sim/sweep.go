package sim

import (
	"fmt"
	"runtime"
	"sync"
)

// SweepPoint is one configuration of a parameter sweep: a label and a
// fully configured runner. Runners must not share mutable managers (the
// policy managers are stateless and safe to share; baseline feedback
// controllers are not).
type SweepPoint struct {
	Label  string
	Runner *Runner
}

// SweepResult pairs a sweep point's label with its trace (or error).
type SweepResult struct {
	Label string
	Trace *Trace
	Err   error
}

// Sweep executes the given points concurrently on a bounded worker pool
// (GOMAXPROCS workers) and returns the results in input order. Each
// simulated run is single-threaded, preserving the paper's execution
// model; only independent runs are parallelised — the usual shape of a
// benchmark sweep over seeds, managers or parameter grids.
func Sweep(points []SweepPoint) []SweepResult {
	results := make([]SweepResult, len(points))
	var wg sync.WaitGroup
	sem := make(chan struct{}, maxWorkers())
	for idx, p := range points {
		wg.Add(1)
		go func(idx int, p SweepPoint) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res := SweepResult{Label: p.Label}
			if p.Runner == nil {
				res.Err = fmt.Errorf("sim: sweep point %q has no runner", p.Label)
			} else {
				res.Trace, res.Err = p.Runner.Run()
			}
			results[idx] = res
		}(idx, p)
	}
	wg.Wait()
	return results
}

func maxWorkers() int {
	p := runtime.GOMAXPROCS(0)
	if p < 1 {
		return 1
	}
	return p
}
