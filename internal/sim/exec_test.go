package sim

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/regions"
)

// TestQuickFastContentBitIdentical: the memoized content model must
// draw exactly the plain model's times — same floating-point operation
// sequence, just cached factor lookups — for arbitrary access patterns,
// including the out-of-order cycle revisits a batch scheduler produces.
func TestQuickFastContentBitIdentical(t *testing.T) {
	f := func(seed int64, contentSeed uint64, noise float64, probes []uint16) bool {
		sys := randSys(seed, core.RandomSystemConfig{Actions: 30, Levels: 5})
		if math.IsNaN(noise) || math.IsInf(noise, 0) {
			noise = 0.5
		}
		plain := Content{
			Sys:          sys,
			FrameFactor:  func(c int) float64 { return 0.8 + 0.3*math.Exp(-float64(c%7)) },
			ActionFactor: func(i int) float64 { return 0.9 + 0.2*math.Sin(float64(i)) },
			NoiseAmp:     math.Abs(noise) - math.Floor(math.Abs(noise)),
			Seed:         contentSeed,
		}
		fast := NewFastContent(plain, sys.NumActions())
		for _, p := range probes {
			c := int(p >> 8) // revisit cycles in arbitrary order
			i := int(p) % sys.NumActions()
			q := core.Level(int(p) % sys.NumLevels())
			if fast.Actual(c, i, q) != plain.Actual(c, i, q) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestFastContentTraceEqualsPlain: a full run under the memoized model
// equals the plain model's run record for record, and WithSeed forks
// draw independently while sharing one action table.
func TestFastContentTraceEqualsPlain(t *testing.T) {
	sys := randSys(63, core.RandomSystemConfig{Actions: 40})
	tab := regions.BuildTDTable(sys)
	plain := Content{
		Sys:          sys,
		FrameFactor:  func(c int) float64 { return 0.9 + 0.1*math.Exp(-float64(c)) },
		ActionFactor: func(i int) float64 { return 1 - 0.002*float64(i%9) },
		NoiseAmp:     0.3,
		Seed:         7,
	}
	mk := func(exec ExecModel) *Runner {
		return &Runner{
			Sys:      sys,
			Mgr:      regions.NewSymbolicManager(tab),
			Exec:     exec,
			Overhead: IPodOverhead,
			Cycles:   5,
		}
	}
	fast := NewFastContent(plain, sys.NumActions())
	a := mk(plain).MustRun()
	b := mk(fast).MustRun()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("FastContent trace diverges from plain Content")
	}

	fork := fast.WithSeed(99)
	if fork.Actual(0, 1, 0) == fast.Actual(0, 1, 0) && fork.Actual(1, 2, 0) == fast.Actual(1, 2, 0) {
		t.Fatal("forked seed should draw different content")
	}
	plain99 := plain
	plain99.Seed = 99
	c := mk(fork).MustRun()
	d := mk(plain99).MustRun()
	if !reflect.DeepEqual(c, d) {
		t.Fatal("WithSeed fork diverges from a plain model at the same seed")
	}
}
