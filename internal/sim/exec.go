// Package sim is the platform substrate standing in for the paper's bare
// Apple iPod Video 5G: a discrete-event executor with a virtual nanosecond
// clock that runs a parameterized system under a Quality Manager, charges
// quality-management overhead to the clock, draws actual execution times
// from pluggable content models bounded by Cwc, and records full traces.
//
// The paper stresses that its iPod numbers are "indicative and useful only
// for estimating relative values"; this simulator reproduces those
// relative values deterministically (see DESIGN.md §2 for the
// substitution rationale).
package sim

import (
	"repro/internal/core"
)

// ExecModel yields the actual execution time C(a_i, q) of one action
// instance. Implementations must be deterministic functions of
// (cycle, action, level) so that different managers replay identical
// workloads, and must never exceed Cwc(a_i, q).
type ExecModel interface {
	// Actual returns the execution time of action i at level q during
	// cycle c.
	Actual(c, i int, q core.Level) core.Time
}

// WorstCase always takes the full worst-case budget: the adversarial
// model used by the safety property tests.
type WorstCase struct{ Sys *core.System }

// Actual implements ExecModel.
func (m WorstCase) Actual(_, i int, q core.Level) core.Time { return m.Sys.WC(i, q) }

// Average always takes exactly the average time: the "ideal speed" model
// under which constant-quality trajectories are straight lines in the
// speed diagram.
type Average struct{ Sys *core.System }

// Actual implements ExecModel.
func (m Average) Actual(_, i int, q core.Level) core.Time { return m.Sys.Av(i, q) }

// Uniform draws uniformly from [0, Cwc], independently per (cycle,
// action) via a hash-based PRNG; quality only scales the bound.
type Uniform struct {
	Sys  *core.System
	Seed uint64
}

// Actual implements ExecModel.
func (m Uniform) Actual(c, i int, q core.Level) core.Time {
	wc := m.Sys.WC(i, q)
	if wc == 0 {
		return 0
	}
	u := HashUnit(m.Seed, uint64(c), uint64(i))
	return core.Time(u * float64(wc))
}

// Content is the realistic model: the actual time is the average time
// scaled by a deterministic content-complexity factor
//
//	C(c, i, q) = clamp( Cav(i,q) · FrameFactor(c) · ActionFactor(i) · noise(c,i), 0, Cwc(i,q) )
//
// FrameFactor models per-frame scene complexity (Fig. 7's inter-frame
// quality variation); ActionFactor models intra-frame variation across
// the action sequence (Fig. 8's adaptive-relaxation bands); noise is a
// small multiplicative jitter.
type Content struct {
	Sys *core.System
	// FrameFactor returns the complexity multiplier of cycle c
	// (1.0 = exactly average). Nil means always 1.
	FrameFactor func(c int) float64
	// ActionFactor returns the complexity multiplier of action i.
	// Nil means always 1.
	ActionFactor func(i int) float64
	// NoiseAmp is the amplitude of the multiplicative jitter
	// (0.1 → ±10 %). Zero disables jitter.
	NoiseAmp float64
	Seed     uint64
}

// Actual implements ExecModel.
func (m Content) Actual(c, i int, q core.Level) core.Time {
	f := 1.0
	if m.FrameFactor != nil {
		f *= m.FrameFactor(c)
	}
	if m.ActionFactor != nil {
		f *= m.ActionFactor(i)
	}
	if m.NoiseAmp > 0 {
		f *= 1 + m.NoiseAmp*(2*HashUnit(m.Seed, uint64(c), uint64(i))-1)
	}
	v := core.Time(f * float64(m.Sys.Av(i, q)))
	if v < 0 {
		v = 0
	}
	if wc := m.Sys.WC(i, q); v > wc {
		v = wc
	}
	return v
}

// FastContent is Content with the per-action closure work memoized for
// the fleet hot path: the action-complexity profile is tabulated once
// (it is a pure function of the action index, identical for every
// stream sharing the model shape), and the frame factor is cached per
// cycle instead of recomputed per action — on the paper's encoder that
// removes two math.Exp calls from every action. The floating-point
// operation sequence is exactly Content.Actual's, so a FastContent
// stream's trace is bit-identical to the plain Content stream's
// (property-tested).
//
// The frame memo makes Actual stateful: a FastContent value belongs to
// exactly one stream at a time (the same ownership rule core.Manager
// imposes on stateful managers). Use WithSeed to give every fleet
// stream its own instance sharing one read-only action table.
type FastContent struct {
	Content
	actionTab []float64 // ActionFactor(i) for i < len; shared read-only
	frameC    int       // cycle of the memoized frame factor
	frameF    float64
}

// NewFastContent tabulates c's action factors for the n actions of the
// target system and returns the memoized model. The table is built
// eagerly so streams sharing it (see WithSeed) never write it.
func NewFastContent(c Content, n int) *FastContent {
	m := &FastContent{Content: c, frameC: -1}
	if c.ActionFactor != nil {
		m.actionTab = make([]float64, n)
		for i := range m.actionTab {
			m.actionTab[i] = c.ActionFactor(i)
		}
	}
	return m
}

// WithSeed returns a copy of m drawing content with the given seed —
// its own frame memo, the shared read-only action table. This is the
// fleet's per-stream reseeding shape: tabulate once, fork cheaply.
func (m *FastContent) WithSeed(seed uint64) *FastContent {
	c := *m
	c.Seed = seed
	c.frameC = -1
	return &c
}

// Actual implements ExecModel. It mirrors Content.Actual's operation
// order exactly; only the factor lookups are memoized.
func (m *FastContent) Actual(c, i int, q core.Level) core.Time {
	f := 1.0
	if m.FrameFactor != nil {
		if c != m.frameC {
			m.frameC, m.frameF = c, m.FrameFactor(c)
		}
		f *= m.frameF
	}
	if m.actionTab != nil {
		f *= m.actionTab[i]
	} else if m.ActionFactor != nil {
		// Constructed without NewFastContent; fall back to the closure.
		f *= m.ActionFactor(i)
	}
	if m.NoiseAmp > 0 {
		f *= 1 + m.NoiseAmp*(2*HashUnit(m.Seed, uint64(c), uint64(i))-1)
	}
	v := core.Time(f * float64(m.Sys.Av(i, q)))
	if v < 0 {
		v = 0
	}
	if wc := m.Sys.WC(i, q); v > wc {
		v = wc
	}
	return v
}

// HashUnit maps (seed, a, b) to a uniform float64 in [0, 1) using the
// splitmix64 avalanche. It gives every (cycle, action) pair an
// independent, reproducible draw without any PRNG stream state.
func HashUnit(seed, a, b uint64) float64 {
	x := Mix64(seed ^ (a * 0x9E3779B97F4A7C15) ^ (b * 0xBF58476D1CE4E5B9))
	return float64(x>>11) / float64(1<<53)
}

// Mix64 finalises x with the splitmix64 avalanche: a bijective mix
// whose output bits all depend on all input bits. It is the one
// mixing primitive behind HashUnit and the fleet's per-stream seed
// derivation.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}
