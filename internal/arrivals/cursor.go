package arrivals

import (
	"fmt"

	"repro/internal/core"
)

// Cursor adapts a Process to incremental, resumable consumption: a
// serving driver pulls arrival instants one at a time as it feeds
// streams, checkpoints only the count consumed, and after a crash
// re-materialises the process (Times is a pure function of the
// process's parameters) and seeks back to that count. The instants a
// resumed cursor yields are therefore byte-identical to the ones the
// uninterrupted cursor would have yielded — the arrival-side half of
// the crash-recovery guarantee.
type Cursor struct {
	times []core.Time
	pos   int
}

// NewCursor materialises the first n instants of p. n bounds the run's
// population, exactly as the batch entry points do.
func NewCursor(p Process, n int) (*Cursor, error) {
	times, err := p.Times(n)
	if err != nil {
		return nil, err
	}
	return &Cursor{times: times}, nil
}

// NewCursorFromTimes wraps an explicit schedule (e.g. one replayed
// from a recorded trace file). The instants must be non-decreasing and
// non-negative, the Process contract.
func NewCursorFromTimes(times []core.Time) (*Cursor, error) {
	for i, t := range times {
		if t < 0 || t.IsInf() {
			return nil, fmt.Errorf("arrivals: instant %d (%v) out of range", i, t)
		}
		if i > 0 && t < times[i-1] {
			return nil, fmt.Errorf("arrivals: instant %d (%v) precedes %v", i, t, times[i-1])
		}
	}
	return &Cursor{times: times}, nil
}

// Next yields the next arrival instant; ok is false when the schedule
// is exhausted.
func (c *Cursor) Next() (t core.Time, ok bool) {
	if c.pos >= len(c.times) {
		return 0, false
	}
	t = c.times[c.pos]
	c.pos++
	return t, true
}

// Peek reports the next instant without consuming it.
func (c *Cursor) Peek() (t core.Time, ok bool) {
	if c.pos >= len(c.times) {
		return 0, false
	}
	return c.times[c.pos], true
}

// Pos returns the number of instants consumed so far — the single
// integer a checkpoint stores for the arrival side.
func (c *Cursor) Pos() int { return c.pos }

// Remaining returns how many instants are left.
func (c *Cursor) Remaining() int { return len(c.times) - c.pos }

// Seek positions the cursor so that exactly pos instants count as
// consumed — the restore of a checkpointed Pos.
func (c *Cursor) Seek(pos int) error {
	if pos < 0 || pos > len(c.times) {
		return fmt.Errorf("arrivals: seek to %d outside the %d-instant schedule", pos, len(c.times))
	}
	c.pos = pos
	return nil
}
