package arrivals

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
)

// checkProcess asserts the Process contract: determinism, monotonicity,
// non-negative instants.
func checkProcess(t *testing.T, p Process, n int) []core.Time {
	t.Helper()
	a, err := p.Times(n)
	if err != nil {
		t.Fatalf("%s: %v", p.Name(), err)
	}
	b, err := p.Times(n)
	if err != nil {
		t.Fatalf("%s: %v", p.Name(), err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("%s: two generations of the same process differ", p.Name())
	}
	if len(a) != n {
		t.Fatalf("%s: got %d instants, want %d", p.Name(), len(a), n)
	}
	for k, at := range a {
		if at < 0 {
			t.Fatalf("%s: negative instant %v at %d", p.Name(), at, k)
		}
		if k > 0 && at < a[k-1] {
			t.Fatalf("%s: instants not monotone at %d: %v < %v", p.Name(), k, at, a[k-1])
		}
	}
	return a
}

func TestFixed(t *testing.T) {
	a := checkProcess(t, Fixed{Start: 5, Period: 10}, 4)
	want := []core.Time{5, 15, 25, 35}
	if !reflect.DeepEqual(a, want) {
		t.Fatalf("fixed: got %v, want %v", a, want)
	}
	// Period 0 is the closed fleet's all-at-once shape.
	a = checkProcess(t, Fixed{}, 3)
	if !reflect.DeepEqual(a, []core.Time{0, 0, 0}) {
		t.Fatalf("fixed period 0: got %v", a)
	}
	if _, err := (Fixed{Period: -1}).Times(2); err == nil {
		t.Fatal("negative period accepted")
	}
}

func TestPoisson(t *testing.T) {
	const n = 2000
	mean := core.Time(1000)
	a := checkProcess(t, Poisson{MeanGap: mean, Seed: 42}, n)
	// Empirical mean gap within 10% of the configured mean: a loose
	// sanity band, deterministic because the draws are.
	avg := float64(a[n-1]) / float64(n)
	if avg < 0.9*float64(mean) || avg > 1.1*float64(mean) {
		t.Fatalf("poisson mean gap %v off the configured %v", avg, mean)
	}
	// Distinct seeds decorrelate.
	b := checkProcess(t, Poisson{MeanGap: mean, Seed: 43}, n)
	if reflect.DeepEqual(a, b) {
		t.Fatal("different seeds gave identical arrivals")
	}
	if _, err := (Poisson{MeanGap: 0}).Times(2); err == nil {
		t.Fatal("zero mean gap accepted")
	}
	if _, err := (Poisson{MeanGap: 10}).Times(-1); err == nil {
		t.Fatal("negative count accepted")
	}
}

func TestBursty(t *testing.T) {
	const n = 500
	p := Bursty{GapOn: 100, MeanOn: 1000, MeanOff: 10000, Seed: 7}
	a := checkProcess(t, p, n)
	// The on–off structure must show: gaps inside bursts are on the
	// GapOn scale, OFF dwells insert much larger ones. Count gaps well
	// above the ON scale — there must be some (bursts end), and far
	// fewer than n (arrivals cluster).
	large := 0
	for k := 1; k < n; k++ {
		if a[k]-a[k-1] > 2000 {
			large++
		}
	}
	if large == 0 || large > n/4 {
		t.Fatalf("bursty: %d large gaps out of %d — no on/off structure", large, n)
	}
	if _, err := (Bursty{GapOn: 0, MeanOn: 1, MeanOff: 1}).Times(2); err == nil {
		t.Fatal("zero burst gap accepted")
	}
}

func TestTrace(t *testing.T) {
	tr, err := NewTrace([]core.Time{30, 10, 20})
	if err != nil {
		t.Fatal(err)
	}
	a, err := tr.Times(3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, []core.Time{10, 20, 30}) {
		t.Fatalf("trace not sorted: %v", a)
	}
	if _, err := tr.Times(4); err == nil {
		t.Fatal("overdrawn trace accepted")
	}
	if _, err := NewTrace([]core.Time{-1}); err == nil {
		t.Fatal("negative instant accepted")
	}
}

func TestReadCSV(t *testing.T) {
	in := strings.Join([]string{
		"arrival",        // header
		"# a comment",    // comment
		"",               // blank
		"1000",           // integer — but the file's unit is seconds (below)
		"0.5, streamxyz", // seconds, extra column
		"2.5e-9",         // scientific seconds → ~2.5 ticks
	}, "\n")
	tr, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	got, err := tr.Times(tr.Len())
	if err != nil {
		t.Fatal(err)
	}
	// The unit is inferred once per file: any decimal/exponent value
	// makes the whole file seconds, so the bare "1000" is 1000 s, not
	// 1000 ticks — per-row inference would scramble arrival order.
	want := []core.Time{3, core.Time(float64(core.Second) / 2), 1000 * core.Second}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("csv parse: got %v, want %v", got, want)
	}

	// An all-integer file is raw ticks.
	tr, err = ReadCSV(strings.NewReader("10\n1000\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := tr.Times(tr.Len()); !reflect.DeepEqual(got, []core.Time{10, 1000}) {
		t.Fatalf("tick parse: got %v", got)
	}

	// A header is the first non-blank, non-comment row wherever it
	// falls, not literally line 1.
	tr, err = ReadCSV(strings.NewReader("# recorded 2026-07-28\n\ntimestamp\n1000\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 {
		t.Fatalf("comment-then-header trace has %d arrivals, want 1", tr.Len())
	}

	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Fatal("empty trace accepted")
	}
	if _, err := ReadCSV(strings.NewReader("arrival\nnot-a-number")); err == nil {
		t.Fatal("garbage row accepted")
	}

	// A corrupted first data row is an error, not a header: the header
	// heuristic must not silently drop an arrival whose value merely
	// failed to parse (e.g. a truncated export).
	for _, bad := range []string{"12x34\n1000\n", "-\n1000\n", ".5.5\n1000\n", ",123\n456\n"} {
		if _, err := ReadCSV(strings.NewReader(bad)); err == nil {
			t.Fatalf("corrupt first row %q accepted as a header", bad)
		}
	}
}
