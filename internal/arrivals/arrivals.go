// Package arrivals generates deterministic, seed-derived arrival
// processes in simulated time. It is the workload-generation side of the
// open-system fleet: where the closed fleet engine starts N pre-counted
// streams at t = 0, an open system has streams *arrive* — periodically,
// as a Poisson process, in on–off bursts (a two-state MMPP), or replayed
// from a recorded trace — and the admission layer decides what to do
// with them.
//
// Every process is a pure function of its parameters and seed: the same
// configuration always yields the same arrival instants, bit for bit,
// which is what lets the fleet guarantee byte-identical open-system runs
// at any worker count. Randomness comes from the same splitmix64
// avalanche (sim.Mix64) the fleet uses for per-stream seed derivation,
// drawn sequentially, so no global PRNG state is involved.
package arrivals

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"slices"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/sim"
)

// Process generates the arrival instants of a stream population in
// simulated time. Implementations must be deterministic: Times(n) is a
// pure function of the process's parameters, and its result is
// non-decreasing with every instant ≥ 0.
type Process interface {
	// Name identifies the process and its parameters for reports and
	// benchmark rows.
	Name() string
	// Times returns the arrival instants of the first n streams in
	// non-decreasing order. It fails for negative n or when the process
	// cannot produce n arrivals (a finite trace replay).
	Times(n int) ([]core.Time, error)
}

// Fixed is the deterministic fixed-period process: stream k arrives at
// Start + k·Period. Period 0 makes every stream arrive at Start — with
// Start 0 that is exactly the closed fleet's all-at-once shape, which is
// what the open/closed equivalence property tests pin down.
type Fixed struct {
	Start  core.Time
	Period core.Time
}

// Name implements Process.
func (p Fixed) Name() string {
	return fmt.Sprintf("fixed(start=%v,period=%v)", p.Start, p.Period)
}

// Times implements Process.
func (p Fixed) Times(n int) ([]core.Time, error) {
	if err := validate(n); err != nil {
		return nil, err
	}
	if p.Start < 0 || p.Period < 0 {
		return nil, fmt.Errorf("arrivals: fixed process needs start ≥ 0 and period ≥ 0, got %v and %v", p.Start, p.Period)
	}
	out := make([]core.Time, n)
	for k := range out {
		out[k] = p.Start + core.Time(k)*p.Period
	}
	return out, nil
}

// Poisson is the memoryless arrival process: inter-arrival gaps are
// independent exponential draws with mean MeanGap, quantised to the
// integer nanosecond clock. The draws come from a sequential splitmix64
// stream seeded by Seed, so the process is reproducible bit for bit.
type Poisson struct {
	MeanGap core.Time
	Seed    uint64
}

// Name implements Process.
func (p Poisson) Name() string {
	return fmt.Sprintf("poisson(gap=%v,seed=%d)", p.MeanGap, p.Seed)
}

// Times implements Process.
func (p Poisson) Times(n int) ([]core.Time, error) {
	if err := validate(n); err != nil {
		return nil, err
	}
	if p.MeanGap <= 0 {
		return nil, fmt.Errorf("arrivals: poisson process needs a positive mean gap, got %v", p.MeanGap)
	}
	r := splitmix{state: p.Seed}
	out := make([]core.Time, n)
	t := core.Time(0)
	for k := range out {
		t += r.exponential(p.MeanGap)
		out[k] = t
	}
	return out, nil
}

// Bursty is a two-state on–off MMPP (Markov-modulated Poisson process):
// while ON, arrivals are Poisson with mean gap GapOn; while OFF, no
// streams arrive. The dwell times in both states are exponential with
// means MeanOn and MeanOff. The process starts ON, so the first burst
// begins at t = 0. Like Poisson, all draws come from one sequential
// seeded splitmix64 stream.
type Bursty struct {
	GapOn   core.Time // mean inter-arrival gap inside a burst
	MeanOn  core.Time // mean ON-state dwell time
	MeanOff core.Time // mean OFF-state dwell time
	Seed    uint64
}

// Name implements Process.
func (p Bursty) Name() string {
	return fmt.Sprintf("bursty(gap=%v,on=%v,off=%v,seed=%d)", p.GapOn, p.MeanOn, p.MeanOff, p.Seed)
}

// Times implements Process.
func (p Bursty) Times(n int) ([]core.Time, error) {
	if err := validate(n); err != nil {
		return nil, err
	}
	if p.GapOn <= 0 || p.MeanOn <= 0 || p.MeanOff <= 0 {
		return nil, fmt.Errorf("arrivals: bursty process needs positive gap and dwell means, got gap=%v on=%v off=%v",
			p.GapOn, p.MeanOn, p.MeanOff)
	}
	r := splitmix{state: p.Seed}
	out := make([]core.Time, 0, n)
	t := core.Time(0)
	stateEnd := t + r.exponential(p.MeanOn)
	for len(out) < n {
		// Candidate next arrival inside the current ON window. By the
		// memoryless property, discarding a partial gap at the window
		// edge and redrawing after the OFF dwell is still exponential.
		at := t + r.exponential(p.GapOn)
		if at < stateEnd {
			t = at
			out = append(out, t)
			continue
		}
		t = stateEnd + r.exponential(p.MeanOff)
		stateEnd = t + r.exponential(p.MeanOn)
	}
	return out, nil
}

// Trace replays recorded arrival instants — the shape the related
// inference simulators use to drive schedulers with production request
// logs. Instants are sorted at construction, so the replay is a valid
// process whatever order the recording listed them in.
type Trace struct {
	instants []core.Time
}

// NewTrace builds a replay process from the given instants. Negative
// instants are rejected; the input is copied and sorted.
func NewTrace(instants []core.Time) (*Trace, error) {
	out := make([]core.Time, len(instants))
	copy(out, instants)
	slices.Sort(out)
	if len(out) > 0 && out[0] < 0 {
		return nil, fmt.Errorf("arrivals: trace has a negative instant %v", out[0])
	}
	return &Trace{instants: out}, nil
}

// Len returns the number of recorded arrivals.
func (p *Trace) Len() int { return len(p.instants) }

// Name implements Process.
func (p *Trace) Name() string { return fmt.Sprintf("trace(%d arrivals)", len(p.instants)) }

// Times implements Process.
func (p *Trace) Times(n int) ([]core.Time, error) {
	if err := validate(n); err != nil {
		return nil, err
	}
	if n > len(p.instants) {
		return nil, fmt.Errorf("arrivals: trace has %d arrivals, %d requested", len(p.instants), n)
	}
	out := make([]core.Time, n)
	copy(out, p.instants[:n])
	return out, nil
}

// ReadCSV parses a replay trace: one arrival instant per row, first
// column. The time unit is inferred once for the whole file: if any
// value carries a decimal point or exponent, every value is seconds;
// otherwise all values are raw core.Time ticks (nanoseconds). Per-row
// inference would let one trace silently mix units — "0.5" and "1"
// as half a second and one nanosecond — and scramble arrival order.
// Blank lines, '#' comments and a leading non-numeric header row are
// skipped.
func ReadCSV(r io.Reader) (*Trace, error) {
	var fields []string
	seconds := false
	sc := bufio.NewScanner(r)
	line, rows := 0, 0
	for sc.Scan() {
		line++
		field := strings.TrimSpace(sc.Text())
		if field == "" || strings.HasPrefix(field, "#") {
			continue
		}
		rows++
		if i := strings.IndexByte(field, ','); i >= 0 {
			field = strings.TrimSpace(field[:i])
		}
		if !looksNumeric(field) {
			// Only a first row that cannot be a corrupted number reads as
			// a header: an empty first column or a leading digit/sign/
			// point (e.g. a truncated "12x34") is a malformed instant and
			// must not be dropped.
			if rows == 1 && field != "" && !strings.ContainsAny(field[:1], "0123456789+-.") {
				continue
			}
			return nil, fmt.Errorf("arrivals: line %d: bad arrival instant %q", line, field)
		}
		if strings.ContainsAny(field, ".eE") {
			seconds = true
		}
		fields = append(fields, field)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("arrivals: %w", err)
	}
	if len(fields) == 0 {
		return nil, errors.New("arrivals: trace has no arrivals")
	}
	instants := make([]core.Time, len(fields))
	for i, field := range fields {
		t, err := parseInstant(field, seconds)
		if err != nil {
			return nil, fmt.Errorf("arrivals: %w", err)
		}
		instants[i] = t
	}
	return NewTrace(instants)
}

// looksNumeric reports whether field parses as an arrival instant in
// either unit — the header/corruption gate ahead of unit inference.
func looksNumeric(field string) bool {
	if !strings.ContainsAny(field, ".eE") {
		_, err := strconv.ParseInt(field, 10, 64)
		return err == nil
	}
	v, err := strconv.ParseFloat(field, 64)
	return err == nil && !math.IsNaN(v) && !math.IsInf(v, 0)
}

func parseInstant(field string, seconds bool) (core.Time, error) {
	if !seconds {
		v, err := strconv.ParseInt(field, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("bad arrival instant %q", field)
		}
		return core.Time(v), nil
	}
	v, err := strconv.ParseFloat(field, 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("bad arrival instant %q", field)
	}
	return core.Time(math.Round(v * float64(core.Second))), nil
}

func validate(n int) error {
	if n < 0 {
		return fmt.Errorf("arrivals: negative stream count %d", n)
	}
	return nil
}

// splitmix is the sequential form of the fleet's splitmix64 mixing
// primitive: a golden-ratio counter finalised by sim.Mix64 per draw.
type splitmix struct{ state uint64 }

// unit returns the next uniform draw in [0, 1).
func (r *splitmix) unit() float64 {
	r.state += 0x9E3779B97F4A7C15
	return float64(sim.Mix64(r.state)>>11) / float64(1<<53)
}

// exponential returns the next exponential draw with the given mean,
// rounded to the integer tick clock (never negative, at least 0).
func (r *splitmix) exponential(mean core.Time) core.Time {
	u := r.unit() // in [0,1) so 1-u is in (0,1] and the log is finite
	return core.Time(math.Round(-float64(mean) * math.Log(1-u)))
}
