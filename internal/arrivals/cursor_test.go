package arrivals

import (
	"reflect"
	"testing"

	"repro/internal/core"
)

// TestCursorResumeEquivalence: consuming k instants, "crashing" (only
// Pos survives), re-materialising the cursor from the same process and
// seeking to k yields exactly the instants the uninterrupted cursor
// yields — for every split point.
func TestCursorResumeEquivalence(t *testing.T) {
	p := Bursty{GapOn: 2 * core.Millisecond, MeanOn: 9 * core.Millisecond,
		MeanOff: 40 * core.Millisecond, Seed: 5}
	const n = 17
	whole, err := NewCursor(p, n)
	if err != nil {
		t.Fatal(err)
	}
	var ref []core.Time
	for {
		v, ok := whole.Next()
		if !ok {
			break
		}
		ref = append(ref, v)
	}
	if len(ref) != n || whole.Remaining() != 0 {
		t.Fatalf("drained %d of %d instants", len(ref), n)
	}

	for cut := 0; cut <= n; cut++ {
		c1, _ := NewCursor(p, n)
		for i := 0; i < cut; i++ {
			c1.Next()
		}
		saved := c1.Pos()

		c2, _ := NewCursor(p, n) // the post-crash re-materialisation
		if err := c2.Seek(saved); err != nil {
			t.Fatal(err)
		}
		got := ref[:cut:cut]
		for {
			v, ok := c2.Next()
			if !ok {
				break
			}
			got = append(got, v)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("cut %d: resumed instants diverge", cut)
		}
	}
}

func TestCursorValidation(t *testing.T) {
	if _, err := NewCursorFromTimes([]core.Time{3, 2}); err == nil {
		t.Fatal("decreasing schedule accepted")
	}
	if _, err := NewCursorFromTimes([]core.Time{-1}); err == nil {
		t.Fatal("negative instant accepted")
	}
	if _, err := NewCursorFromTimes([]core.Time{core.TimeInf}); err == nil {
		t.Fatal("infinite instant accepted")
	}
	c, err := NewCursorFromTimes([]core.Time{1, 1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Seek(4); err == nil {
		t.Fatal("seek past the schedule accepted")
	}
	if err := c.Seek(-1); err == nil {
		t.Fatal("negative seek accepted")
	}
	if v, ok := c.Peek(); !ok || v != 1 {
		t.Fatal("peek broken")
	}
	if c.Pos() != 0 {
		t.Fatal("peek consumed")
	}
}
