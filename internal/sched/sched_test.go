package sched

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/encoder"
)

func row(base, slope int64, levels int) ([]core.Time, []core.Time) {
	av := make([]core.Time, levels)
	wc := make([]core.Time, levels)
	for q := 0; q < levels; q++ {
		av[q] = core.Time(base+slope*int64(q)) * core.Microsecond
		wc[q] = av[q] * 8 / 5
	}
	return av, wc
}

// encoderGraph reproduces the paper's encoder schedule as a task graph.
func encoderGraph(mbs int, deadline core.Time) *Graph {
	const levels = 7
	setupAv, setupWC := row(30000, 0, levels)
	meAv, meWC := row(400, 150, levels)
	tqAv, tqWC := row(500, 80, levels)
	vlAv, vlWC := row(300, 70, levels)
	return &Graph{
		Levels: levels,
		Nodes: []Node{
			{Name: "setup", Av: setupAv, WC: setupWC},
			{Name: "me", Av: meAv, WC: meWC, After: []string{"setup"}, Repeat: mbs},
			{Name: "tq", Av: tqAv, WC: tqWC, After: []string{"me"}, Repeat: mbs},
			{Name: "vlc", Av: vlAv, WC: vlWC, After: []string{"tq"}, Repeat: mbs, Deadline: deadline},
		},
	}
}

func TestScheduleEncoderGraphMatchesPaperLayout(t *testing.T) {
	sys, err := encoderGraph(396, core.Second+34*core.Millisecond).Schedule()
	if err != nil {
		t.Fatal(err)
	}
	if sys.NumActions() != 1189 {
		t.Fatalf("scheduled %d actions, want 1189", sys.NumActions())
	}
	// The list order must match the encoder package's action classes:
	// setup, then (me, tq, vlc) per macroblock.
	for i := 0; i < sys.NumActions(); i++ {
		wantClass := encoder.ActionClass(i)
		name := sys.Action(i).Name
		if !strings.HasPrefix(name, wantClass+"[") {
			t.Fatalf("action %d = %q, want class %q", i, name, wantClass)
		}
	}
	// Deadline on the last vlc instance only.
	for i := 0; i < sys.NumActions()-1; i++ {
		if sys.Action(i).HasDeadline() {
			t.Fatalf("interior action %d has a deadline", i)
		}
	}
	if !sys.Action(1188).HasDeadline() {
		t.Fatal("final action lacks the deadline")
	}
}

func TestScheduleInterleavesPipelines(t *testing.T) {
	// me[k] must appear before tq[k], tq[k] before vlc[k], and the
	// instances must interleave (me[1] after vlc[0]) — the pipeline
	// order the priority (instance, decl) produces.
	sys, err := encoderGraph(3, 200*core.Millisecond).Schedule()
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for i := 0; i < sys.NumActions(); i++ {
		names = append(names, sys.Action(i).Name)
	}
	want := []string{"setup[0]", "me[0]", "tq[0]", "vlc[0]", "me[1]", "tq[1]", "vlc[1]", "me[2]", "tq[2]", "vlc[2]"}
	for i, w := range want {
		if names[i] != w {
			t.Fatalf("position %d = %q, want %q (full: %v)", i, names[i], w, names)
		}
	}
}

func TestScheduleValidation(t *testing.T) {
	levels := 3
	av, wc := row(10, 5, levels)
	mk := func(mutate func(*Graph)) error {
		g := &Graph{Levels: levels, Nodes: []Node{
			{Name: "a", Av: av, WC: wc, Deadline: core.Second},
			{Name: "b", Av: av, WC: wc, After: []string{"a"}},
		}}
		mutate(g)
		_, err := g.Schedule()
		return err
	}
	if err := mk(func(g *Graph) {}); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}
	if mk(func(g *Graph) { g.Levels = 1 }) == nil {
		t.Error("one level accepted")
	}
	if mk(func(g *Graph) { g.Nodes = nil }) == nil {
		t.Error("empty graph accepted")
	}
	if mk(func(g *Graph) { g.Nodes[1].Name = "a" }) == nil {
		t.Error("duplicate name accepted")
	}
	if mk(func(g *Graph) { g.Nodes[1].After = []string{"zzz"} }) == nil {
		t.Error("unknown dependency accepted")
	}
	if mk(func(g *Graph) { g.Nodes[0].Av = g.Nodes[0].Av[:1] }) == nil {
		t.Error("short timing row accepted")
	}
	if mk(func(g *Graph) { g.Nodes[0].After = []string{"b"} }) == nil {
		t.Error("cycle accepted")
	}
	if mk(func(g *Graph) { g.Nodes[0].Deadline = 0 }) == nil {
		t.Error("deadline-free schedule accepted")
	}
	if mk(func(g *Graph) { g.Nodes[0].Deadline = core.Nanosecond }) == nil {
		t.Error("infeasible deadline accepted")
	}
	if mk(func(g *Graph) { g.Nodes[0].Repeat = 2; g.Nodes[1].Repeat = 3 }) == nil {
		t.Error("mismatched repeats accepted")
	}
}

func TestScheduleScalarFanOutAndIn(t *testing.T) {
	levels := 2
	av, wc := row(10, 0, levels)
	g := &Graph{Levels: levels, Nodes: []Node{
		{Name: "src", Av: av, WC: wc},
		{Name: "work", Av: av, WC: wc, After: []string{"src"}, Repeat: 4},
		{Name: "sink", Av: av, WC: wc, After: []string{"work"}, Deadline: core.Second},
	}}
	sys, err := g.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	if sys.NumActions() != 6 {
		t.Fatalf("scheduled %d actions, want 6", sys.NumActions())
	}
	if sys.Action(0).Name != "src[0]" || sys.Action(5).Name != "sink[0]" {
		t.Fatalf("fan pattern wrong: %q ... %q", sys.Action(0).Name, sys.Action(5).Name)
	}
}

func TestScheduledSystemIsControllable(t *testing.T) {
	// The scheduler's output feeds the usual pipeline end to end.
	sys, err := encoderGraph(12, 100*core.Millisecond).Schedule()
	if err != nil {
		t.Fatal(err)
	}
	m := core.NewNumericManager(sys)
	d := m.Decide(0, 0)
	if d.Q < 0 || d.Q > sys.QMax() {
		t.Fatalf("manager on scheduled system: %+v", d)
	}
}
