// Package sched is the Scheduler half of the paper's Controller
// (Controller = Scheduler + Quality Manager, §1). The paper's
// formalisation assumes the application software "is already scheduled"
// into a sequence of actions; this package produces that sequence from a
// cyclic task graph: nodes are C-function-like blocks with per-level
// timing, precedence edges, and repeat counts (e.g. a per-macroblock
// pipeline stage repeats 396 times).
//
// Scheduling is deterministic list scheduling: Kahn's algorithm with a
// (instance, declaration-order) priority, which interleaves repeated
// pipeline stages per instance — applied to the encoder graph it emits
// exactly the paper's setup, (me, tq, vlc)×396 order.
package sched

import (
	"container/heap"
	"fmt"

	"repro/internal/core"
)

// Node is one block of the application.
type Node struct {
	// Name must be unique within the graph.
	Name string
	// Av and WC are the per-level timing rows of ONE instance.
	Av, WC []core.Time
	// After lists names of nodes that must precede this one. If both
	// nodes repeat the same number of times, precedence is per
	// instance (pipeline); if the predecessor is scalar (Repeat ≤ 1),
	// it precedes every instance.
	After []string
	// Repeat is the number of instances per cycle (default 1).
	Repeat int
	// Deadline, if positive, applies to the completion of the node's
	// last instance, relative to cycle start.
	Deadline core.Time
}

// Graph is a cyclic application to schedule.
type Graph struct {
	Levels int
	Nodes  []Node
}

// item is one expanded instance in the ready heap.
type item struct {
	decl     int // declaration index (priority tiebreak)
	instance int
	vertex   int
}

type readyHeap []item

func (h readyHeap) Len() int { return len(h) }
func (h readyHeap) Less(i, j int) bool {
	if h[i].instance != h[j].instance {
		return h[i].instance < h[j].instance
	}
	return h[i].decl < h[j].decl
}
func (h readyHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *readyHeap) Push(x any)        { *h = append(*h, x.(item)) }
func (h *readyHeap) Pop() any          { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }
func (h readyHeap) Peek() item         { return h[0] }
func (h readyHeap) Empty() bool        { return len(h) == 0 }
func (h *readyHeap) PushItem(it item)  { heap.Push(h, it) }
func (h *readyHeap) PopItem() (i item) { return heap.Pop(h).(item) }

// Schedule expands the graph into the scheduled action sequence and
// assembles the parameterized system. It fails on duplicate or unknown
// names, timing-row mismatches, precedence cycles, or a schedule that
// violates Definition 1 / feasibility.
func (g *Graph) Schedule() (*core.System, error) {
	if g.Levels < 2 {
		return nil, fmt.Errorf("sched: need ≥2 levels, got %d", g.Levels)
	}
	if len(g.Nodes) == 0 {
		return nil, fmt.Errorf("sched: empty graph")
	}
	byName := map[string]int{}
	for i, nd := range g.Nodes {
		if nd.Name == "" {
			return nil, fmt.Errorf("sched: node %d has no name", i)
		}
		if _, dup := byName[nd.Name]; dup {
			return nil, fmt.Errorf("sched: duplicate node %q", nd.Name)
		}
		if len(nd.Av) != g.Levels || len(nd.WC) != g.Levels {
			return nil, fmt.Errorf("sched: node %q timing rows must have %d entries", nd.Name, g.Levels)
		}
		byName[nd.Name] = i
	}

	// Expand instances into vertices.
	type vertex struct {
		decl, instance int
	}
	var verts []vertex
	firstVert := make([]int, len(g.Nodes)) // first vertex index per node
	repeat := func(i int) int {
		if g.Nodes[i].Repeat <= 1 {
			return 1
		}
		return g.Nodes[i].Repeat
	}
	for i := range g.Nodes {
		firstVert[i] = len(verts)
		for k := 0; k < repeat(i); k++ {
			verts = append(verts, vertex{decl: i, instance: k})
		}
	}

	// Build edges and in-degrees.
	succ := make([][]int, len(verts))
	indeg := make([]int, len(verts))
	addEdge := func(from, to int) {
		succ[from] = append(succ[from], to)
		indeg[to]++
	}
	for i, nd := range g.Nodes {
		for _, depName := range nd.After {
			j, ok := byName[depName]
			if !ok {
				return nil, fmt.Errorf("sched: node %q depends on unknown %q", nd.Name, depName)
			}
			switch {
			case repeat(j) == repeat(i):
				for k := 0; k < repeat(i); k++ {
					addEdge(firstVert[j]+k, firstVert[i]+k)
				}
			case repeat(j) == 1:
				for k := 0; k < repeat(i); k++ {
					addEdge(firstVert[j], firstVert[i]+k)
				}
			case repeat(i) == 1:
				for k := 0; k < repeat(j); k++ {
					addEdge(firstVert[j]+k, firstVert[i])
				}
			default:
				return nil, fmt.Errorf("sched: %q (×%d) and %q (×%d): mismatched repeat counts need a scalar side",
					depName, repeat(j), nd.Name, repeat(i))
			}
		}
	}

	// Kahn's algorithm with (instance, declaration) priority.
	var ready readyHeap
	for v, d := range indeg {
		if d == 0 {
			ready.PushItem(item{decl: verts[v].decl, instance: verts[v].instance, vertex: v})
		}
	}
	order := make([]int, 0, len(verts))
	for !ready.Empty() {
		it := ready.PopItem()
		order = append(order, it.vertex)
		for _, s := range succ[it.vertex] {
			indeg[s]--
			if indeg[s] == 0 {
				ready.PushItem(item{decl: verts[s].decl, instance: verts[s].instance, vertex: s})
			}
		}
	}
	if len(order) != len(verts) {
		return nil, fmt.Errorf("sched: precedence cycle (%d of %d vertices scheduled)", len(order), len(verts))
	}

	// Assemble the system: deadlines attach to each node's last
	// scheduled instance.
	lastPos := make([]int, len(g.Nodes))
	for i := range lastPos {
		lastPos[i] = -1
	}
	tt := core.NewTimingTable(len(order), g.Levels)
	actions := make([]core.Action, len(order))
	for pos, v := range order {
		nd := g.Nodes[verts[v].decl]
		for q := 0; q < g.Levels; q++ {
			tt.Set(pos, core.Level(q), nd.Av[q], nd.WC[q])
		}
		actions[pos] = core.Action{
			Name:     fmt.Sprintf("%s[%d]", nd.Name, verts[v].instance),
			Deadline: core.TimeInf,
		}
		lastPos[verts[v].decl] = pos
	}
	for i, nd := range g.Nodes {
		if nd.Deadline > 0 {
			actions[lastPos[i]].Deadline = nd.Deadline
		}
	}
	sys, err := core.NewSystem(actions, tt)
	if err != nil {
		return nil, fmt.Errorf("sched: %w", err)
	}
	if err := sys.Feasible(); err != nil {
		return nil, fmt.Errorf("sched: %w", err)
	}
	return sys, nil
}
