package quant

import (
	"math/rand"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(-1, 7); err == nil {
		t.Error("negative level accepted")
	}
	if _, err := New(7, 7); err == nil {
		t.Error("out-of-range level accepted")
	}
	if _, err := New(0, 0); err == nil {
		t.Error("zero levels accepted")
	}
	if _, err := New(3, 7); err != nil {
		t.Errorf("valid level rejected: %v", err)
	}
}

func TestScaleDecreasesWithQuality(t *testing.T) {
	prev := int32(1 << 30)
	for q := 0; q < 7; q++ {
		qz := MustNew(q, 7)
		if qz.Scale() >= prev {
			t.Fatalf("scale not decreasing at level %d", q)
		}
		prev = qz.Scale()
	}
}

func TestStepsPositive(t *testing.T) {
	for q := 0; q < 7; q++ {
		qz := MustNew(q, 7)
		for i := 0; i < 64; i++ {
			if qz.Step(i) < 1 {
				t.Fatalf("level %d step %d = %d", q, i, qz.Step(i))
			}
		}
	}
}

func TestQuantizeDequantizeError(t *testing.T) {
	// |dequant(quant(x)) − x| ≤ step/2 + 1 for every coefficient.
	rng := rand.New(rand.NewSource(1))
	for q := 0; q < 7; q++ {
		qz := MustNew(q, 7)
		for trial := 0; trial < 50; trial++ {
			var in, qd, out [64]int32
			for i := range in {
				in[i] = rng.Int31n(2001) - 1000
			}
			qz.Quantize(&in, &qd)
			qz.Dequantize(&qd, &out)
			for i := range in {
				d := in[i] - out[i]
				if d < 0 {
					d = -d
				}
				if d > qz.Step(i)/2+1 {
					t.Fatalf("level %d coef %d: error %d exceeds step/2 (%d)", q, i, d, qz.Step(i))
				}
			}
		}
	}
}

func TestHigherQualityKeepsMoreCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var in [64]int32
	for i := range in {
		in[i] = rng.Int31n(201) - 100
	}
	prev := -1
	for q := 0; q < 7; q++ {
		var out [64]int32
		nz := MustNew(q, 7).Quantize(&in, &out)
		if nz < prev {
			t.Fatalf("nonzero count decreased at level %d: %d < %d", q, nz, prev)
		}
		prev = nz
	}
	if prev == 0 {
		t.Fatal("top level quantised everything to zero")
	}
}

func TestQuantizeRoundsTowardNearest(t *testing.T) {
	qz := MustNew(6, 7) // scale 2: step of coef 0 = 8·2/8 = 2
	var in, out [64]int32
	in[0] = 3 // 3/2 rounds to 2
	qz.Quantize(&in, &out)
	if out[0] != 2 {
		t.Fatalf("quantize(3) with step 2 = %d, want 2", out[0])
	}
	in[0] = -3
	qz.Quantize(&in, &out)
	if out[0] != -2 {
		t.Fatalf("quantize(-3) = %d, want -2 (symmetric)", out[0])
	}
}

func TestZeroQuantizesToZero(t *testing.T) {
	var in, out [64]int32
	if nz := MustNew(0, 7).Quantize(&in, &out); nz != 0 {
		t.Fatalf("zero block has %d nonzeros", nz)
	}
}
