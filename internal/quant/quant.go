// Package quant implements quality-dependent quantisation of 8×8 DCT
// coefficient blocks. The quantiser step shrinks as the quality level
// rises, so higher levels keep more non-zero coefficients — which makes
// the downstream entropy-coding work grow with quality, one of the
// mechanisms behind the paper's "execution times increasing with
// quality".
package quant

import "fmt"

// BaseMatrix is an MPEG-style intra quantisation weighting matrix:
// coarser steps for high spatial frequencies.
var BaseMatrix = [64]int32{
	8, 16, 19, 22, 26, 27, 29, 34,
	16, 16, 22, 24, 27, 29, 34, 37,
	19, 22, 26, 27, 29, 34, 34, 38,
	22, 22, 26, 27, 29, 34, 37, 40,
	22, 26, 27, 29, 32, 35, 40, 48,
	26, 27, 29, 32, 35, 40, 48, 58,
	26, 27, 29, 34, 38, 46, 56, 69,
	27, 29, 35, 38, 46, 56, 69, 83,
}

// Quantizer scales the base matrix by a per-quality step factor.
type Quantizer struct {
	steps [64]int32
	scale int32
}

// New builds a quantizer for a quality level in [0, levels).
// The step scale halves-ish as quality rises: scale = 2 + 3·(levels−1−q),
// so qmax keeps the most detail.
func New(q, levels int) (*Quantizer, error) {
	if levels <= 0 || q < 0 || q >= levels {
		return nil, fmt.Errorf("quant: level %d outside [0, %d)", q, levels)
	}
	scale := int32(2 + 3*(levels-1-q))
	qz := &Quantizer{scale: scale}
	for i := range qz.steps {
		s := BaseMatrix[i] * scale / 8
		if s < 1 {
			s = 1
		}
		qz.steps[i] = s
	}
	return qz, nil
}

// MustNew is New that panics on invalid arguments.
func MustNew(q, levels int) *Quantizer {
	qz, err := New(q, levels)
	if err != nil {
		panic(err)
	}
	return qz
}

// Scale returns the quantiser's step scale (diagnostic).
func (qz *Quantizer) Scale() int32 { return qz.scale }

// Step returns the quantisation step of coefficient i.
func (qz *Quantizer) Step(i int) int32 { return qz.steps[i] }

// Quantize divides coefficients by their steps with rounding toward
// zero±½ and reports the number of non-zero outputs.
func (qz *Quantizer) Quantize(in *[64]int32, out *[64]int32) (nonzero int) {
	for i := 0; i < 64; i++ {
		s := qz.steps[i]
		v := in[i]
		var r int32
		if v >= 0 {
			r = (v + s/2) / s
		} else {
			r = -((-v + s/2) / s)
		}
		out[i] = r
		if r != 0 {
			nonzero++
		}
	}
	return nonzero
}

// Dequantize multiplies quantised coefficients back by their steps.
func (qz *Quantizer) Dequantize(in *[64]int32, out *[64]int32) {
	for i := 0; i < 64; i++ {
		out[i] = in[i] * qz.steps[i]
	}
}
