package checkpoint

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/obs"
)

// AtomicFile is an io.Writer whose target path either keeps its
// previous content or receives the complete new content — never a torn
// mix. Writes go to a temporary file in the target's directory; Commit
// fsyncs it, renames it over the target, and fsyncs the directory so
// the rename survives a crash; Abort (or a Commit failure) removes the
// temporary file. It is how every run artifact — snapshot, report
// JSON, streamed CSV — reaches disk.
type AtomicFile struct {
	f    *os.File
	path string
	done bool
}

// NewAtomicFile opens a temporary file next to path. The caller must
// end with Commit or Abort; deferring Abort is safe after Commit.
func NewAtomicFile(path string) (*AtomicFile, error) {
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp-")
	if err != nil {
		return nil, err
	}
	return &AtomicFile{f: tmp, path: path}, nil
}

// Write implements io.Writer, into the temporary file.
func (a *AtomicFile) Write(p []byte) (int, error) { return a.f.Write(p) }

// Commit makes the written content durably visible at the target path.
// On any failure the temporary file is removed and the target keeps
// its previous content.
func (a *AtomicFile) Commit() error {
	if a.done {
		return fmt.Errorf("checkpoint: %s committed twice", a.path)
	}
	a.done = true
	if err := a.f.Sync(); err != nil {
		a.discard()
		return err
	}
	if err := a.f.Close(); err != nil {
		os.Remove(a.f.Name())
		return err
	}
	if err := os.Rename(a.f.Name(), a.path); err != nil {
		os.Remove(a.f.Name())
		return err
	}
	d, err := os.Open(filepath.Dir(a.path))
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Abort drops the written content, leaving the target untouched. A
// no-op after Commit or a previous Abort.
func (a *AtomicFile) Abort() {
	if a.done {
		return
	}
	a.done = true
	a.discard()
}

func (a *AtomicFile) discard() {
	a.f.Close()
	os.Remove(a.f.Name())
}

// WriteAtomic writes a file through an AtomicFile: path either keeps
// its previous content or holds the complete new content. Any error —
// from write or from the commit — removes the temporary file.
func WriteAtomic(path string, write func(w io.Writer) error) error {
	a, err := NewAtomicFile(path)
	if err != nil {
		return err
	}
	if err := write(a); err != nil {
		a.Abort()
		return err
	}
	return a.Commit()
}

const (
	snapPrefix = "snap-"
	snapSuffix = ".ckpt"
	// defaultKeep is how many snapshots Save retains when Keep is
	// unset: enough that a corrupt newest file always leaves a valid
	// predecessor to fall back to.
	defaultKeep = 3
)

// Store keeps a directory of snapshots named snap-<events>.ckpt —
// keyed by the engine's event counter, never the wall clock, so the
// layout is deterministic and detlint-clean. Save writes atomically
// and prunes old snapshots; LoadLatest walks newest to oldest past any
// corrupt file, which together give the crash-recovery guarantee: a
// process killed at any instant, including mid-Save, resumes from the
// newest snapshot that is whole.
type Store struct {
	// Dir is the snapshot directory; it must exist.
	Dir string
	// Keep bounds how many snapshots Save retains (newest first);
	// 0 means defaultKeep, negative keeps all.
	Keep int
	// Logf, when non-nil, receives a line for each corrupt or foreign
	// snapshot LoadLatest skips. nil skips silently.
	Logf func(format string, args ...any)
	// Met, when non-nil, receives store-level counters: snapshots
	// written and pruned, bytes encoded, encode latency, LoadLatest
	// fallbacks. nil disables instrumentation.
	Met *obs.CheckpointMetrics
}

// countingWriter tallies the bytes reaching the underlying writer, so
// Save can report snapshot sizes without buffering the encoding.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

func (st *Store) logf(format string, args ...any) {
	if st.Logf != nil {
		st.Logf(format, args...)
	}
}

// Path returns the snapshot file name for an event count. Events are
// zero-padded so lexicographic and numeric order agree.
func (st *Store) Path(events int64) string {
	return filepath.Join(st.Dir, fmt.Sprintf("%s%020d%s", snapPrefix, events, snapSuffix))
}

// Save atomically persists one snapshot and prunes beyond Keep,
// returning the written path.
func (st *Store) Save(s *Snapshot) (string, error) {
	path := st.Path(s.Events())
	var start int64
	if m := st.Met; m != nil && m.NowNanos != nil {
		start = m.NowNanos()
	}
	var written int64
	if err := WriteAtomic(path, func(w io.Writer) error {
		cw := &countingWriter{w: w}
		err := Encode(cw, s)
		written = cw.n
		return err
	}); err != nil {
		return "", fmt.Errorf("checkpoint: save %s: %w", path, err)
	}
	if m := st.Met; m != nil {
		m.Snapshots.Inc()
		m.Bytes.Add(written)
		if m.NowNanos != nil {
			m.Encode.Observe(m.NowNanos() - start)
		}
	}
	st.prune()
	return path, nil
}

// prune removes the oldest snapshots beyond the retention bound. Prune
// errors are deliberately ignored: retention is an economy, not a
// correctness property.
func (st *Store) prune() {
	keep := st.Keep
	if keep < 0 {
		return
	}
	if keep == 0 {
		keep = defaultKeep
	}
	names := st.list()
	for _, name := range names[:max(0, len(names)-keep)] {
		if os.Remove(filepath.Join(st.Dir, name)) == nil {
			if m := st.Met; m != nil {
				m.Pruned.Inc()
			}
		}
	}
}

// list returns the snapshot file names in the store, oldest first.
// Non-snapshot files are ignored.
func (st *Store) list() []string {
	entries, err := os.ReadDir(st.Dir)
	if err != nil {
		return nil
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.Type().IsRegular() && strings.HasPrefix(name, snapPrefix) && strings.HasSuffix(name, snapSuffix) {
			names = append(names, name)
		}
	}
	sort.Strings(names) // zero-padded: lexicographic == numeric
	return names
}

// Events parses the event counter out of a snapshot path or file name;
// -1 if the name is not a snapshot's.
func Events(path string) int64 {
	name := filepath.Base(path)
	if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
		return -1
	}
	v, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix), 10, 64)
	if err != nil {
		return -1
	}
	return v
}

// LoadLatest returns the newest decodable snapshot whose fingerprint
// matches, with the path it came from. Corrupt files (torn, truncated,
// bit-flipped — anything Decode rejects) and snapshots of other runs
// are logged and skipped, falling back to the next older one; an empty
// or missing store returns (nil, "", nil) — a fresh start, not an
// error. Only I/O failures (other than the file not existing) are
// errors.
func (st *Store) LoadLatest(fingerprint string) (*Snapshot, string, error) {
	names := st.list()
	for i := len(names) - 1; i >= 0; i-- {
		path := filepath.Join(st.Dir, names[i])
		f, err := os.Open(path)
		if err != nil {
			if os.IsNotExist(err) {
				continue // pruned or renamed between list and open
			}
			return nil, "", fmt.Errorf("checkpoint: load %s: %w", path, err)
		}
		s, err := Decode(f)
		f.Close()
		if err != nil {
			st.logf("checkpoint: skipping %s: %v", path, err)
			if m := st.Met; m != nil {
				m.Fallbacks.Inc()
			}
			continue
		}
		if s.Meta.Fingerprint != fingerprint {
			st.logf("checkpoint: skipping %s: fingerprint %q does not match this run", path, s.Meta.Fingerprint)
			if m := st.Met; m != nil {
				m.Fallbacks.Inc()
			}
			continue
		}
		return s, path, nil
	}
	return nil, "", nil
}
