package checkpoint

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/arrivals"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/sim"
)

// testConfig builds a small open-fleet run with interleaving
// admissions, backlog and departures: random systems of three distinct
// shapes, skewed stream lengths, bursty arrivals, a capacity-capped
// admitter with a queue.
func testConfig(t *testing.T, n int, seed uint64) fleet.OpenConfig {
	t.Helper()
	var systems []*core.System
	for i := 0; i < 3; i++ {
		systems = append(systems, core.RandomSystem(
			rand.New(rand.NewSource(int64(seed)+int64(i))),
			core.RandomSystemConfig{Actions: 10 + 4*i, DeadlineEvery: 3}))
	}
	streams := make([]fleet.Stream, n)
	for k := range streams {
		sys := systems[k%len(systems)]
		streams[k] = fleet.Stream{
			Name: fmt.Sprintf("s%02d", k),
			Runner: sim.Runner{
				Sys:      sys,
				Mgr:      core.NewNumericManager(sys),
				Exec:     sim.Content{Sys: sys, NoiseAmp: 0.3, Seed: fleet.DeriveSeed(seed, k)},
				Overhead: sim.IPodOverhead,
				Cycles:   1 + (k*5)%7,
			},
		}
	}
	times, err := arrivals.Bursty{GapOn: 5 * core.Millisecond, MeanOn: 20 * core.Millisecond,
		MeanOff: 60 * core.Millisecond, Seed: seed + 7}.Times(n)
	if err != nil {
		t.Fatal(err)
	}
	return fleet.OpenConfig{Streams: streams, Arrivals: times, Admit: fleet.CapK{K: 3, Queue: -1}}
}

// captureMidRun runs the config at workers=1 checkpointing every
// `every` boundaries and returns a capture from the middle of the run
// (one with both finished and live streams when the run allows it).
func captureMidRun(t *testing.T, cfg fleet.OpenConfig, every int64) *fleet.OpenCapture {
	t.Helper()
	c1 := cfg
	c1.Workers = 1
	var caps []*fleet.OpenCapture
	if _, err := fleet.OpenRunStatsCheckpointed(c1, nil, every, func(c *fleet.OpenCapture) error {
		caps = append(caps, c)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(caps) == 0 {
		t.Fatal("run hit no checkpoint boundaries")
	}
	return caps[len(caps)/2]
}

func compareResults(t *testing.T, label string, want, got *fleet.OpenResult) {
	t.Helper()
	if !reflect.DeepEqual(want.OpenObservations, got.OpenObservations) {
		t.Fatalf("%s: lifecycles or backlog diverged", label)
	}
	if want.Admitted != got.Admitted || want.Delayed != got.Delayed || want.Shed != got.Shed {
		t.Fatalf("%s: admission counts diverged", label)
	}
	if !reflect.DeepEqual(want.Streams, got.Streams) {
		t.Fatalf("%s: stream results diverged", label)
	}
}

// TestSnapshotRoundTrip: Encode then Decode reproduces the snapshot
// exactly — every cursor, accumulator and histogram, bit-for-bit — and
// the decoded capture resumes to the same result as the in-memory one.
func TestSnapshotRoundTrip(t *testing.T) {
	cfg := testConfig(t, 18, 31)
	ref, err := fleet.OpenRunStatsSerial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cap := captureMidRun(t, cfg, 3)
	snap := &Snapshot{
		Meta: Meta{
			Fingerprint:   Fingerprint("demo", "cap3"),
			ArrivalCursor: cap.NextArrival,
			BundleHashes:  []uint64{0xDEADBEEF, 42},
			StreamBundle:  []int32{0, 1, 0},
		},
		Capture: cap,
	}
	var buf bytes.Buffer
	if err := Encode(&buf, snap); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, got) {
		t.Fatalf("decoded snapshot differs from the encoded one:\n%+v\n%+v", snap, got)
	}

	rcfg := cfg
	rcfg.Workers, rcfg.BatchCycles = 2, 1
	res, err := fleet.OpenRunStatsCheckpointed(rcfg, got.Capture, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	compareResults(t, "resume from decoded snapshot", ref, res)
}

// TestEncodeRejectsRetainedRecords: snapshots cover the stats path
// only; a capture smuggling retained records is a caller bug and must
// be an error, not silent data loss.
func TestEncodeRejectsRetainedRecords(t *testing.T) {
	cap := captureMidRun(t, testConfig(t, 12, 33), 3)
	if len(cap.Live) == 0 && len(cap.Done) == 0 {
		t.Fatal("capture has no per-stream entries to corrupt")
	}
	if len(cap.Live) > 0 {
		cap.Live[0].Trace.Records = []sim.Record{{}}
	} else {
		cap.Done[0].Trace.Records = []sim.Record{{}}
	}
	if err := Encode(&bytes.Buffer{}, &Snapshot{Capture: cap}); err == nil || !strings.Contains(err.Error(), "records") {
		t.Fatalf("Encode accepted a capture with retained records (err=%v)", err)
	}
}

// TestDecodeRejectsCorruption: every fault the FaultPlan can inject —
// torn/truncated writes at any prefix, a single flipped bit anywhere —
// must surface as an error from Decode, never a panic and never a
// silently wrong snapshot.
func TestDecodeRejectsCorruption(t *testing.T) {
	cap := captureMidRun(t, testConfig(t, 14, 37), 4)
	snap := &Snapshot{Meta: Meta{Fingerprint: "f"}, Capture: cap}
	var buf bytes.Buffer
	if err := Encode(&buf, snap); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()

	plan := NewFaultPlan(5)
	for i := 0; i < 64; i++ {
		torn := plan.Truncate(whole)
		if _, err := Decode(bytes.NewReader(torn)); err == nil {
			t.Fatalf("Decode accepted a snapshot torn to %d of %d bytes", len(torn), len(whole))
		}
	}
	for i := 0; i < 64; i++ {
		flipped := plan.BitFlip(whole)
		if _, err := Decode(bytes.NewReader(flipped)); err == nil {
			t.Fatal("Decode accepted a snapshot with a flipped bit")
		}
	}
	if _, err := Decode(bytes.NewReader(whole)); err != nil {
		t.Fatalf("pristine snapshot no longer decodes: %v", err)
	}
}

// TestFaultPlanDeterministic: equal seeds give equal fault sequences
// (the property that makes a failing crash test reproducible); distinct
// seeds give distinct ones.
func TestFaultPlanDeterministic(t *testing.T) {
	payload := make([]byte, 256)
	draw := func(seed uint64) []string {
		p := NewFaultPlan(seed)
		var out []string
		for i := 0; i < 8; i++ {
			out = append(out,
				fmt.Sprintf("k%d", p.KillEvents(100)),
				fmt.Sprintf("t%d", len(p.Truncate(payload))),
				fmt.Sprintf("b%x", p.BitFlip(payload)[7]))
		}
		return out
	}
	a, b, c := draw(11), draw(11), draw(12)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed drew different fault sequences")
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds drew the same fault sequence")
	}
}

// TestWriteAtomicKeepsOldContentOnError: a failing write must leave the
// previous file byte-identical and no temporary debris behind.
func TestWriteAtomicKeepsOldContentOnError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	if err := WriteAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("v1"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk on fire")
	if err := WriteAtomic(path, func(w io.Writer) error {
		w.Write([]byte("half of v"))
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("WriteAtomic swallowed the write error: %v", err)
	}
	b, err := os.ReadFile(path)
	if err != nil || string(b) != "v1" {
		t.Fatalf("old content not preserved: %q, %v", b, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temporary debris left behind: %d entries", len(entries))
	}
}

// TestAtomicFileCommitAbort: the streaming form of the same guarantee —
// Commit publishes everything written, Abort leaves the previous
// content untouched with no debris, and double-Commit is an error.
func TestAtomicFileCommitAbort(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "report.csv")

	a, err := NewAtomicFile(path)
	if err != nil {
		t.Fatal(err)
	}
	io.WriteString(a, "row1\n")
	io.WriteString(a, "row2\n")
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := a.Commit(); err == nil {
		t.Fatal("double Commit accepted")
	}
	a.Abort() // no-op after Commit
	if b, _ := os.ReadFile(path); string(b) != "row1\nrow2\n" {
		t.Fatalf("committed content wrong: %q", b)
	}

	b2, err := NewAtomicFile(path)
	if err != nil {
		t.Fatal(err)
	}
	io.WriteString(b2, "interrupted")
	b2.Abort()
	if b, _ := os.ReadFile(path); string(b) != "row1\nrow2\n" {
		t.Fatalf("Abort touched the target: %q", b)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temporary debris left behind: %d entries", len(entries))
	}
}

// TestStoreFallback: the store's recovery ladder. The newest snapshot
// is corrupted on disk (a flipped bit) and the one below it belongs to
// a different run; LoadLatest must log both skips and land on the
// newest valid, matching snapshot.
func TestStoreFallback(t *testing.T) {
	cfg := testConfig(t, 14, 41)
	cap := captureMidRun(t, cfg, 4)
	fp := Fingerprint("run")

	var logged []string
	st := &Store{Dir: t.TempDir(), Keep: -1,
		Logf: func(f string, a ...any) { logged = append(logged, fmt.Sprintf(f, a...)) }}

	mk := func(events int64, fingerprint string) string {
		c := *cap
		c.Events = events
		path, err := st.Save(&Snapshot{Meta: Meta{Fingerprint: fingerprint}, Capture: &c})
		if err != nil {
			t.Fatal(err)
		}
		return path
	}
	want := mk(10, fp)
	mk(20, "other-run")
	newest := mk(30, fp)

	raw, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newest, NewFaultPlan(3).BitFlip(raw), 0o644); err != nil {
		t.Fatal(err)
	}

	s, path, err := st.LoadLatest(fp)
	if err != nil {
		t.Fatal(err)
	}
	if s == nil || path != want || s.Capture.Events != 10 {
		t.Fatalf("fallback landed on %q (snap=%v), want %q", path, s, want)
	}
	if len(logged) != 2 {
		t.Fatalf("expected 2 skip log lines, got %d: %v", len(logged), logged)
	}

	if s, path, err := (&Store{Dir: t.TempDir()}).LoadLatest(fp); s != nil || path != "" || err != nil {
		t.Fatalf("empty store must be a clean fresh start, got %v %q %v", s, path, err)
	}
}

// TestStoreMetrics: a Store with Met wired counts snapshots written,
// bytes encoded, encode latency observations, prunes and LoadLatest
// fallbacks — the counters qmfleetd's /metrics and /healthz read.
func TestStoreMetrics(t *testing.T) {
	cap := captureMidRun(t, testConfig(t, 12, 53), 4)
	reg := obs.NewRegistry("t")
	var clock int64
	met := obs.NewCheckpointMetrics(reg, func() int64 { clock += 1000; return clock })
	st := &Store{Dir: t.TempDir(), Keep: 2, Met: met}
	var paths []string
	for _, ev := range []int64{5, 15, 25} {
		c := *cap
		c.Events = ev
		path, err := st.Save(&Snapshot{Meta: Meta{Fingerprint: "f"}, Capture: &c})
		if err != nil {
			t.Fatal(err)
		}
		paths = append(paths, path)
	}
	if got := met.Snapshots.Value(); got != 3 {
		t.Fatalf("snapshots = %d, want 3", got)
	}
	if got := met.Pruned.Value(); got != 1 {
		t.Fatalf("pruned = %d, want 1 (Keep=2 over 3 saves)", got)
	}
	if met.Bytes.Value() <= 0 {
		t.Fatal("bytes counter did not advance")
	}
	if got := met.Encode.Count(); got != 3 {
		t.Fatalf("encode observations = %d, want 3", got)
	}
	// Corrupt the newest snapshot: the fallback walk must count it.
	newest := paths[len(paths)-1]
	raw, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newest, NewFaultPlan(3).BitFlip(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	if s, _, err := st.LoadLatest("f"); err != nil || s == nil || s.Capture.Events != 15 {
		t.Fatalf("fallback load failed: %v %v", s, err)
	}
	if got := met.Fallbacks.Value(); got != 1 {
		t.Fatalf("fallbacks = %d, want 1", got)
	}
}

// TestStorePrune: Save retains only the Keep newest snapshots.
func TestStorePrune(t *testing.T) {
	cap := captureMidRun(t, testConfig(t, 12, 43), 4)
	st := &Store{Dir: t.TempDir(), Keep: 2}
	for _, ev := range []int64{5, 15, 25, 35} {
		c := *cap
		c.Events = ev
		if _, err := st.Save(&Snapshot{Meta: Meta{Fingerprint: "f"}, Capture: &c}); err != nil {
			t.Fatal(err)
		}
	}
	names := st.list()
	if len(names) != 2 || Events(names[0]) != 25 || Events(names[1]) != 35 {
		t.Fatalf("prune kept %v, want the 2 newest (25, 35)", names)
	}
}

// TestKillResumeEndToEnd is the integration property behind qmfleetd's
// crash recovery: run with periodic checkpointing into a Store, crash
// at a fault-plan-chosen boundary (after the snapshot is durable, as a
// SIGKILL between Save and the next event would be), reload the newest
// valid snapshot by fingerprint and resume at a different scheduler
// shape — the sealed result must match the uninterrupted serial spec
// exactly. Several seeds move the kill point across the run.
func TestKillResumeEndToEnd(t *testing.T) {
	cfg := testConfig(t, 16, 47)
	ref, err := fleet.OpenRunStatsSerial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fp := Fingerprint("e2e")

	for seed := uint64(1); seed <= 4; seed++ {
		st := &Store{Dir: t.TempDir()}
		kill := NewFaultPlan(seed).KillEvents(40)
		run := cfg
		run.Workers = int(seed % 3)
		_, err := fleet.OpenRunStatsCheckpointed(run, nil, 2, func(c *fleet.OpenCapture) error {
			if _, err := st.Save(&Snapshot{Meta: Meta{Fingerprint: fp}, Capture: c}); err != nil {
				return err
			}
			if c.Events >= kill {
				return ErrInjectedKill
			}
			return nil
		})
		if !errors.Is(err, ErrInjectedKill) {
			t.Fatalf("seed %d: run survived its injected kill: %v", seed, err)
		}

		snap, path, err := st.LoadLatest(fp)
		if err != nil {
			t.Fatal(err)
		}
		if snap == nil {
			t.Fatalf("seed %d: no snapshot to resume from", seed)
		}
		resume := cfg
		resume.Workers, resume.BatchCycles = int(seed%4)+1, int(seed%2)
		res, err := fleet.OpenRunStatsCheckpointed(resume, snap.Capture, 0, nil)
		if err != nil {
			t.Fatalf("seed %d: resume from %s: %v", seed, path, err)
		}
		compareResults(t, fmt.Sprintf("seed %d resume", seed), ref, res)
	}
}
