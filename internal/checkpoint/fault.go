package checkpoint

import (
	"fmt"

	"repro/internal/sim"
)

// FaultPlan is the deterministic fault-injection harness: a seeded
// splitmix64 stream from which every injected fault — the kill
// boundary, the truncation point, the flipped bit — is derived, so a
// failing crash-recovery test names a seed that reproduces the exact
// fault sequence. No process-global or wall-clock randomness is
// involved, keeping the harness inside the same RNG discipline detlint
// enforces on the engine.
type FaultPlan struct {
	state uint64
}

// NewFaultPlan seeds a plan. Equal seeds yield equal fault sequences.
func NewFaultPlan(seed uint64) *FaultPlan {
	return &FaultPlan{state: sim.Mix64(seed ^ 0xC4CEB9FE1A85EC53)}
}

// splitmixNext advances the plan's private splitmix64 stream.
func (p *FaultPlan) splitmixNext() uint64 {
	p.state += 0x9E3779B97F4A7C15
	return sim.Mix64(p.state)
}

// KillEvents draws the checkpoint boundary to crash at: an event count
// in [1, max] (max clamped up to 1).
func (p *FaultPlan) KillEvents(max int64) int64 {
	if max < 1 {
		max = 1
	}
	return 1 + int64(p.splitmixNext()%uint64(max))
}

// Truncate simulates a torn write: a copy of b cut to a strictly
// shorter prefix (possibly empty). b must be non-empty.
func (p *FaultPlan) Truncate(b []byte) []byte {
	if len(b) == 0 {
		panic("checkpoint: Truncate of an empty snapshot")
	}
	n := int(p.splitmixNext() % uint64(len(b)))
	return append([]byte(nil), b[:n]...)
}

// BitFlip simulates silent media corruption: a copy of b with one
// uniformly chosen bit inverted. b must be non-empty.
func (p *FaultPlan) BitFlip(b []byte) []byte {
	if len(b) == 0 {
		panic("checkpoint: BitFlip of an empty snapshot")
	}
	out := append([]byte(nil), b...)
	bit := p.splitmixNext() % uint64(8*len(out))
	out[bit/8] ^= 1 << (bit % 8)
	return out
}

// ErrInjectedKill marks a deliberate crash: the checkpoint hook
// returns it to abort the run at an exact event boundary, and the
// harness (or qmfleetd's -kill-after flag) recognises it as the
// simulated death rather than a real failure.
var ErrInjectedKill = fmt.Errorf("checkpoint: injected kill")
