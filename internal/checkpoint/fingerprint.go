package checkpoint

import (
	"fmt"
	"hash/fnv"
)

// Fingerprint hashes the parts that determine a run's identity —
// bundle hash, workload and arrival parameters, admission policy —
// into a short stable string for Meta.Fingerprint. Callers must NOT
// include workers or batch size: those change wall-clock scheduling,
// never results, and a snapshot taken at one shape resumes correctly
// at any other.
func Fingerprint(parts ...string) string {
	h := fnv.New64a()
	for _, p := range parts {
		// Length-prefix each part so ("ab","c") and ("a","bc") differ.
		fmt.Fprintf(h, "%d:%s", len(p), p)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
