// Package checkpoint persists open-fleet runs: a versioned, checksummed
// binary snapshot format around fleet.OpenCapture, an atomic on-disk
// store with corrupt-fallback loading, and a deterministic
// fault-injection harness for testing every crash window.
//
// The format is defensive at two layers. The envelope — magic, version,
// payload length, CRC-32 — catches torn, truncated and bit-flipped
// files before a single payload byte is interpreted; the payload
// decoder bounds-checks every read; and fleet's capture restore
// re-validates every cross-reference against the run configuration. A
// snapshot that fails any layer is an error, never a panic and never a
// silently wrong resume.
//
//detlint:engine
package checkpoint

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Meta identifies what a snapshot belongs to and where its input
// sources stood, so a resuming process can rebuild the exact run
// context before handing the capture back to the engine.
type Meta struct {
	// Fingerprint is the caller-computed identity of everything that
	// determines the run besides (workers, batch): bundle hash, stream
	// construction parameters, arrival model and seed, admission
	// policy. Resume must refuse a snapshot whose fingerprint differs —
	// the capture would be internally coherent but describe a different
	// run.
	Fingerprint string
	// ArrivalCursor counts the arrival-source entries consumed when the
	// capture was taken (NDJSON lines for a serving daemon, process
	// instants for a batch run): resume re-reads the source and skips
	// exactly this many.
	ArrivalCursor int
	// BundleHashes lists the controller bundles live at capture time
	// (more than one across a hot swap); StreamBundle maps each fed
	// stream to an index in it. Empty StreamBundle means every stream
	// used BundleHashes[0].
	BundleHashes []uint64
	StreamBundle []int32
}

// Snapshot is one persisted checkpoint: source metadata plus the
// engine's deep capture.
type Snapshot struct {
	Meta    Meta
	Capture *fleet.OpenCapture
}

// Events returns the capture's event counter — the snapshot's position
// on the engine's checkpoint-boundary clock and its on-disk name.
func (s *Snapshot) Events() int64 { return s.Capture.Events }

const (
	// Version is the current snapshot format version; Decode rejects
	// any other.
	Version = 1
	// headerSize is magic + version + payload length + CRC-32.
	headerSize = 8 + 4 + 8 + 4
	// maxPayload bounds the declared payload length before any
	// allocation, so a corrupt header cannot OOM the reader.
	maxPayload = 1 << 31
)

// magic opens every snapshot file.
var magic = [8]byte{'Q', 'M', 'F', 'C', 'K', 'P', 'T', 0}

// Encode writes s to w in the versioned, CRC-wrapped binary format.
// Captures are stats-mode by construction; a capture carrying retained
// records is a caller bug and is rejected rather than silently dropped.
func Encode(w io.Writer, s *Snapshot) error {
	if s.Capture == nil {
		return fmt.Errorf("checkpoint: snapshot without a capture")
	}
	var e enc
	e.meta(&s.Meta)
	if err := e.capture(s.Capture); err != nil {
		return err
	}
	var hdr [headerSize]byte
	copy(hdr[:8], magic[:])
	le32(hdr[8:], Version)
	le64(hdr[12:], uint64(len(e.b)))
	le32(hdr[20:], crc32.ChecksumIEEE(e.b))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(e.b)
	return err
}

// Decode reads one snapshot, verifying magic, version, length and
// checksum before interpreting a single payload byte. A short read is
// a truncation error; a checksum mismatch names itself — the two
// failure classes the store's fallback logic distinguishes from I/O
// errors.
func Decode(r io.Reader) (*Snapshot, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("checkpoint: truncated snapshot header: %w", err)
	}
	if !bytes.Equal(hdr[:8], magic[:]) {
		return nil, fmt.Errorf("checkpoint: bad magic %q", hdr[:8])
	}
	if v := rd32(hdr[8:]); v != Version {
		return nil, fmt.Errorf("checkpoint: unsupported snapshot version %d (have %d)", v, Version)
	}
	n := rd64(hdr[12:])
	if n > maxPayload {
		return nil, fmt.Errorf("checkpoint: declared payload of %d bytes exceeds the %d-byte bound", n, maxPayload)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("checkpoint: truncated snapshot: want %d payload bytes: %w", n, err)
	}
	if sum := crc32.ChecksumIEEE(payload); sum != rd32(hdr[20:]) {
		return nil, fmt.Errorf("checkpoint: checksum mismatch: payload hashes to %08x, header says %08x", sum, rd32(hdr[20:]))
	}
	d := dec{b: payload}
	s := &Snapshot{Capture: new(fleet.OpenCapture)}
	d.meta(&s.Meta)
	d.capture(s.Capture)
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.b) {
		return nil, fmt.Errorf("checkpoint: %d trailing bytes after the payload", len(d.b)-d.off)
	}
	return s, nil
}

// enc builds the payload. All integers are little-endian; signed values
// travel as two's-complement u64; floats as IEEE-754 bits, so restored
// accumulators are bit-exact.
type enc struct{ b []byte }

func le32(b []byte, v uint32) { b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24) }
func le64(b []byte, v uint64) {
	le32(b, uint32(v))
	le32(b[4:], uint32(v>>32))
}
func rd32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
func rd64(b []byte) uint64 { return uint64(rd32(b)) | uint64(rd32(b[4:]))<<32 }

func (e *enc) u64(v uint64) {
	var x [8]byte
	le64(x[:], v)
	e.b = append(e.b, x[:]...)
}
func (e *enc) i64(v int64)      { e.u64(uint64(v)) }
func (e *enc) int(v int)        { e.i64(int64(v)) }
func (e *enc) time(t core.Time) { e.i64(int64(t)) }
func (e *enc) f64(v float64)    { e.u64(math.Float64bits(v)) }
func (e *enc) i32(v int32)      { e.i64(int64(v)) }
func (e *enc) bool(v bool)      { e.b = append(e.b, b2u(v)) }
func (e *enc) count(n int)      { e.u64(uint64(n)) }
func (e *enc) str(s string)     { e.count(len(s)); e.b = append(e.b, s...) }

func b2u(v bool) byte {
	if v {
		return 1
	}
	return 0
}

func (e *enc) meta(m *Meta) {
	e.str(m.Fingerprint)
	e.int(m.ArrivalCursor)
	e.count(len(m.BundleHashes))
	for _, h := range m.BundleHashes {
		e.u64(h)
	}
	e.count(len(m.StreamBundle))
	for _, i := range m.StreamBundle {
		e.i32(i)
	}
}

func (e *enc) capture(c *fleet.OpenCapture) error {
	e.i64(c.Events)
	e.int(c.NextArrival)
	e.int(c.InService)
	e.f64(c.CPULoad)
	e.time(c.FirstArrival)
	e.time(c.LastT)
	e.time(c.LastDep)
	e.f64(c.BacklogIntegral)
	e.int(c.MaxBacklog)
	e.count(len(c.Backlog))
	for _, k := range c.Backlog {
		e.i32(k)
	}
	e.count(len(c.Departures))
	for _, d := range c.Departures {
		e.time(d.T)
		e.i32(d.K)
	}
	e.count(len(c.Lifecycles))
	for i := range c.Lifecycles {
		lc := &c.Lifecycles[i]
		e.str(lc.Name)
		e.time(lc.Arrival)
		e.time(lc.Admitted)
		e.time(lc.Departed)
		e.bool(lc.Queued)
		e.bool(lc.Shed)
		e.bool(lc.Failed)
	}
	e.count(len(c.Done))
	for i := range c.Done {
		d := &c.Done[i]
		e.i32(d.K)
		e.str(d.Err)
		if err := e.trace(&d.Trace); err != nil {
			return err
		}
		e.sink(&d.Sink)
	}
	e.count(len(c.Live))
	for i := range c.Live {
		l := &c.Live[i]
		e.i32(l.K)
		e.time(l.State.T)
		e.int(l.State.Cycle)
		if err := e.trace(&l.Trace); err != nil {
			return err
		}
		e.sink(&l.Sink)
	}
	return nil
}

func (e *enc) trace(tr *sim.Trace) error {
	if len(tr.Records) != 0 {
		return fmt.Errorf("checkpoint: capture carries %d retained records; snapshots cover the stats path only", len(tr.Records))
	}
	e.str(tr.Manager)
	e.time(tr.Period)
	e.int(tr.Cycles)
	e.time(tr.Final)
	e.time(tr.TotalExec)
	e.time(tr.TotalOverhead)
	e.time(tr.TotalIdle)
	e.int(tr.Decisions)
	e.int(tr.Misses)
	return nil
}

func (e *enc) sink(s *sim.SinkState) {
	e.int(s.Records)
	e.int(s.Decisions)
	e.int(s.Misses)
	e.int(s.DeadlineRecords)
	e.time(s.TotalExec)
	e.time(s.TotalOverhead)
	e.f64(s.QualitySum)
	e.count(len(s.QualityHist))
	for _, v := range s.QualityHist {
		e.int(v)
	}
	e.int(s.Switches)
	e.f64(s.AbsDeltaSum)
	e.int(s.MinQ)
	e.int(s.MaxQ)
	e.i64(int64(s.LastQ))
}

// dec consumes the payload with sticky-error, bounds-checked reads:
// once a read overruns, every later read returns zero values and the
// first error is reported.
type dec struct {
	b   []byte
	off int
	err error
}

// maxCount bounds every declared element count: the CRC already vouches
// for the bytes, but a logically corrupt writer must not make the
// reader allocate unbounded slices.
const maxCount = 1 << 24

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("checkpoint: corrupt payload at offset %d: %s", d.off, fmt.Sprintf(format, args...))
	}
}

func (d *dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.b)-d.off < n {
		d.fail("want %d more bytes, have %d", n, len(d.b)-d.off)
		return nil
	}
	out := d.b[d.off : d.off+n]
	d.off += n
	return out
}

func (d *dec) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return rd64(b)
}
func (d *dec) i64() int64      { return int64(d.u64()) }
func (d *dec) int() int        { return int(d.i64()) }
func (d *dec) time() core.Time { return core.Time(d.i64()) }
func (d *dec) f64() float64    { return math.Float64frombits(d.u64()) }
func (d *dec) i32() int32 {
	v := d.i64()
	if v < math.MinInt32 || v > math.MaxInt32 {
		d.fail("value %d overflows int32", v)
		return 0
	}
	return int32(v)
}
func (d *dec) bool() bool {
	b := d.take(1)
	return b != nil && b[0] != 0
}
func (d *dec) count() int {
	n := d.u64()
	if n > maxCount {
		d.fail("element count %d exceeds the %d bound", n, maxCount)
		return 0
	}
	return int(n)
}
func (d *dec) str() string {
	n := d.count()
	return string(d.take(n))
}

func (d *dec) meta(m *Meta) {
	m.Fingerprint = d.str()
	m.ArrivalCursor = d.int()
	if n := d.count(); n > 0 {
		m.BundleHashes = make([]uint64, n)
		for i := range m.BundleHashes {
			m.BundleHashes[i] = d.u64()
		}
	}
	if n := d.count(); n > 0 {
		m.StreamBundle = make([]int32, n)
		for i := range m.StreamBundle {
			m.StreamBundle[i] = d.i32()
		}
	}
}

func (d *dec) capture(c *fleet.OpenCapture) {
	c.Events = d.i64()
	c.NextArrival = d.int()
	c.InService = d.int()
	c.CPULoad = d.f64()
	c.FirstArrival = d.time()
	c.LastT = d.time()
	c.LastDep = d.time()
	c.BacklogIntegral = d.f64()
	c.MaxBacklog = d.int()
	if n := d.count(); n > 0 {
		c.Backlog = make([]int32, n)
		for i := range c.Backlog {
			c.Backlog[i] = d.i32()
		}
	}
	if n := d.count(); n > 0 {
		c.Departures = make([]fleet.DepEntry, n)
		for i := range c.Departures {
			c.Departures[i].T = d.time()
			c.Departures[i].K = d.i32()
		}
	}
	if n := d.count(); n > 0 {
		c.Lifecycles = make([]metrics.Lifecycle, n)
		for i := range c.Lifecycles {
			lc := &c.Lifecycles[i]
			lc.Name = d.str()
			lc.Arrival = d.time()
			lc.Admitted = d.time()
			lc.Departed = d.time()
			lc.Queued = d.bool()
			lc.Shed = d.bool()
			lc.Failed = d.bool()
		}
	}
	if n := d.count(); n > 0 {
		c.Done = make([]fleet.DoneStream, n)
		for i := range c.Done {
			dn := &c.Done[i]
			dn.K = d.i32()
			dn.Err = d.str()
			d.trace(&dn.Trace)
			d.sink(&dn.Sink)
		}
	}
	if n := d.count(); n > 0 {
		c.Live = make([]fleet.LiveSlot, n)
		for i := range c.Live {
			l := &c.Live[i]
			l.K = d.i32()
			l.State.T = d.time()
			l.State.Cycle = d.int()
			d.trace(&l.Trace)
			d.sink(&l.Sink)
		}
	}
}

func (d *dec) trace(tr *sim.Trace) {
	tr.Manager = d.str()
	tr.Period = d.time()
	tr.Cycles = d.int()
	tr.Final = d.time()
	tr.TotalExec = d.time()
	tr.TotalOverhead = d.time()
	tr.TotalIdle = d.time()
	tr.Decisions = d.int()
	tr.Misses = d.int()
}

func (d *dec) sink(s *sim.SinkState) {
	s.Records = d.int()
	s.Decisions = d.int()
	s.Misses = d.int()
	s.DeadlineRecords = d.int()
	s.TotalExec = d.time()
	s.TotalOverhead = d.time()
	s.QualitySum = d.f64()
	if n := d.count(); n > 0 {
		s.QualityHist = make([]int, n)
		for i := range s.QualityHist {
			s.QualityHist[i] = d.int()
		}
	}
	s.Switches = d.int()
	s.AbsDeltaSum = d.f64()
	s.MinQ = d.int()
	s.MaxQ = d.int()
	s.LastQ = core.Level(d.i64())
}
