package workloads

import (
	"testing"

	"repro/internal/core"
	"repro/internal/regions"
	"repro/internal/sim"
)

func TestCatalogBuilds(t *testing.T) {
	cat, err := Catalog()
	if err != nil {
		t.Fatal(err)
	}
	if len(cat) != 3 {
		t.Fatalf("catalog size %d", len(cat))
	}
	for name, sys := range cat {
		if err := sys.Feasible(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sys.NumActions() < 50 {
			t.Fatalf("%s: only %d actions", name, sys.NumActions())
		}
	}
}

func TestWorkloadValidation(t *testing.T) {
	if _, err := AudioEncoder(0, core.Second); err == nil {
		t.Error("zero granules accepted")
	}
	if _, err := SDRPipeline(-1, core.Second); err == nil {
		t.Error("negative bursts accepted")
	}
	if _, err := VideoDecoder(0, core.Second); err == nil {
		t.Error("zero macroblocks accepted")
	}
	// Infeasible deadlines propagate from the scheduler.
	if _, err := AudioEncoder(32, core.Microsecond); err == nil {
		t.Error("infeasible audio deadline accepted")
	}
}

// TestGeneralityAcrossWorkloads: the full manager stack (numeric,
// symbolic, relaxed) stays safe and decision-equivalent on every
// workload in the catalog, under adversarial and content-driven
// execution — the method is not encoder-specific.
func TestGeneralityAcrossWorkloads(t *testing.T) {
	cat, err := Catalog()
	if err != nil {
		t.Fatal(err)
	}
	for name, sys := range cat {
		tab := regions.BuildTDTable(sys)
		rt := regions.MustBuildRelaxTables(tab, []int{1, 5, 10, 25})
		managers := []core.Manager{
			core.NewNumericManager(sys),
			regions.NewSymbolicManager(tab),
			regions.NewRelaxedManager(rt),
		}
		execs := []sim.ExecModel{
			sim.WorstCase{Sys: sys},
			sim.Content{Sys: sys, NoiseAmp: 0.4, Seed: 7},
		}
		for _, e := range execs {
			var firstQ []core.Level
			for mi, m := range managers {
				tr := (&sim.Runner{Sys: sys, Mgr: m, Exec: e,
					Overhead: sim.FreeOverhead, Cycles: 2}).MustRun()
				if tr.Misses != 0 {
					t.Fatalf("%s/%s under %T: %d misses", name, m.Name(), e, tr.Misses)
				}
				qs := make([]core.Level, len(tr.Records))
				for i, r := range tr.Records {
					qs[i] = r.Q
				}
				if mi == 0 {
					firstQ = qs
					continue
				}
				for i := range qs {
					if qs[i] != firstQ[i] {
						t.Fatalf("%s/%s diverges from numeric at record %d", name, m.Name(), i)
					}
				}
			}
		}
	}
}

// TestRelaxationHelpsEveryWorkload: multi-step relaxation must engage on
// each workload (decision count clearly below action count).
func TestRelaxationHelpsEveryWorkload(t *testing.T) {
	cat, err := Catalog()
	if err != nil {
		t.Fatal(err)
	}
	for name, sys := range cat {
		tab := regions.BuildTDTable(sys)
		rt := regions.MustBuildRelaxTables(tab, []int{1, 5, 10, 25})
		tr := (&sim.Runner{Sys: sys, Mgr: regions.NewRelaxedManager(rt),
			Exec:     sim.Content{Sys: sys, NoiseAmp: 0.2, Seed: 3},
			Overhead: sim.FreeOverhead, Cycles: 2}).MustRun()
		if tr.Decisions*2 >= len(tr.Records) {
			t.Fatalf("%s: relaxation weak (%d decisions for %d actions)",
				name, tr.Decisions, len(tr.Records))
		}
	}
}
