// Package workloads provides additional cyclic multimedia workloads
// beyond the paper's MPEG encoder, each built from a task graph through
// the scheduler. The paper's introduction motivates the method for
// "multimedia and telecommunications" generally; these systems back the
// generality checks: the same Quality Manager machinery must stay safe
// and cheap on all of them.
//
// All timing values are synthetic but follow each domain's real shape
// (e.g. psychoacoustic analysis dominates audio encoding; FFT size is
// the SDR quality knob).
package workloads

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sched"
)

func row(baseMicros, slopeMicros int64, levels int) ([]core.Time, []core.Time) {
	av := make([]core.Time, levels)
	wc := make([]core.Time, levels)
	for q := 0; q < levels; q++ {
		av[q] = core.Time(baseMicros+slopeMicros*int64(q)) * core.Microsecond
		wc[q] = av[q] * 8 / 5
	}
	return av, wc
}

// AudioEncoder models a perceptual audio encoder cycle: one frame of
// granules through filterbank → psychoacoustic model → quantisation →
// Huffman packing. Quality controls the psychoacoustic resolution and
// the quantisation search depth. granules ≈ 32 gives a ~100-action
// cycle.
func AudioEncoder(granules int, deadline core.Time) (*core.System, error) {
	if granules <= 0 {
		return nil, fmt.Errorf("workloads: non-positive granule count %d", granules)
	}
	const levels = 5
	inAv, inWC := row(800, 0, levels)
	fbAv, fbWC := row(120, 15, levels)
	pmAv, pmWC := row(150, 90, levels) // psychoacoustics dominate at high q
	qzAv, qzWC := row(100, 40, levels)
	hfAv, hfWC := row(60, 20, levels)
	g := &sched.Graph{
		Levels: levels,
		Nodes: []sched.Node{
			{Name: "input", Av: inAv, WC: inWC},
			{Name: "filterbank", Av: fbAv, WC: fbWC, After: []string{"input"}, Repeat: granules},
			{Name: "psymodel", Av: pmAv, WC: pmWC, After: []string{"filterbank"}, Repeat: granules},
			{Name: "quantize", Av: qzAv, WC: qzWC, After: []string{"psymodel"}, Repeat: granules},
			{Name: "huffman", Av: hfAv, WC: hfWC, After: []string{"quantize"}, Repeat: granules, Deadline: deadline},
		},
	}
	return g.Schedule()
}

// SDRPipeline models a software-defined-radio receive chain: per-burst
// channelise → demodulate → decode, where quality selects the FFT
// resolution and equaliser taps. bursts ≈ 64 gives a ~200-action cycle.
func SDRPipeline(bursts int, deadline core.Time) (*core.System, error) {
	if bursts <= 0 {
		return nil, fmt.Errorf("workloads: non-positive burst count %d", bursts)
	}
	const levels = 4
	chAv, chWC := row(90, 60, levels) // FFT size doubles per level
	dmAv, dmWC := row(70, 25, levels)
	dcAv, dcWC := row(50, 10, levels)
	g := &sched.Graph{
		Levels: levels,
		Nodes: []sched.Node{
			{Name: "channelize", Av: chAv, WC: chWC, Repeat: bursts},
			{Name: "demod", Av: dmAv, WC: dmWC, After: []string{"channelize"}, Repeat: bursts},
			{Name: "decode", Av: dcAv, WC: dcWC, After: []string{"demod"}, Repeat: bursts, Deadline: deadline},
		},
	}
	return g.Schedule()
}

// VideoDecoder models the player-side workload of [15]'s setting: parse →
// dequantise/IDCT → motion compensate → postprocess per macroblock,
// where quality selects the postprocessing strength (deblocking taps)
// and IDCT precision.
func VideoDecoder(mbs int, deadline core.Time) (*core.System, error) {
	if mbs <= 0 {
		return nil, fmt.Errorf("workloads: non-positive macroblock count %d", mbs)
	}
	const levels = 6
	hdAv, hdWC := row(500, 0, levels)
	psAv, psWC := row(90, 5, levels)
	idAv, idWC := row(140, 25, levels)
	mcAv, mcWC := row(120, 15, levels)
	ppAv, ppWC := row(40, 70, levels) // postprocessing is the big knob
	g := &sched.Graph{
		Levels: levels,
		Nodes: []sched.Node{
			{Name: "header", Av: hdAv, WC: hdWC},
			{Name: "parse", Av: psAv, WC: psWC, After: []string{"header"}, Repeat: mbs},
			{Name: "idct", Av: idAv, WC: idWC, After: []string{"parse"}, Repeat: mbs},
			{Name: "mocomp", Av: mcAv, WC: mcWC, After: []string{"idct"}, Repeat: mbs},
			{Name: "postproc", Av: ppAv, WC: ppWC, After: []string{"mocomp"}, Repeat: mbs, Deadline: deadline},
		},
	}
	return g.Schedule()
}

// Catalog returns every workload at a default, qmin-feasible sizing —
// the inputs of the generality tests and the cross-workload benchmark.
func Catalog() (map[string]*core.System, error) {
	out := map[string]*core.System{}
	audio, err := AudioEncoder(32, 26*core.Millisecond)
	if err != nil {
		return nil, err
	}
	out["audio-encoder"] = audio
	sdr, err := SDRPipeline(64, 38*core.Millisecond)
	if err != nil {
		return nil, err
	}
	out["sdr-pipeline"] = sdr
	dec, err := VideoDecoder(396, 260*core.Millisecond)
	if err != nil {
		return nil, err
	}
	out["video-decoder"] = dec
	return out, nil
}
