// Integration tests spanning the whole tool flow of the paper's Figure 1:
// schedule construction → timing estimation → controller compilation →
// (serialisation) → controlled execution → metrics, plus the end-to-end
// encode/decode loop on the real substrate.
package repro

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/decoder"
	"repro/internal/encoder"
	"repro/internal/experiment"
	"repro/internal/frame"
	"repro/internal/metrics"
	"repro/internal/profiler"
	"repro/internal/regions"
	"repro/internal/sched"
	"repro/internal/sim"
)

// TestFigure1ToolFlow drives the full compiler pipeline: a task graph is
// scheduled, compiled into a controller bundle, shipped through bytes,
// reloaded, and the loaded controller runs the workload safely.
func TestFigure1ToolFlow(t *testing.T) {
	// 1. Schedule: the encoder pipeline as a task graph (12 MBs).
	levels := 7
	mkRow := func(base, slope int64) ([]core.Time, []core.Time) {
		av := make([]core.Time, levels)
		wc := make([]core.Time, levels)
		for q := 0; q < levels; q++ {
			av[q] = core.Time(base+slope*int64(q)) * core.Microsecond
			wc[q] = av[q] * 8 / 5
		}
		return av, wc
	}
	setupAv, setupWC := mkRow(3000, 0)
	meAv, meWC := mkRow(400, 150)
	tqAv, tqWC := mkRow(500, 80)
	vlAv, vlWC := mkRow(300, 70)
	graph := &sched.Graph{
		Levels: levels,
		Nodes: []sched.Node{
			{Name: "setup", Av: setupAv, WC: setupWC},
			{Name: "me", Av: meAv, WC: meWC, After: []string{"setup"}, Repeat: 12},
			{Name: "tq", Av: tqAv, WC: tqWC, After: []string{"me"}, Repeat: 12},
			{Name: "vlc", Av: vlAv, WC: vlWC, After: []string{"tq"}, Repeat: 12, Deadline: 40 * core.Millisecond},
		},
	}
	sys, err := graph.Schedule()
	if err != nil {
		t.Fatal(err)
	}

	// 2. Compile into a bundle and ship it through serialisation.
	bundle, err := controller.Compile(controller.SpecFromSystem("pipeline", sys, []int{1, 4, 8}))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := bundle.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := controller.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// 3. Run the loaded controller under adversarial execution.
	trc := (&sim.Runner{
		Sys: loaded.System(), Mgr: loaded.Relaxed(),
		Exec:     sim.WorstCase{Sys: loaded.System()},
		Overhead: sim.FreeOverhead, Cycles: 5,
	}).MustRun()
	if trc.Misses != 0 {
		t.Fatalf("loaded controller missed %d deadlines", trc.Misses)
	}

	// 4. Metrics come out coherent and exportable.
	sum := metrics.Summarize(trc)
	if sum.Decisions == 0 || sum.AvgQuality < 0 {
		t.Fatalf("degenerate summary: %+v", sum)
	}
	var csv strings.Builder
	if err := metrics.WriteTraceCSV(&csv, trc); err != nil {
		t.Fatal(err)
	}
	if strings.Count(csv.String(), "\n") != len(trc.Records)+1 {
		t.Fatal("trace CSV row count mismatch")
	}
}

// TestPaperPipelineEndToEnd exercises the reproduction experiment exactly
// as cmd/figures does, and asserts the headline claims in one place.
func TestPaperPipelineEndToEnd(t *testing.T) {
	s := experiment.Paper(3) // a seed the unit tests don't use
	var prevOverhead float64 = 1
	var prevQuality float64
	for _, m := range s.Managers() {
		tr := s.Run(m)
		if tr.Misses != 0 {
			t.Fatalf("%s missed deadlines", m.Name())
		}
		oh := tr.OverheadFraction()
		q := metrics.Summarize(tr).AvgQuality
		if oh >= prevOverhead {
			t.Fatalf("%s overhead %.4f did not improve on previous %.4f", m.Name(), oh, prevOverhead)
		}
		if q < prevQuality {
			t.Fatalf("%s quality %.3f fell below previous %.3f", m.Name(), q, prevQuality)
		}
		prevOverhead, prevQuality = oh, q
	}
}

// TestProfiledLiveSystemControlsRealEncoder closes the loop on the real
// substrate: profile → system → tables → drive the actual encoder with
// the symbolic manager using *simulated* time drawn from the profile, and
// verify the produced bitstream decodes bit-exactly.
func TestProfiledLiveSystemControlsRealEncoder(t *testing.T) {
	src := &frame.Source{W: 64, H: 48, Seed: 21}
	const levels = 5
	prof, err := profiler.Profile(encoder.MustNew(src, levels), 2, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	enc := encoder.MustNew(src, levels)
	// Budget: halfway between qmin worst case and qmax average.
	var wmin, avmax core.Time
	for i := 0; i < enc.NumActions(); i++ {
		ct := prof.Classes[encoder.ActionClass(i)]
		wmin += ct.WC[0]
		avmax += ct.Av[levels-1]
	}
	sys, err := prof.System(enc.NumMB(), (wmin*2+avmax)/2)
	if err != nil {
		t.Fatal(err)
	}
	tab := regions.BuildTDTable(sys)
	mgr := regions.NewSymbolicManager(tab)

	// Drive the real encoder with simulated clock advances from the
	// profiled averages (deterministic stand-in for the live clock).
	frames := 3
	var perMB [][]core.Level
	var recons []*frame.Frame
	for f := 0; f < frames; f++ {
		mbQ := make([]core.Level, enc.NumMB())
		tm := core.Time(0)
		for i := 0; i < enc.NumActions(); i++ {
			d := mgr.Decide(i, tm)
			enc.Exec(i, d.Q)
			if encoder.ActionClass(i) == encoder.ClassTransform {
				mbQ[encoder.ActionMB(i)] = d.Q
			}
			tm += sys.Av(i, d.Q)
		}
		if tm > sys.LastDeadline() {
			t.Fatalf("frame %d: average-time completion %v past deadline %v", f, tm, sys.LastDeadline())
		}
		perMB = append(perMB, mbQ)
		recons = append(recons, enc.Recon().Clone())
	}
	dec, err := decoder.New(enc.Bitstream(), 64, 48, levels)
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < frames; f++ {
		got, err := dec.DecodeFrame(perMB[f])
		if err != nil {
			t.Fatalf("frame %d: %v", f, err)
		}
		for i := range got.Y {
			if got.Y[i] != recons[f].Y[i] {
				t.Fatalf("frame %d: decode mismatch at pixel %d", f, i)
			}
		}
	}
}
