// Command qmfleet runs a fleet of independent quality-managed streams
// on the concurrent multi-stream engine and prints the per-stream and
// fleet-wide report. It is the scale-out counterpart of qmsim: one
// compiled controller (shared immutable tables), N streams with their
// own cycle clocks and content seeds, a goroutine worker pool sharded
// by stream. Per-stream results are byte-identical to serial qmsim runs
// at the same derived seeds, whatever the worker count.
//
// Usage:
//
//	qmfleet [-streams 16] [-workers 0] [-batch 32] [-cycles 8] [-seed 1]
//	        [-retain] [-csv records.csv] [-json fleet.json]
//	        [-arrivals fixed|poisson|bursty|trace:file.csv]
//	        [-rate 1] [-burst 4] [-admit all|cap=K[,queue=N]|budget=U[,queue=N]]
//	        [-instances 1] [-route round-robin|least-backlog|weighted|affinity]
//	        [-cpuprofile cpu.prof] [-memprofile mem.prof]
//	        [-metrics out.prom] [-trace out.json]
//	        [-mix encoder|workloads | -bundle controller.json [-manager relaxed]]
//
// By default the fleet is closed: all streams start at t = 0 and run to
// completion. -arrivals opens the system — streams arrive over simulated
// time from the selected deterministic process (rate/burst are relative
// to the first stream's cycle period), pass the -admit controller
// (queueing and shedding included) and depart when done; the report
// gains lifecycle, backlog and sojourn sections. A fixed seed produces
// byte-identical traces and admission decisions at any -workers/-batch.
//
// -instances > 1 scales an open run out across M parallel engine
// instances behind the virtual-time router (internal/cluster): each
// arriving stream is assigned to an instance by the -route policy, every
// instance runs its own -workers pool and -admit controller, and the
// report gains per-instance and fairness sections. Routing decisions are
// a pure function of the serial event order, so results stay
// byte-identical at any -workers/-batch/-lookahead — and identical to
// the single-goroutine router spec. With -metrics, every fleet
// instrument gains one instance="i" series per instance.
//
// -metrics writes the run's engine counters (admission verdicts,
// batches, steals, parks, ring occupancy, checkpoint-store activity) as
// Prometheus text exposition after the run; -trace records engine
// events into a bounded ring stamped with virtual instants and writes
// Chrome trace JSON. Neither changes results: the engine is
// property-tested byte-identical with observability on and off.
//
// Streams run zero-retention by default: each feeds a StatsSink and the
// report is computed from streamed aggregates, so memory is O(streams)
// regardless of run length. -retain restores full per-action traces.
// -csv streams every action record to the given file as it is observed
// (still zero retention; rows of different streams interleave in worker
// order and carry a stream column). -json persists the run — config
// headline, fleet summary, open-system summary — for cmd/figures.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/arrivals"
	"repro/internal/checkpoint"
	"repro/internal/cluster"
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("qmfleet: ")
	streams := flag.Int("streams", 16, "number of independent streams")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	batch := flag.Int("batch", fleet.DefaultBatchCycles, "cycles a worker advances one stream before moving to the next in its shard")
	lookahead := flag.Int("lookahead", fleet.DefaultLookahead, "admitted slots batched per worker wake in open runs (results identical at any value)")
	cycles := flag.Int("cycles", 8, "cycles (frames) per stream")
	seed := flag.Uint64("seed", 1, "base content seed; stream k uses a seed derived from it")
	mix := flag.String("mix", "encoder", "stream mix: encoder (paper fleet) or workloads (catalog mix)")
	bundlePath := flag.String("bundle", "", "run the fleet from a compiled controller bundle (qmcompile output) instead of -mix")
	manager := flag.String("manager", "relaxed", "manager instantiated from the bundle: numeric, symbolic, relaxed (with -bundle)")
	retain := flag.Bool("retain", false, "retain full per-action traces (memory grows as streams × cycles × actions); default streams O(1)-memory statistics per stream")
	csvPath := flag.String("csv", "", "stream per-action records to this CSV file with zero retention (incompatible with -retain)")
	arrivalsSpec := flag.String("arrivals", "", "open the system with this arrival process: fixed, poisson, bursty, or trace:file.csv (default: closed fleet, all streams at t=0)")
	rate := flag.Float64("rate", 1, "mean arrivals per stream period (fixed/poisson/bursty)")
	burst := flag.Float64("burst", 4, "burstiness of the bursty process: peak-to-mean arrival-rate ratio ≥ 1")
	admitSpec := flag.String("admit", "all", "admission policy: all, cap=K[,queue=N] or budget=U[,queue=N] (with -arrivals)")
	instances := flag.Int("instances", 1, "parallel engine instances behind the virtual-time router (with -arrivals)")
	routeSpec := flag.String("route", "round-robin", "routing policy across instances: round-robin, least-backlog, weighted or affinity (with -instances)")
	jsonPath := flag.String("json", "", "persist the run (config, fleet summary, open-system summary) as JSON for cmd/figures")
	ckptDir := flag.String("checkpoint", "", "checkpoint the run into this directory (open stats runs only); with -resume, continue from the newest valid snapshot")
	every := flag.Int64("every", 64, "engine event groups between checkpoints (with -checkpoint)")
	resumeRun := flag.Bool("resume", false, "resume from the newest valid snapshot in -checkpoint before running")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
	memProfile := flag.String("memprofile", "", "write a heap profile taken after the run to this file (go tool pprof)")
	metricsPath := flag.String("metrics", "", "write the run's engine metrics as Prometheus text exposition to this file")
	tracePath := flag.String("trace", "", "write a Chrome trace JSON of engine events to this file")
	flag.Parse()

	if flag.NArg() > 0 {
		log.Fatalf("unexpected arguments %q; qmfleet is configured by flags only", flag.Args())
	}
	if *streams <= 0 {
		log.Fatalf("-streams must be a positive stream count, got %d", *streams)
	}
	if *cycles <= 0 {
		log.Fatalf("-cycles must be a positive cycle count, got %d", *cycles)
	}
	if *workers < 0 {
		log.Fatalf("-workers must be ≥ 0 (0 selects GOMAXPROCS), got %d", *workers)
	}
	if *batch <= 0 {
		log.Fatalf("-batch must be a positive cycle batch, got %d", *batch)
	}
	if *lookahead <= 0 {
		log.Fatalf("-lookahead must be a positive window, got %d", *lookahead)
	}
	if *rate <= 0 || math.IsNaN(*rate) || math.IsInf(*rate, 0) {
		log.Fatalf("-rate must be a positive arrival rate, got %v", *rate)
	}
	if *burst < 1 || math.IsNaN(*burst) || math.IsInf(*burst, 0) {
		log.Fatalf("-burst must be a peak-to-mean ratio ≥ 1, got %v", *burst)
	}
	if *csvPath != "" && *retain {
		log.Fatal("-csv streams records through the sink path; drop -retain (use metrics.WriteTraceCSV for retained traces)")
	}
	if *ckptDir != "" {
		if *arrivalsSpec == "" {
			log.Fatal("-checkpoint snapshots the open engine; add -arrivals")
		}
		if *retain {
			log.Fatal("-checkpoint covers the zero-retention stats path; drop -retain")
		}
		if *csvPath != "" {
			log.Fatal("-checkpoint cannot replay records already streamed to -csv; drop one of the two")
		}
		if *every <= 0 {
			log.Fatalf("-every must be a positive event interval, got %d", *every)
		}
	}
	if *resumeRun && *ckptDir == "" {
		log.Fatal("-resume needs -checkpoint")
	}
	admitter, err := fleet.ParseAdmitter(*admitSpec)
	if err != nil {
		log.Fatal(err)
	}
	if *instances <= 0 {
		log.Fatalf("-instances must be a positive instance count, got %d", *instances)
	}
	policy, err := cluster.ParsePolicy(*routeSpec)
	if err != nil {
		log.Fatal(err)
	}
	if *instances > 1 {
		if *arrivalsSpec == "" {
			log.Fatal("-instances scales out the open engine; add -arrivals")
		}
		if *retain {
			log.Fatal("-instances runs the zero-retention stats path; drop -retain")
		}
		if *csvPath != "" {
			log.Fatal("-csv streams a single engine's records; drop it or -instances")
		}
		if *ckptDir != "" {
			log.Fatal("-checkpoint snapshots a single engine; drop it or -instances")
		}
		if *tracePath != "" {
			log.Fatal("-trace records a single engine's events; drop it or -instances")
		}
	}
	// Open-system flags must not be silently ignored: an explicitly set
	// -rate/-burst/-admit without the arrival process (or with one that
	// does not consume it) would report a run the user did not ask for.
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if set["route"] && *instances <= 1 {
		log.Fatalf("-route %s routes across instances; add -instances", *routeSpec)
	}
	if *arrivalsSpec == "" {
		for _, name := range []string{"rate", "burst"} {
			if set[name] {
				log.Fatalf("-%s shapes an arrival process; add -arrivals", name)
			}
		}
		if *admitSpec != "all" {
			log.Fatalf("-admit %s needs an open system; add -arrivals", *admitSpec)
		}
	} else {
		if strings.HasPrefix(*arrivalsSpec, "trace:") && (set["rate"] || set["burst"]) {
			log.Fatal("-rate/-burst do not apply to a trace replay; the recorded instants are used as-is")
		}
		if set["burst"] && *arrivalsSpec != "bursty" {
			log.Fatalf("-burst only shapes -arrivals bursty, not %q", *arrivalsSpec)
		}
	}

	var reg *obs.Registry
	var cmet *obs.CheckpointMetrics
	if *metricsPath != "" {
		reg = obs.NewRegistry("qmfleet")
		cmet = obs.NewCheckpointMetrics(reg, func() int64 { return time.Now().UnixNano() })
	}
	var etr *obs.Trace
	if *tracePath != "" {
		etr = obs.NewTrace(1 << 16)
	}

	var cfg fleet.OpenConfig
	cfg.Workers = *workers
	cfg.BatchCycles = *batch
	cfg.Lookahead = *lookahead
	if reg != nil && *instances == 1 {
		cfg.Obs = obs.NewFleetMetrics(reg)
	}
	cfg.Trace = etr
	label := *mix
	switch {
	case *bundlePath != "":
		f, err := os.Open(*bundlePath)
		if err != nil {
			log.Fatal(err)
		}
		b, err := controller.Load(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		cfg.Streams, err = fleet.FromBundle(b, *streams, fleet.Options{
			Manager:  *manager,
			Cycles:   *cycles,
			Overhead: sim.IPodOverhead,
			BaseSeed: *seed,
			NoiseAmp: 0.3,
		})
		if err != nil {
			log.Fatal(err)
		}
		label = fmt.Sprintf("bundle %s (%s)", *bundlePath, *manager)
	case *mix == "encoder":
		s := experiment.Paper(*seed)
		s.Cycles = *cycles
		var err error
		cfg.Streams, err = s.FleetStreams(*seed, *streams)
		if err != nil {
			log.Fatal(err)
		}
	case *mix == "workloads":
		var err error
		cfg.Streams, err = experiment.WorkloadFleet(*seed, *streams, *cycles)
		if err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown -mix %q (want encoder or workloads)", *mix)
	}

	mode := "streaming stats, zero retention"
	if *retain {
		mode = "full traces retained"
	}
	var csvFile *checkpoint.AtomicFile
	var csvBuf *bufio.Writer
	var cw *sim.CSVWriter
	if *csvPath != "" {
		f, err := checkpoint.NewAtomicFile(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Abort() // no-op once committed; a fatal exit leaves the old file intact
		csvFile, csvBuf = f, bufio.NewWriterSize(f, 1<<20)
		cw = sim.NewCSVWriter(csvBuf)
		cfg.Export = func(_ int, name string) sim.Sink { return cw.Stream(name) }
		mode += ", CSV export"
	}

	doc := &metrics.FleetDoc{
		Label:       label,
		Mode:        "closed",
		Streams:     *streams,
		Workers:     sim.EffectiveWorkers(*streams, *workers),
		BatchCycles: *batch,
		Cycles:      *cycles,
		Seed:        *seed,
	}

	var proc arrivals.Process
	if *arrivalsSpec != "" {
		proc, err = buildProcess(*arrivalsSpec, &cfg, *rate, *burst, *seed)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Arrivals, err = proc.Times(*streams)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Admit = admitter
		doc.Mode = "open"
		doc.Arrivals = proc.Name()
		doc.Admission = admitter.Name()
	}

	// Profiles bracket the run itself — stream setup and table compilation
	// are excluded, so a hot-path regression shows undiluted.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer f.Close()
	}

	start := time.Now()
	var table string
	var flat *fleet.Result
	var fsum metrics.FleetSummary
	if proc != nil && *instances > 1 {
		var obsBundles []*obs.FleetMetrics
		if reg != nil {
			obsBundles = make([]*obs.FleetMetrics, *instances)
			for i := range obsBundles {
				obsBundles[i] = obs.NewFleetMetrics(reg.WithLabels("instance", strconv.Itoa(i)))
			}
		}
		cres, err := cluster.Run(cluster.Config{
			Streams:     cfg.Streams,
			Arrivals:    cfg.Arrivals,
			Instances:   *instances,
			Route:       policy,
			Admit:       admitter,
			Workers:     *workers,
			BatchCycles: *batch,
			Lookahead:   *lookahead,
			Seed:        *seed,
			Obs:         obsBundles,
		})
		if err != nil {
			log.Fatal(err)
		}
		flat = cres.FleetResult()
		fsum = report.Aggregate(flat)
		cs := cres.Summarize()
		table = report.ClusterTable(&cs, flat, fsum)
		doc.Open = &cs.Global
		doc.Cluster = &cs
	} else if proc != nil {
		var res *fleet.OpenResult
		var err error
		if *ckptDir != "" {
			res, err = runCheckpointed(cfg, *ckptDir, *every, *resumeRun, doc, cmet)
		} else {
			run := fleet.OpenRunStats
			if *retain {
				run = fleet.OpenRun
			}
			res, err = run(cfg)
		}
		if err != nil {
			log.Fatal(err)
		}
		flat = res.FleetResult()
		fsum = report.Aggregate(flat)
		open := metrics.SummarizeOpen(res.OpenObservations)
		table = report.OpenTable(res, open, flat, fsum)
		doc.Open = &open
	} else {
		closed := fleet.Config{Streams: cfg.Streams, Workers: cfg.Workers, BatchCycles: cfg.BatchCycles,
			Export: cfg.Export, Obs: cfg.Obs, Trace: cfg.Trace}
		run := fleet.RunStats
		if *retain {
			run = fleet.Run
		}
		res, err := run(closed)
		if err != nil {
			log.Fatal(err)
		}
		flat = res
		fsum = report.Aggregate(flat)
		table = report.FleetTable(res, fsum)
	}
	elapsed := time.Since(start)
	if *cpuProfile != "" {
		pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			log.Fatal(err)
		}
		runtime.GC() // settle the heap so the profile shows retained memory
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
	doc.Summary = fsum
	runErr := flat.Err()

	if cw != nil {
		if err := cw.Err(); err != nil {
			log.Fatal(err)
		}
		if err := csvBuf.Flush(); err != nil {
			log.Fatal(err)
		}
		if err := csvFile.Commit(); err != nil {
			log.Fatal(err)
		}
	}
	// A failed run persists no artifact: a FleetDoc whose aggregate
	// silently excluded errored streams would present a partial run as a
	// complete one. The error itself is reported after the table. The
	// write is atomic — an existing artifact is never replaced by a torn
	// one.
	if *jsonPath != "" && runErr == nil {
		if err := checkpoint.WriteAtomic(*jsonPath, doc.WriteJSON); err != nil {
			log.Fatal(err)
		}
	}
	// Observability artifacts are written even for a failed run: the
	// metrics and events up to the failure are the debugging record.
	if reg != nil {
		if err := checkpoint.WriteAtomic(*metricsPath, reg.WriteProm); err != nil {
			log.Fatal(err)
		}
	}
	if etr != nil {
		if err := checkpoint.WriteAtomic(*tracePath, etr.WriteChrome); err != nil {
			log.Fatal(err)
		}
	}

	system := "closed system"
	if proc != nil {
		system = fmt.Sprintf("open system, %s, admit %s", doc.Arrivals, doc.Admission)
		if *instances > 1 {
			system += fmt.Sprintf(", %d instances, route %s", *instances, *routeSpec)
		}
	}
	fmt.Printf("fleet               %d streams × %d cycles, %d workers, batch %d (%s; %s)\n",
		*streams, *cycles, doc.Workers, *batch, label, mode)
	fmt.Printf("scenario            %s\n", system)
	fmt.Printf("wall-clock          %v\n\n", elapsed.Round(time.Millisecond))
	fmt.Print(table)
	if runErr != nil {
		log.Fatal(runErr)
	}
}

// runCheckpointed is the crash-safe form of the open stats run: it
// snapshots into a checkpoint.Store every `every` event groups and,
// when resume is set, first reloads the newest valid snapshot whose
// fingerprint matches this invocation. The fingerprint covers
// everything that determines results — mix, population, cycles, seed,
// arrival process, admission policy — but not -workers/-batch, which
// only change wall-clock time: a snapshot taken at one scheduler shape
// resumes correctly at any other.
func runCheckpointed(cfg fleet.OpenConfig, dir string, every int64, resume bool, doc *metrics.FleetDoc, cmet *obs.CheckpointMetrics) (*fleet.OpenResult, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	store := &checkpoint.Store{Dir: dir, Logf: log.Printf, Met: cmet}
	fp := checkpoint.Fingerprint("qmfleet", doc.Label,
		strconv.Itoa(doc.Streams), strconv.Itoa(doc.Cycles),
		strconv.FormatUint(doc.Seed, 10), doc.Arrivals, doc.Admission)
	var resumeCap *fleet.OpenCapture
	if resume {
		snap, path, err := store.LoadLatest(fp)
		if err != nil {
			return nil, err
		}
		if snap == nil {
			log.Printf("resume: no usable snapshot in %s, starting fresh", dir)
		} else {
			log.Printf("resuming from %s (%d engine events)", path, snap.Capture.Events)
			resumeCap = snap.Capture
		}
	}
	return fleet.OpenRunStatsCheckpointed(cfg, resumeCap, every, func(c *fleet.OpenCapture) error {
		_, err := store.Save(&checkpoint.Snapshot{
			Meta:    checkpoint.Meta{Fingerprint: fp, ArrivalCursor: c.NextArrival},
			Capture: c,
		})
		return err
	})
}

// buildProcess maps the -arrivals/-rate/-burst flags to an arrival
// process. Rates are relative to the reference period — the first
// stream's resolved cycle period — so "-rate 1" means on average one
// stream arrives per frame time.
func buildProcess(spec string, cfg *fleet.OpenConfig, rate, burst float64, seed uint64) (arrivals.Process, error) {
	r := &cfg.Streams[0].Runner
	period := r.ResolvedPeriod()
	if period <= 0 {
		return nil, fmt.Errorf("cannot derive a reference period from stream %q", cfg.Streams[0].Name)
	}
	if path, ok := strings.CutPrefix(spec, "trace:"); ok {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return arrivals.ReadCSV(f)
	}
	gap := core.Time(math.Round(float64(period) / rate))
	if gap < 1 {
		return nil, fmt.Errorf("-rate %v means more than one arrival per tick of the reference period %v; use a smaller rate", rate, period)
	}
	switch {
	case spec == "fixed":
		return arrivals.Fixed{Period: gap}, nil
	case spec == "poisson":
		return arrivals.Poisson{MeanGap: gap, Seed: sim.Mix64(seed ^ 0xA5A5A5A5)}, nil
	case spec == "bursty":
		if burst <= 1 {
			return nil, fmt.Errorf("-arrivals bursty needs -burst > 1 (a ratio of 1 is plain poisson), got %v", burst)
		}
		// Peak rate is burst × the mean rate; the ON duty cycle 1/burst
		// restores the configured mean. Dwell means span a few periods
		// so bursts hold several arrivals.
		gapOn := core.Time(math.Round(float64(gap) / burst))
		if gapOn < 1 {
			return nil, fmt.Errorf("-rate %v with -burst %v means more than one peak arrival per tick; lower the rate or the burst ratio", rate, burst)
		}
		on := 4 * period
		off := core.Time(math.Round(float64(on) * (burst - 1)))
		if off < 1 {
			return nil, fmt.Errorf("-burst %v is too close to 1: the off dwell rounds below one tick; raise the ratio or use -arrivals poisson", burst)
		}
		return arrivals.Bursty{
			GapOn:   gapOn,
			MeanOn:  on,
			MeanOff: off,
			Seed:    sim.Mix64(seed ^ 0x5A5A5A5A),
		}, nil
	}
	return nil, fmt.Errorf("unknown -arrivals %q (want fixed, poisson, bursty or trace:file.csv)", spec)
}
