// Command qmfleet runs a fleet of independent quality-managed streams
// on the concurrent multi-stream engine and prints the per-stream and
// fleet-wide report. It is the scale-out counterpart of qmsim: one
// compiled controller (shared immutable tables), N streams with their
// own cycle clocks and content seeds, a goroutine worker pool sharded
// by stream. Per-stream results are byte-identical to serial qmsim runs
// at the same derived seeds, whatever the worker count.
//
// Usage:
//
//	qmfleet [-streams 16] [-workers 0] [-batch 32] [-cycles 8] [-seed 1]
//	        [-retain] [-csv records.csv]
//	        [-mix encoder|workloads | -bundle controller.json [-manager relaxed]]
//
// By default streams run zero-retention: each feeds a StatsSink and the
// report is computed from streamed aggregates, so memory is O(streams)
// regardless of run length. -retain restores full per-action traces.
// -csv streams every action record to the given file as it is observed
// (still zero retention; rows of different streams interleave in worker
// order and carry a stream column).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/controller"
	"repro/internal/experiment"
	"repro/internal/fleet"
	"repro/internal/report"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("qmfleet: ")
	streams := flag.Int("streams", 16, "number of independent streams")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	batch := flag.Int("batch", fleet.DefaultBatchCycles, "cycles a worker advances one stream before moving to the next in its shard")
	cycles := flag.Int("cycles", 8, "cycles (frames) per stream")
	seed := flag.Uint64("seed", 1, "base content seed; stream k uses a seed derived from it")
	mix := flag.String("mix", "encoder", "stream mix: encoder (paper fleet) or workloads (catalog mix)")
	bundlePath := flag.String("bundle", "", "run the fleet from a compiled controller bundle (qmcompile output) instead of -mix")
	manager := flag.String("manager", "relaxed", "manager instantiated from the bundle: numeric, symbolic, relaxed (with -bundle)")
	retain := flag.Bool("retain", false, "retain full per-action traces (memory grows as streams × cycles × actions); default streams O(1)-memory statistics per stream")
	csvPath := flag.String("csv", "", "stream per-action records to this CSV file with zero retention (incompatible with -retain)")
	flag.Parse()

	if *streams <= 0 || *cycles <= 0 {
		log.Fatalf("need positive -streams and -cycles, got %d and %d", *streams, *cycles)
	}
	if *batch <= 0 {
		log.Fatalf("need positive -batch, got %d", *batch)
	}
	if *csvPath != "" && *retain {
		log.Fatal("-csv streams records through the sink path; drop -retain (use metrics.WriteTraceCSV for retained traces)")
	}

	var cfg fleet.Config
	cfg.Workers = *workers
	cfg.BatchCycles = *batch
	label := *mix
	switch {
	case *bundlePath != "":
		f, err := os.Open(*bundlePath)
		if err != nil {
			log.Fatal(err)
		}
		b, err := controller.Load(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		cfg.Streams, err = fleet.FromBundle(b, *streams, fleet.Options{
			Manager:  *manager,
			Cycles:   *cycles,
			Overhead: sim.IPodOverhead,
			BaseSeed: *seed,
			NoiseAmp: 0.3,
		})
		if err != nil {
			log.Fatal(err)
		}
		label = fmt.Sprintf("bundle %s (%s)", *bundlePath, *manager)
	case *mix == "encoder":
		s := experiment.Paper(*seed)
		s.Cycles = *cycles
		var err error
		cfg.Streams, err = s.FleetStreams(*seed, *streams)
		if err != nil {
			log.Fatal(err)
		}
	case *mix == "workloads":
		var err error
		cfg.Streams, err = experiment.WorkloadFleet(*seed, *streams, *cycles)
		if err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown -mix %q (want encoder or workloads)", *mix)
	}

	run := fleet.RunStats
	mode := "streaming stats, zero retention"
	if *retain {
		run = fleet.Run
		mode = "full traces retained"
	}
	var csvFile *os.File
	var csvBuf *bufio.Writer
	var cw *sim.CSVWriter
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		csvFile, csvBuf = f, bufio.NewWriterSize(f, 1<<20)
		cw = sim.NewCSVWriter(csvBuf)
		cfg.Export = func(_ int, name string) sim.Sink { return cw.Stream(name) }
		mode += ", CSV export"
	}
	start := time.Now()
	res, err := run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	if cw != nil {
		if err := cw.Err(); err != nil {
			log.Fatal(err)
		}
		if err := csvBuf.Flush(); err != nil {
			log.Fatal(err)
		}
		if err := csvFile.Close(); err != nil {
			log.Fatal(err)
		}
	}

	w := sim.EffectiveWorkers(*streams, *workers)
	fmt.Printf("fleet               %d streams × %d cycles, %d workers, batch %d (%s; %s)\n",
		*streams, *cycles, w, *batch, label, mode)
	fmt.Printf("wall-clock          %v\n\n", elapsed.Round(time.Millisecond))
	fmt.Print(report.FleetTable(res))
	if err := res.Err(); err != nil {
		log.Fatal(err)
	}
}
