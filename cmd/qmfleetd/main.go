// Command qmfleetd is the long-running serving form of qmfleet: an
// open-fleet engine fed from an NDJSON event file instead of a
// pre-materialised arrival schedule, with crash-safe checkpoints, hot
// controller-bundle swaps and HTTP observables. It is the deployment
// shape the paper's tool flow points at — one compiled controller
// serving streams as they arrive — hardened for operation: the process
// can be killed at any instant and resumed with results byte-identical
// to a run that was never interrupted.
//
// Usage:
//
//	qmfleetd -bundle app.json -events arrivals.ndjson
//	         [-state dir] [-every 32] [-resume]
//	         [-manager relaxed] [-admit all|cap=K[,queue=N]|budget=U[,queue=N]]
//	         [-workers 0] [-batch 32] [-max-levels 0] [-noise 0.3]
//	         [-json final.json] [-http addr] [-kill-after N]
//	         [-trace out.json] [-linger 0s]
//
// With -http the daemon serves /stats (JSON observables), /metrics
// (Prometheus text exposition of the engine's allocation-free
// instrument registry), /debug/pprof/* (the standard profiles) and a
// real /healthz: 503 whenever the last snapshot write failed,
// otherwise 200 with the checkpoint age (in engine events) and the
// admission backlog. -trace records engine events (arrivals,
// admissions, sheds, binds, completions, steals, parks, checkpoints,
// swaps) into a bounded ring stamped with virtual instants and event
// counters — never wall clocks — and writes them as Chrome trace JSON
// (chrome://tracing, Perfetto) on exit. Metrics and tracing never
// change results: the engine is property-tested byte-identical with
// observability on and off. -linger keeps the HTTP endpoints up for a
// grace period after the run completes, so scrapers can collect the
// final state.
//
// Each input line is one event, in simulated-time order:
//
//	{"op":"arrive","name":"cam-1","at":1500000,"cycles":8,"seed":7}
//	{"op":"swap","bundle":"app-v2.json"}
//
// "arrive" admits a stream at instant "at" (nanoseconds, non-
// decreasing), built against the currently active bundle. "swap" loads
// a new bundle: streams arriving after the swap bind its tables, while
// in-flight streams keep the managers they started with — traces are
// never disturbed mid-run, and a swap to a byte-identical bundle is a
// no-op by the controller package's reload property.
//
// With -state, the daemon checkpoints the engine every -every event
// groups, on SIGTERM/SIGINT, and before a -kill-after exit: a
// versioned, CRC-checked snapshot plus a content-addressed copy of
// every bundle it has served (bundle-<hash>.json). -resume restarts
// from the newest valid snapshot — a corrupt or torn newest snapshot
// is logged and skipped in favour of its predecessor — replays the
// consumed prefix of the event file against the recorded per-stream
// bundles, and continues. -kill-after N exits with code 3 after
// ingesting N lines (checkpoint first), the deterministic crash the CI
// kill/resume smoke test drives.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/sim"
)

// event is one NDJSON input line.
type event struct {
	Op     string `json:"op"`
	Name   string `json:"name,omitempty"`
	At     int64  `json:"at,omitempty"` // simulated ns
	Cycles int    `json:"cycles,omitempty"`
	Seed   uint64 `json:"seed,omitempty"`
	Bundle string `json:"bundle,omitempty"` // swap target
}

// observables is the HTTP-served state snapshot, replaced atomically
// after every ingested event.
type observables struct {
	Ingested       int    `json:"ingested_events"`
	EngineEvents   int64  `json:"engine_events"`
	Population     int    `json:"population"`
	Backlog        int    `json:"backlog"`
	ActiveBundle   string `json:"active_bundle"`
	Swaps          int    `json:"swaps"`
	LastCheckpoint int64  `json:"last_checkpoint_events"`
	// LastCheckpointError is the failure of the most recent snapshot
	// attempt ("" = healthy); /healthz serves 503 while it is set.
	LastCheckpointError string `json:"last_checkpoint_error,omitempty"`
}

// daemon carries the serving state threaded through ingest, replay,
// checkpointing and shutdown.
type daemon struct {
	live     *fleet.OpenLive
	manager  string
	noise    float64
	stateDir string
	store    *checkpoint.Store
	fp       string

	bundles  map[uint64]*controller.Bundle // by hash
	order    []uint64                      // activation order; last = active
	active   *controller.Bundle
	activeH  uint64
	swaps    int
	ingested int // input lines consumed (the checkpoint cursor)

	streams   []fleet.Stream
	arrivalsT []core.Time
	bundleOf  []int32 // per stream: index into order

	lastCkpt    int64
	lastCkptErr string
	obs         atomic.Pointer[observables]

	// Observability: the static instrument registry, the engine metric
	// bundle wired into OpenLiveConfig, the checkpoint-store bundle, the
	// daemon's own ingest counters, and the optional event-trace ring.
	reg       *obs.Registry
	met       *obs.FleetMetrics
	ingestEv  *obs.Counter
	swapEv    *obs.Counter
	replayLen *obs.Gauge
	tr        *obs.Trace
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("qmfleetd: ")
	bundlePath := flag.String("bundle", "", "startup controller bundle (qmcompile output, required)")
	eventsPath := flag.String("events", "", "NDJSON event file to serve (required)")
	stateDir := flag.String("state", "", "checkpoint directory (enables snapshots and bundle retention)")
	every := flag.Int64("every", 32, "engine event groups between periodic checkpoints (with -state)")
	resume := flag.Bool("resume", false, "resume from the newest valid snapshot in -state")
	manager := flag.String("manager", "relaxed", "manager instantiated from bundles: numeric, symbolic, relaxed")
	admitSpec := flag.String("admit", "all", "admission policy: all, cap=K[,queue=N] or budget=U[,queue=N]")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS); never changes results")
	batch := flag.Int("batch", fleet.DefaultBatchCycles, "cycles per scheduling batch; never changes results")
	lookahead := flag.Int("lookahead", fleet.DefaultLookahead, "admitted slots batched per worker wake; never changes results")
	maxLevels := flag.Int("max-levels", 0, "widest quality-level count any served bundle may have (0 = the startup bundle's)")
	noise := flag.Float64("noise", 0.3, "content model jitter amplitude")
	jsonPath := flag.String("json", "", "write the final report JSON here (atomic rename)")
	httpAddr := flag.String("http", "", "serve /healthz, /stats, /metrics and /debug/pprof on this address")
	killAfter := flag.Int("kill-after", 0, "fault injection: checkpoint and exit(3) after ingesting N events")
	tracePath := flag.String("trace", "", "write a Chrome trace JSON of engine events here on exit")
	linger := flag.Duration("linger", 0, "keep -http endpoints up this long after the run completes")
	flag.Parse()

	if flag.NArg() > 0 {
		log.Fatalf("unexpected arguments %q; qmfleetd is configured by flags only", flag.Args())
	}
	if *bundlePath == "" || *eventsPath == "" {
		log.Fatal("-bundle and -events are required")
	}
	if *resume && *stateDir == "" {
		log.Fatal("-resume needs -state")
	}
	if *every <= 0 {
		log.Fatalf("-every must be a positive event interval, got %d", *every)
	}
	admit, err := fleet.ParseAdmitter(*admitSpec)
	if err != nil {
		log.Fatal(err)
	}

	d := &daemon{
		manager:  *manager,
		noise:    *noise,
		stateDir: *stateDir,
		bundles:  map[uint64]*controller.Bundle{},
	}
	d.reg = obs.NewRegistry("qmfleetd")
	d.met = obs.NewFleetMetrics(d.reg)
	cmet := obs.NewCheckpointMetrics(d.reg, func() int64 { return time.Now().UnixNano() })
	d.ingestEv = d.reg.Counter("ingest_events", "NDJSON input events ingested.", obs.SerialOrder)
	d.swapEv = d.reg.Counter("bundle_swaps", "Hot controller-bundle swaps applied.", obs.SerialOrder)
	d.replayLen = d.reg.Gauge("resume_replay_events", "Event-file lines replayed by the last resume.", obs.SerialOrder)
	if *tracePath != "" {
		d.tr = obs.NewTrace(1 << 16)
	}
	if *stateDir != "" {
		if err := os.MkdirAll(*stateDir, 0o755); err != nil {
			log.Fatal(err)
		}
		d.store = &checkpoint.Store{Dir: *stateDir, Logf: log.Printf, Met: cmet}
	}

	boot, bootHash, err := d.loadBundle(*bundlePath)
	if err != nil {
		log.Fatal(err)
	}
	d.activate(boot, bootHash)
	levels := *maxLevels
	if levels == 0 {
		levels = boot.System().NumLevels()
	}
	// The fingerprint covers everything that shapes results except the
	// scheduler (workers/batch change wall-clock only) and the bundles
	// (recorded per stream in the snapshot metadata).
	d.fp = checkpoint.Fingerprint("qmfleetd", *manager, admit.Name(),
		strconv.Itoa(levels), strconv.FormatFloat(*noise, 'g', -1, 64))

	d.live = fleet.NewOpenLive(fleet.OpenLiveConfig{
		Admit: admit, Workers: *workers, BatchCycles: *batch, Lookahead: *lookahead, MaxLevels: levels,
		Obs: d.met, Trace: d.tr,
	})

	if *resume {
		if err := d.tryResume(*eventsPath); err != nil {
			log.Fatal(err)
		}
	}
	d.publish()

	if *httpAddr != "" {
		go d.serveHTTP(*httpAddr)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)

	f, err := os.Open(*eventsPath)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if line <= d.ingested {
			continue // replayed from the snapshot
		}
		select {
		case s := <-sig:
			d.checkpointNow("signal " + s.String())
			d.writeTrace(*tracePath)
			os.Exit(0)
		default:
		}
		if err := d.ingest(sc.Bytes()); err != nil {
			log.Fatalf("event %d: %v", line, err)
		}
		d.publish()
		if d.store != nil && d.live.Events() >= d.lastCkpt+*every {
			d.checkpointNow("interval")
		}
		if *killAfter > 0 && d.ingested >= *killAfter {
			d.checkpointNow("injected kill")
			d.writeTrace(*tracePath)
			log.Printf("kill-after %d: simulating crash (exit 3) at %d engine events", *killAfter, d.live.Events())
			os.Exit(3)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}

	res, err := d.live.Close()
	if err != nil {
		log.Fatal(err)
	}
	d.report(res, *jsonPath, *eventsPath, admit.Name(), *workers, *batch)
	d.writeTrace(*tracePath)
	if *linger > 0 && *httpAddr != "" {
		log.Printf("lingering %v for scrapers on %s", *linger, *httpAddr)
		time.Sleep(*linger)
	}
	if err := res.FleetResult().Err(); err != nil {
		log.Fatal(err)
	}
}

// writeTrace renders the event ring as Chrome trace JSON, atomically.
// A trace that fails to write must not fail the run: it is an
// observability artifact, not a result.
func (d *daemon) writeTrace(path string) {
	if d.tr == nil || path == "" {
		return
	}
	if err := checkpoint.WriteAtomic(path, d.tr.WriteChrome); err != nil {
		log.Printf("trace: %v", err)
	}
}

// ingest applies one NDJSON event to the engine.
func (d *daemon) ingest(raw []byte) error {
	var ev event
	if err := json.Unmarshal(raw, &ev); err != nil {
		return fmt.Errorf("bad event: %w", err)
	}
	d.ingested++
	d.ingestEv.Inc()
	switch ev.Op {
	case "arrive":
		s, err := buildStream(d.active, d.manager, ev, d.noise)
		if err != nil {
			return err
		}
		t := core.Time(ev.At)
		if err := d.live.Feed(s, t); err != nil {
			return err
		}
		d.streams = append(d.streams, s)
		d.arrivalsT = append(d.arrivalsT, t)
		d.bundleOf = append(d.bundleOf, int32(len(d.order)-1))
		return nil
	case "swap":
		b, h, err := d.loadBundle(ev.Bundle)
		if err != nil {
			return fmt.Errorf("swap: %w", err)
		}
		d.activate(b, h)
		d.swaps++
		d.swapEv.Inc()
		d.tr.Rec(obs.EvSwap, obs.NoTime, obs.NoStream, obs.NoWorker, int64(h))
		return nil
	default:
		return fmt.Errorf("unknown op %q", ev.Op)
	}
}

// buildStream constructs one stream against a bundle — the serving
// analogue of fleet.FromBundle with an explicit per-stream seed.
func buildStream(b *controller.Bundle, manager string, ev event, noise float64) (fleet.Stream, error) {
	if ev.Cycles <= 0 {
		return fleet.Stream{}, fmt.Errorf("stream %q: non-positive cycles %d", ev.Name, ev.Cycles)
	}
	var mgr core.Manager
	switch manager {
	case "", "relaxed":
		mgr = b.Relaxed()
	case "symbolic":
		mgr = b.Symbolic()
	case "numeric":
		mgr = b.Numeric()
	default:
		return fleet.Stream{}, fmt.Errorf("unknown manager %q", manager)
	}
	sys := b.System()
	return fleet.Stream{
		Name: ev.Name,
		Runner: sim.Runner{
			Sys:      sys,
			Mgr:      mgr,
			Exec:     sim.Content{Sys: sys, NoiseAmp: noise, Seed: ev.Seed},
			Overhead: sim.IPodOverhead,
			Cycles:   ev.Cycles,
		},
	}, nil
}

// loadBundle loads and hashes a bundle file, retaining a content-
// addressed copy in the state directory so a resume can rebuild
// streams against the exact bundle they were admitted under even if
// the original file has since changed.
func (d *daemon) loadBundle(path string) (*controller.Bundle, uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	b, err := controller.Load(f)
	f.Close()
	if err != nil {
		return nil, 0, err
	}
	h, err := b.Hash()
	if err != nil {
		return nil, 0, err
	}
	if prev, ok := d.bundles[h]; ok {
		return prev, h, nil // identical bundle: swap is a no-op
	}
	d.bundles[h] = b
	if d.stateDir != "" {
		dst := d.bundleFile(h)
		if _, err := os.Stat(dst); os.IsNotExist(err) {
			if err := checkpoint.WriteAtomic(dst, func(w io.Writer) error {
				_, werr := b.WriteTo(w)
				return werr
			}); err != nil {
				return nil, 0, fmt.Errorf("retain bundle %016x: %w", h, err)
			}
		}
	}
	return b, h, nil
}

func (d *daemon) bundleFile(h uint64) string {
	return filepath.Join(d.stateDir, fmt.Sprintf("bundle-%016x.json", h))
}

// activate makes a bundle the target of subsequent arrivals. In-flight
// streams are untouched: their runners keep the managers and tables
// they were admitted with.
func (d *daemon) activate(b *controller.Bundle, h uint64) {
	if d.activeH == h && d.active != nil {
		return
	}
	d.active = b
	d.activeH = h
	d.order = append(d.order, h)
}

// checkpointNow snapshots the engine and saves it to the store. A
// failed save is recorded, not fatal: the daemon keeps serving and
// /healthz reports 503 until a later snapshot succeeds — crash
// recovery is degraded to the last durable snapshot, which is exactly
// what the store's fallback walk already handles.
func (d *daemon) checkpointNow(why string) {
	if d.store == nil {
		return
	}
	cap, err := d.live.Checkpoint()
	if err != nil {
		log.Fatalf("checkpoint (%s): %v", why, err)
	}
	snap := &checkpoint.Snapshot{
		Meta: checkpoint.Meta{
			Fingerprint:   d.fp,
			ArrivalCursor: d.ingested,
			BundleHashes:  append([]uint64(nil), d.order...),
			StreamBundle:  append([]int32(nil), d.bundleOf...),
		},
		Capture: cap,
	}
	path, err := d.store.Save(snap)
	if err != nil {
		d.lastCkptErr = err.Error()
		d.publish()
		log.Printf("checkpoint (%s): %v", why, err)
		return
	}
	d.lastCkpt = cap.Events
	d.lastCkptErr = ""
	d.publish()
	log.Printf("checkpoint (%s): %s at %d engine events, %d ingested", why, path, cap.Events, d.ingested)
}

// tryResume loads the newest valid snapshot, replays the consumed
// prefix of the event file to rebuild the fed population against the
// recorded bundles, and restores the engine. No snapshot (or none
// valid) is a fresh start, not an error.
func (d *daemon) tryResume(eventsPath string) error {
	snap, path, err := d.store.LoadLatest(d.fp)
	if err != nil {
		return err
	}
	if snap == nil {
		log.Printf("resume: no usable snapshot in %s, starting fresh", d.stateDir)
		return nil
	}
	// Rebind the activation list to retained bundle copies.
	d.order = d.order[:0]
	for _, h := range snap.Meta.BundleHashes {
		_, bh, err := d.loadBundle(d.bundleFile(h))
		if err != nil {
			return fmt.Errorf("resume: bundle %016x: %w", h, err)
		}
		if bh != h {
			return fmt.Errorf("resume: retained bundle %016x re-hashes to %016x", h, bh)
		}
		d.order = append(d.order, h)
	}
	d.active = d.bundles[d.order[len(d.order)-1]]
	d.activeH = d.order[len(d.order)-1]

	f, err := os.Open(eventsPath)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	d.bundleOf = append([]int32(nil), snap.Meta.StreamBundle...)
	k := 0
	for line := 0; line < snap.Meta.ArrivalCursor; line++ {
		if !sc.Scan() {
			return fmt.Errorf("resume: event file has %d lines, snapshot consumed %d", line, snap.Meta.ArrivalCursor)
		}
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return fmt.Errorf("resume: replay event %d: %w", line+1, err)
		}
		switch ev.Op {
		case "arrive":
			if k >= len(d.bundleOf) || int(d.bundleOf[k]) >= len(d.order) {
				return fmt.Errorf("resume: snapshot records %d stream-bundle bindings, replay found more arrivals", len(d.bundleOf))
			}
			b := d.bundles[d.order[d.bundleOf[k]]]
			s, err := buildStream(b, d.manager, ev, d.noise)
			if err != nil {
				return fmt.Errorf("resume: replay event %d: %w", line+1, err)
			}
			d.streams = append(d.streams, s)
			d.arrivalsT = append(d.arrivalsT, core.Time(ev.At))
			k++
		case "swap":
			// Bundle activations were replayed from the snapshot metadata.
		default:
			return fmt.Errorf("resume: replay event %d: unknown op %q", line+1, ev.Op)
		}
	}
	if k != len(d.bundleOf) {
		return fmt.Errorf("resume: snapshot records %d arrivals, replay found %d", len(d.bundleOf), k)
	}
	if err := d.live.Restore(snap.Capture, d.streams, d.arrivalsT); err != nil {
		return fmt.Errorf("resume from %s: %w", path, err)
	}
	d.ingested = snap.Meta.ArrivalCursor
	d.lastCkpt = snap.Capture.Events
	d.swaps = len(d.order) - 1
	d.replayLen.Set(int64(snap.Meta.ArrivalCursor))
	log.Printf("resumed from %s: %d engine events, %d ingested events, %d streams",
		path, snap.Capture.Events, d.ingested, len(d.streams))
	return nil
}

// publish replaces the HTTP-served observables snapshot. It runs on
// the engine's owner goroutine, which is what lets it read owner-only
// engine state (Backlog, Events, Population); the HTTP handlers read
// only the atomically swapped snapshot.
func (d *daemon) publish() {
	d.obs.Store(&observables{
		Ingested:            d.ingested,
		EngineEvents:        d.live.Events(),
		Population:          d.live.Population(),
		Backlog:             d.live.Backlog(),
		ActiveBundle:        fmt.Sprintf("%016x", d.activeH),
		Swaps:               d.swaps,
		LastCheckpoint:      d.lastCkpt,
		LastCheckpointError: d.lastCkptErr,
	})
}

func (d *daemon) serveHTTP(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		o := d.obs.Load()
		if o.LastCheckpointError != "" {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, "unhealthy: last checkpoint failed: %s\n", o.LastCheckpointError)
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintf(w, "ok checkpoint_age_events=%d backlog=%d population=%d\n",
			o.EngineEvents-o.LastCheckpoint, o.Backlog, o.Population)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(d.obs.Load())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := d.reg.WriteProm(w); err != nil {
			log.Printf("metrics: %v", err)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if err := http.ListenAndServe(addr, mux); err != nil {
		log.Fatal(err)
	}
}

// report prints the final open-system table and persists the run
// document atomically — the artifact the CI kill/resume smoke test
// diffs against an uninterrupted reference.
func (d *daemon) report(res *fleet.OpenResult, jsonPath, eventsPath, admitName string, workers, batch int) {
	flat := res.FleetResult()
	fsum := report.Aggregate(flat)
	open := metrics.SummarizeOpen(res.OpenObservations)
	doc := &metrics.FleetDoc{
		Label:       "qmfleetd",
		Mode:        "open",
		Streams:     len(d.streams),
		Workers:     sim.EffectiveWorkers(len(d.streams), workers),
		BatchCycles: batch,
		Arrivals:    "ndjson:" + filepath.Base(eventsPath),
		Admission:   admitName,
		Summary:     fsum,
		Open:        &open,
	}
	if jsonPath != "" && flat.Err() == nil {
		if err := checkpoint.WriteAtomic(jsonPath, doc.WriteJSON); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("served              %d events → %d streams (%d swaps), %d engine events\n",
		d.ingested, len(d.streams), d.swaps, d.live.Events())
	fmt.Print(report.OpenTable(res, open, flat, fsum))
}
