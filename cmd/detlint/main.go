// Command detlint runs the repro determinism suite
// (internal/analysis): nondeterminism, rngdiscipline, hotpathalloc,
// atomicdiscipline, and the directive validator.
//
// It has two modes:
//
//   - Standalone: `detlint ./...` loads the named packages from source
//     (offline, stdlib importer) and prints findings. Exit 0 clean,
//     1 findings, 2 operational error.
//
//   - Vet tool: `go vet -vettool=$(command -v detlint) ./...`. The go
//     command drives the tool with the unitchecker protocol — probe it
//     with -V=full and -flags, then invoke it once per package with a
//     vet.cfg describing the file set and the export data of every
//     dependency, expecting a facts (vetx) output file and exit 2 when
//     findings are reported.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// The go command probes the tool before using it: -V=full must print
	// a version line whose second field is "version" (and third is not
	// "devel") for the build cache to key on, and -flags must print the
	// tool's flags as JSON so go vet can validate pass-through flags.
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			fmt.Println("detlint version v1-determinism-suite")
			return 0
		case "-flags", "--flags":
			fmt.Println("[]")
			return 0
		}
	}
	if n := len(args); n > 0 && strings.HasSuffix(args[n-1], ".cfg") {
		return runVetConfig(args[n-1])
	}
	return runStandalone(args)
}

// runStandalone loads packages from source and reports to stdout.
func runStandalone(args []string) int {
	fs := flag.NewFlagSet("detlint", flag.ContinueOnError)
	docs := fs.Bool("doc", false, "print the suite's analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: detlint [-doc] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *docs {
		for _, a := range analysis.All() {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		return 2
	}
	pkgs, err := analysis.Load(wd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		return 2
	}
	found := false
	for _, pkg := range pkgs {
		diags, err := analysis.Run(pkg, analysis.All())
		if err != nil {
			fmt.Fprintln(os.Stderr, "detlint:", err)
			return 2
		}
		for _, d := range diags {
			if d.Suppressed {
				continue
			}
			found = true
			fmt.Printf("%s: %s: %s\n", d.Pos, d.Analyzer, d.Message)
		}
	}
	if found {
		return 1
	}
	return 0
}

// vetConfig is the JSON the go command hands a -vettool per package —
// the subset of cmd/go/internal/work.vetConfig the tool consumes.
type vetConfig struct {
	ID         string
	Dir        string
	ImportPath string
	GoFiles    []string
	// ImportMap sends source-level import paths to canonical package
	// paths (vendoring, test variants); PackageFile sends canonical
	// paths to the export data built for each dependency.
	ImportMap   map[string]string
	PackageFile map[string]string
	// VetxOnly marks a dependency-only invocation: the go command wants
	// the tool's facts output and no diagnostics. Detlint carries no
	// cross-package facts, so these are answered with an empty file.
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

// runVetConfig is one unitchecker-protocol invocation.
func runVetConfig(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "detlint: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// The facts file must exist for the go command to cache the action,
	// findings or not.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "detlint:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "detlint:", err)
			return 2
		}
		files = append(files, f)
	}

	// Imports resolve through the export data the go command already
	// built: source import path → canonical path → .a file.
	lookup := func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	info := analysis.NewInfo()
	conf := types.Config{
		Importer:    importer.ForCompiler(fset, "gc", lookup),
		GoVersion:   cfg.GoVersion,
		FakeImportC: true,
	}
	tpkg, err := conf.Check(analysis.TrimVariant(cfg.ImportPath), fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "detlint:", err)
		return 2
	}

	pkg := &analysis.Package{
		Path:  cfg.ImportPath,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	diags, err := analysis.Run(pkg, analysis.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		return 2
	}
	found := false
	for _, d := range diags {
		if d.Suppressed {
			continue
		}
		found = true
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", d.Pos, d.Analyzer, d.Message)
	}
	if found {
		return 2
	}
	return 0
}
