// Command qmcompile is the reproduction of the paper's Figure 1 compiler
// step: it takes profiled timing tables (from qmprofile), the deadline
// requirement and the relaxation set, validates the quality-management
// problem, pre-computes the symbolic tables, and emits a self-contained
// controller bundle. The bundle is what a deployment loads instead of
// recomputing regions on the target (the paper's Matlab pre-computation
// shipped to the iPod).
//
// Usage:
//
//	qmprofile -o tables.json
//	qmcompile -tables tables.json -mb 48 -deadline-ms 50 -rho 1,5,10,25 -o controller.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/profiler"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("qmcompile: ")
	tablesPath := flag.String("tables", "", "profiled timing tables JSON (required)")
	numMB := flag.Int("mb", 396, "macroblocks per frame")
	deadlineMS := flag.Int64("deadline-ms", 0, "per-cycle deadline in ms (required)")
	rhoFlag := flag.String("rho", "1,10,20,30,40,50", "comma-separated relaxation steps")
	name := flag.String("name", "encoder", "application name")
	out := flag.String("o", "", "output bundle path (default stdout)")
	flag.Parse()

	if *tablesPath == "" || *deadlineMS <= 0 {
		flag.Usage()
		os.Exit(2)
	}
	data, err := os.ReadFile(*tablesPath)
	if err != nil {
		log.Fatal(err)
	}
	var tabs profiler.Tables
	if err := json.Unmarshal(data, &tabs); err != nil {
		log.Fatalf("parse %s: %v", *tablesPath, err)
	}
	sys, err := tabs.System(*numMB, core.Time(*deadlineMS)*core.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	rho, err := parseRho(*rhoFlag)
	if err != nil {
		log.Fatal(err)
	}
	bundle, err := controller.Compile(controller.SpecFromSystem(*name, sys, rho))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Fprintf(os.Stderr, "compiled %q: %d actions × %d levels, rho=%v\n",
		*name, sys.NumActions(), sys.NumLevels(), rho)
	fmt.Fprintf(os.Stderr, "tables: %d + %d integers\n",
		bundle.Tables().NumEntries(), bundle.RelaxTables().NumEntries())

	if *out == "" {
		if _, err := bundle.WriteTo(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	n, err := bundle.WriteTo(f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d bytes)\n", *out, n)
}

func parseRho(s string) ([]int, error) {
	var rho []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad rho element %q: %v", part, err)
		}
		rho = append(rho, v)
	}
	if len(rho) == 0 {
		return nil, fmt.Errorf("empty rho")
	}
	return rho, nil
}
