package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const goodProm = `# HELP qmfleetd_checkpoints_total Snapshots written.
# TYPE qmfleetd_checkpoints_total counter
qmfleetd_checkpoints_total{determinism="shape-dependent"} 6
# HELP qmfleetd_resume_replay_events Arrival cursor replayed at resume.
# TYPE qmfleetd_resume_replay_events gauge
qmfleetd_resume_replay_events 17
`

// promFile drops an exposition into a temp file and returns its path.
func promFile(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "scrape.prom")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runTool(t *testing.T, args ...string) (status int, stdout, stderr string) {
	t.Helper()
	var out, errOut strings.Builder
	status = run(args, &out, &errOut)
	return status, out.String(), errOut.String()
}

func TestFloorsHoldIsOK(t *testing.T) {
	status, out, _ := runTool(t,
		"-in", promFile(t, goodProm),
		"-min", "qmfleetd_checkpoints_total:1",
		"-min", "qmfleetd_resume_replay_events:1")
	if status != exitOK {
		t.Fatalf("status %d, want %d", status, exitOK)
	}
	if !strings.Contains(out, "parsed 2 samples") {
		t.Fatalf("missing parse summary in %q", out)
	}
	if !strings.Contains(out, "qmfleetd_checkpoints_total = 6 (floor 1) ok") {
		t.Fatalf("missing assertion line in %q", out)
	}
}

func TestBelowFloorFails(t *testing.T) {
	status, _, errOut := runTool(t,
		"-in", promFile(t, goodProm),
		"-min", "qmfleetd_checkpoints_total:7")
	if status != exitFailed {
		t.Fatalf("status %d, want %d", status, exitFailed)
	}
	if !strings.Contains(errOut, "below the 7 floor") {
		t.Fatalf("missing floor diagnostic in %q", errOut)
	}
}

func TestMissingFamilyFails(t *testing.T) {
	status, _, errOut := runTool(t,
		"-in", promFile(t, goodProm),
		"-min", "qmfleetd_bundle_swaps_total:1")
	if status != exitFailed {
		t.Fatalf("status %d, want %d", status, exitFailed)
	}
	if !strings.Contains(errOut, "no sample of family") {
		t.Fatalf("missing diagnostic in %q", errOut)
	}
}

func TestMalformedExpositionFails(t *testing.T) {
	status, _, errOut := runTool(t,
		"-in", promFile(t, "qmfleetd_checkpoints_total not-a-number\n"))
	if status != exitFailed {
		t.Fatalf("status %d, want %d", status, exitFailed)
	}
	if !strings.Contains(errOut, "does not parse") {
		t.Fatalf("missing diagnostic in %q", errOut)
	}
}

func TestBadMinSpecIsUsage(t *testing.T) {
	for _, bad := range []string{"nocolon", ":3", "name:NaNish"} {
		status, _, _ := runTool(t, "-in", promFile(t, goodProm), "-min", bad)
		if status != exitUsage {
			t.Fatalf("-min %q: status %d, want %d", bad, status, exitUsage)
		}
	}
}

func TestLabeledSeriesAssertions(t *testing.T) {
	labeled := `# HELP qm_arrivals_total Streams arrived.
# TYPE qm_arrivals_total counter
qm_arrivals_total{determinism="serial-order",instance="0"} 12
qm_arrivals_total{determinism="serial-order",instance="1"} 9
`
	status, out, _ := runTool(t,
		"-in", promFile(t, labeled),
		"-min", `qm_arrivals_total{instance="1"}:9`)
	if status != exitOK {
		t.Fatalf("status %d, want %d (%s)", status, exitOK, out)
	}
	// The labeled floor binds to its series, not the family's first.
	status, _, errOut := runTool(t,
		"-in", promFile(t, labeled),
		"-min", `qm_arrivals_total{instance="1"}:10`)
	if status != exitFailed {
		t.Fatalf("status %d, want %d", status, exitFailed)
	}
	if !strings.Contains(errOut, "below the 10 floor") {
		t.Fatalf("missing floor diagnostic in %q", errOut)
	}
	// A nonexistent instance is a miss even though the family exists.
	status, _, _ = runTool(t,
		"-in", promFile(t, labeled),
		"-min", `qm_arrivals_total{instance="7"}:1`)
	if status != exitFailed {
		t.Fatalf("status %d, want %d", status, exitFailed)
	}
	// Malformed specs are usage errors.
	status, _, _ = runTool(t,
		"-in", promFile(t, labeled),
		"-min", `qm_arrivals_total{instance=0}:1`)
	if status != exitUsage {
		t.Fatalf("status %d, want %d", status, exitUsage)
	}
}
