// Command promassert validates a Prometheus text exposition and
// asserts sample values — the CI-side consumer of the /metrics
// endpoints and -metrics artifacts this repo's binaries expose. It
// parses the input with the same strict validator the golden tests
// use, so a scrape that drifts from text format v0.0.4 fails here, not
// in a dashboard three weeks later.
//
// Usage:
//
//	promassert [-in scrape.prom] [-min name:floor]... [-min 'name{k="v"}:floor']...
//
// -in names the exposition file (default stdin). Each -min (repeatable)
// requires a sample whose name matches with a value ≥ floor; a bare
// name compares the family's first sample, while a name carrying label
// pairs (e.g. qm_arrivals_total{instance="0"}) compares the first
// series with every listed pair — the form the cluster's per-instance
// series are asserted with.
//
// Exit status: 0 when the exposition parses and every -min assertion
// holds, 1 when parsing fails or an assertion misses, 2 on usage
// errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/obs"
)

const (
	exitOK     = 0
	exitFailed = 1
	exitUsage  = 2
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole tool behind an injectable (args, stdout, stderr) so
// the exit-status contract is unit-testable.
func run(args []string, stdout, stderr io.Writer) int {
	fail := func(status int, format string, a ...any) int {
		fmt.Fprintf(stderr, "promassert: "+format+"\n", a...)
		return status
	}
	fs := flag.NewFlagSet("promassert", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "exposition file to validate (default stdin)")
	var mins minList
	fs.Var(&mins, "min", "name:floor — require a sample of this family with value ≥ floor (repeatable)")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if fs.NArg() > 0 {
		return fail(exitUsage, "unexpected arguments %q; promassert is configured by flags only", fs.Args())
	}

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return fail(exitUsage, "%v", err)
		}
		defer f.Close()
		r = f
	}
	samples, err := obs.ParseProm(r)
	if err != nil {
		return fail(exitFailed, "exposition does not parse: %v", err)
	}
	fmt.Fprintf(stdout, "parsed %d samples\n", len(samples))

	misses := 0
	for _, m := range mins {
		// The floor follows the last colon, so label bodies (and the
		// colon names Prometheus permits) stay intact.
		cut := strings.LastIndex(m, ":")
		if cut <= 0 {
			return fail(exitUsage, "-min wants name:floor, got %q", m)
		}
		spec, floorStr := m[:cut], m[cut+1:]
		floor, err := strconv.ParseFloat(floorStr, 64)
		if err != nil {
			return fail(exitUsage, "-min %s: bad floor: %v", m, err)
		}
		name, pairs, err := splitSeriesSpec(spec)
		if err != nil {
			return fail(exitUsage, "-min %s: %v", m, err)
		}
		s, found := obs.FindSeries(samples, name, pairs)
		if !found {
			misses++
			fmt.Fprintf(stderr, "promassert: no sample of family %q in the exposition\n", spec)
			continue
		}
		verdict := "ok"
		if s.Value < floor {
			misses++
			verdict = "FAIL"
			fmt.Fprintf(stderr, "promassert: %s = %v, below the %v floor\n", spec, s.Value, floor)
		}
		fmt.Fprintf(stdout, "%s = %v (floor %v) %s\n", spec, s.Value, floor, verdict)
	}
	if misses > 0 {
		return exitFailed
	}
	return exitOK
}

// splitSeriesSpec splits a -min series spec into the bare metric name
// and its `k="v"` label pairs (empty for a bare name).
func splitSeriesSpec(spec string) (string, []string, error) {
	i := strings.Index(spec, "{")
	if i < 0 {
		if spec == "" {
			return "", nil, fmt.Errorf("empty metric name")
		}
		return spec, nil, nil
	}
	if i == 0 || !strings.HasSuffix(spec, "}") {
		return "", nil, fmt.Errorf("malformed series spec %q", spec)
	}
	var pairs []string
	for _, p := range strings.Split(spec[i+1:len(spec)-1], ",") {
		p = strings.TrimSpace(p)
		k, v, ok := strings.Cut(p, "=")
		if !ok || k == "" || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
			return "", nil, fmt.Errorf("malformed label pair %q", p)
		}
		pairs = append(pairs, p)
	}
	return spec[:i], pairs, nil
}

// minList is the repeatable name:floor flag value behind -min.
type minList []string

func (m *minList) String() string     { return strings.Join(*m, ",") }
func (m *minList) Set(v string) error { *m = append(*m, v); return nil }
